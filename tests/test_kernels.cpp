// Kernel-layer contract tests: the blocked/packed GEMM and batched Winograd
// paths must (a) agree with naive math, (b) agree with the retained scalar
// seed implementations across randomized conv geometries, (c) be bit-exact
// on the fixed-point datapaths, and (d) produce byte-identical results for
// every thread count (the determinism contract in DESIGN.md).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <random>
#include <stdexcept>
#include <thread>
#include <vector>

#include "algo/conv_variants.h"
#include "algo/winograd_conv.h"
#include "arch/pipeline.h"
#include "kernels/arena.h"
#include "kernels/gemm.h"
#include "kernels/parallel.h"
#include "nn/model_zoo.h"
#include "nn/reference.h"

namespace hetacc {
namespace {

using nn::FilterBank;
using nn::Tensor;

/// Restores the process-wide kernel thread count on scope exit so tests
/// cannot leak thread settings into each other.
struct ThreadGuard {
  ~ThreadGuard() { kernels::set_num_threads(1); }
};

std::vector<float> random_floats(std::size_t n, std::mt19937& rng) {
  std::uniform_real_distribution<float> d(-1.0f, 1.0f);
  std::vector<float> v(n);
  for (auto& x : v) x = d(rng);
  return v;
}

// ------------------------------------------------------------------ GEMM --
void naive_f32(int M, int N, int K, const float* A, const float* B, float* C,
               const float* bias, bool relu) {
  for (int i = 0; i < M; ++i) {
    for (int j = 0; j < N; ++j) {
      double acc = bias ? bias[i] : 0.0;
      for (int k = 0; k < K; ++k) {
        acc += double(A[i * K + k]) * double(B[k * N + j]);
      }
      float v = float(acc);
      C[i * N + j] = (relu && v < 0.0f) ? 0.0f : v;
    }
  }
}

TEST(Gemm, F32MatchesNaiveAcrossBlockBoundaries) {
  std::mt19937 rng(7);
  // Geometries straddling the MR/NR/KC/MC blocking constants.
  const int cases[][3] = {{1, 1, 1},   {4, 8, 16},   {5, 7, 3},
                          {13, 29, 300}, {97, 33, 257}, {3, 130, 520}};
  for (const auto& c : cases) {
    const int M = c[0], N = c[1], K = c[2];
    const auto A = random_floats(std::size_t(M) * K, rng);
    const auto B = random_floats(std::size_t(K) * N, rng);
    const auto bias = random_floats(std::size_t(M), rng);
    std::vector<float> got(std::size_t(M) * N), want(std::size_t(M) * N);
    kernels::gemm_f32(M, N, K, A.data(), K, B.data(), N, got.data(), N,
                      bias.data(), /*relu=*/true, /*threads=*/1);
    naive_f32(M, N, K, A.data(), B.data(), want.data(), bias.data(), true);
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_NEAR(got[i], want[i], 1e-3f) << "M=" << M << " N=" << N
                                          << " K=" << K << " i=" << i;
    }
  }
}

TEST(Gemm, KZeroFillsBiasAndRelu) {
  std::vector<float> C(6, 99.0f);
  const float bias[2] = {1.5f, -2.0f};
  kernels::gemm_f32(2, 3, 0, nullptr, 1, nullptr, 3, C.data(), 3, bias, true,
                    1);
  for (int j = 0; j < 3; ++j) {
    EXPECT_FLOAT_EQ(C[j], 1.5f);
    EXPECT_FLOAT_EQ(C[3 + j], 0.0f);  // relu clamps the negative bias
  }
}

TEST(Gemm, PackedLhsMatchesRawBitwise) {
  std::mt19937 rng(11);
  const int M = 37, N = 41, K = 275;
  const auto A = random_floats(std::size_t(M) * K, rng);
  const auto B = random_floats(std::size_t(K) * N, rng);
  std::vector<float> raw(std::size_t(M) * N), packed(std::size_t(M) * N);
  kernels::gemm_f32(M, N, K, A.data(), K, B.data(), N, raw.data(), N, nullptr,
                    false, 1);
  const kernels::PackedLhsF32 pa(A.data(), M, K, K);
  EXPECT_EQ(pa.rows(), M);
  EXPECT_EQ(pa.depth(), K);
  kernels::gemm_f32(pa, N, B.data(), N, packed.data(), N, nullptr, false, 1);
  EXPECT_EQ(0, std::memcmp(raw.data(), packed.data(),
                           raw.size() * sizeof(float)));
}

TEST(Gemm, I16ExactAgainstNaiveInt64) {
  std::mt19937 rng(13);
  std::uniform_int_distribution<int> d(-500, 500);
  const int M = 19, N = 23, K = 301;
  std::vector<std::int16_t> A(std::size_t(M) * K), B(std::size_t(K) * N);
  for (auto& x : A) x = std::int16_t(d(rng));
  for (auto& x : B) x = std::int16_t(d(rng));
  std::vector<std::int64_t> got(std::size_t(M) * N), want(std::size_t(M) * N);
  kernels::gemm_i16(M, N, K, A.data(), K, B.data(), N, got.data(), N, 1);
  for (int i = 0; i < M; ++i) {
    for (int j = 0; j < N; ++j) {
      std::int64_t acc = 0;
      for (int k = 0; k < K; ++k) {
        acc += std::int64_t(A[i * K + k]) * B[k * N + j];
      }
      want[std::size_t(i) * N + j] = acc;
    }
  }
  EXPECT_EQ(got, want);
}

TEST(Gemm, ThreadCountInvarianceBytewise) {
  ThreadGuard guard;
  std::mt19937 rng(17);
  const int M = 61, N = 147, K = 333;
  const auto A = random_floats(std::size_t(M) * K, rng);
  const auto B = random_floats(std::size_t(K) * N, rng);
  const auto bias = random_floats(std::size_t(M), rng);
  std::vector<float> serial(std::size_t(M) * N);
  kernels::gemm_f32(M, N, K, A.data(), K, B.data(), N, serial.data(), N,
                    bias.data(), true, 1);
  for (int t : {2, 3, 5, 8}) {
    std::vector<float> par(std::size_t(M) * N);
    kernels::gemm_f32(M, N, K, A.data(), K, B.data(), N, par.data(), N,
                      bias.data(), true, t);
    EXPECT_EQ(0, std::memcmp(serial.data(), par.data(),
                             serial.size() * sizeof(float)))
        << "threads=" << t;
  }
}

// ------------------------------------------- randomized conv equivalence --
struct ConvCase {
  int in_c, out_c, hw, k, stride, pad;
};

TEST(ConvKernels, RandomGeometriesAgreeAcrossAlgorithms) {
  std::mt19937 rng(2024);
  std::uniform_int_distribution<int> chan(1, 17), spatial(5, 23);
  std::uniform_int_distribution<int> kidx(0, 2), stride_d(1, 2), pad_d(0, 2);
  const int kernels_by_idx[3] = {1, 3, 5};
  int done = 0;
  while (done < 20) {
    ConvCase c{chan(rng), chan(rng),    spatial(rng),
               kernels_by_idx[kidx(rng)], stride_d(rng), pad_d(rng)};
    if (c.hw + 2 * c.pad < c.k) continue;  // degenerate output
    ++done;
    SCOPED_TRACE(::testing::Message()
                 << "in_c=" << c.in_c << " out_c=" << c.out_c << " hw=" << c.hw
                 << " k=" << c.k << " stride=" << c.stride
                 << " pad=" << c.pad);
    Tensor in(c.in_c, c.hw, c.hw);
    FilterBank f(c.out_c, c.in_c, c.k);
    std::vector<float> bias(std::size_t(c.out_c));
    nn::fill_deterministic(in, 100 + std::uint32_t(done));
    nn::fill_deterministic(f, 200 + std::uint32_t(done));
    nn::fill_deterministic(bias, 300 + std::uint32_t(done));
    const bool relu = (done % 2) == 0;

    const Tensor direct =
        nn::conv_reference_scalar(in, f, bias, c.stride, c.pad, relu);
    const Tensor fast =
        nn::conv_reference(in, f, bias, c.stride, c.pad, relu);
    const Tensor im2col =
        algo::conv_im2col(in, f, bias, c.stride, c.pad, relu);
    EXPECT_LE(fast.max_abs_diff(direct), 1e-4f);
    EXPECT_LE(im2col.max_abs_diff(direct), 1e-4f);

    if (algo::winograd_applicable(c.k, c.stride)) {
      for (int m : {2, 4}) {
        const algo::WinogradTransform t = algo::winograd(m, c.k);
        const Tensor wino = algo::winograd_conv(t, in, f, bias, c.pad, relu);
        EXPECT_LE(wino.max_abs_diff(direct), 1e-3f) << "F(" << m << ",3)";
      }
    }
  }
}

TEST(ConvKernels, FixedPathsBitExactAgainstScalarSeed) {
  std::mt19937 rng(31);
  std::uniform_int_distribution<int> chan(1, 12), spatial(5, 19);
  std::uniform_int_distribution<int> stride_d(1, 2), pad_d(0, 2);
  for (int i = 0; i < 10; ++i) {
    const int in_c = chan(rng), out_c = chan(rng), hw = spatial(rng);
    const int stride = stride_d(rng), pad = pad_d(rng), k = 3;
    SCOPED_TRACE(::testing::Message() << "in_c=" << in_c << " out_c=" << out_c
                                      << " hw=" << hw << " stride=" << stride
                                      << " pad=" << pad);
    Tensor in(in_c, hw, hw);
    FilterBank f(out_c, in_c, k);
    std::vector<float> bias(static_cast<std::size_t>(out_c));
    nn::fill_deterministic(in, 400 + std::uint32_t(i));
    nn::fill_deterministic(f, 500 + std::uint32_t(i));
    nn::fill_deterministic(bias, 600 + std::uint32_t(i));
    const bool relu = (i % 2) == 0;

    const Tensor want = algo::conv_direct_fixed_scalar(
        in, f, bias, stride, pad, relu, 12, 13, 10);
    const Tensor got =
        algo::conv_direct_fixed(in, f, bias, stride, pad, relu, 12, 13, 10);
    EXPECT_EQ(0.0f, got.max_abs_diff(want));

    if (stride == 1) {
      const algo::WinogradTransform t = algo::winograd(4, k);
      const Tensor wwant = algo::winograd_conv_fixed_scalar(
          t, in, f, bias, pad, relu, 12, 10);
      const Tensor wgot =
          algo::winograd_conv_fixed(t, in, f, bias, pad, relu, 12, 10);
      EXPECT_EQ(0.0f, wgot.max_abs_diff(wwant));
    }
  }
}

TEST(ConvKernels, PretransformedMatchesOnTheFlyExactly) {
  // Both run the same packed-plan path, so the results are identical, not
  // merely close (this pins the invariant the pipeline's filter cache
  // relies on).
  Tensor in(6, 14, 14);
  FilterBank f(5, 6, 3);
  std::vector<float> bias(5);
  nn::fill_deterministic(in, 1);
  nn::fill_deterministic(f, 2);
  nn::fill_deterministic(bias, 3);
  const algo::WinogradTransform t = algo::winograd_f4x3();
  const algo::TransformedFilters tf = algo::transform_filters(t, f);
  const Tensor a = algo::winograd_conv(t, in, f, bias, 1, true);
  const Tensor b = algo::winograd_conv_pretransformed(tf, in, bias, 1, true);
  EXPECT_EQ(0.0f, a.max_abs_diff(b));
}

TEST(ConvKernels, ThreadCountInvarianceBytewise) {
  ThreadGuard guard;
  Tensor in(24, 30, 30);
  FilterBank f(20, 24, 3);
  std::vector<float> bias(20);
  nn::fill_deterministic(in, 5);
  nn::fill_deterministic(f, 6);
  nn::fill_deterministic(bias, 7);
  const algo::WinogradTransform t = algo::winograd_f4x3();

  kernels::set_num_threads(1);
  const Tensor im2col1 = algo::conv_im2col(in, f, bias, 1, 1, true);
  const Tensor wino1 = algo::winograd_conv(t, in, f, bias, 1, true);
  const Tensor fixed1 =
      algo::conv_direct_fixed(in, f, bias, 1, 1, true, 12, 13, 10);
  const Tensor wfix1 =
      algo::winograd_conv_fixed(t, in, f, bias, 1, true, 12, 10);
  for (int threads : {2, 4, 7}) {
    kernels::set_num_threads(threads);
    const Tensor im2colN = algo::conv_im2col(in, f, bias, 1, 1, true);
    const Tensor winoN = algo::winograd_conv(t, in, f, bias, 1, true);
    const Tensor fixedN =
        algo::conv_direct_fixed(in, f, bias, 1, 1, true, 12, 13, 10);
    const Tensor wfixN =
        algo::winograd_conv_fixed(t, in, f, bias, 1, true, 12, 10);
    const auto bytes = [](const Tensor& x) {
      return std::size_t(x.size()) * sizeof(float);
    };
    EXPECT_EQ(0, std::memcmp(im2col1.data(), im2colN.data(), bytes(im2col1)))
        << "im2col threads=" << threads;
    EXPECT_EQ(0, std::memcmp(wino1.data(), winoN.data(), bytes(wino1)))
        << "winograd threads=" << threads;
    EXPECT_EQ(0, std::memcmp(fixed1.data(), fixedN.data(), bytes(fixed1)))
        << "fixed threads=" << threads;
    EXPECT_EQ(0, std::memcmp(wfix1.data(), wfixN.data(), bytes(wfix1)))
        << "wino fixed threads=" << threads;
  }
}

// -------------------------------------------------------------- pipeline --
TEST(PipelineKernels, RepeatedRunMatchesFreshPipeline) {
  // reset() must restore pristine streaming state: a second image through
  // the same engines equals a fresh pipeline bit-for-bit.
  const nn::Network net = nn::tiny_net(4, 16);
  const nn::WeightStore ws = nn::WeightStore::deterministic(net, 9);
  Tensor a(net[0].out), b(net[0].out);
  nn::fill_deterministic(a, 21);
  nn::fill_deterministic(b, 22);

  arch::FusionPipeline pipe(net, ws);
  const Tensor a1 = pipe.run(a);
  const Tensor b1 = pipe.run(b);
  const Tensor a2 = pipe.run(a);
  arch::FusionPipeline fresh(net, ws);
  EXPECT_EQ(0.0f, a1.max_abs_diff(a2));
  EXPECT_EQ(0.0f, b1.max_abs_diff(fresh.run(b)));
}

TEST(PipelineKernels, RunBatchMatchesSequentialRuns) {
  ThreadGuard guard;
  const nn::Network net = nn::tiny_net(4, 16);
  const nn::WeightStore ws = nn::WeightStore::deterministic(net, 9);
  std::vector<Tensor> inputs;
  for (int i = 0; i < 5; ++i) {
    inputs.emplace_back(net[0].out);
    nn::fill_deterministic(inputs.back(), 30 + std::uint32_t(i));
  }
  arch::FusionPipeline pipe(net, ws);
  std::vector<Tensor> want;
  want.reserve(inputs.size());
  for (const Tensor& in : inputs) want.push_back(pipe.run(in));
  for (int threads : {1, 3}) {
    const std::vector<Tensor> got = pipe.run_batch(inputs, threads);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(0.0f, got[i].max_abs_diff(want[i]))
          << "image " << i << " threads=" << threads;
    }
  }
}

TEST(PipelineKernels, RunBatchWinogradSharesCachedPlans) {
  ThreadGuard guard;
  nn::Network net("n");
  net.input({3, 12, 12});
  net.conv(5, 3, 1, 1, "c1");
  const nn::WeightStore ws = nn::WeightStore::deterministic(net, 17);
  std::vector<arch::LayerChoice> ch(1);
  ch[0].algo = fpga::ConvAlgo::kWinograd;
  ch[0].wino_m = 4;
  arch::FusionPipeline pipe(net, ws, ch);
  std::vector<Tensor> inputs;
  for (int i = 0; i < 4; ++i) {
    inputs.emplace_back(net[0].out);
    nn::fill_deterministic(inputs.back(), 40 + std::uint32_t(i));
  }
  std::vector<Tensor> want;
  for (const Tensor& in : inputs) want.push_back(pipe.run(in));
  const std::vector<Tensor> got = pipe.run_batch(inputs, 2);
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(0.0f, got[i].max_abs_diff(want[i])) << "image " << i;
  }
}

// --------------------------------------------- SIMD vs scalar fallback --
// The fallback:: entry points run the identical blocking/packing/accumulation
// structure with the scalar micro-kernel. Integer datapaths must match
// bit-exactly (integer addition commutes); float datapaths may differ only by
// FMA contraction inside the AVX2 stamp, so they are tolerance-bounded.

TEST(Gemm, SimdMatchesScalarFallbackF32) {
  std::mt19937 rng(101);
  const int cases[][3] = {{5, 7, 3}, {97, 33, 257}, {130, 144, 520}};
  for (const auto& c : cases) {
    const int M = c[0], N = c[1], K = c[2];
    const auto A = random_floats(std::size_t(M) * K, rng);
    const auto B = random_floats(std::size_t(K) * N, rng);
    const auto bias = random_floats(std::size_t(M), rng);
    std::vector<float> simd(std::size_t(M) * N), scalar(std::size_t(M) * N);
    kernels::gemm_f32(M, N, K, A.data(), K, B.data(), N, simd.data(), N,
                      bias.data(), /*relu=*/false, 1);
    kernels::fallback::gemm_f32(M, N, K, A.data(), K, B.data(), N,
                                scalar.data(), N, bias.data(), false, 1);
    for (std::size_t i = 0; i < simd.size(); ++i) {
      EXPECT_NEAR(simd[i], scalar[i], 1e-3f)
          << "M=" << M << " N=" << N << " K=" << K << " i=" << i;
    }
  }
}

TEST(Gemm, SimdMatchesScalarFallbackDoubleAccum) {
  std::mt19937 rng(103);
  const int M = 70, N = 90, K = 300;
  const auto A = random_floats(std::size_t(M) * K, rng);
  const auto B = random_floats(std::size_t(K) * N, rng);
  const auto bias = random_floats(std::size_t(M), rng);
  std::vector<double> simd(std::size_t(M) * N), scalar(std::size_t(M) * N);
  kernels::gemm_f32d(M, N, K, A.data(), K, B.data(), N, simd.data(), N,
                     bias.data(), true, 1);
  kernels::fallback::gemm_f32d(M, N, K, A.data(), K, B.data(), N,
                               scalar.data(), N, bias.data(), true, 1);
  for (std::size_t i = 0; i < simd.size(); ++i) {
    EXPECT_NEAR(simd[i], scalar[i], 1e-9) << "f32d i=" << i;
  }
  std::vector<double> Ad(A.begin(), A.end()), Bd(B.begin(), B.end());
  std::vector<double> simd64(std::size_t(M) * N), scalar64(std::size_t(M) * N);
  kernels::gemm_f64(M, N, K, Ad.data(), K, Bd.data(), N, simd64.data(), N, 1);
  kernels::fallback::gemm_f64(M, N, K, Ad.data(), K, Bd.data(), N,
                              scalar64.data(), N, 1);
  for (std::size_t i = 0; i < simd64.size(); ++i) {
    EXPECT_NEAR(simd64[i], scalar64[i], 1e-9) << "f64 i=" << i;
  }
}

TEST(Gemm, SimdBitExactAgainstScalarFallbackI16) {
  std::mt19937 rng(107);
  std::uniform_int_distribution<int> d(-2000, 2000);
  const int cases[][3] = {{4, 8, 16}, {19, 23, 301}, {120, 70, 512}};
  for (const auto& c : cases) {
    const int M = c[0], N = c[1], K = c[2];
    std::vector<std::int16_t> A(std::size_t(M) * K), B(std::size_t(K) * N);
    for (auto& x : A) x = std::int16_t(d(rng));
    for (auto& x : B) x = std::int16_t(d(rng));
    std::vector<std::int64_t> simd(std::size_t(M) * N),
        scalar(std::size_t(M) * N);
    kernels::gemm_i16(M, N, K, A.data(), K, B.data(), N, simd.data(), N, 1);
    kernels::fallback::gemm_i16(M, N, K, A.data(), K, B.data(), N,
                                scalar.data(), N, 1);
    EXPECT_EQ(simd, scalar) << "M=" << M << " N=" << N << " K=" << K;
  }
}

// A geometry spanning several MC blocks and NR panels so the 2D cooperative
// tile grid genuinely has both dimensions; results must stay byte-identical
// for every thread count (disjoint output tiles, serial KC outer loop).
TEST(Gemm, ThreadInvarianceAcrossMcBlocks2D) {
  ThreadGuard guard;
  std::mt19937 rng(109);
  const int M = 250, N = 200, K = 300;  // 3 MC blocks x many NR panels
  const auto A = random_floats(std::size_t(M) * K, rng);
  const auto B = random_floats(std::size_t(K) * N, rng);
  const auto bias = random_floats(std::size_t(M), rng);
  std::vector<float> serial(std::size_t(M) * N);
  kernels::gemm_f32(M, N, K, A.data(), K, B.data(), N, serial.data(), N,
                    bias.data(), true, 1);
  std::vector<std::int16_t> Ai(std::size_t(M) * K), Bi(std::size_t(K) * N);
  std::uniform_int_distribution<int> d(-500, 500);
  for (auto& x : Ai) x = std::int16_t(d(rng));
  for (auto& x : Bi) x = std::int16_t(d(rng));
  std::vector<std::int64_t> serial_i(std::size_t(M) * N);
  kernels::gemm_i16(M, N, K, Ai.data(), K, Bi.data(), N, serial_i.data(), N,
                    1);
  for (int t : {2, 3, 5, 8}) {
    std::vector<float> par(std::size_t(M) * N);
    kernels::gemm_f32(M, N, K, A.data(), K, B.data(), N, par.data(), N,
                      bias.data(), true, t);
    EXPECT_EQ(0, std::memcmp(serial.data(), par.data(),
                             serial.size() * sizeof(float)))
        << "f32 threads=" << t;
    std::vector<std::int64_t> par_i(std::size_t(M) * N);
    kernels::gemm_i16(M, N, K, Ai.data(), K, Bi.data(), N, par_i.data(), N, t);
    EXPECT_EQ(serial_i, par_i) << "i16 threads=" << t;
  }
}

// ----------------------------------------------------------- scratch arena --
TEST(Arena, ScopeRestoresWatermarkAndAlignsAllocations) {
  kernels::ScratchArena& a = kernels::ScratchArena::tls();
  const std::size_t used_before = a.used();
  {
    kernels::ScratchArena::Scope outer(a);
    float* p = a.alloc<float>(1001);
    ASSERT_NE(nullptr, p);
    EXPECT_EQ(0u, reinterpret_cast<std::uintptr_t>(p) % 64);
    p[0] = 1.0f;
    p[1000] = 2.0f;  // touch both ends
    {
      kernels::ScratchArena::Scope inner(a);
      double* q = a.alloc<double>(333);
      EXPECT_EQ(0u, reinterpret_cast<std::uintptr_t>(q) % 64);
      q[332] = 3.0;
      EXPECT_GT(a.used(), used_before);
    }
    // Inner scope closed: its bytes are returned, outer's still live.
    EXPECT_EQ(1.0f, p[0]);
    EXPECT_EQ(2.0f, p[1000]);
  }
  EXPECT_EQ(used_before, a.used());
}

TEST(Arena, OverflowCoalescesAndStopsAllocating) {
  kernels::ScratchArena arena;  // fresh, cold arena
  const auto pattern = [&arena] {
    kernels::ScratchArena::Scope s(arena);
    char* small = arena.alloc<char>(100);
    small[0] = 'a';
    // Large enough to force overflow growth past the initial block.
    char* big = arena.alloc<char>(std::size_t(1) << 20);
    big[(std::size_t(1) << 20) - 1] = 'z';
  };
  pattern();  // cold pass: opens/grows blocks
  const std::size_t warm_allocs = arena.system_allocations();
  const std::size_t warm_cap = arena.capacity();
  EXPECT_GE(warm_cap, arena.high_water());  // coalesced to the high water
  for (int i = 0; i < 4; ++i) pattern();
  EXPECT_EQ(warm_allocs, arena.system_allocations())
      << "warm arena must not touch the system allocator";
  EXPECT_EQ(warm_cap, arena.capacity());
  EXPECT_EQ(0u, arena.used());
}

// After the first image has sized the thread's arena, repeated batches must
// run with zero additional system allocations (reset-don't-free).
TEST(Arena, SteadyStateRunBatchDoesNotGrowArena) {
  ThreadGuard guard;
  const nn::Network net = nn::tiny_net(4, 16);
  const nn::WeightStore ws = nn::WeightStore::deterministic(net, 21);
  arch::FusionPipeline pipe(net, ws);
  std::vector<Tensor> inputs;
  for (int i = 0; i < 3; ++i) {
    inputs.emplace_back(net[0].out);
    nn::fill_deterministic(inputs.back(), 60 + std::uint32_t(i));
  }
  (void)pipe.run(inputs[0]);  // first image sizes the arena
  kernels::ScratchArena& a = kernels::ScratchArena::tls();
  const std::size_t warm_allocs = a.system_allocations();
  std::vector<Tensor> last;
  for (int rep = 0; rep < 3; ++rep) {
    last = pipe.run_batch(inputs, /*threads=*/1);  // inline on this thread
  }
  EXPECT_EQ(warm_allocs, a.system_allocations())
      << "steady-state batches must reuse the warm arena";
  EXPECT_EQ(0u, a.used());
  ASSERT_EQ(inputs.size(), last.size());
  EXPECT_EQ(0.0f, last[0].max_abs_diff(pipe.run(inputs[0])));
}

// ------------------------------------------------------- chunked parallel --
TEST(Parallel, ChunkedCoversEveryIndexExactlyOnceUnderExceptions) {
  ThreadGuard guard;
  const std::size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  bool caught = false;
  try {
    kernels::parallel_for(n, /*grain=*/7, /*threads=*/8,
                          [&](std::size_t i) {
                            hits[i].fetch_add(1, std::memory_order_relaxed);
                            if (i % 97 == 0) {
                              throw std::runtime_error("injected");
                            }
                          });
  } catch (const std::runtime_error&) {
    caught = true;
  }
  EXPECT_TRUE(caught) << "first worker exception must be rethrown";
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(1, hits[i].load()) << "index " << i;
  }
}

TEST(Parallel, RangesPartitionIndexSpaceExactly) {
  ThreadGuard guard;
  const std::size_t n = 537, grain = 10;
  std::vector<std::atomic<int>> hits(n);
  kernels::parallel_for_ranges(n, grain, 4,
                               [&](std::size_t lo, std::size_t hi) {
                                 ASSERT_LT(lo, hi);
                                 ASSERT_LE(hi - lo, grain);
                                 for (std::size_t i = lo; i < hi; ++i) {
                                   hits[i].fetch_add(1,
                                                     std::memory_order_relaxed);
                                 }
                               });
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(1, hits[i].load()) << "index " << i;
  }
}

TEST(Parallel, ResolveThreadsRespectsHardwareCap) {
  const int hw = int(std::thread::hardware_concurrency());
  const int cap = hw > 0 ? hw : 1;
  EXPECT_EQ(cap, kernels::resolve_threads(0));       // 0 = all cores
  EXPECT_EQ(cap, kernels::resolve_threads(-4));      // negative = all cores
  EXPECT_EQ(1, kernels::resolve_threads(1));
  EXPECT_EQ(cap, kernels::resolve_threads(1 << 20));  // clamped, never over
  EXPECT_LE(kernels::resolve_threads(2), 2);
}

// ----------------------------------------------------------- int8 datapath --

/// Restores default dispatch blocking on scope exit so blocking overrides
/// cannot leak between tests.
struct BlockingGuard {
  ~BlockingGuard() { kernels::clear_tuned_blocking(); }
};

std::vector<std::int8_t> random_i8(std::size_t n, std::mt19937& rng) {
  std::uniform_int_distribution<int> d(-128, 127);
  std::vector<std::int8_t> v(n);
  for (auto& x : v) x = std::int8_t(d(rng));
  return v;
}

TEST(GemmI8, I32AccumulationExactAgainstNaive) {
  std::mt19937 rng(29);
  const int M = 21, N = 35, K = 530;  // straddles the KC=256 panel boundary
  const auto A = random_i8(std::size_t(M) * K, rng);
  const auto B = random_i8(std::size_t(K) * N, rng);
  std::vector<std::int32_t> got(std::size_t(M) * N), want(std::size_t(M) * N);
  kernels::gemm_i8_i32(M, N, K, A.data(), K, B.data(), N, got.data(), N, 1);
  for (int i = 0; i < M; ++i) {
    for (int j = 0; j < N; ++j) {
      std::int32_t acc = 0;
      for (int k = 0; k < K; ++k) {
        acc += std::int32_t(A[i * K + k]) * B[k * N + j];
      }
      want[std::size_t(i) * N + j] = acc;
    }
  }
  EXPECT_EQ(got, want);
}

TEST(GemmI8, RequantizeRoundsToEvenAndSaturates) {
  using kernels::requantize_i32;
  // Round-to-nearest-even on exact .5 ties (llrint under FE_TONEAREST).
  EXPECT_EQ(0, requantize_i32(1, 0.5f, 0, false));    // 0.5 -> 0 (even)
  EXPECT_EQ(2, requantize_i32(3, 0.5f, 0, false));    // 1.5 -> 2 (even)
  EXPECT_EQ(2, requantize_i32(5, 0.5f, 0, false));    // 2.5 -> 2 (even)
  EXPECT_EQ(-2, requantize_i32(-3, 0.5f, 0, false));  // -1.5 -> -2 (even)
  // Saturation to the i8 range, both directions.
  EXPECT_EQ(127, requantize_i32(100000, 1.0f, 0, false));
  EXPECT_EQ(-128, requantize_i32(-100000, 1.0f, 0, false));
  // Zero-point offsets after scaling; saturation applies post-offset.
  EXPECT_EQ(13, requantize_i32(10, 1.0f, 3, false));
  EXPECT_EQ(127, requantize_i32(126, 1.0f, 100, false));
  // ReLU clamps at the output zero-point, not at code 0.
  EXPECT_EQ(5, requantize_i32(-40, 1.0f, 5, true));
  EXPECT_EQ(45, requantize_i32(40, 1.0f, 5, true));
}

TEST(GemmI8, WritebackMatchesScalarEpiloguePerChannelAndPerTensor) {
  std::mt19937 rng(31);
  const int M = 17, N = 29, K = 310;
  const auto A = random_i8(std::size_t(M) * K, rng);
  const auto B = random_i8(std::size_t(K) * N, rng);
  std::vector<std::int32_t> acc(std::size_t(M) * N);
  kernels::gemm_i8_i32(M, N, K, A.data(), K, B.data(), N, acc.data(), N, 1);

  std::uniform_real_distribution<float> sd(1e-4f, 5e-3f);
  std::vector<float> scales(static_cast<std::size_t>(M));
  for (auto& s : scales) s = sd(rng);
  std::vector<std::int32_t> bias(static_cast<std::size_t>(M));
  std::uniform_int_distribution<int> bd(-5000, 5000);
  for (auto& b : bias) b = bd(rng);

  for (const bool per_channel : {true, false}) {
    for (const bool relu : {false, true}) {
      kernels::QuantParams q{scales.data(), per_channel, bias.data(),
                             /*zero_point=*/-7, relu};
      std::vector<std::int8_t> got(std::size_t(M) * N);
      kernels::gemm_i8(M, N, K, A.data(), K, B.data(), N, got.data(), N, q,
                       1);
      for (int i = 0; i < M; ++i) {
        const float s = per_channel ? scales[std::size_t(i)] : scales[0];
        for (int j = 0; j < N; ++j) {
          const std::int8_t want = kernels::requantize_i32(
              acc[std::size_t(i) * N + j] + bias[std::size_t(i)], s, -7,
              relu);
          ASSERT_EQ(want, got[std::size_t(i) * N + j])
              << "i=" << i << " j=" << j << " per_channel=" << per_channel
              << " relu=" << relu;
        }
      }
    }
  }
}

TEST(GemmI8, SaturatingWritebackBothRails) {
  // All-max operands drive the accumulator far past the i8 range in both
  // directions; the epilogue must saturate, not wrap.
  const int M = 2, N = 3, K = 64;
  std::vector<std::int8_t> A(std::size_t(M) * K), B(std::size_t(K) * N);
  for (int k = 0; k < K; ++k) {
    A[k] = 127;                  // row 0: +127 * +127 * K
    A[K + k] = 127;              // row 1 vs negative B column
    for (int j = 0; j < N; ++j) B[k * N + j] = (j == 2) ? -128 : 127;
  }
  const float one = 1.0f;
  kernels::QuantParams q{&one, false, nullptr, 0, false};
  std::vector<std::int8_t> C(std::size_t(M) * N);
  kernels::gemm_i8(M, N, K, A.data(), K, B.data(), N, C.data(), N, q, 1);
  for (int i = 0; i < M; ++i) {
    EXPECT_EQ(127, C[std::size_t(i) * N + 0]);
    EXPECT_EQ(127, C[std::size_t(i) * N + 1]);
    EXPECT_EQ(-128, C[std::size_t(i) * N + 2]);
  }
}

TEST(GemmI8, SimdBitExactAgainstScalarFallback) {
  std::mt19937 rng(37);
  const int M = 43, N = 61, K = 333;
  const auto A = random_i8(std::size_t(M) * K, rng);
  const auto B = random_i8(std::size_t(K) * N, rng);
  std::uniform_real_distribution<float> sd(1e-4f, 1e-2f);
  std::vector<float> scales(static_cast<std::size_t>(M));
  for (auto& s : scales) s = sd(rng);
  std::vector<std::int32_t> bias(static_cast<std::size_t>(M));
  std::uniform_int_distribution<int> bd(-2000, 2000);
  for (auto& b : bias) b = bd(rng);
  kernels::QuantParams q{scales.data(), true, bias.data(), 4, true};

  std::vector<std::int8_t> simd(std::size_t(M) * N), ref(std::size_t(M) * N);
  kernels::gemm_i8(M, N, K, A.data(), K, B.data(), N, simd.data(), N, q, 1);
  kernels::fallback::gemm_i8(M, N, K, A.data(), K, B.data(), N, ref.data(),
                             N, q, 1);
  EXPECT_EQ(0, std::memcmp(simd.data(), ref.data(), simd.size()));

  std::vector<std::int32_t> simd32(std::size_t(M) * N),
      ref32(std::size_t(M) * N);
  kernels::gemm_i8_i32(M, N, K, A.data(), K, B.data(), N, simd32.data(), N,
                       1);
  kernels::fallback::gemm_i8_i32(M, N, K, A.data(), K, B.data(), N,
                                 ref32.data(), N, 1);
  EXPECT_EQ(simd32, ref32);
}

TEST(GemmI8, ThreadAndBlockingInvarianceBytewise) {
  ThreadGuard tguard;
  BlockingGuard bguard;
  std::mt19937 rng(41);
  const int M = 53, N = 87, K = 700;  // multi-KC under every kc below
  const auto A = random_i8(std::size_t(M) * K, rng);
  const auto B = random_i8(std::size_t(K) * N, rng);
  std::uniform_real_distribution<float> sd(1e-4f, 1e-2f);
  std::vector<float> scales(static_cast<std::size_t>(M));
  for (auto& s : scales) s = sd(rng);
  kernels::QuantParams q{scales.data(), true, nullptr, -3, false};

  kernels::clear_tuned_blocking();
  std::vector<std::int8_t> want(std::size_t(M) * N);
  kernels::gemm_i8(M, N, K, A.data(), K, B.data(), N, want.data(), N, q, 1);

  const kernels::BlockingParams overrides[] = {
      {},                  // shipped defaults
      {64, 128, 64, 4},    // small everything, NC blocking on
      {256, 512, 0, 0},    // two uneven KC steps (512 + 188)
      {8, 16, 32, 1},      // degenerate minima
  };
  for (const auto& bp : overrides) {
    kernels::set_blocking(kernels::Datapath::kI8, bp);
    for (int t : {1, 2, 5, 8}) {
      std::vector<std::int8_t> got(std::size_t(M) * N);
      kernels::gemm_i8(M, N, K, A.data(), K, B.data(), N, got.data(), N, q,
                       t);
      EXPECT_EQ(0, std::memcmp(want.data(), got.data(), want.size()))
          << "mc=" << bp.mc << " kc=" << bp.kc << " nc=" << bp.nc
          << " grain=" << bp.grain << " threads=" << t;
    }
  }
}

TEST(GemmI8, PackedMatchesRawAcrossBlockingChange) {
  BlockingGuard bguard;
  std::mt19937 rng(43);
  const int M = 31, N = 44, K = 290;
  const auto A = random_i8(std::size_t(M) * K, rng);
  const auto B = random_i8(std::size_t(K) * N, rng);
  const float s = 0.002f;
  kernels::QuantParams q{&s, false, nullptr, 0, false};

  // Pack with an explicit blocking, then point dispatch somewhere else: the
  // pack must keep using the blocking it was built with.
  const kernels::PackedLhsI8 pa(A.data(), M, K, K,
                                kernels::BlockingParams{64, 128, 0, 0});
  EXPECT_EQ(64, pa.mc());
  EXPECT_EQ(128, pa.kc());
  kernels::set_blocking(kernels::Datapath::kI8, {256, 512, 256, 8});

  std::vector<std::int8_t> raw(std::size_t(M) * N), packed(std::size_t(M) * N);
  kernels::gemm_i8(M, N, K, A.data(), K, B.data(), N, raw.data(), N, q, 1);
  kernels::gemm_i8(pa, N, B.data(), N, packed.data(), N, q, 1);
  EXPECT_EQ(0, std::memcmp(raw.data(), packed.data(), raw.size()));
}

TEST(GemmI8, Im2colUsesZeroPointPadding) {
  // 1 channel, 2x2 image, 3x3 kernel, pad 1: every patch touches padding.
  const std::int8_t img[4] = {10, 20, 30, 40};
  const std::int8_t pad = -7;  // asymmetric grid: real 0.0 != code 0
  std::vector<std::int8_t> mat(std::size_t(9) * 4);
  kernels::im2col_i8(img, 1, 2, 2, 3, 1, 1, 2, 2, mat.data(), pad);
  // Column 0 (output pixel (0,0)): taps off the top/left edge must be the
  // zero-point code, the in-bounds taps the image values.
  EXPECT_EQ(pad, mat[0 * 4 + 0]);  // (-1,-1)
  EXPECT_EQ(pad, mat[1 * 4 + 0]);  // (-1, 0)
  EXPECT_EQ(pad, mat[3 * 4 + 0]);  // ( 0,-1)
  EXPECT_EQ(10, mat[4 * 4 + 0]);   // ( 0, 0)
  EXPECT_EQ(20, mat[5 * 4 + 0]);   // ( 0, 1)
  EXPECT_EQ(30, mat[7 * 4 + 0]);   // ( 1, 0)
  EXPECT_EQ(40, mat[8 * 4 + 0]);   // ( 1, 1)
  int pads = 0;
  for (std::int8_t v : mat) pads += (v == pad);
  EXPECT_EQ(20, pads);  // 9*4 taps, 16 in-bounds reads
}

TEST(ConvKernels, QuantI8BlockedMatchesScalarSeedBitExact) {
  ThreadGuard guard;
  std::mt19937 rng(47);
  const ConvCase cases[] = {
      {3, 8, 11, 3, 1, 1}, {16, 7, 9, 1, 1, 0},  {5, 13, 14, 5, 2, 2},
      {9, 9, 8, 3, 2, 1},  {12, 6, 17, 3, 1, 0},
  };
  for (const auto& c : cases) {
    Tensor in(c.in_c, c.hw, c.hw);
    FilterBank f(c.out_c, c.in_c, c.k);
    nn::fill_deterministic(in, 11);
    nn::fill_deterministic(f, 12);
    std::vector<float> bias(std::size_t(c.out_c));
    nn::fill_deterministic(bias, 13);

    float in_mn = 0.0f, in_mx = 0.0f;
    for (float v : in.vec()) {
      in_mn = std::min(in_mn, v);
      in_mx = std::max(in_mx, v);
    }
    // The output range only shapes the grid; any sane bracket works.
    const algo::Int8ConvQuant q =
        algo::make_int8_conv_quant(f, in_mn, in_mx, -40.0f, 40.0f);

    const Tensor want = algo::conv_quant_i8_scalar(in, f, bias, c.stride,
                                                   c.pad, true, q);
    for (int t : {1, 3}) {
      kernels::set_num_threads(t);
      const Tensor got =
          algo::conv_quant_i8(in, f, bias, c.stride, c.pad, true, q);
      ASSERT_EQ(want.shape(), got.shape());
      EXPECT_EQ(0, std::memcmp(want.data(), got.data(),
                               std::size_t(want.size()) * sizeof(float)))
          << "in_c=" << c.in_c << " out_c=" << c.out_c << " k=" << c.k
          << " stride=" << c.stride << " threads=" << t;
    }
  }
  kernels::set_num_threads(1);
}

// ---------------------------------------------------- blocking tuning cache --

TEST(Blocking, SanitizePinsFloatKcAndClampsRanges) {
  BlockingGuard guard;
  // Float datapaths: KC is part of the accumulation grouping, so a tuned KC
  // must be forced back to the default.
  kernels::set_blocking(kernels::Datapath::kF32, {128, 512, 0, 0});
  EXPECT_EQ(kernels::default_blocking(kernels::Datapath::kF32).kc,
            kernels::blocking_for(kernels::Datapath::kF32).kc);
  EXPECT_EQ(128, kernels::blocking_for(kernels::Datapath::kF32).mc);
  EXPECT_FALSE(kernels::kc_tunable(kernels::Datapath::kF32));
  EXPECT_FALSE(kernels::kc_tunable(kernels::Datapath::kF64));

  // Integer datapaths: exact accumulation commutes, KC tunes freely.
  kernels::set_blocking(kernels::Datapath::kI8, {130, 512, 7, 9999});
  const auto bp = kernels::blocking_for(kernels::Datapath::kI8);
  EXPECT_TRUE(kernels::kc_tunable(kernels::Datapath::kI8));
  EXPECT_EQ(512, bp.kc);
  EXPECT_EQ(128, bp.mc);    // clamped to a multiple of MR=4
  EXPECT_EQ(32, bp.nc);     // nonzero NC clamped up to the minimum
  EXPECT_EQ(4096, bp.grain);
}

TEST(Blocking, CacheJsonRoundTripsAndIgnoresForeignEntries) {
  BlockingGuard guard;
  kernels::set_blocking(kernels::Datapath::kI8, {192, 384, 256, 8});
  kernels::set_blocking(kernels::Datapath::kF32, {64, 256, 512, 0});
  const std::string json = kernels::tuning_cache_to_json();

  kernels::clear_tuned_blocking();
  EXPECT_EQ(kernels::default_blocking(kernels::Datapath::kI8),
            kernels::blocking_for(kernels::Datapath::kI8));
  EXPECT_EQ(2, kernels::load_tuning_cache_json(json));
  EXPECT_EQ((kernels::BlockingParams{192, 384, 256, 8}),
            kernels::blocking_for(kernels::Datapath::kI8));
  EXPECT_EQ((kernels::BlockingParams{64, 256, 512, 0}),
            kernels::blocking_for(kernels::Datapath::kF32));

  // Entries measured on another machine must not apply.
  kernels::clear_tuned_blocking();
  std::string foreign = json;
  const std::string me = kernels::machine_topology_key();
  for (std::size_t at = foreign.find(me); at != std::string::npos;
       at = foreign.find(me, at + 1)) {
    foreign.replace(at, me.size(), "other-box");
  }
  EXPECT_EQ(0, kernels::load_tuning_cache_json(foreign));
  EXPECT_EQ(kernels::default_blocking(kernels::Datapath::kI8),
            kernels::blocking_for(kernels::Datapath::kI8));

  // A version bump invalidates the whole document.
  kernels::clear_tuned_blocking();
  std::string stale = json;
  const std::string vkey = "\"version\": ";
  const std::size_t vat = stale.find(vkey);
  ASSERT_NE(std::string::npos, vat);
  stale.insert(vat + vkey.size(), "9");
  EXPECT_EQ(0, kernels::load_tuning_cache_json(stale));
  EXPECT_EQ(kernels::default_blocking(kernels::Datapath::kF32),
            kernels::blocking_for(kernels::Datapath::kF32));
}

}  // namespace
}  // namespace hetacc
