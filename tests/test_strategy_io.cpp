#include "core/strategy_io.h"

#include <algorithm>
#include <sstream>

#include <gtest/gtest.h>

#include "arch/pipeline.h"
#include "core/dp_optimizer.h"
#include "nn/model_zoo.h"
#include "nn/reference.h"

namespace hetacc::core {
namespace {

class StrategyIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = nn::vgg_e_head();
    const fpga::EngineModel model(dev_);
    OptimizerOptions oo;
    oo.transfer_budget_bytes = 4 * 1024 * 1024;
    result_ = optimize(net_, model, oo);
    ASSERT_TRUE(result_.feasible);
  }

  nn::Network net_;
  fpga::Device dev_ = fpga::zc706();
  OptimizeResult result_;
};

TEST_F(StrategyIoTest, CsvHasHeaderAndOneRowPerLayer) {
  const std::string csv = strategy_to_csv(result_.strategy, net_);
  std::istringstream is(csv);
  std::string line;
  std::getline(is, line);
  EXPECT_EQ(line.rfind("group,layer,name,kind,algorithm", 0), 0u);
  int rows = 0;
  while (std::getline(is, line)) {
    if (!line.empty()) ++rows;
  }
  EXPECT_EQ(rows, 7);  // the 7 fused VGG head layers
}

TEST_F(StrategyIoTest, CsvFieldCountConsistent) {
  const std::string csv = strategy_to_csv(result_.strategy, net_);
  std::istringstream is(csv);
  std::string line;
  std::getline(is, line);
  const auto count_fields = [](const std::string& s) {
    return std::count(s.begin(), s.end(), ',') + 1;
  };
  const auto header_fields = count_fields(line);
  EXPECT_EQ(header_fields, 16);
  while (std::getline(is, line)) {
    if (!line.empty()) {
      EXPECT_EQ(count_fields(line), header_fields) << line;
    }
  }
}

TEST_F(StrategyIoTest, CsvNamesMatchNetwork) {
  const std::string csv = strategy_to_csv(result_.strategy, net_);
  for (const char* name :
       {"conv1_1", "conv1_2", "pool1", "conv2_1", "conv2_2", "pool2",
        "conv3_1"}) {
    EXPECT_NE(csv.find(name), std::string::npos) << name;
  }
}

TEST_F(StrategyIoTest, MarkdownHasTotalsRow) {
  const std::string md = strategy_to_markdown(result_.strategy, net_);
  EXPECT_NE(md.find("| Layer | Algorithm |"), std::string::npos);
  EXPECT_NE(md.find("**Total**"), std::string::npos);
}

TEST_F(StrategyIoTest, ReportRowRoundTrips) {
  const StrategyReport rep = make_report(result_.strategy, net_, dev_);
  const std::string row = report_to_csv_row(rep);
  std::istringstream is(row);
  std::string field;
  std::vector<std::string> fields;
  while (std::getline(is, field, ',')) fields.push_back(field);
  ASSERT_EQ(fields.size(), 11u);
  EXPECT_EQ(std::stoll(fields[0]), rep.latency_cycles);
  // Default ostream precision is 6 significant digits.
  EXPECT_NEAR(std::stod(fields[2]), rep.effective_gops,
              1e-3 * rep.effective_gops);
}

TEST(ModelZooNin, ShapesAndOneByOneConvs) {
  const nn::Network net = nn::nin();
  EXPECT_EQ(net[*net.find("conv1")].out, (nn::Shape{96, 54, 54}));
  EXPECT_EQ(net[*net.find("cccp8")].out.c, 1000);
  // 1x1 convs are conventional-only (Winograd needs r >= 2).
  const fpga::EngineModel model(fpga::zc706());
  for (const auto& cfg : model.candidates(net[*net.find("cccp1")])) {
    EXPECT_EQ(cfg.algo, fpga::ConvAlgo::kConventional);
  }
}

TEST(ModelZooNin, OptimizesEndToEnd) {
  const nn::Network net = nn::nin().accelerated_portion();
  const fpga::EngineModel model(fpga::zc706());
  OptimizerOptions oo;
  oo.transfer_budget_bytes = 24ll * 1024 * 1024;
  const auto r = optimize(net, model, oo);
  ASSERT_TRUE(r.feasible);
  // Heterogeneous outcome: 1x1/11x11 layers conventional, some 3x3/5x5
  // layers may go Winograd.
  bool conv1_conventional = false;
  for (const auto& g : r.strategy.groups) {
    for (std::size_t k = 0; k < g.impls.size(); ++k) {
      if (net[g.first + k].name == "conv1") {
        conv1_conventional =
            g.impls[k].cfg.algo == fpga::ConvAlgo::kConventional;
      }
    }
  }
  EXPECT_TRUE(conv1_conventional);
}

TEST(ModelZooNin, OneByOneConvStreamsCorrectly) {
  nn::Network net("1x1");
  net.input({4, 10, 10});
  net.conv(6, 1, 1, 0, "c");
  const auto ws = nn::WeightStore::deterministic(net, 7);
  nn::Tensor in(net[0].out);
  nn::fill_deterministic(in, 8);
  arch::FusionPipeline pipe(net, ws);
  const nn::Tensor got = pipe.run(in);
  const nn::Tensor ref = nn::run_network(net, ws, in);
  EXPECT_LT(got.max_abs_diff(ref), 1e-5f);
}

}  // namespace
}  // namespace hetacc::core
