#include "core/strategy_io.h"

#include <algorithm>
#include <cstring>
#include <iterator>
#include <sstream>

#include <gtest/gtest.h>

#include "arch/pipeline.h"
#include "core/dp_optimizer.h"
#include "cost/group_timing.h"
#include "fpga/engine_model.h"
#include "nn/model_zoo.h"
#include "nn/reference.h"
#include "support/error.h"

namespace hetacc::core {
namespace {

class StrategyIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = nn::vgg_e_head();
    const fpga::EngineModel model(dev_);
    OptimizerOptions oo;
    oo.transfer_budget_bytes = 4 * 1024 * 1024;
    result_ = optimize(net_, model, oo);
    ASSERT_TRUE(result_.feasible);
  }

  nn::Network net_;
  fpga::Device dev_ = fpga::zc706();
  OptimizeResult result_;
};

TEST_F(StrategyIoTest, CsvHasHeaderAndOneRowPerLayer) {
  const std::string csv = strategy_to_csv(result_.strategy, net_);
  std::istringstream is(csv);
  std::string line;
  std::getline(is, line);
  EXPECT_EQ(line.rfind("group,layer,name,kind,algorithm", 0), 0u);
  int rows = 0;
  while (std::getline(is, line)) {
    if (!line.empty()) ++rows;
  }
  EXPECT_EQ(rows, 7);  // the 7 fused VGG head layers
}

TEST_F(StrategyIoTest, CsvFieldCountConsistent) {
  const std::string csv = strategy_to_csv(result_.strategy, net_);
  std::istringstream is(csv);
  std::string line;
  std::getline(is, line);
  const auto count_fields = [](const std::string& s) {
    return std::count(s.begin(), s.end(), ',') + 1;
  };
  const auto header_fields = count_fields(line);
  EXPECT_EQ(header_fields, 16);
  while (std::getline(is, line)) {
    if (!line.empty()) {
      EXPECT_EQ(count_fields(line), header_fields) << line;
    }
  }
}

TEST_F(StrategyIoTest, CsvNamesMatchNetwork) {
  const std::string csv = strategy_to_csv(result_.strategy, net_);
  for (const char* name :
       {"conv1_1", "conv1_2", "pool1", "conv2_1", "conv2_2", "pool2",
        "conv3_1"}) {
    EXPECT_NE(csv.find(name), std::string::npos) << name;
  }
}

TEST_F(StrategyIoTest, MarkdownHasTotalsRow) {
  const std::string md = strategy_to_markdown(result_.strategy, net_);
  EXPECT_NE(md.find("| Layer | Algorithm |"), std::string::npos);
  EXPECT_NE(md.find("**Total**"), std::string::npos);
}

TEST_F(StrategyIoTest, ReportRowRoundTrips) {
  const StrategyReport rep = make_report(result_.strategy, net_, dev_);
  const std::string row = report_to_csv_row(rep);
  std::istringstream is(row);
  std::string field;
  std::vector<std::string> fields;
  while (std::getline(is, field, ',')) fields.push_back(field);
  ASSERT_EQ(fields.size(), 11u);
  EXPECT_EQ(std::stoll(fields[0]), rep.latency_cycles);
  // Default ostream precision is 6 significant digits.
  EXPECT_NEAR(std::stod(fields[2]), rep.effective_gops,
              1e-3 * rep.effective_gops);
}

// ---------------------------------------------------- csv inverse parsing --
TEST_F(StrategyIoTest, CsvRoundTripsThroughTheInverseParser) {
  const std::string csv = strategy_to_csv(result_.strategy, net_);
  const Strategy back = strategy_from_csv(csv, net_, dev_);
  ASSERT_EQ(back.groups.size(), result_.strategy.groups.size());
  for (std::size_t gi = 0; gi < back.groups.size(); ++gi) {
    const auto& a = result_.strategy.groups[gi];
    const auto& b = back.groups[gi];
    EXPECT_EQ(b.first, a.first);
    EXPECT_EQ(b.last, a.last);
    ASSERT_EQ(b.impls.size(), a.impls.size());
    for (std::size_t k = 0; k < b.impls.size(); ++k) {
      EXPECT_EQ(b.impls[k].cfg, a.impls[k].cfg);
      EXPECT_EQ(b.impls[k].res.dsp, a.impls[k].res.dsp);
      EXPECT_EQ(b.impls[k].compute_cycles, a.impls[k].compute_cycles);
      EXPECT_EQ(b.impls[k].weight_words, a.impls[k].weight_words);
      EXPECT_EQ(b.impls[k].mults_performed, a.impls[k].mults_performed);
    }
    // Timing is re-derived through the one cost layer; it must agree with
    // what the optimizer priced.
    EXPECT_EQ(b.timing.latency_cycles, a.timing.latency_cycles);
    EXPECT_EQ(b.timing.transfer_bytes, a.timing.transfer_bytes);
  }
  EXPECT_EQ(back.latency_cycles(), result_.strategy.latency_cycles());
}

TEST_F(StrategyIoTest, Int8ImplsRoundTripThroughTheAlgorithmLabel) {
  // Re-implement every conv layer on the int8 datapath (int8 engines are
  // conventional-only) and re-derive the group timings, then push the
  // strategy through the CSV writer and the inverse parser. The int8 flag
  // rides in the algorithm token ("conventional-i8"), so the strict 16/17
  // field format is unchanged.
  fpga::EngineModelParams p;
  p.enable_int8 = true;
  const fpga::EngineModel i8_model(dev_, p);
  Strategy s = result_.strategy;
  int flipped = 0;
  for (auto& g : s.groups) {
    for (std::size_t k = 0; k < g.impls.size(); ++k) {
      const nn::Layer& l = net_[g.first + k];
      if (l.kind != nn::LayerKind::kConv) continue;
      fpga::EngineConfig cfg = g.impls[k].cfg;
      cfg.algo = fpga::ConvAlgo::kConventional;
      cfg.int8 = true;
      g.impls[k] = i8_model.implement(l, cfg);
      ++flipped;
    }
    g.timing =
        cost::evaluate_group_timing(net_, g.first, g.last, g.impls, dev_);
  }
  ASSERT_GT(flipped, 0);

  const std::string csv = strategy_to_csv(s, net_);
  EXPECT_NE(csv.find("conventional-i8"), std::string::npos);
  const Strategy back = strategy_from_csv(csv, net_, dev_);
  ASSERT_EQ(back.groups.size(), s.groups.size());
  for (std::size_t gi = 0; gi < back.groups.size(); ++gi) {
    const auto& a = s.groups[gi];
    const auto& b = back.groups[gi];
    ASSERT_EQ(b.impls.size(), a.impls.size());
    for (std::size_t k = 0; k < b.impls.size(); ++k) {
      EXPECT_EQ(b.impls[k].cfg, a.impls[k].cfg);  // includes the int8 flag
      EXPECT_EQ(b.impls[k].weight_words, a.impls[k].weight_words);
      const nn::Layer& l = net_[a.first + k];
      if (l.kind == nn::LayerKind::kConv) {
        EXPECT_TRUE(b.impls[k].cfg.int8);
        // int8 packs two weights per 16-bit word (ceil).
        const long long count = static_cast<long long>(l.out.c) *
                                l.conv_fan_in() * l.conv().kernel *
                                l.conv().kernel;
        EXPECT_EQ(b.impls[k].weight_words, (count + 1) / 2);
      }
    }
    EXPECT_EQ(b.timing.latency_cycles, a.timing.latency_cycles);
    EXPECT_EQ(b.timing.transfer_bytes, a.timing.transfer_bytes);
  }
  EXPECT_EQ(back.latency_cycles(), s.latency_cycles());
}

TEST_F(StrategyIoTest, CrlfCsvStillRoundTrips) {
  std::string csv = strategy_to_csv(result_.strategy, net_);
  std::string crlf;
  for (const char c : csv) {
    if (c == '\n') crlf += '\r';
    crlf += c;
  }
  const Strategy back = strategy_from_csv(crlf, net_, dev_);
  EXPECT_EQ(back.latency_cycles(), result_.strategy.latency_cycles());
}

TEST_F(StrategyIoTest, TruncatedCsvIsAParseErrorWithLineContext) {
  const std::string csv = strategy_to_csv(result_.strategy, net_);
  // Drop the last data line.
  const std::size_t cut = csv.rfind(
      '\n', csv.size() - 2);  // start of the final row
  try {
    (void)strategy_from_csv(csv.substr(0, cut + 1), net_, dev_);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos);
  }
}

TEST_F(StrategyIoTest, GarbledCsvRejectsWithLineNumbers) {
  const std::string csv = strategy_to_csv(result_.strategy, net_);
  EXPECT_THROW((void)strategy_from_csv("", net_, dev_), ParseError);
  EXPECT_THROW((void)strategy_from_csv("not,a,header\n", net_, dev_),
               ParseError);

  // Corrupt one numeric field of the first data row.
  std::istringstream is(csv);
  std::string header, row1;
  std::getline(is, header);
  std::getline(is, row1);
  std::string rest((std::istreambuf_iterator<char>(is)),
                   std::istreambuf_iterator<char>());

  const std::size_t last_comma = row1.rfind(',');
  std::string bad_row = row1.substr(0, last_comma + 1) + "banana";
  try {
    (void)strategy_from_csv(header + "\n" + bad_row + "\n" + rest, net_,
                            dev_);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2);  // 1-based: header is line 1
    EXPECT_NE(std::string(e.what()).find("fill_cycles"), std::string::npos);
  }

  // Wrong layer name on the first row.
  std::string renamed = row1;
  const std::size_t name_pos = renamed.find(net_[1].name);
  ASSERT_NE(name_pos, std::string::npos);
  renamed.replace(name_pos, net_[1].name.size(), "imposter");
  EXPECT_THROW((void)strategy_from_csv(
                   header + "\n" + renamed + "\n" + rest, net_, dev_),
               ParseError);

  // Unknown algorithm token.
  std::string bad_algo = row1;
  for (const char* a : {"winograd-s2", "winograd", "conventional"}) {
    const std::size_t p = bad_algo.find(a);
    if (p != std::string::npos) {
      bad_algo.replace(p, std::strlen(a), "quantum");
      break;
    }
  }
  EXPECT_THROW((void)strategy_from_csv(
                   header + "\n" + bad_algo + "\n" + rest, net_, dev_),
               ParseError);
}

TEST_F(StrategyIoTest, ShuffledGroupIndicesRejected) {
  const std::string csv = strategy_to_csv(result_.strategy, net_);
  std::istringstream is(csv);
  std::vector<std::string> lines;
  std::string l;
  while (std::getline(is, l)) lines.push_back(l);
  ASSERT_GE(lines.size(), 3u);
  // Claim the second row belongs to a far-future group.
  lines[2] = "9" + lines[2].substr(lines[2].find(','));
  std::string shuffled;
  for (const auto& s : lines) shuffled += s + "\n";
  EXPECT_THROW((void)strategy_from_csv(shuffled, net_, dev_), ParseError);
}

TEST(ModelZooNin, ShapesAndOneByOneConvs) {
  const nn::Network net = nn::nin();
  EXPECT_EQ(net[*net.find("conv1")].out, (nn::Shape{96, 54, 54}));
  EXPECT_EQ(net[*net.find("cccp8")].out.c, 1000);
  // 1x1 convs are conventional-only (Winograd needs r >= 2).
  const fpga::EngineModel model(fpga::zc706());
  for (const auto& cfg : model.candidates(net[*net.find("cccp1")])) {
    EXPECT_EQ(cfg.algo, fpga::ConvAlgo::kConventional);
  }
}

TEST(ModelZooNin, OptimizesEndToEnd) {
  const nn::Network net = nn::nin().accelerated_portion();
  const fpga::EngineModel model(fpga::zc706());
  OptimizerOptions oo;
  oo.transfer_budget_bytes = 24ll * 1024 * 1024;
  const auto r = optimize(net, model, oo);
  ASSERT_TRUE(r.feasible);
  // Heterogeneous outcome: 1x1/11x11 layers conventional, some 3x3/5x5
  // layers may go Winograd.
  bool conv1_conventional = false;
  for (const auto& g : r.strategy.groups) {
    for (std::size_t k = 0; k < g.impls.size(); ++k) {
      if (net[g.first + k].name == "conv1") {
        conv1_conventional =
            g.impls[k].cfg.algo == fpga::ConvAlgo::kConventional;
      }
    }
  }
  EXPECT_TRUE(conv1_conventional);
}

TEST(ModelZooNin, OneByOneConvStreamsCorrectly) {
  nn::Network net("1x1");
  net.input({4, 10, 10});
  net.conv(6, 1, 1, 0, "c");
  const auto ws = nn::WeightStore::deterministic(net, 7);
  nn::Tensor in(net[0].out);
  nn::fill_deterministic(in, 8);
  arch::FusionPipeline pipe(net, ws);
  const nn::Tensor got = pipe.run(in);
  const nn::Tensor ref = nn::run_network(net, ws, in);
  EXPECT_LT(got.max_abs_diff(ref), 1e-5f);
}

}  // namespace
}  // namespace hetacc::core
