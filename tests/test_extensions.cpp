// Tests for the extension features: modular-network coarsening (§7.1),
// throughput reporting, extra devices, and the pipelined-latency metric.

#include <gtest/gtest.h>

#include "core/dp_optimizer.h"
#include "core/report.h"
#include "nn/model_zoo.h"
#include "toolflow/toolflow.h"

namespace hetacc {
namespace {

TEST(ModularNet, StructureAndCoarsening) {
  const nn::Network net = nn::modular_net(4);
  // stem + stem_pool + 4 x (a, b) + 2 pools = 1 + 2 + 8 + 2 layers
  EXPECT_EQ(net.size(), 13u);
  const nn::Network coarse = nn::coarsen_modules(net);
  // Every (a, b) pair becomes one pseudo-layer.
  EXPECT_EQ(coarse.size(), net.size() - 4);
  ASSERT_TRUE(coarse.find("mod1").has_value());
  ASSERT_TRUE(coarse.find("mod4").has_value());
  // Shapes through the coarse chain equal the original boundary shapes.
  EXPECT_EQ(coarse[coarse.size() - 1].out, net[net.size() - 1].out);
}

TEST(ModularNet, CoarseChainOptimizes) {
  const nn::Network coarse = nn::coarsen_modules(nn::modular_net(6));
  const fpga::EngineModel model(fpga::zc706());
  core::OptimizerOptions oo;
  oo.transfer_budget_bytes = 16ll * 1024 * 1024;
  const auto r = core::optimize(coarse, model, oo);
  EXPECT_TRUE(r.feasible);
}

TEST(Devices, Vx690tBiggerThanVc707) {
  const auto small = fpga::vc707();
  const auto big = fpga::vx690t();
  EXPECT_GT(big.capacity.dsp, small.capacity.dsp);
  EXPECT_GT(big.capacity.bram18k, small.capacity.bram18k);
  EXPECT_GT(big.bandwidth_bytes_per_s, small.bandwidth_bytes_per_s);
}

TEST(Devices, BiggerDeviceNeverSlower) {
  const nn::Network head = nn::vgg_e_head();
  core::OptimizerOptions oo;
  oo.transfer_budget_bytes = 4ll * 1024 * 1024;
  const auto on_small =
      core::optimize(head, fpga::EngineModel(fpga::zc706()), oo);
  const auto on_big =
      core::optimize(head, fpga::EngineModel(fpga::vx690t()), oo);
  ASSERT_TRUE(on_small.feasible);
  ASSERT_TRUE(on_big.feasible);
  EXPECT_LE(on_big.strategy.latency_cycles(),
            on_small.strategy.latency_cycles());
}

TEST(Report, ThroughputAtLeastInverseLatency) {
  const nn::Network head = nn::vgg_e_head();
  const fpga::Device dev = fpga::zc706();
  core::OptimizerOptions oo;
  oo.transfer_budget_bytes = 8ll * 1024 * 1024;
  const auto r = core::optimize(head, fpga::EngineModel(dev), oo);
  ASSERT_TRUE(r.feasible);
  const auto rep = core::make_report(r.strategy, head, dev);
  const double latency_fps = 1e3 / rep.latency_ms;
  EXPECT_GE(rep.throughput_fps, latency_fps - 1e-9);
  // With >1 group the pipelined rate strictly exceeds 1/latency.
  if (r.strategy.groups.size() > 1) {
    EXPECT_GT(rep.throughput_fps, latency_fps);
  }
}

TEST(Strategy, PipelinedLatencyNeverExceedsSequential) {
  const nn::Network head = nn::vgg_e_head();
  const fpga::EngineModel model(fpga::zc706());
  core::OptimizerOptions oo;
  oo.transfer_budget_bytes = 34ll * 1024 * 1024;
  const auto r = core::optimize(head, model, oo);
  ASSERT_TRUE(r.feasible);
  EXPECT_LE(r.strategy.pipelined_latency_cycles(),
            r.strategy.latency_cycles());
}

TEST(Bnb, NodeBudgetFlagSurfaces) {
  const nn::Network net = nn::conv_chain(6, 32, 32);
  const fpga::EngineModel model(fpga::zc706());
  core::BnbOptions opt;
  opt.max_nodes = 3;  // absurdly small: the flag must trip
  const auto r = core::fuse_group(net, 1, 6, model, opt);
  // With the proportional seed a (possibly suboptimal) result still exists.
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(r->node_budget_hit);
}

TEST(Bnb, TinyNodeBudgetStillFeasibleAndSeedIsBalanced) {
  const nn::Network net = nn::vgg_e_head();
  const fpga::EngineModel model(fpga::zc706());
  core::BnbOptions small_budget;
  small_budget.max_nodes = 1;
  const auto seeded = core::fuse_group(net, 1, 7, model, small_budget);
  const auto full = core::fuse_group(net, 1, 7, model);
  ASSERT_TRUE(seeded.has_value());
  ASSERT_TRUE(full.has_value());
  // The proportional seed alone is within 2.5x of the converged search.
  EXPECT_LE(seeded->group.timing.latency_cycles,
            (5 * full->group.timing.latency_cycles) / 2);
}

TEST(Toolflow, SummaryMentionsKeyFigures) {
  toolflow::ToolflowOptions opt;
  opt.generate_code = false;
  opt.transfer_budget_bytes = 4 * 1024 * 1024;
  const auto r = toolflow::run_toolflow(nn::vgg_e_head(), fpga::zc706(), opt);
  const std::string s = r.summary();
  EXPECT_NE(s.find("fusion groups"), std::string::npos);
  EXPECT_NE(s.find("GOPS"), std::string::npos);
  EXPECT_NE(s.find("transfer"), std::string::npos);
}

TEST(OptimizerOptions, CoarseUnitStillBudgetSafe) {
  // Large discretization unit must stay conservative (never overspend T).
  const nn::Network head = nn::vgg_e_head();
  const fpga::EngineModel model(fpga::zc706());
  core::OptimizerOptions oo;
  oo.transfer_budget_bytes = 6ll * 1024 * 1024;
  oo.transfer_unit_bytes = 1024 * 1024;  // 1 MB units
  const auto r = core::optimize(head, model, oo);
  if (r.feasible) {
    EXPECT_LE(r.strategy.transfer_bytes(), oo.transfer_budget_bytes);
  }
}

TEST(OptimizerOptions, FinerUnitNeverWorse) {
  const nn::Network head = nn::vgg_e_head();
  const fpga::EngineModel model(fpga::zc706());
  core::OptimizerOptions coarse, fine;
  coarse.transfer_budget_bytes = fine.transfer_budget_bytes =
      8ll * 1024 * 1024;
  coarse.transfer_unit_bytes = 512 * 1024;
  fine.transfer_unit_bytes = 10 * 1024;
  const auto rc = core::optimize(head, model, coarse);
  const auto rf = core::optimize(head, model, fine);
  ASSERT_TRUE(rf.feasible);
  if (rc.feasible) {
    EXPECT_LE(rf.strategy.latency_cycles(), rc.strategy.latency_cycles());
  }
}

TEST(EngineModel, AlexNetConv4FitsViaInputStationaryMode) {
  // conv4's 1.33M weight words exceed the ZC706 BRAM as a resident set; the
  // input-stationary regime must keep it feasible (cf. engine_model.cpp).
  const nn::Network net = nn::alexnet_accel();
  const auto idx = *net.find("conv4");
  const fpga::EngineModel model(fpga::zc706());
  const auto r = core::fuse_group(net, idx, idx, model);
  ASSERT_TRUE(r.has_value());
  EXPECT_LE(r->group.resources().bram18k,
            model.device().capacity.bram18k);
}

TEST(EngineModel, WeightWordsIndependentOfAlgorithm) {
  // Winograd transforms filters on the fly / at load: the DDR weight
  // footprint equals the raw kernel count for both algorithms.
  const nn::Network head = nn::vgg_e_head();
  const fpga::EngineModel model(fpga::zc706());
  const auto conv = model.implement(
      head[2], {fpga::ConvAlgo::kConventional, 2, 2, 1, 4});
  const auto wino =
      model.implement(head[2], {fpga::ConvAlgo::kWinograd, 2, 2, 1, 4});
  EXPECT_EQ(conv.weight_words, wino.weight_words);
  EXPECT_EQ(conv.weight_words, 64ll * 64 * 9);
}

}  // namespace
}  // namespace hetacc
