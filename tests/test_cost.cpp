// Tests of the unified accounting layer (src/cost/): the pure arithmetic,
// exact agreement between the optimizer's stored predictions and a fresh
// cost-layer evaluation for every fused VGG-16 group, cycle-count agreement
// between the optimizer and the simulators, and regression pins for the
// paper-reproduction numbers (EXPERIMENTS.md TAB1 / TAB2).

#include <gtest/gtest.h>

#include <cmath>

#include "arch/ddr_trace.h"
#include "arch/event_sim.h"
#include "arch/pipeline.h"
#include "core/dp_optimizer.h"
#include "core/report.h"
#include "cost/cost_model.h"
#include "cost/group_timing.h"
#include "nn/model_zoo.h"

namespace hetacc {
namespace {

// ------------------------------------------------------- pure arithmetic --

TEST(CostModel, CeilDiv) {
  EXPECT_EQ(cost::ceil_div(0, 4), 0);
  EXPECT_EQ(cost::ceil_div(1, 4), 1);
  EXPECT_EQ(cost::ceil_div(4, 4), 1);
  EXPECT_EQ(cost::ceil_div(5, 4), 2);
  EXPECT_EQ(cost::ceil_div(8, 4), 2);
}

TEST(CostModel, ConventionalConvCycles) {
  // 96 in, 256 out, 5x5 kernel, unrolls (8, 16, 1), 27x27 outputs.
  EXPECT_EQ(cost::conv_cycles_conventional(96, 256, 5, 8, 16, 1, 27 * 27),
            12ll * 16 * 25 * 27 * 27);
  // Non-dividing unrolls round up per loop level.
  EXPECT_EQ(cost::conv_cycles_conventional(3, 64, 3, 2, 3, 2, 10),
            2ll * 22 * 5 * 10);
}

TEST(CostModel, WinogradCyclesAndTiles) {
  EXPECT_EQ(cost::winograd_tile_count(56, 56, 4), 14 * 14);
  EXPECT_EQ(cost::winograd_tile_count(55, 55, 4), 14 * 14);
  EXPECT_EQ(cost::winograd_tile_count(13, 13, 4), 4 * 4);
  EXPECT_EQ(cost::conv_cycles_winograd(64, 64, 4, 8, 196),
            196ll * 16 * 8);
  EXPECT_EQ(cost::conv_cycles_winograd_stride2(64, 64, 4, 8, 196),
            4 * cost::conv_cycles_winograd(64, 64, 4, 8, 196));
  // F(4x4, 3x3): each tile spends n^2 = 36 multiplies per channel pair.
  EXPECT_EQ(cost::winograd_mults(196, 6, 64, 128), 196ll * 36 * 64 * 128);
}

TEST(CostModel, EfficiencyAndLaneCycles) {
  EXPECT_EQ(cost::apply_efficiency(900, 0.90), 1000);
  EXPECT_EQ(cost::apply_efficiency(901, 0.90), 1002);  // ceil
  EXPECT_EQ(cost::lane_cycles(1600, 16, 1.0), 100);
  EXPECT_EQ(cost::lane_cycles(1601, 16, 1.0), 101);
  EXPECT_EQ(cost::lane_cycles(1440, 16, 0.90), 100);
}

TEST(CostModel, TransferAndFill) {
  EXPECT_EQ(cost::transfer_cycles(128, 12.8), 10);
  EXPECT_EQ(cost::transfer_cycles(129, 12.8), 11);
  EXPECT_DOUBLE_EQ(cost::row_transfer_cycles(224, 3, 2, 12.8),
                   224.0 * 3 * 2 / 12.8);
  // 3 prime rows x 224 wide x 64 channels at 16 words/cycle.
  EXPECT_EQ(cost::line_fill_cycles(3, 224, 64, 16), 3ll * 224 * 4);
  EXPECT_EQ(cost::line_fill_cycles(3, 224, 65, 16), 3ll * 224 * 5);
}

TEST(CostModel, GroupLatencyRule) {
  EXPECT_EQ(cost::group_latency(1000, 400, 50), 1050);  // compute-bound
  EXPECT_EQ(cost::group_latency(400, 1000, 50), 1050);  // transfer-bound
  EXPECT_EQ(cost::scale_cycles(100, 1.5), 150);
  EXPECT_EQ(cost::scale_cycles(101, 1.5), 152);  // ceil
}

TEST(CostModel, RateHelpers) {
  EXPECT_DOUBLE_EQ(cost::latency_seconds(100'000'000, 100e6), 1.0);
  EXPECT_DOUBLE_EQ(cost::effective_gops(2'000'000'000, 100'000'000, 100e6),
                   2.0);
  EXPECT_DOUBLE_EQ(cost::effective_gops(123, 0, 100e6), 0.0);
  EXPECT_DOUBLE_EQ(cost::throughput_fps(1'000'000, 100e6), 100.0);
  EXPECT_DOUBLE_EQ(cost::throughput_fps(0, 100e6), 0.0);
}

// ----------------------------------- optimizer == cost layer, exactly --

class Vgg16Agreement : public ::testing::Test {
 protected:
  static const core::OptimizeResult& result() {
    static const core::OptimizeResult r = [] {
      const fpga::Device dev = fpga::zc706();
      const fpga::EngineModel model(dev);
      const nn::Network net = nn::vgg16().accelerated_portion();
      core::OptimizerOptions oo;
      oo.transfer_budget_bytes =
          net.unfused_feature_transfer_bytes(dev.data_bytes) +
          static_cast<long long>(net.size()) * oo.transfer_unit_bytes;
      return core::optimize(net, model, oo);
    }();
    return r;
  }
  fpga::Device dev_ = fpga::zc706();
  nn::Network net_ = nn::vgg16().accelerated_portion();
};

TEST_F(Vgg16Agreement, EveryGroupTimingMatchesFreshCostEvaluation) {
  const auto& r = result();
  ASSERT_TRUE(r.feasible);
  ASSERT_GT(r.strategy.groups.size(), 1u);
  for (const auto& g : r.strategy.groups) {
    // The timing the optimizer stored (its prediction, produced inside the
    // branch-and-bound) must equal a from-scratch evaluation through the
    // cost layer — field for field, exactly.
    const cost::GroupTiming fresh =
        cost::evaluate_group_timing(net_, g.first, g.last, g.impls, dev_);
    EXPECT_EQ(g.timing, fresh) << "group [" << g.first << ", " << g.last
                               << "]";
    // And the latency must obey the single combination rule.
    EXPECT_EQ(g.timing.latency_cycles,
              cost::group_latency(g.timing.compute_cycles,
                                  g.timing.transfer_cycles,
                                  g.timing.fill_cycles));
    EXPECT_EQ(g.resources(), cost::aggregate_resources(g.impls));
  }
}

TEST_F(Vgg16Agreement, StrategyViewsAreOneReduction) {
  const auto& r = result();
  ASSERT_TRUE(r.feasible);
  const core::Strategy& s = r.strategy;
  cost::StrategyTotals t;
  for (const auto& g : s.groups) t.add(g.timing);
  EXPECT_EQ(s.latency_cycles(), t.latency_cycles);
  EXPECT_EQ(s.pipelined_latency_cycles(), t.pipelined_latency_cycles());
  EXPECT_EQ(s.transfer_bytes(), t.transfer_bytes);
  EXPECT_EQ(s.totals().latency_cycles, t.latency_cycles);
  // The overlapped view can never exceed the sequential one.
  EXPECT_LE(s.pipelined_latency_cycles(), s.latency_cycles());
}

TEST_F(Vgg16Agreement, DdrTraceCyclesEqualOptimizerPrediction) {
  const auto& r = result();
  ASSERT_TRUE(r.feasible);
  // The DDR simulator schedules the same groups; its total cycle count must
  // equal the optimizer's predicted latency and its feature traffic the
  // strategy's T — counted, not re-derived.
  const arch::DdrTrace trace = arch::trace_strategy(r.strategy, net_, dev_);
  EXPECT_EQ(trace.total_cycles, r.strategy.latency_cycles());
  EXPECT_EQ(trace.feature_bytes(), r.strategy.transfer_bytes());
  long long weight_bytes = 0;
  for (const auto& g : r.strategy.groups) {
    weight_bytes += cost::weight_words(g.impls) * dev_.data_bytes;
  }
  EXPECT_EQ(trace.weight_bytes(), weight_bytes);
}

TEST_F(Vgg16Agreement, EventSimCountsWithinBandOfPredictionPerGroup) {
  const auto& r = result();
  ASSERT_TRUE(r.feasible);
  // The row-level event simulator executes each fused group; its counted
  // makespan must land in a tight band around the analytic prediction
  // (row-granularity effects keep it from being cycle-exact).
  for (const auto& g : r.strategy.groups) {
    const auto sim =
        arch::simulate_dataflow(net_, g.first, g.last, g.impls, dev_, 64);
    ASSERT_TRUE(sim.completed);
    const double ratio = static_cast<double>(sim.makespan_cycles) /
                         static_cast<double>(g.timing.latency_cycles);
    EXPECT_GT(ratio, 0.7) << "group [" << g.first << ", " << g.last << "]";
    EXPECT_LT(ratio, 1.4) << "group [" << g.first << ", " << g.last << "]";
  }
}

// -------------------------------------------- paper reproduction pins --

TEST(CostRegression, Table1VggHeadAt2MB) {
  // EXPERIMENTS.md TAB1/F5: VGG-E head on ZC706 under T = 2 MB fuses into
  // one group at 2,250,429 cycles (22.50 ms, 501.1 effective GOPS).
  const fpga::Device dev = fpga::zc706();
  const fpga::EngineModel model(dev);
  const nn::Network head = nn::vgg_e_head();
  core::OptimizerOptions oo;
  oo.transfer_budget_bytes = 2 * 1024 * 1024;
  const auto r = core::optimize(head, model, oo);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.strategy.groups.size(), 1u);
  EXPECT_EQ(r.strategy.latency_cycles(), 2'250'429);
  const auto rep = core::make_report(r.strategy, head, dev);
  EXPECT_NEAR(rep.effective_gops, 501.1, 0.5);
  EXPECT_NEAR(rep.latency_ms, 22.50, 0.01);
}

TEST(CostRegression, Table2AlexNetMinimalBudget) {
  // EXPERIMENTS.md TAB2: the ten accelerated AlexNet layers fuse into one
  // group at the smallest feasible budget (320 KB class): 567,041 cycles,
  // 895/900 DSP, 519 BRAM18K.
  const fpga::Device dev = fpga::zc706();
  const fpga::EngineModel model(dev);
  const nn::Network net = nn::alexnet_accel();
  core::OptimizerOptions oo;
  oo.bnb.max_group_layers = net.size() - 1;
  const long long min_budget =
      cost::min_transfer_bytes(net, 1, net.size() - 1, dev.data_bytes);
  core::OptimizeResult r;
  long long budget = min_budget;
  for (; budget < 64ll * 1024 * 1024; budget += 64 * 1024) {
    oo.transfer_budget_bytes = budget;
    r = core::optimize(net, model, oo);
    if (r.feasible) break;
  }
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.strategy.groups.size(), 1u);
  EXPECT_EQ(r.strategy.latency_cycles(), 567'041);
  const auto res = r.strategy.peak_resources();
  EXPECT_EQ(res.dsp, 895);
  EXPECT_EQ(res.bram18k, 519);
}

}  // namespace
}  // namespace hetacc
