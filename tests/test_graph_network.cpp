// Graph-shaped networks: SP-DAG construction, decomposition, the SESE
// fusion gate, chain-equivalence pins (linear nets must be byte-identical
// to the chain-era optimizer), DAG strategy CSV round-trips, and
// reference-vs-pipeline execution on branchy nets.

#include <gtest/gtest.h>

#include "arch/ddr_trace.h"
#include "arch/pipeline.h"
#include "caffe/importer.h"
#include "core/dp_optimizer.h"
#include "core/strategy_io.h"
#include "fpga/device.h"
#include "fpga/engine_model.h"
#include "nn/graph.h"
#include "nn/model_zoo.h"
#include "nn/reference.h"
#include "support/error.h"

namespace hetacc {
namespace {

core::OptimizeResult optimize_default(const nn::Network& net,
                                      core::OptimizerOptions oo = {}) {
  const fpga::Device dev = fpga::zc706();
  const fpga::EngineModel model(dev);
  if (oo.transfer_budget_bytes <= 0) {
    oo.transfer_budget_bytes =
        net.unfused_feature_transfer_bytes(dev.data_bytes) +
        static_cast<long long>(net.size()) * oo.transfer_unit_bytes;
  }
  return core::optimize(net, model, oo);
}

// ------------------------------------------------------------ construction --
TEST(GraphBuild, EdgesMustPointBackwards) {
  nn::Network net("g");
  net.input({4, 8, 8});
  net.conv(4, 3, 1, 1, "a");
  EXPECT_THROW(
      (void)net.conv_from(7, 4, 3, 1, 1, "bad"),  // producer out of range
      std::out_of_range);
  EXPECT_THROW((void)net.eltwise_add({1, 1}, "dup"),  // duplicate producers
               std::invalid_argument);
  EXPECT_THROW((void)net.eltwise_add({1}, "arity"),  // merge needs >= 2
               std::invalid_argument);
}

TEST(GraphBuild, MergeShapeRules) {
  nn::Network net("g");
  net.input({4, 8, 8});
  const std::size_t a = net.conv_from(0, 4, 3, 1, 1, "a");
  const std::size_t b = net.conv_from(0, 8, 3, 1, 1, "b");
  // Eltwise needs equal shapes; concat needs equal spatial dims only.
  EXPECT_THROW((void)net.eltwise_add({a, b}, "bad_add"),
               std::invalid_argument);
  const std::size_t cc = net.concat({a, b}, "cat");
  EXPECT_EQ(net[cc].out, (nn::Shape{12, 8, 8}));
  EXPECT_EQ(net[cc].in, net[cc].out);  // merges: in == out by convention
}

TEST(GraphBuild, ChainStaysChain) {
  EXPECT_TRUE(nn::vgg16().is_chain());
  EXPECT_TRUE(nn::alexnet().is_chain());
  EXPECT_FALSE(nn::inception_mini().is_chain());
  EXPECT_FALSE(nn::resnet_mini().is_chain());
  // Chain layers carry explicit {i-1} edges.
  const nn::Network v = nn::vgg16();
  for (std::size_t i = 1; i < v.size(); ++i) {
    ASSERT_EQ(v[i].inputs.size(), 1u) << i;
    EXPECT_EQ(v[i].inputs.front(), i - 1) << i;
  }
}

TEST(GraphBuild, ConsumersAndDeterministicSummary) {
  const nn::Network a = nn::inception_mini();
  const nn::Network b = nn::inception_mini();
  EXPECT_EQ(a.summary(), b.summary());
  // stem_pool (index 3) feeds all four arms.
  EXPECT_EQ(a.consumers(3).size(), 4u);
  // Chain summaries must not grow edge annotations (byte-compat).
  EXPECT_EQ(nn::vgg16().summary().find("<-"), std::string::npos);
  EXPECT_NE(a.summary().find("<- stem_pool"), std::string::npos);
}

// -------------------------------------------------------------- SP algebra --
TEST(SpDecompose, ChainIsDepthOne) {
  const nn::SpNode t = nn::sp_decompose(nn::conv_chain(6, 8, 16));
  EXPECT_EQ(nn::sp_depth(t), 1);
  EXPECT_EQ(nn::sp_parallel_count(t), 0u);
}

TEST(SpDecompose, ZooNets) {
  const nn::SpNode inc = nn::sp_decompose(nn::inception_mini());
  EXPECT_EQ(nn::sp_depth(inc), 2);
  EXPECT_EQ(nn::sp_parallel_count(inc), 1u);
  const nn::SpNode res = nn::sp_decompose(nn::resnet_mini());
  EXPECT_EQ(nn::sp_depth(res), 2);
  EXPECT_EQ(nn::sp_parallel_count(res), 2u);
}

TEST(SpDecompose, NonSpGraphRejected) {
  // The "N" graph: d consumes both an arm interior and the merge, so no
  // series cut or parallel split separates them.
  nn::Network net("n-graph");
  net.input({4, 8, 8});
  const std::size_t a = net.conv_from(0, 4, 3, 1, 1, "a");
  const std::size_t b = net.conv_from(0, 4, 3, 1, 1, "b");
  const std::size_t c = net.eltwise_add({a, b}, "c");
  (void)net.eltwise_add({a, c}, "d");
  EXPECT_THROW((void)nn::sp_decompose(net), ValidationError);
  // graph_shape stays usable: sp_depth reports 0 for non-SP.
  EXPECT_EQ(nn::graph_shape(net).sp_depth, 0);
}

TEST(GraphShape, SummaryLine) {
  EXPECT_EQ(nn::graph_shape_line(nn::inception_mini()),
            "graph: layers=16 edges=18 branches=1 merges=1 sp_depth=2 "
            "chain=no");
  EXPECT_EQ(nn::graph_shape_line(nn::resnet_mini()),
            "graph: layers=15 edges=16 branches=2 merges=2 sp_depth=2 "
            "chain=no");
  const nn::GraphShape v = nn::graph_shape(nn::vgg16());
  EXPECT_EQ(v.sp_depth, 1);
  EXPECT_EQ(v.edge_count, v.layer_count - 1);
  EXPECT_NE(nn::graph_shape_line(nn::vgg16()).find("chain=yes"),
            std::string::npos);
}

TEST(Sese, GateOnInceptionModule) {
  const nn::Network net = nn::inception_mini();
  // The whole module (arms 4..10 + concat 11) reads only stem_pool: SESE.
  EXPECT_TRUE(nn::is_sese_range(net, 4, 11));
  // Without the concat, the arm outputs leak beyond the range.
  EXPECT_FALSE(nn::is_sese_range(net, 4, 10));
  // A single interior arm is SESE (reduce -> conv reads one producer).
  EXPECT_TRUE(nn::is_sese_range(net, 5, 6));
  // Two sibling arm heads read the same producer but b1's output is
  // consumed past the range end.
  EXPECT_FALSE(nn::is_sese_range(net, 4, 5));
  // A merge alone has four external producers: never a group of its own.
  EXPECT_FALSE(nn::is_sese_range(net, 11, 11));
  // Chains: every range passes.
  const nn::Network v = nn::vgg16();
  for (std::size_t i = 1; i + 2 < v.size(); ++i) {
    EXPECT_TRUE(nn::is_sese_range(v, i, i + 2)) << i;
  }
}

TEST(Slice, MultiEntryRangeRejected) {
  const nn::Network net = nn::inception_mini();
  EXPECT_THROW((void)net.slice(5, 11, "bad"), std::invalid_argument);
  const nn::Network arm = net.slice(5, 6, "arm");
  EXPECT_EQ(arm.size(), 3u);  // synthetic input + reduce + conv
  EXPECT_TRUE(arm.is_chain());
}

// --------------------------------------------------- chain equivalence pins --
// Strategy CSVs captured from the chain-era optimizer (pre-DAG seed) on
// zc706 with the toolflow's default budget. The SP-DAG refactor must
// reproduce them byte for byte.
constexpr const char* kVgg16GoldenCsv =
    R"(group,layer,name,kind,algorithm,wino_m,tn,tm,tk,parallelism,dsp,bram18k,ff,lut,compute_cycles,fill_cycles
0,1,conv1_1,conv,winograd,4,1,1,1,36,36,12,11480,9160,669014,1344
0,2,conv1_2,conv,winograd,4,1,22,1,792,792,184,109760,92320,669014,5376
0,3,pool1,pool,-,0,7,1,1,7,0,56,2185,1680,509725,1792
1,4,conv2_1,conv,winograd,4,5,5,1,900,900,175,123800,104200,294436,2688
2,5,conv2_2,conv,winograd,4,5,5,1,900,900,300,123800,104200,588872,5376
2,6,pool2,pool,-,0,7,1,1,7,0,56,2185,1680,254863,1792
3,7,conv3_1,conv,winograd,4,5,5,1,900,900,400,123800,104200,294436,2688
4,8,conv3_2,conv,winograd,4,5,5,1,900,900,750,123800,104200,588872,5376
5,9,conv3_3,conv,winograd,4,5,5,1,900,900,750,123800,104200,588872,5376
6,10,pool3,pool,-,0,7,1,1,7,0,56,2185,1680,127432,1792
6,11,conv4_1,conv,winograd,4,5,5,1,900,900,225,123800,104200,291605,2688
7,12,conv4_2,conv,winograd,4,5,5,1,900,900,450,123800,104200,577602,5376
8,13,conv4_3,conv,winograd,4,5,5,1,900,900,450,123800,104200,577602,5376
9,14,pool4,pool,-,0,7,1,1,7,0,56,2185,1680,63716,1792
9,15,conv5_1,conv,winograd,4,5,5,1,900,900,150,123800,104200,188605,2688
10,16,conv5_2,conv,winograd,4,5,5,1,900,900,150,123800,104200,188605,2688
11,17,conv5_3,conv,winograd,4,5,5,1,900,900,150,123800,104200,188605,2688
11,18,pool5,pool,-,0,1,1,1,1,0,28,1855,1440,111503,896
)";

TEST(ChainEquivalence, Vgg16StrategyByteIdenticalToSeed) {
  const nn::Network net = nn::vgg16().accelerated_portion();
  const auto res = optimize_default(net);
  ASSERT_TRUE(res.feasible);
  EXPECT_EQ(core::strategy_to_csv(res.strategy, net), kVgg16GoldenCsv);
  EXPECT_EQ(res.strategy.latency_cycles(), 5094918);
  EXPECT_EQ(res.strategy.groups.size(), 12u);
  const auto trace =
      arch::trace_strategy(res.strategy, net, fpga::zc706());
  EXPECT_EQ(trace.total_cycles, 5094918);
}

TEST(ChainEquivalence, AlexnetCyclesAndGroupsPinned) {
  const nn::Network net = nn::alexnet().accelerated_portion();
  const auto res = optimize_default(net);
  ASSERT_TRUE(res.feasible);
  EXPECT_EQ(res.strategy.groups.size(), 4u);
  EXPECT_EQ(res.strategy.latency_cycles(), 509235);
  const auto trace =
      arch::trace_strategy(res.strategy, net, fpga::zc706());
  EXPECT_EQ(trace.total_cycles, 509235);
}

TEST(ChainEquivalence, UnfusedTransferBytesMatchesChainFormula) {
  const nn::Network net = nn::vgg16().accelerated_portion();
  std::int64_t expect = 0;  // chain formula: every layer's input + last out
  for (std::size_t i = 1; i < net.size(); ++i) {
    expect += net[i].in.bytes(2);
  }
  expect += net[net.size() - 1].out.bytes(2);
  EXPECT_EQ(net.unfused_feature_transfer_bytes(2), expect);
}

// -------------------------------------------------------------- DAG costs --
TEST(DagTransfer, CountsEveryEdgeAndSinks) {
  nn::Network net("y");
  net.input({4, 8, 8});
  const std::size_t a = net.conv_from(0, 4, 3, 1, 1, "a");
  const std::size_t b = net.conv_from(a, 4, 3, 1, 1, "b");
  const std::size_t c = net.conv_from(a, 4, 3, 1, 1, "c");
  const std::size_t d = net.eltwise_add({b, c}, "d");
  const std::int64_t t = net[0].out.bytes(2);  // edge 0 -> a
  const std::int64_t e = net[a].out.bytes(2);
  // a is read twice (b and c), b and c once each (d), d is the sink.
  EXPECT_EQ(net.unfused_feature_transfer_bytes(2),
            t + 2 * e + net[b].out.bytes(2) + net[c].out.bytes(2) +
                net[d].out.bytes(2));
}

TEST(Coarsen, CollapsesParallelComposition) {
  const nn::Network full = nn::inception_mini().accelerated_portion();
  ASSERT_EQ(full.size(), 14u);
  const nn::Network coarse = full.coarsen(4, 11, "inc1_module");
  EXPECT_EQ(coarse.size(), 7u);
  EXPECT_TRUE(coarse.is_chain());
  const nn::Layer& pseudo = coarse[4];
  EXPECT_EQ(pseudo.kind, nn::LayerKind::kConv);
  EXPECT_EQ(pseudo.out, full[11].out);
  // fan_in annotation carries the module's op count (far beyond the
  // physical 32 input channels).
  EXPECT_GT(pseudo.conv().fan_in, pseudo.in.c);
  const std::int64_t module_mults = [&] {
    std::int64_t m = 0;
    for (std::size_t i = 4; i <= 11; ++i) m += full[i].mults();
    return m;
  }();
  EXPECT_GE(pseudo.mults(), module_mults);  // >= up to the ceil slack
  EXPECT_LT(pseudo.mults() - module_mults,
            static_cast<std::int64_t>(pseudo.out.elems()));
}

TEST(Coarsen, SpDpStrictlyCheaperThanModuleCoarsening) {
  // The DYNAMAP-style acceptance: co-scheduling the module's arms inside
  // one fusion group (per-arm algorithm choice, Winograd where it wins)
  // strictly beats treating the module as one conventional pseudo-layer.
  const nn::Network full = nn::inception_mini().accelerated_portion();
  const nn::Network coarse = full.coarsen(4, 11, "inc1_module");
  const auto sp = optimize_default(full);
  const auto co = optimize_default(coarse);
  ASSERT_TRUE(sp.feasible);
  ASSERT_TRUE(co.feasible);
  EXPECT_LT(sp.strategy.latency_cycles(), co.strategy.latency_cycles());
}

// ------------------------------------------------------------ fusion gating --
TEST(DpGating, ModuleBiggerThanGroupCapIsDiagnosed) {
  const nn::Network net = nn::inception_mini().accelerated_portion();
  core::OptimizerOptions oo;
  oo.bnb.max_group_layers = 4;  // module needs 8
  const auto res = optimize_default(net, oo);
  EXPECT_FALSE(res.feasible);
  EXPECT_NE(res.infeasible_reason.find("merge layer"), std::string::npos)
      << res.infeasible_reason;
}

TEST(DpGating, BranchyNetsOptimizeEndToEnd) {
  const auto inc = optimize_default(nn::inception_mini().accelerated_portion());
  ASSERT_TRUE(inc.feasible);
  const auto res = optimize_default(nn::resnet_mini().accelerated_portion());
  ASSERT_TRUE(res.feasible);
  // Each strategy covers every non-input layer exactly once, in order.
  for (const auto* r : {&inc, &res}) {
    std::size_t next = 1;
    for (const auto& g : r->strategy.groups) {
      EXPECT_EQ(g.first, next);
      next = g.last + 1;
    }
  }
}

// --------------------------------------------------------- strategy CSV IO --
TEST(StrategyIo, ChainCsvKeepsLegacyHeader) {
  const nn::Network net = nn::alexnet().accelerated_portion();
  const auto res = optimize_default(net);
  ASSERT_TRUE(res.feasible);
  const std::string csv = core::strategy_to_csv(res.strategy, net);
  EXPECT_EQ(csv.find(",inputs"), std::string::npos);
}

TEST(StrategyIo, DagCsvRoundTrips) {
  const nn::Network net = nn::inception_mini().accelerated_portion();
  const auto res = optimize_default(net);
  ASSERT_TRUE(res.feasible);
  const std::string csv = core::strategy_to_csv(res.strategy, net);
  EXPECT_NE(csv.find(",inputs"), std::string::npos);
  EXPECT_NE(csv.find("|"), std::string::npos);  // concat row: multi-producer
  const core::Strategy back =
      core::strategy_from_csv(csv, net, fpga::zc706());
  EXPECT_EQ(back.latency_cycles(), res.strategy.latency_cycles());
  ASSERT_EQ(back.groups.size(), res.strategy.groups.size());
  for (std::size_t g = 0; g < back.groups.size(); ++g) {
    EXPECT_EQ(back.groups[g].first, res.strategy.groups[g].first);
    EXPECT_EQ(back.groups[g].last, res.strategy.groups[g].last);
  }
}

TEST(StrategyIo, DagCsvTopologyMismatchRejected) {
  const nn::Network net = nn::inception_mini().accelerated_portion();
  const auto res = optimize_default(net);
  ASSERT_TRUE(res.feasible);
  std::string csv = core::strategy_to_csv(res.strategy, net);
  // Tamper with the concat row's producer list.
  const std::size_t pos = csv.find("|");
  ASSERT_NE(pos, std::string::npos);
  csv[pos + 1] = csv[pos + 1] == '9' ? '8' : '9';
  EXPECT_THROW((void)core::strategy_from_csv(csv, net, fpga::zc706()),
               ParseError);
}

// ------------------------------------------------- reference vs pipeline --
void expect_pipeline_matches_reference(const nn::Network& accel,
                                       std::uint32_t seed) {
  const auto ws = nn::WeightStore::deterministic(accel, 7u);
  arch::FusionPipeline pipe(accel, ws);
  nn::Tensor in(accel[0].out);
  nn::fill_deterministic(in, seed);
  const nn::Tensor ref = nn::run_network(accel, ws, in);
  const nn::Tensor got = pipe.run(in);
  ASSERT_EQ(got.shape(), ref.shape());
  EXPECT_LT(got.max_abs_diff(ref), 1e-3f);
}

TEST(PipelineVsReference, SkipNet) {
  expect_pipeline_matches_reference(nn::resnet_mini().accelerated_portion(),
                                    11u);
}

TEST(PipelineVsReference, InceptionNet) {
  expect_pipeline_matches_reference(
      nn::inception_mini().accelerated_portion(), 13u);
}

TEST(PipelineVsReference, DagBatchMatchesSerialRuns) {
  const nn::Network accel = nn::resnet_mini().accelerated_portion();
  const auto ws = nn::WeightStore::deterministic(accel, 7u);
  arch::FusionPipeline pipe(accel, ws);
  std::vector<nn::Tensor> inputs;
  for (std::uint32_t s = 0; s < 4; ++s) {
    nn::Tensor t(accel[0].out);
    nn::fill_deterministic(t, 100u + s);
    inputs.push_back(std::move(t));
  }
  const auto batch = pipe.run_batch(inputs, /*threads=*/4);
  ASSERT_EQ(batch.size(), inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    EXPECT_EQ(batch[i].max_abs_diff(pipe.run(inputs[i])), 0.0f) << i;
  }
}

TEST(Pipeline, MergeLayersHaveNoEngine) {
  const nn::Network accel = nn::resnet_mini().accelerated_portion();
  const auto ws = nn::WeightStore::deterministic(accel, 7u);
  arch::FusionPipeline pipe(accel, ws);
  bool saw_merge = false;
  for (std::size_t i = 0; i + 1 < accel.size(); ++i) {
    if (accel[i + 1].is_merge()) {
      saw_merge = true;
      EXPECT_FALSE(pipe.has_engine(i));
      EXPECT_THROW((void)pipe.engine(i), std::logic_error);
    } else {
      EXPECT_TRUE(pipe.has_engine(i));
    }
  }
  EXPECT_TRUE(saw_merge);
}

// -------------------------------------------------------------- importer --
TEST(ImportGraph, InceptionRoundTripsThroughPrototxt) {
  const nn::Network built = nn::inception_mini();
  const nn::Network again =
      caffe::import_prototxt(caffe::export_prototxt(built));
  ASSERT_EQ(again.size(), built.size());
  for (std::size_t i = 0; i < built.size(); ++i) {
    EXPECT_EQ(again[i].kind, built[i].kind) << i;
    EXPECT_EQ(again[i].name, built[i].name) << i;
    EXPECT_EQ(again[i].out, built[i].out) << i;
    EXPECT_EQ(again[i].inputs, built[i].inputs) << i;
    if (built[i].kind == nn::LayerKind::kConv) {
      EXPECT_EQ(again[i].conv().fused_relu, built[i].conv().fused_relu) << i;
    }
  }
}

TEST(ImportGraph, ResnetRoundTripsThroughPrototxt) {
  const nn::Network built = nn::resnet_mini();
  const nn::Network again =
      caffe::import_prototxt(caffe::export_prototxt(built));
  ASSERT_EQ(again.size(), built.size());
  for (std::size_t i = 0; i < built.size(); ++i) {
    EXPECT_EQ(again[i].kind, built[i].kind) << i;
    EXPECT_EQ(again[i].inputs, built[i].inputs) << i;
  }
}

TEST(ImportGraph, DanglingBottomCarriesLine) {
  try {
    (void)caffe::import_prototxt(
        "input: \"data\"\ninput_dim: 1\ninput_dim: 3\n"
        "input_dim: 8\ninput_dim: 8\n"
        "layer { name: \"c\" type: \"Convolution\" bottom: \"nope\"\n"
        "        top: \"c\"\n"
        "        convolution_param { num_output: 2 kernel_size: 3 } }\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("dangling bottom"),
              std::string::npos);
    EXPECT_EQ(e.line(), 6);
  }
}

TEST(ImportGraph, DuplicateTopRejected) {
  try {
    (void)caffe::import_prototxt(
        "input: \"data\"\ninput_dim: 1\ninput_dim: 3\n"
        "input_dim: 8\ninput_dim: 8\n"
        "layer { name: \"a\" type: \"Convolution\" bottom: \"data\" "
        "top: \"x\"\n convolution_param { num_output: 2 kernel_size: 3 } }\n"
        "layer { name: \"b\" type: \"Convolution\" bottom: \"data\" "
        "top: \"x\"\n convolution_param { num_output: 2 kernel_size: 3 } }\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate top"), std::string::npos);
    EXPECT_GT(e.line(), 0);
  }
}

TEST(ImportGraph, ForwardReferenceDiagnosedAsCycle) {
  try {
    (void)caffe::import_prototxt(
        "input: \"data\"\ninput_dim: 1\ninput_dim: 3\n"
        "input_dim: 8\ninput_dim: 8\n"
        "layer { name: \"a\" type: \"Convolution\" bottom: \"b_out\" "
        "top: \"a_out\"\n convolution_param { num_output: 2 kernel_size: 3 "
        "} }\n"
        "layer { name: \"b\" type: \"Convolution\" bottom: \"data\" "
        "top: \"b_out\"\n convolution_param { num_output: 2 kernel_size: 3 "
        "} }\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("produced later"),
              std::string::npos);
  }
}

TEST(ImportGraph, UnsupportedMergeVariantsRejected) {
  const std::string header =
      "input: \"data\"\ninput_dim: 1\ninput_dim: 3\n"
      "input_dim: 8\ninput_dim: 8\n"
      "layer { name: \"a\" type: \"Convolution\" bottom: \"data\" "
      "top: \"a\"\n convolution_param { num_output: 4 kernel_size: 3 pad: 1 "
      "} }\n"
      "layer { name: \"b\" type: \"Convolution\" bottom: \"data\" "
      "top: \"b\"\n convolution_param { num_output: 4 kernel_size: 3 pad: 1 "
      "} }\n";
  EXPECT_THROW((void)caffe::import_prototxt(
                   header +
                   "layer { name: \"m\" type: \"Eltwise\" bottom: \"a\" "
                   "bottom: \"b\" top: \"m\"\n eltwise_param { operation: "
                   "PROD } }\n"),
               ParseError);
  EXPECT_THROW((void)caffe::import_prototxt(
                   header +
                   "layer { name: \"m\" type: \"Concat\" bottom: \"a\" "
                   "bottom: \"b\" top: \"m\"\n concat_param { axis: 2 } }\n"),
               ParseError);
  // The supported forms import.
  const nn::Network ok = caffe::import_prototxt(
      header +
      "layer { name: \"m\" type: \"Eltwise\" bottom: \"a\" bottom: \"b\" "
      "top: \"m\"\n eltwise_param { operation: SUM } }\n");
  EXPECT_EQ(ok[ok.size() - 1].kind, nn::LayerKind::kEltwiseAdd);
}

}  // namespace
}  // namespace hetacc
