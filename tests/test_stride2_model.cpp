// Optimizer integration of the stride-2 Winograd decomposition (opt-in).

#include <gtest/gtest.h>

#include "core/dp_optimizer.h"
#include "nn/model_zoo.h"

namespace hetacc::fpga {
namespace {

/// A ResNet-like stem: 7x7 s2 conv, pool, then 3x3 s2 downsampling convs.
nn::Network resnet_stem() {
  nn::Network net("resnet-stem");
  net.input({3, 224, 224});
  net.conv(64, 7, 2, 3, "conv1");
  net.max_pool(3, 2, "pool1");
  net.conv(64, 3, 1, 1, "conv2a");
  net.conv(128, 3, 2, 1, "conv3a");  // stride-2 downsample
  net.conv(128, 3, 1, 1, "conv3b");
  return net;
}

TEST(Stride2Model, CandidatesAppearOnlyWhenEnabled) {
  const nn::Network net = resnet_stem();
  const nn::Layer& down = net[*net.find("conv3a")];
  const EngineModel off(zc706());
  for (const auto& c : off.candidates(down)) {
    EXPECT_NE(c.algo, ConvAlgo::kWinogradStride2);
  }
  EngineModelParams p;
  p.enable_stride2_winograd = true;
  const EngineModel on(zc706(), p);
  bool found = false;
  for (const auto& c : on.candidates(down)) {
    found |= c.algo == ConvAlgo::kWinogradStride2;
  }
  EXPECT_TRUE(found);
}

TEST(Stride2Model, NeverOfferedForStride1OrStride4) {
  EngineModelParams p;
  p.enable_stride2_winograd = true;
  const EngineModel model(zc706(), p);
  const nn::Network net = resnet_stem();
  for (const char* name : {"conv2a", "conv3b"}) {  // stride 1
    for (const auto& c : model.candidates(net[*net.find(name)])) {
      EXPECT_NE(c.algo, ConvAlgo::kWinogradStride2) << name;
    }
  }
  const nn::Network alex = nn::alexnet_accel();  // conv1 stride 4
  for (const auto& c : model.candidates(alex[1])) {
    EXPECT_NE(c.algo, ConvAlgo::kWinogradStride2);
  }
}

TEST(Stride2Model, MultReductionVersusConventional) {
  const nn::Network net = resnet_stem();
  const nn::Layer& down = net[*net.find("conv3a")];
  const EngineConfig conv{ConvAlgo::kConventional, 1, 1, 1, 4};
  const EngineConfig s2{ConvAlgo::kWinogradStride2, 1, 1, 1, 4};
  const double reduction =
      static_cast<double>(EngineModel::algo_mults(down, conv)) /
      static_cast<double>(EngineModel::algo_mults(down, s2));
  // 3x3 s2 at m=4: 9 vs 4*25/16 = 6.25 mults/output -> 1.44x.
  EXPECT_NEAR(reduction, 1.44, 0.15);
}

TEST(Stride2Model, ImplementValidatesGeometry) {
  const nn::Network net = resnet_stem();
  EngineModelParams p;
  p.enable_stride2_winograd = true;
  const EngineModel model(zc706(), p);
  const nn::Layer& s1 = net[*net.find("conv2a")];
  EXPECT_THROW(
      (void)model.implement(s1, {ConvAlgo::kWinogradStride2, 1, 1, 1, 4}),
      std::invalid_argument);
  const nn::Layer& down = net[*net.find("conv3a")];
  const auto ipl =
      model.implement(down, {ConvAlgo::kWinogradStride2, 1, 2, 1, 4});
  // Phase engine: r=2, n=5 -> 25 DSP per (tn, tm) pair.
  EXPECT_EQ(ipl.res.dsp, 25 * 2);
  EXPECT_GT(ipl.compute_cycles, 0);
}

TEST(Stride2Model, OptimizerUsesItWhenItHelps) {
  const nn::Network net = resnet_stem();
  EngineModelParams p;
  p.enable_stride2_winograd = true;
  const EngineModel with(zc706(), p);
  const EngineModel without(zc706());
  core::OptimizerOptions oo;
  oo.transfer_budget_bytes = 16ll * 1024 * 1024;
  const auto a = core::optimize(net, with, oo);
  const auto b = core::optimize(net, without, oo);
  ASSERT_TRUE(a.feasible);
  ASSERT_TRUE(b.feasible);
  EXPECT_LE(a.strategy.latency_cycles(), b.strategy.latency_cycles());
  bool used = false;
  for (const auto& g : a.strategy.groups) {
    for (const auto& ipl : g.impls) {
      used |= ipl.cfg.algo == ConvAlgo::kWinogradStride2;
    }
  }
  // 7x7 s2 conv1 dominates the stem; the decomposition gives it a 3x-class
  // multiplication cut, so the optimizer should adopt it somewhere.
  EXPECT_TRUE(used);
}

}  // namespace
}  // namespace hetacc::fpga
