#include "arch/ddr_trace.h"

#include <gtest/gtest.h>

#include "core/dp_optimizer.h"
#include "nn/model_zoo.h"

namespace hetacc::arch {
namespace {

class DdrTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = nn::vgg_e_head();
    const fpga::EngineModel model(dev_);
    core::OptimizerOptions oo;
    oo.transfer_budget_bytes = 8ll * 1024 * 1024;
    result_ = core::optimize(net_, model, oo);
    ASSERT_TRUE(result_.feasible);
    trace_ = trace_strategy(result_.strategy, net_, dev_);
  }

  nn::Network net_;
  fpga::Device dev_ = fpga::zc706();
  core::OptimizeResult result_;
  DdrTrace trace_;
};

TEST_F(DdrTraceTest, FeatureBytesMatchStrategyAccounting) {
  EXPECT_EQ(trace_.feature_bytes(), result_.strategy.transfer_bytes());
}

TEST_F(DdrTraceTest, WeightBytesMatchLayerFootprints) {
  long long expected = 0;
  for (const auto& g : result_.strategy.groups) {
    for (const auto& ipl : g.impls) {
      expected += ipl.weight_words * dev_.data_bytes;
    }
  }
  EXPECT_EQ(trace_.weight_bytes(), expected);
}

TEST_F(DdrTraceTest, TransactionsOrderedAndWithinRun) {
  ASSERT_FALSE(trace_.transactions.empty());
  for (const auto& t : trace_.transactions) {
    EXPECT_LE(t.start_cycle, t.end_cycle);
    EXPECT_GE(t.start_cycle, 0);
    EXPECT_LE(t.end_cycle, trace_.total_cycles);
    EXPECT_GT(t.bytes, 0);
  }
}

TEST_F(DdrTraceTest, EveryGroupLoadsAndStoresOnce) {
  for (std::size_t gi = 0; gi < result_.strategy.groups.size(); ++gi) {
    int loads = 0, stores = 0;
    for (const auto& t : trace_.transactions) {
      if (t.group != gi) continue;
      loads += t.op == DdrOp::kLoadFeature;
      stores += t.op == DdrOp::kStoreFeature;
    }
    EXPECT_EQ(loads, 1) << gi;
    EXPECT_EQ(stores, 1) << gi;
  }
}

TEST_F(DdrTraceTest, UtilizationBelowPeakAndPositive) {
  const double u = trace_.bandwidth_utilization(dev_);
  EXPECT_GT(u, 0.0);
  EXPECT_LE(u, 1.0);
}

TEST_F(DdrTraceTest, FusionReducesUtilizationVsUnfused) {
  core::Strategy unfused;
  const fpga::EngineModel model(dev_);
  for (std::size_t i = 1; i < net_.size(); ++i) {
    const auto g = core::fuse_group(net_, i, i, model);
    ASSERT_TRUE(g.has_value());
    unfused.groups.push_back(g->group);
  }
  const DdrTrace u = trace_strategy(unfused, net_, dev_);
  EXPECT_GT(u.feature_bytes(), trace_.feature_bytes());
}

TEST_F(DdrTraceTest, CsvWellFormed) {
  const std::string csv = trace_.to_csv();
  EXPECT_EQ(csv.rfind("group,op,what,bytes", 0), 0u);
  const auto lines = std::count(csv.begin(), csv.end(), '\n');
  EXPECT_EQ(static_cast<std::size_t>(lines),
            trace_.transactions.size() + 1);
  EXPECT_NE(csv.find("load_weights"), std::string::npos);
  EXPECT_NE(csv.find("store_feature"), std::string::npos);
}

TEST_F(DdrTraceTest, TotalCyclesAtLeastStrategyLatency) {
  EXPECT_GE(trace_.total_cycles, result_.strategy.latency_cycles());
}

}  // namespace
}  // namespace hetacc::arch
