#include "toolflow/sweep.h"

#include <gtest/gtest.h>

#include "nn/model_zoo.h"

namespace hetacc::toolflow {
namespace {

constexpr long long kMB = 1024 * 1024;

TEST(Sweep, BudgetGridProducesMonotoneFrontier) {
  const nn::Network head = nn::vgg_e_head();
  const fpga::EngineModel model(fpga::zc706());
  SweepOptions opt;
  opt.budgets_bytes = {1 * kMB, 2 * kMB, 4 * kMB, 16 * kMB};
  const auto points = sweep_budgets(head, model, opt);
  ASSERT_EQ(points.size(), 4u);
  EXPECT_FALSE(points[0].feasible);  // 1 MB < minimal fused transfer
  double prev_latency = 1e300;
  for (std::size_t i = 1; i < points.size(); ++i) {
    ASSERT_TRUE(points[i].feasible) << i;
    EXPECT_LE(points[i].report.latency_ms, prev_latency + 1e-9);
    prev_latency = points[i].report.latency_ms;
  }
}

TEST(Sweep, MultiDeviceCoversAll) {
  const nn::Network head = nn::vgg_e_head();
  SweepOptions opt;
  opt.budgets_bytes = {4 * kMB};
  const auto points = sweep_devices(
      head, {fpga::zc706(), fpga::vc707(), fpga::vx690t()}, opt);
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points[0].device, "ZC706");
  EXPECT_EQ(points[2].device, "VX690T");
  for (const auto& p : points) EXPECT_TRUE(p.feasible);
  // More DSPs -> more performance.
  EXPECT_GT(points[2].report.effective_gops,
            points[0].report.effective_gops);
}

TEST(Sweep, CsvShapeAndInfeasibleRows) {
  const nn::Network head = nn::vgg_e_head();
  const fpga::EngineModel model(fpga::zc706());
  SweepOptions opt;
  opt.budgets_bytes = {1 * kMB, 4 * kMB};
  const std::string csv = sweep_to_csv(sweep_budgets(head, model, opt));
  EXPECT_EQ(csv.rfind("device,budget_mb,feasible", 0), 0u);
  EXPECT_NE(csv.find("ZC706,1,0,"), std::string::npos);
  EXPECT_NE(csv.find("ZC706,4,1,"), std::string::npos);
}

}  // namespace
}  // namespace hetacc::toolflow
