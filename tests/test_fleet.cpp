// Fleet-serving runtime: shared prepack bundles (warm construction aliases,
// reset() never invalidates peers), the refcounted PrepackCache, the
// deterministic batch close rule and its edge cases, weighted-fair (DRR)
// admission, replica autoscale, the one-shared-worker-pool execution model,
// and the fleet determinism contract — same traces + config produce
// byte-identical FleetStats for any worker-thread count.

#include <gtest/gtest.h>

#include <atomic>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "arch/pipeline.h"
#include "fault/fault.h"
#include "fault/fleet_fault.h"
#include "serve/breaker.h"
#include "kernels/parallel.h"
#include "nn/model_zoo.h"
#include "serve/fleet.h"
#include "serve/prepack_cache.h"
#include "support/error.h"

namespace hetacc {
namespace {

using arch::FusionPipeline;
using serve::ArrivalTrace;
using serve::FleetConfig;
using serve::FleetModel;
using serve::FleetServer;
using serve::FleetStats;
using serve::PrepackCache;
using serve::TenantConfig;

nn::Tensor probe_input(const nn::Network& net) {
  nn::Tensor t(net[0].out);
  nn::fill_deterministic(t, 7);
  return t;
}

// ------------------------------------------------- shared prepack bundles --
class PrepackShareTest : public ::testing::Test {
 protected:
  PrepackShareTest()
      : net_(nn::tiny_net(4, 16)),
        ws_(nn::WeightStore::deterministic(net_, 21)),
        input_(probe_input(net_)) {}
  nn::Network net_;
  nn::WeightStore ws_;
  nn::Tensor input_;
};

TEST_F(PrepackShareTest, WarmConstructionAliasesThePeerBundle) {
  FusionPipeline a(net_, ws_);
  ASSERT_NE(a.shared_prepack(), nullptr);
  EXPECT_GT(a.shared_prepack()->resident_bytes(), 0);

  FusionPipeline b(net_, ws_, {}, a.shared_prepack());
  EXPECT_EQ(a.shared_prepack().get(), b.shared_prepack().get());
  EXPECT_EQ(a.run(input_), b.run(input_));
}

TEST_F(PrepackShareTest, CleanResetKeepsTheSharedBundle) {
  FusionPipeline a(net_, ws_);
  FusionPipeline b(net_, ws_, {}, a.shared_prepack());
  const nn::Tensor golden = a.run(input_);

  b.reset();  // clean: value-identical re-derive is skipped, aliasing kept
  EXPECT_EQ(a.shared_prepack().get(), b.shared_prepack().get());
  EXPECT_EQ(b.run(input_), golden);
}

TEST_F(PrepackShareTest, FaultedRederiveNeverInvalidatesPeers) {
  FusionPipeline a(net_, ws_);
  FusionPipeline b(net_, ws_, {}, a.shared_prepack());
  const nn::Tensor golden = a.run(input_);
  const auto before = a.shared_prepack();

  // Installing a plan re-derives a's constants from struck filter copies —
  // into a fresh private bundle. The peer keeps the original, untouched.
  fault::FaultPlan p;
  p.seed = 3;
  p.weight_panel_flip_rate = 1.0;
  a.install_fault_plan(p);
  EXPECT_NE(a.shared_prepack().get(), before.get());
  EXPECT_EQ(b.shared_prepack().get(), before.get());
  EXPECT_NE(a.run(input_), golden);
  EXPECT_EQ(b.run(input_), golden);

  a.clear_fault_plan();
  EXPECT_EQ(a.run(input_), golden);
  EXPECT_EQ(b.shared_prepack().get(), before.get());
}

// -------------------------------------------------------- refcounted cache --
TEST_F(PrepackShareTest, CacheRefcountsSharesAndEvicts) {
  PrepackCache cache(/*share=*/true);
  int builds = 0;
  const PrepackCache::Builder build = [&] {
    ++builds;
    FusionPipeline p(net_, ws_);
    return p.shared_prepack();
  };

  const auto l1 = cache.acquire("m/r0", build);
  EXPECT_FALSE(l1.hit);
  EXPECT_EQ(builds, 1);
  const long long bytes = l1.bundle->resident_bytes();
  ASSERT_GT(bytes, 0);

  const auto l2 = cache.acquire("m/r0", build);
  EXPECT_TRUE(l2.hit);
  EXPECT_EQ(builds, 1);  // served from residence, not rebuilt
  EXPECT_EQ(l1.bundle.get(), l2.bundle.get());
  EXPECT_EQ(cache.refcount("m/r0"), 2);
  EXPECT_EQ(cache.stats().hits, 1);
  EXPECT_EQ(cache.stats().misses, 1);
  EXPECT_EQ(cache.stats().resident_bytes, bytes);
  EXPECT_EQ(cache.stats().bytes_saved, bytes);

  cache.release(l1);
  EXPECT_EQ(cache.refcount("m/r0"), 1);
  EXPECT_EQ(cache.stats().evictions, 0);
  cache.release(l2);
  EXPECT_EQ(cache.refcount("m/r0"), 0);
  EXPECT_EQ(cache.stats().evictions, 1);
  EXPECT_EQ(cache.stats().resident_bytes, 0);
  EXPECT_EQ(cache.stats().peak_resident_bytes, bytes);
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_THROW(cache.release(l2), std::logic_error);
}

TEST_F(PrepackShareTest, UnsharedCacheBuildsPrivateCopies) {
  PrepackCache cache(/*share=*/false);
  int builds = 0;
  const PrepackCache::Builder build = [&] {
    ++builds;
    FusionPipeline p(net_, ws_);
    return p.shared_prepack();
  };

  const auto l1 = cache.acquire("m/r0", build);
  const auto l2 = cache.acquire("m/r0", build);
  EXPECT_FALSE(l1.hit);
  EXPECT_FALSE(l2.hit);
  EXPECT_EQ(builds, 2);
  EXPECT_NE(l1.bundle.get(), l2.bundle.get());
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_EQ(cache.stats().bytes_saved, 0);
  EXPECT_EQ(cache.stats().resident_bytes, 2 * l1.bundle->resident_bytes());
}

// ------------------------------------------------------------ fleet fixture --
FleetModel tiny_model(const std::string& name, int replicas,
                      std::vector<long long> rung_cycles, std::size_t home,
                      std::uint32_t seed = 21) {
  FleetModel m;
  m.name = name;
  m.net = nn::tiny_net(4, 16);
  m.ws = nn::WeightStore::deterministic(m.net, seed);
  for (std::size_t i = 0; i < rung_cycles.size(); ++i) {
    serve::ServingMode r;
    r.label = "r" + std::to_string(i);
    r.service_cycles = rung_cycles[i];
    m.ladder.rungs.push_back(std::move(r));
  }
  m.ladder.home = home;
  m.replicas = replicas;
  return m;
}

TenantConfig tenant(const std::string& name, std::size_t model, int weight,
                    std::size_t batch_cap, long long batch_age,
                    long long deadline = 0) {
  TenantConfig t;
  t.name = name;
  t.model = model;
  t.weight = weight;
  t.queue_capacity = 32;
  t.deadline_cycles = deadline;
  t.batch_cap = batch_cap;
  t.batch_age_cycles = batch_age;
  return t;
}

ArrivalTrace at_cycles(const std::vector<long long>& cycles) {
  ArrivalTrace t;
  for (std::size_t i = 0; i < cycles.size(); ++i) {
    t.requests.push_back(
        {i, cycles[i], static_cast<std::uint32_t>(100 + i)});
  }
  return t;
}

// -------------------------------------------------------- config validation --
TEST(FleetConfigTest, RejectsMalformedModelsAndTenants) {
  const auto model = [] { return tiny_model("m", 1, {1000}, 0); };
  // Tenant pointing past the model list.
  EXPECT_THROW(FleetServer({model()}, {tenant("t", 1, 1, 8, 0)}, {}),
               ServeError);
  // DRR weight below 1 cannot make progress.
  EXPECT_THROW(FleetServer({model()}, {tenant("t", 0, 0, 8, 0)}, {}),
               ServeError);
  // A batch cap of zero can never close a batch.
  EXPECT_THROW(FleetServer({model()}, {tenant("t", 0, 1, 0, 0)}, {}),
               ServeError);
  // setup fraction must leave per-request work positive.
  FleetConfig cfg;
  cfg.batch_setup_frac = 1.0;
  EXPECT_THROW(FleetServer({model()}, {tenant("t", 0, 1, 8, 0)}, cfg),
               ServeError);
  // Deeper rungs must be strictly faster.
  EXPECT_THROW(
      FleetServer({tiny_model("m", 1, {1000, 1000}, 0)},
                  {tenant("t", 0, 1, 8, 0)}, {}),
      ServeError);
}

// ------------------------------------------------------- batch close rule --
TEST(FleetBatchingTest, CapClosesABatchTheMomentItFills) {
  FleetConfig cfg;
  FleetServer fleet({tiny_model("m", 1, {1000}, 0)},
                    {tenant("t", 0, 1, /*cap=*/4, /*age=*/1000000)}, cfg);
  const FleetStats s = fleet.run({at_cycles({0, 0, 0, 0})});
  ASSERT_TRUE(s.accounted());
  EXPECT_EQ(s.models[0].batches, 1);
  ASSERT_GT(s.models[0].batch_size_counts.size(), 4u);
  EXPECT_EQ(s.models[0].batch_size_counts[4], 1);
  EXPECT_EQ(s.tenants[0].completed, 4);
}

TEST(FleetBatchingTest, AgeBudgetDispatchesASingleStraggler) {
  FleetConfig cfg;  // batch_setup_frac default: svc(1) == service exactly
  FleetServer fleet({tiny_model("m", 1, {1000}, 0)},
                    {tenant("t", 0, 1, /*cap=*/8, /*age=*/500)}, cfg);
  const FleetStats s = fleet.run({at_cycles({0})});
  ASSERT_TRUE(s.accounted());
  EXPECT_EQ(s.models[0].batches, 1);
  EXPECT_EQ(s.models[0].batch_size_counts[1], 1);
  // The straggler waits its full age budget, then serves svc(1) == 1000.
  EXPECT_EQ(s.tenants[0].latency.p50(), 1500);
  EXPECT_EQ(s.makespan_cycles, 1500);
}

TEST(FleetBatchingTest, CapArrivingExactlyAtTheAgeDeadlineIsDeterministic) {
  // The second request lands exactly on the first one's close cycle. The
  // event order pins the outcome: the close timer fires before the
  // same-cycle arrival, so the rule deterministically produces two
  // single-request batches — never a race between cap and age.
  FleetConfig cfg;
  FleetServer fleet({tiny_model("m", 1, {1000}, 0)},
                    {tenant("t", 0, 1, /*cap=*/2, /*age=*/50)}, cfg);
  const FleetStats s = fleet.run({at_cycles({0, 50})});
  ASSERT_TRUE(s.accounted());
  EXPECT_EQ(s.models[0].batches, 2);
  EXPECT_EQ(s.models[0].batch_size_counts[1], 2);
  EXPECT_EQ(s.tenants[0].completed, 2);
}

TEST(FleetBatchingTest, EmptyLullTimersAreHarmlessNoOps) {
  // A long silent gap between arrivals: the armed close timer outlives its
  // batch, fires into an empty queue, and must neither dispatch anything
  // nor stall termination.
  FleetConfig cfg;
  FleetServer fleet({tiny_model("m", 1, {1000}, 0)},
                    {tenant("t", 0, 1, /*cap=*/8, /*age=*/500)}, cfg);
  const FleetStats s = fleet.run({at_cycles({0, 100000})});
  ASSERT_TRUE(s.accounted());
  EXPECT_EQ(s.models[0].batches, 2);
  EXPECT_EQ(s.models[0].batch_size_counts[1], 2);
  EXPECT_EQ(s.makespan_cycles, 101500);
}

// ------------------------------------------------------------ DRR fairness --
TEST(FleetDrrTest, BurstyTenantCannotStarveItsSteadyNeighbor) {
  // One replica at 1000 cycles/request. The bursty tenant floods 100
  // requests almost at once; the steady tenant trickles well under its
  // fair share. DRR (weight 2:1) must keep serving the steady tenant out
  // of the middle of the backlog instead of draining the flood first.
  std::vector<long long> steady_cycles, burst_cycles;
  for (int i = 0; i < 40; ++i) steady_cycles.push_back(2000LL * i);
  for (int i = 0; i < 100; ++i) burst_cycles.push_back(10LL * i);
  TenantConfig steady = tenant("steady", 0, 2, 8, 1000);
  TenantConfig bursty = tenant("bursty", 0, 1, 8, 1000);
  bursty.queue_capacity = 128;

  FleetConfig cfg;
  FleetServer fleet({tiny_model("m", 1, {1000}, 0)}, {steady, bursty}, cfg);
  const FleetStats s =
      fleet.run({at_cycles(steady_cycles), at_cycles(burst_cycles)});
  ASSERT_TRUE(s.accounted());
  EXPECT_EQ(s.tenants[0].completed, 40);
  EXPECT_EQ(s.tenants[0].rejected_queue_full, 0);
  EXPECT_EQ(s.tenants[1].completed, 100);
  // The steady tenant's tail must not absorb the flood's queueing delay.
  EXPECT_LT(s.tenants[0].latency.p99(), s.tenants[1].latency.p99());
}

// -------------------------------------------------------------- autoscale --
TEST(FleetAutoscaleTest, OscillatingLoadScalesUpAndBackDown) {
  FleetConfig cfg;
  cfg.autoscale.enabled = true;
  cfg.autoscale.min_replicas = 1;
  cfg.autoscale.max_replicas = 4;
  cfg.autoscale.up_queue_frac = 0.15;
  cfg.autoscale.down_queue_frac = 0.05;
  cfg.autoscale.up_streak = 4;
  cfg.autoscale.down_streak = 12;
  cfg.autoscale.dwell_cycles = 4000;
  cfg.autoscale.spinup_cold_cycles = 2000;
  cfg.autoscale.spinup_warm_cycles = 250;

  TenantConfig t = tenant("osc", 0, 1, 8, 1000, /*deadline=*/12000);
  const ArrivalTrace trace = ArrivalTrace::oscillating(
      /*periods=*/6, /*per_phase=*/40, /*burst=*/250, /*lull=*/3000,
      /*seed=*/11);
  FleetServer fleet({tiny_model("m", 2, {1000}, 0)}, {t}, cfg);
  const FleetStats s = fleet.run({trace});
  ASSERT_TRUE(s.accounted());
  EXPECT_GE(s.models[0].scale_ups, 1);
  EXPECT_GE(s.models[0].scale_downs, 1);
  EXPECT_GT(s.models[0].replica_peak, 2);
  // The shared cache makes every post-first spin-up warm.
  EXPECT_GE(s.models[0].warm_spinups, 1);
  EXPECT_GT(s.models[0].spinup_cycles, 0);
  EXPECT_EQ(s.models[0].scale_ups,
            s.models[0].cold_spinups + s.models[0].warm_spinups -
                2);  // the two initial replicas spin up uncharged
  // The timeline and the stats agree.
  long long ups = 0, downs = 0;
  for (const auto& e : fleet.scale_log()) (e.up ? ups : downs) += 1;
  EXPECT_EQ(ups, s.models[0].scale_ups);
  EXPECT_EQ(downs, s.models[0].scale_downs);
}

// ------------------------------------------------ one shared worker pool --
int live_os_threads() {
  std::ifstream f("/proc/self/status");
  std::string line;
  while (std::getline(f, line)) {
    if (line.rfind("Threads:", 0) == 0) {
      return std::atoi(line.c_str() + 8);
    }
  }
  return -1;
}

TEST(FleetPoolTest, ReplicasShareOneWorkerSetUnderTheThreadClamp) {
  // 8 virtual replicas, 1 real worker thread: replicas are virtual-time
  // capacity, not threads. The peak OS thread count during the run must
  // stay within dispatcher + the clamped worker set (+ the sampler and
  // whatever the process-wide kernel pool already holds) — a per-replica
  // pool would show up as ~8 extra threads here.
  std::vector<FleetModel> models;
  models.push_back(tiny_model("a", 4, {1000}, 0));
  models.push_back(tiny_model("b", 4, {800}, 0, 22));
  std::vector<TenantConfig> tenants = {tenant("ta", 0, 1, 8, 500),
                                       tenant("tb", 1, 1, 8, 400)};
  FleetConfig cfg;
  cfg.threads = 1;

  const int baseline = live_os_threads();
  ASSERT_GT(baseline, 0);
  std::atomic<bool> stop{false};
  std::atomic<int> peak{0};
  std::thread sampler([&] {
    while (!stop.load()) {
      const int n = live_os_threads();
      if (n > peak.load()) peak.store(n);
      std::this_thread::yield();
    }
  });

  FleetServer fleet(std::move(models), std::move(tenants), cfg);
  const FleetStats s = fleet.run(
      {ArrivalTrace::synthetic(300, 400, 5, 2.0),
       ArrivalTrace::synthetic(300, 350, 6, 2.0)});
  stop.store(true);
  sampler.join();

  ASSERT_TRUE(s.accounted());
  // dispatcher thread is the caller; budget = 1 worker + 1 sampler + the
  // process kernel pool (shared, not per-replica).
  EXPECT_LE(peak.load(),
            baseline + 2 + kernels::pool_thread_count());
  EXPECT_LE(kernels::pool_thread_count(),
            static_cast<int>(std::thread::hardware_concurrency()));
}

// ------------------------------------------------------------ determinism --
TEST(FleetDeterminismTest, StatsAreByteIdenticalForAnyThreadCount) {
  const auto build_models = [] {
    std::vector<FleetModel> m;
    m.push_back(tiny_model("a", 2, {1600, 1000, 640}, 1));
    m.push_back(tiny_model("b", 2, {1200, 800}, 1, 22));
    return m;
  };
  std::vector<TenantConfig> tenants = {
      tenant("a/steady", 0, 2, 8, 1000, 12000),
      tenant("a/bursty", 0, 1, 8, 1000, 12000),
      tenant("b/steady", 1, 2, 8, 800, 9600),
      tenant("b/bursty", 1, 1, 8, 800, 9600)};
  const std::vector<ArrivalTrace> traces = {
      ArrivalTrace::synthetic(150, 700, 41, 2.0),
      ArrivalTrace::oscillating(4, 20, 250, 3000, 42),
      ArrivalTrace::synthetic(150, 550, 43, 2.0),
      ArrivalTrace::oscillating(4, 20, 200, 2400, 44)};

  std::vector<FleetStats> runs;
  for (const int threads : {1, 2, 8}) {
    FleetConfig cfg;
    cfg.threads = threads;
    cfg.autoscale.enabled = true;
    cfg.autoscale.max_replicas = 3;
    cfg.autoscale.up_queue_frac = 0.15;
    cfg.autoscale.dwell_cycles = 4000;
    cfg.autoscale.spinup_cold_cycles = 2000;
    cfg.autoscale.spinup_warm_cycles = 250;
    FleetServer fleet(build_models(), tenants, cfg);
    runs.push_back(fleet.run(traces));
  }
  ASSERT_TRUE(runs[0].accounted());
  EXPECT_GT(runs[0].completed_total(), 0);
  EXPECT_TRUE(runs[0] == runs[1]);
  EXPECT_TRUE(runs[0] == runs[2]);
  EXPECT_EQ(runs[0].to_json(), runs[1].to_json());
  EXPECT_EQ(runs[0].to_json(), runs[2].to_json());
}

// ---------------------------------------------------------- fault domains --
using serve::HealthEvent;

fault::FleetFaultEvent strike(fault::FleetFaultKind kind, long long cycle,
                              std::size_t model, int replica) {
  fault::FleetFaultEvent e;
  e.kind = kind;
  e.cycle = cycle;
  e.model = model;
  e.replica = replica;
  return e;
}

fault::FleetFaultPlan plan_of(std::vector<fault::FleetFaultEvent> events) {
  fault::FleetFaultPlan p;
  p.events = std::move(events);
  return p;
}

/// Health-event kinds for one (model, replica), in timeline order.
std::vector<HealthEvent::Kind> kinds_for(const FleetServer& fleet,
                                         std::size_t model, int replica) {
  std::vector<HealthEvent::Kind> out;
  for (const HealthEvent& e : fleet.health_log()) {
    if (e.model == model && e.replica == replica) out.push_back(e.kind);
  }
  return out;
}

/// Index of `kind` in `kinds`, or npos — for ordering assertions.
std::size_t first_of(const std::vector<HealthEvent::Kind>& kinds,
                     HealthEvent::Kind kind) {
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    if (kinds[i] == kind) return i;
  }
  return static_cast<std::size_t>(-1);
}

ArrivalTrace every(std::size_t n, long long gap) {
  std::vector<long long> cycles;
  for (std::size_t i = 0; i < n; ++i) {
    cycles.push_back(static_cast<long long>(i) * gap);
  }
  return at_cycles(cycles);
}

TEST(FleetChaosTest, WedgeWalksQuarantineProbeReadmitAndLosesNothing) {
  FleetConfig cfg;  // health on by default; hedging off
  FleetServer fleet({tiny_model("m", 2, {1000}, 0)},
                    {tenant("t", 0, 1, /*cap=*/4, /*age=*/0)}, cfg);
  const FleetStats s = fleet.run(
      {every(60, 600)},
      plan_of({strike(fault::FleetFaultKind::kWedge, 5000, 0, 0)}));

  ASSERT_TRUE(s.accounted());
  EXPECT_EQ(s.tenants[0].completed, 60);  // zero lost, zero shed
  EXPECT_EQ(s.tenants[0].failed, 0);
  EXPECT_GE(s.quarantines, 1);
  EXPECT_GE(s.probes, 1);
  EXPECT_GE(s.readmits, 1);
  EXPECT_GE(s.requeued, 1);  // the wedged batch was rescued, not dropped
  EXPECT_EQ(s.unrecovered_replicas, 0);

  // The full recovery walk, in order, on the struck replica.
  const auto kinds = kinds_for(fleet, 0, 0);
  const auto wedged = first_of(kinds, HealthEvent::Kind::kWedged);
  const auto quarantined = first_of(kinds, HealthEvent::Kind::kQuarantine);
  const auto respawned = first_of(kinds, HealthEvent::Kind::kRespawn);
  const auto probed = first_of(kinds, HealthEvent::Kind::kProbe);
  const auto readmitted = first_of(kinds, HealthEvent::Kind::kReadmit);
  ASSERT_NE(readmitted, static_cast<std::size_t>(-1));
  EXPECT_LT(wedged, quarantined);
  EXPECT_LT(quarantined, respawned);
  EXPECT_LT(respawned, probed);
  EXPECT_LT(probed, readmitted);
}

TEST(FleetChaosTest, CrashDetectionIsImmediateAndRescuesInFlightWork) {
  FleetConfig cfg;
  FleetServer fleet({tiny_model("m", 2, {1000}, 0)},
                    {tenant("t", 0, 1, /*cap=*/4, /*age=*/0)}, cfg);
  const FleetStats s = fleet.run(
      {every(60, 600)},
      plan_of({strike(fault::FleetFaultKind::kCrash, 5000, 0, 1)}));

  ASSERT_TRUE(s.accounted());
  EXPECT_EQ(s.tenants[0].completed, 60);
  EXPECT_GE(s.quarantines, 1);
  EXPECT_GE(s.readmits, 1);
  EXPECT_EQ(s.unrecovered_replicas, 0);
  // The virtual machine-check: quarantine lands on the crash cycle itself,
  // never a watchdog interval later.
  long long crash_cycle = -1, quarantine_cycle = -1;
  for (const HealthEvent& e : fleet.health_log()) {
    if (e.replica != 1) continue;
    if (e.kind == HealthEvent::Kind::kCrashed) crash_cycle = e.cycle;
    if (e.kind == HealthEvent::Kind::kQuarantine && quarantine_cycle < 0) {
      quarantine_cycle = e.cycle;
    }
  }
  ASSERT_GE(crash_cycle, 0);
  EXPECT_EQ(quarantine_cycle, crash_cycle);
}

TEST(FleetChaosTest, SlowReplicaIsCaughtByTheMissWindowNotTheWatchdog) {
  FleetConfig cfg;  // watchdog_factor 6 > slow_factor 4: the window decides
  FleetServer fleet({tiny_model("m", 2, {1000}, 0)},
                    {tenant("t", 0, 1, /*cap=*/4, /*age=*/0)}, cfg);
  auto slow = strike(fault::FleetFaultKind::kSlow, 3000, 0, 1);
  slow.slow_factor = 4.0;
  slow.slow_duration = 0;  // sick until quarantined
  const FleetStats s = fleet.run({every(60, 600)}, plan_of({slow}));

  ASSERT_TRUE(s.accounted());
  EXPECT_EQ(s.tenants[0].completed, 60);
  EXPECT_GE(s.quarantines, 1);
  EXPECT_GE(s.readmits, 1);
  EXPECT_EQ(s.unrecovered_replicas, 0);
  const auto kinds = kinds_for(fleet, 0, 1);
  EXPECT_LT(first_of(kinds, HealthEvent::Kind::kSlowed),
            first_of(kinds, HealthEvent::Kind::kQuarantine));
}

TEST(FleetChaosTest, HealthDisabledLosesTheWedgedRequests) {
  // The failure mode this subsystem exists to close: with detection off, a
  // wedge's in-flight requests simply never resolve. The run terminates,
  // the books don't balance, and the replica ends the run unrecovered.
  FleetConfig cfg;
  cfg.health.enabled = false;
  FleetServer fleet({tiny_model("m", 2, {1000}, 0)},
                    {tenant("t", 0, 1, /*cap=*/4, /*age=*/0)}, cfg);
  const FleetStats s = fleet.run(
      {every(60, 600)},
      plan_of({strike(fault::FleetFaultKind::kWedge, 5000, 0, 0)}));

  EXPECT_FALSE(s.accounted());
  EXPECT_LT(s.tenants[0].completed, 60);
  EXPECT_EQ(s.quarantines, 0);
  EXPECT_EQ(s.unrecovered_replicas, 1);
}

TEST(FleetChaosTest, HedgingRescuesAWedgeEvenWithHealthScoringOff) {
  // Hedging alone (no watchdog, no quarantine) duplicates the straggling
  // requests onto the healthy replica; first completion wins and the books
  // balance even though the wedged replica never recovers.
  FleetConfig cfg;
  cfg.health.enabled = false;
  cfg.hedge.enabled = true;
  cfg.hedge.delay_cycles = 500;
  FleetServer fleet({tiny_model("m", 2, {1000}, 0)},
                    {tenant("t", 0, 1, /*cap=*/4, /*age=*/0)}, cfg);
  const FleetStats s = fleet.run(
      {every(60, 600)},
      plan_of({strike(fault::FleetFaultKind::kWedge, 5000, 0, 0)}));

  ASSERT_TRUE(s.accounted());
  EXPECT_EQ(s.tenants[0].completed, 60);
  EXPECT_GE(s.hedges_fired, 1);
  EXPECT_GE(s.hedge_wins, 1);
  EXPECT_EQ(s.unrecovered_replicas, 1);  // still wedged — but nothing lost
}

TEST(FleetChaosTest, HedgingImprovesTheTailUnderOneSlowReplica) {
  // The bench claim, asserted functionally: same trace, same slow replica,
  // hedging on vs off. Hedged p99 must beat unhedged p99, and the duplicate
  // work must stay a small fraction of the completed volume.
  const auto run_one = [](bool hedge) {
    FleetConfig cfg;
    cfg.health.enabled = false;  // isolate hedging from quarantine rescue
    cfg.hedge.enabled = hedge;
    cfg.hedge.delay_cycles = 500;
    FleetServer fleet({tiny_model("m", 2, {1000}, 0)},
                      {tenant("t", 0, 1, /*cap=*/4, /*age=*/0)}, cfg);
    auto slow = strike(fault::FleetFaultKind::kSlow, 0, 0, 1);
    slow.slow_factor = 6.0;
    slow.slow_duration = 1'000'000;
    FleetStats s = fleet.run({every(80, 600)}, plan_of({slow}));
    return s;
  };
  const FleetStats off = run_one(false);
  const FleetStats on = run_one(true);
  ASSERT_TRUE(off.accounted());
  ASSERT_TRUE(on.accounted());
  EXPECT_EQ(off.hedges_fired, 0);
  EXPECT_GE(on.hedge_wins, 1);
  EXPECT_LT(on.tenants[0].latency.p99(), off.tenants[0].latency.p99());
  // Duplicate dispatches stay bounded: at most one hedge copy per request
  // (the replica is slow for the whole run here — the <5% extra-work claim
  // is the bench's transient-burst scenario, not this saturated one).
  EXPECT_LT(on.hedges_fired, on.tenants[0].completed);
}

TEST(FleetChaosTest, CorruptBundleIsScrubbedOnTheRespawnLease) {
  // Corruption alone is latent — it is the next lease that detects it. The
  // wedge's quarantine-respawn re-acquires the home rung, trips the CRC
  // guard, and rebuilds the resident copy without invalidating peers.
  FleetConfig cfg;
  FleetServer fleet({tiny_model("m", 2, {1000}, 0)},
                    {tenant("t", 0, 1, /*cap=*/4, /*age=*/0)}, cfg);
  auto corrupt = strike(fault::FleetFaultKind::kCorruptBundle, 3000, 0, 0);
  corrupt.rung = -1;  // the model's home rung
  const FleetStats s = fleet.run(
      {every(60, 600)},
      plan_of({corrupt,
               strike(fault::FleetFaultKind::kWedge, 8000, 0, 0)}));

  ASSERT_TRUE(s.accounted());
  EXPECT_EQ(s.tenants[0].completed, 60);
  EXPECT_GE(s.bundles_scrubbed, 1);
  EXPECT_EQ(s.bundles_scrubbed, s.cache.scrubs);
  const auto log = fleet.health_log();
  bool corrupted = false, scrubbed = false;
  for (const HealthEvent& e : log) {
    if (e.kind == HealthEvent::Kind::kCorrupted) {
      corrupted = true;
      EXPECT_EQ(e.replica, -1);  // a cache event, not a replica event
    }
    if (e.kind == HealthEvent::Kind::kScrub) scrubbed = true;
  }
  EXPECT_TRUE(corrupted);
  EXPECT_TRUE(scrubbed);
}

TEST(FleetChaosTest, CorruptionFaultsRequireTheSharedCache) {
  FleetConfig cfg;
  cfg.share_prepack = false;
  FleetServer fleet({tiny_model("m", 1, {1000}, 0)},
                    {tenant("t", 0, 1, 4, 0)}, cfg);
  EXPECT_THROW(
      (void)fleet.run(
          {every(4, 600)},
          plan_of({strike(fault::FleetFaultKind::kCorruptBundle, 100, 0,
                          0)})),
      ServeError);
}

TEST(FleetChaosTest, ChaosStatsAreByteIdenticalForAnyThreadCount) {
  const auto build_models = [] {
    std::vector<FleetModel> m;
    m.push_back(tiny_model("a", 2, {1600, 1000, 640}, 1));
    m.push_back(tiny_model("b", 2, {1200, 800}, 1, 22));
    return m;
  };
  std::vector<TenantConfig> tenants = {
      tenant("a/steady", 0, 2, 8, 1000, 12000),
      tenant("a/bursty", 0, 1, 8, 1000, 12000),
      tenant("b/steady", 1, 2, 8, 800, 9600),
      tenant("b/bursty", 1, 1, 8, 800, 9600)};
  const std::vector<ArrivalTrace> traces = {
      ArrivalTrace::synthetic(150, 700, 41, 2.0),
      ArrivalTrace::oscillating(4, 20, 250, 3000, 42),
      ArrivalTrace::synthetic(150, 550, 43, 2.0),
      ArrivalTrace::oscillating(4, 20, 200, 2400, 44)};
  const fault::FleetFaultPlan plan =
      fault::make_fleet_campaign("mix", 5, 2, 2, 1000);

  std::vector<FleetStats> runs;
  for (const int threads : {1, 2, 8}) {
    FleetConfig cfg;
    cfg.threads = threads;
    cfg.hedge.enabled = true;
    cfg.hedge.delay_cycles = 300;
    cfg.autoscale.enabled = true;
    cfg.autoscale.max_replicas = 3;
    cfg.autoscale.up_queue_frac = 0.15;
    cfg.autoscale.dwell_cycles = 4000;
    cfg.autoscale.spinup_cold_cycles = 2000;
    cfg.autoscale.spinup_warm_cycles = 250;
    FleetServer fleet(build_models(), tenants, cfg);
    runs.push_back(fleet.run(traces, plan));
  }
  ASSERT_TRUE(runs[0].accounted());
  EXPECT_GE(runs[0].quarantines, 1);  // the campaign actually struck
  EXPECT_GE(runs[0].readmits, 1);
  EXPECT_GE(runs[0].bundles_scrubbed, 1);
  EXPECT_TRUE(runs[0] == runs[1]);
  EXPECT_TRUE(runs[0] == runs[2]);
  EXPECT_EQ(runs[0].to_json(), runs[1].to_json());
  EXPECT_EQ(runs[0].to_json(), runs[2].to_json());
}

// -------------------------------------------------------- canned campaigns --
TEST(FleetCampaignTest, BuilderIsDeterministicPerSeedAndValidates) {
  const auto a = fault::make_fleet_campaign("wedge+corrupt", 7, 2, 2, 1000);
  const auto b = fault::make_fleet_campaign("wedge+corrupt", 7, 2, 2, 1000);
  ASSERT_EQ(a.events.size(), 2u);
  ASSERT_EQ(b.events.size(), 2u);
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].cycle, b.events[i].cycle);
    EXPECT_EQ(a.events[i].kind, b.events[i].kind);
    EXPECT_EQ(a.events[i].model, b.events[i].model);
    EXPECT_EQ(a.events[i].replica, b.events[i].replica);
  }
  // A different seed jitters the strike cycles, not the campaign shape.
  const auto c = fault::make_fleet_campaign("wedge+corrupt", 8, 2, 2, 1000);
  ASSERT_EQ(c.events.size(), 2u);
  EXPECT_EQ(c.events[0].kind, a.events[0].kind);
  bool any_moved = false;
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    any_moved |= c.events[i].cycle != a.events[i].cycle;
  }
  EXPECT_TRUE(any_moved);
  // "mix" expands to all four kinds.
  EXPECT_EQ(fault::make_fleet_campaign("mix", 1, 4, 2, 1000).events.size(),
            4u);

  EXPECT_THROW(fault::make_fleet_campaign("bogus", 1, 2, 2, 1000),
               ParseError);
  EXPECT_THROW(fault::make_fleet_campaign("", 1, 2, 2, 1000), ParseError);
  EXPECT_THROW(fault::make_fleet_campaign("mix", 1, 0, 2, 1000),
               ValidationError);
}

// ------------------------------------------------------- bundle CRC guard --
TEST_F(PrepackShareTest, CacheScrubsAVirtuallyCorruptedResident) {
  PrepackCache cache(/*share=*/true);
  const PrepackCache::Builder build = [&] {
    FusionPipeline p(net_, ws_);
    return p.shared_prepack();
  };
  const auto l1 = cache.acquire("m/r0", build);
  ASSERT_FALSE(l1.hit);
  EXPECT_FALSE(cache.corrupt_resident("nope"));  // unknown key: no-op
  ASSERT_TRUE(cache.corrupt_resident("m/r0"));

  const auto l2 = cache.acquire("m/r0", build);
  EXPECT_FALSE(l2.hit);  // a scrub is a miss: the constants were re-derived
  EXPECT_TRUE(l2.scrubbed);
  EXPECT_NE(l1.bundle.get(), l2.bundle.get());
  EXPECT_EQ(cache.stats().scrubs, 1);
  // The peer holding the old pointer was never invalidated...
  EXPECT_EQ(cache.refcount("m/r0"), 2);

  // ...a post-scrub acquire is an ordinary hit on the fresh copy...
  const auto l3 = cache.acquire("m/r0", build);
  EXPECT_TRUE(l3.hit);
  EXPECT_FALSE(l3.scrubbed);
  EXPECT_EQ(l3.bundle.get(), l2.bundle.get());

  cache.release(l1);  // ...and every release still balances.
  cache.release(l2);
  cache.release(l3);
  EXPECT_EQ(cache.refcount("m/r0"), 0);
}

TEST_F(PrepackShareTest, CacheCrcCatchesARealBitFlip) {
  PrepackCache cache(/*share=*/true);
  const PrepackCache::Builder build = [&] {
    FusionPipeline p(net_, ws_);
    return p.shared_prepack();
  };
  const auto l1 = cache.acquire("m/r0", build);
  // Flip one real constant byte in the resident copy (single-threaded:
  // nothing is streaming the bundle, so the mutation itself is safe).
  auto* b = const_cast<arch::PrepackBundle*>(l1.bundle.get());
  bool flipped = false;
  for (const auto& p : b->packed) {
    if (p && p->pblocks() > 0 && p->iblocks() > 0 &&
        !p->block(0, 0).empty()) {
      const_cast<float&>(p->block(0, 0)[0]) += 1.0f;
      flipped = true;
      break;
    }
  }
  if (!flipped) {
    for (const auto& p : b->wino) {
      if (p && !p->u.empty()) {
        const_cast<double&>(p->u[0]) += 1.0;
        flipped = true;
        break;
      }
    }
  }
  ASSERT_TRUE(flipped);

  const auto l2 = cache.acquire("m/r0", build);
  EXPECT_TRUE(l2.scrubbed);
  EXPECT_EQ(cache.stats().scrubs, 1);
  cache.release(l1);
  cache.release(l2);
}

TEST_F(PrepackShareTest, VerifyOffDisablesTheCrcGuard) {
  PrepackCache cache(/*share=*/true, /*verify=*/false);
  const PrepackCache::Builder build = [&] {
    FusionPipeline p(net_, ws_);
    return p.shared_prepack();
  };
  const auto l1 = cache.acquire("m/r0", build);
  ASSERT_TRUE(cache.corrupt_resident("m/r0"));
  const auto l2 = cache.acquire("m/r0", build);  // adopted unchecked
  EXPECT_TRUE(l2.hit);
  EXPECT_FALSE(l2.scrubbed);
  EXPECT_EQ(cache.stats().scrubs, 0);
  cache.release(l1);
  cache.release(l2);
}

// -------------------------------------------------- breaker as quarantine --
TEST(BreakerForceOpenTest, ForceOpenWalksTheOrdinaryProbationPath) {
  serve::BreakerConfig bc;
  bc.probe_successes = 1;
  serve::CircuitBreaker br(bc);
  EXPECT_EQ(br.state(0), serve::BreakerState::kClosed);

  br.force_open(100, 400);  // cooldown = the respawn spin-up
  EXPECT_EQ(br.state(100), serve::BreakerState::kOpen);
  EXPECT_FALSE(br.try_acquire_probe(200));  // still spinning up

  EXPECT_EQ(br.state(500), serve::BreakerState::kHalfOpen);
  EXPECT_TRUE(br.try_acquire_probe(500));
  EXPECT_FALSE(br.try_acquire_probe(500));  // single probe slot

  br.record_success(510);
  EXPECT_EQ(br.state(510), serve::BreakerState::kClosed);
}

}  // namespace
}  // namespace hetacc
