// Fleet-serving runtime: shared prepack bundles (warm construction aliases,
// reset() never invalidates peers), the refcounted PrepackCache, the
// deterministic batch close rule and its edge cases, weighted-fair (DRR)
// admission, replica autoscale, the one-shared-worker-pool execution model,
// and the fleet determinism contract — same traces + config produce
// byte-identical FleetStats for any worker-thread count.

#include <gtest/gtest.h>

#include <atomic>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "arch/pipeline.h"
#include "fault/fault.h"
#include "kernels/parallel.h"
#include "nn/model_zoo.h"
#include "serve/fleet.h"
#include "serve/prepack_cache.h"
#include "support/error.h"

namespace hetacc {
namespace {

using arch::FusionPipeline;
using serve::ArrivalTrace;
using serve::FleetConfig;
using serve::FleetModel;
using serve::FleetServer;
using serve::FleetStats;
using serve::PrepackCache;
using serve::TenantConfig;

nn::Tensor probe_input(const nn::Network& net) {
  nn::Tensor t(net[0].out);
  nn::fill_deterministic(t, 7);
  return t;
}

// ------------------------------------------------- shared prepack bundles --
class PrepackShareTest : public ::testing::Test {
 protected:
  PrepackShareTest()
      : net_(nn::tiny_net(4, 16)),
        ws_(nn::WeightStore::deterministic(net_, 21)),
        input_(probe_input(net_)) {}
  nn::Network net_;
  nn::WeightStore ws_;
  nn::Tensor input_;
};

TEST_F(PrepackShareTest, WarmConstructionAliasesThePeerBundle) {
  FusionPipeline a(net_, ws_);
  ASSERT_NE(a.shared_prepack(), nullptr);
  EXPECT_GT(a.shared_prepack()->resident_bytes(), 0);

  FusionPipeline b(net_, ws_, {}, a.shared_prepack());
  EXPECT_EQ(a.shared_prepack().get(), b.shared_prepack().get());
  EXPECT_EQ(a.run(input_), b.run(input_));
}

TEST_F(PrepackShareTest, CleanResetKeepsTheSharedBundle) {
  FusionPipeline a(net_, ws_);
  FusionPipeline b(net_, ws_, {}, a.shared_prepack());
  const nn::Tensor golden = a.run(input_);

  b.reset();  // clean: value-identical re-derive is skipped, aliasing kept
  EXPECT_EQ(a.shared_prepack().get(), b.shared_prepack().get());
  EXPECT_EQ(b.run(input_), golden);
}

TEST_F(PrepackShareTest, FaultedRederiveNeverInvalidatesPeers) {
  FusionPipeline a(net_, ws_);
  FusionPipeline b(net_, ws_, {}, a.shared_prepack());
  const nn::Tensor golden = a.run(input_);
  const auto before = a.shared_prepack();

  // Installing a plan re-derives a's constants from struck filter copies —
  // into a fresh private bundle. The peer keeps the original, untouched.
  fault::FaultPlan p;
  p.seed = 3;
  p.weight_panel_flip_rate = 1.0;
  a.install_fault_plan(p);
  EXPECT_NE(a.shared_prepack().get(), before.get());
  EXPECT_EQ(b.shared_prepack().get(), before.get());
  EXPECT_NE(a.run(input_), golden);
  EXPECT_EQ(b.run(input_), golden);

  a.clear_fault_plan();
  EXPECT_EQ(a.run(input_), golden);
  EXPECT_EQ(b.shared_prepack().get(), before.get());
}

// -------------------------------------------------------- refcounted cache --
TEST_F(PrepackShareTest, CacheRefcountsSharesAndEvicts) {
  PrepackCache cache(/*share=*/true);
  int builds = 0;
  const PrepackCache::Builder build = [&] {
    ++builds;
    FusionPipeline p(net_, ws_);
    return p.shared_prepack();
  };

  const auto l1 = cache.acquire("m/r0", build);
  EXPECT_FALSE(l1.hit);
  EXPECT_EQ(builds, 1);
  const long long bytes = l1.bundle->resident_bytes();
  ASSERT_GT(bytes, 0);

  const auto l2 = cache.acquire("m/r0", build);
  EXPECT_TRUE(l2.hit);
  EXPECT_EQ(builds, 1);  // served from residence, not rebuilt
  EXPECT_EQ(l1.bundle.get(), l2.bundle.get());
  EXPECT_EQ(cache.refcount("m/r0"), 2);
  EXPECT_EQ(cache.stats().hits, 1);
  EXPECT_EQ(cache.stats().misses, 1);
  EXPECT_EQ(cache.stats().resident_bytes, bytes);
  EXPECT_EQ(cache.stats().bytes_saved, bytes);

  cache.release(l1);
  EXPECT_EQ(cache.refcount("m/r0"), 1);
  EXPECT_EQ(cache.stats().evictions, 0);
  cache.release(l2);
  EXPECT_EQ(cache.refcount("m/r0"), 0);
  EXPECT_EQ(cache.stats().evictions, 1);
  EXPECT_EQ(cache.stats().resident_bytes, 0);
  EXPECT_EQ(cache.stats().peak_resident_bytes, bytes);
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_THROW(cache.release(l2), std::logic_error);
}

TEST_F(PrepackShareTest, UnsharedCacheBuildsPrivateCopies) {
  PrepackCache cache(/*share=*/false);
  int builds = 0;
  const PrepackCache::Builder build = [&] {
    ++builds;
    FusionPipeline p(net_, ws_);
    return p.shared_prepack();
  };

  const auto l1 = cache.acquire("m/r0", build);
  const auto l2 = cache.acquire("m/r0", build);
  EXPECT_FALSE(l1.hit);
  EXPECT_FALSE(l2.hit);
  EXPECT_EQ(builds, 2);
  EXPECT_NE(l1.bundle.get(), l2.bundle.get());
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_EQ(cache.stats().bytes_saved, 0);
  EXPECT_EQ(cache.stats().resident_bytes, 2 * l1.bundle->resident_bytes());
}

// ------------------------------------------------------------ fleet fixture --
FleetModel tiny_model(const std::string& name, int replicas,
                      std::vector<long long> rung_cycles, std::size_t home,
                      std::uint32_t seed = 21) {
  FleetModel m;
  m.name = name;
  m.net = nn::tiny_net(4, 16);
  m.ws = nn::WeightStore::deterministic(m.net, seed);
  for (std::size_t i = 0; i < rung_cycles.size(); ++i) {
    serve::ServingMode r;
    r.label = "r" + std::to_string(i);
    r.service_cycles = rung_cycles[i];
    m.ladder.rungs.push_back(std::move(r));
  }
  m.ladder.home = home;
  m.replicas = replicas;
  return m;
}

TenantConfig tenant(const std::string& name, std::size_t model, int weight,
                    std::size_t batch_cap, long long batch_age,
                    long long deadline = 0) {
  TenantConfig t;
  t.name = name;
  t.model = model;
  t.weight = weight;
  t.queue_capacity = 32;
  t.deadline_cycles = deadline;
  t.batch_cap = batch_cap;
  t.batch_age_cycles = batch_age;
  return t;
}

ArrivalTrace at_cycles(const std::vector<long long>& cycles) {
  ArrivalTrace t;
  for (std::size_t i = 0; i < cycles.size(); ++i) {
    t.requests.push_back(
        {i, cycles[i], static_cast<std::uint32_t>(100 + i)});
  }
  return t;
}

// -------------------------------------------------------- config validation --
TEST(FleetConfigTest, RejectsMalformedModelsAndTenants) {
  const auto model = [] { return tiny_model("m", 1, {1000}, 0); };
  // Tenant pointing past the model list.
  EXPECT_THROW(FleetServer({model()}, {tenant("t", 1, 1, 8, 0)}, {}),
               ServeError);
  // DRR weight below 1 cannot make progress.
  EXPECT_THROW(FleetServer({model()}, {tenant("t", 0, 0, 8, 0)}, {}),
               ServeError);
  // A batch cap of zero can never close a batch.
  EXPECT_THROW(FleetServer({model()}, {tenant("t", 0, 1, 0, 0)}, {}),
               ServeError);
  // setup fraction must leave per-request work positive.
  FleetConfig cfg;
  cfg.batch_setup_frac = 1.0;
  EXPECT_THROW(FleetServer({model()}, {tenant("t", 0, 1, 8, 0)}, cfg),
               ServeError);
  // Deeper rungs must be strictly faster.
  EXPECT_THROW(
      FleetServer({tiny_model("m", 1, {1000, 1000}, 0)},
                  {tenant("t", 0, 1, 8, 0)}, {}),
      ServeError);
}

// ------------------------------------------------------- batch close rule --
TEST(FleetBatchingTest, CapClosesABatchTheMomentItFills) {
  FleetConfig cfg;
  FleetServer fleet({tiny_model("m", 1, {1000}, 0)},
                    {tenant("t", 0, 1, /*cap=*/4, /*age=*/1000000)}, cfg);
  const FleetStats s = fleet.run({at_cycles({0, 0, 0, 0})});
  ASSERT_TRUE(s.accounted());
  EXPECT_EQ(s.models[0].batches, 1);
  ASSERT_GT(s.models[0].batch_size_counts.size(), 4u);
  EXPECT_EQ(s.models[0].batch_size_counts[4], 1);
  EXPECT_EQ(s.tenants[0].completed, 4);
}

TEST(FleetBatchingTest, AgeBudgetDispatchesASingleStraggler) {
  FleetConfig cfg;  // batch_setup_frac default: svc(1) == service exactly
  FleetServer fleet({tiny_model("m", 1, {1000}, 0)},
                    {tenant("t", 0, 1, /*cap=*/8, /*age=*/500)}, cfg);
  const FleetStats s = fleet.run({at_cycles({0})});
  ASSERT_TRUE(s.accounted());
  EXPECT_EQ(s.models[0].batches, 1);
  EXPECT_EQ(s.models[0].batch_size_counts[1], 1);
  // The straggler waits its full age budget, then serves svc(1) == 1000.
  EXPECT_EQ(s.tenants[0].latency.p50(), 1500);
  EXPECT_EQ(s.makespan_cycles, 1500);
}

TEST(FleetBatchingTest, CapArrivingExactlyAtTheAgeDeadlineIsDeterministic) {
  // The second request lands exactly on the first one's close cycle. The
  // event order pins the outcome: the close timer fires before the
  // same-cycle arrival, so the rule deterministically produces two
  // single-request batches — never a race between cap and age.
  FleetConfig cfg;
  FleetServer fleet({tiny_model("m", 1, {1000}, 0)},
                    {tenant("t", 0, 1, /*cap=*/2, /*age=*/50)}, cfg);
  const FleetStats s = fleet.run({at_cycles({0, 50})});
  ASSERT_TRUE(s.accounted());
  EXPECT_EQ(s.models[0].batches, 2);
  EXPECT_EQ(s.models[0].batch_size_counts[1], 2);
  EXPECT_EQ(s.tenants[0].completed, 2);
}

TEST(FleetBatchingTest, EmptyLullTimersAreHarmlessNoOps) {
  // A long silent gap between arrivals: the armed close timer outlives its
  // batch, fires into an empty queue, and must neither dispatch anything
  // nor stall termination.
  FleetConfig cfg;
  FleetServer fleet({tiny_model("m", 1, {1000}, 0)},
                    {tenant("t", 0, 1, /*cap=*/8, /*age=*/500)}, cfg);
  const FleetStats s = fleet.run({at_cycles({0, 100000})});
  ASSERT_TRUE(s.accounted());
  EXPECT_EQ(s.models[0].batches, 2);
  EXPECT_EQ(s.models[0].batch_size_counts[1], 2);
  EXPECT_EQ(s.makespan_cycles, 101500);
}

// ------------------------------------------------------------ DRR fairness --
TEST(FleetDrrTest, BurstyTenantCannotStarveItsSteadyNeighbor) {
  // One replica at 1000 cycles/request. The bursty tenant floods 100
  // requests almost at once; the steady tenant trickles well under its
  // fair share. DRR (weight 2:1) must keep serving the steady tenant out
  // of the middle of the backlog instead of draining the flood first.
  std::vector<long long> steady_cycles, burst_cycles;
  for (int i = 0; i < 40; ++i) steady_cycles.push_back(2000LL * i);
  for (int i = 0; i < 100; ++i) burst_cycles.push_back(10LL * i);
  TenantConfig steady = tenant("steady", 0, 2, 8, 1000);
  TenantConfig bursty = tenant("bursty", 0, 1, 8, 1000);
  bursty.queue_capacity = 128;

  FleetConfig cfg;
  FleetServer fleet({tiny_model("m", 1, {1000}, 0)}, {steady, bursty}, cfg);
  const FleetStats s =
      fleet.run({at_cycles(steady_cycles), at_cycles(burst_cycles)});
  ASSERT_TRUE(s.accounted());
  EXPECT_EQ(s.tenants[0].completed, 40);
  EXPECT_EQ(s.tenants[0].rejected_queue_full, 0);
  EXPECT_EQ(s.tenants[1].completed, 100);
  // The steady tenant's tail must not absorb the flood's queueing delay.
  EXPECT_LT(s.tenants[0].latency.p99(), s.tenants[1].latency.p99());
}

// -------------------------------------------------------------- autoscale --
TEST(FleetAutoscaleTest, OscillatingLoadScalesUpAndBackDown) {
  FleetConfig cfg;
  cfg.autoscale.enabled = true;
  cfg.autoscale.min_replicas = 1;
  cfg.autoscale.max_replicas = 4;
  cfg.autoscale.up_queue_frac = 0.15;
  cfg.autoscale.down_queue_frac = 0.05;
  cfg.autoscale.up_streak = 4;
  cfg.autoscale.down_streak = 12;
  cfg.autoscale.dwell_cycles = 4000;
  cfg.autoscale.spinup_cold_cycles = 2000;
  cfg.autoscale.spinup_warm_cycles = 250;

  TenantConfig t = tenant("osc", 0, 1, 8, 1000, /*deadline=*/12000);
  const ArrivalTrace trace = ArrivalTrace::oscillating(
      /*periods=*/6, /*per_phase=*/40, /*burst=*/250, /*lull=*/3000,
      /*seed=*/11);
  FleetServer fleet({tiny_model("m", 2, {1000}, 0)}, {t}, cfg);
  const FleetStats s = fleet.run({trace});
  ASSERT_TRUE(s.accounted());
  EXPECT_GE(s.models[0].scale_ups, 1);
  EXPECT_GE(s.models[0].scale_downs, 1);
  EXPECT_GT(s.models[0].replica_peak, 2);
  // The shared cache makes every post-first spin-up warm.
  EXPECT_GE(s.models[0].warm_spinups, 1);
  EXPECT_GT(s.models[0].spinup_cycles, 0);
  EXPECT_EQ(s.models[0].scale_ups,
            s.models[0].cold_spinups + s.models[0].warm_spinups -
                2);  // the two initial replicas spin up uncharged
  // The timeline and the stats agree.
  long long ups = 0, downs = 0;
  for (const auto& e : fleet.scale_log()) (e.up ? ups : downs) += 1;
  EXPECT_EQ(ups, s.models[0].scale_ups);
  EXPECT_EQ(downs, s.models[0].scale_downs);
}

// ------------------------------------------------ one shared worker pool --
int live_os_threads() {
  std::ifstream f("/proc/self/status");
  std::string line;
  while (std::getline(f, line)) {
    if (line.rfind("Threads:", 0) == 0) {
      return std::atoi(line.c_str() + 8);
    }
  }
  return -1;
}

TEST(FleetPoolTest, ReplicasShareOneWorkerSetUnderTheThreadClamp) {
  // 8 virtual replicas, 1 real worker thread: replicas are virtual-time
  // capacity, not threads. The peak OS thread count during the run must
  // stay within dispatcher + the clamped worker set (+ the sampler and
  // whatever the process-wide kernel pool already holds) — a per-replica
  // pool would show up as ~8 extra threads here.
  std::vector<FleetModel> models;
  models.push_back(tiny_model("a", 4, {1000}, 0));
  models.push_back(tiny_model("b", 4, {800}, 0, 22));
  std::vector<TenantConfig> tenants = {tenant("ta", 0, 1, 8, 500),
                                       tenant("tb", 1, 1, 8, 400)};
  FleetConfig cfg;
  cfg.threads = 1;

  const int baseline = live_os_threads();
  ASSERT_GT(baseline, 0);
  std::atomic<bool> stop{false};
  std::atomic<int> peak{0};
  std::thread sampler([&] {
    while (!stop.load()) {
      const int n = live_os_threads();
      if (n > peak.load()) peak.store(n);
      std::this_thread::yield();
    }
  });

  FleetServer fleet(std::move(models), std::move(tenants), cfg);
  const FleetStats s = fleet.run(
      {ArrivalTrace::synthetic(300, 400, 5, 2.0),
       ArrivalTrace::synthetic(300, 350, 6, 2.0)});
  stop.store(true);
  sampler.join();

  ASSERT_TRUE(s.accounted());
  // dispatcher thread is the caller; budget = 1 worker + 1 sampler + the
  // process kernel pool (shared, not per-replica).
  EXPECT_LE(peak.load(),
            baseline + 2 + kernels::pool_thread_count());
  EXPECT_LE(kernels::pool_thread_count(),
            static_cast<int>(std::thread::hardware_concurrency()));
}

// ------------------------------------------------------------ determinism --
TEST(FleetDeterminismTest, StatsAreByteIdenticalForAnyThreadCount) {
  const auto build_models = [] {
    std::vector<FleetModel> m;
    m.push_back(tiny_model("a", 2, {1600, 1000, 640}, 1));
    m.push_back(tiny_model("b", 2, {1200, 800}, 1, 22));
    return m;
  };
  std::vector<TenantConfig> tenants = {
      tenant("a/steady", 0, 2, 8, 1000, 12000),
      tenant("a/bursty", 0, 1, 8, 1000, 12000),
      tenant("b/steady", 1, 2, 8, 800, 9600),
      tenant("b/bursty", 1, 1, 8, 800, 9600)};
  const std::vector<ArrivalTrace> traces = {
      ArrivalTrace::synthetic(150, 700, 41, 2.0),
      ArrivalTrace::oscillating(4, 20, 250, 3000, 42),
      ArrivalTrace::synthetic(150, 550, 43, 2.0),
      ArrivalTrace::oscillating(4, 20, 200, 2400, 44)};

  std::vector<FleetStats> runs;
  for (const int threads : {1, 2, 8}) {
    FleetConfig cfg;
    cfg.threads = threads;
    cfg.autoscale.enabled = true;
    cfg.autoscale.max_replicas = 3;
    cfg.autoscale.up_queue_frac = 0.15;
    cfg.autoscale.dwell_cycles = 4000;
    cfg.autoscale.spinup_cold_cycles = 2000;
    cfg.autoscale.spinup_warm_cycles = 250;
    FleetServer fleet(build_models(), tenants, cfg);
    runs.push_back(fleet.run(traces));
  }
  ASSERT_TRUE(runs[0].accounted());
  EXPECT_GT(runs[0].completed_total(), 0);
  EXPECT_TRUE(runs[0] == runs[1]);
  EXPECT_TRUE(runs[0] == runs[2]);
  EXPECT_EQ(runs[0].to_json(), runs[1].to_json());
  EXPECT_EQ(runs[0].to_json(), runs[2].to_json());
}

}  // namespace
}  // namespace hetacc
