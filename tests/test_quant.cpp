#include "quant/calibration.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "algo/int8_quant.h"
#include "arch/pipeline.h"
#include "nn/model_zoo.h"

namespace hetacc::quant {
namespace {

class CalibrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = nn::tiny_net(4, 16);
    ws_ = nn::WeightStore::deterministic(net_, 31);
    for (std::uint32_t seed = 41; seed < 44; ++seed) {
      nn::Tensor t(net_[0].out);
      nn::fill_deterministic(t, seed);
      samples_.push_back(std::move(t));
    }
  }

  nn::Network net_;
  nn::WeightStore ws_;
  std::vector<nn::Tensor> samples_;
};

TEST_F(CalibrationTest, RangesCoverObservedActivations) {
  const Calibration cal = calibrate(net_, ws_, samples_, 0);
  ASSERT_EQ(cal.layers.size(), net_.size() - 1);
  const auto outs = nn::run_network_all(net_, ws_, samples_[0]);
  for (std::size_t i = 1; i < net_.size(); ++i) {
    float m = 0.0f;
    for (float v : outs[i].vec()) m = std::max(m, std::abs(v));
    EXPECT_GE(cal.layers[i - 1].max_abs_out, m) << i;
  }
}

TEST_F(CalibrationTest, FormatsAvoidSaturation) {
  const Calibration cal = calibrate(net_, ws_, samples_, 0);
  for (const auto& lr : cal.layers) {
    // Representable max at the chosen format covers the observed range.
    const float max_rep = 32767.0f / static_cast<float>(1 << lr.out_frac);
    EXPECT_GE(max_rep * 1.0001f, lr.max_abs_out) << lr.name;
  }
}

TEST_F(CalibrationTest, GuardBitsWidenHeadroom) {
  const Calibration tight = calibrate(net_, ws_, samples_, 0);
  const Calibration guarded = calibrate(net_, ws_, samples_, 2);
  for (std::size_t i = 0; i < tight.layers.size(); ++i) {
    EXPECT_LE(guarded.layers[i].out_frac, tight.layers[i].out_frac);
  }
}

TEST_F(CalibrationTest, CalibratedPipelineBeatsNaiveFormat) {
  const Calibration cal = calibrate(net_, ws_, samples_, 1);
  nn::Tensor probe(net_[0].out);
  nn::fill_deterministic(probe, 99);
  const nn::Tensor golden = nn::run_network(net_, ws_, probe);

  arch::FusionPipeline calibrated(net_, ws_, [&] {
    std::vector<arch::LayerChoice> ch(net_.size() - 1);
    const auto modes = cal.modes();
    for (std::size_t i = 0; i < ch.size(); ++i) ch[i].mode = modes[i];
    return ch;
  }());
  const float calibrated_err =
      calibrated.run(probe).max_abs_diff(golden);

  // Naive: far too few fraction bits everywhere -> coarse grid.
  arch::FusionPipeline naive(net_, ws_, [&] {
    std::vector<arch::LayerChoice> ch(net_.size() - 1);
    for (auto& c : ch) c.mode = arch::NumericMode{4, 4};
    return ch;
  }());
  const float naive_err = naive.run(probe).max_abs_diff(golden);

  EXPECT_LT(calibrated_err, naive_err);
  EXPECT_LT(calibrated_err, 0.02f);
}

TEST_F(CalibrationTest, ModesAlignWithLayers) {
  const Calibration cal = calibrate(net_, ws_, samples_);
  const auto modes = cal.modes();
  ASSERT_EQ(modes.size(), cal.layers.size());
  for (std::size_t i = 0; i < modes.size(); ++i) {
    EXPECT_EQ(modes[i].in_frac, cal.layers[i].in_frac);
    EXPECT_EQ(modes[i].out_frac, cal.layers[i].out_frac);
    EXPECT_TRUE(modes[i].fixed());
  }
}

TEST_F(CalibrationTest, InvalidInputsThrow) {
  EXPECT_THROW((void)calibrate(net_, ws_, {}), std::invalid_argument);
  std::vector<nn::Tensor> bad{nn::Tensor(1, 2, 2)};
  EXPECT_THROW((void)calibrate(net_, ws_, bad), std::invalid_argument);
}

TEST_F(CalibrationTest, WeightQuantizationRoundsToGrid) {
  const nn::WeightStore q = quantize_weights(net_, ws_);
  const auto i = *net_.find("c1");
  const auto& orig = ws_.conv(i).filters;
  const auto& quant = q.conv(i).filters;
  float worst = 0.0f;
  for (std::int64_t j = 0; j < orig.size(); ++j) {
    worst = std::max(worst, std::abs(orig.data()[j] - quant.data()[j]));
  }
  // Weights are <= 0.25 in magnitude -> frac 15 -> half-ulp error bound.
  EXPECT_LE(worst, 0.5f / (1 << 15) + 1e-7f);
  // And the quantized store still produces a close forward pass.
  nn::Tensor probe(net_[0].out);
  nn::fill_deterministic(probe, 7);
  const auto a = nn::run_network(net_, ws_, probe);
  const auto b = nn::run_network(net_, q, probe);
  EXPECT_LT(a.max_abs_diff(b), 5e-3f);
}

TEST(ActQuantGrid, ExtendsRangeToZeroAndNudgesZeroPoint) {
  // Positive-only range: extended down to 0 so the padding value (real 0.0)
  // has an exact code, which lands the zero-point on the bottom rail.
  const algo::ActQuant pos = algo::choose_act_quant(2.0f, 10.0f);
  EXPECT_FLOAT_EQ(pos.scale, 10.0f / 255.0f);
  EXPECT_EQ(pos.zp, -128);
  EXPECT_FLOAT_EQ(algo::dequantize_act_i8(algo::quantize_act_i8(
                      0.0f, pos.scale, pos.zp), pos.scale, pos.zp), 0.0f);

  // Negative-only range: extended up to 0, zero-point on the top rail.
  const algo::ActQuant neg = algo::choose_act_quant(-6.0f, -1.0f);
  EXPECT_FLOAT_EQ(neg.scale, 6.0f / 255.0f);
  EXPECT_EQ(neg.zp, 127);
  EXPECT_FLOAT_EQ(algo::dequantize_act_i8(algo::quantize_act_i8(
                      0.0f, neg.scale, neg.zp), neg.scale, neg.zp), 0.0f);

  // Signed range: both rails reachable within one step of the endpoints.
  const algo::ActQuant s = algo::choose_act_quant(-3.0f, 5.0f);
  EXPECT_FLOAT_EQ(s.scale, 8.0f / 255.0f);
  EXPECT_GE(s.zp, -128);
  EXPECT_LE(s.zp, 127);
  EXPECT_NEAR(algo::dequantize_act_i8(127, s.scale, s.zp), 5.0f, s.scale);
  EXPECT_NEAR(algo::dequantize_act_i8(-128, s.scale, s.zp), -3.0f, s.scale);
  // Real 0.0 maps exactly onto code zp and back.
  EXPECT_EQ(algo::quantize_act_i8(0.0f, s.scale, s.zp),
            static_cast<std::int8_t>(s.zp));
}

TEST(ActQuantGrid, DegenerateRangeFallsBackToIdentity) {
  // An all-zero tensor has no usable range: identity grid.
  const algo::ActQuant zero = algo::choose_act_quant(0.0f, 0.0f);
  EXPECT_FLOAT_EQ(zero.scale, 1.0f);
  EXPECT_EQ(zero.zp, 0);
  // A constant nonzero tensor is NOT degenerate — extending to include 0.0
  // gives it a real span.
  const algo::ActQuant constant = algo::choose_act_quant(5.0f, 5.0f);
  EXPECT_FLOAT_EQ(constant.scale, 5.0f / 255.0f);
}

TEST_F(CalibrationTest, ModesInt8CarryActivationGridsFromObservedRanges) {
  const Calibration cal = calibrate(net_, ws_, samples_);
  const auto modes = cal.modes_int8();
  ASSERT_EQ(modes.size(), cal.layers.size());
  for (std::size_t i = 0; i < modes.size(); ++i) {
    const auto& m = modes[i];
    const auto& lr = cal.layers[i];
    EXPECT_TRUE(m.int8());
    EXPECT_FALSE(m.fixed());  // int8 modes are not Q-format modes
    const algo::ActQuant in = algo::choose_act_quant(lr.min_in, lr.max_in);
    const algo::ActQuant out = algo::choose_act_quant(lr.min_out, lr.max_out);
    EXPECT_FLOAT_EQ(m.in_scale, in.scale) << lr.name;
    EXPECT_EQ(m.in_zp, in.zp) << lr.name;
    EXPECT_FLOAT_EQ(m.out_scale, out.scale) << lr.name;
    EXPECT_EQ(m.out_zp, out.zp) << lr.name;
    // The grid covers the observed output range: the top code dequantizes
    // to at least max_out minus one step.
    EXPECT_GE(algo::dequantize_act_i8(127, m.out_scale, m.out_zp),
              lr.max_out - m.out_scale) << lr.name;
    EXPECT_LE(algo::dequantize_act_i8(-128, m.out_scale, m.out_zp),
              std::min(lr.min_out, 0.0f) + m.out_scale) << lr.name;
  }
}

TEST_F(CalibrationTest, Int8PipelineTracksFloatReference) {
  const Calibration cal = calibrate(net_, ws_, samples_, 1);
  nn::Tensor probe(net_[0].out);
  nn::fill_deterministic(probe, 99);
  const nn::Tensor golden = nn::run_network(net_, ws_, probe);
  float range = 0.0f;
  for (float v : golden.vec()) range = std::max(range, std::abs(v));

  arch::FusionPipeline pipe(net_, ws_, [&] {
    std::vector<arch::LayerChoice> ch(net_.size() - 1);
    const auto modes = cal.modes_int8();
    for (std::size_t i = 0; i < ch.size(); ++i) ch[i].mode = modes[i];
    return ch;
  }());
  const float err = pipe.run(probe).max_abs_diff(golden);
  // int8 is coarser than calibrated 16-bit but must stay a small fraction
  // of the output range (the hetacc --int8 testbed reports <1% on real
  // layer stacks; 5% here is generous for a 4-layer random-weight net).
  EXPECT_LT(err, 0.05f * range);
  EXPECT_GT(range, 0.0f);
}

TEST(CalibrationAlexNet, HeadEndToEnd) {
  // Calibrate the AlexNet head (conv1 + norm1 + pool1) and check the fixed
  // pipeline tracks the float reference within a small error.
  const nn::Network full = nn::alexnet_accel();
  const nn::Network head = full.slice(0, 3, "alex-head");
  const nn::WeightStore ws = nn::WeightStore::deterministic(head, 51);
  std::vector<nn::Tensor> samples;
  nn::Tensor s(head[0].out);
  nn::fill_deterministic(s, 52);
  samples.push_back(std::move(s));
  const Calibration cal = calibrate(head, ws, samples, 1);

  std::vector<arch::LayerChoice> ch(head.size() - 1);
  const auto modes = cal.modes();
  for (std::size_t i = 0; i < ch.size(); ++i) ch[i].mode = modes[i];
  arch::FusionPipeline pipe(head, ws, ch);
  nn::Tensor probe(head[0].out);
  nn::fill_deterministic(probe, 53);
  const nn::Tensor golden = nn::run_network(head, ws, probe);
  EXPECT_LT(pipe.run(probe).max_abs_diff(golden), 0.05f);
}

}  // namespace
}  // namespace hetacc::quant
