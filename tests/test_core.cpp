#include <gtest/gtest.h>

#include "core/dp_optimizer.h"
#include "core/report.h"
#include "nn/model_zoo.h"

namespace hetacc::core {
namespace {

using fpga::ConvAlgo;
using fpga::EngineModel;
using nn::Network;

// -------------------------------------------------------------- strategy --
class StrategyTest : public ::testing::Test {
 protected:
  Network net_ = nn::tiny_net(8, 32);
  fpga::Device dev_ = fpga::zc706();
  EngineModel model_{dev_};

  FusionGroup make_group(std::size_t first, std::size_t last) {
    FusionGroup g;
    g.first = first;
    g.last = last;
    for (std::size_t i = first; i <= last; ++i) {
      fpga::EngineConfig cfg;
      cfg.algo = net_[i].kind == nn::LayerKind::kConv
                     ? ConvAlgo::kConventional
                     : ConvAlgo::kNone;
      g.impls.push_back(model_.implement(net_[i], cfg));
    }
    g.timing = evaluate_group_timing(net_, first, last, g.impls, dev_);
    return g;
  }
};

TEST_F(StrategyTest, MinTransferIsFirstInPlusLastOut) {
  EXPECT_EQ(min_transfer_bytes(net_, 1, 3, 2),
            net_[1].in.bytes(2) + net_[3].out.bytes(2));
  EXPECT_EQ(min_transfer_bytes(net_, 2, 2, 2),
            net_[2].in.bytes(2) + net_[2].out.bytes(2));
}

TEST_F(StrategyTest, GroupTimingIsMaxPlusFill) {
  const FusionGroup g = make_group(1, 3);
  long long max_c = 0, fill = 0;
  for (const auto& i : g.impls) {
    max_c = std::max(max_c, i.compute_cycles);
    fill += i.fill_cycles;
  }
  EXPECT_EQ(g.timing.compute_cycles, max_c);
  EXPECT_EQ(g.timing.fill_cycles, fill);
  EXPECT_EQ(g.timing.latency_cycles,
            std::max(max_c, g.timing.transfer_cycles) + fill);
}

TEST_F(StrategyTest, StrategyAggregates) {
  Strategy s;
  s.groups.push_back(make_group(1, 2));
  s.groups.push_back(make_group(3, 4));
  EXPECT_EQ(s.latency_cycles(), s.groups[0].timing.latency_cycles +
                                    s.groups[1].timing.latency_cycles);
  EXPECT_EQ(s.transfer_bytes(), s.groups[0].timing.transfer_bytes +
                                    s.groups[1].timing.transfer_bytes);
  const auto peak = s.peak_resources();
  EXPECT_GE(peak.dsp, s.groups[0].resources().dsp);
  EXPECT_GT(s.total_mults(), 0);
  EXPECT_GT(s.effective_gops(net_, dev_.frequency_hz), 0.0);
  EXPECT_FALSE(s.describe(net_).empty());
}

TEST_F(StrategyTest, BadRangesThrow) {
  EXPECT_THROW((void)min_transfer_bytes(net_, 3, 1, 2), std::invalid_argument);
  EXPECT_THROW((void)evaluate_group_timing(net_, 1, 99, {}, dev_),
               std::invalid_argument);
}

// ------------------------------------------------------ branch and bound --
class BnbTest : public ::testing::Test {
 protected:
  fpga::Device dev_ = fpga::zc706();
  EngineModel model_{dev_};
};

TEST_F(BnbTest, SingleLayerPicksFastestFeasible) {
  const Network net = nn::vgg_e_head();
  const auto r = fuse_group(net, 2, 2, model_);  // conv1_2
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->group.impls.size(), 1u);
  EXPECT_TRUE(r->group.resources().fits_in(dev_.capacity));
  // Exhaustive check: no candidate beats it.
  for (const auto& bucket : layer_candidate_impls(net[2], model_)) {
    for (const auto& ipl : bucket) {
      if (!ipl.res.fits_in(dev_.capacity)) continue;
      const auto t = evaluate_group_timing(net, 2, 2, {ipl}, dev_);
      EXPECT_GE(t.latency_cycles, r->group.timing.latency_cycles);
    }
  }
}

TEST_F(BnbTest, GroupFitsResourcesAndBeatsNaive) {
  const Network net = nn::vgg_e_head();
  const auto r = fuse_group(net, 1, 7, model_);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->group.impls.size(), 7u);
  EXPECT_TRUE(r->group.resources().fits_in(dev_.capacity));
  EXPECT_FALSE(r->node_budget_hit);
}

TEST_F(BnbTest, MatchesExhaustiveOnSmallNetwork) {
  const Network net = nn::tiny_net(4, 16);
  const fpga::Device toy = fpga::toy_device();
  const EngineModel model(toy);
  const auto r = fuse_group(net, 1, 3, model);
  ASSERT_TRUE(r.has_value());

  // Exhaustive enumeration over all candidate combinations.
  std::vector<std::vector<fpga::Implementation>> flat;
  for (std::size_t i = 1; i <= 3; ++i) {
    std::vector<fpga::Implementation> all;
    for (const auto& b : layer_candidate_impls(net[i], model)) {
      all.insert(all.end(), b.begin(), b.end());
    }
    flat.push_back(std::move(all));
  }
  long long best = std::numeric_limits<long long>::max();
  for (const auto& a : flat[0]) {
    for (const auto& b : flat[1]) {
      for (const auto& c : flat[2]) {
        if (!(a.res + b.res + c.res).fits_in(toy.capacity)) continue;
        const auto t = evaluate_group_timing(net, 1, 3, {a, b, c}, toy);
        best = std::min(best, t.latency_cycles);
      }
    }
  }
  EXPECT_EQ(r->group.timing.latency_cycles, best);
}

TEST_F(BnbTest, InfeasibleWhenDeviceTooSmall) {
  fpga::Device nano = fpga::toy_device();
  nano.capacity = fpga::ResourceVector{2, 2, 2000, 1000};
  const EngineModel model(nano);
  const Network net = nn::vgg_e_head();
  EXPECT_FALSE(fuse_group(net, 1, 7, model).has_value());
}

TEST_F(BnbTest, GroupDepthCapReturnsInfeasible) {
  const Network net = nn::conv_chain(10, 8, 16);
  BnbOptions opt;
  opt.max_group_layers = 4;
  EXPECT_FALSE(fuse_group(net, 1, 6, model_, opt).has_value());
  EXPECT_TRUE(fuse_group(net, 1, 4, model_, opt).has_value());
}

TEST_F(BnbTest, RangeContainingInputThrows) {
  const Network net = nn::tiny_net();
  EXPECT_THROW((void)fuse_group(net, 0, 2, model_), std::invalid_argument);
}

TEST_F(BnbTest, HeterogeneousChoiceEmergesUnderDspPressure) {
  // With plenty of bandwidth-light conv layers, the optimum for a fused
  // VGG-style group should use Winograd somewhere (it's 4x cheaper in DSPs).
  const Network net = nn::vgg_e_head();
  const auto r = fuse_group(net, 1, 7, model_);
  ASSERT_TRUE(r.has_value());
  bool any_wino = false;
  for (const auto& ipl : r->group.impls) {
    any_wino |= ipl.cfg.algo == ConvAlgo::kWinograd;
  }
  EXPECT_TRUE(any_wino);
}

TEST_F(BnbTest, CandidateBucketsSortedAscendingCycles) {
  const Network net = nn::vgg_e_head();
  for (const auto& bucket : layer_candidate_impls(net[2], model_)) {
    for (std::size_t i = 1; i < bucket.size(); ++i) {
      EXPECT_LE(bucket[i - 1].compute_cycles, bucket[i].compute_cycles);
    }
  }
}

// --------------------------------------------------------------------- DP --
class DpTest : public ::testing::Test {
 protected:
  fpga::Device dev_ = fpga::zc706();
  EngineModel model_{dev_};
  Network head_ = nn::vgg_e_head();

  OptimizerOptions opts(long long budget_mb_x10 = 20) {
    OptimizerOptions o;
    o.transfer_budget_bytes = budget_mb_x10 * 1024 * 1024 / 10;
    return o;
  }
};

TEST_F(DpTest, StrategyCoversAllLayersOnce) {
  const auto r = optimize(head_, model_, opts(20));  // 2 MB
  ASSERT_TRUE(r.feasible);
  std::size_t expect_first = 1;
  for (const auto& g : r.strategy.groups) {
    EXPECT_EQ(g.first, expect_first);
    expect_first = g.last + 1;
  }
  EXPECT_EQ(expect_first, head_.size());
}

TEST_F(DpTest, RespectsTransferBudget) {
  // The fully-fused head already needs ~1.86 MB (input map + conv3_1
  // output), so the sweep starts at the paper's Table 1 budget of 2 MB.
  for (long long mb : {2, 4, 8, 16, 34}) {
    const auto r = optimize(head_, model_, opts(mb * 10));
    ASSERT_TRUE(r.feasible) << mb << " MB";
    EXPECT_LE(r.strategy.transfer_bytes(), mb * 1024 * 1024) << mb << " MB";
  }
}

TEST_F(DpTest, LatencyMonotoneNonIncreasingInBudget) {
  long long prev = std::numeric_limits<long long>::max();
  for (long long mb : {2, 4, 8, 16, 34}) {
    const auto r = optimize(head_, model_, opts(mb * 10));
    ASSERT_TRUE(r.feasible);
    EXPECT_LE(r.strategy.latency_cycles(), prev) << mb << " MB";
    prev = r.strategy.latency_cycles();
  }
}

TEST_F(DpTest, InfeasibleBelowMinimalTransfer) {
  OptimizerOptions o;
  o.transfer_budget_bytes = 100 * 1024;  // 100 KB < input map alone
  const auto r = optimize(head_, model_, o);
  EXPECT_FALSE(r.feasible);
}

TEST_F(DpTest, TightBudgetForcesFewGroups) {
  // At exactly the minimal budget the whole range must fuse into one group
  // (any split doubles a boundary map and busts the budget).
  OptimizerOptions o;
  o.transfer_budget_bytes = min_transfer_bytes(head_, 1, 7, 2) + 10 * 1024;
  const auto r = optimize(head_, model_, o);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.strategy.groups.size(), 1u);
}

TEST_F(DpTest, LooseBudgetNeverWorseAndFusedIsDspOptimal) {
  // Under this engine model (fine-grained parallelism), a balanced fused
  // group reaches the same DSP-bound throughput as per-layer groups while
  // moving less data, so the DP keeps full fusion even at loose budgets —
  // see EXPERIMENTS.md for the discussion of this deviation from Fig. 5's
  // slope. The invariants that must hold: relaxing T never hurts, and the
  // fused design sits within 15% of the DSP-roof lower bound.
  const auto tight = optimize(head_, model_, opts(20));   // 2 MB
  const auto loose = optimize(head_, model_, opts(340));  // 34 MB
  ASSERT_TRUE(tight.feasible);
  ASSERT_TRUE(loose.feasible);
  EXPECT_LE(loose.strategy.latency_cycles(), tight.strategy.latency_cycles());

  // DSP-roof lower bound: all conv work as Winograd on every DSP.
  double wino_mults = 0;
  for (const auto& l : head_) {
    if (l.kind != nn::LayerKind::kConv) continue;
    fpga::EngineConfig cfg;
    cfg.algo = EngineModel::winograd_ok(l) ? ConvAlgo::kWinograd
                                           : ConvAlgo::kConventional;
    wino_mults += static_cast<double>(EngineModel::algo_mults(l, cfg));
  }
  const double lower_bound =
      wino_mults / (static_cast<double>(dev_.capacity.dsp) * 0.9);
  EXPECT_LT(static_cast<double>(loose.strategy.latency_cycles()),
            1.15 * lower_bound);
}

TEST_F(DpTest, IntervalDpAgreesWithPrefixDp) {
  for (long long mb10 : {15, 20, 40, 80}) {
    OptimizerOptions o = opts(mb10);
    o.balance = false;
    const auto fast = optimize(head_, model_, o);
    const auto paper = optimize_interval(head_, model_, o);
    ASSERT_EQ(fast.feasible, paper.feasible) << mb10;
    if (fast.feasible) {
      EXPECT_EQ(fast.strategy.latency_cycles(),
                paper.strategy.latency_cycles())
          << mb10;
    }
  }
}

TEST_F(DpTest, IntervalDpAgreesOnTinyNetToo) {
  const Network net = nn::tiny_net(8, 32);
  OptimizerOptions o;
  o.balance = false;
  o.transfer_budget_bytes = 256 * 1024;
  o.transfer_unit_bytes = 1024;
  const auto fast = optimize(net, model_, o);
  const auto paper = optimize_interval(net, model_, o);
  ASSERT_TRUE(fast.feasible);
  ASSERT_TRUE(paper.feasible);
  EXPECT_EQ(fast.strategy.latency_cycles(), paper.strategy.latency_cycles());
}

TEST_F(DpTest, DpMatchesExhaustivePartitionSearch) {
  // Brute-force all contiguous partitions of a 4-layer net and compare.
  const Network net = nn::tiny_net(8, 32);  // 4 optimizable layers
  OptimizerOptions o;
  o.balance = false;
  o.transfer_budget_bytes = 300 * 1024;
  o.transfer_unit_bytes = 1024;
  const FusionTable ft(net, model_, o.bnb);
  const std::size_t n = ft.count();
  ASSERT_EQ(n, 4u);

  long long best = std::numeric_limits<long long>::max();
  // Enumerate partitions via bitmask of cut positions.
  for (unsigned mask = 0; mask < (1u << (n - 1)); ++mask) {
    long long lat = 0, transfer = 0;
    bool ok = true;
    std::size_t start = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const bool cut = (i == n - 1) || (mask & (1u << i));
      if (!cut) continue;
      if (!ft.feasible(start, i)) {
        ok = false;
        break;
      }
      lat += ft.latency(start, i);
      transfer += (ft.min_transfer(start, i) + o.transfer_unit_bytes - 1) /
                  o.transfer_unit_bytes;
      start = i + 1;
    }
    if (ok && transfer <= o.transfer_budget_bytes / o.transfer_unit_bytes) {
      best = std::min(best, lat);
    }
  }
  const auto r = optimize(net, model_, o);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.strategy.latency_cycles(), best);
}

TEST_F(DpTest, OptimizerRunsWithinSeconds) {
  // Paper §7.1: "our algorithm returns the optimal solutions within
  // seconds".
  const auto r = optimize(head_, model_, opts(160));
  ASSERT_TRUE(r.feasible);
  EXPECT_LT(r.wall_seconds, 30.0);
}

// ---------------------------------------------------------------- balance --
TEST_F(DpTest, BalancerNeverIncreasesLatencyAndNeverIncreasesResources) {
  OptimizerOptions o = opts(20);
  o.balance = false;
  auto r = optimize(head_, model_, o);
  ASSERT_TRUE(r.feasible);
  const long long lat_before = r.strategy.latency_cycles();
  const auto res_before = r.strategy.peak_resources();

  balance_strategy(r.strategy, head_, model_);
  EXPECT_LE(r.strategy.latency_cycles(), lat_before);
  const auto res_after = r.strategy.peak_resources();
  EXPECT_LE(res_after.dsp, res_before.dsp);
}

TEST_F(DpTest, BalancerKeepsResourcesWithinDevice) {
  auto r = optimize(head_, model_, opts(20));
  ASSERT_TRUE(r.feasible);
  for (const auto& g : r.strategy.groups) {
    EXPECT_TRUE(g.resources().fits_in(dev_.capacity));
  }
}

// ----------------------------------------------------------------- report --
TEST_F(DpTest, ReportFieldsConsistent) {
  const auto r = optimize(head_, model_, opts(20));
  ASSERT_TRUE(r.feasible);
  const StrategyReport rep = make_report(r.strategy, head_, dev_);
  EXPECT_GT(rep.latency_ms, 0.0);
  EXPECT_GT(rep.effective_gops, 0.0);
  EXPECT_GT(rep.dsp_utilization, 0.0);
  EXPECT_LE(rep.dsp_utilization, 1.0);
  EXPECT_GT(rep.power.total(), 0.0);
  EXPECT_GT(rep.energy.total(), 0.0);
  EXPECT_EQ(rep.feature_transfer_bytes, r.strategy.transfer_bytes());
  EXPECT_GT(rep.weight_transfer_bytes, 0);
  EXPECT_NEAR(rep.effective_gops / rep.power.total(),
              rep.energy_efficiency_gops_per_w, 1e-6);
}

TEST_F(DpTest, PerLayerTileExplorationNeverWorse) {
  // Extension: letting Algorithm 2 pick F(m,3) per layer from {2,4,6} can
  // only improve on the paper's uniform F(4,3).
  OptimizerOptions o = opts(40);
  const auto uniform = optimize(head_, model_, o);
  fpga::EngineModelParams p;
  p.explore_wino_tiles = true;
  const fpga::EngineModel explore_model(dev_, p);
  const auto explored = optimize(head_, explore_model, o);
  ASSERT_TRUE(uniform.feasible);
  ASSERT_TRUE(explored.feasible);
  EXPECT_LE(explored.strategy.latency_cycles(),
            uniform.strategy.latency_cycles());
  // And the result is still resource-feasible.
  for (const auto& g : explored.strategy.groups) {
    EXPECT_TRUE(g.resources().fits_in(dev_.capacity));
  }
}

TEST_F(DpTest, TileExplorationProducesOnlySupportedTileSizes) {
  fpga::EngineModelParams p;
  p.explore_wino_tiles = true;
  const fpga::EngineModel m(dev_, p);
  for (const auto& cfg : m.candidates(head_[2])) {
    if (cfg.algo == fpga::ConvAlgo::kWinograd) {
      EXPECT_TRUE(cfg.wino_m == 2 || cfg.wino_m == 4 || cfg.wino_m == 6);
    }
  }
}

TEST_F(DpTest, FusionTableEvaluatesOnlyBoundedRanges) {
  OptimizerOptions o = opts(20);
  const FusionTable ft(head_, model_, o.bnb);
  EXPECT_EQ(ft.count(), 7u);
  // ranges with span <= 8 out of 7 layers: all 28 pairs
  EXPECT_EQ(ft.ranges_evaluated(), 28);
  EXPECT_GT(ft.nodes_visited(), 0);
}

}  // namespace
}  // namespace hetacc::core
