#include "nn/reference.h"

#include <cmath>

#include <gtest/gtest.h>

#include "nn/model_zoo.h"

namespace hetacc::nn {
namespace {

TEST(ConvReference, IdentityKernel) {
  Tensor in(1, 4, 4);
  fill_deterministic(in, 1);
  FilterBank f(1, 1, 3);
  f.at(0, 0, 1, 1) = 1.0f;  // center tap = identity with pad 1
  const Tensor out = conv_reference(in, f, {}, 1, 1, false);
  EXPECT_EQ(out.shape(), in.shape());
  EXPECT_LT(out.max_abs_diff(in), 1e-6f);
}

TEST(ConvReference, KnownTinyValues) {
  // 1x2x2 input, 1 kernel of all ones, no pad: single output = sum.
  Tensor in(1, 2, 2);
  in.at(0, 0, 0) = 1;
  in.at(0, 0, 1) = 2;
  in.at(0, 1, 0) = 3;
  in.at(0, 1, 1) = 4;
  FilterBank f(1, 1, 2, 1.0f);
  const Tensor out = conv_reference(in, f, {}, 1, 0, false);
  ASSERT_EQ(out.shape(), (Shape{1, 1, 1}));
  EXPECT_FLOAT_EQ(out.at(0, 0, 0), 10.0f);
}

TEST(ConvReference, BiasAndRelu) {
  Tensor in(Shape{1, 1, 1}, 1.0f);
  FilterBank f(2, 1, 1);
  f.at(0, 0, 0, 0) = -3.0f;
  f.at(1, 0, 0, 0) = 2.0f;
  const Tensor out = conv_reference(in, f, {1.0f, 1.0f}, 1, 0, true);
  EXPECT_FLOAT_EQ(out.at(0, 0, 0), 0.0f);  // -3+1 clamped
  EXPECT_FLOAT_EQ(out.at(1, 0, 0), 3.0f);
}

TEST(ConvReference, StrideTwo) {
  Tensor in(1, 5, 5);
  fill_deterministic(in, 3);
  FilterBank f(1, 1, 3);
  fill_deterministic(f, 4);
  const Tensor out = conv_reference(in, f, {}, 2, 0, false);
  EXPECT_EQ(out.shape(), (Shape{1, 2, 2}));
  // spot check one element directly
  float acc = 0;
  for (int u = 0; u < 3; ++u) {
    for (int v = 0; v < 3; ++v) acc += in.at(0, 2 + u, 2 + v) * f.at(0, 0, u, v);
  }
  EXPECT_NEAR(out.at(0, 1, 1), acc, 1e-5f);
}

TEST(ConvReference, ChannelMismatchThrows) {
  Tensor in(2, 4, 4);
  FilterBank f(1, 3, 3);
  EXPECT_THROW((void)conv_reference(in, f, {}, 1, 0, false),
               std::invalid_argument);
}

TEST(PoolReference, MaxAndAverage) {
  Tensor in(1, 2, 2);
  in.at(0, 0, 0) = 1;
  in.at(0, 0, 1) = 2;
  in.at(0, 1, 0) = 3;
  in.at(0, 1, 1) = 4;
  const Tensor mx = pool_reference(in, PoolMethod::kMax, 2, 2, 0);
  const Tensor av = pool_reference(in, PoolMethod::kAverage, 2, 2, 0);
  EXPECT_FLOAT_EQ(mx.at(0, 0, 0), 4.0f);
  EXPECT_FLOAT_EQ(av.at(0, 0, 0), 2.5f);
}

TEST(PoolReference, CeilModeClipsWindow) {
  Tensor in(Shape{1, 5, 5}, 1.0f);
  in.at(0, 4, 4) = 9.0f;
  const Tensor out = pool_reference(in, PoolMethod::kMax, 2, 2, 0);
  // ceil((5-2)/2)+1 = 3 outputs; last window is the single corner pixel.
  ASSERT_EQ(out.shape(), (Shape{1, 3, 3}));
  EXPECT_FLOAT_EQ(out.at(0, 2, 2), 9.0f);
}

TEST(LrnReference, UnitInputKnownValue) {
  LrnParam p{5, 1e-4f, 0.75f, 1.0f};
  Tensor in(Shape{5, 1, 1}, 1.0f);
  const Tensor out = lrn_reference(in, p);
  // center channel: ss = 5, denom = (1 + 1e-4/5*5)^0.75
  const float denom = std::pow(1.0f + 1e-4f, 0.75f);
  EXPECT_NEAR(out.at(2, 0, 0), 1.0f / denom, 1e-6f);
}

TEST(LrnReference, EdgeChannelsUseClippedWindow) {
  LrnParam p{5, 0.5f, 1.0f, 1.0f};  // big alpha so the window size matters
  Tensor in(Shape{5, 1, 1}, 1.0f);
  const Tensor out = lrn_reference(in, p);
  // channel 0 window = {0,1,2}: ss=3 -> denom = 1 + 0.1*3
  EXPECT_NEAR(out.at(0, 0, 0), 1.0f / (1.0f + 0.1f * 3), 1e-6f);
  EXPECT_NEAR(out.at(2, 0, 0), 1.0f / (1.0f + 0.1f * 5), 1e-6f);
}

TEST(FcReference, MatVec) {
  Tensor in(Shape{3, 1, 1});
  in.at(0, 0, 0) = 1;
  in.at(1, 0, 0) = 2;
  in.at(2, 0, 0) = 3;
  FcWeights w;
  w.matrix = {1, 0, 0, 0, 1, 1};
  w.bias = {0.5f, -10.0f};
  Tensor out = fc_reference(in, w, true);
  EXPECT_FLOAT_EQ(out.at(0, 0, 0), 1.5f);
  EXPECT_FLOAT_EQ(out.at(1, 0, 0), 0.0f);  // 5 - 10 relu'd
}

TEST(SoftmaxReference, SumsToOne) {
  Tensor in(Shape{4, 1, 1});
  fill_deterministic(in, 11);
  Tensor out = softmax_reference(in);
  float sum = 0;
  for (float v : out.vec()) {
    EXPECT_GT(v, 0.0f);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0f, 1e-6f);
}

TEST(RunNetwork, TinyNetEndToEnd) {
  Network net = tiny_net(4, 8);
  const WeightStore ws = WeightStore::deterministic(net, 5);
  Tensor in(net[0].out);
  fill_deterministic(in, 6);
  const Tensor out = run_network(net, ws, in);
  EXPECT_EQ(out.shape(), net[net.size() - 1].out);
}

TEST(RunNetwork, AllLayersShapesConsistent) {
  Network net = tiny_net(4, 8);
  const WeightStore ws = WeightStore::deterministic(net, 5);
  Tensor in(net[0].out);
  fill_deterministic(in, 6);
  const auto outs = run_network_all(net, ws, in);
  ASSERT_EQ(outs.size(), net.size());
  for (std::size_t i = 0; i < net.size(); ++i) {
    EXPECT_EQ(outs[i].shape(), net[i].out) << "layer " << i;
  }
}

TEST(RunNetwork, AlexNetFullForwardRuns) {
  Network net = alexnet();
  const WeightStore ws = WeightStore::deterministic(net, 1);
  Tensor in(net[0].out);
  fill_deterministic(in, 2);
  const Tensor out = run_network(net, ws, in);
  ASSERT_EQ(out.shape(), (Shape{1000, 1, 1}));
  float sum = 0;
  for (float v : out.vec()) sum += v;
  EXPECT_NEAR(sum, 1.0f, 1e-4f);  // softmax output
}

TEST(WeightStore, DeterministicAndSeedSensitive) {
  Network net = tiny_net();
  const WeightStore a = WeightStore::deterministic(net, 5);
  const WeightStore b = WeightStore::deterministic(net, 5);
  const WeightStore c = WeightStore::deterministic(net, 6);
  const auto i = *net.find("c1");
  EXPECT_EQ(a.conv(i).filters.at(0, 0, 0, 0), b.conv(i).filters.at(0, 0, 0, 0));
  EXPECT_NE(a.conv(i).filters.at(0, 0, 0, 0), c.conv(i).filters.at(0, 0, 0, 0));
}

TEST(WeightStore, MissingLayerThrows) {
  Network net = tiny_net();
  const WeightStore ws = WeightStore::deterministic(net, 5);
  EXPECT_THROW((void)ws.conv(0), std::out_of_range);  // input layer
  EXPECT_THROW((void)ws.fc(1), std::out_of_range);
}

TEST(WeightStore, NoBiasVariantZeroes) {
  Network net = tiny_net();
  const WeightStore ws = WeightStore::deterministic_no_bias(net, 5);
  for (float b : ws.conv(*net.find("c1")).bias) EXPECT_EQ(b, 0.0f);
}

TEST(WeightStore, ByteAccounting) {
  Network net("n");
  net.input({2, 4, 4});
  net.conv(3, 3, 1, 1, "c");
  const WeightStore ws = WeightStore::deterministic(net, 1);
  // filters 3*2*9 + bias 3 = 57 halfwords
  EXPECT_EQ(ws.bytes(2), 57ll * 2);
}

}  // namespace
}  // namespace hetacc::nn
