#include "algo/winograd_stride2.h"

#include <gtest/gtest.h>

#include "nn/reference.h"

namespace hetacc::algo {
namespace {

TEST(Polyphase, ComponentExtraction) {
  nn::Tensor in(1, 5, 4);
  for (int h = 0; h < 5; ++h) {
    for (int w = 0; w < 4; ++w) in.at(0, h, w) = static_cast<float>(h * 10 + w);
  }
  const nn::Tensor ee = polyphase_component(in, 0, 0);
  ASSERT_EQ(ee.shape(), (nn::Shape{1, 3, 2}));
  EXPECT_FLOAT_EQ(ee.at(0, 1, 1), 22.0f);
  const nn::Tensor oo = polyphase_component(in, 1, 1);
  ASSERT_EQ(oo.shape(), (nn::Shape{1, 2, 2}));
  EXPECT_FLOAT_EQ(oo.at(0, 0, 0), 11.0f);
  EXPECT_FLOAT_EQ(oo.at(0, 1, 1), 33.0f);
  EXPECT_THROW((void)polyphase_component(in, 2, 0), std::invalid_argument);
}

TEST(Polyphase, FilterSplitCoversEveryTapOnce) {
  nn::FilterBank f(1, 1, 5);
  nn::fill_deterministic(f, 71);
  const auto phases = polyphase_filters(f);
  ASSERT_EQ(phases.size(), 4u);
  EXPECT_EQ(phases[0].kernel(), 3);  // ceil(5/2)
  double total = 0, split = 0;
  for (int u = 0; u < 5; ++u) {
    for (int v = 0; v < 5; ++v) total += f.at(0, 0, u, v);
  }
  for (const auto& pf : phases) {
    for (int a = 0; a < pf.kernel(); ++a) {
      for (int b = 0; b < pf.kernel(); ++b) split += pf.at(0, 0, a, b);
    }
  }
  EXPECT_NEAR(split, total, 1e-6);
}

TEST(Polyphase, TinyKernelThrows) {
  nn::FilterBank f(1, 1, 1);
  EXPECT_THROW((void)polyphase_filters(f), std::invalid_argument);
}

struct S2Case {
  int m, k, c, n, h, w, pad;
};

class WinogradStride2Sweep : public ::testing::TestWithParam<S2Case> {};

TEST_P(WinogradStride2Sweep, MatchesDirectStride2Convolution) {
  const auto p = GetParam();
  nn::Tensor in(p.c, p.h, p.w);
  nn::fill_deterministic(in, 81);
  nn::FilterBank f(p.n, p.c, p.k);
  nn::fill_deterministic(f, 82);
  std::vector<float> bias(static_cast<std::size_t>(p.n));
  nn::fill_deterministic(bias, 83);
  const nn::Tensor direct = nn::conv_reference(in, f, bias, 2, p.pad, true);
  const nn::Tensor wino =
      winograd_conv_stride2(p.m, in, f, bias, p.pad, true);
  ASSERT_EQ(wino.shape(), direct.shape());
  EXPECT_LT(wino.max_abs_diff(direct), 5e-4f);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, WinogradStride2Sweep,
    ::testing::Values(S2Case{2, 3, 1, 1, 8, 8, 0},    // ResNet-ish 3x3 s2
                      S2Case{2, 3, 3, 4, 15, 15, 1},
                      S2Case{4, 3, 2, 2, 16, 12, 1},
                      S2Case{2, 5, 2, 3, 14, 14, 2},  // 5x5 s2
                      S2Case{4, 5, 3, 2, 17, 17, 0},
                      S2Case{2, 7, 2, 2, 21, 21, 3},  // 7x7 s2 (ResNet stem)
                      S2Case{2, 2, 1, 2, 10, 10, 0},  // even kernel
                      S2Case{2, 4, 2, 2, 13, 13, 1}),
    [](const auto& info) {
      const auto& p = info.param;
      return "m" + std::to_string(p.m) + "_k" + std::to_string(p.k) + "_c" +
             std::to_string(p.c) + "n" + std::to_string(p.n) + "_" +
             std::to_string(p.h) + "x" + std::to_string(p.w) + "_p" +
             std::to_string(p.pad);
    });

TEST(WinogradStride2, MultCountBeatsDirectFor3x3) {
  // 3x3 s2 direct = 9 mults/output/channel-pair. Decomposed phases use
  // F(m,2): at m=2 the phase tiles cost exactly 9/output (break-even, a
  // known property of this decomposition); at m=4 they cost 4 * 25/16 =
  // 6.25/output, a 1.44x reduction.
  const long long direct = 64ll * 64 * 9 * 56 * 56;
  const long long breakeven = winograd_stride2_mults(2, 64, 64, 56, 56, 3);
  EXPECT_EQ(breakeven, direct);
  const long long wino = winograd_stride2_mults(4, 64, 64, 56, 56, 3);
  EXPECT_LT(wino, direct);
  const double reduction =
      static_cast<double>(direct) / static_cast<double>(wino);
  EXPECT_GT(reduction, 1.3);
}

TEST(WinogradStride2, BadGeometryThrows) {
  nn::Tensor in(1, 3, 3);
  nn::FilterBank f(1, 1, 7);
  EXPECT_THROW((void)winograd_conv_stride2(2, in, f, {}, 0, false),
               std::invalid_argument);
}

}  // namespace
}  // namespace hetacc::algo
