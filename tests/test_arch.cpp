#include <gtest/gtest.h>

#include "arch/line_buffer.h"
#include "arch/pipeline.h"
#include "core/strategy.h"
#include "nn/model_zoo.h"
#include "nn/reference.h"

namespace hetacc::arch {
namespace {

using fpga::ConvAlgo;
using nn::Network;
using nn::Shape;
using nn::Tensor;
using nn::WeightStore;

// ------------------------------------------------------------ line buffer --
TEST(CircularLineBuffer, RotatesAndTracksWindow) {
  CircularLineBuffer lb(1, 4, 3);
  for (int r = 0; r < 5; ++r) {
    lb.push_row(std::vector<float>{float(r), float(r) + 0.25f,
                                   float(r) + 0.5f, float(r) + 0.75f});
  }
  EXPECT_EQ(lb.next_row(), 5);
  EXPECT_EQ(lb.oldest_row(), 2);
  EXPECT_TRUE(lb.contains(2));
  EXPECT_TRUE(lb.contains(4));
  EXPECT_FALSE(lb.contains(1));
  EXPECT_FLOAT_EQ(lb.at(0, 3, 2), 3.5f);
}

TEST(CircularLineBuffer, EvictedRowThrows) {
  CircularLineBuffer lb(1, 2, 2);
  lb.push_row({0, 0});
  lb.push_row({1, 1});
  lb.push_row({2, 2});
  EXPECT_THROW((void)lb.at(0, 0, 0), std::out_of_range);
  EXPECT_FLOAT_EQ(lb.at(0, 2, 1), 2.0f);
}

TEST(CircularLineBuffer, MultiChannelLayout) {
  CircularLineBuffer lb(2, 3, 2);
  lb.push_row({1, 2, 3, /*ch1:*/ 4, 5, 6});
  EXPECT_FLOAT_EQ(lb.at(0, 0, 2), 3.0f);
  EXPECT_FLOAT_EQ(lb.at(1, 0, 0), 4.0f);
}

TEST(CircularLineBuffer, BadGeometryAndRowSizeThrow) {
  EXPECT_THROW(CircularLineBuffer(0, 4, 2), std::invalid_argument);
  CircularLineBuffer lb(1, 4, 2);
  EXPECT_THROW(lb.push_row({1, 2}), std::invalid_argument);
}

TEST(RowFifo, OccupancyTracking) {
  RowFifo f;
  f.push(Row{{1}});
  f.push(Row{{2}});
  (void)f.pop();
  f.push(Row{{3}});
  EXPECT_EQ(f.max_occupancy(), 2u);
  EXPECT_EQ(f.total_pushed(), 3);
}

TEST(RowFifo, CapacityEnforced) {
  RowFifo f(1);
  f.push(Row{{1}});
  EXPECT_THROW(f.push(Row{{2}}), std::runtime_error);
  (void)f.pop();
  EXPECT_THROW((void)f.pop(), std::runtime_error);
}

// ----------------------------------------------------- pipeline functional --
/// Runs the fusion pipeline on `net` and compares against the reference
/// executor layer stack.
void expect_pipeline_matches_reference(const Network& net,
                                       std::vector<LayerChoice> choices,
                                       float tol, std::uint32_t seed = 17) {
  const WeightStore ws = WeightStore::deterministic(net, seed);
  Tensor in(net[0].out);
  nn::fill_deterministic(in, seed + 1);
  const Tensor ref = nn::run_network(net, ws, in);
  FusionPipeline pipe(net, ws, std::move(choices));
  const Tensor got = pipe.run(in);
  ASSERT_EQ(got.shape(), ref.shape());
  EXPECT_LE(got.max_abs_diff(ref), tol);
}

TEST(Pipeline, SingleConvConventional) {
  Network net("n");
  net.input({3, 12, 12});
  net.conv(5, 3, 1, 1, "c1");
  expect_pipeline_matches_reference(net, {}, 1e-4f);
}

TEST(Pipeline, SingleConvStride2NoPad) {
  Network net("n");
  net.input({2, 11, 11});
  net.conv(4, 3, 2, 0, "c1");
  expect_pipeline_matches_reference(net, {}, 1e-4f);
}

TEST(Pipeline, SingleConvLargeKernelStride4) {
  Network net("n");
  net.input({3, 23, 23});
  net.conv(4, 11, 4, 0, "c1");  // AlexNet conv1 geometry, scaled down
  expect_pipeline_matches_reference(net, {}, 1e-4f);
}

TEST(Pipeline, SingleConvWinogradF43) {
  Network net("n");
  net.input({3, 12, 12});
  net.conv(5, 3, 1, 1, "c1");
  expect_pipeline_matches_reference(
      net, {LayerChoice{ConvAlgo::kWinograd, 4, {}}}, 2e-4f);
}

TEST(Pipeline, SingleConvWinogradF23NonTileMultiple) {
  Network net("n");
  net.input({2, 9, 13});
  net.conv(3, 3, 1, 1, "c1");
  expect_pipeline_matches_reference(
      net, {LayerChoice{ConvAlgo::kWinograd, 2, {}}}, 2e-4f);
}

TEST(Pipeline, SingleConvWinograd5x5) {
  Network net("n");
  net.input({2, 14, 14});
  net.conv(3, 5, 1, 2, "c1");  // AlexNet conv2 geometry, scaled down
  expect_pipeline_matches_reference(
      net, {LayerChoice{ConvAlgo::kWinograd, 2, {}}}, 5e-4f);
}

TEST(Pipeline, MaxPoolExactAndCeil) {
  Network net("n");
  net.input({3, 8, 8});
  net.max_pool(2, 2, "p1");
  expect_pipeline_matches_reference(net, {}, 0.0f);

  Network net2("n2");
  net2.input({3, 7, 7});
  net2.max_pool(3, 2, "p1");  // ceil: output 3
  expect_pipeline_matches_reference(net2, {}, 0.0f);
}

TEST(Pipeline, AvgPool) {
  Network net("n");
  net.input({2, 9, 9});
  net.avg_pool(3, 3, "p1");
  expect_pipeline_matches_reference(net, {}, 1e-6f);
}

TEST(Pipeline, Lrn) {
  Network net("n");
  net.input({8, 6, 6});
  net.lrn(5, 1e-4f, 0.75f, "l1");
  expect_pipeline_matches_reference(net, {}, 1e-5f);
}

TEST(Pipeline, StandaloneRelu) {
  Network net("n");
  net.input({4, 5, 5});
  net.relu("r1");
  expect_pipeline_matches_reference(net, {}, 0.0f);
}

TEST(Pipeline, FusedConvPoolConv) {
  Network net = nn::tiny_net(4, 16);
  expect_pipeline_matches_reference(net, {}, 1e-3f);
}

TEST(Pipeline, HeterogeneousAlgorithmsAcrossFusedLayers) {
  // The paper's core architecture property: different algorithms for
  // different layers inside one fusion group, streaming through FIFOs.
  Network net("hetero");
  net.input({3, 20, 20});
  net.conv(6, 3, 1, 1, "c1");
  net.conv(8, 3, 1, 1, "c2");
  net.max_pool(2, 2, "p1");
  net.conv(8, 3, 1, 1, "c3");
  std::vector<LayerChoice> ch(4);
  ch[0].algo = ConvAlgo::kConventional;
  ch[1].algo = ConvAlgo::kWinograd;  // wino sandwiched between conventional
  ch[3].algo = ConvAlgo::kWinograd;
  expect_pipeline_matches_reference(net, ch, 2e-3f);
}

TEST(Pipeline, AlexNetHeadWithLrn) {
  Network net("alexhead");
  net.input({3, 35, 35});
  net.conv(8, 11, 4, 0, "conv1");
  net.lrn(5, 1e-4f, 0.75f, "norm1");
  net.max_pool(3, 2, "pool1");
  net.conv(12, 5, 1, 2, "conv2");
  std::vector<LayerChoice> ch(4);
  ch[3].algo = ConvAlgo::kWinograd;
  ch[3].wino_m = 2;
  expect_pipeline_matches_reference(net, ch, 2e-3f);
}

TEST(Pipeline, FixedPointModeStaysClose) {
  Network net("fx");
  net.input({3, 16, 16});
  net.conv(6, 3, 1, 1, "c1");
  net.max_pool(2, 2, "p1");
  std::vector<LayerChoice> ch(2);
  ch[0].mode = NumericMode{12, 10};
  ch[1].mode = NumericMode{10, 10};
  const WeightStore ws = WeightStore::deterministic(net, 3);
  Tensor in(net[0].out);
  nn::fill_deterministic(in, 4);
  const Tensor ref = nn::run_network(net, ws, in);
  FusionPipeline pipe(net, ws, ch);
  const Tensor got = pipe.run(in);
  EXPECT_LT(got.max_abs_diff(ref), 0.05f);
}

TEST(Pipeline, FifoOccupancyStaysNearLineBufferScale) {
  // The streaming schedule must not buffer whole feature maps: occupancy on
  // every inter-layer channel stays within a few rows.
  Network net = nn::tiny_net(4, 32);
  const WeightStore ws = WeightStore::deterministic(net, 9);
  Tensor in(net[0].out);
  nn::fill_deterministic(in, 10);
  FusionPipeline pipe(net, ws);
  (void)pipe.run(in);
  const auto& occ = pipe.stats().fifo_max_occupancy;
  ASSERT_EQ(occ.size(), net.size());
  for (std::size_t i = 1; i < occ.size(); ++i) {
    EXPECT_LE(occ[i], 8u) << "channel " << i;
  }
}

TEST(Pipeline, BatchOfImagesThroughOnePipeline) {
  // run() resets engine state per image: a batch through one pipeline must
  // equal per-image references.
  Network net = nn::tiny_net(4, 12);
  const WeightStore ws = WeightStore::deterministic(net, 55);
  FusionPipeline pipe(net, ws);
  for (std::uint32_t seed = 60; seed < 63; ++seed) {
    Tensor in(net[0].out);
    nn::fill_deterministic(in, seed);
    const Tensor got = pipe.run(in);
    const Tensor ref = nn::run_network(net, ws, in);
    EXPECT_LT(got.max_abs_diff(ref), 1e-3f) << "image " << seed;
  }
}

TEST(Pipeline, InputShapeMismatchThrows) {
  Network net = nn::tiny_net(4, 8);
  const WeightStore ws = WeightStore::deterministic(net, 9);
  FusionPipeline pipe(net, ws);
  Tensor wrong(1, 8, 8);
  EXPECT_THROW((void)pipe.run(wrong), std::invalid_argument);
}

TEST(Pipeline, RequiresInputLayer) {
  Network net = nn::tiny_net(4, 8);
  const WeightStore ws = WeightStore::deterministic(net, 9);
  const Network sliced = net.slice(1, 3, "no-input");  // has synthetic input
  EXPECT_NO_THROW(FusionPipeline(sliced, WeightStore::deterministic(sliced, 1)));
}

TEST(Pipeline, ChoiceCountMismatchThrows) {
  Network net = nn::tiny_net(4, 8);
  const WeightStore ws = WeightStore::deterministic(net, 9);
  EXPECT_THROW(FusionPipeline(net, ws, std::vector<LayerChoice>(2)),
               std::invalid_argument);
}

TEST(Engines, LineBufferLinesMatchPaperDesign) {
  Network net("n");
  net.input({2, 12, 12});
  net.conv(2, 3, 1, 1, "c");
  const WeightStore ws = WeightStore::deterministic(net, 1);
  FusionPipeline conv_pipe(net, ws);
  EXPECT_EQ(conv_pipe.engine(0).line_buffer_lines(), 3 + 1);  // K + S

  FusionPipeline wino_pipe(net, ws, {LayerChoice{ConvAlgo::kWinograd, 4, {}}});
  EXPECT_EQ(wino_pipe.engine(0).line_buffer_lines(), 6 + 4);  // n + m
}

// ------------------------------------------------------ schedule recurrence --
class ScheduleTest : public ::testing::Test {
 protected:
  fpga::Device dev_ = fpga::zc706();
  fpga::EngineModel model_{dev_};
};

TEST_F(ScheduleTest, MakespanAtLeastAnalyticSteadyState) {
  const Network net = nn::vgg_e_head();
  std::vector<fpga::Implementation> impls;
  for (std::size_t i = 1; i <= 3; ++i) {
    fpga::EngineConfig cfg;
    cfg.algo = net[i].kind == nn::LayerKind::kConv
                   ? fpga::ConvAlgo::kConventional
                   : fpga::ConvAlgo::kNone;
    cfg.tn = 3;
    cfg.tm = 16;
    cfg.tk = 9;
    impls.push_back(model_.implement(net[i], cfg));
  }
  const auto sched = simulate_schedule(net, 1, 3, impls, dev_);
  long long max_compute = 0;
  for (const auto& ipl : impls) {
    max_compute = std::max(max_compute, ipl.compute_cycles);
  }
  EXPECT_GE(sched.makespan_cycles, max_compute);
  // And within 2x of the analytic bound (fill + quantization effects).
  const auto timing = core::evaluate_group_timing(net, 1, 3, impls, dev_);
  EXPECT_LE(sched.makespan_cycles, 2 * timing.latency_cycles);
}

TEST_F(ScheduleTest, FasterEnginesShortenMakespan) {
  const Network net = nn::tiny_net(8, 32);
  auto impls_at = [&](int tm) {
    std::vector<fpga::Implementation> impls;
    for (std::size_t i = 1; i < net.size(); ++i) {
      fpga::EngineConfig cfg;
      if (net[i].kind == nn::LayerKind::kConv) {
        cfg.algo = fpga::ConvAlgo::kConventional;
        cfg.tn = 2;
        cfg.tm = tm;
      } else {
        cfg.algo = fpga::ConvAlgo::kNone;
        cfg.tn = 2;
      }
      impls.push_back(model_.implement(net[i], cfg));
    }
    return impls;
  };
  const auto slow = simulate_schedule(net, 1, net.size() - 1, impls_at(1), dev_);
  const auto fast = simulate_schedule(net, 1, net.size() - 1, impls_at(8), dev_);
  EXPECT_LT(fast.makespan_cycles, slow.makespan_cycles);
}

TEST_F(ScheduleTest, FirstOutputReflectsPyramidFill) {
  const Network net = nn::conv_chain(3, 4, 32);
  std::vector<fpga::Implementation> impls;
  for (std::size_t i = 1; i < net.size(); ++i) {
    impls.push_back(model_.implement(
        net[i], {fpga::ConvAlgo::kConventional, 4, 4, 9, 4}));
  }
  const auto sched = simulate_schedule(net, 1, net.size() - 1, impls, dev_);
  EXPECT_GT(sched.first_output_cycle, 0);
  EXPECT_LT(sched.first_output_cycle, sched.makespan_cycles);
  ASSERT_EQ(sched.layer_finish.size(), net.size() - 1);
  for (std::size_t i = 1; i < sched.layer_finish.size(); ++i) {
    EXPECT_GE(sched.layer_finish[i], sched.layer_finish[i - 1]);
  }
}

TEST_F(ScheduleTest, BadRangeThrows) {
  const Network net = nn::tiny_net(4, 8);
  EXPECT_THROW((void)simulate_schedule(net, 2, 1, {}, dev_),
               std::invalid_argument);
}

}  // namespace
}  // namespace hetacc::arch
