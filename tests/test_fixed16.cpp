#include "fixed/fixed16.h"

#include <gtest/gtest.h>

namespace hetacc::fixed {
namespace {

TEST(Fixed16, RoundTripExactValues) {
  // Values on the Q8 grid round-trip exactly.
  for (float v : {0.0f, 1.0f, -1.0f, 0.5f, 3.25f, -7.875f}) {
    EXPECT_EQ(Fixed16(v, 8).to_float(), v);
  }
}

TEST(Fixed16, QuantizationErrorBounded) {
  const int frac = 10;
  const float ulp = 1.0f / (1 << frac);
  for (float v = -3.0f; v < 3.0f; v += 0.00137f) {
    const float q = quantize_to_float(v, frac);
    EXPECT_LE(std::abs(q - v), ulp / 2 + 1e-7f) << v;
  }
}

TEST(Fixed16, SaturatesAtRangeEnds) {
  EXPECT_EQ(Fixed16(1e9f, 8).raw(), Fixed16::kMax);
  EXPECT_EQ(Fixed16(-1e9f, 8).raw(), Fixed16::kMin);
}

TEST(Fixed16, AddSaturates) {
  const Fixed16 big(127.0f, 8);
  const Fixed16 sum = big.add_sat(big);
  EXPECT_EQ(sum.raw(), Fixed16::kMax);
  const Fixed16 small(1.5f, 8);
  EXPECT_FLOAT_EQ(small.add_sat(small).to_float(), 3.0f);
}

TEST(Fixed16, MulMatchesFloatWithinUlp) {
  const int frac = 8;
  const Fixed16 a(1.25f, frac), b(-2.5f, frac);
  EXPECT_NEAR(a.mul_sat(b).to_float(), -3.125f, a.ulp());
}

TEST(Fixed16, MulSaturates) {
  const Fixed16 a(100.0f, 8), b(100.0f, 8);
  EXPECT_EQ(a.mul_sat(b).raw(), Fixed16::kMax);
}

TEST(Fixed16, UlpMatchesFrac) {
  EXPECT_FLOAT_EQ(Fixed16(0.0f, 12).ulp(), 1.0f / 4096.0f);
}

TEST(ChooseFracBits, CoversMagnitude) {
  EXPECT_EQ(choose_frac_bits(0.5f), 15);
  EXPECT_EQ(choose_frac_bits(1.5f), 14);
  EXPECT_EQ(choose_frac_bits(3.9f), 13);
  EXPECT_EQ(choose_frac_bits(100.0f), 8);
  EXPECT_EQ(choose_frac_bits(0.0f), 15);
}

TEST(ChooseFracBits, NoSaturationAtChosenWidth) {
  for (float mag : {0.3f, 1.0f, 2.7f, 9.0f, 200.0f}) {
    const int frac = choose_frac_bits(mag);
    const float q = quantize_to_float(mag, frac);
    // Quantization may clamp by at most one ulp at the extreme.
    EXPECT_NEAR(q, mag, 1.0f / (1 << frac) + 1e-6f);
  }
}

TEST(Accumulator, ExactProductAccumulation) {
  const int frac = 8;
  Accumulator acc(frac);
  // 0.5 * 0.25 accumulated 16 times = 2.0 exactly in Q8.
  for (int i = 0; i < 16; ++i) acc.mac(Fixed16(0.5f, frac), Fixed16(0.25f, frac));
  EXPECT_FLOAT_EQ(acc.result().to_float(), 2.0f);
}

TEST(Accumulator, BiasInjection) {
  const int frac = 8;
  Accumulator acc(frac);
  acc.add_bias(Fixed16(1.5f, frac));
  acc.mac(Fixed16(2.0f, frac), Fixed16(2.0f, frac));
  EXPECT_FLOAT_EQ(acc.result().to_float(), 5.5f);
}

TEST(Accumulator, ReluClampsNegative) {
  Accumulator acc(8);
  acc.mac(Fixed16(-2.0f, 8), Fixed16(3.0f, 8));
  EXPECT_FLOAT_EQ(acc.result_relu().to_float(), 0.0f);
  EXPECT_FLOAT_EQ(acc.result().to_float(), -6.0f);
}

TEST(Accumulator, SaturatesOnWriteback) {
  Accumulator acc(8);
  for (int i = 0; i < 100; ++i) acc.mac(Fixed16(100.0f, 8), Fixed16(100.0f, 8));
  EXPECT_EQ(acc.result().raw(), Fixed16::kMax);
}

TEST(QuantizeInPlace, WholeVector) {
  std::vector<float> v{0.1f, 0.2f, -0.3f};
  quantize_in_place(v, 4);
  for (float x : v) {
    EXPECT_FLOAT_EQ(x * 16.0f, std::nearbyint(x * 16.0f));
  }
}

}  // namespace
}  // namespace hetacc::fixed
