#include <gtest/gtest.h>

#include "nn/model_zoo.h"
#include "nn/network.h"

namespace hetacc::nn {
namespace {

TEST(LayerShape, ConvFloorSemantics) {
  Network net;
  net.input({3, 227, 227});
  const Layer& c1 = net.conv(96, 11, 4, 0, "conv1");
  EXPECT_EQ(c1.out, (Shape{96, 55, 55}));
}

TEST(LayerShape, ConvSamePadding) {
  Network net;
  net.input({64, 224, 224});
  const Layer& c = net.conv(64, 3, 1, 1, "c");
  EXPECT_EQ(c.out, (Shape{64, 224, 224}));
}

TEST(LayerShape, PoolCeilSemantics) {
  // AlexNet pool1: 55 -> 27 with k=3 s=2 (exact), and a ceil case.
  Network net;
  net.input({96, 55, 55});
  const Layer& p = net.max_pool(3, 2, "pool1");
  EXPECT_EQ(p.out, (Shape{96, 27, 27}));

  Network net2;
  net2.input({8, 7, 7});
  const Layer& p2 = net2.max_pool(3, 2, "p");
  // Caffe ceil: (7-3+1)/2 rounded up = 3.
  EXPECT_EQ(p2.out.h, 3);
}

TEST(LayerShape, KernelTooLargeThrows) {
  Network net;
  net.input({1, 4, 4});
  EXPECT_THROW(net.conv(1, 7, 1, 0, "bad"), std::invalid_argument);
}

TEST(LayerOps, ConvOpCount) {
  Network net;
  net.input({64, 224, 224});
  const Layer& c = net.conv(64, 3, 1, 1, "c");
  // 2 * M * K^2 * out elems
  EXPECT_EQ(c.ops(), 2ll * 64 * 9 * 64 * 224 * 224);
  EXPECT_EQ(c.mults(), 64ll * 9 * 64 * 224 * 224);
}

TEST(LayerOps, WeightCountIncludesBias) {
  Network net;
  net.input({3, 32, 32});
  const Layer& c = net.conv(16, 3, 1, 1, "c");
  EXPECT_EQ(c.weight_count(), 16ll * 3 * 9 + 16);
}

TEST(LayerAccessors, WrongKindThrows) {
  Network net;
  net.input({3, 8, 8});
  const Layer& c = net.conv(4, 3, 1, 1, "c");
  EXPECT_THROW((void)c.pool(), std::logic_error);
  EXPECT_NO_THROW((void)c.conv());
}

TEST(LayerWindow, PerKind) {
  Network net;
  net.input({3, 32, 32});
  const Layer& c = net.conv(4, 5, 2, 1, "c");
  EXPECT_EQ(c.window(), 5);
  EXPECT_EQ(c.stride(), 2);
  EXPECT_EQ(c.padding(), 1);
  const Layer& p = net.max_pool(3, 2, "p");
  EXPECT_EQ(p.window(), 3);
  const Layer& l = net.lrn(5, 1e-4f, 0.75f, "l");
  EXPECT_EQ(l.window(), 1);
  EXPECT_EQ(l.stride(), 1);
}

TEST(Network, FirstLayerMustBeInput) {
  Network net;
  EXPECT_THROW(net.conv(4, 3, 1, 1, "c"), std::invalid_argument);
}

TEST(Network, InputOnlyFirst) {
  Network net;
  net.input({1, 4, 4});
  EXPECT_THROW(net.input({1, 4, 4}, "again"), std::invalid_argument);
}

TEST(Network, FindByName) {
  Network net = tiny_net();
  ASSERT_TRUE(net.find("c2").has_value());
  EXPECT_EQ(net[*net.find("c2")].name, "c2");
  EXPECT_FALSE(net.find("nope").has_value());
}

TEST(Network, SliceCarriesShapes) {
  Network vgg = vgg_e();
  Network head = vgg.slice(0, 7, "head");
  EXPECT_EQ(head.size(), 8u);
  EXPECT_EQ(head[0].kind, LayerKind::kInput);
  EXPECT_EQ(head[7].name, "conv3_1");
  EXPECT_EQ(head[7].out, (Shape{256, 56, 56}));
}

TEST(Network, SliceMidNetworkSynthesizesInput) {
  Network vgg = vgg_e();
  Network mid = vgg.slice(4, 6, "mid");  // conv2_1..pool2
  EXPECT_EQ(mid[0].kind, LayerKind::kInput);
  EXPECT_EQ(mid[0].out, vgg[4].in);
  EXPECT_EQ(mid.size(), 4u);
}

TEST(Network, AcceleratedPortionDropsFcAndFoldsRelu) {
  Network net("n");
  net.input({3, 16, 16});
  net.conv(8, 3, 1, 1, "c1", /*fused_relu=*/false);
  net.relu("r1");
  net.max_pool(2, 2, "p1");
  net.fc(10, "fc");
  net.softmax();
  Network accel = net.accelerated_portion();
  EXPECT_EQ(accel.size(), 3u);  // input, conv(+relu), pool
  EXPECT_TRUE(accel[1].conv().fused_relu);
  EXPECT_EQ(accel[2].kind, LayerKind::kPool);
}

TEST(Network, UnfusedTransferCountsEveryBoundary) {
  Network net = conv_chain(3, 4, 8);  // input + 3 convs, all 4x8x8
  // 3 layer inputs + final output = 4 maps of 4*8*8 elems at 2 B.
  EXPECT_EQ(net.unfused_feature_transfer_bytes(2), 4ll * 4 * 8 * 8 * 2);
}

TEST(Network, CoarsenReplacesModule) {
  Network net = conv_chain(4, 8, 32);
  Network c = net.coarsen(2, 4, "module");
  EXPECT_EQ(c.size(), net.size() - 2);
  ASSERT_TRUE(c.find("module").has_value());
  EXPECT_EQ(c[*c.find("module")].out, net[4].out);
}

TEST(Network, TotalOpsIsSumOfLayers) {
  Network net = tiny_net();
  std::int64_t sum = 0;
  for (const auto& l : net) sum += l.ops();
  EXPECT_EQ(net.total_ops(), sum);
}

TEST(Network, InferShapesIsIdempotent) {
  Network net = alexnet();
  const auto before = net[5].out;
  net.infer_shapes();
  EXPECT_EQ(net[5].out, before);
}

TEST(ModelZoo, AlexNetShapes) {
  Network net = alexnet();
  // Canonical AlexNet (Caffe single-tower) landmarks.
  EXPECT_EQ(net[*net.find("conv1")].out, (Shape{96, 55, 55}));
  EXPECT_EQ(net[*net.find("pool1")].out, (Shape{96, 27, 27}));
  EXPECT_EQ(net[*net.find("conv2")].out, (Shape{256, 27, 27}));
  EXPECT_EQ(net[*net.find("conv5")].out, (Shape{256, 13, 13}));
  EXPECT_EQ(net[*net.find("pool5")].out, (Shape{256, 6, 6}));
  EXPECT_EQ(net[*net.find("fc8")].out, (Shape{1000, 1, 1}));
}

TEST(ModelZoo, VggELayerCount) {
  Network net = vgg_e();
  int convs = 0, pools = 0, fcs = 0;
  for (const auto& l : net) {
    convs += l.kind == LayerKind::kConv;
    pools += l.kind == LayerKind::kPool;
    fcs += l.kind == LayerKind::kFullyConnected;
  }
  EXPECT_EQ(convs, 16);  // VGG-19
  EXPECT_EQ(pools, 5);
  EXPECT_EQ(fcs, 3);
}

TEST(ModelZoo, Vgg16LayerCount) {
  Network net = vgg16();
  int convs = 0;
  for (const auto& l : net) convs += l.kind == LayerKind::kConv;
  EXPECT_EQ(convs, 13);
}

TEST(ModelZoo, VggEHeadIsTheSevenFusedLayers) {
  Network head = vgg_e_head();
  // input + conv1_1 conv1_2 pool1 conv2_1 conv2_2 pool2 conv3_1
  ASSERT_EQ(head.size(), 8u);
  EXPECT_EQ(head[3].kind, LayerKind::kPool);
  EXPECT_EQ(head[6].kind, LayerKind::kPool);
  EXPECT_EQ(head[7].name, "conv3_1");
  int convs = 0;
  for (const auto& l : head) convs += l.kind == LayerKind::kConv;
  EXPECT_EQ(convs, 5);
}

TEST(ModelZoo, AlexNetAccelHasNoFc) {
  Network net = alexnet_accel();
  for (const auto& l : net) {
    EXPECT_NE(l.kind, LayerKind::kFullyConnected);
    EXPECT_NE(l.kind, LayerKind::kSoftmax);
  }
  // 5 conv + 3 pool + 2 lrn + input = 11 layers
  EXPECT_EQ(net.size(), 11u);
}

TEST(ModelZoo, VggETotalOpsMagnitude) {
  // VGG-19 is ~39 GFLOP (19.5 GMAC) for conv+fc; sanity-check the order.
  const double gop = static_cast<double>(vgg_e().total_ops()) / 1e9;
  EXPECT_GT(gop, 35.0);
  EXPECT_LT(gop, 45.0);
}

}  // namespace
}  // namespace hetacc::nn
