// Fixed-point code generation: generated designs carry a true int16
// datapath (Q-format weights, 64-bit accumulators, round+saturate
// writebacks). Validated by compiling and running the C simulation against
// the float reference with calibrated formats.

#include <cstdlib>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "codegen/generator.h"
#include "nn/model_zoo.h"
#include "nn/reference.h"
#include "quant/calibration.h"

namespace hetacc::codegen {
namespace {

using nn::Network;
using nn::Tensor;
using nn::WeightStore;

CodegenOptions fixed_options(const Network& net, const WeightStore& ws,
                             std::uint32_t seed) {
  std::vector<Tensor> samples;
  Tensor s(net[0].out);
  nn::fill_deterministic(s, seed);
  samples.push_back(std::move(s));
  const quant::Calibration cal = quant::calibrate(net, ws, samples, 1);
  CodegenOptions opt;
  opt.fixed_point = true;
  for (std::size_t i = 0; i + 1 < net.size(); ++i) {
    // Chain the formats so consecutive layers agree on the stream Q.
    const int in = i == 0 ? cal.layers[0].in_frac
                          : opt.layer_fracs.back().second;
    opt.layer_fracs.emplace_back(in, cal.layers[i].out_frac);
  }
  return opt;
}

TEST(CodegenFixed, HeaderDeclaresInt16AndHelpers) {
  Network net("fx");
  net.input({2, 8, 8});
  net.conv(3, 3, 1, 1, "c");
  const WeightStore ws = WeightStore::deterministic(net, 3);
  const fpga::EngineModel model(fpga::zc706());
  const auto d = generate_design(net, trivial_strategy(net, model), ws,
                                 fixed_options(net, ws, 4));
  EXPECT_NE(d.header.find("typedef std::int16_t data_t"), std::string::npos);
  EXPECT_NE(d.header.find("hetacc_requant_shift"), std::string::npos);
  EXPECT_NE(d.header.find("hetacc_saturate"), std::string::npos);
  EXPECT_NE(d.header.find("kInputFrac"), std::string::npos);
  // No float weights in the conventional template.
  EXPECT_EQ(d.source.find("weights[N][M][K][K] = {\n  {{{0."),
            std::string::npos);
}

TEST(CodegenFixed, MismatchedFracChainThrows) {
  Network net("fx2");
  net.input({2, 8, 8});
  net.conv(3, 3, 1, 1, "a");
  net.conv(3, 3, 1, 1, "b");
  const WeightStore ws = WeightStore::deterministic(net, 3);
  const fpga::EngineModel model(fpga::zc706());
  CodegenOptions opt;
  opt.fixed_point = true;
  opt.layer_fracs = {{12, 11}, {10, 10}};  // 11 != 10: broken chain
  EXPECT_THROW((void)generate_design(net, trivial_strategy(net, model), ws,
                                     opt),
               std::invalid_argument);
}

TEST(CodegenFixed, MissingFracsThrows) {
  Network net("fx3");
  net.input({2, 8, 8});
  net.conv(3, 3, 1, 1, "a");
  const WeightStore ws = WeightStore::deterministic(net, 3);
  const fpga::EngineModel model(fpga::zc706());
  CodegenOptions opt;
  opt.fixed_point = true;
  EXPECT_THROW((void)generate_design(net, trivial_strategy(net, model), ws,
                                     opt),
               std::invalid_argument);
}

class FixedCsim : public ::testing::Test {
 protected:
  static bool compiler_available() {
    return std::system("c++ --version > /dev/null 2>&1") == 0;
  }

  void run_fixed_csim(const Network& net, core::Strategy strategy,
                      float tol, std::uint32_t seed = 7) {
    if (!compiler_available()) GTEST_SKIP() << "no host compiler";
    const WeightStore ws = WeightStore::deterministic(net, seed);
    const CodegenOptions opt = fixed_options(net, ws, seed + 1);
    const GeneratedDesign d = generate_design(net, strategy, ws, opt);
    const std::string dir =
        ::testing::TempDir() + "/fxsim_" +
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    write_design(d, dir);
    const std::string build = "c++ -std=c++17 -O1 -w -o " + dir + "/tb " +
                              dir + "/design.cpp " + dir + "/main.cpp -I " +
                              dir + " > /dev/null 2>&1";
    ASSERT_EQ(std::system(build.c_str()), 0)
        << "generated fixed-point code failed to compile";

    Tensor in(net[0].out);
    nn::fill_deterministic(in, seed + 2);
    {
      std::ofstream f(dir + "/input.txt");
      f << tensor_to_stream_text(in);
    }
    ASSERT_EQ(std::system(("cd " + dir +
                           " && ./tb input.txt output.txt > /dev/null 2>&1")
                              .c_str()),
              0);
    std::ifstream f(dir + "/output.txt");
    std::stringstream ss;
    ss << f.rdbuf();
    const Tensor got =
        tensor_from_stream_text(ss.str(), net[net.size() - 1].out);
    const Tensor ref = nn::run_network(net, ws, in);
    EXPECT_LT(got.max_abs_diff(ref), tol);
  }
};

TEST_F(FixedCsim, ConventionalConvChain) {
  Network net("fxc");
  net.input({3, 12, 12});
  net.conv(4, 3, 1, 1, "c1");
  net.conv(4, 3, 1, 1, "c2");
  const fpga::EngineModel model(fpga::zc706());
  run_fixed_csim(net, trivial_strategy(net, model), 0.02f);
}

TEST_F(FixedCsim, ConvPoolMix) {
  Network net("fxp");
  net.input({3, 14, 14});
  net.conv(4, 3, 1, 1, "c1");
  net.max_pool(2, 2, "p1");
  net.conv(6, 3, 1, 1, "c2");
  const fpga::EngineModel model(fpga::zc706());
  run_fixed_csim(net, trivial_strategy(net, model), 0.02f);
}

TEST_F(FixedCsim, WinogradFixedDatapath) {
  Network net("fxw");
  net.input({2, 12, 12});
  net.conv(4, 3, 1, 1, "c1");
  const fpga::EngineModel model(fpga::zc706());
  core::Strategy s = trivial_strategy(net, model);
  s.groups[0].impls[0] =
      model.implement(net[1], {fpga::ConvAlgo::kWinograd, 1, 1, 1, 4});
  run_fixed_csim(net, s, 0.03f);
}

TEST_F(FixedCsim, LrnThroughFixedStreams) {
  Network net("fxl");
  net.input({6, 8, 8});
  net.conv(6, 3, 1, 1, "c1");
  net.lrn(5, 1e-4f, 0.75f, "n1");
  const fpga::EngineModel model(fpga::zc706());
  run_fixed_csim(net, trivial_strategy(net, model), 0.02f);
}

TEST_F(FixedCsim, AvgPoolRounding) {
  Network net("fxa");
  net.input({2, 8, 8});
  net.avg_pool(2, 2, "a1");
  const fpga::EngineModel model(fpga::zc706());
  run_fixed_csim(net, trivial_strategy(net, model), 0.01f);
}

}  // namespace
}  // namespace hetacc::codegen
