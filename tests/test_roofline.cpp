#include "roofline/roofline.h"

#include <gtest/gtest.h>

#include "nn/model_zoo.h"

namespace hetacc::roofline {
namespace {

TEST(Roofline, AttainableClipsToBothRoofs) {
  // Low CTC: bandwidth-bound; high CTC: compute-bound.
  EXPECT_DOUBLE_EQ(attainable(1.0, 1e12, 4.5e9), 4.5e9);
  EXPECT_DOUBLE_EQ(attainable(1e6, 1e12, 4.5e9), 1e12);
}

TEST(Roofline, NegativeInputsThrow) {
  EXPECT_THROW((void)attainable(-1.0, 1.0, 1.0), std::invalid_argument);
}

TEST(Roofline, RoofsMatchDeviceMath) {
  const fpga::Device d = fpga::vc707();
  EXPECT_DOUBLE_EQ(conventional_roof_ops(d), 560e9);  // 2800 DSP * 2 * 100MHz
  EXPECT_DOUBLE_EQ(winograd_roof_ops(d, 4, 3), 4.0 * 560e9);
  EXPECT_DOUBLE_EQ(winograd_roof_ops(d, 2, 3), 2.25 * 560e9);
}

TEST(Roofline, VggConv2CtcInputOnly) {
  // Paper Fig. 1 example: VGG conv2 (conv1_2), 64->64 3x3 on 224x224.
  const nn::Network head = nn::vgg_e_head();
  const nn::Layer& conv = head[2];
  const double ctc = layer_ctc_input_only(conv, 2);
  // ops = 2*64*9*64*224*224, input bytes = 64*224*224*2 -> ctc = 576.
  EXPECT_NEAR(ctc, 576.0, 1e-9);
}

TEST(Roofline, MakePointFlagsBandwidthLimit) {
  const fpga::Device d = fpga::vc707();
  // Winograd at CTC 576: bw roof = 576 * 4.5e9 = 2.592e12 > wino roof ->
  // compute-bound at roof.
  const Point b = make_point("B", 576.0, winograd_roof_ops(d, 4, 3), d);
  EXPECT_FALSE(b.bandwidth_limited);
  // At a low CTC the same roof is clipped by bandwidth.
  const Point c = make_point("C", 100.0, winograd_roof_ops(d, 4, 3), d);
  EXPECT_TRUE(c.bandwidth_limited);
  EXPECT_DOUBLE_EQ(c.attainable_ops, 100.0 * 4.5e9);
}

TEST(Roofline, GroupCtcGrowsWithFusion) {
  // Fusing layers raises ops per transferred byte (paper §2.2 point C).
  const nn::Network head = nn::vgg_e_head();
  double ops12 = static_cast<double>(head[1].ops() + head[2].ops());
  const double unfused_transfer =
      static_cast<double>(head[1].in.bytes(2) + head[1].out.bytes(2) +
                          head[2].in.bytes(2) + head[2].out.bytes(2));
  const double fused_transfer =
      static_cast<double>(head[1].in.bytes(2) + head[2].out.bytes(2));
  EXPECT_GT(group_ctc(ops12, fused_transfer),
            group_ctc(ops12, unfused_transfer));
}

TEST(Roofline, GroupCtcInvalidTransferThrows) {
  EXPECT_THROW((void)group_ctc(1.0, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace hetacc::roofline
