#include <gtest/gtest.h>

#include "algo/conv_variants.h"
#include "algo/winograd_conv.h"
#include "algo/winograd_transform.h"
#include "nn/reference.h"

namespace hetacc::algo {
namespace {

using nn::FilterBank;
using nn::Shape;
using nn::Tensor;

// ---------------------------------------------------------------- Matrix --
TEST(Matrix, MultiplyKnown) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{0, 1}, {1, 0}};
  Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c.at(0, 0), 2);
  EXPECT_DOUBLE_EQ(c.at(0, 1), 1);
  EXPECT_DOUBLE_EQ(c.at(1, 0), 4);
  EXPECT_DOUBLE_EQ(c.at(1, 1), 3);
}

TEST(Matrix, TransposeIdentityAndApply) {
  Matrix a{{1, 2, 3}, {4, 5, 6}};
  Matrix t = a.transposed();
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 2);
  EXPECT_DOUBLE_EQ(t.at(2, 1), 6);
  const auto v = a.apply({1, 0, 1});
  EXPECT_DOUBLE_EQ(v[0], 4);
  EXPECT_DOUBLE_EQ(v[1], 10);
}

TEST(Matrix, DimMismatchThrows) {
  Matrix a(2, 3), b(2, 3);
  EXPECT_THROW((void)(a * b), std::invalid_argument);
  EXPECT_THROW((void)a.apply({1.0, 2.0}), std::invalid_argument);
}

TEST(Matrix, IdentityProduct) {
  Matrix a{{2, -1}, {0.5, 3}};
  EXPECT_DOUBLE_EQ((a * Matrix::identity(2)).max_abs_diff(a), 0.0);
}

// ------------------------------------------------------------ transforms --
TEST(WinogradTransform, F23MultCounts) {
  const WinogradTransform t = winograd_f2x3();
  EXPECT_EQ(t.n(), 4);  // paper §2.1: "only 4 multiplications are required"
  EXPECT_EQ(t.tile_mults_2d(), 16);
  EXPECT_EQ(t.direct_tile_mults_2d(), 36);
  EXPECT_DOUBLE_EQ(t.reduction_2d(), 2.25);
}

TEST(WinogradTransform, F43ReductionIsFour) {
  const WinogradTransform t = winograd_f4x3();
  EXPECT_EQ(t.n(), 6);
  // Paper §7.1: F(4x4,3x3) uses one quarter of the multiplications.
  EXPECT_DOUBLE_EQ(t.reduction_2d(), 4.0);
}

TEST(WinogradTransform, CannedF23MatchesDirect1D) {
  const WinogradTransform t = winograd_f2x3();
  EXPECT_LT(verify_1d(t, {0.3, -0.7, 1.1}, {1.0, -2.0, 0.5, 3.0}), 1e-12);
}

TEST(WinogradTransform, CannedF43MatchesDirect1D) {
  const WinogradTransform t = winograd_f4x3();
  EXPECT_LT(verify_1d(t, {0.3, -0.7, 1.1}, {1, -2, 0.5, 3, 0.25, -1}), 1e-9);
}

struct CookToomCase {
  int m;
  int r;
};

class CookToomSweep : public ::testing::TestWithParam<CookToomCase> {};

TEST_P(CookToomSweep, MatchesDirectFirOnRandomData) {
  const auto [m, r] = GetParam();
  const WinogradTransform t = winograd(m, r);
  EXPECT_EQ(t.m, m);
  EXPECT_EQ(t.r, r);
  EXPECT_EQ(t.bt.rows(), t.n());
  EXPECT_EQ(t.g.rows(), t.n());
  EXPECT_EQ(t.at.rows(), m);

  std::uint32_t seed = 1234 + m * 17 + r;
  auto rnd = [&]() {
    seed ^= seed << 13;
    seed ^= seed >> 17;
    seed ^= seed << 5;
    return static_cast<double>(static_cast<int>(seed % 2000) - 1000) / 500.0;
  };
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<double> g(r), d(t.n());
    for (auto& x : g) x = rnd();
    for (auto& x : d) x = rnd();
    EXPECT_LT(verify_1d(t, g, d), 1e-6) << "m=" << m << " r=" << r;
  }
}

INSTANTIATE_TEST_SUITE_P(AllSupportedTiles, CookToomSweep,
                         ::testing::Values(CookToomCase{2, 3}, CookToomCase{4, 3},
                                           CookToomCase{6, 3}, CookToomCase{2, 5},
                                           CookToomCase{4, 5}, CookToomCase{3, 3},
                                           CookToomCase{2, 7}, CookToomCase{5, 3},
                                           CookToomCase{2, 2}, CookToomCase{4, 4},
                                           CookToomCase{1, 3}, CookToomCase{6, 5}),
                         [](const auto& info) {
                           return "F" + std::to_string(info.param.m) + "_" +
                                  std::to_string(info.param.r);
                         });

TEST(CookToom, RejectsWrongPointCount) {
  EXPECT_THROW((void)cook_toom(4, 3, {0, 1, -1}), std::invalid_argument);
  EXPECT_THROW((void)cook_toom(4, 3, {0, 1, -1, 2, -2, 3}),
               std::invalid_argument);
}

TEST(CookToom, RejectsDuplicatePoints) {
  EXPECT_THROW((void)cook_toom(2, 3, {0, 1, 1}), std::invalid_argument);
}

TEST(CookToom, GeneratedF43AgreesWithCannedAlgorithm) {
  // Same algorithm family (not the same matrices): both must compute the
  // same convolution.
  const WinogradTransform canned = winograd_f4x3();
  const WinogradTransform gen = cook_toom(4, 3, {0, 1, -1, 2, -2});
  const std::vector<double> g{0.5, -1.5, 0.25};
  const std::vector<double> d{1, 2, -3, 0.5, 4, -0.25};
  EXPECT_LT(verify_1d(canned, g, d), 1e-9);
  EXPECT_LT(verify_1d(gen, g, d), 1e-9);
}

TEST(DefaultPoints, DistinctAndZeroFirst) {
  const auto pts = default_points(12);
  EXPECT_EQ(pts[0], 0.0);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    for (std::size_t j = i + 1; j < pts.size(); ++j) {
      EXPECT_NE(pts[i], pts[j]);
    }
  }
}

// -------------------------------------------------------------- 2-D conv --
struct ConvCase {
  int m;       // tile
  int k;       // kernel
  int in_c;
  int out_c;
  int h, w;
  int pad;
};

class WinogradConvSweep : public ::testing::TestWithParam<ConvCase> {};

TEST_P(WinogradConvSweep, MatchesDirectConvolution) {
  const auto p = GetParam();
  Tensor in(p.in_c, p.h, p.w);
  nn::fill_deterministic(in, 77);
  FilterBank f(p.out_c, p.in_c, p.k);
  nn::fill_deterministic(f, 78);
  std::vector<float> bias(static_cast<std::size_t>(p.out_c));
  nn::fill_deterministic(bias, 79);

  const Tensor direct = nn::conv_reference(in, f, bias, 1, p.pad, true);
  const WinogradTransform t = winograd(p.m, p.k);
  const Tensor wino = winograd_conv(t, in, f, bias, p.pad, true);
  ASSERT_EQ(wino.shape(), direct.shape());
  EXPECT_LT(wino.max_abs_diff(direct), 2e-4f)
      << "F(" << p.m << "," << p.k << ") " << p.in_c << "->" << p.out_c;
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, WinogradConvSweep,
    ::testing::Values(ConvCase{4, 3, 1, 1, 8, 8, 1},   // single channel
                      ConvCase{4, 3, 3, 8, 16, 16, 1}, // VGG-style same pad
                      ConvCase{4, 3, 4, 4, 10, 14, 0}, // no pad, non-square
                      ConvCase{4, 3, 2, 2, 9, 9, 1},   // ragged tiles
                      ConvCase{2, 3, 3, 5, 12, 12, 1},
                      ConvCase{6, 3, 2, 3, 16, 16, 1},
                      ConvCase{2, 5, 3, 4, 14, 14, 2}, // AlexNet conv2 shape
                      ConvCase{4, 5, 2, 2, 16, 16, 2},
                      ConvCase{4, 3, 8, 8, 7, 7, 1}),  // tiles bigger than map
    [](const auto& info) {
      const auto& p = info.param;
      return "F" + std::to_string(p.m) + "x" + std::to_string(p.k) + "_c" +
             std::to_string(p.in_c) + "x" + std::to_string(p.out_c) + "_" +
             std::to_string(p.h) + "x" + std::to_string(p.w) + "_p" +
             std::to_string(p.pad);
    });

TEST(WinogradConv, PretransformedFiltersMatchOnTheFly) {
  Tensor in(3, 12, 12);
  nn::fill_deterministic(in, 5);
  FilterBank f(4, 3, 3);
  nn::fill_deterministic(f, 6);
  const WinogradTransform t = winograd_f4x3();
  const TransformedFilters tf = transform_filters(t, f);
  EXPECT_EQ(tf.u.size(), 12u);
  const Tensor a = winograd_conv(t, in, f, {}, 1, false);
  const Tensor b = winograd_conv_pretransformed(tf, in, {}, 1, false);
  EXPECT_EQ(a.max_abs_diff(b), 0.0f);
}

TEST(WinogradConv, KernelMismatchThrows) {
  FilterBank f(1, 1, 5);
  EXPECT_THROW((void)transform_filters(winograd_f4x3(), f),
               std::invalid_argument);
}

TEST(WinogradConv, FixedPointTracksFloat) {
  Tensor in(3, 16, 16);
  nn::fill_deterministic(in, 21);
  FilterBank f(4, 3, 3);
  nn::fill_deterministic(f, 22);
  const WinogradTransform t = winograd_f4x3();
  const Tensor ref = nn::conv_reference(in, f, {}, 1, 1, false);
  const Tensor fx = winograd_conv_fixed(t, in, f, {}, 1, false, 12, 10);
  ASSERT_EQ(fx.shape(), ref.shape());
  // 16-bit Winograd keeps the error within a few output ULPs.
  EXPECT_LT(fx.max_abs_diff(ref), 0.05f);
}

TEST(WinogradConv, ApplicabilityRule) {
  EXPECT_TRUE(winograd_applicable(3, 1));
  EXPECT_TRUE(winograd_applicable(5, 1));
  EXPECT_FALSE(winograd_applicable(3, 2));   // stride (paper §2.1)
  EXPECT_FALSE(winograd_applicable(11, 1));  // kernel too large
  EXPECT_FALSE(winograd_applicable(1, 1));   // 1x1: nothing to reuse
}

TEST(WinogradConv, LayerMultCountReduction) {
  const WinogradTransform t = winograd_f4x3();
  // 64ch -> 64ch, 224x224: tiles = 56*56, each 36 mults per channel pair.
  const long long wino = winograd_layer_mults(t, 64, 64, 224, 224);
  EXPECT_EQ(wino, 56ll * 56 * 36 * 64 * 64);
  const long long direct = 64ll * 64 * 9 * 224 * 224;
  EXPECT_DOUBLE_EQ(static_cast<double>(direct) / static_cast<double>(wino),
                   4.0);
}

// --------------------------------------------------------------- im2col --
TEST(Im2col, PatchMatrixKnownValues) {
  Tensor in(1, 3, 3);
  for (int h = 0; h < 3; ++h) {
    for (int w = 0; w < 3; ++w) in.at(0, h, w) = static_cast<float>(h * 3 + w);
  }
  const auto mat = im2col(in, 2, 1, 0, 2, 2);
  // row 0 = tap (0,0,0): values at output positions
  EXPECT_FLOAT_EQ(mat[0], 0.0f);
  EXPECT_FLOAT_EQ(mat[1], 1.0f);
  EXPECT_FLOAT_EQ(mat[2], 3.0f);
  EXPECT_FLOAT_EQ(mat[3], 4.0f);
  // last row = tap (0,1,1)
  EXPECT_FLOAT_EQ(mat[3 * 4 + 0], 4.0f);
  EXPECT_FLOAT_EQ(mat[3 * 4 + 3], 8.0f);
}

class Im2colSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(Im2colSweep, GemmConvMatchesDirect) {
  const auto [k, stride, pad, channels] = GetParam();
  Tensor in(channels, 13, 11);
  nn::fill_deterministic(in, 31);
  FilterBank f(5, channels, k);
  nn::fill_deterministic(f, 32);
  std::vector<float> bias(5);
  nn::fill_deterministic(bias, 33);
  const Tensor a = nn::conv_reference(in, f, bias, stride, pad, false);
  const Tensor b = conv_im2col(in, f, bias, stride, pad, false);
  ASSERT_EQ(a.shape(), b.shape());
  EXPECT_LT(a.max_abs_diff(b), 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, Im2colSweep,
    ::testing::Combine(::testing::Values(1, 3, 5), ::testing::Values(1, 2),
                       ::testing::Values(0, 1, 2), ::testing::Values(1, 3)));

TEST(ConvDirectFixed, TracksFloatWithinQuantNoise) {
  Tensor in(3, 12, 12);
  nn::fill_deterministic(in, 41);
  FilterBank f(6, 3, 3);
  nn::fill_deterministic(f, 42);
  const Tensor ref = nn::conv_reference(in, f, {}, 1, 1, true);
  const Tensor fx = algo::conv_direct_fixed(in, f, {}, 1, 1, true, 12, 13, 10);
  EXPECT_LT(fx.max_abs_diff(ref), 0.02f);
}

TEST(ConvDirectFixed, StrideAndLargeKernel) {
  Tensor in(3, 23, 23);
  nn::fill_deterministic(in, 51);
  FilterBank f(4, 3, 11);
  nn::fill_deterministic(f, 52);
  const Tensor ref = nn::conv_reference(in, f, {}, 4, 0, false);
  const Tensor fx =
      algo::conv_direct_fixed(in, f, {}, 4, 0, false, 11, 12, 9);
  ASSERT_EQ(ref.shape(), fx.shape());
  EXPECT_LT(fx.max_abs_diff(ref), 0.05f);
}

}  // namespace
}  // namespace hetacc::algo
