#include <fstream>

#include <gtest/gtest.h>

#include "caffe/importer.h"
#include "caffe/prototxt.h"
#include "nn/model_zoo.h"

namespace hetacc::caffe {
namespace {

TEST(Prototxt, ScalarsStringsEnumsBools) {
  const Message m = parse_prototxt(R"(
    name: "net"
    count: 42
    ratio: -1.5e-2
    flag: true
    other: false
    method: MAX
  )");
  EXPECT_EQ(m.str("name"), "net");
  EXPECT_EQ(m.integer("count", 0), 42);
  EXPECT_NEAR(m.number("ratio", 0), -0.015, 1e-12);
  EXPECT_EQ(m.str("method"), "MAX");
  EXPECT_TRUE(std::get<bool>(m.all("flag").front()));
  EXPECT_FALSE(std::get<bool>(m.all("other").front()));
}

TEST(Prototxt, NestedAndRepeatedMessages) {
  const Message m = parse_prototxt(R"(
    layer { name: "a" }
    layer { name: "b" inner { x: 1 } }
  )");
  const auto layers = m.children("layer");
  ASSERT_EQ(layers.size(), 2u);
  EXPECT_EQ(layers[0]->str("name"), "a");
  ASSERT_NE(layers[1]->child("inner"), nullptr);
  EXPECT_EQ(layers[1]->child("inner")->integer("x", 0), 1);
}

TEST(Prototxt, ColonBraceFormAndComments) {
  const Message m = parse_prototxt(R"(
    # leading comment
    param: { value: 3 }  # trailing comment
  )");
  ASSERT_NE(m.child("param"), nullptr);
  EXPECT_EQ(m.child("param")->integer("value", 0), 3);
}

TEST(Prototxt, RepeatedScalars) {
  const Message m = parse_prototxt("dim: 1 dim: 3 dim: 227 dim: 227");
  EXPECT_EQ(m.count("dim"), 4u);
  EXPECT_EQ(std::get<double>(m.all("dim")[2]), 227);
}

TEST(Prototxt, ErrorsCarryLineNumbers) {
  try {
    (void)parse_prototxt("a: 1\nb {\n  c: }\n");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
}

TEST(Prototxt, UnterminatedBlockThrows) {
  EXPECT_THROW((void)parse_prototxt("layer { name: \"x\""),
               std::runtime_error);
  EXPECT_THROW((void)parse_prototxt("}"), std::runtime_error);
  EXPECT_THROW((void)parse_prototxt("s: \"abc"), std::runtime_error);
}

TEST(Prototxt, MissingFieldAccessors) {
  const Message m = parse_prototxt("x: 1");
  EXPECT_EQ(m.number("y", 7.0), 7.0);
  EXPECT_EQ(m.str("y", "dflt"), "dflt");
  EXPECT_EQ(m.child("y"), nullptr);
  EXPECT_THROW((void)m.all("y"), std::runtime_error);
  EXPECT_THROW((void)m.str("x"), std::runtime_error);  // wrong type
}

// ---------------------------------------------------------------- import --
constexpr const char* kTinyDeploy = R"(
name: "tiny"
input: "data"
input_dim: 1
input_dim: 3
input_dim: 32
input_dim: 32
layer {
  name: "conv1"
  type: "Convolution"
  bottom: "data"
  top: "conv1"
  convolution_param { num_output: 8 kernel_size: 3 stride: 1 pad: 1 }
}
layer { name: "relu1" type: "ReLU" bottom: "conv1" top: "conv1" }
layer {
  name: "pool1"
  type: "Pooling"
  bottom: "conv1"
  top: "pool1"
  pooling_param { pool: MAX kernel_size: 2 stride: 2 }
}
layer {
  name: "norm1"
  type: "LRN"
  lrn_param { local_size: 5 alpha: 0.0001 beta: 0.75 }
}
layer {
  name: "fc"
  type: "InnerProduct"
  inner_product_param { num_output: 10 }
}
layer { name: "prob" type: "Softmax" }
)";

TEST(Import, TinyDeployEndToEnd) {
  const nn::Network net = import_prototxt(kTinyDeploy);
  EXPECT_EQ(net.name(), "tiny");
  ASSERT_EQ(net.size(), 6u);  // input conv pool lrn fc softmax
  EXPECT_EQ(net[0].out, (nn::Shape{3, 32, 32}));
  EXPECT_EQ(net[1].kind, nn::LayerKind::kConv);
  EXPECT_TRUE(net[1].conv().fused_relu);  // in-place ReLU folded
  EXPECT_EQ(net[2].out, (nn::Shape{8, 16, 16}));
  EXPECT_EQ(net[3].kind, nn::LayerKind::kLrn);
  EXPECT_EQ(net[4].out, (nn::Shape{10, 1, 1}));
}

TEST(Import, ModernInputLayerForm) {
  const nn::Network net = import_prototxt(R"(
    layer {
      name: "data" type: "Input"
      input_param { shape { dim: 1 dim: 4 dim: 8 dim: 8 } }
    }
    layer {
      name: "c" type: "Convolution"
      convolution_param { num_output: 2 kernel_size: 3 pad: 1 }
    }
  )");
  EXPECT_EQ(net[0].out, (nn::Shape{4, 8, 8}));
  EXPECT_EQ(net[1].out, (nn::Shape{2, 8, 8}));
}

TEST(Import, AveragePoolAndPads) {
  const nn::Network net = import_prototxt(R"(
    input: "data" input_dim: 1 input_dim: 2 input_dim: 9 input_dim: 9
    layer { name: "p" type: "Pooling"
            pooling_param { pool: AVE kernel_size: 3 stride: 2 pad: 1 } }
  )");
  EXPECT_EQ(net[1].pool().method, nn::PoolMethod::kAverage);
  EXPECT_EQ(net[1].pool().pad, 1);
}

TEST(Import, MissingInputShapeThrows) {
  EXPECT_THROW((void)import_prototxt("name: \"x\""), std::runtime_error);
}

TEST(Import, UnsupportedTypeNamesLayer) {
  try {
    (void)import_prototxt(R"(
      input: "d" input_dim: 1 input_dim: 1 input_dim: 4 input_dim: 4
      layer { name: "odd" type: "Deconvolution" }
    )");
    FAIL();
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("Deconvolution"), std::string::npos);
  }
}

TEST(Import, ConvWithoutParamThrows) {
  EXPECT_THROW((void)import_prototxt(R"(
    input: "d" input_dim: 1 input_dim: 1 input_dim: 4 input_dim: 4
    layer { name: "c" type: "Convolution" }
  )"), std::runtime_error);
}

TEST(Import, DropoutIsIgnored) {
  const nn::Network net = import_prototxt(R"(
    input: "d" input_dim: 1 input_dim: 1 input_dim: 4 input_dim: 4
    layer { name: "drop" type: "Dropout" }
    layer { name: "fc" type: "InnerProduct"
            inner_product_param { num_output: 2 } }
  )");
  EXPECT_EQ(net.size(), 2u);
}

// ------------------------------------------------------------- round-trip --
TEST(RoundTrip, AlexNetPrototxtMatchesZoo) {
  const nn::Network built = nn::alexnet();
  const nn::Network imported = import_prototxt(alexnet_prototxt());
  ASSERT_EQ(imported.size(), built.size());
  for (std::size_t i = 0; i < built.size(); ++i) {
    EXPECT_EQ(imported[i].kind, built[i].kind) << i;
    EXPECT_EQ(imported[i].out, built[i].out) << i;
    EXPECT_EQ(imported[i].name, built[i].name) << i;
  }
}

TEST(RoundTrip, VggEPrototxtMatchesZoo) {
  const nn::Network built = nn::vgg_e();
  const nn::Network imported = import_prototxt(vgg_e_prototxt());
  ASSERT_EQ(imported.size(), built.size());
  for (std::size_t i = 0; i < built.size(); ++i) {
    EXPECT_EQ(imported[i].out, built[i].out) << i;
  }
}

TEST(RoundTrip, ReluFoldingPreserved) {
  nn::Network net("n");
  net.input({3, 8, 8});
  net.conv(4, 3, 1, 1, "c1", /*fused_relu=*/true);
  const nn::Network again = import_prototxt(export_prototxt(net));
  EXPECT_TRUE(again[1].conv().fused_relu);
}

TEST(RoundTrip, FileIo) {
  const std::string path = ::testing::TempDir() + "/hetacc_net.prototxt";
  {
    std::ofstream f(path);
    f << alexnet_prototxt();
  }
  const nn::Network net = import_prototxt_file(path);
  EXPECT_EQ(net.size(), nn::alexnet().size());
  EXPECT_THROW((void)import_prototxt_file(path + ".missing"),
               std::runtime_error);
}

}  // namespace
}  // namespace hetacc::caffe
