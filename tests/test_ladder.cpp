// Degradation-ladder tests: the RegimeController's hysteresis state machine
// in isolation, the Server walking a multi-rung ladder under oscillating
// load (descend fast, recover slowly, never flap), the PR 5 binary pair as
// the exact two-rung special case, thread-count invariance of the rung
// timeline, the toolflow ladder builder's monotonicity/home invariants on
// AlexNet, and the multi-strategy ladder CSV round trip with typed,
// line-numbered parse errors.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/strategy_io.h"
#include "nn/model_zoo.h"
#include "serve/regime.h"
#include "serve/server.h"
#include "serve/trace.h"
#include "support/error.h"
#include "toolflow/ladder.h"

namespace hetacc::serve {
namespace {

// ---------------------------------------------------------------------------
// RegimeController unit tests: drive the virtual-time signals directly.

RegimeController make_controller(RegimeConfig cfg = {}) {
  // Three rungs, home in the middle: {conservative 2000, home 1000, deep
  // 500}, admission queue of 16 → descend watermark 12, ascend watermark 4.
  return RegimeController({2000, 1000, 500}, /*home=*/1,
                          /*queue_capacity=*/16, cfg);
}

TEST(RegimeController, DescendsFastUnderQueuePressure) {
  RegimeController rc = make_controller();
  EXPECT_EQ(rc.rung(), 1);
  EXPECT_EQ(rc.home(), 1);
  EXPECT_EQ(rc.conservative_rung(), 0);

  rc.observe_queue(1000, 14);  // above the descend watermark, dwell elapsed
  EXPECT_EQ(rc.rung(), 2);
  ASSERT_EQ(rc.log().size(), 1u);
  EXPECT_EQ(rc.log()[0].from, 1);
  EXPECT_EQ(rc.log()[0].to, 2);
  EXPECT_EQ(rc.log()[0].reason, RungMove::kLoadDescend);
  EXPECT_EQ(to_string(rc.log()[0].reason), "load");

  // Already at the deepest rung: more pressure moves nothing.
  rc.observe_queue(2000, 16);
  EXPECT_EQ(rc.rung(), 2);
  EXPECT_EQ(rc.log().size(), 1u);
}

TEST(RegimeController, AscentNeedsBothCalmStreakAndDwell) {
  RegimeConfig cfg;  // streak 8, ascend dwell 16384
  RegimeController rc = make_controller(cfg);
  rc.observe_queue(1000, 14);
  ASSERT_EQ(rc.rung(), 2);

  // Eight calm observations well inside the dwell window: the streak is
  // satisfied but the dwell gate holds the rung.
  for (int i = 0; i < 8; ++i) rc.observe_queue(1100 + i * 100, 0);
  EXPECT_EQ(rc.rung(), 2);

  // One more calm observation after the dwell elapses: ascend exactly one
  // rung, back to home.
  rc.observe_queue(1000 + 16384, 0);
  EXPECT_EQ(rc.rung(), 1);
  ASSERT_EQ(rc.log().size(), 2u);
  EXPECT_EQ(rc.log()[1].reason, RungMove::kLoadAscend);
  EXPECT_EQ(to_string(rc.log()[1].reason), "load-recover");
}

TEST(RegimeController, PressureResetsTheCalmStreak) {
  RegimeController rc = make_controller();
  rc.observe_queue(1000, 14);
  ASSERT_EQ(rc.rung(), 2);

  // Oscillate pressure/calm far past the ascend dwell: the streak never
  // reaches its threshold, so the controller parks at the deep rung
  // instead of flapping.
  long long t = 2000;
  for (int i = 0; i < 200; ++i) {
    rc.observe_queue(t, i % 2 == 0 ? 0 : 14);
    t += 1000;
  }
  EXPECT_EQ(rc.rung(), 2);
  EXPECT_EQ(rc.log().size(), 1u);  // the single initial descent
}

TEST(RegimeController, DeadlineMissWindowAlsoDescends) {
  RegimeController rc = make_controller();
  // Queue stays empty; eight misses inside the 16-completion window are
  // pressure on their own.
  long long t = 1000;
  for (int i = 0; i < 8; ++i) rc.observe_completion(t += 100, true);
  EXPECT_EQ(rc.rung(), 2);
  ASSERT_EQ(rc.log().size(), 1u);
  EXPECT_EQ(rc.log()[0].reason, RungMove::kLoadDescend);
}

TEST(RegimeController, BreakerAxisUsesConservativeRungOnlyAtHome) {
  RegimeController rc = make_controller();
  rc.on_breaker(500, true);
  EXPECT_EQ(rc.rung(), 0);  // off home, onto the protect rung above it
  rc.on_breaker(900, false);
  EXPECT_EQ(rc.rung(), 1);
  ASSERT_EQ(rc.log().size(), 2u);
  EXPECT_EQ(rc.log()[0].reason, RungMove::kBreakerDegrade);
  EXPECT_EQ(rc.log()[1].reason, RungMove::kBreakerRestore);

  // While load-descended the deep rung is already off the primary: a
  // breaker trip moves nothing.
  rc.observe_queue(2000, 14);
  ASSERT_EQ(rc.rung(), 2);
  rc.on_breaker(2500, true);
  EXPECT_EQ(rc.rung(), 2);
  EXPECT_EQ(rc.log().size(), 3u);  // just the load descent appended
}

TEST(RegimeController, TimeInRungAccountingCoversTheWholeRun) {
  RegimeController rc = make_controller();
  rc.observe_queue(1000, 14);  // home → deep at cycle 1000
  rc.finish(5000);
  const std::vector<long long>& cyc = rc.cycles_in_rung();
  ASSERT_EQ(cyc.size(), 3u);
  EXPECT_EQ(cyc[0], 0);
  EXPECT_EQ(cyc[1], 1000);
  EXPECT_EQ(cyc[2], 4000);
}

// ---------------------------------------------------------------------------
// Server-level ladder behavior. Mirrors test_serve.cpp's ServerTest shape:
// a tiny functional net with hand-priced serving modes.

class LadderServerTest : public ::testing::Test {
 protected:
  nn::Network net_ = nn::tiny_net(4, 16);
  nn::WeightStore ws_ = nn::WeightStore::deterministic(net_, 21);

  static ServingMode mode(long long cycles, std::string label = {}) {
    ServingMode m;
    m.service_cycles = cycles;  // empty choices = all-conventional float
    m.label = std::move(label);
    return m;
  }

  /// {protected 1600, primary 1000, int8 640}, home = 1.
  static ServingLadder ladder3() {
    ServingLadder l;
    l.rungs = {mode(1600, "protected"), mode(1000, "primary"),
               mode(640, "int8")};
    l.home = 1;
    return l;
  }

  /// Breaker effectively disabled so only the load axis moves rungs —
  /// the fault axis has its own tests in test_serve.cpp.
  static ServerConfig load_config() {
    ServerConfig cfg;
    cfg.queue_capacity = 32;
    cfg.replicas = 2;
    cfg.deadline_cycles = 4000;
    cfg.max_retries = 1;
    cfg.backoff_base_cycles = 125;
    cfg.backoff_cap_cycles = 2000;
    cfg.breaker.failure_threshold = 1 << 20;
    cfg.breaker.deadline_miss_threshold = 1 << 20;
    cfg.breaker.cooldown_cycles = 2000;
    cfg.breaker.probe_successes = 2;
    return cfg;
  }

  /// Square-wave load against home service time 1000 on 2 replicas
  /// (capacity: one request per 500 cycles): bursts arrive 2x too fast,
  /// lulls 4x slower than capacity.
  static ArrivalTrace osc_trace(std::size_t periods = 6,
                                std::size_t per_phase = 40) {
    return ArrivalTrace::oscillating(periods, per_phase,
                                     /*burst=*/250, /*lull=*/2000,
                                     /*seed=*/11);
  }

  static void expect_same_rung_log(const std::vector<RungTransition>& a,
                                   const std::vector<RungTransition>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].cycle, b[i].cycle) << "transition " << i;
      EXPECT_EQ(a[i].from, b[i].from) << "transition " << i;
      EXPECT_EQ(a[i].to, b[i].to) << "transition " << i;
      EXPECT_EQ(a[i].reason, b[i].reason) << "transition " << i;
    }
  }
};

TEST_F(LadderServerTest, RejectsMalformedLadders) {
  const ServerConfig cfg = load_config();
  ServingLadder empty;
  EXPECT_THROW(Server(net_, ws_, empty, cfg), ServeError);

  ServingLadder bad_home = ladder3();
  bad_home.home = 3;
  EXPECT_THROW(Server(net_, ws_, bad_home, cfg), ServeError);

  // Deeper-than-home rungs must be strictly faster...
  ServingLadder flat = ladder3();
  flat.rungs[2].service_cycles = flat.rungs[1].service_cycles;
  EXPECT_THROW(Server(net_, ws_, flat, cfg), ServeError);

  // ...but above home, equal pricing is legal (the PR 5 pair may price
  // both modes identically).
  ServingLadder eq_above = ladder3();
  eq_above.rungs[0].service_cycles = eq_above.rungs[1].service_cycles;
  EXPECT_NO_THROW(Server(net_, ws_, eq_above, cfg));
}

TEST_F(LadderServerTest, TwoRungLadderIsByteIdenticalToTheLegacyPair) {
  // The PR 5 ctor is defined as the [fallback, primary] home=1 ladder; the
  // stats (response hash included) and the rung log must agree exactly.
  ServerConfig cfg = load_config();
  cfg.breaker.failure_threshold = 2;  // the real PR 5 breaker, faults on
  cfg.breaker.deadline_miss_threshold = 4;
  ArrivalTrace t = ArrivalTrace::synthetic(60, 800, 7);
  const long long span = t.last_arrival();
  t.burst.from_cycle = span / 3;
  t.burst.until_cycle = 2 * span / 3;
  t.burst.plan.seed = 7;
  t.burst.plan.wedge_channel = 0;
  t.burst.plan.wedge_after_pushes = 2;

  Server legacy(net_, ws_, mode(1000), mode(1600), cfg);
  const ServerStats s_legacy = legacy.run(t);

  ServingLadder pair;
  pair.rungs = {mode(1600, "fallback"), mode(1000, "primary")};
  pair.home = 1;
  Server ladder(net_, ws_, pair, cfg);
  const ServerStats s_ladder = ladder.run(t);

  EXPECT_TRUE(s_legacy == s_ladder);
  expect_same_rung_log(legacy.rung_log(), ladder.rung_log());
  ASSERT_EQ(legacy.breaker_log().size(), ladder.breaker_log().size());
}

TEST_F(LadderServerTest, OscillatingLoadDescendsThenRecoversWithoutFlap) {
  Server s(net_, ws_, ladder3(), load_config());
  const ServerStats st = s.run(osc_trace());
  EXPECT_TRUE(st.accounted());

  // The load axis must both degrade under the bursts and climb back in the
  // lulls — and the dwell gates must keep the walk far below one move per
  // phase boundary.
  long long descents = 0, recoveries = 0;
  for (const RungTransition& tr : s.rung_log()) {
    descents += tr.reason == RungMove::kLoadDescend;
    recoveries += tr.reason == RungMove::kLoadAscend;
  }
  EXPECT_GE(descents, 1);
  EXPECT_GE(recoveries, 1);
  EXPECT_LE(s.rung_log().size(), 4u * 6u);  // no flapping across 6 periods

  ASSERT_EQ(st.rung_completions.size(), 3u);
  EXPECT_EQ(st.rung_completions[0] + st.rung_completions[1] +
                st.rung_completions[2],
            st.completed);
  EXPECT_GT(st.rung_completions[2], 0);  // the deep rung actually served
  EXPECT_EQ(st.completed_degraded,
            st.rung_completions[0] + st.rung_completions[2]);
  EXPECT_EQ(st.rung_transitions,
            static_cast<long long>(s.rung_log().size()));

  // Time-in-rung accounting is exhaustive and index-aligned.
  ASSERT_EQ(st.rung_cycles.size(), 3u);
  EXPECT_GT(st.rung_cycles[1], 0);
  EXPECT_GT(st.rung_cycles[2], 0);
}

TEST_F(LadderServerTest, RungTimelineIsInvariantAcrossThreadCounts) {
  ServerStats ref;
  std::vector<RungTransition> ref_log;
  for (const int threads : {1, 2, 8}) {
    ServerConfig cfg = load_config();
    cfg.threads = threads;
    Server s(net_, ws_, ladder3(), cfg);
    const ServerStats st = s.run(osc_trace());
    if (threads == 1) {
      ref = st;
      ref_log = s.rung_log();
      continue;
    }
    EXPECT_TRUE(st == ref) << "threads=" << threads
                           << " diverged from the single-thread stats";
    expect_same_rung_log(s.rung_log(), ref_log);
  }
}

TEST_F(LadderServerTest, LadderBeatsBinaryPairAndShedOnlyUnderOverload) {
  // The ISSUE acceptance: on a sustained-overload trace, a >=3-rung ladder
  // completes strictly more within-deadline requests than both the PR 5
  // binary pair and a shed-everything single-rung server.
  const ArrivalTrace t = osc_trace(/*periods=*/4, /*per_phase=*/80);
  const ServerConfig cfg = load_config();

  const auto within_deadline = [&](ServingLadder l) {
    Server s(net_, ws_, std::move(l), cfg);
    const ServerStats st = s.run(t);
    EXPECT_TRUE(st.accounted());
    return st.completed - st.deadline_misses;
  };

  ServingLadder pair;
  pair.rungs = {mode(1600, "fallback"), mode(1000, "primary")};
  pair.home = 1;
  ServingLadder shed_only;
  shed_only.rungs = {mode(1000, "primary")};
  shed_only.home = 0;

  const long long ladder = within_deadline(ladder3());
  const long long binary = within_deadline(std::move(pair));
  const long long shed = within_deadline(std::move(shed_only));
  EXPECT_GT(ladder, binary);
  EXPECT_GT(ladder, shed);
}

}  // namespace
}  // namespace hetacc::serve

namespace hetacc::toolflow {
namespace {

// ---------------------------------------------------------------------------
// Ladder builder + CSV round trip on AlexNet/ZC706 (the paper's platform).
// cached_serving_ladder amortizes the six DSE runs across these tests.

const ServingLadderPlan& alexnet_plan() {
  return cached_serving_ladder(nn::alexnet(), fpga::zc706());
}

TEST(LadderBuilder, EmitsMonotoneLadderWithPrimaryHome) {
  const ServingLadderPlan& plan = alexnet_plan();
  ASSERT_GE(plan.rungs.size(), 3u);
  ASSERT_LE(plan.rungs.size(), 4u);  // default max_rungs
  ASSERT_LT(plan.home, plan.rungs.size());
  EXPECT_EQ(plan.rungs[plan.home].label, "primary");

  for (std::size_t i = 1; i < plan.rungs.size(); ++i) {
    EXPECT_LT(plan.rungs[i].service_cycles,
              plan.rungs[i - 1].service_cycles)
        << "ladder must be strictly monotone at rung " << i;
  }
  // The deep-throughput rungs ride the int8 datapath, and they sit below
  // home (strictly faster than the 16-bit primary).
  bool any_int8_below_home = false;
  for (std::size_t i = plan.home + 1; i < plan.rungs.size(); ++i) {
    any_int8_below_home |= plan.rungs[i].int8;
  }
  EXPECT_TRUE(any_int8_below_home);
  EXPECT_FALSE(plan.table().empty());
}

TEST(LadderBuilder, CacheReturnsTheSameInstance) {
  const ServingLadderPlan& a = alexnet_plan();
  const ServingLadderPlan& b = alexnet_plan();
  EXPECT_EQ(&a, &b);
}

TEST(LadderBuilder, ServingModesCarryPerRungChoicesAndLabels) {
  const ServingLadderPlan& plan = alexnet_plan();
  const std::size_t layers = 3;
  const std::vector<arch::NumericMode> m16(layers);
  const std::vector<arch::NumericMode> mi8(layers);
  const serve::ServingLadder l = plan.to_serving_modes(layers, m16, mi8);
  ASSERT_EQ(l.rungs.size(), plan.rungs.size());
  EXPECT_EQ(l.home, plan.home);
  for (std::size_t i = 0; i < l.rungs.size(); ++i) {
    EXPECT_EQ(l.rungs[i].choices.size(), layers);
    EXPECT_EQ(l.rungs[i].label, plan.rungs[i].label);
    EXPECT_EQ(l.rungs[i].service_cycles, plan.rungs[i].service_cycles);
  }
}

TEST(LadderCsv, RoundTripsTheFullPlan) {
  const ServingLadderPlan& plan = alexnet_plan();
  const std::string csv =
      core::ladder_to_csv(plan.to_csv_rungs(), plan.accel_net);
  const std::vector<core::LadderRungCsv> parsed =
      core::ladder_from_csv(csv, plan.accel_net, fpga::zc706());
  const ServingLadderPlan back =
      ServingLadderPlan::from_csv_rungs(parsed, plan.accel_net);

  ASSERT_EQ(back.rungs.size(), plan.rungs.size());
  EXPECT_EQ(back.home, plan.home);
  for (std::size_t i = 0; i < plan.rungs.size(); ++i) {
    EXPECT_EQ(back.rungs[i].label, plan.rungs[i].label);
    EXPECT_EQ(back.rungs[i].service_cycles, plan.rungs[i].service_cycles);
    EXPECT_EQ(back.rungs[i].protect, plan.rungs[i].protect);
    EXPECT_EQ(back.rungs[i].int8, plan.rungs[i].int8);
    EXPECT_EQ(back.rungs[i].strategy.latency_cycles(),
              plan.rungs[i].strategy.latency_cycles());
  }
}

TEST(LadderCsv, TamperedInputsRaiseTypedLineNumberedErrors) {
  const ServingLadderPlan& plan = alexnet_plan();
  const std::string csv =
      core::ladder_to_csv(plan.to_csv_rungs(), plan.accel_net);

  const auto expect_parse_error = [&](std::string bad) {
    try {
      (void)core::ladder_from_csv(bad, plan.accel_net, fpga::zc706());
      FAIL() << "tampered ladder csv accepted";
    } catch (const ParseError& e) {
      EXPECT_GE(e.line(), 1) << e.what();
    }
  };

  // No home rung: strip the 'home' flag everywhere.
  std::string no_home = csv;
  for (std::size_t p = no_home.find(",home"); p != std::string::npos;
       p = no_home.find(",home", p + 2)) {
    no_home.replace(p, 5, ",-");
  }
  expect_parse_error(no_home);

  // Unknown flag token.
  std::string bad_flag = csv;
  const std::size_t fp = bad_flag.find(",home");
  ASSERT_NE(fp, std::string::npos);
  bad_flag.replace(fp, 5, ",hme");
  expect_parse_error(bad_flag);

  // Break per-block metadata consistency (one row of a rung disagrees on
  // service_cycles with its siblings).
  const std::string deep =
      std::to_string(plan.rungs.back().service_cycles);
  std::string torn = csv;
  const std::size_t dp = torn.find("," + deep + ",");
  ASSERT_NE(dp, std::string::npos);
  torn.replace(dp, deep.size() + 2,
               "," + std::to_string(plan.rungs.back().service_cycles +
                                    plan.rungs.front().service_cycles) +
                   ",");
  expect_parse_error(torn);

  // Truncated mid-block.
  expect_parse_error(csv.substr(0, csv.size() / 2));
}

}  // namespace
}  // namespace hetacc::toolflow
