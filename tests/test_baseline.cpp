#include "baseline/alwani.h"

#include <gtest/gtest.h>

#include "core/dp_optimizer.h"
#include "nn/model_zoo.h"

namespace hetacc::baseline {
namespace {

using nn::Network;
using nn::Tensor;
using nn::WeightStore;

TEST(PyramidGeometry, BackwardWalkMatchesHandComputation) {
  // Three 3x3 s1 convs: a TxT output tile needs (T+2)x(T+2), (T+4)x(T+4),
  // (T+6)x(T+6) going backwards (paper Fig. 2(a) shows exactly this).
  const Network net = nn::conv_chain(3, 4, 32);
  const TileGeometry g = pyramid_geometry(net, 1, 3, 8, /*reuse=*/false);
  ASSERT_EQ(g.tile_in.size(), 3u);
  EXPECT_EQ(g.tile_in[2], 10);
  EXPECT_EQ(g.tile_in[1], 12);
  EXPECT_EQ(g.tile_in[0], 14);
  EXPECT_EQ(g.tiles, 16);  // 32/8 squared
}

TEST(PyramidGeometry, StrideShrinksPyramidGrowth) {
  Network net("n");
  net.input({4, 32, 32});
  net.conv(4, 3, 1, 1, "c1");
  net.max_pool(2, 2, "p1");
  net.conv(8, 3, 1, 1, "c2");
  const TileGeometry g = pyramid_geometry(net, 1, 3, 4, false);
  // c2 tile 4 -> needs 6 of p1 out -> pool in 12 -> c1 in 14.
  EXPECT_EQ(g.tile_in[2], 6);
  EXPECT_EQ(g.tile_in[1], 12);
  EXPECT_EQ(g.tile_in[0], 14);
}

TEST(PyramidGeometry, RecomputeFactorAboveOneAndShrinksWithTile) {
  const Network net = nn::conv_chain(3, 4, 32);
  const TileGeometry small = pyramid_geometry(net, 1, 3, 4, false);
  const TileGeometry big = pyramid_geometry(net, 1, 3, 16, false);
  EXPECT_GT(small.recompute_factor, 1.0);
  EXPECT_GT(small.recompute_factor, big.recompute_factor);
  // Reuse mode recomputes nothing.
  const TileGeometry reuse = pyramid_geometry(net, 1, 3, 4, true);
  EXPECT_DOUBLE_EQ(reuse.recompute_factor, 1.0);
}

TEST(PyramidGeometry, ReuseModeBuysBuffersInsteadOfRecompute) {
  const Network net = nn::conv_chain(3, 4, 32);
  const TileGeometry reuse = pyramid_geometry(net, 1, 3, 8, true);
  const TileGeometry recompute = pyramid_geometry(net, 1, 3, 8, false);
  EXPECT_GT(reuse.tile_buffer_words, recompute.tile_buffer_words);
}

TEST(PyramidGeometry, BadArgsThrow) {
  const Network net = nn::conv_chain(3, 4, 32);
  EXPECT_THROW((void)pyramid_geometry(net, 1, 3, 0, true),
               std::invalid_argument);
  EXPECT_THROW((void)pyramid_geometry(net, 3, 1, 8, true),
               std::invalid_argument);
}

// ------------------------------------------------- functional tile executor --
class TileExecutorSweep : public ::testing::TestWithParam<int> {};

TEST_P(TileExecutorSweep, MatchesReferenceOnTinyNet) {
  const int tile = GetParam();
  const Network net = nn::tiny_net(4, 16);
  const WeightStore ws = WeightStore::deterministic(net, 21);
  Tensor in(net[0].out);
  nn::fill_deterministic(in, 22);
  const Tensor ref = nn::run_network(net, ws, in);
  long long ops = 0;
  const Tensor got =
      tile_fused_execute(net, ws, in, 1, net.size() - 1, tile, &ops);
  ASSERT_EQ(got.shape(), ref.shape());
  EXPECT_LT(got.max_abs_diff(ref), 1e-4f) << "tile=" << tile;
  EXPECT_GT(ops, 0);
}

INSTANTIATE_TEST_SUITE_P(TileSizes, TileExecutorSweep,
                         ::testing::Values(1, 2, 3, 4, 8));

TEST(TileExecutor, RecomputeOpsShrinkWithLargerTiles) {
  const Network net = nn::conv_chain(3, 4, 24);
  const WeightStore ws = WeightStore::deterministic(net, 31);
  Tensor in(net[0].out);
  nn::fill_deterministic(in, 32);
  long long ops_small = 0, ops_big = 0;
  (void)tile_fused_execute(net, ws, in, 1, 3, 4, &ops_small);
  (void)tile_fused_execute(net, ws, in, 1, 3, 12, &ops_big);
  EXPECT_GT(ops_small, ops_big);
  // And the big-tile count approaches the minimal op count.
  long long minimal = 0;
  for (std::size_t i = 1; i < net.size(); ++i) minimal += net[i].ops();
  EXPECT_GE(ops_big, minimal);
}

TEST(TileExecutor, MeasuredOverheadTracksGeometryModel) {
  const Network net = nn::conv_chain(3, 4, 24);
  const WeightStore ws = WeightStore::deterministic(net, 41);
  Tensor in(net[0].out);
  nn::fill_deterministic(in, 42);
  long long ops = 0;
  (void)tile_fused_execute(net, ws, in, 1, 3, 6, &ops);
  long long minimal = 0;
  for (std::size_t i = 1; i < net.size(); ++i) minimal += net[i].ops();
  const double measured = static_cast<double>(ops) / minimal;
  const double modeled =
      pyramid_geometry(net, 1, 3, 6, false).recompute_factor;
  // The analytic factor ignores edge-tile clipping, so allow 20%.
  EXPECT_NEAR(measured, modeled, 0.2 * modeled);
}

TEST(TileExecutor, AlexNetStyleHeadWithLrnAndPool) {
  Network net("mini-alex");
  net.input({3, 31, 31});
  net.conv(8, 5, 2, 0, "c1");
  net.lrn(5, 1e-4f, 0.75f, "n1");
  net.max_pool(3, 2, "p1");
  const WeightStore ws = WeightStore::deterministic(net, 51);
  Tensor in(net[0].out);
  nn::fill_deterministic(in, 52);
  const Tensor ref = nn::run_network(net, ws, in);
  const Tensor got = tile_fused_execute(net, ws, in, 1, 3, 3);
  EXPECT_LT(got.max_abs_diff(ref), 1e-4f);
}

TEST(TileExecutor, InputShapeMismatchThrows) {
  const Network net = nn::tiny_net(4, 16);
  const WeightStore ws = WeightStore::deterministic(net, 1);
  Tensor wrong(1, 16, 16);
  EXPECT_THROW((void)tile_fused_execute(net, ws, wrong, 1, 3, 4),
               std::invalid_argument);
}

// ----------------------------------------------------------- design model --
class BaselineDesignTest : public ::testing::Test {
 protected:
  Network head_ = nn::vgg_e_head();
  fpga::EngineModel model_{fpga::zc706()};
};

TEST_F(BaselineDesignTest, ProducesFeasibleConventionalOnlyDesign) {
  const auto d = design_baseline(head_, 1, 7, model_);
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(d->resources.fits_in(model_.device().capacity));
  for (const auto& ipl : d->impls) {
    EXPECT_NE(ipl.cfg.algo, fpga::ConvAlgo::kWinograd);
  }
  EXPECT_GT(d->latency_cycles, 0);
  EXPECT_EQ(d->transfer_bytes,
            core::min_transfer_bytes(head_, 1, 7, 2));
}

TEST_F(BaselineDesignTest, OurOptimizerBeatsBaseline) {
  // The paper's headline: 1.42x-3.85x, average 1.99x, over [1].
  const auto baseline = design_baseline(head_, 1, 7, model_);
  ASSERT_TRUE(baseline.has_value());
  core::OptimizerOptions o;
  o.transfer_budget_bytes = 2 * 1024 * 1024;
  const auto ours = core::optimize(head_, model_, o);
  ASSERT_TRUE(ours.feasible);
  const double speedup = static_cast<double>(baseline->latency_cycles) /
                         static_cast<double>(ours.strategy.latency_cycles());
  EXPECT_GT(speedup, 1.2);
  EXPECT_LT(speedup, 6.0);
}

TEST_F(BaselineDesignTest, TileSweepPicksReasonableTile) {
  const auto d = design_baseline(head_, 1, 7, model_);
  ASSERT_TRUE(d.has_value());
  EXPECT_GT(d->geom.tile, 0);
  EXPECT_LE(d->geom.tile, head_[7].out.h);
}

TEST_F(BaselineDesignTest, FixedTileRespected) {
  TileFusionOptions opt;
  opt.tile = 8;
  const auto d = design_baseline(head_, 1, 7, model_, opt);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->geom.tile, 8);
}

TEST_F(BaselineDesignTest, RecomputeModeCostsMoreCompute) {
  TileFusionOptions reuse;
  reuse.tile = 8;
  reuse.reuse = true;
  TileFusionOptions recompute;
  recompute.tile = 8;
  recompute.reuse = false;
  const auto a = design_baseline(head_, 1, 7, model_, reuse);
  const auto b = design_baseline(head_, 1, 7, model_, recompute);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_GT(b->compute_ops, a->compute_ops);
  EXPECT_GE(b->latency_cycles, a->latency_cycles);
}

TEST_F(BaselineDesignTest, InfeasibleOnTinyDevice) {
  fpga::Device nano = fpga::toy_device();
  nano.capacity = fpga::ResourceVector{4, 4, 4000, 2000};
  const fpga::EngineModel tiny(nano);
  EXPECT_FALSE(design_baseline(head_, 1, 7, tiny).has_value());
}

}  // namespace
}  // namespace hetacc::baseline
