#include "codegen/hls_report.h"

#include <gtest/gtest.h>

#include "codegen/generator.h"
#include "core/dp_optimizer.h"
#include "nn/model_zoo.h"

namespace hetacc::codegen {
namespace {

class HlsReportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = nn::tiny_net(4, 16);
    const fpga::EngineModel model(dev_);
    strategy_ = trivial_strategy(net_, model);
    report_ = make_report(net_, strategy_, dev_);
  }

  nn::Network net_;
  fpga::Device dev_ = fpga::zc706();
  core::Strategy strategy_;
  HlsReport report_;
};

TEST_F(HlsReportTest, OneModulePerLayerPlusTop) {
  // 4 layers + 1 group top.
  EXPECT_EQ(report_.modules.size(), 5u);
  EXPECT_EQ(report_.modules.back().name, "group0_top");
  EXPECT_EQ(report_.part, "XC7Z045");
  EXPECT_DOUBLE_EQ(report_.clock_ns, 10.0);
}

TEST_F(HlsReportTest, TopAggregatesLeaves) {
  fpga::ResourceVector leaves;
  long long max_lat = 0;
  for (const auto& m : report_.modules) {
    if (m.name == "group0_top") continue;
    leaves += m.resources;
    max_lat = std::max(max_lat, m.latency_cycles);
  }
  const auto& top = report_.modules.back();
  EXPECT_EQ(top.resources, leaves);
  EXPECT_EQ(top.latency_cycles, max_lat);
  EXPECT_EQ(report_.total_resources(), leaves);
}

TEST_F(HlsReportTest, XmlRoundTrip) {
  const std::string xml = to_xml(report_);
  EXPECT_NE(xml.find("<profile>"), std::string::npos);
  EXPECT_NE(xml.find("<dsp48e>"), std::string::npos);
  const HlsReport back = parse_report_xml(xml);
  EXPECT_EQ(back.design, report_.design);
  EXPECT_EQ(back.part, report_.part);
  ASSERT_EQ(back.modules.size(), report_.modules.size());
  for (std::size_t i = 0; i < back.modules.size(); ++i) {
    EXPECT_EQ(back.modules[i].name, report_.modules[i].name);
    EXPECT_EQ(back.modules[i].resources, report_.modules[i].resources);
    EXPECT_EQ(back.modules[i].latency_cycles,
              report_.modules[i].latency_cycles);
  }
}

TEST_F(HlsReportTest, MalformedXmlThrows) {
  EXPECT_THROW((void)parse_report_xml("<xml/>"), std::runtime_error);
  EXPECT_THROW((void)parse_report_xml("<profile><module><name>x</name>"),
               std::runtime_error);
  EXPECT_THROW(
      (void)parse_report_xml("<profile><design>d</design><part>p</part>"
                             "<module><name>x</name><bram_18k>z</bram_18k>"
                             "<dsp48e>1</dsp48e><ff>1</ff><lut>1</lut>"
                             "<latency>1</latency></module></profile>"),
      std::runtime_error);
}

TEST_F(HlsReportTest, CompareReportsMeasuresDeviation) {
  HlsReport measured = report_;
  for (auto& m : measured.modules) {
    m.resources.lut = m.resources.lut * 11 / 10;  // HLS came in 10% high
  }
  const ReportDelta d = compare_reports(report_, measured);
  EXPECT_NEAR(d.lut, 0.10, 0.02);
  EXPECT_NEAR(d.dsp, 0.0, 1e-9);
  EXPECT_NEAR(d.latency, 0.0, 1e-9);
}

TEST_F(HlsReportTest, OptimizedStrategyReportConsistent) {
  const nn::Network head = nn::vgg_e_head();
  const fpga::EngineModel model(dev_);
  core::OptimizerOptions oo;
  oo.transfer_budget_bytes = 4 * 1024 * 1024;
  const auto r = core::optimize(head, model, oo);
  ASSERT_TRUE(r.feasible);
  const HlsReport rep = make_report(head, r.strategy, dev_);
  // Total leaf resources equal the strategy's per-group sums.
  fpga::ResourceVector strat_total;
  for (const auto& g : r.strategy.groups) strat_total += g.resources();
  EXPECT_EQ(rep.total_resources(), strat_total);
}

}  // namespace
}  // namespace hetacc::codegen
