#include "codegen/generator.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "nn/model_zoo.h"
#include "nn/reference.h"

namespace hetacc::codegen {
namespace {

using nn::Network;
using nn::Tensor;
using nn::WeightStore;

class CodegenTest : public ::testing::Test {
 protected:
  fpga::EngineModel model_{fpga::zc706()};

  GeneratedDesign gen(const Network& net, std::uint32_t seed = 7) {
    const WeightStore ws = WeightStore::deterministic(net, seed);
    return generate_design(net, trivial_strategy(net, model_), ws, {});
  }
};

TEST_F(CodegenTest, EmitsOneFunctionPerLayerAndATop) {
  const Network net = nn::tiny_net(4, 16);
  const GeneratedDesign d = gen(net);
  EXPECT_NE(d.source.find("layer_c1"), std::string::npos);
  EXPECT_NE(d.source.find("layer_c2"), std::string::npos);
  EXPECT_NE(d.source.find("layer_p1"), std::string::npos);
  EXPECT_NE(d.source.find("layer_c3"), std::string::npos);
  ASSERT_EQ(d.group_tops.size(), 1u);
  EXPECT_NE(d.source.find("void group0_top"), std::string::npos);
  EXPECT_NE(d.header.find("void group0_top"), std::string::npos);
}

TEST_F(CodegenTest, EmitsHlsPragmas) {
  const Network net = nn::tiny_net(4, 16);
  const GeneratedDesign d = gen(net);
  // Paper §6: DATAFLOW on the top, PIPELINE in the loops, FIFO streams.
  EXPECT_NE(d.source.find("#pragma HLS DATAFLOW"), std::string::npos);
  EXPECT_NE(d.source.find("#pragma HLS PIPELINE II=1"), std::string::npos);
  EXPECT_NE(d.source.find("#pragma HLS STREAM"), std::string::npos);
  EXPECT_NE(d.source.find("#pragma HLS ARRAY_PARTITION"), std::string::npos);
  EXPECT_NE(d.source.find("hls::stream<data_t>"), std::string::npos);
}

TEST_F(CodegenTest, WinogradTemplateEmitsTransformConstants) {
  Network net("w");
  net.input({2, 12, 12});
  net.conv(3, 3, 1, 1, "wc");
  const WeightStore ws = WeightStore::deterministic(net, 3);
  core::Strategy s = trivial_strategy(net, model_);
  s.groups[0].impls[0] =
      model_.implement(net[1], {fpga::ConvAlgo::kWinograd, 1, 1, 1, 4});
  const GeneratedDesign d = generate_design(net, s, ws, {});
  EXPECT_NE(d.source.find("Winograd F(4x4, 3x3)"), std::string::npos);
  EXPECT_NE(d.source.find("BT[TN][TN]"), std::string::npos);
  EXPECT_NE(d.source.find("AT[TM][TN]"), std::string::npos);
  EXPECT_NE(d.source.find("U[N][M][TN][TN]"), std::string::npos);
}

TEST_F(CodegenTest, MultipleGroupsChainInTestbench) {
  Network net("two-group");
  net.input({2, 12, 12});
  net.conv(3, 3, 1, 1, "a");
  net.conv(3, 3, 1, 1, "b");
  const WeightStore ws = WeightStore::deterministic(net, 5);
  core::Strategy s;
  for (std::size_t i = 1; i <= 2; ++i) {
    core::FusionGroup g;
    g.first = g.last = i;
    g.impls.push_back(
        model_.implement(net[i], {fpga::ConvAlgo::kConventional, 1, 1, 1, 4}));
    g.timing = core::evaluate_group_timing(net, i, i, g.impls,
                                           model_.device());
    s.groups.push_back(std::move(g));
  }
  const GeneratedDesign d = generate_design(net, s, ws, {});
  ASSERT_EQ(d.group_tops.size(), 2u);
  EXPECT_NE(d.testbench.find("group0_top(s0, s1)"), std::string::npos);
  EXPECT_NE(d.testbench.find("group1_top(s1, s2)"), std::string::npos);
}

TEST_F(CodegenTest, StreamTextRoundTrip) {
  Tensor t(3, 4, 5);
  nn::fill_deterministic(t, 99);
  const std::string text = tensor_to_stream_text(t);
  const Tensor back = tensor_from_stream_text(text, t.shape());
  EXPECT_LT(back.max_abs_diff(t), 1e-6f);
  EXPECT_THROW((void)tensor_from_stream_text("1 2 3", t.shape()),
               std::runtime_error);
}

TEST_F(CodegenTest, WriteDesignDropsAllFourFiles) {
  const Network net = nn::tiny_net(2, 8);
  const GeneratedDesign d = gen(net);
  const std::string dir = ::testing::TempDir() + "/hetacc_design";
  write_design(d, dir);
  for (const char* f : {"design.h", "design.cpp", "main.cpp", "hls_compat.h"}) {
    std::ifstream in(dir + "/" + f);
    EXPECT_TRUE(in.good()) << f;
  }
  // The embedded compat header really is the hls::stream shim.
  std::ifstream compat(dir + "/hls_compat.h");
  std::stringstream ss;
  ss << compat.rdbuf();
  EXPECT_NE(ss.str().find("class stream"), std::string::npos);
}

TEST_F(CodegenTest, UnsupportedLayerThrows) {
  Network net("fc");
  net.input({2, 4, 4});
  net.fc(10, "fc1");
  const WeightStore ws = WeightStore::deterministic(net, 1);
  core::Strategy s;
  core::FusionGroup g;
  g.first = g.last = 1;
  g.impls.push_back(fpga::Implementation{});
  s.groups.push_back(g);
  EXPECT_THROW((void)generate_design(net, s, ws, {}), std::invalid_argument);
}

// --------------------------------------------------- compile & run (csim) --
/// Full C-simulation loop: generate -> compile with the host compiler ->
/// run on a deterministic input -> compare with the reference executor.
/// This is the validation step of the paper's tool-flow (§7.1 "C simulation")
/// minus the vendor tools.
class CsimTest : public ::testing::Test {
 protected:
  static bool compiler_available() {
    return std::system("c++ --version > /dev/null 2>&1") == 0;
  }

  void run_csim(const Network& net, const core::Strategy& strategy,
                float tol, std::uint32_t seed = 7) {
    if (!compiler_available()) GTEST_SKIP() << "no host compiler";
    const WeightStore ws = WeightStore::deterministic(net, seed);
    const GeneratedDesign d = generate_design(net, strategy, ws, {});
    const std::string dir =
        ::testing::TempDir() + "/csim_" +
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    write_design(d, dir);

    const std::string build_cmd = "c++ -std=c++17 -O1 -w -o " + dir +
                                  "/tb " + dir + "/design.cpp " + dir +
                                  "/main.cpp -I " + dir +
                                  " > /dev/null 2>&1";
    ASSERT_EQ(std::system(build_cmd.c_str()), 0) << "generated code failed "
                                                    "to compile";

    Tensor in(net[0].out);
    nn::fill_deterministic(in, seed + 1);
    {
      std::ofstream f(dir + "/input.txt");
      f << tensor_to_stream_text(in);
    }
    const std::string run_cmd =
        "cd " + dir + " && ./tb input.txt output.txt > /dev/null 2>&1";
    ASSERT_EQ(std::system(run_cmd.c_str()), 0) << "testbench crashed";

    std::ifstream f(dir + "/output.txt");
    std::stringstream ss;
    ss << f.rdbuf();
    const Tensor got =
        tensor_from_stream_text(ss.str(), net[net.size() - 1].out);
    const Tensor ref = nn::run_network(net, ws, in);
    EXPECT_LT(got.max_abs_diff(ref), tol);
  }
};

TEST_F(CsimTest, ConventionalConvPoolChain) {
  const Network net = nn::tiny_net(3, 12);
  run_csim(net, trivial_strategy(net, fpga::EngineModel(fpga::zc706())),
           1e-3f);
}

TEST_F(CsimTest, WinogradAndConventionalMixedGroup) {
  Network net("mix");
  net.input({3, 16, 16});
  net.conv(4, 3, 1, 1, "c1");
  net.conv(6, 3, 1, 1, "c2");
  net.max_pool(2, 2, "p1");
  const fpga::EngineModel model(fpga::zc706());
  core::Strategy s = trivial_strategy(net, model);
  s.groups[0].impls[1] =
      model.implement(net[2], {fpga::ConvAlgo::kWinograd, 1, 2, 1, 4});
  run_csim(net, s, 2e-3f);
}

TEST_F(CsimTest, AlexNetStyleStrideAndLrn) {
  Network net("alex-ish");
  net.input({3, 19, 19});
  net.conv(4, 5, 2, 0, "c1");
  net.lrn(5, 1e-4f, 0.75f, "n1");
  net.max_pool(3, 2, "p1");
  run_csim(net, trivial_strategy(net, fpga::EngineModel(fpga::zc706())),
           1e-3f);
}

TEST_F(CsimTest, TwoGroupsThroughDdrRoundTrip) {
  Network net("2g");
  net.input({2, 10, 10});
  net.conv(4, 3, 1, 1, "a");
  net.conv(2, 3, 1, 1, "b");
  const fpga::EngineModel model(fpga::zc706());
  core::Strategy s;
  for (std::size_t i = 1; i <= 2; ++i) {
    core::FusionGroup g;
    g.first = g.last = i;
    fpga::EngineConfig cfg{fpga::ConvAlgo::kConventional, 1, 1, 1, 4};
    if (i == 2) cfg.algo = fpga::ConvAlgo::kWinograd;
    g.impls.push_back(model.implement(net[i], cfg));
    g.timing = core::evaluate_group_timing(net, i, i, g.impls,
                                           model.device());
    s.groups.push_back(std::move(g));
  }
  run_csim(net, s, 2e-3f);
}

TEST_F(CsimTest, WinogradF45LargeKernel) {
  Network net("w45");
  net.input({2, 14, 14});
  net.conv(3, 5, 1, 2, "c1");
  const fpga::EngineModel model(fpga::zc706());
  core::Strategy s = trivial_strategy(net, model);
  s.groups[0].impls[0] =
      model.implement(net[1], {fpga::ConvAlgo::kWinograd, 1, 1, 1, 4});
  run_csim(net, s, 5e-3f);
}

}  // namespace
}  // namespace hetacc::codegen
