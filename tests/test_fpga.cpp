#include <gtest/gtest.h>

#include "fpga/device.h"
#include "fpga/engine_model.h"
#include "fpga/power.h"
#include "nn/model_zoo.h"

namespace hetacc::fpga {
namespace {

TEST(ResourceVector, Arithmetic) {
  ResourceVector a{1, 2, 3, 4}, b{10, 20, 30, 40};
  EXPECT_EQ((a + b).dsp, 22);
  EXPECT_EQ((b - a).lut, 36);
  a += b;
  EXPECT_EQ(a.bram18k, 11);
}

TEST(ResourceVector, FitsComponentwise) {
  ResourceVector cap{100, 100, 100, 100};
  EXPECT_TRUE((ResourceVector{100, 100, 100, 100}).fits_in(cap));
  EXPECT_FALSE((ResourceVector{101, 1, 1, 1}).fits_in(cap));
  EXPECT_FALSE((ResourceVector{1, 1, 1, 101}).fits_in(cap));
}

TEST(Device, Zc706Catalog) {
  const Device d = zc706();
  EXPECT_EQ(d.capacity.dsp, 900);
  EXPECT_EQ(d.capacity.bram18k, 1090);
  EXPECT_DOUBLE_EQ(d.bandwidth_bytes_per_s, 4.2e9);  // paper §7.1
  EXPECT_DOUBLE_EQ(d.frequency_hz, 100e6);
  EXPECT_EQ(d.data_bytes, 2);
  EXPECT_DOUBLE_EQ(d.bytes_per_cycle(), 42.0);
}

TEST(Device, ComputationalRoofScaling) {
  const Device d = vc707();
  // Conventional: 2 ops per DSP-cycle; Winograd F(4,3): 4x that.
  EXPECT_DOUBLE_EQ(d.computational_roof_ops(2.0), 2800.0 * 2 * 100e6);
  EXPECT_DOUBLE_EQ(d.computational_roof_ops(8.0),
                   4.0 * d.computational_roof_ops(2.0));
}

TEST(Bram, BlockQuantization) {
  EXPECT_EQ(bram18k_for(0, 16), 0);
  EXPECT_EQ(bram18k_for(1, 16), 1);       // min one block
  EXPECT_EQ(bram18k_for(1024, 16), 1);    // exactly one 1024x18 block
  EXPECT_EQ(bram18k_for(1025, 16), 2);
  EXPECT_EQ(bram18k_for(2048, 9), 1);     // narrow data packs deeper
  EXPECT_EQ(bram18k_for(512, 32), 2);     // wide data costs a block pair
}

TEST(Bram, BankingCostsBlocks) {
  // 1024 words in 8 banks -> 8 blocks (each bank rounds up).
  EXPECT_EQ(bram18k_for(1024, 16, 8), 8);
  EXPECT_EQ(bram18k_for(8 * 1024, 16, 8), 8);
  EXPECT_EQ(bram18k_for(8 * 1024 + 1, 16, 8), 16);
}

TEST(Bram, InvalidArgsThrow) {
  EXPECT_THROW((void)bram18k_for(-1, 16), std::invalid_argument);
  EXPECT_THROW((void)bram18k_for(10, 0), std::invalid_argument);
  EXPECT_THROW((void)bram18k_for(10, 16, 0), std::invalid_argument);
}

// ------------------------------------------------------------ EngineModel --
class EngineModelTest : public ::testing::Test {
 protected:
  nn::Network vgg_head_ = nn::vgg_e_head();
  EngineModel model_{zc706()};
};

TEST_F(EngineModelTest, WinogradEligibility) {
  const nn::Network alex = nn::alexnet_accel();
  EXPECT_FALSE(EngineModel::winograd_ok(alex[1]));  // conv1: k=11 s=4
  EXPECT_TRUE(EngineModel::winograd_ok(alex[*alex.find("conv2")]));  // 5x5 s1
  EXPECT_TRUE(EngineModel::winograd_ok(alex[*alex.find("conv3")]));
  EXPECT_FALSE(EngineModel::winograd_ok(alex[*alex.find("pool1")]));
}

TEST_F(EngineModelTest, WinogradUsesQuarterDspForSameThroughput) {
  const nn::Layer& conv = vgg_head_[2];  // conv1_2: 64->64 3x3 s1
  // Same channel unrolls; Winograd retires 16 outputs per (tn,tm) pass of
  // 36 mults vs conventional 1 output per 9 mults.
  const auto wino = model_.implement(
      conv, {ConvAlgo::kWinograd, 1, 1, 1, 4});
  const auto convl = model_.implement(
      conv, {ConvAlgo::kConventional, 1, 1, 9, 4});
  // Winograd: 36 DSP, conventional 9 DSP; cycle ratio:
  // conventional = M*N*HO*WO, winograd = tiles*M*N = M*N*HO*WO/16.
  EXPECT_EQ(wino.res.dsp, 36);
  EXPECT_EQ(convl.res.dsp, 9);
  const double cycle_ratio = static_cast<double>(convl.compute_cycles) /
                             static_cast<double>(wino.compute_cycles);
  EXPECT_NEAR(cycle_ratio, 16.0, 0.5);
  // => per-DSP throughput advantage = 16 / (36/9) = 4x (paper §7.1).
}

TEST_F(EngineModelTest, WinogradPerformsQuarterOfMultiplications) {
  const nn::Layer& conv = vgg_head_[2];
  const EngineConfig w{ConvAlgo::kWinograd, 1, 1, 1, 4};
  const EngineConfig c{ConvAlgo::kConventional, 1, 1, 1, 4};
  EXPECT_DOUBLE_EQ(static_cast<double>(EngineModel::algo_mults(conv, c)) /
                       static_cast<double>(EngineModel::algo_mults(conv, w)),
                   4.0);
}

TEST_F(EngineModelTest, ComputeCyclesScaleInverselyWithParallelism) {
  const nn::Layer& conv = vgg_head_[2];
  const auto a = model_.implement(conv, {ConvAlgo::kConventional, 1, 1, 1, 4});
  const auto b = model_.implement(conv, {ConvAlgo::kConventional, 4, 4, 1, 4});
  EXPECT_NEAR(static_cast<double>(a.compute_cycles) / b.compute_cycles, 16.0,
              0.1);
}

TEST_F(EngineModelTest, DspEqualsUnrollProduct) {
  const nn::Layer& conv = vgg_head_[2];
  const auto ipl = model_.implement(conv, {ConvAlgo::kConventional, 4, 8, 3, 4});
  EXPECT_EQ(ipl.res.dsp, 4 * 8 * 3);
  EXPECT_EQ(ipl.cfg.parallelism(3), 96);
}

TEST_F(EngineModelTest, UnrollsClampedToLayerDims) {
  const nn::Layer& conv = vgg_head_[1];  // conv1_1: 3 input channels
  const auto ipl =
      model_.implement(conv, {ConvAlgo::kConventional, 64, 1, 1, 4});
  EXPECT_EQ(ipl.cfg.tn, 3);
  EXPECT_EQ(ipl.res.dsp, 3);
}

TEST_F(EngineModelTest, WinogradOnStride2Throws) {
  const nn::Network alex = nn::alexnet_accel();
  EXPECT_THROW(
      (void)model_.implement(alex[1], {ConvAlgo::kWinograd, 1, 1, 1, 4}),
      std::invalid_argument);
}

TEST_F(EngineModelTest, AlgoKindMismatchThrows) {
  EXPECT_THROW(
      (void)model_.implement(vgg_head_[1], {ConvAlgo::kNone, 1, 1, 1, 4}),
      std::invalid_argument);
  EXPECT_THROW(
      (void)model_.implement(vgg_head_[3],
                             {ConvAlgo::kConventional, 1, 1, 1, 4}),
      std::invalid_argument);
}

TEST_F(EngineModelTest, PoolEngineUsesNoDsp) {
  const auto ipl = model_.implement(vgg_head_[3], {ConvAlgo::kNone, 8, 1, 1, 4});
  EXPECT_EQ(ipl.res.dsp, 0);
  EXPECT_GT(ipl.res.bram18k, 0);
  EXPECT_GT(ipl.compute_cycles, 0);
}

TEST_F(EngineModelTest, LrnEngineUsesDsp) {
  const nn::Network alex = nn::alexnet_accel();
  const nn::Layer& lrn = alex[*alex.find("norm1")];
  const auto ipl = model_.implement(lrn, {ConvAlgo::kNone, 4, 1, 1, 4});
  EXPECT_EQ(ipl.res.dsp, 3 * 4);
}

TEST_F(EngineModelTest, LineBufferBramGrowsWithWidthAndChannels) {
  const auto small = model_.implement(vgg_head_[1],
                                      {ConvAlgo::kConventional, 1, 1, 1, 4});
  const auto big = model_.implement(vgg_head_[4],  // conv2_1: 64ch 112x112
                                    {ConvAlgo::kConventional, 1, 1, 1, 4});
  EXPECT_GT(big.res.bram18k, 0);
  EXPECT_GT(big.weight_words, small.weight_words);
}

TEST_F(EngineModelTest, CandidatesRespectDeviceCapAndOrdering) {
  for (std::size_t i = 1; i < vgg_head_.size(); ++i) {
    const auto cands = model_.candidates(vgg_head_[i]);
    ASSERT_FALSE(cands.empty()) << "layer " << i;
    for (const auto& c : cands) {
      EXPECT_LE(c.parallelism(vgg_head_[i].window()),
                model_.device().capacity.dsp);
    }
  }
}

TEST_F(EngineModelTest, CandidatesIncludeBothAlgosForEligibleConv) {
  const auto cands = model_.candidates(vgg_head_[2]);
  bool has_conv = false, has_wino = false;
  for (const auto& c : cands) {
    has_conv |= c.algo == ConvAlgo::kConventional;
    has_wino |= c.algo == ConvAlgo::kWinograd;
  }
  EXPECT_TRUE(has_conv);
  EXPECT_TRUE(has_wino);
}

TEST_F(EngineModelTest, DisableWinogradFlagRemovesCandidates) {
  EngineModelParams p;
  p.enable_winograd = false;
  const EngineModel m(zc706(), p);
  for (const auto& c : m.candidates(vgg_head_[2])) {
    EXPECT_NE(c.algo, ConvAlgo::kWinograd);
  }
}

TEST_F(EngineModelTest, LadderIsAParetoFrontThinnedGeometrically) {
  // Candidates per algorithm must be Pareto-optimal in (cycles, DSPs):
  // iterating fastest-first, cycles rise by at least the ladder ratio and
  // DSP demand never rises.
  for (const nn::Layer* l : {&vgg_head_[2], &vgg_head_[4]}) {
    for (const auto algo : {ConvAlgo::kConventional, ConvAlgo::kWinograd}) {
      std::vector<fpga::Implementation> impls;
      for (const auto& c : model_.candidates(*l)) {
        if (c.algo == algo) impls.push_back(model_.implement(*l, c));
      }
      ASSERT_FALSE(impls.empty());
      for (std::size_t i = 1; i < impls.size(); ++i) {
        EXPECT_GE(static_cast<double>(impls[i].compute_cycles),
                  1.11 * static_cast<double>(impls[i - 1].compute_cycles));
        EXPECT_LE(impls[i].res.dsp, impls[i - 1].res.dsp);
      }
    }
  }
}

TEST_F(EngineModelTest, Int8HalvesDspWeightWordsAndActivationBram) {
  const nn::Layer& conv = vgg_head_[2];
  EngineConfig c16{ConvAlgo::kConventional, 4, 8, 9, 4, false};
  EngineConfig c8 = c16;
  c8.int8 = true;
  const Implementation a = model_.implement(conv, c16);
  const Implementation b = model_.implement(conv, c8);
  // Two i8 multiplies share one DSP48 (port chaining), two i8 weights share
  // one 16-bit DDR word, and the line buffers hold 8-bit activations.
  EXPECT_EQ(b.res.dsp, (a.res.dsp + 1) / 2);
  EXPECT_EQ(b.weight_words, (a.weight_words + 1) / 2);
  EXPECT_LT(b.res.bram18k, a.res.bram18k);
  // Same unrolls -> same schedule: the datapath changes area, not cycles.
  EXPECT_EQ(b.compute_cycles, a.compute_cycles);
  EXPECT_EQ(b.mults_performed, a.mults_performed);
}

TEST_F(EngineModelTest, Int8IsConventionalOnly) {
  EngineConfig bad{ConvAlgo::kWinograd, 4, 8, 1, 4, true};
  EXPECT_THROW((void)model_.implement(vgg_head_[2], bad),
               std::invalid_argument);
}

TEST_F(EngineModelTest, Int8CandidatesGatedAndReachPastTheDspCeiling) {
  // Default params: no int8 candidates at all.
  for (const auto& c : model_.candidates(vgg_head_[2])) {
    EXPECT_FALSE(c.int8);
  }
  EngineModelParams p;
  p.enable_int8 = true;
  const EngineModel m(zc706(), p);
  int n_i8 = 0;
  int best_i8_par = 0, best_i16_par = 0;
  const int k = vgg_head_[2].conv().kernel * vgg_head_[2].conv().kernel;
  for (const auto& c : m.candidates(vgg_head_[2])) {
    if (c.int8) {
      ++n_i8;
      EXPECT_EQ(c.algo, ConvAlgo::kConventional);
      best_i8_par = std::max(best_i8_par, c.parallelism(k));
    } else if (c.algo == ConvAlgo::kConventional) {
      best_i16_par = std::max(best_i16_par, c.parallelism(k));
    }
  }
  EXPECT_GT(n_i8, 0);
  // Packing two multiplies per DSP lets the int8 ladder reach lane counts
  // the 16-bit ladder cannot fit under the same DSP budget.
  EXPECT_GT(best_i8_par, best_i16_par);
}

TEST(AlgoLabel, Int8RoundTripsAndRejectsGarbage) {
  EngineConfig c{ConvAlgo::kConventional, 2, 3, 4, 4, true};
  EXPECT_EQ(algo_label(c), "conventional-i8");
  EngineConfig back;
  ASSERT_TRUE(algo_from_label("conventional-i8", back));
  EXPECT_EQ(back.algo, ConvAlgo::kConventional);
  EXPECT_TRUE(back.int8);
  ASSERT_TRUE(algo_from_label("conventional", back));
  EXPECT_FALSE(back.int8);
  ASSERT_TRUE(algo_from_label("winograd", back));
  EXPECT_FALSE(back.int8);
  EXPECT_FALSE(algo_from_label("winograd-i8", back));
  EXPECT_FALSE(algo_from_label("i8", back));
}

TEST(Divisors, Basics) {
  EXPECT_EQ(divisors_up_to(12, 100), (std::vector<int>{1, 2, 3, 4, 6, 12}));
  EXPECT_EQ(divisors_up_to(12, 4), (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(divisors_up_to(7, 100), (std::vector<int>{1, 7}));
}

// ----------------------------------------------------------------- power --
TEST(Power, MonotoneInResources) {
  const Device d = zc706();
  const auto lo = estimate_power(d, {100, 100, 10000, 10000}, 0.5);
  const auto hi = estimate_power(d, {500, 800, 200000, 150000}, 0.5);
  EXPECT_GT(hi.total(), lo.total());
}

TEST(Power, UtilizationScalesDynamicOnly) {
  const Device d = zc706();
  const ResourceVector r{200, 400, 100000, 80000};
  const auto idle = estimate_power(d, r, 0.0);
  const auto busy = estimate_power(d, r, 1.0);
  EXPECT_GT(busy.dsp_w, idle.dsp_w);
  EXPECT_DOUBLE_EQ(busy.static_w, idle.static_w);
  EXPECT_DOUBLE_EQ(busy.board_w, idle.board_w);
}

TEST(Power, Zc706FullDesignLandsInLiteratureEnvelope) {
  const Device d = zc706();
  // A near-full design: ~800 DSP, ~700 BRAM, ~150k LUT, ~180k FF.
  const auto p = estimate_power(d, {700, 800, 180000, 150000}, 0.8);
  EXPECT_GT(p.total(), 3.0);
  EXPECT_LT(p.total(), 15.0);
}

TEST(Power, InvalidUtilizationThrows) {
  EXPECT_THROW((void)estimate_power(zc706(), {}, -0.1), std::invalid_argument);
  EXPECT_THROW((void)estimate_power(zc706(), {}, 1.1), std::invalid_argument);
}

TEST(Energy, SplitsComputeAndTransfer) {
  const Device d = zc706();
  const auto p = estimate_power(d, {100, 100, 10000, 10000}, 1.0);
  const auto e = estimate_energy(d, p, 0.01, 1e6);
  EXPECT_NEAR(e.compute_j, p.total() * 0.01, 1e-9);
  EXPECT_NEAR(e.transfer_j, 1e6 * d.power.ddr_pj_per_byte * 1e-12, 1e-12);
  EXPECT_DOUBLE_EQ(e.total(), e.compute_j + e.transfer_j);
}

TEST(Energy, EfficiencyMetric) {
  EXPECT_DOUBLE_EQ(energy_efficiency_gops_per_w(2e9, 1.0, 2.0), 1.0);
  EXPECT_EQ(energy_efficiency_gops_per_w(1e9, 0.0, 2.0), 0.0);
}

}  // namespace
}  // namespace hetacc::fpga
