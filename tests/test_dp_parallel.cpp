// Determinism of the parallel fusion-table construction: for any worker
// count the optimizer must return a byte-identical strategy (serialized via
// strategy_io), identical search counters, and the interval DP must still
// agree with the prefix DP. Also covers the thread-safe per-layer
// implementation memo in fpga::EngineModel.

#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "core/dp_optimizer.h"
#include "core/strategy_io.h"
#include "fpga/engine_model.h"
#include "nn/model_zoo.h"

namespace hetacc {
namespace {

struct OptRun {
  core::OptimizeResult result;
  std::string strategy_csv;
  std::string timing_csv;
};

OptRun run_with_threads(const nn::Network& net, int threads) {
  const fpga::Device dev = fpga::zc706();
  // A fresh model per run: no memo sharing between the runs under
  // comparison, so the serial run cannot warm the parallel one.
  const fpga::EngineModel model(dev);
  core::OptimizerOptions oo;
  oo.threads = threads;
  oo.transfer_budget_bytes =
      net.unfused_feature_transfer_bytes(dev.data_bytes) +
      static_cast<long long>(net.size()) * oo.transfer_unit_bytes;
  OptRun r;
  r.result = core::optimize(net, model, oo);
  r.strategy_csv = core::strategy_to_csv(r.result.strategy, net);
  r.timing_csv = core::group_timing_to_csv(r.result.strategy);
  return r;
}

void expect_identical(const OptRun& a, const OptRun& b) {
  ASSERT_EQ(a.result.feasible, b.result.feasible);
  EXPECT_EQ(a.strategy_csv, b.strategy_csv);
  EXPECT_EQ(a.timing_csv, b.timing_csv);
  EXPECT_EQ(a.result.fusion_ranges_evaluated, b.result.fusion_ranges_evaluated);
  EXPECT_EQ(a.result.bnb_nodes_visited, b.result.bnb_nodes_visited);
  EXPECT_EQ(a.result.strategy.latency_cycles(),
            b.result.strategy.latency_cycles());
}

TEST(DpParallel, AlexNetByteIdenticalAcrossThreadCounts) {
  const nn::Network net = nn::alexnet().accelerated_portion();
  const OptRun serial = run_with_threads(net, 1);
  ASSERT_TRUE(serial.result.feasible);
  expect_identical(serial, run_with_threads(net, 3));
  expect_identical(serial, run_with_threads(net, 0));  // hardware concurrency
}

TEST(DpParallel, Vgg16ByteIdenticalAcrossThreadCounts) {
  const nn::Network net = nn::vgg16().accelerated_portion();
  const OptRun serial = run_with_threads(net, 1);
  ASSERT_TRUE(serial.result.feasible);
  expect_identical(serial, run_with_threads(net, 2));
  expect_identical(serial, run_with_threads(net, 0));
}

TEST(DpParallel, FusionTableContentsThreadInvariant) {
  const fpga::Device dev = fpga::zc706();
  const fpga::EngineModel model(dev);
  const nn::Network net = nn::alexnet_accel();
  const core::BnbOptions opt;
  const core::FusionTable serial(net, model, opt, 1);
  const core::FusionTable parallel(net, model, opt, 4);
  ASSERT_EQ(serial.count(), parallel.count());
  EXPECT_EQ(serial.ranges_evaluated(), parallel.ranges_evaluated());
  EXPECT_EQ(serial.nodes_visited(), parallel.nodes_visited());
  for (std::size_t i = 0; i < serial.count(); ++i) {
    for (std::size_t j = i; j < serial.count(); ++j) {
      ASSERT_EQ(serial.feasible(i, j), parallel.feasible(i, j))
          << "cell (" << i << ", " << j << ")";
      EXPECT_EQ(serial.min_transfer(i, j), parallel.min_transfer(i, j));
      if (!serial.feasible(i, j)) continue;
      EXPECT_EQ(serial.latency(i, j), parallel.latency(i, j));
      const auto& gs = serial.group(i, j);
      const auto& gp = parallel.group(i, j);
      EXPECT_EQ(gs.timing, gp.timing) << "cell (" << i << ", " << j << ")";
      ASSERT_EQ(gs.impls.size(), gp.impls.size());
      for (std::size_t k = 0; k < gs.impls.size(); ++k) {
        EXPECT_EQ(gs.impls[k].cfg.tn, gp.impls[k].cfg.tn);
        EXPECT_EQ(gs.impls[k].cfg.tm, gp.impls[k].cfg.tm);
        EXPECT_EQ(gs.impls[k].cfg.algo, gp.impls[k].cfg.algo);
        EXPECT_EQ(gs.impls[k].compute_cycles, gp.impls[k].compute_cycles);
      }
    }
  }
}

TEST(DpParallel, IntervalDpAgreesWithPrefixDpWhenParallel) {
  const fpga::Device dev = fpga::zc706();
  const fpga::EngineModel model(dev);
  const nn::Network net = nn::alexnet_accel();
  core::OptimizerOptions oo;
  oo.transfer_budget_bytes =
      net.unfused_feature_transfer_bytes(dev.data_bytes) +
      static_cast<long long>(net.size()) * oo.transfer_unit_bytes;
  oo.threads = 1;
  const auto prefix = core::optimize(net, model, oo);
  oo.threads = 4;
  const auto interval = core::optimize_interval(net, model, oo);
  ASSERT_TRUE(prefix.feasible);
  ASSERT_TRUE(interval.feasible);
  EXPECT_EQ(prefix.strategy.latency_cycles(),
            interval.strategy.latency_cycles());
  EXPECT_EQ(core::strategy_to_csv(prefix.strategy, net),
            core::strategy_to_csv(interval.strategy, net));
}

TEST(DpParallel, ImplementationMemoReturnsSharedResult) {
  const fpga::Device dev = fpga::zc706();
  const fpga::EngineModel model(dev);
  const nn::Network net = nn::vgg16().accelerated_portion();
  // Two VGG-16 layers with identical structure (conv3-256 pair) must hit
  // the same memo entry; repeated lookups return the very same vector.
  const auto a = model.implementations(net[1]);
  const auto b = model.implementations(net[1]);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a.get(), b.get());
  // The memo must not change what is computed: entry k is implement()
  // applied to candidates() entry k.
  const auto cfgs = model.candidates(net[1]);
  ASSERT_EQ(a->size(), cfgs.size());
  for (std::size_t k = 0; k < cfgs.size(); ++k) {
    EXPECT_EQ((*a)[k].cfg, cfgs[k]);
    const auto direct = model.implement(net[1], cfgs[k]);
    EXPECT_EQ((*a)[k].compute_cycles, direct.compute_cycles);
    EXPECT_EQ((*a)[k].fill_cycles, direct.fill_cycles);
    EXPECT_EQ((*a)[k].res, direct.res);
  }
  // Copies of the model share the cache.
  const fpga::EngineModel copy = model;
  EXPECT_EQ(copy.implementations(net[1]).get(), a.get());
}

TEST(DpParallel, MemoIsSafeUnderConcurrentLookups) {
  const fpga::Device dev = fpga::zc706();
  const fpga::EngineModel model(dev);
  const nn::Network net = nn::vgg16().accelerated_portion();
  std::vector<std::thread> pool;
  std::vector<std::size_t> sums(4, 0);
  for (int w = 0; w < 4; ++w) {
    pool.emplace_back([&, w] {
      std::size_t sum = 0;
      for (std::size_t i = 1; i < net.size(); ++i) {
        sum += model.implementations(net[i])->size();
      }
      sums[w] = sum;
    });
  }
  for (auto& t : pool) t.join();
  for (int w = 1; w < 4; ++w) EXPECT_EQ(sums[w], sums[0]);
  EXPECT_GT(sums[0], 0u);
}

}  // namespace
}  // namespace hetacc
