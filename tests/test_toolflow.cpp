#include "toolflow/toolflow.h"

#include <gtest/gtest.h>

#include "nn/model_zoo.h"

namespace hetacc::toolflow {
namespace {

TEST(Toolflow, AlexNetPrototxtToStrategyAndCode) {
  ToolflowOptions opt;
  opt.transfer_budget_bytes = 8 * 1024 * 1024;
  const ToolflowResult r =
      run_toolflow(caffe::alexnet_prototxt(), fpga::zc706(), opt);
  EXPECT_EQ(r.full_net.size(), nn::alexnet().size());
  EXPECT_EQ(r.accel_net.size(), 11u);  // FC stack dropped
  EXPECT_TRUE(r.optimization.feasible);
  EXPECT_GT(r.report.effective_gops, 0.0);
  EXPECT_FALSE(r.design.source.empty());
  EXPECT_FALSE(r.design.group_tops.empty());
  EXPECT_FALSE(r.summary().empty());
}

TEST(Toolflow, HeterogeneousChoicesAppearForAlexNet) {
  // Paper Table 2: conv1/conv4-style layers conventional, some of
  // conv2/conv3/conv5 Winograd. At minimum both algorithms must appear.
  ToolflowOptions opt;
  opt.generate_code = false;
  const ToolflowResult r =
      run_toolflow(nn::alexnet(), fpga::zc706(), opt);
  bool any_conv = false, any_wino = false;
  for (const auto& g : r.optimization.strategy.groups) {
    for (std::size_t k = 0; k < g.impls.size(); ++k) {
      const nn::Layer& l = r.accel_net[g.first + k];
      if (l.kind != nn::LayerKind::kConv) continue;
      any_conv |= g.impls[k].cfg.algo == fpga::ConvAlgo::kConventional;
      any_wino |= g.impls[k].cfg.algo == fpga::ConvAlgo::kWinograd;
    }
  }
  EXPECT_TRUE(any_conv);  // conv1 (11x11 s4) cannot be Winograd
  EXPECT_TRUE(any_wino);
}

TEST(Toolflow, AlexNetConv1IsNeverWinograd) {
  ToolflowOptions opt;
  opt.generate_code = false;
  const ToolflowResult r = run_toolflow(nn::alexnet(), fpga::zc706(), opt);
  const auto& g0 = r.optimization.strategy.groups.front();
  ASSERT_EQ(g0.first, 1u);
  EXPECT_EQ(r.accel_net[1].name, "conv1");
  EXPECT_EQ(g0.impls[0].cfg.algo, fpga::ConvAlgo::kConventional);
}

TEST(Toolflow, DefaultBudgetIsUnfusedTransfer) {
  ToolflowOptions opt;
  opt.generate_code = false;
  const ToolflowResult r = run_toolflow(nn::alexnet(), fpga::zc706(), opt);
  EXPECT_LE(r.report.feature_transfer_bytes,
            r.accel_net.unfused_feature_transfer_bytes(2));
}

TEST(Toolflow, InfeasibleBudgetThrows) {
  ToolflowOptions opt;
  opt.transfer_budget_bytes = 1024;  // 1 KB: impossible
  EXPECT_THROW((void)run_toolflow(nn::alexnet(), fpga::zc706(), opt),
               std::runtime_error);
}

TEST(Toolflow, VggHeadOnVc707) {
  ToolflowOptions opt;
  opt.generate_code = false;
  opt.transfer_budget_bytes = 4 * 1024 * 1024;
  const ToolflowResult r =
      run_toolflow(nn::vgg_e_head(), fpga::vc707(), opt);
  EXPECT_TRUE(r.optimization.feasible);
  EXPECT_TRUE(
      r.report.peak_resources.fits_in(fpga::vc707().capacity));
}

TEST(Toolflow, GoogleNetStyleCoarsening) {
  // §7.1: treat a module as a single layer, then optimize the coarse chain.
  nn::Network net("modular");
  net.input({64, 56, 56});
  net.conv(64, 3, 1, 1, "pre");
  net.conv(128, 3, 1, 1, "m1a");
  net.conv(128, 3, 1, 1, "m1b");
  net.max_pool(2, 2, "pool");
  const nn::Network coarse = net.coarsen(2, 3, "module1");
  ToolflowOptions opt;
  opt.generate_code = false;
  const ToolflowResult r = run_toolflow(coarse, fpga::zc706(), opt);
  EXPECT_TRUE(r.optimization.feasible);
}

}  // namespace
}  // namespace hetacc::toolflow
