// The complete tool-flow on one miniature network: Caffe prototxt in,
// optimizer-chosen heterogeneous fusion strategy, streaming-simulator
// validation, HLS code generation, host compilation, C simulation, and a
// final bit-level comparison against the reference executor. This is the
// paper's Fig. 3 flow end to end (minus the vendor bitstream step).

#include <cstdlib>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "arch/ddr_trace.h"
#include "arch/pipeline.h"
#include "caffe/importer.h"
#include "codegen/generator.h"
#include "codegen/hls_report.h"
#include "nn/model_zoo.h"
#include "toolflow/toolflow.h"

namespace hetacc {
namespace {

constexpr const char* kMiniNet = R"(
name: "mini"
input: "data"
input_dim: 1
input_dim: 3
input_dim: 32
input_dim: 32
layer {
  name: "conv1"
  type: "Convolution"
  convolution_param { num_output: 8 kernel_size: 3 stride: 1 pad: 1 }
}
layer { name: "relu1" type: "ReLU" }
layer {
  name: "conv2"
  type: "Convolution"
  convolution_param { num_output: 8 kernel_size: 3 stride: 1 pad: 1 }
}
layer { name: "relu2" type: "ReLU" }
layer {
  name: "pool1"
  type: "Pooling"
  pooling_param { pool: MAX kernel_size: 2 stride: 2 }
}
layer {
  name: "conv3"
  type: "Convolution"
  convolution_param { num_output: 16 kernel_size: 3 stride: 1 pad: 1 }
}
layer {
  name: "fc"
  type: "InnerProduct"
  inner_product_param { num_output: 10 }
}
layer { name: "prob" type: "Softmax" }
)";

TEST(EndToEnd, PrototxtToValidatedCsim) {
  // 1. Front end + optimizer + code generation through the tool-flow.
  toolflow::ToolflowOptions opt;
  opt.transfer_budget_bytes = 1 * 1024 * 1024;
  const auto result = toolflow::run_toolflow(kMiniNet, fpga::zc706(), opt);
  ASSERT_TRUE(result.optimization.feasible);
  ASSERT_EQ(result.accel_net.size(), 5u);  // input + 3 conv + pool (FC cut)
  ASSERT_FALSE(result.design.source.empty());

  // The optimizer should have gone heterogeneous or all-Winograd here:
  // every conv is 3x3 stride 1.
  bool any_wino = false;
  for (const auto& g : result.optimization.strategy.groups) {
    for (const auto& ipl : g.impls) {
      any_wino |= ipl.cfg.algo == fpga::ConvAlgo::kWinograd;
    }
  }
  EXPECT_TRUE(any_wino);

  // 2. Functional validation of the chosen architecture in the streaming
  //    simulator (same weights the generated code embeds).
  const auto ws =
      nn::WeightStore::deterministic(result.accel_net, opt.weight_seed);
  std::vector<arch::LayerChoice> choices;
  for (const auto& g : result.optimization.strategy.groups) {
    for (const auto& ipl : g.impls) {
      choices.push_back({ipl.cfg.algo, ipl.cfg.wino_m, {}});
    }
  }
  arch::FusionPipeline pipe(result.accel_net, ws, choices);
  nn::Tensor image(result.accel_net[0].out);
  nn::fill_deterministic(image, 123);
  const nn::Tensor golden = nn::run_network(result.accel_net, ws, image);
  EXPECT_LT(pipe.run(image).max_abs_diff(golden), 2e-3f);

  // 3. Compile and run the generated C simulation.
  if (std::system("c++ --version > /dev/null 2>&1") != 0) {
    GTEST_SKIP() << "no host compiler";
  }
  const std::string dir = ::testing::TempDir() + "/e2e_flow";
  codegen::write_design(result.design, dir);
  ASSERT_EQ(std::system(("c++ -std=c++17 -O1 -w -o " + dir + "/tb " + dir +
                         "/design.cpp " + dir + "/main.cpp -I " + dir +
                         " > /dev/null 2>&1")
                            .c_str()),
            0)
      << "generated design failed to compile";
  {
    std::ofstream f(dir + "/input.txt");
    f << codegen::tensor_to_stream_text(image);
  }
  ASSERT_EQ(std::system(("cd " + dir +
                         " && ./tb input.txt output.txt > /dev/null 2>&1")
                            .c_str()),
            0);
  std::ifstream f(dir + "/output.txt");
  std::stringstream ss;
  ss << f.rdbuf();
  const nn::Tensor got = codegen::tensor_from_stream_text(
      ss.str(), result.accel_net[result.accel_net.size() - 1].out);
  EXPECT_LT(got.max_abs_diff(golden), 2e-3f);
}

TEST(EndToEnd, ReportsAgreeAcrossArtifacts) {
  // The strategy report, the HLS report, and the DDR trace must tell one
  // consistent story for the same strategy.
  toolflow::ToolflowOptions opt;
  opt.generate_code = false;
  opt.transfer_budget_bytes = 4 * 1024 * 1024;
  const auto result =
      toolflow::run_toolflow(nn::vgg_e_head(), fpga::zc706(), opt);
  ASSERT_TRUE(result.optimization.feasible);

  const auto hls = codegen::make_report(
      result.accel_net, result.optimization.strategy, fpga::zc706());
  fpga::ResourceVector strat_total;
  for (const auto& g : result.optimization.strategy.groups) {
    strat_total += g.resources();
  }
  EXPECT_EQ(hls.total_resources(), strat_total);

  const auto trace = arch::trace_strategy(result.optimization.strategy,
                                          result.accel_net, fpga::zc706());
  EXPECT_EQ(trace.feature_bytes(), result.report.feature_transfer_bytes);
  EXPECT_EQ(trace.weight_bytes(), result.report.weight_transfer_bytes);
}

}  // namespace
}  // namespace hetacc
