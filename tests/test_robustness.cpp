// Robustness and structural-golden tests across the front end, the code
// generator, and the compat runtime.

#include <gtest/gtest.h>

#include <random>
#include <string>

#include "caffe/importer.h"
#include "codegen/generator.h"
#include "codegen/hls_compat.h"
#include "nn/model_zoo.h"
#include "support/error.h"

namespace hetacc {
namespace {

// ----------------------------------------------------------------- caffe --
TEST(CaffeRobustness, CrlfAndTabsAndMixedWhitespace) {
  const nn::Network net = caffe::import_prototxt(
      "input:\t\"d\"\r\ninput_dim: 1\r\ninput_dim: 2\r\n"
      "input_dim: 6\r\ninput_dim: 6\r\n"
      "layer\t{\r\n\tname: \"c\"\r\n\ttype: \"Convolution\"\r\n"
      "\tconvolution_param { num_output: 2 kernel_size: 3 pad: 1 }\r\n}\r\n");
  EXPECT_EQ(net.size(), 2u);
  EXPECT_EQ(net[1].out, (nn::Shape{2, 6, 6}));
}

TEST(CaffeRobustness, LegacyLayersKeyword) {
  const nn::Network net = caffe::import_prototxt(R"(
    input: "d" input_dim: 1 input_dim: 1 input_dim: 4 input_dim: 4
    layers { name: "p" type: "Pooling"
             pooling_param { pool: MAX kernel_size: 2 stride: 2 } }
  )");
  EXPECT_EQ(net.size(), 2u);
  EXPECT_EQ(net[1].kind, nn::LayerKind::kPool);
}

TEST(CaffeRobustness, SingleQuotedStrings) {
  const caffe::Message m = caffe::parse_prototxt("name: 'abc'");
  EXPECT_EQ(m.str("name"), "abc");
}

TEST(CaffeRobustness, ScientificNotationAndNegatives) {
  const caffe::Message m =
      caffe::parse_prototxt("a: 1E-3 b: -2.5e+2 c: +7 d: .5");
  EXPECT_NEAR(m.number("a", 0), 1e-3, 1e-12);
  EXPECT_NEAR(m.number("b", 0), -250.0, 1e-9);
  EXPECT_NEAR(m.number("c", 0), 7.0, 1e-12);
  EXPECT_NEAR(m.number("d", 0), 0.5, 1e-12);
}

TEST(CaffeRobustness, DeeplyNestedUnknownMessagesParse) {
  const caffe::Message m = caffe::parse_prototxt(R"(
    a { b { c { d { e: 1 } } } }
  )");
  const auto* p = m.child("a")->child("b")->child("c")->child("d");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->integer("e", 0), 1);
}

TEST(CaffeRobustness, EmptyInputIsEmptyMessage) {
  const caffe::Message m = caffe::parse_prototxt("  \n # only a comment\n");
  EXPECT_TRUE(m.fields().empty());
}

// ------------------------------- malformed-prototxt corpus (seeded fuzz) --
// Every mutant of a real deploy file must either import or be rejected
// through the typed error hierarchy (hetacc::Error) / the documented
// geometry contract of nn::Network (std::invalid_argument,
// std::out_of_range). Nothing may crash, and no bare runtime_error may
// escape the front end. Deterministic: fixed seed, fixed mutation count.
TEST(CaffeRobustness, SeededMutationCorpusOnlyFailsThroughTypedErrors) {
  const std::string base = caffe::export_prototxt(nn::alexnet());
  ASSERT_FALSE(base.empty());
  std::mt19937 rng(20260806u);
  int imported = 0, typed = 0, geometry = 0;
  for (int iter = 0; iter < 400; ++iter) {
    std::string s = base;
    const std::size_t pos = rng() % s.size();
    switch (rng() % 5) {
      case 0:  // truncate mid-file
        s.resize(pos);
        break;
      case 1:  // substitute one structural byte
        s[pos] = "{}\":0#x-"[rng() % 8];
        break;
      case 2:  // delete a span
        s.erase(pos, 1 + rng() % 40);
        break;
      case 3:  // splice a copied span (duplicated keys, torn tokens)
        s.insert(pos, s.substr(rng() % s.size(), 1 + rng() % 20));
        break;
      default: {  // blow a numeric literal past any integer range
        const std::size_t d = s.find_first_of("0123456789", pos);
        if (d != std::string::npos) s.insert(d, "9999999999999999999");
        break;
      }
    }
    try {
      (void)caffe::import_prototxt(s);
      ++imported;
    } catch (const Error&) {
      ++typed;
    } catch (const std::invalid_argument&) {
      ++geometry;
    } catch (const std::out_of_range&) {
      ++geometry;
    } catch (const std::exception& e) {
      ADD_FAILURE() << "mutation " << iter
                    << " escaped the typed hierarchy: " << e.what();
    }
  }
  EXPECT_GT(typed, 0);     // the corpus does exercise the rejection paths
  EXPECT_GT(imported, 0);  // and some mutations are harmless
}

// Same contract over a branchy base: the graph-building paths (bottom/top
// resolution, merge arity, duplicate-top detection) must also fail only
// through the typed hierarchy when the file is torn apart.
TEST(CaffeRobustness, BranchyMutationCorpusOnlyFailsThroughTypedErrors) {
  const std::string base = caffe::export_prototxt(nn::inception_mini());
  ASSERT_FALSE(base.empty());
  ASSERT_NE(base.find("Concat"), std::string::npos);
  std::mt19937 rng(20260808u);
  int imported = 0, typed = 0, geometry = 0;
  for (int iter = 0; iter < 400; ++iter) {
    std::string s = base;
    const std::size_t pos = rng() % s.size();
    switch (rng() % 5) {
      case 0:
        s.resize(pos);
        break;
      case 1:
        s[pos] = "{}\":0#x-"[rng() % 8];
        break;
      case 2:
        s.erase(pos, 1 + rng() % 40);
        break;
      case 3:
        s.insert(pos, s.substr(rng() % s.size(), 1 + rng() % 20));
        break;
      default: {
        const std::size_t d = s.find_first_of("0123456789", pos);
        if (d != std::string::npos) s.insert(d, "9999999999999999999");
        break;
      }
    }
    try {
      (void)caffe::import_prototxt(s);
      ++imported;
    } catch (const Error&) {
      ++typed;
    } catch (const std::invalid_argument&) {
      ++geometry;
    } catch (const std::out_of_range&) {
      ++geometry;
    } catch (const std::exception& e) {
      ADD_FAILURE() << "mutation " << iter
                    << " escaped the typed hierarchy: " << e.what();
    }
  }
  EXPECT_GT(typed, 0);
  EXPECT_GT(imported, 0);
}

TEST(CaffeRobustness, NumericOverflowIsAParseError) {
  try {
    (void)caffe::import_prototxt(
        "input: \"d\"\ninput_dim: 1\ninput_dim: 99999999999999999999\n"
        "input_dim: 8\ninput_dim: 8\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kParse);
    EXPECT_NE(std::string(e.what()).find("integer"), std::string::npos);
  }
}

TEST(CaffeRobustness, FractionalDimensionIsAParseError) {
  EXPECT_THROW((void)caffe::import_prototxt(
                   "input: \"d\" input_dim: 1 input_dim: 2.5 "
                   "input_dim: 8 input_dim: 8"),
               ParseError);
}

TEST(CaffeRobustness, NegativeInputDimIsAValidationError) {
  EXPECT_THROW((void)caffe::import_prototxt(
                   "input: \"d\" input_dim: 1 input_dim: -3 "
                   "input_dim: 8 input_dim: 8"),
               ValidationError);
}

TEST(CaffeRobustness, LexerErrorsCarryTheLineNumber) {
  try {
    (void)caffe::parse_prototxt("a: 1\nb: 2\nc: @\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 3);
  }
}

TEST(CaffeRobustness, DegenerateConvParamsAreValidationErrors) {
  const char* header =
      "input: \"d\" input_dim: 1 input_dim: 3 input_dim: 8 input_dim: 8\n";
  EXPECT_THROW(
      (void)caffe::import_prototxt(
          std::string(header) +
          "layer { name: \"c\" type: \"Convolution\" "
          "convolution_param { num_output: 0 kernel_size: 3 } }"),
      ValidationError);
  EXPECT_THROW(
      (void)caffe::import_prototxt(
          std::string(header) +
          "layer { name: \"c\" type: \"Convolution\" "
          "convolution_param { num_output: 4 kernel_size: 3 stride: 0 } }"),
      ValidationError);
  EXPECT_THROW(
      (void)caffe::import_prototxt(
          std::string(header) +
          "layer { name: \"c\" type: \"Convolution\" "
          "convolution_param { num_output: 4 kernel_size: 3 pad: 5 } }"),
      ValidationError);
}

// --------------------------------------------------------------- codegen --
class CodegenGolden : public ::testing::Test {
 protected:
  fpga::EngineModel model_{fpga::zc706()};
};

TEST_F(CodegenGolden, FixedPoolEmitsRequantWhenScalesDiffer) {
  nn::Network net("g");
  net.input({2, 8, 8});
  net.max_pool(2, 2, "p");
  const auto ws = nn::WeightStore::deterministic(net, 1);
  codegen::CodegenOptions opt;
  opt.fixed_point = true;
  opt.layer_fracs = {{12, 10}};  // scale change across the pool
  const auto d = codegen::generate_design(
      net, codegen::trivial_strategy(net, model_), ws, opt);
  EXPECT_NE(d.source.find("hetacc_requant_shift((acc_t)best, 2)"),
            std::string::npos);
}

TEST_F(CodegenGolden, FixedPoolSkipsRequantWhenScalesMatch) {
  nn::Network net("g2");
  net.input({2, 8, 8});
  net.max_pool(2, 2, "p");
  const auto ws = nn::WeightStore::deterministic(net, 1);
  codegen::CodegenOptions opt;
  opt.fixed_point = true;
  opt.layer_fracs = {{12, 12}};
  const auto d = codegen::generate_design(
      net, codegen::trivial_strategy(net, model_), ws, opt);
  EXPECT_NE(d.source.find("out_s.write(best);"), std::string::npos);
}

TEST_F(CodegenGolden, EveryLayerGetsInlineOffAndOwnFunction) {
  const nn::Network net = nn::tiny_net(2, 8);
  const auto ws = nn::WeightStore::deterministic(net, 1);
  const auto d = codegen::generate_design(
      net, codegen::trivial_strategy(net, model_), ws, {});
  std::size_t count = 0, pos = 0;
  while ((pos = d.source.find("#pragma HLS INLINE off", pos)) !=
         std::string::npos) {
    ++count;
    ++pos;
  }
  EXPECT_EQ(count, net.size() - 1);
}

TEST_F(CodegenGolden, FifoDepthOptionHonored) {
  const nn::Network net = nn::tiny_net(2, 8);
  const auto ws = nn::WeightStore::deterministic(net, 1);
  codegen::CodegenOptions opt;
  opt.fifo_depth = 77;
  const auto d = codegen::generate_design(
      net, codegen::trivial_strategy(net, model_), ws, opt);
  EXPECT_NE(d.source.find("depth=77"), std::string::npos);
}

TEST_F(CodegenGolden, WeightsAreReproducibleAcrossCalls) {
  const nn::Network net = nn::tiny_net(2, 8);
  const auto ws = nn::WeightStore::deterministic(net, 1);
  const auto a = codegen::generate_design(
      net, codegen::trivial_strategy(net, model_), ws, {});
  const auto b = codegen::generate_design(
      net, codegen::trivial_strategy(net, model_), ws, {});
  EXPECT_EQ(a.source, b.source);
  EXPECT_EQ(a.header, b.header);
  EXPECT_EQ(a.testbench, b.testbench);
}

// ------------------------------------------------------------ hls compat --
TEST(HlsCompat, StreamFifoOrderAndNonBlockingRead) {
  hls::stream<int> s("s");
  EXPECT_TRUE(s.empty());
  s.write(1);
  s.write(2);
  EXPECT_EQ(s.size(), 2u);
  int v = 0;
  EXPECT_TRUE(s.read_nb(v));
  EXPECT_EQ(v, 1);
  EXPECT_EQ(s.read(), 2);
  EXPECT_FALSE(s.read_nb(v));
  EXPECT_THROW((void)s.read(), std::runtime_error);
}

// --------------------------------------------------------------- network --
TEST(NetworkRobustness, CoarsenRejectsNonStrideExpressibleModules) {
  nn::Network net("bad");
  net.input({4, 30, 30});
  net.conv(4, 3, 1, 1, "a");
  net.max_pool(3, 3, "p");  // 30 -> 10, fine
  net.conv(4, 3, 1, 0, "b");  // 10 -> 8: not integer stride of 30
  EXPECT_THROW((void)net.coarsen(1, 3, "m"), std::invalid_argument);
}

TEST(NetworkRobustness, SliceRangeChecks) {
  const nn::Network net = nn::tiny_net();
  EXPECT_THROW((void)net.slice(3, 1, "x"), std::out_of_range);
  EXPECT_THROW((void)net.slice(0, 99, "x"), std::out_of_range);
}

}  // namespace
}  // namespace hetacc
