// Resilient serving runtime: bounded-queue admission and back-pressure,
// virtual-clock deadlines with load-shedding, deterministic retry/backoff,
// circuit-breaker strategy downgrade with half-open recovery, and the
// determinism contract — same trace + seed + config produces byte-identical
// ServerStats for any worker-thread count. Also the pipeline-side hooks the
// runtime depends on: reset() idempotence, cooperative cancellation, and
// structured fault-identity payloads on escalation.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "arch/ddr_trace.h"
#include "arch/pipeline.h"
#include "fault/fault.h"
#include "nn/model_zoo.h"
#include "serve/breaker.h"
#include "serve/clock.h"
#include "serve/queue.h"
#include "serve/server.h"
#include "serve/stats.h"
#include "serve/trace.h"
#include "support/error.h"

namespace hetacc {
namespace {

using arch::FusionPipeline;
using fault::FaultPlan;
using fault::ProtectionConfig;
using serve::ArrivalTrace;
using serve::BoundedQueue;
using serve::BreakerConfig;
using serve::BreakerState;
using serve::CircuitBreaker;
using serve::LatencyHistogram;
using serve::ServerConfig;
using serve::ServerStats;
using serve::ServingMode;

// ------------------------------------------------------------ typed error --
TEST(ServeErrorType, CarriesReasonAndMapsToExitCode5) {
  const ServeError e(ServeError::Reason::kQueueFull, "queue at capacity");
  EXPECT_EQ(e.category(), ErrorCategory::kServe);
  EXPECT_EQ(e.exit_code(), 5);
  EXPECT_EQ(e.reason(), ServeError::Reason::kQueueFull);
  EXPECT_EQ(to_string(ServeError::Reason::kDeadline), "deadline");
  EXPECT_EQ(to_string(ErrorCategory::kServe), "serve");
}

// ----------------------------------------------------------- bounded queue --
TEST(BoundedQueueTest, TryPushRefusesWhenFullPopMakesRoom) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));  // admission control: full
  int out = 0;
  EXPECT_TRUE(q.pop(out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(q.try_push(3));
  EXPECT_EQ(q.size(), 2u);
}

TEST(BoundedQueueTest, CloseDrainsConsumersAndRefusesProducers) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.push(7));
  q.close();
  EXPECT_FALSE(q.try_push(8));
  EXPECT_FALSE(q.push(9));
  int out = 0;
  EXPECT_TRUE(q.pop(out));  // drains what was queued before close
  EXPECT_EQ(out, 7);
  EXPECT_FALSE(q.pop(out));  // closed and drained
}

TEST(BoundedQueueTest, PushBlocksUntilConsumerFreesASlot) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.try_push(1));
  std::atomic<bool> second_in{false};
  std::thread producer([&] {
    EXPECT_TRUE(q.push(2));  // must block until the pop below
    second_in = true;
  });
  int out = 0;
  EXPECT_TRUE(q.pop(out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(q.pop(out));
  EXPECT_EQ(out, 2);
  producer.join();
  EXPECT_TRUE(second_in);
}

// MPMC contention under TSan: every item is delivered exactly once, bound
// never exceeded, producers mix blocking and non-blocking pushes.
TEST(BoundedQueueTest, MpmcStressDeliversEveryItemExactlyOnce) {
  constexpr int kProducers = 4, kConsumers = 4, kPerProducer = 500;
  BoundedQueue<int> q(8);
  std::vector<std::atomic<int>> seen(kProducers * kPerProducer);
  for (auto& s : seen) s = 0;

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const int item = p * kPerProducer + i;
        if (i % 2 == 0) {
          while (!q.try_push(item)) std::this_thread::yield();
        } else {
          ASSERT_TRUE(q.push(item));
        }
      }
    });
  }
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      int item = 0;
      while (q.pop(item)) {
        seen[static_cast<std::size_t>(item)].fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  q.close();
  for (auto& t : consumers) t.join();
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i].load(), 1) << "item " << i;
  }
}

// --------------------------------------------------------- circuit breaker --
BreakerConfig fast_breaker() {
  BreakerConfig c;
  c.failure_threshold = 2;
  c.deadline_miss_threshold = 3;
  c.cooldown_cycles = 100;
  c.probe_successes = 2;
  return c;
}

TEST(CircuitBreakerTest, ConsecutiveFailuresOpenSuccessResetsTheStreak) {
  CircuitBreaker b(fast_breaker());
  b.record_failure(10);
  b.record_success(20);  // streak broken
  b.record_failure(30);
  EXPECT_EQ(b.state(40), BreakerState::kClosed);
  b.record_failure(50);  // second consecutive
  EXPECT_EQ(b.state(50), BreakerState::kOpen);
  EXPECT_EQ(b.opens(), 1);
}

TEST(CircuitBreakerTest, SustainedDeadlineMissesOpenLikeFailures) {
  CircuitBreaker b(fast_breaker());
  b.record_deadline_miss(1);
  b.record_deadline_miss(2);
  EXPECT_EQ(b.state(3), BreakerState::kClosed);
  b.record_deadline_miss(3);
  EXPECT_EQ(b.state(3), BreakerState::kOpen);
}

TEST(CircuitBreakerTest, HalfOpenRecoveryNeedsConfiguredProbeWins) {
  CircuitBreaker b(fast_breaker());
  b.record_failure(0);
  b.record_failure(1);  // open until 101
  EXPECT_EQ(b.state(100), BreakerState::kOpen);
  EXPECT_EQ(b.state(101), BreakerState::kHalfOpen);
  EXPECT_TRUE(b.try_acquire_probe(101));
  EXPECT_FALSE(b.try_acquire_probe(102));  // single probe slot
  b.record_success(110);
  EXPECT_EQ(b.state(110), BreakerState::kHalfOpen);  // one win is not enough
  EXPECT_TRUE(b.try_acquire_probe(111));
  b.record_success(120);
  EXPECT_EQ(b.state(120), BreakerState::kClosed);
  EXPECT_EQ(b.closes(), 1);
  // Transition log records the exact sequence.
  ASSERT_EQ(b.transitions().size(), 3u);
  EXPECT_EQ(b.transitions()[1].to, BreakerState::kHalfOpen);
  EXPECT_EQ(b.transitions()[2].to, BreakerState::kClosed);
}

TEST(CircuitBreakerTest, FailedOrLateProbeReopensWithFreshCooldown) {
  CircuitBreaker b(fast_breaker());
  b.record_failure(0);
  b.record_failure(0);
  ASSERT_EQ(b.state(100), BreakerState::kHalfOpen);
  ASSERT_TRUE(b.try_acquire_probe(100));
  b.record_failure(105);  // probe found the primary still sick
  EXPECT_EQ(b.state(106), BreakerState::kOpen);
  EXPECT_EQ(b.state(205), BreakerState::kHalfOpen);
  // A probe that completes past its deadline must also release the slot
  // and re-open — otherwise half-open wedges with the slot taken forever.
  ASSERT_TRUE(b.try_acquire_probe(205));
  b.record_deadline_miss(210);
  EXPECT_EQ(b.state(210), BreakerState::kOpen);
  EXPECT_EQ(b.state(310), BreakerState::kHalfOpen);
  EXPECT_TRUE(b.try_acquire_probe(310));  // slot is free again
}

// ------------------------------------------------------- latency histogram --
TEST(LatencyHistogramTest, NearestRankPercentiles) {
  LatencyHistogram h;
  for (long long v : {50, 10, 20, 30, 40}) h.record(v);
  EXPECT_EQ(h.count(), 5);
  EXPECT_EQ(h.p50(), 30);
  EXPECT_EQ(h.p99(), 50);
  EXPECT_EQ(h.max(), 50);
  EXPECT_DOUBLE_EQ(h.mean(), 30.0);
  EXPECT_EQ(h.percentile(0.0), 10);
}

TEST(LatencyHistogramTest, EmptyHistogramReportsZeros) {
  const LatencyHistogram h;
  EXPECT_EQ(h.p50(), 0);
  EXPECT_EQ(h.p99(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

// ---------------------------------------------------------- arrival traces --
TEST(ArrivalTraceTest, SyntheticIsDeterministicAndMonotonic) {
  const ArrivalTrace a = ArrivalTrace::synthetic(200, 1000, 42, 3.0);
  const ArrivalTrace b = ArrivalTrace::synthetic(200, 1000, 42, 3.0);
  ASSERT_EQ(a.requests.size(), 200u);
  long long prev = -1;
  for (std::size_t i = 0; i < a.requests.size(); ++i) {
    EXPECT_EQ(a.requests[i].id, i);
    EXPECT_GE(a.requests[i].arrival_cycle, prev);
    prev = a.requests[i].arrival_cycle;
    EXPECT_EQ(a.requests[i].arrival_cycle, b.requests[i].arrival_cycle);
    EXPECT_EQ(a.requests[i].input_seed, b.requests[i].input_seed);
  }
  // Different seed, different trace.
  const ArrivalTrace c = ArrivalTrace::synthetic(200, 1000, 43, 3.0);
  EXPECT_NE(a.requests.back().arrival_cycle, c.requests.back().arrival_cycle);
}

TEST(ArrivalTraceTest, SurgeCompressesTheMiddleThird) {
  const ArrivalTrace flat = ArrivalTrace::synthetic(300, 1000, 7, 1.0);
  const ArrivalTrace surged = ArrivalTrace::synthetic(300, 1000, 7, 4.0);
  const auto span = [](const ArrivalTrace& t, std::size_t lo, std::size_t hi) {
    return t.requests[hi].arrival_cycle - t.requests[lo].arrival_cycle;
  };
  EXPECT_EQ(span(flat, 0, 99), span(surged, 0, 99));  // head untouched
  EXPECT_GT(span(flat, 100, 199), 2 * span(surged, 100, 199));
}

TEST(ArrivalTraceTest, CsvRoundTripIsExact) {
  const ArrivalTrace a = ArrivalTrace::synthetic(64, 500, 9, 2.0);
  const ArrivalTrace b = ArrivalTrace::from_csv(a.to_csv());
  ASSERT_EQ(b.requests.size(), a.requests.size());
  for (std::size_t i = 0; i < a.requests.size(); ++i) {
    EXPECT_EQ(b.requests[i].id, a.requests[i].id);
    EXPECT_EQ(b.requests[i].arrival_cycle, a.requests[i].arrival_cycle);
    EXPECT_EQ(b.requests[i].input_seed, a.requests[i].input_seed);
  }
}

TEST(ArrivalTraceTest, FromCsvRejectsGarbageWithLineNumbers) {
  EXPECT_THROW((void)ArrivalTrace::from_csv(""), ParseError);
  EXPECT_THROW((void)ArrivalTrace::from_csv("wrong,header\n"), ParseError);
  const std::string head = "id,arrival_cycle,input_seed\n";
  EXPECT_THROW((void)ArrivalTrace::from_csv(head + "0,10\n"), ParseError);
  EXPECT_THROW((void)ArrivalTrace::from_csv(head + "0,ten,1\n"), ParseError);
  EXPECT_THROW((void)ArrivalTrace::from_csv(head + "1,10,1\n"), ParseError);
  EXPECT_THROW(
      (void)ArrivalTrace::from_csv(head + "0,10,1\n1,5,2\n"),  // time warp
      ParseError);
  try {
    (void)ArrivalTrace::from_csv(head + "0,10,1\n1,bad,2\n");
    FAIL() << "garbled row accepted";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 3);
  }
}

// ------------------------------------------------------------ server stats --
TEST(ServerStatsTest, AccountedRequiresEveryRequestToLandSomewhere) {
  ServerStats s;
  s.submitted = 10;
  s.completed = 7;
  s.rejected_queue_full = 1;
  s.shed_deadline = 1;
  EXPECT_FALSE(s.accounted());
  s.failed = 1;
  EXPECT_TRUE(s.accounted());
  EXPECT_NE(s.to_json().find("\"submitted\": 10"), std::string::npos);
}

// ----------------------------------------------------------------- server --
class ServerTest : public ::testing::Test {
 protected:
  nn::Network net_ = nn::tiny_net(4, 16);
  nn::WeightStore ws_ = nn::WeightStore::deterministic(net_, 21);

  static ServingMode mode(long long cycles) {
    ServingMode m;
    m.service_cycles = cycles;  // empty choices = all-conventional float
    return m;
  }

  static ServerConfig base_config() {
    ServerConfig cfg;
    cfg.queue_capacity = 64;
    cfg.replicas = 2;
    cfg.max_retries = 1;
    cfg.backoff_base_cycles = 500;
    cfg.backoff_cap_cycles = 2000;
    cfg.breaker.failure_threshold = 2;
    cfg.breaker.deadline_miss_threshold = 4;
    cfg.breaker.cooldown_cycles = 2000;
    cfg.breaker.probe_successes = 2;
    return cfg;
  }

  /// A trace whose middle third wedges the primary pipeline: the hard,
  /// deterministic failure the watchdog + retry + breaker chain must absorb.
  static ArrivalTrace burst_trace(std::size_t n = 60,
                                  std::uint64_t seed = 7) {
    ArrivalTrace t = ArrivalTrace::synthetic(n, 800, seed);
    const long long span = t.last_arrival();
    t.burst.from_cycle = span / 3;
    t.burst.until_cycle = 2 * span / 3;
    t.burst.plan.seed = seed;
    t.burst.plan.wedge_channel = 0;
    t.burst.plan.wedge_after_pushes = 2;
    return t;
  }

  ServerStats run_once(const ArrivalTrace& trace, const ServerConfig& cfg,
                       std::vector<serve::BreakerTransition>* log = nullptr) {
    serve::Server s(net_, ws_, mode(1000), mode(1600), cfg);
    const ServerStats st = s.run(trace);
    if (log) *log = s.breaker_log();
    return st;
  }
};

TEST_F(ServerTest, RejectsUnusableConfigurations) {
  ServerConfig cfg = base_config();
  cfg.replicas = 0;
  EXPECT_THROW(serve::Server(net_, ws_, mode(10), mode(10), cfg), ServeError);
  cfg = base_config();
  cfg.queue_capacity = 0;
  EXPECT_THROW(serve::Server(net_, ws_, mode(10), mode(10), cfg), ServeError);
  cfg = base_config();
  EXPECT_THROW(serve::Server(net_, ws_, mode(0), mode(10), cfg), ServeError);
  ServingMode bad = mode(10);
  bad.choices.resize(2);  // tiny_net has 4 accelerated layers
  EXPECT_THROW(serve::Server(net_, ws_, bad, mode(10), base_config()),
               ServeError);
  try {
    serve::Server s(net_, ws_, mode(10), mode(10), cfg);
    (void)s;
  } catch (const ServeError& e) {
    FAIL() << "valid config rejected: " << e.what();
  }
}

TEST_F(ServerTest, HealthyTraceCompletesEveryRequestOnThePrimary) {
  const ArrivalTrace t = ArrivalTrace::synthetic(40, 1500, 3);
  const ServerStats s = run_once(t, base_config());
  EXPECT_TRUE(s.accounted());
  EXPECT_EQ(s.submitted, 40);
  EXPECT_EQ(s.completed, 40);
  EXPECT_EQ(s.completed_degraded, 0);
  EXPECT_EQ(s.rejected_queue_full, 0);
  EXPECT_EQ(s.shed_deadline, 0);
  EXPECT_EQ(s.failed, 0);
  EXPECT_EQ(s.retries, 0);
  EXPECT_EQ(s.breaker_opens, 0);
  EXPECT_GE(s.latency.p50(), 1000);  // at least one service time
  EXPECT_NE(s.response_hash, 0u);
}

TEST_F(ServerTest, OverloadIsRejectedAtTheQueueBoundNeverLost) {
  // One slow replica, a tiny queue, and a tight arrival burst: admission
  // control must refuse the overflow instead of queueing without bound.
  ServerConfig cfg = base_config();
  cfg.replicas = 1;
  cfg.queue_capacity = 3;
  const ArrivalTrace t = ArrivalTrace::synthetic(50, 100, 11);
  const ServerStats s = run_once(t, cfg);
  EXPECT_TRUE(s.accounted());
  EXPECT_GT(s.rejected_queue_full, 0);
  EXPECT_LE(s.queue_peak, 3);
  EXPECT_EQ(s.completed + s.rejected_queue_full, s.submitted);
}

TEST_F(ServerTest, LateRequestsAreShedAndMissesCounted) {
  ServerConfig cfg = base_config();
  cfg.replicas = 1;
  cfg.deadline_cycles = 2500;
  const ArrivalTrace t = ArrivalTrace::synthetic(50, 300, 13);
  const ServerStats s = run_once(t, cfg);
  EXPECT_TRUE(s.accounted());
  EXPECT_GT(s.shed_deadline, 0);           // shed before wasting a replica
  EXPECT_EQ(s.failed, 0);
  // Whatever completed either met the deadline or was counted as a miss.
  EXPECT_GT(s.completed, 0);
}

TEST_F(ServerTest, FaultBurstIsAbsorbedByRetriesAndTheBreaker) {
  std::vector<serve::BreakerTransition> log;
  const ServerStats s = run_once(burst_trace(), base_config(), &log);
  EXPECT_TRUE(s.accounted());
  EXPECT_EQ(s.failed, 0);  // nothing escapes: retry or downgrade covers all
  EXPECT_EQ(s.completed, s.submitted);
  EXPECT_GT(s.retries, 0);
  EXPECT_GT(s.faults_absorbed, 0);
  EXPECT_GT(s.completed_degraded, 0);  // breaker routed around the wedge
  EXPECT_GE(s.breaker_opens, 1);
  // Recovery: the breaker must end closed after the burst passes, having
  // gone open -> half-open -> closed.
  ASSERT_FALSE(log.empty());
  EXPECT_EQ(log.back().to, BreakerState::kClosed);
  EXPECT_EQ(log.back().from, BreakerState::kHalfOpen);
  bool saw_open = false;
  for (const auto& tr : log) saw_open |= tr.to == BreakerState::kOpen;
  EXPECT_TRUE(saw_open);
  EXPECT_EQ(s.breaker_closes, 1);
}

// The determinism contract (DESIGN.md §11): worker threads only change how
// fast the functional work grinds through, never any stat. Exercises every
// path at once — overload, deadlines, fault burst, retries, breaker.
TEST_F(ServerTest, StatsAreByteIdenticalForAnyWorkerCount) {
  ArrivalTrace t = burst_trace(80, 17);
  ServerConfig cfg = base_config();
  cfg.queue_capacity = 8;
  cfg.deadline_cycles = 20000;
  ServerStats first;
  std::vector<serve::BreakerTransition> first_log;
  for (const int threads : {1, 2, 8}) {
    cfg.threads = threads;
    std::vector<serve::BreakerTransition> log;
    const ServerStats s = run_once(t, cfg, &log);
    EXPECT_TRUE(s.accounted());
    if (threads == 1) {
      first = s;
      first_log = log;
      continue;
    }
    EXPECT_EQ(s, first) << "stats diverged at threads=" << threads;
    ASSERT_EQ(log.size(), first_log.size());
    for (std::size_t i = 0; i < log.size(); ++i) {
      EXPECT_EQ(log[i].cycle, first_log[i].cycle);
      EXPECT_EQ(log[i].to, first_log[i].to);
    }
  }
}

TEST_F(ServerTest, ResponseDigestDependsOnRequestPayloads) {
  ArrivalTrace a = ArrivalTrace::synthetic(10, 2000, 5);
  ArrivalTrace b = a;
  for (auto& r : b.requests) r.input_seed += 1;  // same arrivals, new inputs
  const ServerStats sa = run_once(a, base_config());
  const ServerStats sb = run_once(b, base_config());
  EXPECT_EQ(sa.completed, sb.completed);
  EXPECT_NE(sa.response_hash, sb.response_hash);
}

TEST_F(ServerTest, RejectsTracesWithNonDenseIds) {
  ArrivalTrace t = ArrivalTrace::synthetic(4, 100, 1);
  t.requests[2].id = 9;
  serve::Server s(net_, ws_, mode(1000), mode(1600), base_config());
  EXPECT_THROW((void)s.run(t), ServeError);
}

// ---------------------------------------------- pipeline hooks (satellites) --
class PipelineHookTest : public ::testing::Test {
 protected:
  nn::Network net_ = nn::tiny_net(4, 16);
  nn::WeightStore ws_ = nn::WeightStore::deterministic(net_, 21);
  nn::Tensor input_{net_[0].out};

  void SetUp() override { nn::fill_deterministic(input_, 22); }
};

TEST_F(PipelineHookTest, ResetIsIdempotentAndRestoresCorruptedConstants) {
  FusionPipeline pipe(net_, ws_);
  const nn::Tensor golden = pipe.run(input_);

  FaultPlan p;
  p.seed = 3;
  p.weight_panel_flip_rate = 1.0;
  pipe.install_fault_plan(p);  // detectors off: resident panels corrupt
  EXPECT_NE(pipe.run(input_), golden);
  pipe.clear_fault_plan();

  pipe.reset();
  const nn::Tensor once = pipe.run(input_);
  EXPECT_EQ(once, golden);
  pipe.reset();
  pipe.reset();  // idempotent: twice leaves the same state as once
  EXPECT_EQ(pipe.run(input_), golden);
}

TEST_F(PipelineHookTest, ResetWithPlanInstalledRestrikesDeterministically) {
  FusionPipeline pipe(net_, ws_);
  const nn::Tensor golden = pipe.run(input_);
  FaultPlan p;
  p.seed = 3;
  p.weight_panel_flip_rate = 1.0;
  pipe.install_fault_plan(p);
  const nn::Tensor struck = pipe.run(input_);
  pipe.reset();  // models "reload the accelerator", faults re-strike
  EXPECT_EQ(pipe.run(input_), struck);
  EXPECT_NE(struck, golden);
  pipe.clear_fault_plan();
}

TEST_F(PipelineHookTest, ResetRearmsAMidBatchWedgeForReuse) {
  FusionPipeline pipe(net_, ws_);
  const nn::Tensor golden = pipe.run(input_);

  FaultPlan wedge;
  wedge.seed = 1;
  wedge.wedge_channel = 0;
  wedge.wedge_after_pushes = 2;
  pipe.install_fault_plan(wedge, ProtectionConfig::all_on());
  EXPECT_THROW((void)pipe.run(input_), FaultError);
  pipe.clear_fault_plan();
  pipe.reset();

  // The same pipeline object is reusable mid-batch after the wedge: a
  // multi-image batch comes back bit-exact against the healthy run.
  const std::vector<nn::Tensor> batch(3, input_);
  const auto outs = pipe.run_batch(batch, 2);
  ASSERT_EQ(outs.size(), 3u);
  for (const auto& o : outs) EXPECT_EQ(o, golden);
  EXPECT_EQ(pipe.run(input_), golden);
}

TEST_F(PipelineHookTest, CancelTokenAbandonsTheRunWithATypedError) {
  FusionPipeline pipe(net_, ws_);
  const std::atomic<bool> cancelled{true};
  pipe.set_cancel_token(&cancelled);
  try {
    (void)pipe.run(input_);
    FAIL() << "cancelled run completed";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.reason(), ServeError::Reason::kCancelled);
    EXPECT_EQ(e.exit_code(), 5);
  }
  pipe.set_cancel_token(nullptr);
  EXPECT_NO_THROW((void)pipe.run(input_));
}

TEST_F(PipelineHookTest, WedgeEscalationCarriesStageAndChannelIdentity) {
  FusionPipeline pipe(net_, ws_);
  FaultPlan p;
  p.seed = 1;
  p.wedge_channel = 0;
  p.wedge_after_pushes = 3;
  pipe.install_fault_plan(p, ProtectionConfig::all_on());
  try {
    (void)pipe.run(input_);
    FAIL() << "wedged pipeline completed";
  } catch (const FaultError& e) {
    EXPECT_EQ(e.stage(), net_[1].name);
    EXPECT_EQ(e.unit(), 0);  // the wedged channel
  }
  // The injector kept the first unrecovered fault's identity for reports.
  const auto fs = pipe.fault_stats();
  EXPECT_TRUE(fs.first_unrecovered.valid);
  EXPECT_EQ(fs.first_unrecovered.site, fault::FaultSite::kFifoPush);
  EXPECT_EQ(fs.first_unrecovered.stream, 0u);
  EXPECT_FALSE(fs.first_unrecovered.describe().empty());
  pipe.clear_fault_plan();
}

TEST(DdrFailurePayload, UnrecoveredBurstsCarryFullIdentity) {
  arch::DdrTrace trace;
  trace.transactions.push_back(
      {arch::DdrOp::kLoadWeights, 2, "conv1-w", 64 * 1024, 0, 100});
  trace.total_cycles = 100;
  FaultPlan p;
  p.seed = 4;
  p.ddr_burst_flip_rate = 1.0;  // every burst and every re-read is hit
  const fault::FaultInjector inj(p);
  const auto dev = fpga::zc706();
  const auto rep = arch::replay_trace_with_faults(trace, dev, inj,
                                                  ProtectionConfig::all_on());
  ASSERT_GT(rep.unrecovered, 0);
  ASSERT_EQ(rep.failures.size(), static_cast<std::size_t>(rep.unrecovered));
  const auto& f = rep.failures.front();
  EXPECT_EQ(f.transaction, 0u);
  EXPECT_EQ(f.group, 2u);
  EXPECT_EQ(f.what, "conv1-w");
  EXPECT_EQ(f.attempts, ProtectionConfig::all_on().retry_limit);
  const FaultError err = f.to_error();
  EXPECT_EQ(err.category(), ErrorCategory::kFault);
  EXPECT_EQ(err.stage(), "conv1-w");
  EXPECT_EQ(err.unit(), f.burst);
  EXPECT_EQ(err.attempts(), f.attempts);
  EXPECT_NE(std::string(err.what()).find("unrecovered"), std::string::npos);
}

}  // namespace
}  // namespace hetacc
