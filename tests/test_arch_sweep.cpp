// Property-style sweep: every streaming engine geometry the architecture
// claims to support must match the reference executor bit-for-bit (float)
// through the full line-buffer machinery.

#include <gtest/gtest.h>

#include "arch/pipeline.h"
#include "nn/reference.h"

namespace hetacc::arch {
namespace {

using fpga::ConvAlgo;
using nn::Network;
using nn::Tensor;
using nn::WeightStore;

struct ConvEngineCase {
  int in_c, out_c, h, w, k, stride, pad;
  ConvAlgo algo;
  int wino_m;
};

class ConvEngineSweep : public ::testing::TestWithParam<ConvEngineCase> {};

TEST_P(ConvEngineSweep, StreamedConvMatchesReference) {
  const auto p = GetParam();
  Network net("sweep");
  net.input({p.in_c, p.h, p.w});
  net.conv(p.out_c, p.k, p.stride, p.pad, "c");
  const WeightStore ws = WeightStore::deterministic(net, 101);
  Tensor in(net[0].out);
  nn::fill_deterministic(in, 102);
  const Tensor ref = nn::run_network(net, ws, in);
  FusionPipeline pipe(net, ws, {LayerChoice{p.algo, p.wino_m, {}}});
  const Tensor got = pipe.run(in);
  ASSERT_EQ(got.shape(), ref.shape());
  EXPECT_LT(got.max_abs_diff(ref), 5e-4f);
}

INSTANTIATE_TEST_SUITE_P(
    Conventional, ConvEngineSweep,
    ::testing::Values(
        ConvEngineCase{1, 1, 5, 5, 1, 1, 0, ConvAlgo::kConventional, 4},
        ConvEngineCase{2, 3, 8, 8, 3, 1, 0, ConvAlgo::kConventional, 4},
        ConvEngineCase{2, 3, 8, 8, 3, 1, 1, ConvAlgo::kConventional, 4},
        ConvEngineCase{2, 3, 8, 8, 3, 1, 2, ConvAlgo::kConventional, 4},
        ConvEngineCase{3, 2, 9, 7, 3, 2, 1, ConvAlgo::kConventional, 4},
        ConvEngineCase{2, 2, 11, 11, 5, 1, 2, ConvAlgo::kConventional, 4},
        ConvEngineCase{2, 2, 11, 11, 5, 2, 0, ConvAlgo::kConventional, 4},
        ConvEngineCase{3, 4, 15, 15, 7, 3, 0, ConvAlgo::kConventional, 4},
        ConvEngineCase{3, 2, 23, 23, 11, 4, 0, ConvAlgo::kConventional, 4},
        ConvEngineCase{4, 4, 6, 18, 3, 1, 1, ConvAlgo::kConventional, 4}),
    [](const auto& info) {
      const auto& p = info.param;
      return "k" + std::to_string(p.k) + "s" + std::to_string(p.stride) +
             "p" + std::to_string(p.pad) + "_" + std::to_string(p.h) + "x" +
             std::to_string(p.w) + "_c" + std::to_string(p.in_c) + "n" +
             std::to_string(p.out_c);
    });

INSTANTIATE_TEST_SUITE_P(
    Winograd, ConvEngineSweep,
    ::testing::Values(
        ConvEngineCase{2, 3, 8, 8, 3, 1, 1, ConvAlgo::kWinograd, 2},
        ConvEngineCase{2, 3, 8, 8, 3, 1, 1, ConvAlgo::kWinograd, 4},
        ConvEngineCase{2, 3, 8, 8, 3, 1, 1, ConvAlgo::kWinograd, 6},
        ConvEngineCase{3, 2, 13, 9, 3, 1, 0, ConvAlgo::kWinograd, 4},
        ConvEngineCase{2, 2, 10, 10, 3, 1, 2, ConvAlgo::kWinograd, 4},
        ConvEngineCase{2, 2, 12, 12, 5, 1, 2, ConvAlgo::kWinograd, 2},
        ConvEngineCase{2, 2, 12, 12, 5, 1, 2, ConvAlgo::kWinograd, 4},
        ConvEngineCase{1, 1, 7, 7, 3, 1, 1, ConvAlgo::kWinograd, 4},
        ConvEngineCase{2, 2, 17, 17, 7, 1, 3, ConvAlgo::kWinograd, 2},
        ConvEngineCase{4, 4, 4, 4, 3, 1, 1, ConvAlgo::kWinograd, 6}),
    [](const auto& info) {
      const auto& p = info.param;
      return "m" + std::to_string(p.wino_m) + "_k" + std::to_string(p.k) +
             "p" + std::to_string(p.pad) + "_" + std::to_string(p.h) + "x" +
             std::to_string(p.w) + "_c" + std::to_string(p.in_c) + "n" +
             std::to_string(p.out_c);
    });

struct PoolEngineCase {
  int c, h, w, k, stride;
  nn::PoolMethod method;
};

class PoolEngineSweep : public ::testing::TestWithParam<PoolEngineCase> {};

TEST_P(PoolEngineSweep, StreamedPoolMatchesReference) {
  const auto p = GetParam();
  Network net("pool-sweep");
  net.input({p.c, p.h, p.w});
  if (p.method == nn::PoolMethod::kMax) {
    net.max_pool(p.k, p.stride, "p");
  } else {
    net.avg_pool(p.k, p.stride, "p");
  }
  const WeightStore ws = WeightStore::deterministic(net, 103);
  Tensor in(net[0].out);
  nn::fill_deterministic(in, 104);
  const Tensor ref = nn::run_network(net, ws, in);
  FusionPipeline pipe(net, ws);
  const Tensor got = pipe.run(in);
  EXPECT_LT(got.max_abs_diff(ref), 1e-6f);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, PoolEngineSweep,
    ::testing::Values(PoolEngineCase{2, 8, 8, 2, 2, nn::PoolMethod::kMax},
                      PoolEngineCase{3, 9, 9, 3, 2, nn::PoolMethod::kMax},
                      PoolEngineCase{3, 7, 7, 3, 2, nn::PoolMethod::kMax},
                      PoolEngineCase{2, 10, 6, 2, 2, nn::PoolMethod::kAverage},
                      PoolEngineCase{4, 9, 9, 3, 3, nn::PoolMethod::kAverage},
                      PoolEngineCase{1, 13, 13, 3, 2, nn::PoolMethod::kMax},
                      PoolEngineCase{2, 5, 5, 5, 5, nn::PoolMethod::kMax}),
    [](const auto& info) {
      const auto& p = info.param;
      return std::string(p.method == nn::PoolMethod::kMax ? "max" : "avg") +
             "_k" + std::to_string(p.k) + "s" + std::to_string(p.stride) +
             "_" + std::to_string(p.h) + "x" + std::to_string(p.w) + "_c" +
             std::to_string(p.c);
    });

class LrnEngineSweep : public ::testing::TestWithParam<int> {};

TEST_P(LrnEngineSweep, StreamedLrnMatchesReference) {
  const int local = GetParam();
  Network net("lrn-sweep");
  net.input({16, 6, 6});
  net.lrn(local, 2e-4f, 0.75f, "l");
  const WeightStore ws = WeightStore::deterministic(net, 105);
  Tensor in(net[0].out);
  nn::fill_deterministic(in, 106);
  const Tensor ref = nn::run_network(net, ws, in);
  FusionPipeline pipe(net, ws);
  const Tensor got = pipe.run(in);
  EXPECT_LT(got.max_abs_diff(ref), 1e-5f);
}

INSTANTIATE_TEST_SUITE_P(WindowSizes, LrnEngineSweep,
                         ::testing::Values(1, 3, 5, 7, 9));

TEST(DeepFusionSweep, EightLayerGroupMatchesReference) {
  // The paper's maximum group depth (8) streamed end to end.
  Network net("deep");
  net.input({2, 40, 40});
  net.conv(4, 3, 1, 1, "c1");
  net.conv(4, 3, 1, 1, "c2");
  net.max_pool(2, 2, "p1");
  net.conv(8, 3, 1, 1, "c3");
  net.lrn(5, 1e-4f, 0.75f, "n1");
  net.conv(8, 3, 1, 1, "c4");
  net.max_pool(2, 2, "p2");
  net.conv(8, 3, 1, 1, "c5");
  const WeightStore ws = WeightStore::deterministic(net, 107);
  Tensor in(net[0].out);
  nn::fill_deterministic(in, 108);
  const Tensor ref = nn::run_network(net, ws, in);
  std::vector<LayerChoice> ch(8);
  ch[1].algo = ConvAlgo::kWinograd;
  ch[3].algo = ConvAlgo::kWinograd;
  ch[5].algo = ConvAlgo::kWinograd;
  ch[5].wino_m = 2;
  ch[7].algo = ConvAlgo::kWinograd;
  ch[7].wino_m = 6;
  FusionPipeline pipe(net, ws, ch);
  const Tensor got = pipe.run(in);
  EXPECT_LT(got.max_abs_diff(ref), 5e-3f);
}

TEST(DeepFusionSweep, MixedTileSizesInOnePipeline) {
  Network net("tiles");
  net.input({3, 24, 24});
  net.conv(4, 3, 1, 1, "a");
  net.conv(4, 3, 1, 1, "b");
  net.conv(4, 3, 1, 1, "c");
  const WeightStore ws = WeightStore::deterministic(net, 109);
  Tensor in(net[0].out);
  nn::fill_deterministic(in, 110);
  const Tensor ref = nn::run_network(net, ws, in);
  std::vector<LayerChoice> ch(3);
  ch[0] = {ConvAlgo::kWinograd, 2, {}};
  ch[1] = {ConvAlgo::kWinograd, 4, {}};
  ch[2] = {ConvAlgo::kWinograd, 6, {}};
  FusionPipeline pipe(net, ws, ch);
  const Tensor got = pipe.run(in);
  EXPECT_LT(got.max_abs_diff(ref), 2e-3f);
}

}  // namespace
}  // namespace hetacc::arch
