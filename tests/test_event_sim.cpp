#include "arch/event_sim.h"

#include <gtest/gtest.h>

#include "arch/pipeline.h"
#include "nn/model_zoo.h"

namespace hetacc::arch {
namespace {

using fpga::ConvAlgo;
using fpga::EngineModel;

class EventSimTest : public ::testing::Test {
 protected:
  fpga::Device dev_ = fpga::zc706();
  EngineModel model_{dev_};

  std::vector<fpga::Implementation> impls_for(const nn::Network& net,
                                              bool winograd) {
    std::vector<fpga::Implementation> impls;
    for (std::size_t i = 1; i < net.size(); ++i) {
      fpga::EngineConfig cfg;
      if (net[i].kind == nn::LayerKind::kConv) {
        cfg.algo = (winograd && EngineModel::winograd_ok(net[i]))
                       ? ConvAlgo::kWinograd
                       : ConvAlgo::kConventional;
        cfg.tn = 2;
        cfg.tm = 4;
      } else {
        cfg.algo = ConvAlgo::kNone;
        cfg.tn = 2;
      }
      impls.push_back(model_.implement(net[i], cfg));
    }
    return impls;
  }
};

TEST_F(EventSimTest, CompletesAndTracksOccupancy) {
  const nn::Network net = nn::tiny_net(4, 32);
  const auto impls = impls_for(net, false);
  const auto r = simulate_dataflow(net, 1, net.size() - 1, impls, dev_, 16);
  ASSERT_TRUE(r.completed);
  EXPECT_GT(r.makespan_cycles, 0);
  ASSERT_EQ(r.fifo_max_occupancy.size(), net.size());
  for (std::size_t k = 1; k + 1 < r.fifo_max_occupancy.size(); ++k) {
    EXPECT_LE(r.fifo_max_occupancy[k], 16u);
  }
}

TEST_F(EventSimTest, UnboundedMatchesScheduleRecurrenceClosely) {
  const nn::Network net = nn::conv_chain(4, 16, 48);
  const auto impls = impls_for(net, false);
  const auto ev =
      simulate_dataflow(net, 1, net.size() - 1, impls, dev_, SIZE_MAX / 2);
  const auto sched = simulate_schedule(net, 1, net.size() - 1, impls, dev_);
  ASSERT_TRUE(ev.completed);
  const double ratio = static_cast<double>(ev.makespan_cycles) /
                       static_cast<double>(sched.makespan_cycles);
  EXPECT_GT(ratio, 0.7);
  EXPECT_LT(ratio, 1.4);
}

TEST_F(EventSimTest, DeeperFifosNeverSlower) {
  const nn::Network net = nn::tiny_net(8, 32);
  const auto impls = impls_for(net, true);
  long long prev = -1;
  for (std::size_t cap : {4u, 8u, 32u, 256u}) {
    const auto r = simulate_dataflow(net, 1, net.size() - 1, impls, dev_, cap);
    ASSERT_TRUE(r.completed) << cap;
    if (prev >= 0) {
      EXPECT_LE(r.makespan_cycles, prev + prev / 50) << cap;
    }
    prev = (prev < 0) ? r.makespan_cycles : std::min(prev, r.makespan_cycles);
  }
}

TEST_F(EventSimTest, WinogradBurstNeedsBlockDeepFifo) {
  // An F(4x4,3x3) engine retires 4 rows per tile pass: capacity < 4 on its
  // output channel deadlocks the row-granular dataflow.
  nn::Network net("w");
  net.input({4, 24, 24});
  net.conv(4, 3, 1, 1, "c1");
  net.conv(4, 3, 1, 1, "c2");
  std::vector<fpga::Implementation> impls;
  impls.push_back(
      model_.implement(net[1], {ConvAlgo::kWinograd, 1, 2, 1, 4}));
  impls.push_back(
      model_.implement(net[2], {ConvAlgo::kConventional, 2, 2, 1, 4}));
  const auto shallow = simulate_dataflow(net, 1, 2, impls, dev_, 3);
  EXPECT_FALSE(shallow.completed);
  const auto ok = simulate_dataflow(net, 1, 2, impls, dev_, 4);
  EXPECT_TRUE(ok.completed);
}

TEST_F(EventSimTest, MinimalDepthFindsSmallValue) {
  const nn::Network net = nn::tiny_net(4, 32);
  const auto impls = impls_for(net, true);
  const std::size_t depth =
      minimal_fifo_depth_rows(net, 1, net.size() - 1, impls, dev_);
  EXPECT_GE(depth, 1u);
  EXPECT_LE(depth, 64u);
  // And the chosen depth indeed lands within tolerance of unbounded.
  const auto bounded =
      simulate_dataflow(net, 1, net.size() - 1, impls, dev_, depth);
  const auto unbounded =
      simulate_dataflow(net, 1, net.size() - 1, impls, dev_, SIZE_MAX / 2);
  ASSERT_TRUE(bounded.completed);
  EXPECT_LE(static_cast<double>(bounded.makespan_cycles),
            1.021 * static_cast<double>(unbounded.makespan_cycles));
}

TEST_F(EventSimTest, StallCyclesDropWithCapacity) {
  const nn::Network net = nn::conv_chain(3, 8, 32);
  const auto impls = impls_for(net, true);
  const auto tight = simulate_dataflow(net, 1, 3, impls, dev_, 4);
  const auto roomy = simulate_dataflow(net, 1, 3, impls, dev_, 128);
  ASSERT_TRUE(tight.completed);
  ASSERT_TRUE(roomy.completed);
  EXPECT_GE(tight.producer_stall_cycles, roomy.producer_stall_cycles);
}

TEST_F(EventSimTest, InvalidArgsThrow) {
  const nn::Network net = nn::tiny_net(4, 16);
  const auto impls = impls_for(net, false);
  EXPECT_THROW(
      (void)simulate_dataflow(net, 1, net.size() - 1, impls, dev_, 0),
      std::invalid_argument);
  EXPECT_THROW((void)simulate_dataflow(net, 2, 1, impls, dev_, 4),
               std::invalid_argument);
}

}  // namespace
}  // namespace hetacc::arch
