#include "algo/fft.h"

#include <cmath>

#include <gtest/gtest.h>

#include "algo/winograd_conv.h"
#include "nn/reference.h"

namespace hetacc::algo {
namespace {

TEST(Fft, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(17), 32u);
  EXPECT_EQ(next_pow2(1024), 1024u);
}

TEST(Fft, ForwardInverseRoundTrip) {
  std::vector<Complex> a(64);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = Complex(std::sin(0.37 * i), std::cos(1.1 * i));
  }
  const auto orig = a;
  fft(a, false);
  fft(a, true);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i].real(), orig[i].real(), 1e-9);
    EXPECT_NEAR(a[i].imag(), orig[i].imag(), 1e-9);
  }
}

TEST(Fft, ImpulseHasFlatSpectrum) {
  std::vector<Complex> a(16);
  a[0] = 1.0;
  fft(a, false);
  for (const auto& x : a) {
    EXPECT_NEAR(x.real(), 1.0, 1e-12);
    EXPECT_NEAR(x.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, DcSignal) {
  std::vector<Complex> a(8, Complex(2.0, 0.0));
  fft(a, false);
  EXPECT_NEAR(a[0].real(), 16.0, 1e-12);
  for (std::size_t i = 1; i < a.size(); ++i) {
    EXPECT_NEAR(std::abs(a[i]), 0.0, 1e-12);
  }
}

TEST(Fft, ParsevalEnergyConservation) {
  std::vector<Complex> a(128);
  std::uint32_t s = 7;
  auto rnd = [&] {
    s ^= s << 13; s ^= s >> 17; s ^= s << 5;
    return static_cast<double>(s % 1000) / 500.0 - 1.0;
  };
  double time_energy = 0;
  for (auto& x : a) {
    x = Complex(rnd(), rnd());
    time_energy += std::norm(x);
  }
  fft(a, false);
  double freq_energy = 0;
  for (const auto& x : a) freq_energy += std::norm(x);
  EXPECT_NEAR(freq_energy / a.size(), time_energy, 1e-6);
}

TEST(Fft, NonPowerOfTwoThrows) {
  std::vector<Complex> a(6);
  EXPECT_THROW(fft(a, false), std::invalid_argument);
}

TEST(Fft2d, RoundTrip) {
  std::vector<Complex> a(8 * 16);
  for (std::size_t i = 0; i < a.size(); ++i) a[i] = Complex(std::sin(0.1 * i), 0);
  const auto orig = a;
  fft2d(a, 8, 16, false);
  fft2d(a, 8, 16, true);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i].real(), orig[i].real(), 1e-9);
  }
}

TEST(Fft2d, SizeMismatchThrows) {
  std::vector<Complex> a(8);
  EXPECT_THROW(fft2d(a, 2, 8, false), std::invalid_argument);
}

TEST(FftConvolve, MatchesDirectLinearConvolution) {
  const std::vector<double> a{1, 2, 3, -1, 0.5};
  const std::vector<double> b{0.25, -0.5, 2};
  const auto got = fft_convolve(a, b);
  ASSERT_EQ(got.size(), a.size() + b.size() - 1);
  for (std::size_t i = 0; i < got.size(); ++i) {
    double direct = 0;
    for (std::size_t j = 0; j < b.size(); ++j) {
      if (i >= j && i - j < a.size()) direct += a[i - j] * b[j];
    }
    EXPECT_NEAR(got[i], direct, 1e-9) << i;
  }
}

struct FftConvCase {
  int c, n, h, w, k, pad;
};

class FftConvSweep : public ::testing::TestWithParam<FftConvCase> {};

TEST_P(FftConvSweep, MatchesDirectConvolution) {
  const auto p = GetParam();
  nn::Tensor in(p.c, p.h, p.w);
  nn::fill_deterministic(in, 61);
  nn::FilterBank f(p.n, p.c, p.k);
  nn::fill_deterministic(f, 62);
  std::vector<float> bias(static_cast<std::size_t>(p.n));
  nn::fill_deterministic(bias, 63);
  const nn::Tensor direct = nn::conv_reference(in, f, bias, 1, p.pad, true);
  const nn::Tensor viafft = conv_fft(in, f, bias, p.pad, true);
  ASSERT_EQ(viafft.shape(), direct.shape());
  EXPECT_LT(viafft.max_abs_diff(direct), 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, FftConvSweep,
    ::testing::Values(FftConvCase{1, 1, 8, 8, 3, 1},
                      FftConvCase{3, 4, 16, 16, 3, 1},
                      FftConvCase{2, 3, 12, 10, 5, 2},
                      FftConvCase{4, 2, 9, 9, 3, 0},
                      FftConvCase{2, 2, 14, 14, 7, 3},
                      FftConvCase{1, 1, 31, 17, 11, 0}),
    [](const auto& info) {
      const auto& p = info.param;
      return "c" + std::to_string(p.c) + "n" + std::to_string(p.n) + "_" +
             std::to_string(p.h) + "x" + std::to_string(p.w) + "_k" +
             std::to_string(p.k) + "p" + std::to_string(p.pad);
    });

TEST(FftConv, KernelTooLargeThrows) {
  nn::Tensor in(1, 4, 4);
  nn::FilterBank f(1, 1, 7);
  EXPECT_THROW((void)conv_fft(in, f, {}, 0, false), std::invalid_argument);
}

TEST(FftMults, SmallKernelsFavorWinogradLargeFavorFft) {
  // The framework's rationale for offering several algorithms: relative
  // multiplication cost depends on geometry. For a 3x3 on a large map, FFT
  // spends far more multiplications than Winograd F(4,3); its relative cost
  // falls as the kernel grows (FFT cost is kernel-independent).
  const WinogradTransform f43 = winograd_f4x3();
  const long long wino3 = winograd_layer_mults(f43, 64, 64, 56, 56);
  const long long fft3 = fft_layer_mults(64, 64, 56, 56, 3, 1);
  EXPECT_GT(fft3, wino3);

  const long long direct11 = 64ll * 64 * 11 * 11 * 46 * 46;
  const long long fft11 = fft_layer_mults(64, 64, 56, 56, 11, 0);
  const double fft_ratio_3 =
      static_cast<double>(fft3) / static_cast<double>(64ll * 64 * 9 * 56 * 56);
  const double fft_ratio_11 =
      static_cast<double>(fft11) / static_cast<double>(direct11);
  EXPECT_LT(fft_ratio_11, fft_ratio_3);
}

}  // namespace
}  // namespace hetacc::algo
