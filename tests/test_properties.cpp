// Cross-cutting property tests: every model-zoo layer must be
// implementable, candidate sets must be self-consistent, the DP must be
// invariant to equivalent formulations, and the power model monotone.

#include <gtest/gtest.h>

#include "arch/pipeline.h"
#include "core/dp_optimizer.h"
#include "fpga/power.h"
#include "nn/model_zoo.h"

namespace hetacc {
namespace {

using fpga::ConvAlgo;
using fpga::EngineModel;

class ZooLayerSweep
    : public ::testing::TestWithParam<const char*> {
 protected:
  static nn::Network net_for(const std::string& name) {
    if (name == "alexnet") return nn::alexnet_accel();
    if (name == "vgg-e") return nn::vgg_e().accelerated_portion();
    if (name == "nin") return nn::nin().accelerated_portion();
    return nn::modular_net(4);
  }
};

TEST_P(ZooLayerSweep, EveryLayerHasImplementableCandidates) {
  const nn::Network net = net_for(GetParam());
  const EngineModel model(fpga::zc706());
  for (std::size_t i = 1; i < net.size(); ++i) {
    const auto cands = model.candidates(net[i]);
    ASSERT_FALSE(cands.empty()) << net[i].name;
    for (const auto& cfg : cands) {
      const auto ipl = model.implement(net[i], cfg);
      EXPECT_GT(ipl.compute_cycles, 0) << net[i].name;
      EXPECT_GE(ipl.res.dsp, 0);
      EXPECT_GE(ipl.res.bram18k, 0);
      EXPECT_GT(ipl.res.lut, 0);
      EXPECT_GE(ipl.fill_cycles, 0);
    }
  }
}

TEST_P(ZooLayerSweep, CandidateMultCountsMatchStaticFormula) {
  const nn::Network net = net_for(GetParam());
  const EngineModel model(fpga::zc706());
  for (std::size_t i = 1; i < net.size(); ++i) {
    for (const auto& cfg : model.candidates(net[i])) {
      const auto ipl = model.implement(net[i], cfg);
      EXPECT_EQ(ipl.mults_performed, EngineModel::algo_mults(net[i], cfg))
          << net[i].name;
    }
  }
}

TEST_P(ZooLayerSweep, SingleLayerGroupsAlwaysFeasibleOnBigDevice) {
  const nn::Network net = net_for(GetParam());
  const EngineModel model(fpga::vx690t());
  for (std::size_t i = 1; i < net.size(); ++i) {
    EXPECT_TRUE(core::fuse_group(net, i, i, model).has_value())
        << net[i].name;
  }
}

INSTANTIATE_TEST_SUITE_P(Networks, ZooLayerSweep,
                         ::testing::Values("alexnet", "vgg-e", "nin",
                                           "modular"),
                         [](const auto& info) { return std::string(info.param) == "vgg-e" ? "vgg_e" : std::string(info.param); });

TEST(DpInvariance, IntervalMatchesPrefixOnAlexNetWithForcedSplits) {
  // 10 layers with group cap 8: the structure must split; both DP
  // formulations must find the same optimum.
  const nn::Network net = nn::alexnet_accel();
  const EngineModel model(fpga::zc706());
  core::OptimizerOptions o;
  o.balance = false;
  o.transfer_budget_bytes = 8ll * 1024 * 1024;
  o.transfer_unit_bytes = 64 * 1024;  // coarse units keep Alg. 1 fast
  const auto fast = core::optimize(net, model, o);
  const auto paper = core::optimize_interval(net, model, o);
  ASSERT_TRUE(fast.feasible);
  ASSERT_TRUE(paper.feasible);
  EXPECT_EQ(fast.strategy.latency_cycles(), paper.strategy.latency_cycles());
  EXPECT_GE(fast.strategy.groups.size(), 2u);
}

TEST(DpInvariance, UnitGranularityChangesBudgetNotOptimum) {
  // With a budget far above any partition's need, the unit size is moot.
  const nn::Network net = nn::tiny_net(8, 32);
  const EngineModel model(fpga::zc706());
  long long prev = -1;
  for (long long unit : {1024, 10 * 1024, 100 * 1024}) {
    core::OptimizerOptions o;
    o.balance = false;
    o.transfer_budget_bytes = 64ll * 1024 * 1024;
    o.transfer_unit_bytes = unit;
    const auto r = core::optimize(net, model, o);
    ASSERT_TRUE(r.feasible);
    if (prev >= 0) {
      EXPECT_EQ(r.strategy.latency_cycles(), prev);
    }
    prev = r.strategy.latency_cycles();
  }
}

TEST(PowerModel, MonotoneInEveryResourceClass) {
  const fpga::Device dev = fpga::zc706();
  const fpga::ResourceVector base{100, 100, 50000, 40000};
  const double p0 = estimate_power(dev, base, 0.7).total();
  for (int cls = 0; cls < 4; ++cls) {
    fpga::ResourceVector more = base;
    switch (cls) {
      case 0: more.bram18k += 200; break;
      case 1: more.dsp += 200; break;
      case 2: more.ff += 100000; break;
      case 3: more.lut += 80000; break;
    }
    EXPECT_GT(fpga::estimate_power(dev, more, 0.7).total(), p0) << cls;
  }
}

TEST(PowerModel, UtilizationMonotone) {
  const fpga::Device dev = fpga::zc706();
  const fpga::ResourceVector r{300, 500, 150000, 120000};
  double prev = 0.0;
  for (double u : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const double p = fpga::estimate_power(dev, r, u).total();
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(BalancerProperty, Idempotent) {
  const nn::Network head = nn::vgg_e_head();
  const EngineModel model(fpga::zc706());
  core::OptimizerOptions o;
  o.transfer_budget_bytes = 4ll * 1024 * 1024;
  auto r = core::optimize(head, model, o);
  ASSERT_TRUE(r.feasible);
  const auto once = r.strategy;
  core::balance_strategy(r.strategy, head, model);
  EXPECT_EQ(r.strategy.latency_cycles(), once.latency_cycles());
  EXPECT_EQ(r.strategy.peak_resources().dsp, once.peak_resources().dsp);
}

TEST(EngineModelProperty, MoreEfficiencyNeverSlower) {
  const nn::Network head = nn::vgg_e_head();
  fpga::EngineModelParams lo, hi;
  lo.compute_efficiency = 0.7;
  hi.compute_efficiency = 0.95;
  const EngineModel m_lo(fpga::zc706(), lo);
  const EngineModel m_hi(fpga::zc706(), hi);
  const fpga::EngineConfig cfg{ConvAlgo::kWinograd, 1, 8, 1, 4};
  EXPECT_GT(m_lo.implement(head[2], cfg).compute_cycles,
            m_hi.implement(head[2], cfg).compute_cycles);
}

TEST(EngineModelProperty, FillIndependentOfParallelism) {
  const nn::Network head = nn::vgg_e_head();
  const EngineModel model(fpga::zc706());
  const auto a =
      model.implement(head[2], {ConvAlgo::kConventional, 1, 1, 1, 4});
  const auto b =
      model.implement(head[2], {ConvAlgo::kConventional, 8, 8, 9, 4});
  EXPECT_EQ(a.fill_cycles, b.fill_cycles);
}

TEST(ScheduleProperty, MakespanMonotoneInBandwidth) {
  const nn::Network net = nn::tiny_net(8, 64);
  fpga::Device slow = fpga::zc706();
  slow.bandwidth_bytes_per_s = 0.5e9;
  fpga::Device fast = fpga::zc706();
  const EngineModel model(fast);
  std::vector<fpga::Implementation> impls;
  for (std::size_t i = 1; i < net.size(); ++i) {
    fpga::EngineConfig cfg;
    cfg.algo = net[i].kind == nn::LayerKind::kConv
                   ? ConvAlgo::kConventional
                   : ConvAlgo::kNone;
    cfg.tn = 2;
    cfg.tm = 2;
    impls.push_back(model.implement(net[i], cfg));
  }
  const auto s = arch::simulate_schedule(net, 1, net.size() - 1, impls, slow);
  const auto f = arch::simulate_schedule(net, 1, net.size() - 1, impls, fast);
  EXPECT_GE(s.makespan_cycles, f.makespan_cycles);
}

}  // namespace
}  // namespace hetacc
