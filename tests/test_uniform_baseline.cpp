#include "baseline/uniform.h"

#include <gtest/gtest.h>

#include "core/dp_optimizer.h"
#include "nn/model_zoo.h"

namespace hetacc::baseline {
namespace {

class UniformBaselineTest : public ::testing::Test {
 protected:
  nn::Network head_ = nn::vgg_e_head();
  fpga::EngineModel model_{fpga::zc706()};
};

TEST_F(UniformBaselineTest, ProducesFeasibleDesign) {
  const auto d = design_uniform(head_, model_);
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(d->resources.fits_in(model_.device().capacity));
  EXPECT_GT(d->tn * d->tm, 1);
  EXPECT_GT(d->latency_cycles, 0);
  EXPECT_EQ(d->layer_cycles.size(), head_.size() - 1);
}

TEST_F(UniformBaselineTest, TransferIsTheFullUnfusedTraffic) {
  const auto d = design_uniform(head_, model_);
  ASSERT_TRUE(d.has_value());
  long long expected = 0;
  for (std::size_t i = 1; i < head_.size(); ++i) {
    expected += core::min_transfer_bytes(head_, i, i, 2);
  }
  EXPECT_EQ(d->transfer_bytes, expected);
}

TEST_F(UniformBaselineTest, HeterogeneousFusedBeatsUniform) {
  // The full §2.2 story: our design > tile-fused [1] > uniform [27]-style
  // in latency on the VGG head... at least ours must beat uniform clearly.
  const auto uniform = design_uniform(head_, model_);
  ASSERT_TRUE(uniform.has_value());
  core::OptimizerOptions oo;
  oo.transfer_budget_bytes = 4ll * 1024 * 1024;
  const auto ours = core::optimize(head_, model_, oo);
  ASSERT_TRUE(ours.feasible);
  EXPECT_LT(ours.strategy.latency_cycles(), uniform->latency_cycles);
}

TEST_F(UniformBaselineTest, UniformUnrollWastesOnMismatchedLayers) {
  // The chosen (tn, tm) cannot divide every layer's channels on AlexNet
  // (3, 96, 256, 384 in-channels): total cycles exceed the sum of per-layer
  // ideal engines by a measurable factor.
  const nn::Network alex = nn::alexnet_accel();
  const auto d = design_uniform(alex, model_);
  ASSERT_TRUE(d.has_value());
  double per_layer_ideal = 0;
  for (std::size_t i = 1; i < alex.size(); ++i) {
    if (alex[i].kind != nn::LayerKind::kConv) continue;
    per_layer_ideal += static_cast<double>(alex[i].mults()) /
                       (static_cast<double>(d->tn) * d->tm * 0.9);
  }
  EXPECT_GT(static_cast<double>(d->latency_cycles), per_layer_ideal);
}

TEST_F(UniformBaselineTest, NoConvLayersReturnsNullopt) {
  nn::Network net("poolonly");
  net.input({4, 16, 16});
  net.max_pool(2, 2, "p");
  EXPECT_FALSE(design_uniform(net, model_).has_value());
}

TEST_F(UniformBaselineTest, TinyDeviceInfeasible) {
  fpga::Device nano = fpga::toy_device();
  nano.capacity = fpga::ResourceVector{0, 0, 100, 100};
  EXPECT_FALSE(design_uniform(head_, fpga::EngineModel(nano)).has_value());
}

}  // namespace
}  // namespace hetacc::baseline
