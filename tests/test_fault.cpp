// Fault-injection, detection and recovery layer: seed determinism, the
// zero-cost-when-absent guarantee (no plan installed => byte-identical
// simulation), CRC coverage computed over really-corrupted buffers, the
// DDR retry path, the DATAFLOW watchdog, and the protection cost accounting
// shared by the optimizer and the simulators.

#include <gtest/gtest.h>

#include "arch/ddr_trace.h"
#include "arch/event_sim.h"
#include "arch/pipeline.h"
#include "cost/cost_model.h"
#include "cost/group_timing.h"
#include "fault/crc32.h"
#include "fault/fault.h"
#include "fault/protect.h"
#include "nn/model_zoo.h"
#include "support/error.h"
#include "toolflow/toolflow.h"

namespace hetacc {
namespace {

using arch::FusionPipeline;
using fault::FaultInjector;
using fault::FaultPlan;
using fault::FaultSite;
using fault::ProtectionConfig;

// ------------------------------------------------------------ determinism --
TEST(FaultInjector, DecisionsArePureFunctionsOfSeedSiteStreamEvent) {
  FaultPlan p;
  p.seed = 99;
  p.ddr_burst_flip_rate = 0.3;
  p.line_buffer_flip_rate = 0.3;
  const FaultInjector a(p), b(p);
  for (std::uint64_t s = 0; s < 4; ++s) {
    for (std::uint64_t e = 0; e < 200; ++e) {
      EXPECT_EQ(a.decide(FaultSite::kDdrBurst, s, e),
                b.decide(FaultSite::kDdrBurst, s, e));
      EXPECT_EQ(a.noise(FaultSite::kLineBuffer, s, e, 7),
                b.noise(FaultSite::kLineBuffer, s, e, 7));
    }
  }
}

TEST(FaultInjector, DecisionsIgnoreQueryOrderAndOtherSites) {
  FaultPlan p;
  p.seed = 5;
  p.ddr_burst_flip_rate = 0.5;
  const FaultInjector a(p), b(p);
  std::vector<bool> fwd, rev;
  for (std::uint64_t e = 0; e < 100; ++e) {
    fwd.push_back(a.decide(FaultSite::kDdrBurst, 1, e));
  }
  for (std::uint64_t e = 100; e-- > 0;) {
    (void)b.decide(FaultSite::kWeightPanel, 9, e);  // unrelated traffic
    rev.push_back(b.decide(FaultSite::kDdrBurst, 1, e));
  }
  for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(fwd[i], rev[99 - i]);
}

TEST(FaultInjector, SeedChangesOutcomesAndRatesBound) {
  FaultPlan p;
  p.ddr_burst_flip_rate = 0.25;
  p.seed = 1;
  const FaultInjector a(p);
  p.seed = 2;
  const FaultInjector b(p);
  int fires_a = 0, fires_b = 0, differ = 0;
  for (std::uint64_t e = 0; e < 4000; ++e) {
    const bool fa = a.decide(FaultSite::kDdrBurst, 0, e);
    const bool fb = b.decide(FaultSite::kDdrBurst, 0, e);
    fires_a += fa;
    fires_b += fb;
    differ += fa != fb;
  }
  EXPECT_GT(differ, 0);  // seeds are not aliases
  // Hash uniformity: empirical rate within a loose band of 0.25.
  EXPECT_NEAR(fires_a / 4000.0, 0.25, 0.05);
  EXPECT_NEAR(fires_b / 4000.0, 0.25, 0.05);
}

TEST(FaultInjector, RateZeroNeverFiresRateOneAlwaysFires) {
  FaultPlan p;
  const FaultInjector zero(p);  // all rates default 0
  p.ddr_burst_flip_rate = 1.0;
  const FaultInjector one(p);
  for (std::uint64_t e = 0; e < 1000; ++e) {
    EXPECT_FALSE(zero.decide(FaultSite::kDdrBurst, 0, e));
    EXPECT_TRUE(one.decide(FaultSite::kDdrBurst, 0, e));
  }
}

TEST(FaultInjector, FlipFloatBitIsAnInvolution) {
  for (std::uint32_t bit = 0; bit < 32; ++bit) {
    const float v = 1.7182818f;
    const float flipped = fault::flip_float_bit(v, bit);
    EXPECT_NE(flipped, v) << bit;
    EXPECT_EQ(fault::flip_float_bit(flipped, bit), v) << bit;
  }
}

// -------------------------------------------------------------------- crc --
TEST(Crc32, CatchesEverySingleBitFlip) {
  std::vector<unsigned char> buf(64);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<unsigned char>(i * 31 + 7);
  }
  const std::uint32_t golden = fault::crc32(buf.data(), buf.size());
  for (std::size_t bit = 0; bit < buf.size() * 8; ++bit) {
    buf[bit / 8] ^= static_cast<unsigned char>(1u << (bit % 8));
    EXPECT_NE(fault::crc32(buf.data(), buf.size()), golden) << bit;
    buf[bit / 8] ^= static_cast<unsigned char>(1u << (bit % 8));
  }
  EXPECT_EQ(fault::crc32(buf.data(), buf.size()), golden);
}

TEST(Crc32, FloatVariantCatchesSingleUpsets) {
  std::vector<float> w(128);
  nn::fill_deterministic(w, 11);
  const std::uint32_t golden = fault::crc32_f32(w);
  for (std::size_t i = 0; i < w.size(); i += 7) {
    const float keep = w[i];
    w[i] = fault::flip_float_bit(w[i], static_cast<std::uint32_t>(i));
    EXPECT_NE(fault::crc32_f32(w), golden) << i;
    w[i] = keep;
  }
}

// -------------------------------------------- zero-cost-when-absent hooks --
class PipelineFaultTest : public ::testing::Test {
 protected:
  nn::Network net_ = nn::tiny_net(4, 16);
  nn::WeightStore ws_ = nn::WeightStore::deterministic(net_, 21);
  nn::Tensor input_{net_[0].out};

  void SetUp() override { nn::fill_deterministic(input_, 22); }
};

TEST_F(PipelineFaultTest, ZeroRatePlanIsByteIdenticalToNoPlan) {
  FusionPipeline pipe(net_, ws_);
  const nn::Tensor golden = pipe.run(input_);

  FaultPlan zero;  // all rates 0, no wedge
  zero.seed = 77;
  pipe.install_fault_plan(zero, ProtectionConfig::all_on());
  EXPECT_TRUE(pipe.fault_plan_installed());
  const nn::Tensor with_plan = pipe.run(input_);
  EXPECT_EQ(with_plan, golden);  // exact, not approximate
  EXPECT_EQ(pipe.fault_stats().total_injected(), 0);

  pipe.clear_fault_plan();
  EXPECT_FALSE(pipe.fault_plan_installed());
  EXPECT_EQ(pipe.run(input_), golden);
}

TEST_F(PipelineFaultTest, WeightPanelFaultsCorruptOutputWhenUnprotected) {
  FusionPipeline pipe(net_, ws_);
  const nn::Tensor golden = pipe.run(input_);

  FaultPlan p;
  p.seed = 3;
  p.weight_panel_flip_rate = 1.0;  // strike every resident panel
  pipe.install_fault_plan(p);      // detectors off
  const nn::Tensor corrupted = pipe.run(input_);
  EXPECT_GT(pipe.fault_stats().injected[static_cast<std::size_t>(
                FaultSite::kWeightPanel)],
            0);
  EXPECT_NE(corrupted, golden);
}

TEST_F(PipelineFaultTest, WeightCrcDetectsAndRecoversEveryPanelFault) {
  FusionPipeline pipe(net_, ws_);
  const nn::Tensor golden = pipe.run(input_);

  FaultPlan p;
  p.seed = 3;
  p.weight_panel_flip_rate = 1.0;
  pipe.install_fault_plan(p, ProtectionConfig::all_on());
  const nn::Tensor hardened = pipe.run(input_);
  const auto stats = pipe.fault_stats();
  EXPECT_GT(stats.detected, 0);
  EXPECT_EQ(stats.recovered, stats.detected);
  EXPECT_EQ(stats.unrecovered, 0);
  // Recovery reloads the golden weights: output is bit-exact again.
  EXPECT_EQ(hardened, golden);
}

TEST_F(PipelineFaultTest, ClearRestoresGoldenConstantsAfterCorruption) {
  FusionPipeline pipe(net_, ws_);
  const nn::Tensor golden = pipe.run(input_);
  FaultPlan p;
  p.seed = 3;
  p.weight_panel_flip_rate = 1.0;
  pipe.install_fault_plan(p);
  (void)pipe.run(input_);
  pipe.clear_fault_plan();
  EXPECT_EQ(pipe.run(input_), golden);
}

// --------------------------------------------------------------- watchdog --
TEST_F(PipelineFaultTest, WatchdogNamesTheWedgedStage) {
  FusionPipeline pipe(net_, ws_);
  FaultPlan p;
  p.seed = 1;
  p.wedge_channel = 0;
  p.wedge_after_pushes = 3;
  pipe.install_fault_plan(p, ProtectionConfig::all_on());
  try {
    (void)pipe.run(input_);
    FAIL() << "wedged pipeline completed";
  } catch (const FaultError& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kFault);
    EXPECT_EQ(e.stage(), net_[1].name);  // channel 0 feeds the first engine
    EXPECT_NE(std::string(e.what()).find("wedged"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("channel 0"), std::string::npos);
  }
}

TEST_F(PipelineFaultTest, MidPipelineWedgeBlamesTheConsumerStage) {
  ASSERT_GT(net_.size(), 2u);
  FusionPipeline pipe(net_, ws_);
  FaultPlan p;
  p.seed = 1;
  p.wedge_channel = 1;  // channel between engine 0 and engine 1
  p.wedge_after_pushes = 2;
  pipe.install_fault_plan(p, ProtectionConfig::all_on());
  EXPECT_THROW((void)pipe.run(input_), FaultError);
}

// --------------------------------------------------------------- ddr replay --
arch::DdrTrace small_trace() {
  arch::DdrTrace t;
  t.transactions.push_back(
      {arch::DdrOp::kLoadWeights, 0, "w0", 64 * 1024, 0, 100});
  t.transactions.push_back(
      {arch::DdrOp::kLoadFeature, 0, "in", 200 * 1024, 100, 400});
  t.transactions.push_back(
      {arch::DdrOp::kStoreFeature, 0, "out", 100 * 1024, 400, 600});
  t.total_cycles = 600;
  return t;
}

TEST(DdrReplay, UnprotectedFlipsAreDeliveredSilently) {
  const auto trace = small_trace();
  FaultPlan p;
  p.seed = 4;
  p.ddr_burst_flip_rate = 1.0;
  const FaultInjector inj(p);
  const auto r =
      arch::replay_trace_with_faults(trace, fpga::zc706(), inj, {});
  EXPECT_GT(r.bursts, 0);
  EXPECT_EQ(r.injected, r.bursts);
  EXPECT_EQ(r.silent, r.injected);
  EXPECT_EQ(r.detected, 0);
  EXPECT_EQ(r.retry_cycles, 0);
}

TEST(DdrReplay, CrcCoversEveryInjectedBurst) {
  const auto trace = small_trace();
  FaultPlan p;
  p.seed = 4;
  p.ddr_burst_flip_rate = 0.2;
  const FaultInjector inj(p);
  const auto r = arch::replay_trace_with_faults(trace, fpga::zc706(), inj,
                                                ProtectionConfig::all_on());
  EXPECT_GT(r.injected, 0);
  EXPECT_EQ(r.detected, r.injected);  // single-bit flips: CRC-32 is exact
  EXPECT_EQ(r.silent, 0);
  EXPECT_DOUBLE_EQ(r.coverage(), 1.0);
  EXPECT_EQ(r.recovered + r.unrecovered, r.detected);
  EXPECT_GT(r.recovered, 0);
  EXPECT_GT(r.retry_cycles, 0);
  EXPECT_GT(r.retry_bytes, 0);
}

TEST(DdrReplay, RetryCannotRecoverWhenEveryRereadIsAlsoHit) {
  const auto trace = small_trace();
  FaultPlan p;
  p.seed = 4;
  p.ddr_burst_flip_rate = 1.0;  // retries are distinct events, also struck
  const FaultInjector inj(p);
  const auto r = arch::replay_trace_with_faults(trace, fpga::zc706(), inj,
                                                ProtectionConfig::all_on());
  EXPECT_EQ(r.detected, r.injected);
  EXPECT_EQ(r.unrecovered, r.injected);
  EXPECT_EQ(r.recovered, 0);
}

TEST(DdrReplay, SameSeedSameReport) {
  const auto trace = small_trace();
  FaultPlan p;
  p.seed = 123;
  p.ddr_burst_flip_rate = 0.05;
  const FaultInjector a(p), b(p);
  const auto ra = arch::replay_trace_with_faults(trace, fpga::zc706(), a,
                                                 ProtectionConfig::all_on());
  const auto rb = arch::replay_trace_with_faults(trace, fpga::zc706(), b,
                                                 ProtectionConfig::all_on());
  EXPECT_EQ(ra.injected, rb.injected);
  EXPECT_EQ(ra.recovered, rb.recovered);
  EXPECT_EQ(ra.retry_cycles, rb.retry_cycles);
}

// ------------------------------------------------------- event-sim timing --
class EventSimFaultTest : public ::testing::Test {
 protected:
  fpga::Device dev_ = fpga::zc706();
  fpga::EngineModel model_{dev_};
  nn::Network net_ = nn::tiny_net(4, 16);

  std::vector<fpga::Implementation> impls() {
    std::vector<fpga::Implementation> out;
    for (std::size_t i = 1; i < net_.size(); ++i) {
      fpga::EngineConfig cfg;
      cfg.algo = net_[i].kind == nn::LayerKind::kConv
                     ? fpga::ConvAlgo::kConventional
                     : fpga::ConvAlgo::kNone;
      cfg.tn = 2;
      cfg.tm = net_[i].kind == nn::LayerKind::kConv ? 2 : 1;
      out.push_back(model_.implement(net_[i], cfg));
    }
    return out;
  }
};

TEST_F(EventSimFaultTest, NullInjectorAndZeroPlanAgreeExactly) {
  const auto is = impls();
  const auto base =
      arch::simulate_dataflow(net_, 1, net_.size() - 1, is, dev_, 8);
  const FaultInjector zero{FaultPlan{}};
  const auto z =
      arch::simulate_dataflow(net_, 1, net_.size() - 1, is, dev_, 8, &zero);
  ASSERT_TRUE(base.completed);
  EXPECT_EQ(z.makespan_cycles, base.makespan_cycles);
  EXPECT_EQ(z.injected_delay_cycles, 0);
  EXPECT_EQ(z.fifo_max_occupancy, base.fifo_max_occupancy);
}

TEST_F(EventSimFaultTest, EngineStallsLengthenTheMakespan) {
  const auto is = impls();
  const auto base =
      arch::simulate_dataflow(net_, 1, net_.size() - 1, is, dev_, 8);
  FaultPlan p;
  p.seed = 9;
  p.engine_stall_rate = 0.5;
  p.engine_stall_cycles = 50;
  const FaultInjector inj(p);
  const auto r =
      arch::simulate_dataflow(net_, 1, net_.size() - 1, is, dev_, 8, &inj);
  ASSERT_TRUE(r.completed);
  EXPECT_GT(r.injected_delay_cycles, 0);
  EXPECT_GT(r.makespan_cycles, base.makespan_cycles);
}

TEST_F(EventSimFaultTest, FifoDelaysAreCountedAndDeterministic) {
  const auto is = impls();
  FaultPlan p;
  p.seed = 9;
  p.fifo_delay_rate = 0.3;
  p.fifo_delay_cycles = 20;
  const FaultInjector a(p), b(p);
  const auto ra =
      arch::simulate_dataflow(net_, 1, net_.size() - 1, is, dev_, 8, &a);
  const auto rb =
      arch::simulate_dataflow(net_, 1, net_.size() - 1, is, dev_, 8, &b);
  ASSERT_TRUE(ra.completed);
  EXPECT_GT(ra.injected_delay_cycles, 0);
  EXPECT_EQ(ra.makespan_cycles, rb.makespan_cycles);
  EXPECT_EQ(ra.injected_delay_cycles, rb.injected_delay_cycles);
}

// ------------------------------------------------------- protection costs --
TEST(ProtectionCost, CrcHelpersAgreeWithHandArithmetic) {
  EXPECT_EQ(cost::crc_burst_count(0, 4096), 0);
  EXPECT_EQ(cost::crc_burst_count(1, 4096), 1);
  EXPECT_EQ(cost::crc_burst_count(4096, 4096), 1);
  EXPECT_EQ(cost::crc_burst_count(4097, 4096), 2);
  EXPECT_EQ(cost::crc_check_cycles(8192, 4096, 8), 16);
  const long long plain = cost::transfer_cycles(100000, 8.0);
  EXPECT_EQ(cost::protected_transfer_cycles(100000, 8.0, 4096, 8),
            plain + cost::crc_check_cycles(100000, 4096, 8));
}

TEST(ProtectionCost, ProtectedDeviceChargesEveryGroupTransferTail) {
  const nn::Network net = nn::tiny_net(4, 16);
  fpga::Device dev = fpga::zc706();
  const fpga::EngineModel model(dev);
  std::vector<fpga::Implementation> impls;
  for (std::size_t i = 1; i < net.size(); ++i) {
    impls.push_back(model.implementations(net[i])->front());
  }
  const auto plain =
      cost::evaluate_group_timing(net, 1, net.size() - 1, impls, dev);
  dev.protection.enabled = true;
  const auto prot =
      cost::evaluate_group_timing(net, 1, net.size() - 1, impls, dev);
  EXPECT_GT(prot.transfer_cycles, plain.transfer_cycles);
  EXPECT_EQ(prot.transfer_bytes, plain.transfer_bytes);  // cycles, not bytes
  EXPECT_GE(prot.latency_cycles, plain.latency_cycles);
}

TEST(ProtectionCost, ProtectedEnginesCostMoreLogicAndFill) {
  const nn::Network net = nn::tiny_net(4, 16);
  const nn::Layer* conv = nullptr;
  for (std::size_t i = 1; i < net.size(); ++i) {
    if (net[i].kind == nn::LayerKind::kConv) { conv = &net[i]; break; }
  }
  ASSERT_NE(conv, nullptr);
  fpga::Device dev = fpga::zc706();
  fpga::EngineConfig cfg;
  cfg.algo = fpga::ConvAlgo::kConventional;
  cfg.tn = 2;
  cfg.tm = 2;
  const auto plain = fpga::EngineModel(dev).implement(*conv, cfg);
  fpga::EngineModelParams pp;
  pp.protect = true;
  dev.protection.enabled = true;
  const auto prot = fpga::EngineModel(dev, pp).implement(*conv, cfg);
  EXPECT_GT(prot.res.lut, plain.res.lut);
  EXPECT_GT(prot.res.ff, plain.res.ff);
  EXPECT_GE(prot.res.bram18k, plain.res.bram18k);
  EXPECT_GT(prot.fill_cycles, plain.fill_cycles);  // weight-CRC fill tax
  EXPECT_EQ(prot.compute_cycles, plain.compute_cycles);
}

TEST(ProtectionCost, ProtectedToolflowStillFeasibleAndNoFaster) {
  const nn::Network net = nn::tiny_net(8, 16);
  toolflow::ToolflowOptions opt;
  opt.generate_code = false;
  const auto plain = toolflow::run_toolflow(net, fpga::zc706(), opt);
  opt.protect = true;
  const auto prot = toolflow::run_toolflow(net, fpga::zc706(), opt);
  EXPECT_TRUE(prot.optimization.feasible);
  EXPECT_GE(prot.report.latency_cycles, plain.report.latency_cycles);
  EXPECT_GE(prot.report.peak_resources.lut, plain.report.peak_resources.lut);
}

// --------------------------------------------------- graceful degradation --
TEST(ErrorHierarchy, CategoriesMapToDistinctExitCodes) {
  EXPECT_EQ(ParseError("x").exit_code(), 2);
  EXPECT_EQ(ValidationError("x").exit_code(), 2);
  EXPECT_EQ(InfeasibleError("x").exit_code(), 3);
  EXPECT_EQ(FaultError("x").exit_code(), 4);
  EXPECT_EQ(Error(ErrorCategory::kInternal, "x").exit_code(), 1);
}

TEST(ErrorHierarchy, ContextIsPrefixedIntoWhat) {
  const ParseError p("bad token", 12);
  EXPECT_EQ(p.line(), 12);
  EXPECT_EQ(std::string(p.what()), "line 12: bad token");
  const FaultError f("stall", "conv2");
  EXPECT_EQ(f.stage(), "conv2");
  EXPECT_EQ(std::string(f.what()), "conv2: stall");
}

TEST(ErrorHierarchy, InfeasibleToolflowNamesTheBindingConstraint) {
  const nn::Network net = nn::tiny_net(8, 16);
  toolflow::ToolflowOptions opt;
  opt.generate_code = false;
  opt.transfer_budget_bytes = 16;  // below any achievable transfer
  try {
    (void)toolflow::run_toolflow(net, fpga::zc706(), opt);
    FAIL() << "expected InfeasibleError";
  } catch (const InfeasibleError& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kInfeasible);
    EXPECT_NE(std::string(e.what()).find("transfer budget"),
              std::string::npos);
  }
}

TEST(ErrorHierarchy, NetworkValidationRejectsDegenerateParams) {
  nn::Network net("bad");
  net.input({3, 8, 8});
  EXPECT_THROW(net.conv(0, 3, 1, 1, "c"), ValidationError);   // no outputs
  EXPECT_THROW(net.conv(4, 3, 0, 1, "c"), ValidationError);   // stride 0
  EXPECT_THROW(net.conv(4, 3, 1, 3, "c"), ValidationError);   // pad >= kernel
  EXPECT_THROW(net.max_pool(0, 2, "p"), ValidationError);     // kernel 0
  EXPECT_THROW(net.lrn(0, 1e-4f, 0.75f, "n"), ValidationError);
  EXPECT_THROW(net.fc(-1, "f"), ValidationError);
  net.conv(4, 3, 1, 1, "ok");  // sane layer still accepted afterwards
  EXPECT_EQ(net.size(), 2u);
}

}  // namespace
}  // namespace hetacc
