#include "nn/tensor.h"

#include <gtest/gtest.h>

namespace hetacc::nn {
namespace {

TEST(Shape, ElemsAndBytes) {
  Shape s{3, 224, 224};
  EXPECT_EQ(s.elems(), 3ll * 224 * 224);
  EXPECT_EQ(s.bytes(2), 3ll * 224 * 224 * 2);
  EXPECT_EQ(s.bytes(4), 3ll * 224 * 224 * 4);
}

TEST(Shape, Equality) {
  EXPECT_EQ((Shape{1, 2, 3}), (Shape{1, 2, 3}));
  EXPECT_NE((Shape{1, 2, 3}), (Shape{1, 3, 2}));
}

TEST(Shape, StrFormat) {
  EXPECT_EQ((Shape{3, 4, 5}).str(), "[3x4x5]");
}

TEST(Tensor, ZeroInitialized) {
  Tensor t(2, 3, 4);
  for (int c = 0; c < 2; ++c) {
    for (int h = 0; h < 3; ++h) {
      for (int w = 0; w < 4; ++w) EXPECT_EQ(t.at(c, h, w), 0.0f);
    }
  }
}

TEST(Tensor, FillValue) {
  Tensor t(Shape{1, 2, 2}, 7.5f);
  EXPECT_EQ(t.at(0, 1, 1), 7.5f);
}

TEST(Tensor, RowMajorLayout) {
  Tensor t(2, 2, 3);
  t.at(1, 1, 2) = 42.0f;
  EXPECT_EQ(t.data()[1 * 2 * 3 + 1 * 3 + 2], 42.0f);
}

TEST(Tensor, OutOfRangeThrows) {
  Tensor t(1, 2, 2);
  EXPECT_THROW(t.at(1, 0, 0), std::out_of_range);
  EXPECT_THROW(t.at(0, 2, 0), std::out_of_range);
  EXPECT_THROW(t.at(0, 0, -1), std::out_of_range);
}

TEST(Tensor, PaddedReadReturnsZeroOutside) {
  Tensor t(Shape{1, 2, 2}, 3.0f);
  EXPECT_EQ(t.at_padded(0, -1, 0), 0.0f);
  EXPECT_EQ(t.at_padded(0, 0, 2), 0.0f);
  EXPECT_EQ(t.at_padded(0, 1, 1), 3.0f);
}

TEST(Tensor, MaxAbsDiff) {
  Tensor a(1, 1, 3), b(1, 1, 3);
  a.at(0, 0, 0) = 1.0f;
  b.at(0, 0, 0) = 1.5f;
  b.at(0, 0, 2) = -2.0f;
  EXPECT_FLOAT_EQ(a.max_abs_diff(b), 2.0f);
}

TEST(Tensor, MaxAbsDiffShapeMismatchThrows) {
  Tensor a(1, 1, 3), b(1, 3, 1);
  EXPECT_THROW((void)a.max_abs_diff(b), std::invalid_argument);
}

TEST(Tensor, DeterministicFillIsReproducible) {
  Tensor a(2, 4, 4), b(2, 4, 4);
  fill_deterministic(a, 7);
  fill_deterministic(b, 7);
  EXPECT_EQ(a, b);
  Tensor c(2, 4, 4);
  fill_deterministic(c, 8);
  EXPECT_NE(a, c);
}

TEST(Tensor, DeterministicFillInUnitRange) {
  Tensor a(3, 8, 8);
  fill_deterministic(a, 123);
  for (float v : a.vec()) {
    EXPECT_GE(v, -1.0f);
    EXPECT_LE(v, 1.0f);
  }
}

TEST(FilterBank, LayoutAndAccess) {
  FilterBank f(2, 3, 3);
  f.at(1, 2, 0, 1) = 5.0f;
  EXPECT_EQ(f.data()[((1 * 3 + 2) * 3 + 0) * 3 + 1], 5.0f);
  EXPECT_EQ(f.out_channels(), 2);
  EXPECT_EQ(f.in_channels(), 3);
  EXPECT_EQ(f.kernel(), 3);
  EXPECT_EQ(f.size(), 2ll * 3 * 3 * 3);
}

TEST(FilterBank, OutOfRangeThrows) {
  FilterBank f(1, 1, 3);
  EXPECT_THROW(f.at(1, 0, 0, 0), std::out_of_range);
  EXPECT_THROW(f.at(0, 0, 3, 0), std::out_of_range);
}

TEST(FilterBank, DeterministicFillBounded) {
  FilterBank f(4, 4, 3);
  fill_deterministic(f, 99);
  for (std::int64_t i = 0; i < f.size(); ++i) {
    EXPECT_LE(std::abs(f.data()[i]), 0.25f);
  }
}

}  // namespace
}  // namespace hetacc::nn
