// hetacc — command-line front end of the automatic tool-flow (paper Fig. 3):
// Caffe deploy prototxt + FPGA spec in, strategy report + generated HLS
// project out.
//
//   hetacc [--net deploy.prototxt | --model alexnet|vgg-e|vgg16|vgg-e-head
//                                           |inception-mini|resnet-mini]
//          [--device zc706|vc707] [--budget-mb N] [--out DIR] [--summary]
//          [--no-codegen] [--interval-dp] [--explore-tiles]
//          [--conventional-only] [--wino-tile M] [--threads N]
//          [--protect] [--fault-campaign] [--fault-seed N]
//          [--serve SPEC] [--serve-deadline N] [--serve-queue N]
//          [--serve-replicas N] [--serve-retries N] [--serve-fault LO:HI|auto]
//          [--serve-ladder N|auto]
//
// Exit codes (see src/support/error.h): 0 success, 2 parse/validate,
// 3 infeasible, 4 unrecovered fault, 5 serving-runtime failure, 1 internal.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "arch/ddr_trace.h"
#include "arch/pipeline.h"
#include "caffe/importer.h"
#include "core/strategy_io.h"
#include "fault/fault.h"
#include "fault/fleet_fault.h"
#include "fault/protect.h"
#include "nn/graph.h"
#include "nn/model_zoo.h"
#include "quant/calibration.h"
#include "serve/fleet.h"
#include "serve/server.h"
#include "support/error.h"
#include "toolflow/ladder.h"
#include "toolflow/toolflow.h"

using namespace hetacc;

namespace {

void usage() {
  std::printf(
      "usage: hetacc [options]\n"
      "  --net FILE          Caffe deploy prototxt to map\n"
      "  --model NAME        built-in model: alexnet | vgg-e | vgg16 | "
      "vgg-e-head |\n"
      "                      inception-mini | resnet-mini (default alexnet)\n"
      "  --device NAME       zc706 (default) | vc707\n"
      "  --budget-mb N       feature-map transfer constraint T in MB\n"
      "  --out DIR           write the generated HLS project here\n"
      "  --summary           print the network summary and graph shape\n"
      "                      (layers, edges, branches, merges, SP depth)\n"
      "                      and exit\n"
      "  --no-codegen        stop after the strategy report\n"
      "  --interval-dp       use the paper's Algorithm 1 interval DP\n"
      "  --explore-tiles     per-layer Winograd tile-size exploration\n"
      "  --conventional-only disable Winograd (homogeneous baseline)\n"
      "  --wino-tile M       uniform Winograd tile size (default 4)\n"
      "  --int8              offer int8 engines (two multiplies per DSP,\n"
      "                      halved weight traffic) alongside the 16-bit\n"
      "                      ones; prints the accuracy-vs-cycles trade\n"
      "                      (optimizer delta + functional testbed error)\n"
      "  --threads N         worker threads for the fusion-table DSE and the\n"
      "                      functional-simulation kernels (0 = all cores,\n"
      "                      default 1); strategies and simulated tensors are\n"
      "                      identical for any N\n"
      "  --protect           harden every engine (CRC weight loads, Winograd\n"
      "                      transform checksums, stage watchdogs) and every\n"
      "                      DDR burst (CRC-32 + bounded retry); the optimizer\n"
      "                      re-trades the strategy under the protected costs\n"
      "                      and the delta vs the unprotected design is shown\n"
      "  --fault-campaign    seeded fault-injection sweep instead of codegen:\n"
      "                      DDR burst flips replayed against the strategy's\n"
      "                      timeline (CRC coverage, retry recovery), SEU\n"
      "                      sweeps through the functional pipeline, and a\n"
      "                      watchdog wedge demonstration\n"
      "  --fault-seed N      campaign seed (default 1); same seed, same run\n"
      "  --serve SPEC        resilient serving run instead of codegen: drive\n"
      "                      an arrival trace through the bounded-queue /\n"
      "                      deadline / retry / circuit-breaker runtime over\n"
      "                      the optimized strategy, with the --protect\n"
      "                      re-optimized strategy as the degraded fallback.\n"
      "                      SPEC is a trace CSV path (id,arrival_cycle,\n"
      "                      input_seed) or synth:N[:MEAN[:SEED]] for N\n"
      "                      synthetic requests with mean inter-arrival MEAN\n"
      "                      cycles (default: primary latency / replicas)\n"
      "  --serve-deadline N  per-request deadline in cycles (0 = off;\n"
      "                      default 4x the primary service latency)\n"
      "  --serve-queue N     admission queue bound (default 64)\n"
      "  --serve-replicas N  modeled accelerator replicas (default 2)\n"
      "  --serve-retries N   primary retry budget per request (default 2)\n"
      "  --serve-fault SPEC  fault burst striking the primary: LO:HI cycle\n"
      "                      window, or 'auto' for the middle third of the\n"
      "                      trace (plan seeded by --fault-seed)\n"
      "  --serve-ladder N    serve from an N-rung degradation ladder (or\n"
      "                      'auto') instead of the binary primary/fallback\n"
      "                      pair: --protect rung above the primary, relaxed-\n"
      "                      budget and int8/conventional-i8 rungs below it;\n"
      "                      a load-regime controller descends to faster\n"
      "                      rungs under queue/deadline pressure and climbs\n"
      "                      back with dwell-gated hysteresis. The trace SPEC\n"
      "                      osc:P:K[:BURST[:LULL[:SEED]]] generates P\n"
      "                      square-wave load periods of K requests per\n"
      "                      phase for exercising the controller\n"
      "  --fleet SPEC        multi-tenant fleet simulation instead of\n"
      "                      codegen: N replicas per model sharing one\n"
      "                      prepack cache and one worker pool, dynamic\n"
      "                      batching, weighted-fair (DRR) admission, and a\n"
      "                      degradation ladder per (model, replica). SPEC\n"
      "                      is REPLICAS[:REQUESTS[:SEED]] (default 2:300:1;\n"
      "                      REQUESTS is per tenant, two tenants per model:\n"
      "                      a steady stream and a bursty oscillator).\n"
      "                      Stats are byte-identical for any --threads\n"
      "  --fleet-models LIST comma-separated zoo models the fleet serves\n"
      "                      (default alexnet,vgg-e,inception-mini,\n"
      "                      resnet-mini)\n"
      "  --fleet-autoscale   let per-model replica pools grow and shrink\n"
      "                      under the queue-pressure watermarks (spin-ups\n"
      "                      pay cold or warm cache costs)\n"
      "  --fleet-chaos PLAN[:SEED]\n"
      "                      run the fleet under a seeded fault campaign.\n"
      "                      PLAN is a '+'-joined subset of {wedge, crash,\n"
      "                      slow, corrupt} or 'mix'. Arms health scoring\n"
      "                      (quarantine -> respawn -> probe -> readmit),\n"
      "                      request hedging and the bundle CRC scrubber;\n"
      "                      implies the default --fleet when none is\n"
      "                      given. Exits 4 if any request is lost or a\n"
      "                      replica ends the run unrecovered. Exit codes:\n"
      "                      0 ok, 2 parse/validate, 3 infeasible, 4 fault\n"
      "                      unabsorbed, 5 serve-layer failure\n");
}

void print_report_line(const char* tag, const core::StrategyReport& r) {
  std::printf(
      "  %-12s latency %8.3f ms  %7.1f GOPS  DSP %5lld  BRAM %5lld  "
      "FF %7lld  LUT %7lld\n",
      tag, r.latency_ms, r.effective_gops, r.peak_resources.dsp,
      r.peak_resources.bram18k, r.peak_resources.ff, r.peak_resources.lut);
}

/// --int8: the accuracy half of the accuracy-vs-cycles trade. The cycles
/// half comes from the optimizer (int8 engine ladders competed with the
/// 16-bit ones); here the network's leading layers run functionally on a
/// capped input (same testbed discipline as --fault-campaign) through the
/// float, calibrated 16-bit fixed, and calibrated int8 datapaths, and the
/// deviation against the float reference is reported for both.
void print_int8_accuracy(const nn::Network& accel_net,
                         std::uint32_t weight_seed) {
  nn::Network qnet("int8-testbed");
  const nn::Shape in0 = accel_net[0].out;
  qnet.input({in0.c, std::min(in0.h, 56), std::min(in0.w, 56)});
  const std::size_t klast = std::min<std::size_t>(3, accel_net.size() - 1);
  for (std::size_t i = 1; i <= klast; ++i) qnet.add(accel_net[i]);

  const auto ws = nn::WeightStore::deterministic(qnet, weight_seed);
  nn::Tensor in(qnet[0].out);
  nn::fill_deterministic(in, 7);
  const auto cal = quant::calibrate(qnet, ws, {in});

  auto choices_for = [&](const std::vector<arch::NumericMode>& modes) {
    std::vector<arch::LayerChoice> ch(klast);
    for (std::size_t j = 0; j < klast; ++j) ch[j].mode = modes[j];
    return ch;
  };
  arch::FusionPipeline pf(qnet, ws);
  arch::FusionPipeline p16(qnet, ws, choices_for(cal.modes()));
  arch::FusionPipeline p8(qnet, ws, choices_for(cal.modes_int8()));
  const nn::Tensor ref = pf.run(in);
  const nn::Tensor o16 = p16.run(in);
  const nn::Tensor o8 = p8.run(in);

  float ref_abs = 0.0f;
  for (float v : ref.vec()) ref_abs = std::max(ref_abs, std::abs(v));
  const float e16 = ref.max_abs_diff(o16);
  const float e8 = ref.max_abs_diff(o8);
  std::printf("int8 accuracy (functional testbed, %zu layers, input %s):\n",
              klast, qnet[0].out.str().c_str());
  std::printf("  16-bit fixed  L-inf %.4g  (%.3f %% of output range)\n", e16,
              ref_abs > 0 ? 100.0 * e16 / ref_abs : 0.0);
  std::printf("  int8          L-inf %.4g  (%.3f %% of output range)\n\n", e8,
              ref_abs > 0 ? 100.0 * e8 / ref_abs : 0.0);
}

/// --protect: run the flow both ways and show what the hardening costs. The
/// protected run is the one whose design/codegen the caller keeps.
toolflow::ToolflowResult run_protected_with_delta(
    const nn::Network& net, const fpga::Device& dev,
    toolflow::ToolflowOptions opt) {
  toolflow::ToolflowOptions base = opt;
  base.protect = false;
  base.generate_code = false;
  const auto unprot = toolflow::run_toolflow(net, dev, base);

  opt.protect = true;
  auto prot = toolflow::run_toolflow(net, dev, opt);

  const auto& u = unprot.report;
  const auto& p = prot.report;
  std::printf("protection delta (unprotected -> protected):\n");
  print_report_line("unprotected", u);
  print_report_line("protected", p);
  const double lat_pct =
      u.latency_ms > 0 ? 100.0 * (p.latency_ms - u.latency_ms) / u.latency_ms
                       : 0.0;
  std::printf(
      "  overhead     latency %+7.2f %%  DSP %+5lld  BRAM %+5lld  "
      "FF %+7lld  LUT %+7lld\n\n",
      lat_pct, p.peak_resources.dsp - u.peak_resources.dsp,
      p.peak_resources.bram18k - u.peak_resources.bram18k,
      p.peak_resources.ff - u.peak_resources.ff,
      p.peak_resources.lut - u.peak_resources.lut);
  return prot;
}

/// --fault-campaign: measure the detection/recovery layer instead of
/// generating code. Three experiments, all deterministic in --fault-seed:
///  1. DDR burst bit flips replayed against the optimized strategy's DDR
///     timeline, unprotected vs CRC-32 + retry (coverage is computed by
///     running the real CRC over really-corrupted buffers).
///  2. SEU sweeps (line buffer / FIFO / resident weights) through the
///     functional pipeline on a scaled-down testbed of the network's leading
///     layers, reporting output deviation with and without protection.
///  3. A wedged-FIFO deadlock that the DATAFLOW watchdog must catch and
///     attribute to the right stage.
int run_fault_campaign(const nn::Network& net, const fpga::Device& dev,
                       toolflow::ToolflowOptions opt, std::uint64_t seed) {
  opt.generate_code = false;
  opt.protect = false;
  const auto flow = toolflow::run_toolflow(net, dev, opt);
  const auto trace =
      arch::trace_strategy(flow.optimization.strategy, flow.accel_net, dev);

  std::printf("fault campaign: '%s' on %s, seed %llu\n",
              flow.full_net.name().c_str(), dev.name.c_str(),
              static_cast<unsigned long long>(seed));
  std::printf("DDR timeline: %zu transactions, %.2f MB, %lld cycles\n\n",
              trace.transactions.size(),
              static_cast<double>(trace.total_bytes()) / (1024.0 * 1024.0),
              trace.total_cycles);

  std::printf("[1] DDR burst flips vs CRC-32 + retry (limit %d)\n",
              fault::ProtectionConfig::all_on().retry_limit);
  std::printf(
      "  %-10s %10s %9s %9s %10s %10s %12s %11s\n", "rate", "bursts",
      "injected", "silent", "coverage", "recovered", "unrecovered",
      "retry-cyc");
  for (const double rate : {1e-6, 1e-5, 1e-4, 1e-3}) {
    fault::FaultPlan p;
    p.seed = seed;
    p.ddr_burst_flip_rate = rate;
    const fault::FaultInjector raw(p);
    const auto u = arch::replay_trace_with_faults(trace, dev, raw, {});
    const fault::FaultInjector hard(p);
    const auto h = arch::replay_trace_with_faults(
        trace, dev, hard, fault::ProtectionConfig::all_on());
    std::printf(
        "  %-10.0e %10lld %9lld %9lld %9.1f%% %10lld %12lld %11lld\n", rate,
        h.bursts, h.injected, u.silent, 100.0 * h.coverage(), h.recovered,
        h.unrecovered, h.retry_cycles);
  }

  // Functional testbed: the leading layers re-hosted on a capped input so a
  // full VGG-scale image is not simulated per sweep point. Same layer
  // parameters, same engines, same injection sites.
  nn::Network fnet("fault-testbed");
  const nn::Shape in0 = flow.accel_net[0].out;
  fnet.input({in0.c, std::min(in0.h, 56), std::min(in0.w, 56)});
  const std::size_t klast =
      std::min<std::size_t>(3, flow.accel_net.size() - 1);
  for (std::size_t i = 1; i <= klast; ++i) fnet.add(flow.accel_net[i]);

  const auto ws = nn::WeightStore::deterministic(fnet, opt.weight_seed);
  arch::FusionPipeline pipe(fnet, ws);
  nn::Tensor in(fnet[0].out);
  nn::fill_deterministic(in, static_cast<std::uint32_t>(seed));
  const nn::Tensor golden = pipe.run(in);

  std::printf(
      "\n[2] SEU sweep through the functional pipeline "
      "(%zu layers, input %s)\n",
      klast, fnet[0].out.str().c_str());
  std::printf("  %-10s %9s %14s %14s %9s %10s\n", "rate", "injected",
              "L-inf (raw)", "L-inf (prot)", "detected", "recovered");
  for (const double rate : {1e-5, 1e-4, 1e-3}) {
    fault::FaultPlan p;
    p.seed = seed;
    p.line_buffer_flip_rate = rate;
    p.fifo_corrupt_rate = rate;
    p.weight_panel_flip_rate = rate;

    pipe.install_fault_plan(p);  // detectors off: every flip lands
    const nn::Tensor raw_out = pipe.run(in);
    const auto raw_stats = pipe.fault_stats();

    pipe.install_fault_plan(p, fault::ProtectionConfig::all_on());
    const nn::Tensor hard_out = pipe.run(in);
    const auto hard_stats = pipe.fault_stats();
    pipe.clear_fault_plan();

    std::printf("  %-10.0e %9lld %14.4g %14.4g %9lld %10lld\n", rate,
                raw_stats.total_injected(), golden.max_abs_diff(raw_out),
                golden.max_abs_diff(hard_out), hard_stats.detected,
                hard_stats.recovered);
  }

  std::printf("\n[3] DATAFLOW watchdog on a wedged FIFO\n");
  fault::FaultPlan wedge;
  wedge.seed = seed;
  wedge.wedge_channel = 0;
  wedge.wedge_after_pushes = 4;
  pipe.install_fault_plan(wedge, fault::ProtectionConfig::all_on());
  try {
    (void)pipe.run(in);
    std::printf("  watchdog FAILED: pipeline completed through a wedge\n");
    pipe.clear_fault_plan();
    return 1;
  } catch (const FaultError& e) {
    std::printf("  caught at stage '%s': %s\n", e.stage().c_str(), e.what());
  }
  pipe.clear_fault_plan();
  std::printf("\ncampaign complete (deterministic: rerun with "
              "--fault-seed %llu to reproduce)\n",
              static_cast<unsigned long long>(seed));
  return 0;
}

nn::Network zoo_model(const std::string& name) {
  if (name == "alexnet") return nn::alexnet();
  if (name == "vgg-e") return nn::vgg_e();
  if (name == "vgg16") return nn::vgg16();
  if (name == "vgg-e-head") return nn::vgg_e_head();
  if (name == "inception-mini") return nn::inception_mini();
  if (name == "resnet-mini") return nn::resnet_mini();
  throw ServeError(ServeError::Reason::kConfig,
                   "unknown model '" + name + "'");
}

/// --serve: everything the serving runtime needs from the command line.
struct ServeCliOptions {
  std::string spec;          ///< trace CSV path, synth:..., or osc:...
  long long deadline = -1;   ///< -1 = derive from the primary latency
  std::size_t queue = 64;
  int replicas = 2;
  int retries = 2;
  std::string fault;         ///< "", "auto", or "LO:HI"
  std::string ladder;        ///< "" = binary pair, "auto" or rung count
};

/// --serve: run the resilient serving runtime over the optimized strategy.
/// The primary mode is the unprotected latency-optimal strategy; the
/// degraded fallback is the --protect re-optimization, round-tripped through
/// its CSV form the way an operator would pre-compute and ship it. The
/// functional work behind every request is the network's leading layers on a
/// capped input (same testbed discipline as --fault-campaign) so a 10k
/// request soak stays fast; service *times* come from the cost layer's
/// full-strategy latencies.
int run_serve(const nn::Network& net, const fpga::Device& dev,
              toolflow::ToolflowOptions opt, const ServeCliOptions& so,
              std::uint64_t fault_seed) {
  opt.generate_code = false;
  opt.protect = false;
  const auto primary_flow = toolflow::run_toolflow(net, dev, opt);

  // Functional testbed: leading layers on a capped input (the request
  // payloads), aligned with the strategies' per-layer choices.
  nn::Network snet("serve-testbed");
  const nn::Shape in0 = primary_flow.accel_net[0].out;
  snet.input({in0.c, std::min(in0.h, 32), std::min(in0.w, 32)});
  const std::size_t klast =
      std::min<std::size_t>(3, primary_flow.accel_net.size() - 1);
  for (std::size_t i = 1; i <= klast; ++i) snet.add(primary_flow.accel_net[i]);
  const auto choices_of = [klast](const core::Strategy& s) {
    std::vector<arch::LayerChoice> ch;
    for (const auto& g : s.groups) {
      for (const auto& ipl : g.impls) {
        ch.push_back({ipl.cfg.algo, ipl.cfg.wino_m, {}});
      }
    }
    ch.resize(klast);
    return ch;
  };
  const auto ws = nn::WeightStore::deterministic(snet, opt.weight_seed);

  // The degradation ladder (--serve-ladder) or the PR 5 binary pair. The
  // ladder is round-tripped through its multi-strategy CSV form the way an
  // operator would pre-compute and ship it; per-rung numeric modes come
  // from the testbed calibration (int8 rungs serve in the asymmetric int8
  // activation grids).
  serve::ServingLadder ladder;
  toolflow::ServingLadderPlan plan;
  const bool use_ladder = !so.ladder.empty();
  if (use_ladder) {
    toolflow::LadderOptions lopt;
    lopt.optimizer = opt.optimizer;
    lopt.threads = opt.threads;
    if (so.ladder != "auto") {
      const long long n = std::atoll(so.ladder.c_str());
      if (n < 2) {
        throw ServeError(ServeError::Reason::kConfig,
                         "--serve-ladder wants a rung count >= 2 or 'auto', "
                         "got '" + so.ladder + "'");
      }
      lopt.max_rungs = static_cast<std::size_t>(n);
    }
    const auto& built = toolflow::cached_serving_ladder(net, dev, lopt);
    plan = toolflow::ServingLadderPlan::from_csv_rungs(
        core::ladder_from_csv(
            core::ladder_to_csv(built.to_csv_rungs(), built.accel_net),
            built.accel_net, dev),
        built.accel_net);

    nn::Tensor cal_in(snet[0].out);
    nn::fill_deterministic(cal_in, 7);
    const auto cal = quant::calibrate(snet, ws, {cal_in});
    ladder = plan.to_serving_modes(klast, cal.modes(), cal.modes_int8());
  } else {
    toolflow::ToolflowOptions fopt = opt;
    fopt.protect = true;
    const auto fb_flow = toolflow::run_toolflow(net, dev, fopt);
    fpga::Device pdev = dev;
    pdev.protection.enabled = true;
    const core::Strategy fb_strategy = core::strategy_from_csv(
        core::strategy_to_csv(fb_flow.optimization.strategy,
                              fb_flow.accel_net),
        fb_flow.accel_net, pdev);

    serve::ServingMode primary;
    primary.label = "primary";
    primary.choices = choices_of(primary_flow.optimization.strategy);
    primary.service_cycles =
        primary_flow.optimization.strategy.latency_cycles();
    serve::ServingMode fallback;
    fallback.label = "fallback";
    fallback.choices = choices_of(fb_strategy);
    fallback.service_cycles = fb_strategy.latency_cycles();
    ladder.rungs = {std::move(fallback), std::move(primary)};
    ladder.home = 1;
  }
  const long long primary_cycles =
      ladder.rungs[ladder.home].service_cycles;

  serve::ServerConfig cfg;
  cfg.queue_capacity = so.queue;
  cfg.replicas = so.replicas;
  cfg.max_retries = so.retries;
  cfg.deadline_cycles =
      so.deadline >= 0 ? so.deadline : 4 * primary_cycles;
  cfg.backoff_base_cycles = std::max<long long>(primary_cycles / 8, 1);
  cfg.backoff_cap_cycles = 4 * cfg.backoff_base_cycles;
  cfg.breaker.cooldown_cycles = 2 * primary_cycles;
  cfg.threads = opt.threads;

  // The trace: synthetic (synth:N[:MEAN[:SEED]]), square-wave oscillating
  // load (osc:P:K[:BURST[:LULL[:SEED]]]), or a CSV file.
  serve::ArrivalTrace trace;
  if (so.spec.rfind("synth:", 0) == 0) {
    std::istringstream is(so.spec.substr(6));
    std::string f;
    std::size_t n = 0;
    long long mean =
        std::max<long long>(3 * primary_cycles / so.replicas, 1);
    std::uint64_t seed = 1;
    if (std::getline(is, f, ':')) n = std::stoull(f);
    if (std::getline(is, f, ':')) mean = std::stoll(f);
    if (std::getline(is, f, ':')) seed = std::stoull(f);
    if (n == 0) {
      throw ServeError(ServeError::Reason::kConfig,
                       "synth trace needs a request count: " + so.spec);
    }
    trace = serve::ArrivalTrace::synthetic(n, mean, seed, /*surge=*/2.0);
  } else if (so.spec.rfind("osc:", 0) == 0) {
    std::istringstream is(so.spec.substr(4));
    std::string f;
    std::size_t periods = 0, per_phase = 0;
    // Defaults: bursts arrive at twice the replicas' drain rate (sustained
    // pressure), lulls at a quarter of it (sustained calm).
    long long burst =
        std::max<long long>(primary_cycles / (2 * so.replicas), 1);
    long long lull =
        std::max<long long>(4 * primary_cycles / so.replicas, 1);
    std::uint64_t seed = 1;
    if (std::getline(is, f, ':')) periods = std::stoull(f);
    if (std::getline(is, f, ':')) per_phase = std::stoull(f);
    if (std::getline(is, f, ':')) burst = std::stoll(f);
    if (std::getline(is, f, ':')) lull = std::stoll(f);
    if (std::getline(is, f, ':')) seed = std::stoull(f);
    if (periods == 0 || per_phase == 0) {
      throw ServeError(ServeError::Reason::kConfig,
                       "osc trace needs periods and per-phase counts: " +
                           so.spec);
    }
    trace =
        serve::ArrivalTrace::oscillating(periods, per_phase, burst, lull,
                                         seed);
  } else {
    std::ifstream f(so.spec);
    if (!f) {
      throw ServeError(ServeError::Reason::kConfig,
                       "cannot open trace file '" + so.spec + "'");
    }
    std::ostringstream buf;
    buf << f.rdbuf();
    trace = serve::ArrivalTrace::from_csv(buf.str());
  }

  if (!so.fault.empty()) {
    if (so.fault == "auto") {
      const long long span = trace.last_arrival();
      trace.burst.from_cycle = span / 3;
      trace.burst.until_cycle = 2 * span / 3;
    } else {
      const auto colon = so.fault.find(':');
      if (colon == std::string::npos) {
        throw ServeError(ServeError::Reason::kConfig,
                         "--serve-fault wants LO:HI or auto, got '" +
                             so.fault + "'");
      }
      trace.burst.from_cycle = std::stoll(so.fault.substr(0, colon));
      trace.burst.until_cycle = std::stoll(so.fault.substr(colon + 1));
    }
    // A wedged FIFO: deterministic hard failure on every struck run, the
    // worst case the watchdog + retry + breaker chain must absorb.
    trace.burst.plan.seed = fault_seed;
    trace.burst.plan.wedge_channel = 0;
    trace.burst.plan.wedge_after_pushes = 4;
  }

  std::printf("serving '%s' on %s: %zu requests, %d replica(s), queue %zu, "
              "deadline %lld cycles\n",
              primary_flow.full_net.name().c_str(), dev.name.c_str(),
              trace.requests.size(), cfg.replicas, cfg.queue_capacity,
              cfg.deadline_cycles);
  if (use_ladder) {
    // Rung table with per-rung accuracy: every rung's functional testbed
    // output against the float reference, so the table shows exactly what
    // descending to an int8 rung costs (satisfying the deepest-throughput
    // rung is conventional-i8's quantized datapath).
    arch::FusionPipeline ref_pipe(snet, ws);
    nn::Tensor probe(snet[0].out);
    nn::fill_deterministic(probe, 7);
    const nn::Tensor ref = ref_pipe.run(probe);
    float ref_abs = 0.0f;
    for (float v : ref.vec()) ref_abs = std::max(ref_abs, std::abs(v));
    std::printf("degradation ladder (%zu rungs, CSV round-trip, "
                "%zu-layer testbed):\n",
                ladder.rungs.size(), klast);
    for (std::size_t i = 0; i < ladder.rungs.size(); ++i) {
      const auto& m = ladder.rungs[i];
      arch::FusionPipeline p(snet, ws, m.choices);
      const float err = ref.max_abs_diff(p.run(probe));
      std::printf("  rung %zu  %-16s %12lld cycles/request  "
                  "L-inf %.4g (%.3f%% of range)%s\n",
                  i, m.label.c_str(), m.service_cycles, err,
                  ref_abs > 0 ? 100.0 * err / ref_abs : 0.0,
                  i == ladder.home ? "  [home]" : "");
    }
  } else {
    std::printf("  primary   %lld cycles/request (%zu-layer testbed)\n",
                ladder.rungs[1].service_cycles, klast);
    std::printf("  fallback  %lld cycles/request (protected re-optimization, "
                "CSV round-trip)\n",
                ladder.rungs[0].service_cycles);
  }
  if (trace.burst.active()) {
    std::printf("  fault burst [%lld, %lld) cycles, seed %llu\n",
                trace.burst.from_cycle, trace.burst.until_cycle,
                static_cast<unsigned long long>(fault_seed));
  }

  serve::Server server(snet, ws, std::move(ladder), cfg);
  const serve::ServerStats stats = server.run(trace);

  std::printf("\nserver stats:\n%s", stats.summary().c_str());
  if (!server.breaker_log().empty()) {
    std::printf("breaker transitions:\n");
    for (const auto& t : server.breaker_log()) {
      std::printf("  cycle %10lld  %s -> %s\n", t.cycle,
                  std::string(serve::to_string(t.from)).c_str(),
                  std::string(serve::to_string(t.to)).c_str());
    }
  }
  if (!server.rung_log().empty()) {
    std::printf("rung transitions:\n");
    for (const auto& t : server.rung_log()) {
      std::printf("  cycle %10lld  r%d -> r%d  (%s)\n", t.cycle, t.from,
                  t.to, std::string(serve::to_string(t.reason)).c_str());
    }
  }
  std::printf("json: %s\n", stats.to_json().c_str());

  if (!stats.accounted()) {
    throw Error(ErrorCategory::kServe,
                "request accounting mismatch: " +
                    std::to_string(stats.submitted) + " submitted but only " +
                    std::to_string(stats.rejected_queue_full +
                                   stats.shed_deadline + stats.completed +
                                   stats.failed) +
                    " accounted for");
  }
  if (stats.failed > 0) {
    throw Error(ErrorCategory::kServe,
                std::to_string(stats.failed) +
                    " request(s) failed on a degraded rung");
  }
  return 0;
}

/// --fleet: everything the fleet simulator needs from the command line.
struct FleetCliOptions {
  std::string spec;   ///< REPLICAS[:REQUESTS[:SEED]]
  std::string chaos;  ///< --fleet-chaos PLAN[:SEED]; empty = no chaos
  std::string models = "alexnet,vgg-e,inception-mini,resnet-mini";
  bool autoscale = false;
};

/// --fleet: multi-tenant fleet simulation over the shared-cache / dynamic-
/// batching / weighted-fair runtime (serve/fleet.h). Each named model gets
/// its own testbed + degradation ladder (the DSE is paid once per model via
/// the process-wide memo) and two tenants: a steady stream near the pool's
/// drain rate and an oscillating bursty neighbor the fair-share admission
/// must contain.
int run_fleet(const fpga::Device& dev, const toolflow::ToolflowOptions& opt,
              const FleetCliOptions& fo) {
  int replicas = 2;
  std::size_t requests = 300;
  std::uint64_t seed = 1;
  {
    std::istringstream is(fo.spec);
    std::string f;
    if (std::getline(is, f, ':') && !f.empty()) replicas = std::atoi(f.c_str());
    if (std::getline(is, f, ':') && !f.empty()) requests = std::stoull(f);
    if (std::getline(is, f, ':') && !f.empty()) seed = std::stoull(f);
  }
  if (replicas < 1 || requests == 0) {
    throw ServeError(ServeError::Reason::kConfig,
                     "--fleet wants REPLICAS[:REQUESTS[:SEED]] with replicas "
                     ">= 1 and requests >= 1, got '" +
                         fo.spec + "'");
  }

  toolflow::LadderOptions lopt;
  lopt.optimizer = opt.optimizer;
  lopt.threads = opt.threads;
  std::vector<serve::FleetModel> models;
  {
    std::istringstream is(fo.models);
    std::string name;
    while (std::getline(is, name, ',')) {
      if (name.empty()) continue;
      auto tb = toolflow::build_testbed_ladder(zoo_model(name), dev, lopt);
      models.push_back({name, std::move(tb.net), std::move(tb.ws),
                        std::move(tb.ladder), replicas});
    }
  }
  if (models.empty()) {
    throw ServeError(ServeError::Reason::kConfig,
                     "--fleet-models wants a comma-separated model list");
  }

  serve::FleetConfig cfg;
  cfg.threads = opt.threads;
  std::vector<serve::TenantConfig> tenants;
  std::vector<serve::ArrivalTrace> traces;
  long long max_service = 1;
  for (std::size_t m = 0; m < models.size(); ++m) {
    const auto& lad = models[m].ladder;
    const long long svc = lad.rungs[lad.home].service_cycles;
    max_service = std::max(max_service, svc);

    serve::TenantConfig steady;
    steady.name = models[m].name + "/steady";
    steady.model = m;
    steady.weight = 2;
    steady.queue_capacity = 32;
    steady.deadline_cycles = 12 * svc;
    steady.batch_cap = 8;
    steady.batch_age_cycles = svc;
    serve::TenantConfig bursty = steady;
    bursty.name = models[m].name + "/bursty";
    bursty.weight = 1;
    tenants.push_back(std::move(steady));
    traces.push_back(serve::ArrivalTrace::synthetic(
        requests, std::max<long long>(3 * svc / (2 * replicas), 1),
        seed + 2 * m, /*surge=*/2.0));
    tenants.push_back(std::move(bursty));
    const std::size_t periods = std::max<std::size_t>(requests / 50, 2);
    const std::size_t per_phase =
        std::max<std::size_t>(requests / (2 * periods), 1);
    traces.push_back(serve::ArrivalTrace::oscillating(
        periods, per_phase, std::max<long long>(svc / (2 * replicas), 1),
        std::max<long long>(6 * svc / replicas, 1), seed + 2 * m + 1));
  }
  if (fo.autoscale) {
    cfg.autoscale.enabled = true;
    cfg.autoscale.min_replicas = 1;
    cfg.autoscale.max_replicas = replicas + 2;
    cfg.autoscale.up_queue_frac = 0.15;
    cfg.autoscale.down_queue_frac = 0.05;
    cfg.autoscale.dwell_cycles = 2 * max_service;
    cfg.autoscale.spinup_cold_cycles = max_service;
    cfg.autoscale.spinup_warm_cycles =
        std::max<long long>(max_service / 8, 1);
  }

  // --fleet-chaos: build the seeded fault campaign, arm hedging (the
  // tail-rescue path the bench measures), and scale the respawn ledger to
  // the fleet's service times so quarantine downtime is visible but finite.
  fault::FleetFaultPlan plan;
  std::uint64_t chaos_seed = seed;
  if (!fo.chaos.empty()) {
    std::string spec = fo.chaos;
    if (const auto pos = spec.find(':'); pos != std::string::npos) {
      chaos_seed = std::stoull(spec.substr(pos + 1));
      spec = spec.substr(0, pos);
    }
    plan = fault::make_fleet_campaign(spec, chaos_seed, models.size(),
                                      replicas, max_service);
    cfg.hedge.enabled = true;
    cfg.hedge.delay_cycles = std::max<long long>(max_service / 4, 1);
    if (!fo.autoscale) {
      cfg.autoscale.spinup_cold_cycles = max_service;
      cfg.autoscale.spinup_warm_cycles =
          std::max<long long>(max_service / 8, 1);
    }
  }

  std::printf("fleet: %zu model(s) x %d replica(s), %zu tenants, ~%zu "
              "requests/tenant, threads %d%s%s\n",
              models.size(), replicas, tenants.size(), requests, cfg.threads,
              fo.autoscale ? ", autoscale on" : "",
              fo.chaos.empty() ? "" : ", chaos on");
  for (const auto& m : models) {
    std::printf("  %-16s %zu rungs, home %zu: %lld cycles/request\n",
                m.name.c_str(), m.ladder.rungs.size(), m.ladder.home,
                m.ladder.rungs[m.ladder.home].service_cycles);
  }

  if (!plan.empty()) {
    std::printf("chaos plan '%s' (seed %llu): %zu strike(s)\n",
                fo.chaos.c_str(),
                static_cast<unsigned long long>(chaos_seed),
                plan.events.size());
    for (const auto& e : plan.events) {
      std::printf("  %s\n", e.describe().c_str());
    }
  }

  serve::FleetServer fleet(std::move(models), std::move(tenants), cfg);
  const serve::FleetStats stats = fleet.run(traces, plan);

  std::printf("\nfleet stats:\n%s", stats.summary().c_str());
  if (!fleet.scale_log().empty()) {
    std::printf("scale events:\n");
    for (const auto& e : fleet.scale_log()) {
      std::printf("  cycle %10lld  %-16s %s -> %d replica(s)\n", e.cycle,
                  fleet.models()[e.model].name.c_str(),
                  e.up ? "(scale-up)" : "(scale-down)", e.replicas_after);
    }
  }
  for (std::size_t m = 0; m < fleet.rung_logs().size(); ++m) {
    for (std::size_t r = 0; r < fleet.rung_logs()[m].size(); ++r) {
      const auto& log = fleet.rung_logs()[m][r];
      if (log.empty()) continue;
      std::printf("rung transitions %s replica %zu:\n",
                  fleet.models()[m].name.c_str(), r);
      for (const auto& t : log) {
        std::printf("  cycle %10lld  r%d -> r%d  (%s)\n", t.cycle, t.from,
                    t.to, std::string(serve::to_string(t.reason)).c_str());
      }
    }
  }
  if (!fleet.health_log().empty()) {
    std::printf("fault timeline:\n");
    for (const auto& e : fleet.health_log()) {
      std::printf("  cycle %10lld  %-16s replica %3d  (%s)\n", e.cycle,
                  fleet.models()[e.model].name.c_str(), e.replica,
                  std::string(serve::to_string(e.kind)).c_str());
    }
  }
  std::printf("fleet json: %s\n", stats.to_json().c_str());

  if (!fo.chaos.empty()) {
    // Chaos verdict: every submitted request must land in exactly one
    // terminal bin and every struck replica must be healthy again. Either
    // failure is the fault-campaign exit (4), naming the domain it died in.
    long long lost = 0;
    for (const auto& t : stats.tenants) {
      lost += t.submitted - t.rejected_queue_full - t.shed_deadline -
              t.completed - t.failed;
    }
    if (lost > 0 || stats.unrecovered_replicas > 0) {
      std::string where = "fleet";
      long long unit = -1;
      for (auto it = fleet.health_log().rbegin();
           it != fleet.health_log().rend(); ++it) {
        if (it->replica >= 0) {
          where = fleet.models()[it->model].name + " replica " +
                  std::to_string(it->replica) + " @ cycle " +
                  std::to_string(it->cycle);
          unit = it->replica;
          break;
        }
      }
      throw FaultError("chaos plan '" + fo.chaos + "' left " +
                           std::to_string(lost) + " request(s) lost and " +
                           std::to_string(stats.unrecovered_replicas) +
                           " replica(s) unrecovered (last fault-domain "
                           "event: " + where + ")",
                       where, unit);
    }
    std::printf("chaos campaign absorbed: 0 lost, %lld quarantine(s), "
                "%lld readmit(s), %lld hedge win(s), %lld scrub(s)\n",
                stats.quarantines, stats.readmits, stats.hedge_wins,
                stats.bundles_scrubbed);
  }

  if (!stats.accounted()) {
    throw Error(ErrorCategory::kServe, "fleet request accounting mismatch");
  }
  long long failed = 0;
  for (const auto& t : stats.tenants) failed += t.failed;
  if (failed > 0) {
    throw Error(ErrorCategory::kServe,
                std::to_string(failed) +
                    " request(s) failed on a degraded rung");
  }
  return 0;
}

int run_cli(int argc, char** argv) {
  std::string net_path, model_name = "alexnet", out_dir;
  fpga::Device dev = fpga::zc706();
  toolflow::ToolflowOptions opt;
  bool interval = false;
  bool summary_only = false;
  bool fault_campaign = false;
  std::uint64_t fault_seed = 1;
  ServeCliOptions serve_opts;
  FleetCliOptions fleet_opts;
  fpga::EngineModelParams params;

  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::printf("%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--net")) {
      net_path = next("--net");
    } else if (!std::strcmp(argv[i], "--model")) {
      model_name = next("--model");
    } else if (!std::strcmp(argv[i], "--device")) {
      const std::string d = next("--device");
      if (d == "vc707") dev = fpga::vc707();
      else if (d == "zc706") dev = fpga::zc706();
      else { std::printf("unknown device '%s'\n", d.c_str()); return 2; }
    } else if (!std::strcmp(argv[i], "--budget-mb")) {
      opt.transfer_budget_bytes = std::atoll(next("--budget-mb")) * 1024 * 1024;
    } else if (!std::strcmp(argv[i], "--out")) {
      out_dir = next("--out");
    } else if (!std::strcmp(argv[i], "--no-codegen")) {
      opt.generate_code = false;
    } else if (!std::strcmp(argv[i], "--summary")) {
      summary_only = true;
    } else if (!std::strcmp(argv[i], "--interval-dp")) {
      interval = true;
    } else if (!std::strcmp(argv[i], "--explore-tiles")) {
      params.explore_wino_tiles = true;
    } else if (!std::strcmp(argv[i], "--conventional-only")) {
      params.enable_winograd = false;
    } else if (!std::strcmp(argv[i], "--wino-tile")) {
      params.wino_tile_m = std::atoi(next("--wino-tile"));
    } else if (!std::strcmp(argv[i], "--int8")) {
      params.enable_int8 = true;
    } else if (!std::strcmp(argv[i], "--threads")) {
      opt.threads = std::atoi(next("--threads"));
      opt.optimizer.threads = opt.threads;
    } else if (!std::strcmp(argv[i], "--protect")) {
      opt.protect = true;
    } else if (!std::strcmp(argv[i], "--fault-campaign")) {
      fault_campaign = true;
    } else if (!std::strcmp(argv[i], "--fault-seed")) {
      fault_seed = static_cast<std::uint64_t>(
          std::strtoull(next("--fault-seed"), nullptr, 10));
    } else if (!std::strcmp(argv[i], "--serve")) {
      serve_opts.spec = next("--serve");
    } else if (!std::strcmp(argv[i], "--serve-deadline")) {
      serve_opts.deadline = std::atoll(next("--serve-deadline"));
    } else if (!std::strcmp(argv[i], "--serve-queue")) {
      serve_opts.queue =
          static_cast<std::size_t>(std::atoll(next("--serve-queue")));
    } else if (!std::strcmp(argv[i], "--serve-replicas")) {
      serve_opts.replicas = std::atoi(next("--serve-replicas"));
    } else if (!std::strcmp(argv[i], "--serve-retries")) {
      serve_opts.retries = std::atoi(next("--serve-retries"));
    } else if (!std::strcmp(argv[i], "--serve-ladder")) {
      serve_opts.ladder = next("--serve-ladder");
    } else if (!std::strcmp(argv[i], "--serve-fault")) {
      serve_opts.fault = next("--serve-fault");
    } else if (!std::strcmp(argv[i], "--fleet")) {
      fleet_opts.spec = next("--fleet");
    } else if (!std::strcmp(argv[i], "--fleet-chaos")) {
      fleet_opts.chaos = next("--fleet-chaos");
    } else if (!std::strcmp(argv[i], "--fleet-models")) {
      fleet_opts.models = next("--fleet-models");
    } else if (!std::strcmp(argv[i], "--fleet-autoscale")) {
      fleet_opts.autoscale = true;
    } else if (!std::strcmp(argv[i], "--help") || !std::strcmp(argv[i], "-h")) {
      usage();
      return 0;
    } else {
      std::printf("unknown option '%s'\n\n", argv[i]);
      usage();
      return 2;
    }
  }

  // --fleet brings its own model list; the single-model selection below
  // does not apply. --fleet-chaos alone implies the default fleet.
  if (!fleet_opts.spec.empty() || !fleet_opts.chaos.empty()) {
    if (fleet_opts.spec.empty()) fleet_opts.spec = "2:300:1";
    std::printf("target: %s (%s), %.1f GB/s DDR, %lld DSP48E, %lld "
                "BRAM18K\n\n",
                dev.name.c_str(), dev.chip.c_str(),
                dev.bandwidth_bytes_per_s / 1e9, dev.capacity.dsp,
                dev.capacity.bram18k);
    return run_fleet(dev, opt, fleet_opts);
  }

  nn::Network net;
  if (!net_path.empty()) {
    net = caffe::import_prototxt_file(net_path);
  } else if (model_name == "alexnet") {
    net = nn::alexnet();
  } else if (model_name == "vgg-e") {
    net = nn::vgg_e();
  } else if (model_name == "vgg16") {
    net = nn::vgg16();
  } else if (model_name == "vgg-e-head") {
    net = nn::vgg_e_head();
  } else if (model_name == "inception-mini") {
    net = nn::inception_mini();
  } else if (model_name == "resnet-mini") {
    net = nn::resnet_mini();
  } else {
    std::printf("unknown model '%s'\n", model_name.c_str());
    return 2;
  }
  std::printf("%s", net.summary().c_str());
  std::printf("%s\n", nn::graph_shape_line(net).c_str());
  if (summary_only) return 0;
  std::printf("target: %s (%s), %.1f GB/s DDR, %lld DSP48E, %lld BRAM18K\n\n",
              dev.name.c_str(), dev.chip.c_str(),
              dev.bandwidth_bytes_per_s / 1e9, dev.capacity.dsp,
              dev.capacity.bram18k);

  if (fault_campaign) return run_fault_campaign(net, dev, opt, fault_seed);
  if (!serve_opts.spec.empty()) {
    return run_serve(net, dev, opt, serve_opts, fault_seed);
  }

  // The tool-flow uses the fast prefix DP; --interval-dp swaps in the
  // paper's Algorithm 1 (same result, validated by tests).
  toolflow::ToolflowResult result;
  if (interval || params.explore_wino_tiles || !params.enable_winograd ||
      params.wino_tile_m != 4 || params.enable_int8) {
    // Custom engine model path.
    if (opt.protect) {
      params.protect = true;
      dev.protection.enabled = true;
    }
    const fpga::EngineModel model(dev, params);
    result.full_net = net;
    result.accel_net = net.accelerated_portion();
    core::OptimizerOptions oo = opt.optimizer;
    oo.transfer_budget_bytes =
        opt.transfer_budget_bytes > 0
            ? opt.transfer_budget_bytes
            : result.accel_net.unfused_feature_transfer_bytes(
                  dev.data_bytes) +
                  static_cast<long long>(result.accel_net.size()) *
                      oo.transfer_unit_bytes;
    result.optimization = interval
                              ? core::optimize_interval(result.accel_net,
                                                        model, oo)
                              : core::optimize(result.accel_net, model, oo);
    if (!result.optimization.feasible) {
      throw InfeasibleError("toolflow: " +
                            result.optimization.infeasible_reason);
    }
    result.report =
        core::make_report(result.optimization.strategy, result.accel_net,
                          dev);
    if (params.enable_int8) {
      // Cycles half of the accuracy-vs-cycles trade: the same DSE with the
      // int8 ladders withheld, so the delta is exactly what int8 bought.
      fpga::EngineModelParams p16 = params;
      p16.enable_int8 = false;
      const fpga::EngineModel model16(dev, p16);
      const auto r16 = interval
                           ? core::optimize_interval(result.accel_net,
                                                     model16, oo)
                           : core::optimize(result.accel_net, model16, oo);
      long long int8_layers = 0, conv_layers = 0;
      for (const auto& g : result.optimization.strategy.groups) {
        for (const auto& ipl : g.impls) {
          if (ipl.cfg.algo == fpga::ConvAlgo::kNone) continue;
          ++conv_layers;
          if (ipl.cfg.int8) ++int8_layers;
        }
      }
      std::printf("int8 trade (vs 16-bit-only DSE): %lld of %lld conv "
                  "layers chose int8\n",
                  int8_layers, conv_layers);
      if (r16.feasible) {
        const auto rep16 =
            core::make_report(r16.strategy, result.accel_net, dev);
        print_report_line("16-bit only", rep16);
        print_report_line("with int8", result.report);
        const double d =
            rep16.latency_ms > 0
                ? 100.0 * (result.report.latency_ms - rep16.latency_ms) /
                      rep16.latency_ms
                : 0.0;
        std::printf("  latency delta %+.2f %%\n\n", d);
      }
      print_int8_accuracy(result.accel_net, opt.weight_seed);
    }
    if (opt.generate_code && result.accel_net.is_chain()) {
      const auto ws =
          nn::WeightStore::deterministic(result.accel_net, opt.weight_seed);
      result.design = codegen::generate_design(
          result.accel_net, result.optimization.strategy, ws, opt.codegen);
    }
  } else if (opt.protect) {
    result = run_protected_with_delta(net, dev, opt);
  } else {
    result = toolflow::run_toolflow(net, dev, opt);
  }

  std::printf("%s\n", result.summary().c_str());
  std::printf("%s",
              result.optimization.strategy.describe(result.accel_net)
                  .c_str());
  if (opt.generate_code && !out_dir.empty() && result.accel_net.is_chain()) {
    codegen::write_design(result.design, out_dir);
    std::printf("\nHLS project written to %s/\n", out_dir.c_str());
  } else if (opt.generate_code && !out_dir.empty()) {
    std::printf("\ncodegen skipped: HLS emission supports chain nets only\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Every failure funnels through the typed hierarchy: one categorized line
  // on stderr and a category-specific exit code, so scripts can distinguish
  // "your prototxt is malformed" (2) from "this network cannot fit" (3)
  // from "the injected fault was not absorbed" (4).
  try {
    return run_cli(argc, argv);
  } catch (const Error& e) {
    std::fprintf(stderr, "hetacc: %s error: %s\n",
                 std::string(to_string(e.category())).c_str(), e.what());
    return e.exit_code();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "hetacc: internal error: %s\n", e.what());
    return 1;
  }
}
