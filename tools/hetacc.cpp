// hetacc — command-line front end of the automatic tool-flow (paper Fig. 3):
// Caffe deploy prototxt + FPGA spec in, strategy report + generated HLS
// project out.
//
//   hetacc [--net deploy.prototxt | --model alexnet|vgg-e|vgg16|vgg-e-head]
//          [--device zc706|vc707] [--budget-mb N] [--out DIR]
//          [--no-codegen] [--interval-dp] [--explore-tiles]
//          [--conventional-only] [--wino-tile M] [--threads N]

#include <cstdio>
#include <cstring>
#include <string>

#include "caffe/importer.h"
#include "nn/model_zoo.h"
#include "toolflow/toolflow.h"

using namespace hetacc;

namespace {

void usage() {
  std::printf(
      "usage: hetacc [options]\n"
      "  --net FILE          Caffe deploy prototxt to map\n"
      "  --model NAME        built-in model: alexnet | vgg-e | vgg16 | "
      "vgg-e-head (default alexnet)\n"
      "  --device NAME       zc706 (default) | vc707\n"
      "  --budget-mb N       feature-map transfer constraint T in MB\n"
      "  --out DIR           write the generated HLS project here\n"
      "  --no-codegen        stop after the strategy report\n"
      "  --interval-dp       use the paper's Algorithm 1 interval DP\n"
      "  --explore-tiles     per-layer Winograd tile-size exploration\n"
      "  --conventional-only disable Winograd (homogeneous baseline)\n"
      "  --wino-tile M       uniform Winograd tile size (default 4)\n"
      "  --threads N         worker threads for the fusion-table DSE and the\n"
      "                      functional-simulation kernels (0 = all cores,\n"
      "                      default 1); strategies and simulated tensors are\n"
      "                      identical for any N\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string net_path, model_name = "alexnet", out_dir;
  fpga::Device dev = fpga::zc706();
  toolflow::ToolflowOptions opt;
  bool interval = false;
  fpga::EngineModelParams params;

  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::printf("%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--net")) {
      net_path = next("--net");
    } else if (!std::strcmp(argv[i], "--model")) {
      model_name = next("--model");
    } else if (!std::strcmp(argv[i], "--device")) {
      const std::string d = next("--device");
      if (d == "vc707") dev = fpga::vc707();
      else if (d == "zc706") dev = fpga::zc706();
      else { std::printf("unknown device '%s'\n", d.c_str()); return 2; }
    } else if (!std::strcmp(argv[i], "--budget-mb")) {
      opt.transfer_budget_bytes = std::atoll(next("--budget-mb")) * 1024 * 1024;
    } else if (!std::strcmp(argv[i], "--out")) {
      out_dir = next("--out");
    } else if (!std::strcmp(argv[i], "--no-codegen")) {
      opt.generate_code = false;
    } else if (!std::strcmp(argv[i], "--interval-dp")) {
      interval = true;
    } else if (!std::strcmp(argv[i], "--explore-tiles")) {
      params.explore_wino_tiles = true;
    } else if (!std::strcmp(argv[i], "--conventional-only")) {
      params.enable_winograd = false;
    } else if (!std::strcmp(argv[i], "--wino-tile")) {
      params.wino_tile_m = std::atoi(next("--wino-tile"));
    } else if (!std::strcmp(argv[i], "--threads")) {
      opt.threads = std::atoi(next("--threads"));
      opt.optimizer.threads = opt.threads;
    } else if (!std::strcmp(argv[i], "--help") || !std::strcmp(argv[i], "-h")) {
      usage();
      return 0;
    } else {
      std::printf("unknown option '%s'\n\n", argv[i]);
      usage();
      return 2;
    }
  }

  nn::Network net;
  try {
    if (!net_path.empty()) {
      net = caffe::import_prototxt_file(net_path);
    } else if (model_name == "alexnet") {
      net = nn::alexnet();
    } else if (model_name == "vgg-e") {
      net = nn::vgg_e();
    } else if (model_name == "vgg16") {
      net = nn::vgg16();
    } else if (model_name == "vgg-e-head") {
      net = nn::vgg_e_head();
    } else {
      std::printf("unknown model '%s'\n", model_name.c_str());
      return 2;
    }
  } catch (const std::exception& e) {
    std::printf("failed to load network: %s\n", e.what());
    return 1;
  }
  std::printf("%s", net.summary().c_str());
  std::printf("target: %s (%s), %.1f GB/s DDR, %lld DSP48E, %lld BRAM18K\n\n",
              dev.name.c_str(), dev.chip.c_str(),
              dev.bandwidth_bytes_per_s / 1e9, dev.capacity.dsp,
              dev.capacity.bram18k);

  try {
    // The tool-flow uses the fast prefix DP; --interval-dp swaps in the
    // paper's Algorithm 1 (same result, validated by tests).
    toolflow::ToolflowResult result;
    if (interval || params.explore_wino_tiles || !params.enable_winograd ||
        params.wino_tile_m != 4) {
      // Custom engine model path.
      const fpga::EngineModel model(dev, params);
      result.full_net = net;
      result.accel_net = net.accelerated_portion();
      core::OptimizerOptions oo = opt.optimizer;
      oo.transfer_budget_bytes =
          opt.transfer_budget_bytes > 0
              ? opt.transfer_budget_bytes
              : result.accel_net.unfused_feature_transfer_bytes(
                    dev.data_bytes) +
                    static_cast<long long>(result.accel_net.size()) *
                        oo.transfer_unit_bytes;
      result.optimization = interval
                                ? core::optimize_interval(result.accel_net,
                                                          model, oo)
                                : core::optimize(result.accel_net, model, oo);
      if (!result.optimization.feasible) {
        std::printf("no feasible strategy under the budget\n");
        return 1;
      }
      result.report =
          core::make_report(result.optimization.strategy, result.accel_net,
                            dev);
      if (opt.generate_code) {
        const auto ws =
            nn::WeightStore::deterministic(result.accel_net, opt.weight_seed);
        result.design = codegen::generate_design(
            result.accel_net, result.optimization.strategy, ws, opt.codegen);
      }
    } else {
      result = toolflow::run_toolflow(net, dev, opt);
    }

    std::printf("%s\n", result.summary().c_str());
    std::printf("%s",
                result.optimization.strategy.describe(result.accel_net)
                    .c_str());
    if (opt.generate_code && !out_dir.empty()) {
      codegen::write_design(result.design, out_dir);
      std::printf("\nHLS project written to %s/\n", out_dir.c_str());
    }
  } catch (const std::exception& e) {
    std::printf("tool-flow failed: %s\n", e.what());
    return 1;
  }
  return 0;
}
