// ABL: design-choice ablations behind Fig. 1 / §7.2 — the four corners of
// {fusion on/off} x {heterogeneous algorithms on/off}, plus the Winograd
// tile-size exploration the paper fixes at F(4x4, 3x3).

#include <cstdio>

#include "baseline/uniform.h"
#include "bench_util.h"
#include "core/dp_optimizer.h"
#include "nn/model_zoo.h"

using namespace hetacc;

namespace {

core::OptimizeResult run(const nn::Network& net, const fpga::Device& dev,
                         bool winograd, bool fusion) {
  fpga::EngineModelParams p;
  p.enable_winograd = winograd;
  const fpga::EngineModel model(dev, p);
  core::OptimizerOptions oo;
  oo.transfer_budget_bytes = 64ll * 1024 * 1024;
  if (!fusion) oo.bnb.max_group_layers = 1;
  return core::optimize(net, model, oo);
}

}  // namespace

int main() {
  bench::header("ABL", "fusion x heterogeneity ablation (VGG-E head, ZC706)");

  const fpga::Device dev = fpga::zc706();
  const nn::Network head = nn::vgg_e_head();

  struct Corner {
    const char* name;
    bool winograd;
    bool fusion;
  };
  const Corner corners[] = {
      {"conventional, unfused", false, false},
      {"conventional, fused", false, true},
      {"heterogeneous, unfused", true, false},
      {"heterogeneous, fused (the paper's design)", true, true},
  };

  std::printf("%-44s %14s %10s %12s\n", "configuration", "latency (cyc)",
              "GOPS", "transfer MB");
  long long base = 0;
  for (const auto& c : corners) {
    const auto r = run(head, dev, c.winograd, c.fusion);
    if (!r.feasible) {
      std::printf("%-44s infeasible\n", c.name);
      continue;
    }
    if (!base) base = r.strategy.latency_cycles();
    std::printf("%-44s %14lld %10.1f %12.2f\n", c.name,
                r.strategy.latency_cycles(),
                r.strategy.effective_gops(head, dev.frequency_hz),
                r.strategy.transfer_bytes() / bench::kMB);
  }

  // Historical reference point: a single uniform conventional engine that
  // serves all layers (the paper's [27]-style pre-fusion design).
  {
    const fpga::EngineModel model(dev);
    const auto u = baseline::design_uniform(head, model);
    if (u) {
      const double gops =
          static_cast<double>(head.total_ops()) /
          (static_cast<double>(u->latency_cycles) / dev.frequency_hz) / 1e9;
      std::printf("%-44s %14lld %10.1f %12.2f   (tn=%d tm=%d)\n",
                  "uniform single engine (Zhang'15-style)",
                  u->latency_cycles, gops,
                  static_cast<double>(u->transfer_bytes) / bench::kMB, u->tn,
                  u->tm);
    }
  }

  // Winograd tile-size ablation: re-run the fused heterogeneous optimizer
  // with each uniform tile size (the paper fixes m = 4).
  std::printf("\nWinograd tile-size ablation (uniform F(m x m, 3 x 3)):\n");
  std::printf("%8s %14s %10s %16s\n", "m", "latency (cyc)", "GOPS",
              "mult reduction");
  for (int m : {2, 4, 6}) {
    fpga::EngineModelParams p;
    p.wino_tile_m = m;
    const fpga::EngineModel model(dev, p);
    core::OptimizerOptions oo;
    oo.transfer_budget_bytes = 64ll * 1024 * 1024;
    const auto r = core::optimize(head, model, oo);
    const double n = m + 2;
    const double reduction = (m * m * 9.0) / (n * n);
    if (!r.feasible) {
      std::printf("%8d infeasible\n", m);
      continue;
    }
    std::printf("%8d %14lld %10.1f %15.2fx\n", m,
                r.strategy.latency_cycles(),
                r.strategy.effective_gops(head, dev.frequency_hz), reduction);
  }
  // Extension: per-layer tile-size choice inside Algorithm 2.
  {
    fpga::EngineModelParams p;
    p.explore_wino_tiles = true;
    const fpga::EngineModel model(dev, p);
    core::OptimizerOptions oo;
    oo.transfer_budget_bytes = 64ll * 1024 * 1024;
    const auto r = core::optimize(head, model, oo);
    if (r.feasible) {
      std::printf("%8s %14lld %10.1f %16s\n", "mixed",
                  r.strategy.latency_cycles(),
                  r.strategy.effective_gops(head, dev.frequency_hz),
                  "per-layer");
    }
  }
  bench::note("F(4x4,3x3) balances multiplication reduction against "
              "transform cost/numerics — the paper's uniform choice.");
  return 0;
}
