// KERN: kernel-layer sweep for §2.1 / DESIGN.md §9 — the retained scalar
// seed implementations vs the blocked/packed SIMD kernel layer, across VGG-
// and AlexNet-shaped 3x3 conv layers and thread counts. Plain chrono harness
// (no google-benchmark) so the binary also runs in CI Release smoke jobs.
// Each timing point is median-of-N after one untimed warmup run (the warmup
// faults in pages, grows the scratch arena to its high-water mark, and spins
// up the worker pool, so the samples measure steady state).
//
// Emits a table and BENCH_kernels.json. Alongside the fresh rows ("rev":
// "pr4") the JSON re-emits the committed pre-SIMD numbers for the two
// headline kernels ("rev": "pr2"), and every fresh row carries
// speedup_vs_pr2 where a matching pr2 row exists — the before/after pair the
// tentpole is judged on.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "algo/conv_variants.h"
#include "algo/winograd_conv.h"
#include "bench_util.h"
#include "kernels/gemm.h"
#include "kernels/parallel.h"
#include "nn/reference.h"

using namespace hetacc;

namespace {

struct Geometry {
  const char* model;
  int in_c, out_c, hw, k;
  bool wino_only;  // large-tile-batch geometry: Winograd rows only
};

// One conv layer per VGG-E stage plus the widest AlexNet 3x3 layer, plus a
// VGG conv2-class 112x112 plane whose tile rows are twice as wide (28 F(4,3)
// tile columns per strip) — the large-batch stress for the batched Winograd
// transform grids.
constexpr Geometry kGeometries[] = {
    {"vgg_conv3", 64, 64, 56, 3, false},
    {"vgg_conv4", 128, 128, 28, 3, false},
    {"vgg_conv5", 256, 256, 14, 3, false},
    {"alexnet_conv4", 256, 384, 13, 3, false},
    {"vgg_conv2_batch", 64, 64, 112, 3, true},
};

// Committed single-thread/4-thread numbers from the pre-SIMD kernel layer
// (PR 2's BENCH_kernels.json, RelWithDebInfo-independent Release run) for
// the two headline kernels. Frozen here so the before/after comparison
// survives regeneration of the JSON.
struct Pr2Row {
  const char* kernel;
  const char* geometry;
  int threads;
  double ms;
};
constexpr Pr2Row kPr2[] = {
    {"im2col_gemm", "vgg_conv3", 1, 20.7494},
    {"im2col_gemm", "vgg_conv3", 4, 20.4552},
    {"winograd_f43_gemm", "vgg_conv3", 1, 26.9236},
    {"winograd_f43_gemm", "vgg_conv3", 4, 27.8188},
    {"im2col_gemm", "vgg_conv4", 1, 18.9647},
    {"im2col_gemm", "vgg_conv4", 4, 18.8462},
    {"winograd_f43_gemm", "vgg_conv4", 1, 28.3939},
    {"winograd_f43_gemm", "vgg_conv4", 4, 28.9138},
    {"im2col_gemm", "vgg_conv5", 1, 17.9022},
    {"im2col_gemm", "vgg_conv5", 4, 19.1167},
    {"winograd_f43_gemm", "vgg_conv5", 1, 73.8811},
    {"winograd_f43_gemm", "vgg_conv5", 4, 71.8684},
    {"im2col_gemm", "alexnet_conv4", 1, 24.0606},
    {"im2col_gemm", "alexnet_conv4", 4, 26.2560},
    {"winograd_f43_gemm", "alexnet_conv4", 1, 124.8827},
    {"winograd_f43_gemm", "alexnet_conv4", 4, 113.0594},
};

double pr2_ms(const char* kernel, const char* geometry, int threads) {
  for (const Pr2Row& r : kPr2) {
    if (r.threads == threads && r.ms > 0.0 &&
        std::strcmp(r.kernel, kernel) == 0 &&
        std::strcmp(r.geometry, geometry) == 0) {
      return r.ms;
    }
  }
  return 0.0;
}

struct Record {
  std::string kernel;
  Geometry g;
  int threads;
  double ms;
  double speedup;      // vs the matching scalar baseline (1.0 for baselines)
  double speedup_pr2;  // vs the committed pre-SIMD row (0 = no pr2 row)
  const char* rev;
  double speedup_i16 = 0.0;  // int8 rows: vs the i16 path, same threads
};

struct Setup {
  nn::Tensor in;
  nn::FilterBank f;
  std::vector<float> bias;

  explicit Setup(const Geometry& g)
      : in(g.in_c, g.hw, g.hw),
        f(g.out_c, g.in_c, g.k),
        bias(static_cast<std::size_t>(g.out_c)) {
    nn::fill_deterministic(in, 1);
    nn::fill_deterministic(f, 2);
    nn::fill_deterministic(bias, 3);
  }
};

/// One untimed warmup, then median of the collected samples: at least 5,
/// stopping once ~250 ms of samples accumulated (cap 25) — robust against
/// both scheduler spikes (median, not min-skewed distribution tails) and
/// cold-start effects (warmup).
template <typename Fn>
double time_ms(const Fn& fn) {
  using clock = std::chrono::steady_clock;
  fn();  // warmup (pages, arena high-water, worker pool)
  std::vector<double> samples;
  double total = 0.0;
  while (samples.size() < 5 || (total < 250.0 && samples.size() < 25)) {
    const auto t0 = clock::now();
    fn();
    const auto t1 = clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    samples.push_back(ms);
    total += ms;
  }
  std::sort(samples.begin(), samples.end());
  const std::size_t n = samples.size();
  return n % 2 ? samples[n / 2]
               : 0.5 * (samples[n / 2 - 1] + samples[n / 2]);
}

volatile float g_sink = 0.0f;  // defeats whole-call dead-code elimination

void emit(std::vector<Record>& out, const char* kernel, const Geometry& g,
          int threads, double ms, double baseline_ms, double i16_ms = 0.0,
          const char* rev = "pr4") {
  const double p2 = pr2_ms(kernel, g.model, threads);
  Record r{kernel,
           g,
           threads,
           ms,
           baseline_ms > 0.0 ? baseline_ms / ms : 1.0,
           p2 > 0.0 ? p2 / ms : 0.0,
           rev,
           i16_ms > 0.0 ? i16_ms / ms : 0.0};
  std::printf("  %-24s %-16s threads=%d  %9.3f ms  %6.2fx", kernel, g.model,
              threads, ms, r.speedup);
  if (r.speedup_pr2 > 0.0) std::printf("  (%.2fx vs pr2)", r.speedup_pr2);
  if (r.speedup_i16 > 0.0) std::printf("  (%.2fx vs i16)", r.speedup_i16);
  std::printf("\n");
  out.push_back(std::move(r));
}

void write_json(const std::vector<Record>& recs, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (!f) {
    std::printf("warning: cannot open %s for writing\n", path);
    return;
  }
  std::fprintf(f, "[\n");
  for (std::size_t i = 0; i < recs.size(); ++i) {
    const Record& r = recs[i];
    std::fprintf(f,
                 "  {\"kernel\": \"%s\", \"geometry\": \"%s\", \"in_c\": %d, "
                 "\"out_c\": %d, \"hw\": %d, \"k\": %d, \"threads\": %d, "
                 "\"ms\": %.4f, \"speedup_vs_scalar\": %.3f, "
                 "\"speedup_vs_pr2\": %.3f, \"speedup_vs_i16\": %.3f, "
                 "\"rev\": \"%s\"}%s\n",
                 r.kernel.c_str(), r.g.model, r.g.in_c, r.g.out_c, r.g.hw,
                 r.g.k, r.threads, r.ms, r.speedup, r.speedup_pr2,
                 r.speedup_i16, r.rev, i + 1 < recs.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("wrote %s (%zu records)\n", path, recs.size());
}

/// Re-emits the frozen pre-SIMD rows so the JSON is self-contained.
void append_pr2_rows(std::vector<Record>& recs) {
  for (const Pr2Row& p : kPr2) {
    if (p.ms <= 0.0) continue;
    for (const Geometry& g : kGeometries) {
      if (std::strcmp(g.model, p.geometry) == 0) {
        recs.push_back(Record{p.kernel, g, p.threads, p.ms, 1.0, 0.0, "pr2"});
      }
    }
  }
}

}  // namespace

int main() {
  bench::header("KERN", "kernel layer: scalar seed vs blocked/packed paths");

  const int hw_cores = kernels::resolve_threads(0);
  std::vector<int> thread_counts = {1, 2, 4, 8};
  if (std::find(thread_counts.begin(), thread_counts.end(), hw_cores) ==
      thread_counts.end()) {
    thread_counts.push_back(hw_cores);
  }
  std::printf("hardware threads: %d; SIMD micro-kernels: %s; sweeping "
              "threads {",
              hw_cores, kernels::simd_enabled() ? "on" : "off (scalar)");
  for (std::size_t i = 0; i < thread_counts.size(); ++i) {
    std::printf("%s%d", i ? ", " : "", thread_counts[i]);
  }
  std::printf("}\n\n");

  const algo::WinogradTransform wt = algo::winograd_f4x3();
  constexpr int kDataFrac = 12, kWeightFrac = 14, kOutFrac = 10;

  std::vector<Record> recs;
  for (const Geometry& g : kGeometries) {
    Setup s(g);
    const algo::TransformedFilters tf = algo::transform_filters(wt, s.f);
    std::printf("%s: %dx%dx%d, %d filters %dx%d%s\n", g.model, g.in_c, g.hw,
                g.hw, g.out_c, g.k, g.k,
                g.wino_only ? " (winograd tile-batch stress)" : "");

    // int8 recipe from the observed float ranges (bench-local calibration —
    // one reference run, untimed).
    const auto min_max = [](const nn::Tensor& t, float& mn, float& mx) {
      mn = mx = 0.0f;
      for (float v : t.vec()) {
        mn = std::min(mn, v);
        mx = std::max(mx, v);
      }
    };
    const nn::Tensor q_ref = algo::conv_im2col(s.in, s.f, s.bias, 1, 1, true);
    float in_mn, in_mx, out_mn, out_mx;
    min_max(s.in, in_mn, in_mx);
    min_max(q_ref, out_mn, out_mx);
    const algo::Int8ConvQuant i8q =
        algo::make_int8_conv_quant(s.f, in_mn, in_mx, out_mn, out_mx);

    // Scalar seed baselines (single-threaded by construction).
    kernels::set_num_threads(1);
    double direct_ms = 0.0, im2col_sc_ms = 0.0, fixed_sc_ms = 0.0,
           wfix_sc_ms = 0.0, i8_sc_ms = 0.0;
    if (!g.wino_only) {
      direct_ms = time_ms([&] {
        g_sink = nn::conv_reference_scalar(s.in, s.f, s.bias, 1, 1, true)
                     .at(0, 0, 0);
      });
      emit(recs, "direct_scalar", g, 1, direct_ms, 0.0);
      im2col_sc_ms = time_ms([&] {
        g_sink = algo::conv_im2col_scalar(s.in, s.f, s.bias, 1, 1, true)
                     .at(0, 0, 0);
      });
      emit(recs, "im2col_scalar", g, 1, im2col_sc_ms, 0.0);
    }
    const double wino_sc_ms = time_ms([&] {
      g_sink = algo::winograd_conv_pretransformed_scalar(tf, s.in, s.bias, 1,
                                                         true)
                   .at(0, 0, 0);
    });
    emit(recs, "winograd_f43_scalar", g, 1, wino_sc_ms, 0.0);
    if (!g.wino_only) {
      fixed_sc_ms = time_ms([&] {
        g_sink = algo::conv_direct_fixed_scalar(s.in, s.f, s.bias, 1, 1, true,
                                                kDataFrac, kWeightFrac,
                                                kOutFrac)
                     .at(0, 0, 0);
      });
      emit(recs, "direct_fixed_scalar", g, 1, fixed_sc_ms, 0.0);
      wfix_sc_ms = time_ms([&] {
        g_sink = algo::winograd_conv_fixed_scalar(wt, s.in, s.f, s.bias, 1,
                                                  true, kDataFrac, kOutFrac)
                     .at(0, 0, 0);
      });
      emit(recs, "winograd_fixed_scalar", g, 1, wfix_sc_ms, 0.0);
      i8_sc_ms = time_ms([&] {
        g_sink = algo::conv_quant_i8_scalar(s.in, s.f, s.bias, 1, 1, true,
                                            i8q)
                     .at(0, 0, 0);
      });
      emit(recs, "im2col_i8_scalar", g, 1, i8_sc_ms, 0.0, 0.0, "pr7");
    }

    // Kernel-layer paths across thread counts. Speedups are quoted against
    // the scalar implementation of the *same algorithm*; the headline
    // "blocked GEMM vs scalar conv" number is im2col_gemm vs direct_scalar.
    for (int t : thread_counts) {
      kernels::set_num_threads(t);
      if (!g.wino_only) {
        emit(recs, "im2col_gemm", g, t, time_ms([&] {
               g_sink = algo::conv_im2col(s.in, s.f, s.bias, 1, 1, true)
                            .at(0, 0, 0);
             }),
             direct_ms);
      }
      emit(recs, "winograd_f43_gemm", g, t, time_ms([&] {
             g_sink =
                 algo::winograd_conv_pretransformed(tf, s.in, s.bias, 1, true)
                     .at(0, 0, 0);
           }),
           wino_sc_ms);
      // i16 and int8 im2col GEMM run on every geometry (including the
      // tile-batch stress one): the i8-vs-i16 pair is the datapath headline.
      const double i16_ms = time_ms([&] {
        g_sink = algo::conv_direct_fixed(s.in, s.f, s.bias, 1, 1, true,
                                         kDataFrac, kWeightFrac, kOutFrac)
                     .at(0, 0, 0);
      });
      emit(recs, "direct_fixed_gemm", g, t, i16_ms, fixed_sc_ms);
      if (!g.wino_only) {
        emit(recs, "winograd_fixed_gemm", g, t, time_ms([&] {
               g_sink = algo::winograd_conv_fixed(wt, s.in, s.f, s.bias, 1,
                                                  true, kDataFrac, kOutFrac)
                            .at(0, 0, 0);
             }),
             wfix_sc_ms);
      }
      emit(recs, "im2col_gemm_i8", g, t, time_ms([&] {
             g_sink =
                 algo::conv_quant_i8(s.in, s.f, s.bias, 1, 1, true, i8q)
                     .at(0, 0, 0);
           }),
           i8_sc_ms, i16_ms, "pr7");
    }
    kernels::set_num_threads(1);
    std::printf("\n");
  }

  append_pr2_rows(recs);
  write_json(recs, "BENCH_kernels.json");
  bench::note(
      "speedup is vs the same-algorithm scalar seed; im2col_gemm is also the "
      "headline blocked-GEMM-vs-scalar-conv comparison (baseline "
      "direct_scalar). rev=pr2 rows are the committed pre-SIMD kernel layer; "
      "speedup_vs_pr2 on rev=pr4 rows is that tentpole before/after. rev=pr7 "
      "rows are the int8 datapath; speedup_vs_i16 compares im2col_gemm_i8 "
      "against direct_fixed_gemm at the same geometry and thread count.");
  return 0;
}
