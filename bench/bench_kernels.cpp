// KERN: supporting microbenchmarks for §2.1 — multiplication counts and CPU
// throughput of the convolution algorithms (direct, im2col+GEMM, Winograd
// F(2,3)/F(4,3), fixed-point variants). Google-benchmark binary.

#include <benchmark/benchmark.h>

#include "algo/conv_variants.h"
#include "algo/winograd_conv.h"
#include "nn/reference.h"

using namespace hetacc;

namespace {

struct ConvSetup {
  nn::Tensor in;
  nn::FilterBank f;
  std::vector<float> bias;

  ConvSetup(int c, int n, int hw, int k)
      : in(c, hw, hw), f(n, c, k), bias(static_cast<std::size_t>(n)) {
    nn::fill_deterministic(in, 1);
    nn::fill_deterministic(f, 2);
    nn::fill_deterministic(bias, 3);
  }
};

void BM_ConvDirect(benchmark::State& state) {
  ConvSetup s(static_cast<int>(state.range(0)),
              static_cast<int>(state.range(0)),
              static_cast<int>(state.range(1)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        nn::conv_reference(s.in, s.f, s.bias, 1, 1, true));
  }
  state.SetItemsProcessed(state.iterations() * s.in.size());
}
BENCHMARK(BM_ConvDirect)->Args({8, 32})->Args({16, 32})->Args({16, 64});

void BM_ConvIm2col(benchmark::State& state) {
  ConvSetup s(static_cast<int>(state.range(0)),
              static_cast<int>(state.range(0)),
              static_cast<int>(state.range(1)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        algo::conv_im2col(s.in, s.f, s.bias, 1, 1, true));
  }
  state.SetItemsProcessed(state.iterations() * s.in.size());
}
BENCHMARK(BM_ConvIm2col)->Args({8, 32})->Args({16, 32})->Args({16, 64});

void BM_ConvWinogradF43(benchmark::State& state) {
  ConvSetup s(static_cast<int>(state.range(0)),
              static_cast<int>(state.range(0)),
              static_cast<int>(state.range(1)), 3);
  const algo::WinogradTransform t = algo::winograd_f4x3();
  const algo::TransformedFilters tf = algo::transform_filters(t, s.f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        algo::winograd_conv_pretransformed(tf, s.in, s.bias, 1, true));
  }
  state.SetItemsProcessed(state.iterations() * s.in.size());
}
BENCHMARK(BM_ConvWinogradF43)->Args({8, 32})->Args({16, 32})->Args({16, 64});

void BM_ConvWinogradF23(benchmark::State& state) {
  ConvSetup s(static_cast<int>(state.range(0)),
              static_cast<int>(state.range(0)),
              static_cast<int>(state.range(1)), 3);
  const algo::WinogradTransform t = algo::winograd_f2x3();
  const algo::TransformedFilters tf = algo::transform_filters(t, s.f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        algo::winograd_conv_pretransformed(tf, s.in, s.bias, 1, true));
  }
}
BENCHMARK(BM_ConvWinogradF23)->Args({16, 32});

void BM_ConvDirectFixed16(benchmark::State& state) {
  ConvSetup s(8, 8, 32, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        algo::conv_direct_fixed(s.in, s.f, s.bias, 1, 1, true, 12, 13, 10));
  }
}
BENCHMARK(BM_ConvDirectFixed16);

void BM_FilterTransformF43(benchmark::State& state) {
  ConvSetup s(static_cast<int>(state.range(0)),
              static_cast<int>(state.range(0)), 8, 3);
  const algo::WinogradTransform t = algo::winograd_f4x3();
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo::transform_filters(t, s.f));
  }
}
BENCHMARK(BM_FilterTransformF43)->Arg(16)->Arg(64);

/// Not a timing benchmark: reports the §2.1 multiplication counts as
/// counters so the harness output documents the 2.25x / 4x reductions.
void BM_MultiplicationCounts(benchmark::State& state) {
  const algo::WinogradTransform f23 = algo::winograd_f2x3();
  const algo::WinogradTransform f43 = algo::winograd_f4x3();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f43.reduction_2d());
  }
  state.counters["F23_tile_mults"] = static_cast<double>(f23.tile_mults_2d());
  state.counters["F23_direct_mults"] =
      static_cast<double>(f23.direct_tile_mults_2d());
  state.counters["F23_reduction"] = f23.reduction_2d();
  state.counters["F43_tile_mults"] = static_cast<double>(f43.tile_mults_2d());
  state.counters["F43_direct_mults"] =
      static_cast<double>(f43.direct_tile_mults_2d());
  state.counters["F43_reduction"] = f43.reduction_2d();
}
BENCHMARK(BM_MultiplicationCounts);

}  // namespace

BENCHMARK_MAIN();
