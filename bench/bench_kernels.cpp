// KERN: kernel-layer sweep for §2.1 / DESIGN.md §9 — the retained scalar
// seed implementations vs the blocked/packed kernel layer, across VGG- and
// AlexNet-shaped 3x3 conv layers and thread counts. Plain chrono harness
// (no google-benchmark) so the binary also runs in CI Release smoke jobs.
// Emits a table and BENCH_kernels.json.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "algo/conv_variants.h"
#include "algo/winograd_conv.h"
#include "bench_util.h"
#include "kernels/parallel.h"
#include "nn/reference.h"

using namespace hetacc;

namespace {

struct Geometry {
  const char* model;
  int in_c, out_c, hw, k;
};

// One conv layer per VGG-E stage plus the widest AlexNet 3x3 layer.
constexpr Geometry kGeometries[] = {
    {"vgg_conv3", 64, 64, 56, 3},
    {"vgg_conv4", 128, 128, 28, 3},
    {"vgg_conv5", 256, 256, 14, 3},
    {"alexnet_conv4", 256, 384, 13, 3},
};

struct Record {
  std::string kernel;
  Geometry g;
  int threads;
  double ms;
  double speedup;  // vs the matching scalar baseline (1.0 for baselines)
};

struct Setup {
  nn::Tensor in;
  nn::FilterBank f;
  std::vector<float> bias;

  explicit Setup(const Geometry& g)
      : in(g.in_c, g.hw, g.hw),
        f(g.out_c, g.in_c, g.k),
        bias(static_cast<std::size_t>(g.out_c)) {
    nn::fill_deterministic(in, 1);
    nn::fill_deterministic(f, 2);
    nn::fill_deterministic(bias, 3);
  }
};

// Min-of-k wall time: repeat until ~250 ms elapsed (at least twice) and
// report the fastest run — robust against scheduler noise on shared boxes.
template <typename Fn>
double time_ms(const Fn& fn) {
  using clock = std::chrono::steady_clock;
  double best = 1e30;
  double total = 0.0;
  int reps = 0;
  while (reps < 2 || (total < 250.0 && reps < 50)) {
    const auto t0 = clock::now();
    fn();
    const auto t1 = clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    best = std::min(best, ms);
    total += ms;
    ++reps;
  }
  return best;
}

volatile float g_sink = 0.0f;  // defeats whole-call dead-code elimination

void emit(std::vector<Record>& out, const char* kernel, const Geometry& g,
          int threads, double ms, double baseline_ms) {
  Record r{kernel, g, threads, ms, baseline_ms > 0.0 ? baseline_ms / ms : 1.0};
  std::printf("  %-24s %-14s threads=%d  %9.3f ms  %6.2fx\n", kernel, g.model,
              threads, ms, r.speedup);
  out.push_back(std::move(r));
}

void write_json(const std::vector<Record>& recs, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (!f) {
    std::printf("warning: cannot open %s for writing\n", path);
    return;
  }
  std::fprintf(f, "[\n");
  for (std::size_t i = 0; i < recs.size(); ++i) {
    const Record& r = recs[i];
    std::fprintf(f,
                 "  {\"kernel\": \"%s\", \"geometry\": \"%s\", \"in_c\": %d, "
                 "\"out_c\": %d, \"hw\": %d, \"k\": %d, \"threads\": %d, "
                 "\"ms\": %.4f, \"speedup_vs_scalar\": %.3f}%s\n",
                 r.kernel.c_str(), r.g.model, r.g.in_c, r.g.out_c, r.g.hw,
                 r.g.k, r.threads, r.ms, r.speedup,
                 i + 1 < recs.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("wrote %s (%zu records)\n", path, recs.size());
}

}  // namespace

int main() {
  bench::header("KERN", "kernel layer: scalar seed vs blocked/packed paths");

  const int hw_cores = kernels::resolve_threads(0);
  std::vector<int> thread_counts = {1, 2, 4};
  if (std::find(thread_counts.begin(), thread_counts.end(), hw_cores) ==
      thread_counts.end()) {
    thread_counts.push_back(hw_cores);
  }
  std::printf("hardware threads: %d; sweeping threads {", hw_cores);
  for (std::size_t i = 0; i < thread_counts.size(); ++i) {
    std::printf("%s%d", i ? ", " : "", thread_counts[i]);
  }
  std::printf("}\n\n");

  const algo::WinogradTransform wt = algo::winograd_f4x3();
  constexpr int kDataFrac = 12, kWeightFrac = 14, kOutFrac = 10;

  std::vector<Record> recs;
  for (const Geometry& g : kGeometries) {
    Setup s(g);
    const algo::TransformedFilters tf = algo::transform_filters(wt, s.f);
    std::printf("%s: %dx%dx%d, %d filters %dx%d\n", g.model, g.in_c, g.hw,
                g.hw, g.out_c, g.k, g.k);

    // Scalar seed baselines (single-threaded by construction).
    kernels::set_num_threads(1);
    const double direct_ms = time_ms([&] {
      g_sink = nn::conv_reference_scalar(s.in, s.f, s.bias, 1, 1, true)
                   .at(0, 0, 0);
    });
    emit(recs, "direct_scalar", g, 1, direct_ms, 0.0);
    const double im2col_sc_ms = time_ms([&] {
      g_sink =
          algo::conv_im2col_scalar(s.in, s.f, s.bias, 1, 1, true).at(0, 0, 0);
    });
    emit(recs, "im2col_scalar", g, 1, im2col_sc_ms, 0.0);
    const double wino_sc_ms = time_ms([&] {
      g_sink = algo::winograd_conv_pretransformed_scalar(tf, s.in, s.bias, 1,
                                                         true)
                   .at(0, 0, 0);
    });
    emit(recs, "winograd_f43_scalar", g, 1, wino_sc_ms, 0.0);
    const double fixed_sc_ms = time_ms([&] {
      g_sink = algo::conv_direct_fixed_scalar(s.in, s.f, s.bias, 1, 1, true,
                                              kDataFrac, kWeightFrac, kOutFrac)
                   .at(0, 0, 0);
    });
    emit(recs, "direct_fixed_scalar", g, 1, fixed_sc_ms, 0.0);
    const double wfix_sc_ms = time_ms([&] {
      g_sink = algo::winograd_conv_fixed_scalar(wt, s.in, s.f, s.bias, 1, true,
                                                kDataFrac, kOutFrac)
                   .at(0, 0, 0);
    });
    emit(recs, "winograd_fixed_scalar", g, 1, wfix_sc_ms, 0.0);

    // Kernel-layer paths across thread counts. Speedups are quoted against
    // the scalar implementation of the *same algorithm*; the headline
    // "blocked GEMM vs scalar conv" number is im2col_gemm vs direct_scalar.
    for (int t : thread_counts) {
      kernels::set_num_threads(t);
      emit(recs, "im2col_gemm", g, t, time_ms([&] {
             g_sink =
                 algo::conv_im2col(s.in, s.f, s.bias, 1, 1, true).at(0, 0, 0);
           }),
           direct_ms);
      emit(recs, "winograd_f43_gemm", g, t, time_ms([&] {
             g_sink = algo::winograd_conv_pretransformed(tf, s.in, s.bias, 1,
                                                         true)
                          .at(0, 0, 0);
           }),
           wino_sc_ms);
      emit(recs, "direct_fixed_gemm", g, t, time_ms([&] {
             g_sink = algo::conv_direct_fixed(s.in, s.f, s.bias, 1, 1, true,
                                              kDataFrac, kWeightFrac, kOutFrac)
                          .at(0, 0, 0);
           }),
           fixed_sc_ms);
      emit(recs, "winograd_fixed_gemm", g, t, time_ms([&] {
             g_sink = algo::winograd_conv_fixed(wt, s.in, s.f, s.bias, 1, true,
                                                kDataFrac, kOutFrac)
                          .at(0, 0, 0);
           }),
           wfix_sc_ms);
    }
    kernels::set_num_threads(1);
    std::printf("\n");
  }

  write_json(recs, "BENCH_kernels.json");
  bench::note(
      "speedup is vs the same-algorithm scalar seed; im2col_gemm is also the "
      "headline blocked-GEMM-vs-scalar-conv comparison (baseline "
      "direct_scalar)");
  return 0;
}
