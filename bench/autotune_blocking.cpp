// TUNE: persistent blocking autotuner front end. Searches MC/KC/NC/grain
// per GEMM datapath on this machine (bounded budget), installs the winners
// into the dispatch registry, and optionally persists them as a versioned
// tuning-cache JSON keyed by datapath + cache topology. A later process —
// perf_smoke, or this binary with --load — applies the cache and dispatches
// with the tuned blocking; entries from other machines or versions are
// ignored and dispatch falls back to the shipped defaults.
//
// The cache can only change speed, never results: KC is tunable only on the
// integer datapaths (exact accumulation commutes) and MC/NC/grain never
// alter an element's accumulation chain (see kernels/blocking.h).
//
//   autotune_blocking [--budget-ms N] [--threads N] [--reps N]
//                     [--datapath NAME] [--out FILE] [--print-dispatch]
//   autotune_blocking --load FILE [--print-dispatch]
//
// With --load no tuning runs: the file is applied and (with
// --print-dispatch) the resolved per-datapath blocking is printed in a
// stable format, so CI can diff the tune-then-save run against the
// load-from-cache run (the round-trip check).

#include <cstdio>
#include <cstring>
#include <string>

#include "kernels/autotune.h"
#include "kernels/blocking.h"

using namespace hetacc;

namespace {

void print_dispatch() {
  for (int i = 0; i < kernels::kNumDatapaths; ++i) {
    const auto dp = static_cast<kernels::Datapath>(i);
    const kernels::BlockingParams bp = kernels::blocking_for(dp);
    std::printf("dispatch %s mc=%d kc=%d nc=%d grain=%d\n",
                kernels::datapath_name(dp), bp.mc, bp.kc, bp.nc, bp.grain);
  }
}

}  // namespace

int main(int argc, char** argv) {
  kernels::AutotuneOptions opts;
  std::string out_path, load_path, dp_name;
  bool want_dispatch = false;

  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::printf("%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--budget-ms")) {
      opts.budget_ms = std::atof(next("--budget-ms"));
    } else if (!std::strcmp(argv[i], "--threads")) {
      opts.threads = std::atoi(next("--threads"));
    } else if (!std::strcmp(argv[i], "--reps")) {
      opts.reps = std::atoi(next("--reps"));
    } else if (!std::strcmp(argv[i], "--datapath")) {
      dp_name = next("--datapath");
    } else if (!std::strcmp(argv[i], "--out")) {
      out_path = next("--out");
    } else if (!std::strcmp(argv[i], "--load")) {
      load_path = next("--load");
    } else if (!std::strcmp(argv[i], "--print-dispatch")) {
      want_dispatch = true;
    } else {
      std::printf(
          "usage: autotune_blocking [--budget-ms N] [--threads N] [--reps N]"
          " [--datapath NAME] [--out FILE] [--load FILE]"
          " [--print-dispatch]\n");
      return std::strcmp(argv[i], "--help") && std::strcmp(argv[i], "-h") ? 2
                                                                          : 0;
    }
  }

  std::printf("machine topology: %s\n",
              kernels::machine_topology_key().c_str());

  if (!load_path.empty()) {
    const int applied = kernels::load_tuning_cache_file(load_path);
    if (applied < 0) {
      std::printf("cannot read tuning cache '%s'\n", load_path.c_str());
      return 2;
    }
    std::printf("loaded %s: %d entr%s applied%s\n", load_path.c_str(),
                applied, applied == 1 ? "y" : "ies",
                applied == 0 ? " (foreign machine or version; defaults stay)"
                             : "");
  } else {
    std::printf("tuning (budget %.0f ms per datapath, %d rep%s)\n",
                opts.budget_ms, opts.reps, opts.reps == 1 ? "" : "s");
    if (!dp_name.empty()) {
      kernels::Datapath dp;
      if (!kernels::datapath_from_name(dp_name, dp)) {
        std::printf("unknown datapath '%s'\n", dp_name.c_str());
        return 2;
      }
      const auto r = kernels::autotune_datapath(dp, opts);
      std::printf("  %s\n", kernels::autotune_summary(r).c_str());
    } else {
      for (const auto& r : kernels::autotune_all(opts)) {
        std::printf("  %s\n", kernels::autotune_summary(r).c_str());
      }
    }
    if (!out_path.empty()) {
      if (!kernels::save_tuning_cache_file(out_path)) {
        std::printf("cannot write tuning cache '%s'\n", out_path.c_str());
        return 2;
      }
      std::printf("wrote %s\n", out_path.c_str());
    }
  }

  if (want_dispatch) print_dispatch();
  return 0;
}
