#pragma once
// Shared harness pieces for the serving-runtime benches (bench_serve,
// bench_fleet): wall-clock timing around a virtual-time run, per-scenario
// records carrying the runtime's own JSON blob, and the BENCH_*.json
// record-array emitter both binaries share.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

namespace hetacc::bench {

/// One scenario's outcome: the runtime's own stats JSON plus the harness's
/// wall-clock measurements (virtual-time quality lives inside stats_json;
/// req_per_s is the real execution throughput of the worker pool).
struct ServeRecord {
  std::string scenario;
  std::string stats_json;
  double wall_ms = 0.0;
  double req_per_s = 0.0;
};

/// Runs `fn`, returns its result, stores the elapsed wall milliseconds.
template <typename Fn>
auto timed_ms(double& wall_ms, Fn&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  auto stats = fn();
  wall_ms = std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - t0)
                .count();
  return stats;
}

inline double req_per_s(long long completed, double wall_ms) {
  return wall_ms > 0.0 ? 1000.0 * static_cast<double>(completed) / wall_ms
                       : 0.0;
}

/// The records as a JSON array, one scenario per line (the exact layout the
/// committed BENCH_serve.json files carry).
inline std::string records_json(const std::vector<ServeRecord>& recs) {
  std::string out = "[\n";
  for (std::size_t i = 0; i < recs.size(); ++i) {
    const ServeRecord& r = recs[i];
    char head[160];
    std::snprintf(head, sizeof(head),
                  "  {\"scenario\": \"%s\", \"wall_ms\": %.3f, "
                  "\"req_per_s\": %.1f, \"stats\": ",
                  r.scenario.c_str(), r.wall_ms, r.req_per_s);
    out += head;
    out += r.stats_json;
    out += i + 1 < recs.size() ? "},\n" : "}\n";
  }
  out += "]\n";
  return out;
}

inline void write_serve_json(const std::vector<ServeRecord>& recs,
                             const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (!f) {
    std::printf("warning: cannot open %s for writing\n", path);
    return;
  }
  std::fprintf(f, "%s", records_json(recs).c_str());
  std::fclose(f);
  std::printf("wrote %s (%zu records)\n", path, recs.size());
}

}  // namespace hetacc::bench
