// SRV: resilient-serving-runtime characterization for DESIGN.md §11.
// Drives the same synthetic arrival trace through the Server under three
// conditions — healthy, mid-trace fault burst (wedged primary), and
// fallback-only — and reports the virtual-time service quality (p50/p99
// latency, degraded share, retries) next to the real wall-clock execution
// throughput of the worker pool. The fault-burst row quantifies the price
// of resilience: how much tail latency the retry + breaker machinery spends
// to keep zero requests lost. Emits a table and BENCH_serve.json.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "nn/model_zoo.h"
#include "serve/server.h"

using namespace hetacc;

namespace {

struct Record {
  std::string scenario;
  serve::ServerStats stats;
  double wall_ms = 0.0;
  double req_per_s = 0.0;
};

serve::ServerConfig config(int threads) {
  serve::ServerConfig cfg;
  cfg.queue_capacity = 64;
  cfg.replicas = 2;
  cfg.max_retries = 2;
  cfg.backoff_base_cycles = 500;
  cfg.backoff_cap_cycles = 4000;
  cfg.breaker.failure_threshold = 2;
  cfg.breaker.cooldown_cycles = 4000;
  cfg.threads = threads;
  return cfg;
}

void emit(std::vector<Record>& out, const std::string& scenario,
          const serve::ServerStats& s, double wall_ms) {
  Record r{scenario, s, wall_ms,
           wall_ms > 0.0 ? 1000.0 * static_cast<double>(s.completed) / wall_ms
                         : 0.0};
  std::printf(
      "  %-12s %6lld ok (%4lld degraded) %4lld retries  p50 %7lld  "
      "p99 %7lld cyc  %8.1f req/s  %s\n",
      scenario.c_str(), s.completed, s.completed_degraded, s.retries,
      s.latency.p50(), s.latency.p99(), r.req_per_s,
      s.accounted() ? "accounted" : "LOST REQUESTS");
  out.push_back(std::move(r));
}

void write_json(const std::vector<Record>& recs, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (!f) {
    std::printf("warning: cannot open %s for writing\n", path);
    return;
  }
  std::fprintf(f, "[\n");
  for (std::size_t i = 0; i < recs.size(); ++i) {
    const Record& r = recs[i];
    std::fprintf(f,
                 "  {\"scenario\": \"%s\", \"wall_ms\": %.3f, "
                 "\"req_per_s\": %.1f, \"stats\": %s}%s\n",
                 r.scenario.c_str(), r.wall_ms, r.req_per_s,
                 r.stats.to_json().c_str(), i + 1 < recs.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("wrote %s (%zu records)\n", path, recs.size());
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::stoull(argv[1]) : 2000;
  bench::header("SRV", "serving runtime: healthy vs fault burst vs fallback");

  const nn::Network net = nn::tiny_net(4, 16);
  const auto ws = nn::WeightStore::deterministic(net, 21);
  serve::ServingMode primary;
  primary.service_cycles = 1000;
  serve::ServingMode fallback;
  fallback.service_cycles = 1600;

  const serve::ArrivalTrace healthy = serve::ArrivalTrace::synthetic(
      n, /*mean=*/1200, /*seed=*/17, /*surge=*/2.0);
  serve::ArrivalTrace burst = healthy;
  burst.burst.from_cycle = burst.last_arrival() / 3;
  burst.burst.until_cycle = 2 * burst.last_arrival() / 3;
  burst.burst.plan.seed = 17;
  burst.burst.plan.wedge_channel = 0;
  burst.burst.plan.wedge_after_pushes = 2;

  std::vector<Record> recs;
  const auto run = [&](const std::string& name,
                       const serve::ArrivalTrace& trace,
                       const serve::ServingMode& prim) {
    serve::Server server(net, ws, prim, fallback, config(/*threads=*/0));
    const auto t0 = std::chrono::steady_clock::now();
    const serve::ServerStats s = server.run(trace);
    const auto t1 = std::chrono::steady_clock::now();
    emit(recs, name, s,
         std::chrono::duration<double, std::milli>(t1 - t0).count());
  };

  std::printf("%zu requests, 2 replicas, primary %lld / fallback %lld "
              "cycles per request\n\n",
              n, primary.service_cycles, fallback.service_cycles);
  run("healthy", healthy, primary);
  run("fault-burst", burst, primary);
  // Fallback-only: what the degraded strategy alone would deliver — the
  // lower bound the breaker degrades toward.
  run("fallback", healthy, fallback);

  // Degraded-mode delta: the tail-latency price of riding out the burst.
  const auto& h = recs[0].stats;
  const auto& b = recs[1].stats;
  std::printf(
      "\nfault-burst delta vs healthy: p99 %+lld cycles, %lld retried, "
      "%lld served degraded, %lld lost\n",
      b.latency.p99() - h.latency.p99(), b.retries, b.completed_degraded,
      b.submitted - b.completed - b.rejected_queue_full - b.shed_deadline -
          b.failed);

  write_json(recs, "BENCH_serve.json");
  return (h.accounted() && b.accounted() && recs[2].stats.accounted()) ? 0
                                                                       : 1;
}
