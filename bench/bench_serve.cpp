// SRV: resilient-serving-runtime characterization for DESIGN.md §11/§14.
// Drives the same synthetic arrival trace through the Server under three
// conditions — healthy, mid-trace fault burst (wedged primary), and
// fallback-only — and reports the virtual-time service quality (p50/p99
// latency, degraded share, retries) next to the real wall-clock execution
// throughput of the worker pool. The fault-burst row quantifies the price
// of resilience: how much tail latency the retry + breaker machinery spends
// to keep zero requests lost. A second section pits the degradation ladder
// against shed-everything and the binary pair on an oscillating-overload
// trace (the §14 hot-swap scenario) and on a burst-then-calm recovery
// trace. Emits a table and BENCH_serve.json.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "nn/model_zoo.h"
#include "serve/server.h"

using namespace hetacc;

namespace {

struct Record {
  std::string scenario;
  serve::ServerStats stats;
  double wall_ms = 0.0;
  double req_per_s = 0.0;
};

serve::ServerConfig config(int threads) {
  serve::ServerConfig cfg;
  cfg.queue_capacity = 64;
  cfg.replicas = 2;
  cfg.max_retries = 2;
  cfg.backoff_base_cycles = 500;
  cfg.backoff_cap_cycles = 4000;
  cfg.breaker.failure_threshold = 2;
  cfg.breaker.cooldown_cycles = 4000;
  cfg.threads = threads;
  return cfg;
}

void emit(std::vector<Record>& out, const std::string& scenario,
          const serve::ServerStats& s, double wall_ms) {
  Record r{scenario, s, wall_ms,
           wall_ms > 0.0 ? 1000.0 * static_cast<double>(s.completed) / wall_ms
                         : 0.0};
  std::printf(
      "  %-12s %6lld ok (%4lld degraded) %4lld retries  p50 %7lld  "
      "p99 %7lld cyc  %8.1f req/s  %s\n",
      scenario.c_str(), s.completed, s.completed_degraded, s.retries,
      s.latency.p50(), s.latency.p99(), r.req_per_s,
      s.accounted() ? "accounted" : "LOST REQUESTS");
  out.push_back(std::move(r));
}

void write_json(const std::vector<Record>& recs, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (!f) {
    std::printf("warning: cannot open %s for writing\n", path);
    return;
  }
  std::fprintf(f, "[\n");
  for (std::size_t i = 0; i < recs.size(); ++i) {
    const Record& r = recs[i];
    std::fprintf(f,
                 "  {\"scenario\": \"%s\", \"wall_ms\": %.3f, "
                 "\"req_per_s\": %.1f, \"stats\": %s}%s\n",
                 r.scenario.c_str(), r.wall_ms, r.req_per_s,
                 r.stats.to_json().c_str(), i + 1 < recs.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("wrote %s (%zu records)\n", path, recs.size());
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::stoull(argv[1]) : 2000;
  bench::header("SRV", "serving runtime: healthy vs fault burst vs fallback");

  const nn::Network net = nn::tiny_net(4, 16);
  const auto ws = nn::WeightStore::deterministic(net, 21);
  serve::ServingMode primary;
  primary.service_cycles = 1000;
  serve::ServingMode fallback;
  fallback.service_cycles = 1600;

  const serve::ArrivalTrace healthy = serve::ArrivalTrace::synthetic(
      n, /*mean=*/1200, /*seed=*/17, /*surge=*/2.0);
  serve::ArrivalTrace burst = healthy;
  burst.burst.from_cycle = burst.last_arrival() / 3;
  burst.burst.until_cycle = 2 * burst.last_arrival() / 3;
  burst.burst.plan.seed = 17;
  burst.burst.plan.wedge_channel = 0;
  burst.burst.plan.wedge_after_pushes = 2;

  std::vector<Record> recs;
  const auto run = [&](const std::string& name,
                       const serve::ArrivalTrace& trace,
                       const serve::ServingMode& prim) {
    serve::Server server(net, ws, prim, fallback, config(/*threads=*/0));
    const auto t0 = std::chrono::steady_clock::now();
    const serve::ServerStats s = server.run(trace);
    const auto t1 = std::chrono::steady_clock::now();
    emit(recs, name, s,
         std::chrono::duration<double, std::milli>(t1 - t0).count());
  };

  std::printf("%zu requests, 2 replicas, primary %lld / fallback %lld "
              "cycles per request\n\n",
              n, primary.service_cycles, fallback.service_cycles);
  run("healthy", healthy, primary);
  run("fault-burst", burst, primary);
  // Fallback-only: what the degraded strategy alone would deliver — the
  // lower bound the breaker degrades toward.
  run("fallback", healthy, fallback);

  // Degraded-mode delta: the tail-latency price of riding out the burst.
  const auto& h = recs[0].stats;
  const auto& b = recs[1].stats;
  std::printf(
      "\nfault-burst delta vs healthy: p99 %+lld cycles, %lld retried, "
      "%lld served degraded, %lld lost\n",
      b.latency.p99() - h.latency.p99(), b.retries, b.completed_degraded,
      b.submitted - b.completed - b.rejected_queue_full - b.shed_deadline -
          b.failed);

  // ---- degradation ladder vs shed-everything under oscillating overload.
  // Burst arrivals (one per 400 cycles) land between the 2-replica home
  // capacity (one per 500) and the int8 rung's (one per 320): the primary
  // drowns, the deep rung keeps up. The ladder may hot-swap onto the
  // 640-cycle int8 rung; the binary pair and the shed-only server must
  // ride out the bursts at home.
  std::printf("\nladder under oscillating overload (deadline 4000 cycles)\n\n");
  const std::size_t per_phase = n / 8 > 8 ? n / 8 : 8;
  const serve::ArrivalTrace osc = serve::ArrivalTrace::oscillating(
      /*periods=*/4, per_phase, /*burst=*/400, /*lull=*/2000, /*seed=*/11);
  // One long burst, then a long calm tail: how fast the dwell-gated ascent
  // returns to home after sustained pressure.
  const serve::ArrivalTrace recovery = serve::ArrivalTrace::oscillating(
      /*periods=*/1, 2 * per_phase, /*burst=*/400, /*lull=*/2000,
      /*seed=*/13);

  const auto ladder_cfg = [&] {
    serve::ServerConfig cfg = config(/*threads=*/0);
    cfg.queue_capacity = 32;
    cfg.deadline_cycles = 4000;
    cfg.backoff_base_cycles = 125;
    // Load axis only: the fault rows above already characterize the
    // breaker, and the overload traces carry no fault burst.
    cfg.breaker.failure_threshold = 1 << 20;
    cfg.breaker.deadline_miss_threshold = 1 << 20;
    return cfg;
  }();

  const auto ladder_mode = [](long long cycles, const char* label) {
    serve::ServingMode m;
    m.service_cycles = cycles;
    m.label = label;
    return m;
  };
  serve::ServingLadder three;
  three.rungs = {ladder_mode(1600, "protected"), ladder_mode(1000, "primary"),
                 ladder_mode(640, "int8")};
  three.home = 1;
  serve::ServingLadder pair;
  pair.rungs = {ladder_mode(1600, "fallback"), ladder_mode(1000, "primary")};
  pair.home = 1;
  serve::ServingLadder shed;
  shed.rungs = {ladder_mode(1000, "primary")};
  shed.home = 0;

  const auto run_ladder = [&](const std::string& name,
                              const serve::ArrivalTrace& trace,
                              serve::ServingLadder l) {
    serve::Server server(net, ws, std::move(l), ladder_cfg);
    const auto t0 = std::chrono::steady_clock::now();
    const serve::ServerStats s = server.run(trace);
    const auto t1 = std::chrono::steady_clock::now();
    emit(recs, name, s,
         std::chrono::duration<double, std::milli>(t1 - t0).count());
    std::printf("  %-12s %6lld within deadline, %lld shed, "
                "%lld rung moves\n",
                "", s.completed - s.deadline_misses, s.shed_deadline,
                s.rung_transitions);
    return s;
  };

  const serve::ServerStats s_shed = run_ladder("over-shed", osc, shed);
  const serve::ServerStats s_pair = run_ladder("over-binary", osc, pair);
  const serve::ServerStats s_ladd = run_ladder("over-ladder", osc, three);
  const serve::ServerStats s_recv =
      run_ladder("burst-recover", recovery, three);

  const long long wd_shed = s_shed.completed - s_shed.deadline_misses;
  const long long wd_ladd = s_ladd.completed - s_ladd.deadline_misses;
  std::printf(
      "\nladder delta: %+lld within-deadline vs shed-everything, "
      "%+lld vs binary pair; recovery run ended after %lld rung moves\n",
      wd_ladd - wd_shed,
      wd_ladd - (s_pair.completed - s_pair.deadline_misses),
      s_recv.rung_transitions);

  write_json(recs, "BENCH_serve.json");
  const bool ok = h.accounted() && b.accounted() &&
                  recs[2].stats.accounted() && s_shed.accounted() &&
                  s_pair.accounted() && s_ladd.accounted() &&
                  s_recv.accounted() &&
                  // The whole point of the ladder: degraded-rung service
                  // beats shedding everything the primary cannot absorb.
                  wd_ladd > wd_shed;
  return ok ? 0 : 1;
}
