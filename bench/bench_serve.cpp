// SRV: resilient-serving-runtime characterization for DESIGN.md §11/§14.
// Drives the same synthetic arrival trace through the Server under three
// conditions — healthy, mid-trace fault burst (wedged primary), and
// fallback-only — and reports the virtual-time service quality (p50/p99
// latency, degraded share, retries) next to the real wall-clock execution
// throughput of the worker pool. The fault-burst row quantifies the price
// of resilience: how much tail latency the retry + breaker machinery spends
// to keep zero requests lost. A second section pits the degradation ladder
// against shed-everything and the binary pair on an oscillating-overload
// trace (the §14 hot-swap scenario) and on a burst-then-calm recovery
// trace. Emits a table and BENCH_serve.json.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "nn/model_zoo.h"
#include "serve/server.h"
#include "serve_common.h"

using namespace hetacc;

namespace {

serve::ServerConfig config(int threads) {
  serve::ServerConfig cfg;
  cfg.queue_capacity = 64;
  cfg.replicas = 2;
  cfg.max_retries = 2;
  cfg.backoff_base_cycles = 500;
  cfg.backoff_cap_cycles = 4000;
  cfg.breaker.failure_threshold = 2;
  cfg.breaker.cooldown_cycles = 4000;
  cfg.threads = threads;
  return cfg;
}

void emit(std::vector<bench::ServeRecord>& out, const std::string& scenario,
          const serve::ServerStats& s, double wall_ms) {
  bench::ServeRecord r{scenario, s.to_json(), wall_ms,
                       bench::req_per_s(s.completed, wall_ms)};
  std::printf(
      "  %-12s %6lld ok (%4lld degraded) %4lld retries  p50 %7lld  "
      "p99 %7lld cyc  %8.1f req/s  %s\n",
      scenario.c_str(), s.completed, s.completed_degraded, s.retries,
      s.latency.p50(), s.latency.p99(), r.req_per_s,
      s.accounted() ? "accounted" : "LOST REQUESTS");
  out.push_back(std::move(r));
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::stoull(argv[1]) : 2000;
  bench::header("SRV", "serving runtime: healthy vs fault burst vs fallback");

  const nn::Network net = nn::tiny_net(4, 16);
  const auto ws = nn::WeightStore::deterministic(net, 21);
  serve::ServingMode primary;
  primary.service_cycles = 1000;
  serve::ServingMode fallback;
  fallback.service_cycles = 1600;

  const serve::ArrivalTrace healthy = serve::ArrivalTrace::synthetic(
      n, /*mean=*/1200, /*seed=*/17, /*surge=*/2.0);
  serve::ArrivalTrace burst = healthy;
  burst.burst.from_cycle = burst.last_arrival() / 3;
  burst.burst.until_cycle = 2 * burst.last_arrival() / 3;
  burst.burst.plan.seed = 17;
  burst.burst.plan.wedge_channel = 0;
  burst.burst.plan.wedge_after_pushes = 2;

  std::vector<bench::ServeRecord> recs;
  const auto run = [&](const std::string& name,
                       const serve::ArrivalTrace& trace,
                       const serve::ServingMode& prim) {
    serve::Server server(net, ws, prim, fallback, config(/*threads=*/0));
    double wall_ms = 0.0;
    const serve::ServerStats s =
        bench::timed_ms(wall_ms, [&] { return server.run(trace); });
    emit(recs, name, s, wall_ms);
    return s;
  };

  std::printf("%zu requests, 2 replicas, primary %lld / fallback %lld "
              "cycles per request\n\n",
              n, primary.service_cycles, fallback.service_cycles);
  const serve::ServerStats h = run("healthy", healthy, primary);
  const serve::ServerStats b = run("fault-burst", burst, primary);
  // Fallback-only: what the degraded strategy alone would deliver — the
  // lower bound the breaker degrades toward.
  const serve::ServerStats s_fb = run("fallback", healthy, fallback);
  std::printf(
      "\nfault-burst delta vs healthy: p99 %+lld cycles, %lld retried, "
      "%lld served degraded, %lld lost\n",
      b.latency.p99() - h.latency.p99(), b.retries, b.completed_degraded,
      b.submitted - b.completed - b.rejected_queue_full - b.shed_deadline -
          b.failed);

  // ---- degradation ladder vs shed-everything under oscillating overload.
  // Burst arrivals (one per 400 cycles) land between the 2-replica home
  // capacity (one per 500) and the int8 rung's (one per 320): the primary
  // drowns, the deep rung keeps up. The ladder may hot-swap onto the
  // 640-cycle int8 rung; the binary pair and the shed-only server must
  // ride out the bursts at home.
  std::printf("\nladder under oscillating overload (deadline 4000 cycles)\n\n");
  const std::size_t per_phase = n / 8 > 8 ? n / 8 : 8;
  const serve::ArrivalTrace osc = serve::ArrivalTrace::oscillating(
      /*periods=*/4, per_phase, /*burst=*/400, /*lull=*/2000, /*seed=*/11);
  // One long burst, then a long calm tail: how fast the dwell-gated ascent
  // returns to home after sustained pressure.
  const serve::ArrivalTrace recovery = serve::ArrivalTrace::oscillating(
      /*periods=*/1, 2 * per_phase, /*burst=*/400, /*lull=*/2000,
      /*seed=*/13);

  const auto ladder_cfg = [&] {
    serve::ServerConfig cfg = config(/*threads=*/0);
    cfg.queue_capacity = 32;
    cfg.deadline_cycles = 4000;
    cfg.backoff_base_cycles = 125;
    // Load axis only: the fault rows above already characterize the
    // breaker, and the overload traces carry no fault burst.
    cfg.breaker.failure_threshold = 1 << 20;
    cfg.breaker.deadline_miss_threshold = 1 << 20;
    return cfg;
  }();

  const auto ladder_mode = [](long long cycles, const char* label) {
    serve::ServingMode m;
    m.service_cycles = cycles;
    m.label = label;
    return m;
  };
  serve::ServingLadder three;
  three.rungs = {ladder_mode(1600, "protected"), ladder_mode(1000, "primary"),
                 ladder_mode(640, "int8")};
  three.home = 1;
  serve::ServingLadder pair;
  pair.rungs = {ladder_mode(1600, "fallback"), ladder_mode(1000, "primary")};
  pair.home = 1;
  serve::ServingLadder shed;
  shed.rungs = {ladder_mode(1000, "primary")};
  shed.home = 0;

  const auto run_ladder = [&](const std::string& name,
                              const serve::ArrivalTrace& trace,
                              serve::ServingLadder l) {
    serve::Server server(net, ws, std::move(l), ladder_cfg);
    double wall_ms = 0.0;
    const serve::ServerStats s =
        bench::timed_ms(wall_ms, [&] { return server.run(trace); });
    emit(recs, name, s, wall_ms);
    std::printf("  %-12s %6lld within deadline, %lld shed, "
                "%lld rung moves\n",
                "", s.completed - s.deadline_misses, s.shed_deadline,
                s.rung_transitions);
    return s;
  };

  const serve::ServerStats s_shed = run_ladder("over-shed", osc, shed);
  const serve::ServerStats s_pair = run_ladder("over-binary", osc, pair);
  const serve::ServerStats s_ladd = run_ladder("over-ladder", osc, three);
  const serve::ServerStats s_recv =
      run_ladder("burst-recover", recovery, three);

  const long long wd_shed = s_shed.completed - s_shed.deadline_misses;
  const long long wd_ladd = s_ladd.completed - s_ladd.deadline_misses;
  std::printf(
      "\nladder delta: %+lld within-deadline vs shed-everything, "
      "%+lld vs binary pair; recovery run ended after %lld rung moves\n",
      wd_ladd - wd_shed,
      wd_ladd - (s_pair.completed - s_pair.deadline_misses),
      s_recv.rung_transitions);

  bench::write_serve_json(recs, "BENCH_serve.json");
  const bool ok = h.accounted() && b.accounted() &&
                  s_fb.accounted() && s_shed.accounted() &&
                  s_pair.accounted() && s_ladd.accounted() &&
                  s_recv.accounted() &&
                  // The whole point of the ladder: degraded-rung service
                  // beats shedding everything the primary cannot absorb.
                  wd_ladd > wd_shed;
  return ok ? 0 : 1;
}
