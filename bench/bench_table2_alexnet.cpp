// TAB2: AlexNet implementation details (paper Table 2): all accelerated
// layers fused into a single group under the minimal (first input + last
// output) transfer budget; per-layer algorithm, parallelism, BRAM, DSP, FF,
// LUT, plus totals, utilization and the group latency.

#include <cstdio>

#include "bench_util.h"
#include "core/dp_optimizer.h"
#include "core/report.h"
#include "nn/model_zoo.h"

using namespace hetacc;

int main() {
  bench::header("TAB2", "AlexNet per-layer implementation details");

  const fpga::Device dev = fpga::zc706();
  const nn::Network net = nn::alexnet_accel();

  // The paper fuses all AlexNet layers into one group under a 340 KB-class
  // budget (first input + last output); our group cap is 8 (paper §7.1), so
  // the 10 accelerated layers form the minimal number of groups the cap
  // admits, at the smallest feasible budget.
  // The paper fuses all AlexNet layers into one group (its Table 2 counts
  // pool/LRN inside the conv stages, staying under the 8-layer port cap;
  // our layer granularity is finer, so lift the cap to the layer count).
  core::BnbOptions bnb;
  bnb.max_group_layers = net.size() - 1;
  const long long min_budget =
      core::min_transfer_bytes(net, 1, net.size() - 1, dev.data_bytes);
  std::printf("minimal conceivable budget (in+out): %.0f KB "
              "(paper quotes 340 KB)\n\n",
              static_cast<double>(min_budget) / 1024.0);

  const fpga::EngineModel model(dev);
  core::OptimizerOptions oo;
  oo.bnb = bnb;
  // Smallest budget the 8-layer group cap admits: probe upward in 64 KB
  // steps from the minimum.
  core::OptimizeResult r;
  long long budget = min_budget;
  for (; budget < 64ll * 1024 * 1024; budget += 64 * 1024) {
    oo.transfer_budget_bytes = budget;
    r = core::optimize(net, model, oo);
    if (r.feasible) break;
  }
  if (!r.feasible) {
    std::printf("no feasible strategy found\n");
    return 1;
  }
  std::printf("feasible at budget %.0f KB with %zu fusion group(s)\n\n",
              static_cast<double>(budget) / 1024.0, r.strategy.groups.size());

  std::printf("%-10s %-13s %12s %8s %8s %8s %8s\n", "Layer", "Algorithm",
              "Parallelism", "BRAM", "DSP", "FF", "LUT");
  fpga::ResourceVector total;
  for (const auto& g : r.strategy.groups) {
    for (std::size_t k = 0; k < g.impls.size(); ++k) {
      const nn::Layer& l = net[g.first + k];
      const auto& ipl = g.impls[k];
      std::printf("%-10s %-13s %12d %8lld %8lld %8lld %8lld\n",
                  l.name.c_str(),
                  std::string(fpga::to_string(ipl.cfg.algo)).c_str(),
                  ipl.cfg.parallelism(l.window()), ipl.res.bram18k,
                  ipl.res.dsp, ipl.res.ff, ipl.res.lut);
      total += ipl.res;
    }
  }
  std::printf("%-10s %-13s %12s %8lld %8lld %8lld %8lld\n", "Total", "", "",
              total.bram18k, total.dsp, total.ff, total.lut);
  const auto& cap = dev.capacity;
  std::printf("%-10s %-13s %12s %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n",
              "Util (%)", "", "", 100.0 * total.bram18k / cap.bram18k,
              100.0 * total.dsp / cap.dsp, 100.0 * total.ff / cap.ff,
              100.0 * total.lut / cap.lut);

  const auto rep = core::make_report(r.strategy, net, dev);
  std::printf("\nlatency: %lld cycles (%.2f ms), %.1f effective GOPS, "
              "%.2f W, %.2f GOPS/W\n",
              rep.latency_cycles, rep.latency_ms, rep.effective_gops,
              rep.power.total(), rep.energy_efficiency_gops_per_w);

  // The paper's qualitative finding: conv1 (11x11 s4) conventional; the
  // small-kernel stride-1 layers lean Winograd; the DSPs Winograd saves are
  // spent on the conventional layers.
  bench::note("expect conv1 conventional and Winograd on several of "
              "conv2..conv5 (paper: conv2, conv3, conv5 Winograd).");
  return 0;
}
