// FIG1: roofline motivation (paper Fig. 1). VGG conv2 (64ch 224x224 -> 64ch,
// 3x3 s1) on the Virtex-7 485T at 100 MHz: conventional design A, Winograd
// design B clipped by the bandwidth roof, ideal Winograd B', and the fused
// heterogeneous design C whose higher CTC ratio escapes the clip.

#include <cstdio>

#include "bench_util.h"
#include "core/dp_optimizer.h"
#include "nn/model_zoo.h"
#include "roofline/roofline.h"

using namespace hetacc;

int main() {
  bench::header("FIG1", "roofline motivation on XC7VX485T (VGG conv1_2)");

  const fpga::Device dev = fpga::vc707();
  const nn::Network head = nn::vgg_e_head();
  const nn::Layer& conv2 = head[2];  // conv1_2 = "2nd convolutional layer"

  const double conv_roof = roofline::conventional_roof_ops(dev);
  const double wino_roof = roofline::winograd_roof_ops(dev, 4, 3);
  std::printf("computational roof (conventional): %8.1f GOPS\n",
              conv_roof / 1e9);
  std::printf("computational roof (Winograd F(4x4,3x3)): %8.1f GOPS\n",
              wino_roof / 1e9);
  std::printf("bandwidth roof slope: %.1f GB/s\n",
              dev.bandwidth_bytes_per_s / 1e9);

  // A standalone layer streams its input AND output through DDR; that CTC
  // ratio puts the paper's points where Fig. 1 shows them: A compute-bound,
  // B clipped by the bandwidth roof.
  const double ctc_io = roofline::group_ctc(
      static_cast<double>(conv2.ops()),
      static_cast<double>(conv2.in.bytes(dev.data_bytes) +
                          conv2.out.bytes(dev.data_bytes)));
  const auto a =
      roofline::make_point("A (conventional)", ctc_io, conv_roof, dev);
  const auto b =
      roofline::make_point("B (winograd, bw-clipped)", ctc_io, wino_roof, dev);

  // The paper's "input maps only" simplification, for reference.
  const double ctc_in = roofline::layer_ctc_input_only(conv2, dev.data_bytes);
  const auto b_in = roofline::make_point("B (input-only traffic variant)",
                                         ctc_in, wino_roof, dev);

  // C: the fused heterogeneous design over the 7-layer VGG head — the CTC
  // ratio uses the group's ops over its DDR feature traffic.
  const fpga::EngineModel model(dev);
  core::OptimizerOptions oo;
  oo.transfer_budget_bytes = 4 * 1024 * 1024;
  const auto opt = core::optimize(head, model, oo);
  double group_ops = 0;
  for (const auto& l : head) group_ops += static_cast<double>(l.ops());
  const double ctc_fused = roofline::group_ctc(
      group_ops, static_cast<double>(opt.strategy.transfer_bytes()));
  const auto c =
      roofline::make_point("C (fused heterogeneous)", ctc_fused, wino_roof,
                           dev);

  std::printf("\n%-32s %12s %16s %10s\n", "design point", "CTC (op/B)",
              "attainable GOPS", "bw-limited");
  for (const auto& p : {a, b, b_in, c}) {
    std::printf("%-32s %12.1f %16.1f %10s\n", p.label.c_str(),
                p.ctc_ops_per_byte, p.attainable_ops / 1e9,
                p.bandwidth_limited ? "yes" : "no");
  }
  std::printf("%-32s %12s %16.1f %10s\n", "B' (winograd, no bw roof)", "-",
              wino_roof / 1e9, "-");

  std::printf(
      "\nachieved (optimizer, whole fused head): %.1f effective GOPS\n",
      opt.strategy.effective_gops(head, dev.frequency_hz));
  bench::note(
      "paper figure values are OCR-garbled; the reproduced shape is "
      "A < B < B' and C above B (see EXPERIMENTS.md).");
  return 0;
}
