// OPT: optimizer runtime (§7.1 "our algorithm returns the optimal solutions
// within seconds") — wall time of the prefix DP and the paper's interval DP
// over layer count and budget size, plus branch-and-bound node statistics.

#include <benchmark/benchmark.h>

#include "core/dp_optimizer.h"
#include "nn/model_zoo.h"

using namespace hetacc;

namespace {

void BM_FusionTable(benchmark::State& state) {
  const nn::Network net = nn::conv_chain(static_cast<int>(state.range(0)),
                                         32, 56);
  const fpga::EngineModel model(fpga::zc706());
  long long nodes = 0;
  for (auto _ : state) {
    const core::FusionTable ft(net, model, {});
    nodes = ft.nodes_visited();
    benchmark::DoNotOptimize(ft.count());
  }
  state.counters["bnb_nodes"] = static_cast<double>(nodes);
}
BENCHMARK(BM_FusionTable)->Arg(4)->Arg(8)->Arg(12)->Unit(benchmark::kMillisecond);

void optimize_case(benchmark::State& state, bool interval) {
  const nn::Network net = nn::vgg_e_head();
  const fpga::EngineModel model(fpga::zc706());
  core::OptimizerOptions oo;
  oo.transfer_budget_bytes = state.range(0) * 1024 * 1024;
  for (auto _ : state) {
    const auto r = interval ? core::optimize_interval(net, model, oo)
                            : core::optimize(net, model, oo);
    benchmark::DoNotOptimize(r.strategy.latency_cycles());
  }
}

void BM_PrefixDp(benchmark::State& state) { optimize_case(state, false); }
BENCHMARK(BM_PrefixDp)->Arg(2)->Arg(8)->Arg(34)->Unit(benchmark::kMillisecond);

void BM_IntervalDpPaperAlgorithm1(benchmark::State& state) {
  optimize_case(state, true);
}
BENCHMARK(BM_IntervalDpPaperAlgorithm1)
    ->Arg(2)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_AlexNetEndToEnd(benchmark::State& state) {
  const nn::Network net = nn::alexnet_accel();
  const fpga::EngineModel model(fpga::zc706());
  core::OptimizerOptions oo;
  oo.transfer_budget_bytes = 8 * 1024 * 1024;
  for (auto _ : state) {
    const auto r = core::optimize(net, model, oo);
    benchmark::DoNotOptimize(r.feasible);
  }
}
BENCHMARK(BM_AlexNetEndToEnd)->Unit(benchmark::kMillisecond);

void BM_FusionTableVgg16Threads(benchmark::State& state) {
  // Thread scaling of the fusion-table construction on VGG-16 (the dominant
  // optimizer cost). A fresh EngineModel per iteration keeps the per-layer
  // implementation memo cold, so every iteration prices every layer from
  // scratch — the honest parallel workload. Run with
  // --benchmark_format=json to record the scaling curve; the strategy is
  // byte-identical at every thread count (test_dp_parallel).
  const nn::Network net = nn::vgg16().accelerated_portion();
  const fpga::Device dev = fpga::zc706();
  const int threads = static_cast<int>(state.range(0));
  long long nodes = 0;
  for (auto _ : state) {
    state.PauseTiming();
    const fpga::EngineModel model(dev);
    state.ResumeTiming();
    const core::FusionTable ft(net, model, {}, threads);
    nodes = ft.nodes_visited();
    benchmark::DoNotOptimize(ft.count());
  }
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["bnb_nodes"] = static_cast<double>(nodes);
}
BENCHMARK(BM_FusionTableVgg16Threads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_FullVggE(benchmark::State& state) {
  // All 21 accelerated layers of VGG-E: the big case for "within seconds".
  const nn::Network net = nn::vgg_e().accelerated_portion();
  const fpga::EngineModel model(fpga::zc706());
  core::OptimizerOptions oo;
  oo.transfer_budget_bytes = 64ll * 1024 * 1024;
  for (auto _ : state) {
    const auto r = core::optimize(net, model, oo);
    benchmark::DoNotOptimize(r.feasible);
  }
}
BENCHMARK(BM_FullVggE)->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace

BENCHMARK_MAIN();
