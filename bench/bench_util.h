#pragma once
// Shared helpers for the experiment harnesses (one binary per paper
// table/figure; see DESIGN.md experiment index).

#include <cstdio>
#include <string>

namespace hetacc::bench {

inline void header(const std::string& id, const std::string& what) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", id.c_str(), what.c_str());
  std::printf("==============================================================\n");
}

inline void note(const std::string& s) { std::printf("note: %s\n", s.c_str()); }

constexpr double kMB = 1024.0 * 1024.0;

}  // namespace hetacc::bench
