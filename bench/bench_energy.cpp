// EN1: the §7.2 energy claims. (a) Fusion cuts feature-map transfer energy
// (paper: 94% to 20% saving across the Fig. 5 constraints, average 68.2%)
// — measured against the unfused per-layer spill traffic. (b) Heterogeneous
// algorithm exploration improves performance ~99% over conventional-only,
// buying ~50% compute-energy saving.

#include <cstdio>

#include "bench_util.h"
#include "core/dp_optimizer.h"
#include "core/report.h"
#include "nn/model_zoo.h"

using namespace hetacc;

int main() {
  bench::header("EN1", "fusion transfer-energy and heterogeneity "
                       "compute-energy savings (VGG-E head)");

  const fpga::Device dev = fpga::zc706();
  const fpga::EngineModel model(dev);
  const nn::Network head = nn::vgg_e_head();

  // Unfused execution stores every intermediate map and loads it back:
  // the per-layer-group traffic sum, the quantity fusion eliminates.
  double unfused_bytes = 0.0;
  for (std::size_t i = 1; i < head.size(); ++i) {
    unfused_bytes += static_cast<double>(
        core::min_transfer_bytes(head, i, i, dev.data_bytes));
  }
  const double pj = dev.power.ddr_pj_per_byte;
  std::printf("unfused feature-map traffic (store+load per boundary): "
              "%.2f MB (%.3f mJ at %.0f pJ/B)\n\n",
              unfused_bytes / bench::kMB, unfused_bytes * pj * 1e-9, pj);

  std::printf("%10s %16s %18s %14s\n", "T (MB)", "transfer (MB)",
              "transfer E (mJ)", "saving vs unfused");
  double sum_saving = 0;
  int count = 0;
  for (const long long mb : {2, 4, 8, 16, 34}) {
    core::OptimizerOptions oo;
    oo.transfer_budget_bytes = mb * 1024 * 1024;
    const auto r = core::optimize(head, model, oo);
    if (!r.feasible) continue;
    const double bytes = static_cast<double>(r.strategy.transfer_bytes());
    const double saving = 1.0 - bytes / unfused_bytes;
    sum_saving += saving;
    ++count;
    std::printf("%10lld %16.2f %18.4f %13.1f%%\n", mb, bytes / bench::kMB,
                bytes * pj * 1e-9, 100.0 * saving);
  }
  if (count) {
    std::printf("average transfer-energy saving: %.1f%% "
                "(paper: 68.2%% average, 94%%..20%% range)\n\n",
                100.0 * sum_saving / count);
  }

  // Heterogeneity ablation: same optimizer, Winograd disabled.
  core::OptimizerOptions oo;
  oo.transfer_budget_bytes = 2 * 1024 * 1024;
  const auto hetero = core::optimize(head, model, oo);
  fpga::EngineModelParams conv_only;
  conv_only.enable_winograd = false;
  const fpga::EngineModel conv_model(dev, conv_only);
  const auto homo = core::optimize(head, conv_model, oo);
  if (hetero.feasible && homo.feasible) {
    const auto h_rep = core::make_report(hetero.strategy, head, dev);
    const auto c_rep = core::make_report(homo.strategy, head, dev);
    const double perf_gain =
        static_cast<double>(homo.strategy.latency_cycles()) /
            static_cast<double>(hetero.strategy.latency_cycles()) -
        1.0;
    const double energy_saving =
        1.0 - h_rep.energy.compute_j / c_rep.energy.compute_j;
    std::printf("heterogeneous vs conventional-only (both fused, 2 MB):\n");
    std::printf("  latency: %lld vs %lld cycles (+%.0f%% performance; "
                "paper: +99%% average)\n",
                hetero.strategy.latency_cycles(),
                homo.strategy.latency_cycles(), 100.0 * perf_gain);
    std::printf("  compute energy: %.4f vs %.4f J (%.1f%% saving; "
                "paper: ~50%%)\n",
                h_rep.energy.compute_j, c_rep.energy.compute_j,
                100.0 * energy_saving);
  }
  return 0;
}
