// NUM: numerical study behind the paper's uniform F(4x4, 3x3) choice
// (§2.1 "There are multiple tile size choices for Winograd algorithm").
// Larger tiles save more multiplications but amplify values through the
// transforms, costing precision on the 16-bit datapath. This harness
// measures float and fixed-point error against the direct reference across
// tile sizes, plus the B^T row gain that drives the fixed-point loss.

#include <cmath>
#include <cstdio>

#include "algo/winograd_conv.h"
#include "bench_util.h"
#include "nn/reference.h"

using namespace hetacc;

int main() {
  bench::header("NUM", "Winograd tile-size numerics (float and 16-bit)");

  nn::Tensor in(8, 32, 32);
  nn::fill_deterministic(in, 201);
  nn::FilterBank f(8, 8, 3);
  nn::fill_deterministic(f, 202);
  std::vector<float> bias(8);
  nn::fill_deterministic(bias, 203);
  const nn::Tensor ref = nn::conv_reference(in, f, bias, 1, 1, false);

  std::printf("%6s %8s %12s %14s %14s %12s\n", "m", "mults/out", "B^T gain",
              "float err", "fixed err", "reduction");
  for (int m : {2, 3, 4, 5, 6}) {
    const algo::WinogradTransform t = algo::winograd(m, 3);
    double gain = 0.0;
    for (int a = 0; a < t.n(); ++a) {
      double row = 0.0;
      for (int b = 0; b < t.n(); ++b) row += std::abs(t.bt.at(a, b));
      gain = std::max(gain, row);
    }
    const nn::Tensor flt = algo::winograd_conv(t, in, f, bias, 1, false);
    const nn::Tensor fx =
        algo::winograd_conv_fixed(t, in, f, bias, 1, false, 12, 10);
    const double mults_per_out =
        static_cast<double>(t.tile_mults_2d()) / (m * m);
    std::printf("%6d %8.2f %12.2f %14.2e %14.4f %11.2fx\n", m, mults_per_out,
                gain, static_cast<double>(flt.max_abs_diff(ref)),
                static_cast<double>(fx.max_abs_diff(ref)), t.reduction_2d());
  }
  bench::note(
      "float error grows mildly with m; the fixed-point error grows with "
      "the squared B^T gain — the practical argument for stopping at "
      "F(4x4,3x3) on a 16-bit datapath (paper §2.1/§7.1).");
  return 0;
}
