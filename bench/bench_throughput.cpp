// THR: latency vs batch throughput. Single-image latency sums the groups;
// with images pipelined through the group sequence the steady-state
// interval is the slowest group, so splitting (loose T budgets) buys
// throughput even faster than it buys latency.

#include <cstdio>

#include "bench_util.h"
#include "core/dp_optimizer.h"
#include "core/report.h"
#include "nn/model_zoo.h"

using namespace hetacc;

int main() {
  bench::header("THR", "latency vs pipelined batch throughput (VGG-E head)");

  const fpga::Device dev = fpga::zc706();
  const fpga::EngineModel model(dev);
  const nn::Network head = nn::vgg_e_head();

  std::printf("%10s %8s %14s %12s %16s\n", "T (MB)", "groups", "latency (ms)",
              "1/lat (fps)", "pipelined (fps)");
  for (long long mb : {2, 4, 8, 16, 34}) {
    core::OptimizerOptions oo;
    oo.transfer_budget_bytes = mb * 1024 * 1024;
    const auto r = core::optimize(head, model, oo);
    if (!r.feasible) continue;
    const auto rep = core::make_report(r.strategy, head, dev);
    std::printf("%10lld %8zu %14.2f %12.1f %16.1f\n", mb,
                r.strategy.groups.size(), rep.latency_ms,
                1e3 / rep.latency_ms, rep.throughput_fps);
  }
  bench::note("more groups -> shorter slowest stage -> pipelined throughput "
              "scales past 1/latency (single-image latency is what the "
              "paper's Fig. 5 reports).");
  return 0;
}
