// FLT: fault-hook overhead for DESIGN.md §9 — the zero-cost-when-absent
// guarantee, measured. The functional pipeline and the event simulator run
// (a) with no fault plan (null-pointer hooks), (b) with a zero-rate plan
// installed (every hook live but never firing) and (c) with an active SEU
// plan, on the same binary. The (b)-vs-(a) delta is the price of shipping
// the instrumentation; the bar is <= 1%. Emits a table and BENCH_fault.json.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "arch/event_sim.h"
#include "arch/pipeline.h"
#include "bench_util.h"
#include "fault/fault.h"
#include "fault/protect.h"
#include "nn/model_zoo.h"

using namespace hetacc;

namespace {

struct Record {
  std::string harness;
  std::string config;
  double ms = 0.0;
  double overhead_pct = 0.0;  // vs the matching no-plan baseline
};

// Min-of-k wall time (same discipline as bench_kernels): warm up, then
// repeat until ~500 ms elapsed and keep the fastest run. The dormant-hook
// delta being measured is well under the run-to-run jitter of any single
// rep, so only a deep min-of-k makes the comparison meaningful.
template <typename Fn>
double time_ms(const Fn& fn) {
  using clock = std::chrono::steady_clock;
  fn();  // warmup: touch code and data before the first timed rep
  double best = 1e30;
  double total = 0.0;
  int reps = 0;
  while (reps < 20 || (total < 500.0 && reps < 2000)) {
    const auto t0 = clock::now();
    fn();
    const auto t1 = clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    best = std::min(best, ms);
    total += ms;
    ++reps;
  }
  return best;
}

volatile float g_sink = 0.0f;
volatile long long g_sink_ll = 0;

void emit(std::vector<Record>& out, const char* harness, const char* config,
          double ms, double baseline_ms) {
  Record r{harness, config, ms,
           baseline_ms > 0.0 ? 100.0 * (ms - baseline_ms) / baseline_ms
                             : 0.0};
  std::printf("  %-12s %-16s %9.3f ms  %+7.3f %%\n", harness, config, ms,
              r.overhead_pct);
  out.push_back(std::move(r));
}

void write_json(const std::vector<Record>& recs, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (!f) {
    std::printf("warning: cannot open %s for writing\n", path);
    return;
  }
  std::fprintf(f, "[\n");
  for (std::size_t i = 0; i < recs.size(); ++i) {
    const Record& r = recs[i];
    std::fprintf(f,
                 "  {\"harness\": \"%s\", \"config\": \"%s\", \"ms\": %.4f, "
                 "\"overhead_pct\": %.3f}%s\n",
                 r.harness.c_str(), r.config.c_str(), r.ms, r.overhead_pct,
                 i + 1 < recs.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("wrote %s (%zu records)\n", path, recs.size());
}

}  // namespace

int main() {
  bench::header("FLT", "fault-hook overhead: absent vs dormant vs active");

  std::vector<Record> recs;

  // ---- functional pipeline ------------------------------------------------
  const nn::Network net = nn::tiny_net(16, 48);
  const auto ws = nn::WeightStore::deterministic(net, 5);
  nn::Tensor in(net[0].out);
  nn::fill_deterministic(in, 6);

  arch::FusionPipeline pipe(net, ws);
  const double fn_none =
      time_ms([&] { g_sink = pipe.run(in).at(0, 0, 0); });
  emit(recs, "pipeline", "no-plan", fn_none, 0.0);

  fault::FaultPlan zero;  // all rates zero: hooks live, never fire
  zero.seed = 7;
  pipe.install_fault_plan(zero, fault::ProtectionConfig::all_on());
  const double fn_zero =
      time_ms([&] { g_sink = pipe.run(in).at(0, 0, 0); });
  emit(recs, "pipeline", "zero-rate-plan", fn_zero, fn_none);

  fault::FaultPlan active = zero;
  active.line_buffer_flip_rate = 1e-3;
  active.fifo_corrupt_rate = 1e-3;
  pipe.install_fault_plan(active, fault::ProtectionConfig::all_on());
  const double fn_active =
      time_ms([&] { g_sink = pipe.run(in).at(0, 0, 0); });
  emit(recs, "pipeline", "seu-1e-3", fn_active, fn_none);
  pipe.clear_fault_plan();

  // ---- event-driven timing simulator --------------------------------------
  const fpga::Device dev = fpga::zc706();
  const fpga::EngineModel model(dev);
  std::vector<fpga::Implementation> impls;
  for (std::size_t i = 1; i < net.size(); ++i) {
    impls.push_back(model.implementations(net[i])->front());
  }
  // A single simulation is ~10 us — far below timer resolution — so each
  // timed rep runs a batch of 100.
  constexpr int kSimBatch = 100;
  const double ev_none = time_ms([&] {
    for (int k = 0; k < kSimBatch; ++k) {
      g_sink_ll =
          arch::simulate_dataflow(net, 1, net.size() - 1, impls, dev, 16)
              .makespan_cycles;
    }
  });
  emit(recs, "event-sim", "no-injector", ev_none, 0.0);

  const fault::FaultInjector zero_inj{fault::FaultPlan{}};
  const double ev_zero = time_ms([&] {
    for (int k = 0; k < kSimBatch; ++k) {
      g_sink_ll = arch::simulate_dataflow(net, 1, net.size() - 1, impls,
                                          dev, 16, &zero_inj)
                      .makespan_cycles;
    }
  });
  emit(recs, "event-sim", "zero-rate-plan", ev_zero, ev_none);

  fault::FaultPlan stall;
  stall.seed = 7;
  stall.engine_stall_rate = 1e-3;
  stall.engine_stall_cycles = 32;
  stall.fifo_delay_rate = 1e-3;
  stall.fifo_delay_cycles = 8;
  const fault::FaultInjector stall_inj(stall);
  const double ev_active = time_ms([&] {
    for (int k = 0; k < kSimBatch; ++k) {
      g_sink_ll = arch::simulate_dataflow(net, 1, net.size() - 1, impls,
                                          dev, 16, &stall_inj)
                      .makespan_cycles;
    }
  });
  emit(recs, "event-sim", "stall-1e-3", ev_active, ev_none);

  write_json(recs, "BENCH_fault.json");

  const double worst = std::max(100.0 * (fn_zero - fn_none) / fn_none,
                                100.0 * (ev_zero - ev_none) / ev_none);
  std::printf("\nworst dormant-hook overhead: %+.3f %% (bar: <= 1%%)\n",
              worst);
  bench::note(
      "dormant = plan installed with every rate at zero; the functional "
      "output and simulated makespan are byte-identical to the no-plan runs "
      "(asserted in test_fault), so the delta above is pure hook cost");
  return worst <= 1.0 ? 0 : 1;
}
