// FIG5: latency of the first five convolutional + two pooling layers of
// VGG-E on the ZC706 under a sweep of feature-map transfer constraints,
// our framework vs the tile-based fused baseline [1] (Alwani et al.,
// MICRO'16). Also reproduces the §7.2 "34 MB -> each layer forms a group,
// 660 GOPS effective" data point.

#include <cstdio>

#include "baseline/alwani.h"
#include "bench_util.h"
#include "core/dp_optimizer.h"
#include "core/report.h"
#include "nn/model_zoo.h"

using namespace hetacc;

int main() {
  bench::header("FIG5",
                "VGG-E head latency vs transfer constraint, ours vs [1]");

  const fpga::Device dev = fpga::zc706();
  const fpga::EngineModel model(dev);
  const nn::Network head = nn::vgg_e_head();

  const auto baseline = baseline::design_baseline(head, 1, 7, model);
  if (!baseline) {
    std::printf("baseline infeasible on %s\n", dev.name.c_str());
    return 1;
  }
  std::printf("baseline [1]: tile=%d, latency %lld cycles (%.2f ms), "
              "transfer %.2f MB (fixed — [1] has no trade-off knob)\n\n",
              baseline->geom.tile, baseline->latency_cycles,
              baseline->latency_cycles / dev.frequency_hz * 1e3,
              baseline->transfer_bytes / bench::kMB);

  std::printf("%10s %10s %14s %14s %9s %8s\n", "T (MB)", "groups",
              "ours (cyc)", "[1] (cyc)", "speedup", "GOPS");
  double sum_speedup = 0.0;
  double min_speedup = 1e30, max_speedup = 0.0;
  int count = 0;
  for (const long long mb : {2, 4, 8, 16, 34}) {
    core::OptimizerOptions oo;
    oo.transfer_budget_bytes = mb * 1024 * 1024;
    const auto r = core::optimize(head, model, oo);
    if (!r.feasible) {
      std::printf("%10lld infeasible\n", mb);
      continue;
    }
    const double speedup =
        static_cast<double>(baseline->latency_cycles) /
        static_cast<double>(r.strategy.latency_cycles());
    sum_speedup += speedup;
    min_speedup = std::min(min_speedup, speedup);
    max_speedup = std::max(max_speedup, speedup);
    ++count;
    std::printf("%10lld %10zu %14lld %14lld %8.2fx %8.1f\n", mb,
                r.strategy.groups.size(), r.strategy.latency_cycles(),
                baseline->latency_cycles, speedup,
                r.strategy.effective_gops(head, dev.frequency_hz));
  }
  if (count) {
    std::printf("\nspeedup over [1]: %.2fx - %.2fx (average %.2fx); "
                "paper reports 1.42x - 3.85x (average 1.99x)\n",
                min_speedup, max_speedup, sum_speedup / count);
  }

  // The paper's unfused data point: every layer its own group.
  core::Strategy unfused;
  for (std::size_t i = 1; i < head.size(); ++i) {
    const auto g = core::fuse_group(head, i, i, model);
    if (g) unfused.groups.push_back(g->group);
  }
  const double unfused_gops =
      static_cast<double>(head.total_ops()) /
      (unfused.pipelined_latency_cycles() / dev.frequency_hz) / 1e9;
  std::printf("\nunfused (one group per layer, DDR prefetch overlapped, cf. "
              "paper's 34 MB point): %.1f effective GOPS at %.2f MB "
              "feature transfer (paper: 660 GOPS at 34 MB)\n",
              unfused_gops, unfused.transfer_bytes() / bench::kMB);
  bench::note(
      "shape check: latency decreases (groups split for speed) as T "
      "relaxes, the baseline is flat, and the speedup range brackets the "
      "paper's average — see EXPERIMENTS.md.");
  return 0;
}
