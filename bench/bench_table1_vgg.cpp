// TAB1: detailed comparison of our strategy vs the fused baseline [1] on
// the VGG-E head under the 2 MB transfer constraint (paper Table 1):
// BRAM18K / DSP48E / FF / LUT / power / energy efficiency.

#include <cstdio>

#include "baseline/alwani.h"
#include "bench_util.h"
#include "core/dp_optimizer.h"
#include "core/report.h"
#include "nn/model_zoo.h"

using namespace hetacc;

int main() {
  bench::header("TAB1", "VGG-E head detailed comparison @ 2 MB (vs [1])");

  const fpga::Device dev = fpga::zc706();
  const fpga::EngineModel model(dev);
  const nn::Network head = nn::vgg_e_head();

  core::OptimizerOptions oo;
  oo.transfer_budget_bytes = 2 * 1024 * 1024;
  const auto ours = core::optimize(head, model, oo);
  if (!ours.feasible) {
    std::printf("ours infeasible\n");
    return 1;
  }
  const auto ours_rep = core::make_report(ours.strategy, head, dev);

  const auto base = baseline::design_baseline(head, 1, 7, model);
  if (!base) {
    std::printf("baseline infeasible\n");
    return 1;
  }
  // Baseline report: wrap the baseline design into a strategy-like summary.
  core::Strategy bs;
  core::FusionGroup bg;
  bg.first = 1;
  bg.last = 7;
  bg.impls = base->impls;
  bg.timing.latency_cycles = base->latency_cycles;
  bg.timing.transfer_bytes = base->transfer_bytes;
  bg.timing.compute_cycles = base->latency_cycles;
  bs.groups.push_back(bg);
  auto base_rep = core::make_report(bs, head, dev);
  base_rep.peak_resources = base->resources;  // include tile buffers
  base_rep.power = fpga::estimate_power(dev, base->resources,
                                        base_rep.dsp_utilization);
  base_rep.energy_efficiency_gops_per_w = fpga::energy_efficiency_gops_per_w(
      static_cast<double>(head.total_ops()),
      base->latency_cycles / dev.frequency_hz, base_rep.power.total());

  std::printf("%-28s %14s %14s\n", "", "Ours", "[1]");
  std::printf("%-28s %14lld %14lld\n", "BRAM18K",
              ours_rep.peak_resources.bram18k, base_rep.peak_resources.bram18k);
  std::printf("%-28s %14lld %14lld\n", "DSP48E", ours_rep.peak_resources.dsp,
              base_rep.peak_resources.dsp);
  std::printf("%-28s %14lld %14lld\n", "FF", ours_rep.peak_resources.ff,
              base_rep.peak_resources.ff);
  std::printf("%-28s %14lld %14lld\n", "LUT", ours_rep.peak_resources.lut,
              base_rep.peak_resources.lut);
  std::printf("%-28s %14.2f %14.2f\n", "Power (W)", ours_rep.power.total(),
              base_rep.power.total());
  std::printf("%-28s %14.2f %14.2f\n", "Latency (ms)", ours_rep.latency_ms,
              base->latency_cycles / dev.frequency_hz * 1e3);
  std::printf("%-28s %14.1f %14.1f\n", "Effective GOPS",
              ours_rep.effective_gops,
              static_cast<double>(head.total_ops()) /
                  (base->latency_cycles / dev.frequency_hz) / 1e9);
  std::printf("%-28s %14.2f %14.2f\n", "Energy eff. (GOPS/W)",
              ours_rep.energy_efficiency_gops_per_w,
              base_rep.energy_efficiency_gops_per_w);

  std::printf("\nour strategy detail:\n%s\n",
              ours.strategy.describe(head).c_str());
  bench::note("paper Table 1 reports similar resources/power for both with "
              "much better performance for ours — same shape expected here.");
  return 0;
}
