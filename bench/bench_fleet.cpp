// FLEET: multi-model fleet-serving characterization for DESIGN.md §15.
// Drives the same multi-tenant traces (three models, each with a steady
// stream and a bursty oscillator) through the FleetServer under three
// conditions and quantifies the two fleet mechanisms:
//
//   fleet-batch1       dynamic batching off (cap 1) — the per-request
//                      setup cost is paid on every request
//   fleet-batched      batching on (cap 8, one-service-time age budget)
//   fleet-copies       batching on, shared prepack cache off — every
//                      replica packs its own bundle (the per-replica-copy
//                      memory baseline)
//   fleet-autoscale    batching + sharing + replica autoscale, for the
//                      cold-vs-warm spin-up numbers
//   fleet-faultburst   a 6x slow burst on one model-0 replica, hedging off
//   fleet-hedged       the same burst with deterministic request hedging
//
// Exit status asserts the §15 claims — dynamic batching buys >= 1.3x
// virtual-time throughput over batch=1 at an equal-or-better deadline-miss
// rate, and the shared cache keeps strictly fewer resident bytes than
// replicas x per-replica copies — plus the §16 claim that hedging beats the
// unhedged p99 on the struck model at < 5% duplicated work. Emits a table
// and BENCH_fleet.json with all three verdicts.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "fault/fleet_fault.h"
#include "nn/model_zoo.h"
#include "serve/fleet.h"
#include "serve_common.h"

using namespace hetacc;

namespace {

/// Three single-rung models (no regime descent, so the batch1-vs-batched
/// delta is batching alone) over the tiny functional testbed.
std::vector<serve::FleetModel> make_models(int replicas) {
  const long long service[3] = {1000, 800, 1200};
  std::vector<serve::FleetModel> models;
  for (int m = 0; m < 3; ++m) {
    serve::FleetModel fm;
    fm.name = "model-" + std::to_string(m);
    fm.net = nn::tiny_net(4, 16);
    fm.ws = nn::WeightStore::deterministic(fm.net, 21 + m);
    serve::ServingMode home;
    home.label = "home";
    home.service_cycles = service[m];
    fm.ladder.rungs = {std::move(home)};
    fm.ladder.home = 0;
    fm.replicas = replicas;
    models.push_back(std::move(fm));
  }
  return models;
}

struct Scenario {
  serve::FleetStats stats;
  long long submitted = 0;
  long long misses = 0;  ///< deadline misses + deadline sheds
  double throughput = 0.0;  ///< completed per kilo-cycle of virtual time
};

long long miss_count(const serve::FleetStats& s) {
  long long m = 0;
  for (const auto& t : s.tenants) m += t.deadline_misses + t.shed_deadline;
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::stoull(argv[1]) : 1500;
  const int replicas = 2;
  bench::header("FLEET", "multi-model fleet: batching + shared prepack cache");

  // Per model: a steady stream plus a bursty oscillator, together arriving
  // faster than the batch=1 pool can drain (2 replicas / service) but near
  // what batching unlocks — the regime where amortizing the per-batch setup
  // is the difference between shedding and keeping up.
  std::vector<serve::TenantConfig> tenants;
  std::vector<serve::ArrivalTrace> traces;
  const auto models = make_models(replicas);
  for (std::size_t m = 0; m < models.size(); ++m) {
    const long long svc = models[m].ladder.rungs[0].service_cycles;
    serve::TenantConfig steady;
    steady.name = models[m].name + "/steady";
    steady.model = m;
    steady.weight = 2;
    steady.queue_capacity = 32;
    steady.deadline_cycles = 12 * svc;
    steady.batch_cap = 8;
    steady.batch_age_cycles = svc;
    serve::TenantConfig bursty = steady;
    bursty.name = models[m].name + "/bursty";
    bursty.weight = 1;
    tenants.push_back(std::move(steady));
    traces.push_back(serve::ArrivalTrace::synthetic(
        n, /*mean=*/2 * svc / 5, /*seed=*/31 + 2 * m, /*surge=*/2.0));
    tenants.push_back(std::move(bursty));
    traces.push_back(serve::ArrivalTrace::oscillating(
        /*periods=*/8, /*per_phase=*/n / 16 > 4 ? n / 16 : 4,
        /*burst=*/svc / 4, /*lull=*/3 * svc / 2, /*seed=*/32 + 2 * m));
  }
  std::printf("%zu models x %d replicas, %zu tenants, ~%zu requests each\n\n",
              models.size(), replicas, tenants.size(), n);

  std::vector<bench::ServeRecord> recs;
  const auto run = [&](const std::string& name, std::size_t batch_cap,
                       bool share, bool autoscale) {
    serve::FleetConfig cfg;
    cfg.threads = 0;
    cfg.share_prepack = share;
    cfg.batch_setup_frac = 0.5;
    cfg.autoscale.enabled = autoscale;
    cfg.autoscale.max_replicas = replicas + 2;
    cfg.autoscale.up_queue_frac = 0.15;
    cfg.autoscale.dwell_cycles = 4000;
    cfg.autoscale.spinup_cold_cycles = 2000;
    cfg.autoscale.spinup_warm_cycles = 250;
    auto ts = tenants;
    if (batch_cap == 1) {
      for (auto& t : ts) {
        t.batch_cap = 1;
        t.batch_age_cycles = 0;
      }
    }
    serve::FleetServer fleet(make_models(replicas), std::move(ts), cfg);
    double wall_ms = 0.0;
    Scenario sc;
    sc.stats = bench::timed_ms(wall_ms, [&] { return fleet.run(traces); });
    for (const auto& t : sc.stats.tenants) sc.submitted += t.submitted;
    sc.misses = miss_count(sc.stats);
    sc.throughput = sc.stats.makespan_cycles > 0
                        ? 1000.0 *
                              static_cast<double>(sc.stats.completed_total()) /
                              static_cast<double>(sc.stats.makespan_cycles)
                        : 0.0;
    recs.push_back({name, sc.stats.to_json(), wall_ms,
                    bench::req_per_s(sc.stats.completed_total(), wall_ms)});
    std::printf("  %-16s %6lld ok  %5lld missed/shed  %7.3f req/kcyc  "
                "cache %8lld B resident (%lld saved)  %s\n",
                name.c_str(), sc.stats.completed_total(), sc.misses,
                sc.throughput, sc.stats.cache.resident_bytes,
                sc.stats.cache.bytes_saved,
                sc.stats.accounted() ? "accounted" : "LOST REQUESTS");
    return sc;
  };

  const Scenario batch1 = run("fleet-batch1", 1, true, false);
  const Scenario batched = run("fleet-batched", 8, true, false);
  const Scenario copies = run("fleet-copies", 8, false, false);
  const Scenario scaled = run("fleet-autoscale", 8, true, true);

  // Fault-burst row (DESIGN.md §16): one replica of model-0 runs 6x slow
  // for a ~100k-cycle burst mid-run. Hedging must pull the struck model's
  // p99 back down while duplicating only a small fraction of the work —
  // the whole point of hedging stragglers instead of replicating requests.
  const auto run_burst = [&](const std::string& name, bool hedge) {
    serve::FleetConfig cfg;
    cfg.threads = 0;
    cfg.batch_setup_frac = 0.5;
    cfg.health.enabled = false;  // isolate hedging from quarantine rescue
    cfg.hedge.enabled = hedge;
    cfg.hedge.delay_cycles = 250;
    fault::FleetFaultPlan plan;
    fault::FleetFaultEvent slow;
    slow.kind = fault::FleetFaultKind::kSlow;
    slow.cycle = 100'000;
    slow.model = 0;
    slow.replica = 1;
    slow.slow_factor = 6.0;
    slow.slow_duration = 100'000;
    plan.events.push_back(slow);
    serve::FleetServer fleet(make_models(replicas), tenants, cfg);
    double wall_ms = 0.0;
    Scenario sc;
    sc.stats =
        bench::timed_ms(wall_ms, [&] { return fleet.run(traces, plan); });
    for (const auto& t : sc.stats.tenants) sc.submitted += t.submitted;
    sc.misses = miss_count(sc.stats);
    recs.push_back({name, sc.stats.to_json(), wall_ms,
                    bench::req_per_s(sc.stats.completed_total(), wall_ms)});
    // The struck model's tail: worst p99 over model-0's two tenants.
    const long long p99 = std::max(sc.stats.tenants[0].latency.p99(),
                                   sc.stats.tenants[1].latency.p99());
    std::printf("  %-16s %6lld ok  %5lld missed/shed  model-0 p99 %8lld  "
                "%5lld hedges (%lld wins)  %s\n",
                name.c_str(), sc.stats.completed_total(), sc.misses, p99,
                sc.stats.hedges_fired, sc.stats.hedge_wins,
                sc.stats.accounted() ? "accounted" : "LOST REQUESTS");
    return sc;
  };
  const Scenario unhedged = run_burst("fleet-faultburst", false);
  const Scenario hedged = run_burst("fleet-hedged", true);

  // Claim (a): batching amortizes the per-batch setup into >= 1.3x
  // virtual-time throughput without trading deadline quality away.
  const double speedup =
      batch1.throughput > 0.0 ? batched.throughput / batch1.throughput : 0.0;
  const double miss1 = batch1.submitted > 0
                           ? static_cast<double>(batch1.misses) /
                                 static_cast<double>(batch1.submitted)
                           : 0.0;
  const double missb = batched.submitted > 0
                           ? static_cast<double>(batched.misses) /
                                 static_cast<double>(batched.submitted)
                           : 0.0;
  // Claim (b): sharing keeps one bundle per (model, rung) resident instead
  // of one per replica.
  const long long shared_bytes = batched.stats.cache.resident_bytes;
  const long long copy_bytes = copies.stats.cache.resident_bytes;
  const bool batching_ok = speedup >= 1.3 && missb <= miss1;
  const bool cache_ok = shared_bytes < copy_bytes;
  // Claim (c): under the slow-replica burst, hedging beats the unhedged
  // tail on the struck model at < 5% duplicated work.
  const long long p99_unhedged =
      std::max(unhedged.stats.tenants[0].latency.p99(),
               unhedged.stats.tenants[1].latency.p99());
  const long long p99_hedged =
      std::max(hedged.stats.tenants[0].latency.p99(),
               hedged.stats.tenants[1].latency.p99());
  const double extra_work =
      hedged.stats.completed_total() > 0
          ? static_cast<double>(hedged.stats.hedges_fired) /
                static_cast<double>(hedged.stats.completed_total())
          : 1.0;
  const bool hedging_ok = p99_hedged < p99_unhedged && extra_work < 0.05;

  std::printf("\nbatching: %.2fx throughput vs batch=1 (miss rate %.3f vs "
              "%.3f) -> %s\n",
              speedup, missb, miss1, batching_ok ? "ok" : "FAIL");
  std::printf("sharing:  %lld bytes resident vs %lld per-replica copies "
              "(%d replicas) -> %s\n",
              shared_bytes, copy_bytes, replicas, cache_ok ? "ok" : "FAIL");
  std::printf("hedging:  model-0 p99 %lld hedged vs %lld unhedged under the "
              "slow burst (%.1f%% extra work) -> %s\n",
              p99_hedged, p99_unhedged, 100.0 * extra_work,
              hedging_ok ? "ok" : "FAIL");
  std::printf("spin-ups: %lld cold / %lld warm across the autoscale run\n",
              scaled.stats.models[0].cold_spinups +
                  scaled.stats.models[1].cold_spinups +
                  scaled.stats.models[2].cold_spinups,
              scaled.stats.models[0].warm_spinups +
                  scaled.stats.models[1].warm_spinups +
                  scaled.stats.models[2].warm_spinups);

  std::FILE* f = std::fopen("BENCH_fleet.json", "w");
  if (f) {
    std::fprintf(f,
                 "{\"batching_speedup\": %.3f, \"batch1_miss_rate\": %.4f, "
                 "\"batched_miss_rate\": %.4f, \"batching_ok\": %s, "
                 "\"shared_resident_bytes\": %lld, "
                 "\"replica_copy_resident_bytes\": %lld, \"cache_ok\": %s, "
                 "\"p99_unhedged\": %lld, \"p99_hedged\": %lld, "
                 "\"hedge_extra_work\": %.4f, \"hedging_ok\": %s, "
                 "\"scenarios\": %s}\n",
                 speedup, miss1, missb, batching_ok ? "true" : "false",
                 shared_bytes, copy_bytes, cache_ok ? "true" : "false",
                 p99_unhedged, p99_hedged, extra_work,
                 hedging_ok ? "true" : "false",
                 bench::records_json(recs).c_str());
    std::fclose(f);
    std::printf("wrote BENCH_fleet.json (%zu scenarios)\n", recs.size());
  } else {
    std::printf("warning: cannot open BENCH_fleet.json for writing\n");
  }

  const bool accounted =
      batch1.stats.accounted() && batched.stats.accounted() &&
      copies.stats.accounted() && scaled.stats.accounted() &&
      unhedged.stats.accounted() && hedged.stats.accounted();
  return accounted && batching_ok && cache_ok && hedging_ok ? 0 : 1;
}
