// SIM: architecture-model validation — the optimizer's analytic group
// latency vs the row-level schedule simulation, and functional-pipeline FIFO
// occupancy, for the fusion groups the optimizer actually picks.

#include <cstdio>

#include "arch/event_sim.h"
#include "arch/pipeline.h"
#include "bench_util.h"
#include "core/dp_optimizer.h"
#include "nn/model_zoo.h"

using namespace hetacc;

int main() {
  bench::header("SIM", "analytic latency model vs row-level schedule sim");

  const fpga::Device dev = fpga::zc706();
  const fpga::EngineModel model(dev);

  struct Case {
    const char* name;
    nn::Network net;
  };
  const Case cases[] = {
      {"vgg-e-head", nn::vgg_e_head()},
      {"alexnet-accel", nn::alexnet_accel()},
      {"chain6-64ch", nn::conv_chain(6, 64, 56)},
  };

  std::printf("%-16s %-10s %14s %14s %8s\n", "network", "group",
              "analytic(cyc)", "schedule(cyc)", "ratio");
  for (const auto& c : cases) {
    core::OptimizerOptions oo;
    oo.transfer_budget_bytes = 64ll * 1024 * 1024;
    const auto r = core::optimize(c.net, model, oo);
    if (!r.feasible) {
      std::printf("%-16s infeasible\n", c.name);
      continue;
    }
    for (std::size_t gi = 0; gi < r.strategy.groups.size(); ++gi) {
      const auto& g = r.strategy.groups[gi];
      const auto sched =
          arch::simulate_schedule(c.net, g.first, g.last, g.impls, dev);
      std::printf("%-16s [%zu,%zu] %14lld %14lld %8.3f\n", c.name, g.first,
                  g.last, g.timing.latency_cycles, sched.makespan_cycles,
                  static_cast<double>(sched.makespan_cycles) /
                      static_cast<double>(g.timing.latency_cycles));
    }
  }

  // Functional pipeline on a scaled-down heterogeneous group: FIFO depths
  // stay at line-buffer scale (justifying the paper's plain FIFO channels).
  nn::Network small("small-hetero");
  small.input({3, 32, 32});
  small.conv(8, 3, 1, 1, "c1");
  small.conv(8, 3, 1, 1, "c2");
  small.max_pool(2, 2, "p1");
  small.conv(16, 3, 1, 1, "c3");
  const auto ws = nn::WeightStore::deterministic(small, 5);
  std::vector<arch::LayerChoice> ch(4);
  ch[1].algo = fpga::ConvAlgo::kWinograd;
  ch[3].algo = fpga::ConvAlgo::kWinograd;
  arch::FusionPipeline pipe(small, ws, ch);
  nn::Tensor in(small[0].out);
  nn::fill_deterministic(in, 6);
  (void)pipe.run(in);
  std::printf("\nfunctional pipeline FIFO max occupancy (rows): ");
  for (std::size_t i = 0; i < pipe.stats().fifo_max_occupancy.size(); ++i) {
    std::printf("%zu ", pipe.stats().fifo_max_occupancy[i]);
  }
  std::printf("\n(all bounded by a few rows -> plain FIFO channels suffice, "
              "paper §6)\n");

  // Discrete-event dataflow with finite FIFOs: how deep must the generated
  // STREAM channels be before backpressure stops costing cycles?
  {
    const fpga::EngineModel m(dev);
    std::vector<fpga::Implementation> impls;
    for (std::size_t i = 1; i < small.size(); ++i) {
      fpga::EngineConfig cfg;
      if (small[i].kind == nn::LayerKind::kConv) {
        cfg.algo = ch[i - 1].algo;
        cfg.tn = 2;
        cfg.tm = 4;
      } else {
        cfg.algo = fpga::ConvAlgo::kNone;
        cfg.tn = 2;
      }
      impls.push_back(m.implement(small[i], cfg));
    }
    std::printf("\nfinite-FIFO event simulation (small-hetero group):\n");
    std::printf("%10s %16s %14s\n", "depth", "makespan (cyc)", "stall (cyc)");
    for (std::size_t cap : {4u, 8u, 16u, 64u}) {
      const auto r =
          arch::simulate_dataflow(small, 1, small.size() - 1, impls, dev, cap);
      if (!r.completed) {
        std::printf("%10zu %16s %14s\n", cap, "deadlock", "-");
        continue;
      }
      std::printf("%10zu %16lld %14lld\n", cap, r.makespan_cycles,
                  r.producer_stall_cycles);
    }
    const std::size_t depth = arch::minimal_fifo_depth_rows(
        small, 1, small.size() - 1, impls, dev);
    std::printf("minimal uniform FIFO depth within 2%% of unbounded: %zu "
                "rows (codegen default depth is conservative)\n",
                depth);
  }
  return 0;
}
