// Release-mode performance smoke: asserts the blocked im2col+GEMM path
// beats the retained scalar seed convolution on one VGG-sized layer. Run by
// the CI Release job (a debug/-O0 build will not pass; that is the point —
// the check guards against regressions that quietly serialize or deopt the
// kernel layer). Exit 0 = pass, 1 = fail.

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "algo/conv_variants.h"
#include "kernels/parallel.h"
#include "nn/reference.h"

using namespace hetacc;

namespace {

template <typename Fn>
double best_ms(const Fn& fn, int reps) {
  using clock = std::chrono::steady_clock;
  double best = 1e30;
  for (int i = 0; i < reps; ++i) {
    const auto t0 = clock::now();
    fn();
    const auto t1 = clock::now();
    best = std::min(
        best, std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

volatile float g_sink = 0.0f;

}  // namespace

int main() {
  // VGG conv3-class layer: 64x56x56 input, 64 3x3 filters, stride 1, pad 1.
  nn::Tensor in(64, 56, 56);
  nn::FilterBank f(64, 64, 3);
  std::vector<float> bias(64);
  nn::fill_deterministic(in, 1);
  nn::fill_deterministic(f, 2);
  nn::fill_deterministic(bias, 3);

  kernels::set_num_threads(1);  // single-thread comparison: pure kernel win
  const double scalar = best_ms(
      [&] {
        g_sink =
            nn::conv_reference_scalar(in, f, bias, 1, 1, true).at(0, 0, 0);
      },
      3);
  const double blocked = best_ms(
      [&] { g_sink = algo::conv_im2col(in, f, bias, 1, 1, true).at(0, 0, 0); },
      5);

  const double speedup = scalar / blocked;
  std::printf("perf_smoke: scalar %.2f ms, blocked GEMM %.2f ms — %.2fx "
              "(1 thread, 64x56x56 * 64 3x3 filters)\n",
              scalar, blocked, speedup);
  // The sweep shows well over 5x in Release; 2x is the regression tripwire
  // with headroom for noisy shared CI runners.
  if (speedup < 2.0) {
    std::printf("perf_smoke: FAIL — blocked GEMM must beat the scalar seed "
                "by at least 2x in Release builds\n");
    return 1;
  }
  std::printf("perf_smoke: PASS\n");
  return 0;
}
