// Release-mode performance tripwire, run by the CI release-perf job.
//
// Two guards, exit 0 = pass, 1 = fail:
//  1. Relative: the blocked im2col+GEMM path must beat the retained scalar
//     seed convolution by >= 2x single-threaded (a debug/-O0 build will not
//     pass; that is the point — the check catches regressions that quietly
//     serialize or deopt the kernel layer).
//  2. Absolute: each guarded kernel must run within 2x of its committed
//     per-kernel baseline (bench/perf_baseline.json, path baked in via
//     HETACC_PERF_BASELINE). Baselines were measured on a deliberately slow
//     single-core box, so the 2x threshold is generous headroom for CI
//     runner variance while still catching order-of-magnitude regressions
//     (e.g. losing SIMD dispatch or packing reuse).
//
// Regenerate the baseline after an intentional perf change:
//   perf_smoke --write-baseline path/to/perf_baseline.json

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "algo/conv_variants.h"
#include "algo/winograd_conv.h"
#include "kernels/blocking.h"
#include "kernels/gemm.h"
#include "kernels/parallel.h"
#include "nn/reference.h"

using namespace hetacc;

namespace {

template <typename Fn>
double best_ms(const Fn& fn, int reps) {
  using clock = std::chrono::steady_clock;
  fn();  // warmup: pages, scratch-arena high water, worker pool
  double best = 1e30;
  for (int i = 0; i < reps; ++i) {
    const auto t0 = clock::now();
    fn();
    const auto t1 = clock::now();
    best = std::min(
        best, std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

volatile float g_sink = 0.0f;

struct Measurement {
  const char* kernel;
  double ms;
};

/// Minimal scan for `"<key>": <number>` in a small flat JSON object.
double json_lookup(const std::string& text, const char* key) {
  const std::string needle = std::string("\"") + key + "\":";
  const std::size_t at = text.find(needle);
  if (at == std::string::npos) return -1.0;
  double v = -1.0;
  if (std::sscanf(text.c_str() + at + needle.size(), " %lf", &v) != 1) {
    return -1.0;
  }
  return v;
}

std::string read_file(const char* path) {
  std::FILE* f = std::fopen(path, "rb");
  if (!f) return {};
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  return text;
}

}  // namespace

int main(int argc, char** argv) {
  const char* write_path = nullptr;
  if (argc == 3 && std::strcmp(argv[1], "--write-baseline") == 0) {
    write_path = argv[2];
  }

  // VGG conv3-class layer: 64x56x56 input, 64 3x3 filters, stride 1, pad 1.
  nn::Tensor in(64, 56, 56);
  nn::FilterBank f(64, 64, 3);
  std::vector<float> bias(64);
  nn::fill_deterministic(in, 1);
  nn::fill_deterministic(f, 2);
  nn::fill_deterministic(bias, 3);
  const algo::WinogradTransform wt = algo::winograd_f4x3();
  const algo::TransformedFilters tf = algo::transform_filters(wt, f);
  constexpr int kDataFrac = 12, kWeightFrac = 14, kOutFrac = 10;

  // Committed per-machine tuning cache (written by autotune_blocking). On a
  // machine with a different cache topology 0 entries apply and dispatch
  // stays on the shipped defaults — either way results are identical, the
  // cache can only change speed.
#ifdef HETACC_TUNING_CACHE
  {
    const int applied = kernels::load_tuning_cache_file(HETACC_TUNING_CACHE);
    std::printf("perf_smoke: tuning cache %s — %d entr%s applied\n",
                HETACC_TUNING_CACHE, applied < 0 ? 0 : applied,
                applied == 1 ? "y" : "ies");
  }
#endif

  kernels::set_num_threads(1);  // single-thread comparison: pure kernel win
  const double scalar = best_ms(
      [&] {
        g_sink = nn::conv_reference_scalar(in, f, bias, 1, 1, true).at(0, 0, 0);
      },
      3);

  std::vector<Measurement> measured;
  measured.push_back({"im2col_gemm", best_ms(
      [&] { g_sink = algo::conv_im2col(in, f, bias, 1, 1, true).at(0, 0, 0); },
      5)});
  measured.push_back({"winograd_f43_gemm", best_ms(
      [&] {
        g_sink = algo::winograd_conv_pretransformed(tf, in, bias, 1, true)
                     .at(0, 0, 0);
      },
      5)});
  measured.push_back({"direct_fixed_gemm", best_ms(
      [&] {
        g_sink = algo::conv_direct_fixed(in, f, bias, 1, 1, true, kDataFrac,
                                         kWeightFrac, kOutFrac)
                     .at(0, 0, 0);
      },
      5)});
  measured.push_back({"winograd_fixed_gemm", best_ms(
      [&] {
        g_sink = algo::winograd_conv_fixed(wt, in, f, bias, 1, true, kDataFrac,
                                           kOutFrac)
                     .at(0, 0, 0);
      },
      5)});

  // int8 datapath on the same geometry; recipe from the observed ranges.
  const algo::Int8ConvQuant i8q = [&] {
    const nn::Tensor ref = algo::conv_im2col(in, f, bias, 1, 1, true);
    float in_mn = 0.0f, in_mx = 0.0f, out_mn = 0.0f, out_mx = 0.0f;
    for (float v : in.vec()) {
      in_mn = std::min(in_mn, v);
      in_mx = std::max(in_mx, v);
    }
    for (float v : ref.vec()) {
      out_mn = std::min(out_mn, v);
      out_mx = std::max(out_mx, v);
    }
    return algo::make_int8_conv_quant(f, in_mn, in_mx, out_mn, out_mx);
  }();
  measured.push_back({"im2col_gemm_i8", best_ms(
      [&] {
        g_sink = algo::conv_quant_i8(in, f, bias, 1, 1, true, i8q).at(0, 0, 0);
      },
      5)});

  const double blocked = measured[0].ms;
  std::printf("perf_smoke: scalar %.2f ms (1 thread, 64x56x56 * 64 3x3 "
              "filters), SIMD %s\n",
              scalar, kernels::simd_enabled() ? "on" : "off");
  for (const Measurement& m : measured) {
    std::printf("perf_smoke:   %-22s %8.2f ms\n", m.kernel, m.ms);
  }

  if (write_path) {
    std::FILE* out = std::fopen(write_path, "w");
    if (!out) {
      std::printf("perf_smoke: cannot write %s\n", write_path);
      return 1;
    }
    std::fprintf(out, "{\n");
    for (std::size_t i = 0; i < measured.size(); ++i) {
      std::fprintf(out, "  \"%s\": %.4f%s\n", measured[i].kernel,
                   measured[i].ms, i + 1 < measured.size() ? "," : "");
    }
    std::fprintf(out, "}\n");
    std::fclose(out);
    std::printf("perf_smoke: wrote baseline %s\n", write_path);
    return 0;
  }

  bool ok = true;

  const double speedup = scalar / blocked;
  std::printf("perf_smoke: blocked GEMM vs scalar seed — %.2fx\n", speedup);
  // The sweep shows well over 10x in Release; 2x is the regression tripwire
  // with headroom for noisy shared CI runners.
  if (speedup < 2.0) {
    std::printf("perf_smoke: FAIL — blocked GEMM must beat the scalar seed "
                "by at least 2x in Release builds\n");
    ok = false;
  }

  // int8 must pay for itself: narrower panels + 16-wide micro-kernel should
  // beat the i16 path at the same geometry, single-threaded.
  const double i16_ms = measured[2].ms;   // direct_fixed_gemm
  const double i8_ms = measured[4].ms;    // im2col_gemm_i8
  std::printf("perf_smoke: int8 vs i16 — %.2fx\n", i16_ms / i8_ms);
  if (i8_ms >= i16_ms) {
    std::printf("perf_smoke: FAIL — int8 im2col+GEMM must beat the i16 path "
                "single-threaded\n");
    ok = false;
  }

#ifdef HETACC_PERF_BASELINE
  const std::string baseline = read_file(HETACC_PERF_BASELINE);
  if (baseline.empty()) {
    std::printf("perf_smoke: FAIL — baseline %s missing or empty\n",
                HETACC_PERF_BASELINE);
    ok = false;
  } else {
    for (const Measurement& m : measured) {
      const double base = json_lookup(baseline, m.kernel);
      if (base <= 0.0) {
        std::printf("perf_smoke: FAIL — no baseline entry for %s\n", m.kernel);
        ok = false;
        continue;
      }
      const double ratio = m.ms / base;
      std::printf("perf_smoke:   %-22s %.2fx of committed baseline "
                  "(%.2f ms, limit 2x)\n",
                  m.kernel, ratio, base);
      if (ratio > 2.0) {
        std::printf("perf_smoke: FAIL — %s regressed past 2x of its "
                    "committed baseline\n",
                    m.kernel);
        ok = false;
      }
    }
  }
#else
  std::printf("perf_smoke: note — built without HETACC_PERF_BASELINE, "
              "absolute guard skipped\n");
#endif

  std::printf("perf_smoke: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
