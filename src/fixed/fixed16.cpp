#include "fixed/fixed16.h"

namespace hetacc::fixed {

std::int16_t Fixed16::quantize(float v, int frac) {
  const float scaled = v * static_cast<float>(1 << frac);
  const float rounded = std::nearbyint(scaled);
  const float clamped = std::clamp(rounded, static_cast<float>(kMin),
                                   static_cast<float>(kMax));
  return static_cast<std::int16_t>(clamped);
}

Fixed16 Fixed16::add_sat(Fixed16 other) const {
  const std::int32_t sum =
      static_cast<std::int32_t>(raw_) + static_cast<std::int32_t>(other.raw_);
  return from_raw(static_cast<std::int16_t>(std::clamp(sum, kMin, kMax)),
                  frac_);
}

Fixed16 Fixed16::mul_sat(Fixed16 other) const {
  const std::int64_t prod =
      static_cast<std::int64_t>(raw_) * static_cast<std::int64_t>(other.raw_);
  // Round to nearest when shifting out `frac_` bits.
  const std::int64_t half = frac_ > 0 ? (1ll << (frac_ - 1)) : 0;
  const std::int64_t shifted = (prod + half) >> frac_;
  return from_raw(
      static_cast<std::int16_t>(std::clamp<std::int64_t>(shifted, kMin, kMax)),
      frac_);
}

void quantize_in_place(std::vector<float>& data, int frac) {
  for (auto& x : data) x = quantize_to_float(x, frac);
}

int choose_frac_bits(float max_abs) {
  if (!(max_abs > 0.0f)) return 15;
  int integer_bits = 0;
  while ((1 << integer_bits) <= static_cast<int>(max_abs) &&
         integer_bits < 15) {
    ++integer_bits;
  }
  // One sign bit + integer_bits + frac = 16.
  return std::clamp(15 - integer_bits, 0, 15);
}

Fixed16 Accumulator::result() const {
  const std::int64_t half = frac_ > 0 ? (1ll << (frac_ - 1)) : 0;
  const std::int64_t shifted = (acc_ + half) >> frac_;
  return Fixed16::from_raw(
      static_cast<std::int16_t>(
          std::clamp<std::int64_t>(shifted, Fixed16::kMin, Fixed16::kMax)),
      frac_);
}

Fixed16 Accumulator::result_relu() const {
  Fixed16 r = result();
  return r.raw() < 0 ? Fixed16::from_raw(0, r.frac()) : r;
}

}  // namespace hetacc::fixed
