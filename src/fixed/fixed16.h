#pragma once
// 16-bit fixed-point arithmetic (the paper's designs all use "16-bit fixed
// data type", §7.1). Q-format with a runtime fraction width so different
// layers can pick different scalings, saturating on overflow like a DSP48E
// datapath with saturation logic.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace hetacc::fixed {

/// A 16-bit signed fixed-point value with `frac` fractional bits.
/// Stored/computed explicitly rather than via a template parameter so the
/// simulator can mix formats across layers at runtime.
class Fixed16 {
 public:
  static constexpr int kBits = 16;
  static constexpr std::int32_t kMax = std::numeric_limits<std::int16_t>::max();
  static constexpr std::int32_t kMin = std::numeric_limits<std::int16_t>::min();

  Fixed16() = default;
  Fixed16(float v, int frac) : frac_(frac), raw_(quantize(v, frac)) {}

  static Fixed16 from_raw(std::int16_t raw, int frac) {
    Fixed16 f;
    f.raw_ = raw;
    f.frac_ = frac;
    return f;
  }

  [[nodiscard]] std::int16_t raw() const { return raw_; }
  [[nodiscard]] int frac() const { return frac_; }
  [[nodiscard]] float to_float() const {
    return static_cast<float>(raw_) / static_cast<float>(1 << frac_);
  }

  /// Quantization step at this format.
  [[nodiscard]] float ulp() const { return 1.0f / static_cast<float>(1 << frac_); }

  /// Saturating add; both operands must share a format.
  [[nodiscard]] Fixed16 add_sat(Fixed16 other) const;
  /// Saturating multiply: full 32-bit product, round-to-nearest shift back.
  [[nodiscard]] Fixed16 mul_sat(Fixed16 other) const;

  static std::int16_t quantize(float v, int frac);

 private:
  int frac_ = 8;
  std::int16_t raw_ = 0;
};

/// Round-trip a float through the 16-bit grid (the operation applied to all
/// feature maps and weights before they enter a fixed-point datapath).
[[nodiscard]] inline float quantize_to_float(float v, int frac) {
  return static_cast<float>(Fixed16::quantize(v, frac)) /
         static_cast<float>(1 << frac);
}

void quantize_in_place(std::vector<float>& data, int frac);

/// Fraction width that covers `max_abs` without saturation while keeping
/// maximal precision; clamped to [0, 15].
[[nodiscard]] int choose_frac_bits(float max_abs);

/// 32-bit accumulator in Q(2*frac) as used by MAC trees: products of two
/// Q(frac) values accumulate exactly, one rounding at writeback.
class Accumulator {
 public:
  explicit Accumulator(int frac) : frac_(frac) {}
  void mac(Fixed16 a, Fixed16 b) {
    acc_ += static_cast<std::int64_t>(a.raw()) * b.raw();
  }
  void add_bias(Fixed16 b) {
    acc_ += static_cast<std::int64_t>(b.raw()) << frac_;
  }
  [[nodiscard]] Fixed16 result() const;
  [[nodiscard]] Fixed16 result_relu() const;

 private:
  int frac_;
  std::int64_t acc_ = 0;
};

}  // namespace hetacc::fixed
