#include "kernels/gemm.h"

#include <algorithm>
#include <cstring>
#include <type_traits>

#include "kernels/parallel.h"

namespace hetacc::kernels {

namespace {

// Register micro-tile (MR x NR accumulators stay in registers across the K
// panel) and cache blocks (KC panel of B in L1/L2, MC x KC block of A in L2).
constexpr int MR = 4;
constexpr int NR = 8;
constexpr int KC = 256;
constexpr int MC = 96;

template <typename T>
void pack_a_block(const T* A, int lda, int i0, int mb, int p0, int kb,
                  std::vector<T>& out) {
  const int panels = (mb + MR - 1) / MR;
  out.assign(static_cast<std::size_t>(panels) * MR * kb, T{});
  for (int pi = 0; pi < panels; ++pi) {
    T* dst = out.data() + static_cast<std::size_t>(pi) * MR * kb;
    const int rows = std::min(MR, mb - pi * MR);
    for (int ir = 0; ir < rows; ++ir) {
      const T* src =
          A + static_cast<std::size_t>(i0 + pi * MR + ir) * lda + p0;
      for (int k = 0; k < kb; ++k) dst[k * MR + ir] = src[k];
    }
  }
}

template <typename T>
void pack_b_block(const T* B, int ldb, int p0, int kb, int j0, int nb,
                  std::vector<T>& out) {
  const int panels = (nb + NR - 1) / NR;
  out.assign(static_cast<std::size_t>(panels) * NR * kb, T{});
  for (int pj = 0; pj < panels; ++pj) {
    T* dst = out.data() + static_cast<std::size_t>(pj) * NR * kb;
    const int cols = std::min(NR, nb - pj * NR);
    for (int k = 0; k < kb; ++k) {
      const T* src = B + static_cast<std::size_t>(p0 + k) * ldb + j0 + pj * NR;
      for (int jr = 0; jr < cols; ++jr) dst[k * NR + jr] = src[jr];
    }
  }
}

/// MR x NR register tile over a kb-deep pair of packed panels. The per-
/// element accumulation order is strictly ascending in k.
template <typename TA, typename TAcc>
inline void micro_kernel(int kb, const TA* a, const TA* b, TAcc* acc) {
  for (int k = 0; k < kb; ++k) {
    const TA* ak = a + static_cast<std::size_t>(k) * MR;
    const TA* bk = b + static_cast<std::size_t>(k) * NR;
    for (int ir = 0; ir < MR; ++ir) {
      if constexpr (std::is_integral_v<TA>) {
        const std::int32_t av = ak[ir];
        for (int jr = 0; jr < NR; ++jr) {
          acc[ir * NR + jr] += static_cast<TAcc>(av * bk[jr]);
        }
      } else {
        const TAcc av = static_cast<TAcc>(ak[ir]);
        for (int jr = 0; jr < NR; ++jr) {
          acc[ir * NR + jr] += av * static_cast<TAcc>(bk[jr]);
        }
      }
    }
  }
}

/// Serial GEMM over the column stripe [j0, j1). Exactly one of A / packedA
/// is used. TBias: per-row offset added once (on the first K block).
template <typename TA, typename TAcc, typename TC, typename TBias>
void gemm_stripe(int M, int K, const TA* A, int lda, const PackedLhsT<TA>* pA,
                 const TA* B, int ldb, TC* C, int ldc, const TBias* bias,
                 bool relu, int j0, int j1) {
  const int nb = j1 - j0;
  std::vector<TA> apack, bpack;
  for (int p0 = 0, pb = 0; p0 < K; p0 += KC, ++pb) {
    const int kb = std::min(KC, K - p0);
    pack_b_block(B, ldb, p0, kb, j0, nb, bpack);
    const bool first = (p0 == 0);
    const int jpanels = (nb + NR - 1) / NR;
    for (int i0 = 0, ib = 0; i0 < M; i0 += MC, ++ib) {
      const int mb = std::min(MC, M - i0);
      const TA* ap;
      if (pA) {
        ap = pA->block(pb, ib).data();
      } else {
        pack_a_block(A, lda, i0, mb, p0, kb, apack);
        ap = apack.data();
      }
      const int ipanels = (mb + MR - 1) / MR;
      for (int pi = 0; pi < ipanels; ++pi) {
        for (int pj = 0; pj < jpanels; ++pj) {
          TAcc acc[MR * NR] = {};
          micro_kernel<TA, TAcc>(kb, ap + static_cast<std::size_t>(pi) * MR * kb,
                                 bpack.data() +
                                     static_cast<std::size_t>(pj) * NR * kb,
                                 acc);
          const int rows = std::min(MR, mb - pi * MR);
          const int cols = std::min(NR, nb - pj * NR);
          for (int ir = 0; ir < rows; ++ir) {
            const int i = i0 + pi * MR + ir;
            TC* crow = C + static_cast<std::size_t>(i) * ldc + j0 + pj * NR;
            for (int jr = 0; jr < cols; ++jr) {
              if (first) {
                TAcc v = acc[ir * NR + jr];
                if (bias) v = static_cast<TAcc>(bias[i]) + v;
                crow[jr] = static_cast<TC>(v);
              } else {
                crow[jr] = static_cast<TC>(static_cast<TAcc>(crow[jr]) +
                                           acc[ir * NR + jr]);
              }
            }
          }
        }
      }
    }
  }
  if constexpr (std::is_floating_point_v<TC>) {
    if (relu) {
      for (int i = 0; i < M; ++i) {
        TC* crow = C + static_cast<std::size_t>(i) * ldc;
        for (int j = j0; j < j1; ++j) crow[j] = std::max(crow[j], TC(0));
      }
    }
  } else {
    (void)relu;
  }
}

template <typename TA, typename TAcc, typename TC, typename TBias>
void gemm_dispatch(int M, int N, int K, const TA* A, int lda,
                   const PackedLhsT<TA>* pA, const TA* B, int ldb, TC* C,
                   int ldc, const TBias* bias, bool relu, int threads) {
  if (M <= 0 || N <= 0) return;
  if (K <= 0) {
    for (int i = 0; i < M; ++i) {
      TC v = bias ? static_cast<TC>(bias[i]) : TC{};
      if constexpr (std::is_floating_point_v<TC>) {
        if (relu) v = std::max(v, TC(0));
      }
      TC* crow = C + static_cast<std::size_t>(i) * ldc;
      for (int j = 0; j < N; ++j) crow[j] = v;
    }
    return;
  }
  if (threads == 0) threads = num_threads();
  int want = std::min(resolve_threads(threads), (N + NR - 1) / NR);
  want = std::max(want, 1);
  // Column stripes are NR-aligned so panel padding never lands mid-panel.
  const int stripe = ((N + want - 1) / want + NR - 1) / NR * NR;
  const int stripes = (N + stripe - 1) / stripe;
  parallel_for(static_cast<std::size_t>(stripes), threads, [&](std::size_t s) {
    const int j0 = static_cast<int>(s) * stripe;
    const int j1 = std::min(N, j0 + stripe);
    gemm_stripe<TA, TAcc, TC, TBias>(M, K, A, lda, pA, B, ldb, C, ldc, bias,
                                     relu, j0, j1);
  });
}

}  // namespace

template <typename T>
PackedLhsT<T>::PackedLhsT(const T* A, int M, int K, int lda) : m_(M), k_(K) {
  pblocks_ = K > 0 ? (K + KC - 1) / KC : 0;
  iblocks_ = M > 0 ? (M + MC - 1) / MC : 0;
  blocks_.resize(static_cast<std::size_t>(pblocks_) * iblocks_);
  for (int p0 = 0, pb = 0; p0 < K; p0 += KC, ++pb) {
    const int kb = std::min(KC, K - p0);
    for (int i0 = 0, ib = 0; i0 < M; i0 += MC, ++ib) {
      const int mb = std::min(MC, M - i0);
      pack_a_block(A, lda, i0, mb, p0, kb,
                   blocks_[static_cast<std::size_t>(pb) * iblocks_ + ib]);
    }
  }
}

template class PackedLhsT<float>;

void gemm_f32(int M, int N, int K, const float* A, int lda, const float* B,
              int ldb, float* C, int ldc, const float* bias, bool relu,
              int threads) {
  gemm_dispatch<float, float, float, float>(M, N, K, A, lda, nullptr, B, ldb,
                                            C, ldc, bias, relu, threads);
}

void gemm_f32(const PackedLhsF32& A, int N, const float* B, int ldb, float* C,
              int ldc, const float* bias, bool relu, int threads) {
  gemm_dispatch<float, float, float, float>(A.rows(), N, A.depth(), nullptr, 0,
                                            &A, B, ldb, C, ldc, bias, relu,
                                            threads);
}

void gemm_f32d(int M, int N, int K, const float* A, int lda, const float* B,
               int ldb, double* C, int ldc, const float* bias, bool relu,
               int threads) {
  gemm_dispatch<float, double, double, float>(M, N, K, A, lda, nullptr, B, ldb,
                                              C, ldc, bias, relu, threads);
}

void gemm_f32d(const PackedLhsF32& A, int N, const float* B, int ldb,
               double* C, int ldc, const float* bias, bool relu, int threads) {
  gemm_dispatch<float, double, double, float>(A.rows(), N, A.depth(), nullptr,
                                              0, &A, B, ldb, C, ldc, bias,
                                              relu, threads);
}

void gemm_f64(int M, int N, int K, const double* A, int lda, const double* B,
              int ldb, double* C, int ldc, int threads) {
  gemm_dispatch<double, double, double, double>(M, N, K, A, lda, nullptr, B,
                                                ldb, C, ldc, nullptr, false,
                                                threads);
}

void gemm_i16(int M, int N, int K, const std::int16_t* A, int lda,
              const std::int16_t* B, int ldb, std::int64_t* C, int ldc,
              int threads) {
  gemm_dispatch<std::int16_t, std::int64_t, std::int64_t, std::int64_t>(
      M, N, K, A, lda, nullptr, B, ldb, C, ldc, nullptr, false, threads);
}

namespace {

template <typename T>
void im2col_impl(const T* in, int C, int H, int W, int kernel, int stride,
                 int pad, int out_h, int out_w, T* mat) {
  const std::size_t cols = static_cast<std::size_t>(out_h) * out_w;
  std::size_t row = 0;
  for (int c = 0; c < C; ++c) {
    const T* plane = in + static_cast<std::size_t>(c) * H * W;
    for (int u = 0; u < kernel; ++u) {
      for (int v = 0; v < kernel; ++v, ++row) {
        T* dst = mat + row * cols;
        for (int i = 0; i < out_h; ++i) {
          T* drow = dst + static_cast<std::size_t>(i) * out_w;
          const int h = i * stride + u - pad;
          if (h < 0 || h >= H) {
            std::fill(drow, drow + out_w, T{});
            continue;
          }
          const T* srow = plane + static_cast<std::size_t>(h) * W;
          if (stride == 1) {
            // Contiguous span: j in [max(0, pad-v), min(out_w, W+pad-v)).
            const int j_lo = std::max(0, pad - v);
            const int j_hi = std::min(out_w, W + pad - v);
            if (j_lo > 0) std::fill(drow, drow + j_lo, T{});
            if (j_hi > j_lo) {
              std::memcpy(drow + j_lo, srow + j_lo + v - pad,
                          static_cast<std::size_t>(j_hi - j_lo) * sizeof(T));
            }
            if (j_hi < out_w) std::fill(drow + std::max(j_hi, 0), drow + out_w, T{});
          } else {
            for (int j = 0; j < out_w; ++j) {
              const int w = j * stride + v - pad;
              drow[j] = (w < 0 || w >= W) ? T{} : srow[w];
            }
          }
        }
      }
    }
  }
}

}  // namespace

void im2col_f32(const float* in, int C, int H, int W, int kernel, int stride,
                int pad, int out_h, int out_w, float* mat) {
  im2col_impl(in, C, H, W, kernel, stride, pad, out_h, out_w, mat);
}

void im2col_i16(const std::int16_t* in, int C, int H, int W, int kernel,
                int stride, int pad, int out_h, int out_w, std::int16_t* mat) {
  im2col_impl(in, C, H, W, kernel, stride, pad, out_h, out_w, mat);
}

}  // namespace hetacc::kernels
