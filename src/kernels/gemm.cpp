#include "kernels/gemm.h"

#include <algorithm>
#include <cstring>
#include <type_traits>

#include "kernels/arena.h"
#include "kernels/parallel.h"

namespace hetacc::kernels {

namespace {

// A-side register blocking, shared by every datapath (PackedLhsT bakes this
// interleave, so it is compile-time). The B-side register width NR is per
// (TA, TAcc) pair — see MK below — chosen so the micro-kernel's accumulator
// file fills the 256-bit register budget of the widest dispatch stamp. The
// cache-level blocking (MC/KC/NC/grain) is runtime: per-datapath
// BlockingParams from blocking.h, tuned by the persistent autotuner cache,
// defaulting to the constants this driver shipped with (MC=96, KC=256).
constexpr int MR = 4;

#if (defined(__GNUC__) || defined(__clang__)) && !defined(HETACC_NO_SIMD)
#define HETACC_VEC 1
#if defined(__x86_64__)
#define HETACC_X86_DISPATCH 1
#endif
#endif

/// Scalar micro-kernel: the reference the SIMD stamps must match. Overwrites
/// acc (MR x NR row-major) with the kb-deep panel product; per-element
/// accumulation strictly ascending in k.
template <typename TA, typename TAcc, int NR>
void micro_scalar(int kb, const TA* a, const TA* b, TAcc* acc) {
  for (int x = 0; x < MR * NR; ++x) acc[x] = TAcc{};
  for (int k = 0; k < kb; ++k) {
    const TA* ak = a + static_cast<std::size_t>(k) * MR;
    const TA* bk = b + static_cast<std::size_t>(k) * NR;
    for (int ir = 0; ir < MR; ++ir) {
      if constexpr (std::is_integral_v<TA>) {
        const std::int32_t av = ak[ir];
        for (int jr = 0; jr < NR; ++jr) {
          acc[ir * NR + jr] += static_cast<TAcc>(av * bk[jr]);
        }
      } else {
        const TAcc av = static_cast<TAcc>(ak[ir]);
        for (int jr = 0; jr < NR; ++jr) {
          acc[ir * NR + jr] += av * static_cast<TAcc>(bk[jr]);
        }
      }
    }
  }
}

#ifdef HETACC_VEC

// The wide-vector helpers pass 256/512-bit values through TU-internal inline
// functions; GCC's -Wpsabi ABI note does not apply (nothing crosses a TU
// boundary), so it is silenced for this block.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wpsabi"
#endif

typedef float vf4 __attribute__((vector_size(16)));
typedef float vf8 __attribute__((vector_size(32)));
typedef double vd4 __attribute__((vector_size(32)));
typedef std::int8_t vb8 __attribute__((vector_size(8)));
typedef std::int16_t vs8 __attribute__((vector_size(16)));
typedef std::int32_t vi8 __attribute__((vector_size(32)));
typedef std::int64_t vl8 __attribute__((vector_size(64)));

template <typename V, typename T>
inline V vload(const T* p) {
  V v;
  std::memcpy(&v, p, sizeof(V));
  return v;
}

template <typename T, typename V>
inline void vstore(T* p, V v) {
  std::memcpy(p, &v, sizeof(V));
}

// Baseline stamp: generic vectors legalized to whatever the build targets
// (plain SSE2 on a default x86-64 build).
#define HETACC_MICRO_TARGET
#define HETACC_MICRO_NAME(n) n##_base
#include "kernels/gemm_micro.inc"
#undef HETACC_MICRO_TARGET
#undef HETACC_MICRO_NAME

#ifdef HETACC_X86_DISPATCH
// AVX2+FMA stamp: same source, 256-bit codegen, selected at runtime via
// __builtin_cpu_supports so the binary stays runnable on baseline machines.
#define HETACC_MICRO_TARGET __attribute__((target("avx2,fma")))
#define HETACC_MICRO_NAME(n) n##_avx2
#include "kernels/gemm_micro.inc"
#undef HETACC_MICRO_TARGET
#undef HETACC_MICRO_NAME

bool cpu_has_avx2_fma() {
  static const bool ok =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  return ok;
}
#endif  // HETACC_X86_DISPATCH

#endif  // HETACC_VEC

/// Per-(TA, TAcc) micro-kernel traits: the register width NR and the runtime
/// selection between the AVX2 stamp, the baseline stamp, and the scalar
/// reference. Selection happens once per gemm call, not per tile.
template <typename TA, typename TAcc>
struct MK;

template <>
struct MK<float, float> {
  static constexpr int NR = 16;
  static constexpr Datapath dp = Datapath::kF32;
  using Fn = void (*)(int, const float*, const float*, float*);
  static Fn pick(bool simd) {
#ifdef HETACC_VEC
    if (simd) {
#ifdef HETACC_X86_DISPATCH
      if (cpu_has_avx2_fma()) return &micro_f32_avx2;
#endif
      return &micro_f32_base;
    }
#else
    (void)simd;
#endif
    return &micro_scalar<float, float, NR>;
  }
};

template <>
struct MK<float, double> {
  static constexpr int NR = 8;
  static constexpr Datapath dp = Datapath::kF32d;
  using Fn = void (*)(int, const float*, const float*, double*);
  static Fn pick(bool simd) {
#ifdef HETACC_VEC
    if (simd) {
#ifdef HETACC_X86_DISPATCH
      if (cpu_has_avx2_fma()) return &micro_f32d_avx2;
#endif
      return &micro_f32d_base;
    }
#else
    (void)simd;
#endif
    return &micro_scalar<float, double, NR>;
  }
};

template <>
struct MK<double, double> {
  static constexpr int NR = 8;
  static constexpr Datapath dp = Datapath::kF64;
  using Fn = void (*)(int, const double*, const double*, double*);
  static Fn pick(bool simd) {
#ifdef HETACC_VEC
    if (simd) {
#ifdef HETACC_X86_DISPATCH
      if (cpu_has_avx2_fma()) return &micro_f64_avx2;
#endif
      return &micro_f64_base;
    }
#else
    (void)simd;
#endif
    return &micro_scalar<double, double, NR>;
  }
};

template <>
struct MK<std::int16_t, std::int64_t> {
  static constexpr int NR = 8;
  static constexpr Datapath dp = Datapath::kI16;
  using Fn = void (*)(int, const std::int16_t*, const std::int16_t*,
                      std::int64_t*);
  static Fn pick(bool simd) {
#ifdef HETACC_VEC
    if (simd) {
#ifdef HETACC_X86_DISPATCH
      if (cpu_has_avx2_fma()) return &micro_i16_avx2;
#endif
      return &micro_i16_base;
    }
#else
    (void)simd;
#endif
    return &micro_scalar<std::int16_t, std::int64_t, NR>;
  }
};

template <>
struct MK<std::int8_t, std::int32_t> {
  static constexpr int NR = 16;
  static constexpr Datapath dp = Datapath::kI8;
  using Fn = void (*)(int, const std::int8_t*, const std::int8_t*,
                      std::int32_t*);
  static Fn pick(bool simd) {
#ifdef HETACC_VEC
    if (simd) {
#ifdef HETACC_X86_DISPATCH
      if (cpu_has_avx2_fma()) return &micro_i8_avx2;
#endif
      return &micro_i8_base;
    }
#else
    (void)simd;
#endif
    return &micro_scalar<std::int8_t, std::int32_t, NR>;
  }
};

/// Packs the MC-block [i0, i0+mb) x [p0, p0+kb) of row-major A into MR-
/// interleaved k-major panels at dst (ceil(mb/MR) panels of MR*kb). Tail
/// lanes of a partial last panel are zeroed so the micro-kernel can run full
/// MR rows unconditionally.
template <typename T>
void pack_a_panels(const T* A, int lda, int i0, int mb, int p0, int kb,
                   T* dst) {
  const int panels = (mb + MR - 1) / MR;
  for (int pi = 0; pi < panels; ++pi) {
    T* d = dst + static_cast<std::size_t>(pi) * MR * kb;
    const int rows = std::min(MR, mb - pi * MR);
    for (int ir = 0; ir < rows; ++ir) {
      const T* src = A + static_cast<std::size_t>(i0 + pi * MR + ir) * lda + p0;
      for (int k = 0; k < kb; ++k) d[k * MR + ir] = src[k];
    }
    for (int ir = rows; ir < MR; ++ir) {
      for (int k = 0; k < kb; ++k) d[k * MR + ir] = T{};
    }
  }
}

/// Packs one NR-wide column panel of B ([p0, p0+kb) x [j0, j0+cols)) into
/// NR-interleaved k-major layout at dst, zero-padding cols < NR.
template <typename T, int NR>
void pack_b_panel(const T* B, int ldb, int p0, int kb, int j0, int cols,
                  T* dst) {
  for (int k = 0; k < kb; ++k) {
    const T* src = B + static_cast<std::size_t>(p0 + k) * ldb + j0;
    T* d = dst + static_cast<std::size_t>(k) * NR;
    for (int jr = 0; jr < cols; ++jr) d[jr] = src[jr];
    for (int jr = cols; jr < NR; ++jr) d[jr] = T{};
  }
}

/// Requantizing writeback sink of the int8 datapath: the final i8 output
/// plus the QuantParams the last-KC epilogue applies. The staging i32 C of
/// gemm_run holds partial sums only between KC steps (single-step runs never
/// touch it).
struct RequantSink {
  std::int8_t* c8 = nullptr;
  int ldc8 = 0;
  const QuantParams* q = nullptr;
};

/// Blocked GEMM driver. Exactly one of A / pA is used. Per KC step and NC
/// block: pack B once (parallel over panels, then shared read-only), pack A
/// blocks once per KC step unless pre-packed, then run the 2D (MC-block x
/// NR-panel) tile grid cooperatively — every tile owns a disjoint patch of
/// C, each KC step is a barrier, and per-element accumulation is
/// k-ascending, so output bytes are independent of the thread count, the
/// chunk grain, and the MC/NC/grain blocking (KC regrouping is additionally
/// exact on the integer datapaths; see blocking.h).
///
/// With kRequant, C is an i32 staging buffer (null when K fits one KC step)
/// and the last-KC writeback requantizes straight into sink->c8 alongside
/// bias and ReLU.
template <typename TA, typename TAcc, typename TC, typename TBias,
          bool kRequant = false>
void gemm_run(int M, int N, int K, const TA* A, int lda,
              const PackedLhsT<TA>* pA, const TA* B, int ldb, TC* C, int ldc,
              const TBias* bias, bool relu, int threads, bool use_simd,
              const BlockingParams& bp, const RequantSink* sink = nullptr) {
  if (M <= 0 || N <= 0) return;
  if (K <= 0) {
    for (int i = 0; i < M; ++i) {
      if constexpr (kRequant) {
        const QuantParams& q = *sink->q;
        const std::int32_t acc0 =
            bias ? static_cast<std::int32_t>(bias[i]) : 0;
        const float sc = q.per_channel ? q.scales[i] : q.scales[0];
        const std::int8_t v = requantize_i32(acc0, sc, q.zero_point, q.relu);
        std::int8_t* orow = sink->c8 + static_cast<std::size_t>(i) * sink->ldc8;
        for (int j = 0; j < N; ++j) orow[j] = v;
      } else {
        TC v = bias ? static_cast<TC>(bias[i]) : TC{};
        if constexpr (std::is_floating_point_v<TC>) {
          if (relu) v = std::max(v, TC(0));
        }
        TC* crow = C + static_cast<std::size_t>(i) * ldc;
        for (int j = 0; j < N; ++j) crow[j] = v;
      }
    }
    return;
  }
  constexpr int NR = MK<TA, TAcc>::NR;
  const typename MK<TA, TAcc>::Fn micro = MK<TA, TAcc>::pick(use_simd);
  if (threads == 0) threads = num_threads();

  // Pre-packed A bakes its (MC, KC); otherwise take the dispatch blocking.
  const int mc = pA ? pA->mc() : bp.mc;
  const int kc = pA ? pA->kc() : bp.kc;
  const int ncb = bp.nc > 0 ? std::min(bp.nc, N) : N;

  const int iblocks = (M + mc - 1) / mc;
  const int jpanels_cap = (ncb + NR - 1) / NR;
  const int mpanels_cap = (mc + MR - 1) / MR;

  ScratchArena& arena = ScratchArena::tls();
  ScratchArena::Scope scope(arena);
  TA* bpack =
      arena.alloc<TA>(static_cast<std::size_t>(jpanels_cap) * NR * kc);
  TA* apack = nullptr;
  if (!pA) {
    apack = arena.alloc<TA>(static_cast<std::size_t>(iblocks) * mpanels_cap *
                            MR * kc);
  }

  const int tw = std::max(1, resolve_threads(threads));
  const std::size_t grain_cap = bp.grain > 0
                                    ? static_cast<std::size_t>(bp.grain)
                                    : static_cast<std::size_t>(16);

  for (int p0 = 0, pb = 0; p0 < K; p0 += kc, ++pb) {
    const int kb = std::min(kc, K - p0);
    const bool first = (p0 == 0);
    const bool last = (p0 + kb == K);

    if (!pA) {
      parallel_for(static_cast<std::size_t>(iblocks), 1, threads,
                   [&](std::size_t ib) {
                     const int i0 = static_cast<int>(ib) * mc;
                     pack_a_panels(A, lda, i0, std::min(mc, M - i0), p0, kb,
                                   apack + ib * static_cast<std::size_t>(
                                                    mpanels_cap) *
                                               MR * kb);
                   });
    }

    for (int jc = 0; jc < N; jc += ncb) {
      const int nb = std::min(ncb, N - jc);
      const int jpanels = (nb + NR - 1) / NR;

      // Pack this NC block's B panel row once; every compute task below
      // reads it, no task re-packs.
      parallel_for(static_cast<std::size_t>(jpanels), 8, threads,
                   [&](std::size_t pj) {
                     const int j0 = jc + static_cast<int>(pj) * NR;
                     pack_b_panel<TA, NR>(
                         B, ldb, p0, kb, j0, std::min(NR, N - j0),
                         bpack + pj * static_cast<std::size_t>(NR) * kb);
                   });

      // 2D cooperative tile grid. Task index g walks NR-panels fastest so
      // consecutive chunks reuse the same packed A block while B panels
      // stream.
      const std::size_t tasks = static_cast<std::size_t>(iblocks) *
                                static_cast<std::size_t>(jpanels);
      const std::size_t grain = std::clamp<std::size_t>(
          tasks / (static_cast<std::size_t>(tw) * 4), 1, grain_cap);
      parallel_for(tasks, grain, threads, [&](std::size_t g) {
        const int ib = static_cast<int>(g / jpanels);
        const int pj = static_cast<int>(g % jpanels);
        const int i0 = ib * mc;
        const int mb = std::min(mc, M - i0);
        const TA* ablk =
            pA ? pA->block(pb, ib).data()
               : apack + ib * static_cast<std::size_t>(mpanels_cap) * MR * kb;
        const TA* bpan = bpack + pj * static_cast<std::size_t>(NR) * kb;
        const int j0 = jc + pj * NR;
        const int cols = std::min(NR, N - j0);
        const int ipanels = (mb + MR - 1) / MR;
        for (int pi = 0; pi < ipanels; ++pi) {
          TAcc acc[MR * NR];
          micro(kb, ablk + static_cast<std::size_t>(pi) * MR * kb, bpan, acc);
          const int rows = std::min(MR, mb - pi * MR);
          for (int ir = 0; ir < rows; ++ir) {
            const int i = i0 + pi * MR + ir;
            const TAcc* arow = acc + ir * NR;
            if constexpr (kRequant) {
              const QuantParams& q = *sink->q;
              if (last) {
                // Requantize-on-writeback: fold bias (or the staged partial
                // sum), scale, RNE, zero-point, ReLU, saturate — straight
                // into the i8 output, no second pass over C.
                const float sc = q.per_channel ? q.scales[i] : q.scales[0];
                std::int8_t* orow =
                    sink->c8 + static_cast<std::size_t>(i) * sink->ldc8 + j0;
                if (first) {
                  const std::int32_t bv =
                      bias ? static_cast<std::int32_t>(bias[i]) : 0;
                  for (int jr = 0; jr < cols; ++jr) {
                    orow[jr] = requantize_i32(bv + arow[jr], sc,
                                              q.zero_point, q.relu);
                  }
                } else {
                  const TC* srow =
                      C + static_cast<std::size_t>(i) * ldc + j0;
                  for (int jr = 0; jr < cols; ++jr) {
                    orow[jr] = requantize_i32(srow[jr] + arow[jr], sc,
                                              q.zero_point, q.relu);
                  }
                }
              } else {
                TC* crow = C + static_cast<std::size_t>(i) * ldc + j0;
                if (first) {
                  const std::int32_t bv =
                      bias ? static_cast<std::int32_t>(bias[i]) : 0;
                  for (int jr = 0; jr < cols; ++jr) {
                    crow[jr] = bv + arow[jr];
                  }
                } else {
                  for (int jr = 0; jr < cols; ++jr) crow[jr] += arow[jr];
                }
              }
            } else {
              TC* crow = C + static_cast<std::size_t>(i) * ldc + j0;
              if (first) {
                if (bias) {
                  const TAcc bv = static_cast<TAcc>(bias[i]);
                  for (int jr = 0; jr < cols; ++jr) {
                    crow[jr] = static_cast<TC>(bv + arow[jr]);
                  }
                } else {
                  for (int jr = 0; jr < cols; ++jr) {
                    crow[jr] = static_cast<TC>(arow[jr]);
                  }
                }
              } else {
                for (int jr = 0; jr < cols; ++jr) {
                  crow[jr] = static_cast<TC>(static_cast<TAcc>(crow[jr]) +
                                             arow[jr]);
                }
              }
              if constexpr (std::is_floating_point_v<TC>) {
                if (last && relu) {
                  for (int jr = 0; jr < cols; ++jr) {
                    crow[jr] = std::max(crow[jr], TC(0));
                  }
                }
              }
            }
          }
        }
      });
    }
  }
  if constexpr (!std::is_floating_point_v<TC>) (void)relu;
}

}  // namespace

namespace {

/// Datapath whose blocking a PackedLhsT<T> built without an explicit
/// BlockingParams should bake: the pack layout is per element type, shared
/// by every datapath consuming that type (f32 and f32d read the same float
/// pack, and float KC is pinned, so their blocking agrees by construction).
template <typename T>
constexpr Datapath pack_datapath();
template <>
constexpr Datapath pack_datapath<float>() {
  return Datapath::kF32;
}
template <>
constexpr Datapath pack_datapath<std::int8_t>() {
  return Datapath::kI8;
}

}  // namespace

template <typename T>
PackedLhsT<T>::PackedLhsT(const T* A, int M, int K, int lda)
    : PackedLhsT(A, M, K, lda, blocking_for(pack_datapath<T>())) {}

template <typename T>
PackedLhsT<T>::PackedLhsT(const T* A, int M, int K, int lda,
                          const BlockingParams& bp)
    : m_(M), k_(K), mc_(bp.mc), kc_(bp.kc) {
  pblocks_ = K > 0 ? (K + kc_ - 1) / kc_ : 0;
  iblocks_ = M > 0 ? (M + mc_ - 1) / mc_ : 0;
  blocks_.resize(static_cast<std::size_t>(pblocks_) * iblocks_);
  for (int p0 = 0, pb = 0; p0 < K; p0 += kc_, ++pb) {
    const int kb = std::min(kc_, K - p0);
    for (int i0 = 0, ib = 0; i0 < M; i0 += mc_, ++ib) {
      const int mb = std::min(mc_, M - i0);
      const int panels = (mb + MR - 1) / MR;
      auto& blk = blocks_[static_cast<std::size_t>(pb) * iblocks_ + ib];
      blk.resize(static_cast<std::size_t>(panels) * MR * kb);
      pack_a_panels(A, lda, i0, mb, p0, kb, blk.data());
    }
  }
}

template class PackedLhsT<float>;
template class PackedLhsT<std::int8_t>;

void gemm_f32(int M, int N, int K, const float* A, int lda, const float* B,
              int ldb, float* C, int ldc, const float* bias, bool relu,
              int threads) {
  gemm_run<float, float, float, float>(M, N, K, A, lda, nullptr, B, ldb, C,
                                       ldc, bias, relu, threads, true,
                                       blocking_for(Datapath::kF32));
}

void gemm_f32(const PackedLhsF32& A, int N, const float* B, int ldb, float* C,
              int ldc, const float* bias, bool relu, int threads) {
  gemm_run<float, float, float, float>(A.rows(), N, A.depth(), nullptr, 0, &A,
                                       B, ldb, C, ldc, bias, relu, threads,
                                       true, blocking_for(Datapath::kF32));
}

void gemm_f32d(int M, int N, int K, const float* A, int lda, const float* B,
               int ldb, double* C, int ldc, const float* bias, bool relu,
               int threads) {
  gemm_run<float, double, double, float>(M, N, K, A, lda, nullptr, B, ldb, C,
                                         ldc, bias, relu, threads, true,
                                         blocking_for(Datapath::kF32d));
}

void gemm_f32d(const PackedLhsF32& A, int N, const float* B, int ldb,
               double* C, int ldc, const float* bias, bool relu, int threads) {
  gemm_run<float, double, double, float>(A.rows(), N, A.depth(), nullptr, 0,
                                         &A, B, ldb, C, ldc, bias, relu,
                                         threads, true,
                                         blocking_for(Datapath::kF32d));
}

void gemm_f64(int M, int N, int K, const double* A, int lda, const double* B,
              int ldb, double* C, int ldc, int threads) {
  gemm_run<double, double, double, double>(M, N, K, A, lda, nullptr, B, ldb, C,
                                           ldc, nullptr, false, threads, true,
                                           blocking_for(Datapath::kF64));
}

void gemm_i16(int M, int N, int K, const std::int16_t* A, int lda,
              const std::int16_t* B, int ldb, std::int64_t* C, int ldc,
              int threads) {
  gemm_run<std::int16_t, std::int64_t, std::int64_t, std::int64_t>(
      M, N, K, A, lda, nullptr, B, ldb, C, ldc, nullptr, false, threads, true,
      blocking_for(Datapath::kI16));
}

namespace {

/// Shared body of the i8 entries: stage partial i32 sums in the arena only
/// when K spans more than one KC step; otherwise the single KC step
/// requantizes directly and the staging pointer is never formed.
void gemm_i8_run(int M, int N, int K, const std::int8_t* A, int lda,
                 const PackedLhsI8* pA, const std::int8_t* B, int ldb,
                 std::int8_t* C, int ldc, const QuantParams& q, int threads,
                 bool use_simd) {
  const BlockingParams bp = blocking_for(Datapath::kI8);
  const int kc = pA ? pA->kc() : bp.kc;
  RequantSink sink{C, ldc, &q};
  ScratchArena& arena = ScratchArena::tls();
  ScratchArena::Scope scope(arena);
  std::int32_t* stage = nullptr;
  int lds = 0;
  if (K > kc && M > 0 && N > 0) {
    stage = arena.alloc<std::int32_t>(static_cast<std::size_t>(M) * N);
    lds = N;
  }
  gemm_run<std::int8_t, std::int32_t, std::int32_t, std::int32_t, true>(
      M, N, K, A, lda, pA, B, ldb, stage, lds, q.bias, false, threads,
      use_simd, bp, &sink);
}

}  // namespace

void gemm_i8(int M, int N, int K, const std::int8_t* A, int lda,
             const std::int8_t* B, int ldb, std::int8_t* C, int ldc,
             const QuantParams& q, int threads) {
  gemm_i8_run(M, N, K, A, lda, nullptr, B, ldb, C, ldc, q, threads, true);
}

void gemm_i8(const PackedLhsI8& A, int N, const std::int8_t* B, int ldb,
             std::int8_t* C, int ldc, const QuantParams& q, int threads) {
  gemm_i8_run(A.rows(), N, A.depth(), nullptr, 0, &A, B, ldb, C, ldc, q,
              threads, true);
}

void gemm_i8_i32(int M, int N, int K, const std::int8_t* A, int lda,
                 const std::int8_t* B, int ldb, std::int32_t* C, int ldc,
                 int threads) {
  gemm_run<std::int8_t, std::int32_t, std::int32_t, std::int32_t>(
      M, N, K, A, lda, nullptr, B, ldb, C, ldc, nullptr, false, threads, true,
      blocking_for(Datapath::kI8));
}

namespace fallback {

void gemm_f32(int M, int N, int K, const float* A, int lda, const float* B,
              int ldb, float* C, int ldc, const float* bias, bool relu,
              int threads) {
  gemm_run<float, float, float, float>(M, N, K, A, lda, nullptr, B, ldb, C,
                                       ldc, bias, relu, threads, false,
                                       blocking_for(Datapath::kF32));
}

void gemm_f32d(int M, int N, int K, const float* A, int lda, const float* B,
               int ldb, double* C, int ldc, const float* bias, bool relu,
               int threads) {
  gemm_run<float, double, double, float>(M, N, K, A, lda, nullptr, B, ldb, C,
                                         ldc, bias, relu, threads, false,
                                         blocking_for(Datapath::kF32d));
}

void gemm_f64(int M, int N, int K, const double* A, int lda, const double* B,
              int ldb, double* C, int ldc, int threads) {
  gemm_run<double, double, double, double>(M, N, K, A, lda, nullptr, B, ldb,
                                           C, ldc, nullptr, false, threads,
                                           false,
                                           blocking_for(Datapath::kF64));
}

void gemm_i16(int M, int N, int K, const std::int16_t* A, int lda,
              const std::int16_t* B, int ldb, std::int64_t* C, int ldc,
              int threads) {
  gemm_run<std::int16_t, std::int64_t, std::int64_t, std::int64_t>(
      M, N, K, A, lda, nullptr, B, ldb, C, ldc, nullptr, false, threads,
      false, blocking_for(Datapath::kI16));
}

void gemm_i8(int M, int N, int K, const std::int8_t* A, int lda,
             const std::int8_t* B, int ldb, std::int8_t* C, int ldc,
             const QuantParams& q, int threads) {
  gemm_i8_run(M, N, K, A, lda, nullptr, B, ldb, C, ldc, q, threads, false);
}

void gemm_i8_i32(int M, int N, int K, const std::int8_t* A, int lda,
                 const std::int8_t* B, int ldb, std::int32_t* C, int ldc,
                 int threads) {
  gemm_run<std::int8_t, std::int32_t, std::int32_t, std::int32_t>(
      M, N, K, A, lda, nullptr, B, ldb, C, ldc, nullptr, false, threads,
      false, blocking_for(Datapath::kI8));
}

}  // namespace fallback

bool simd_enabled() {
#ifdef HETACC_VEC
  return true;
#else
  return false;
#endif
}

namespace {

template <typename T>
void im2col_impl(const T* in, int C, int H, int W, int kernel, int stride,
                 int pad, int out_h, int out_w, T* mat, T pad_value,
                 int threads) {
  const std::size_t cols = static_cast<std::size_t>(out_h) * out_w;
  const std::size_t kk = static_cast<std::size_t>(kernel) * kernel;
  const std::size_t rows = static_cast<std::size_t>(C) * kk;
  // One task per patch row; rows write disjoint slices of mat, so the row
  // space parallelizes with channel-granular chunks.
  parallel_for(rows, kk, threads, [&](std::size_t row) {
    const int c = static_cast<int>(row / kk);
    const int u = static_cast<int>((row % kk) / kernel);
    const int v = static_cast<int>(row % kernel);
    const T* plane = in + static_cast<std::size_t>(c) * H * W;
    T* dst = mat + row * cols;
    for (int i = 0; i < out_h; ++i) {
      T* drow = dst + static_cast<std::size_t>(i) * out_w;
      const int h = i * stride + u - pad;
      if (h < 0 || h >= H) {
        std::fill(drow, drow + out_w, pad_value);
        continue;
      }
      const T* srow = plane + static_cast<std::size_t>(h) * W;
      if (stride == 1) {
        // Contiguous span: j in [max(0, pad-v), min(out_w, W+pad-v)).
        const int j_lo = std::max(0, pad - v);
        const int j_hi = std::min(out_w, W + pad - v);
        if (j_lo > 0) std::fill(drow, drow + j_lo, pad_value);
        if (j_hi > j_lo) {
          std::memcpy(drow + j_lo, srow + j_lo + v - pad,
                      static_cast<std::size_t>(j_hi - j_lo) * sizeof(T));
        }
        if (j_hi < out_w) {
          std::fill(drow + std::max(j_hi, 0), drow + out_w, pad_value);
        }
      } else {
        for (int j = 0; j < out_w; ++j) {
          const int w = j * stride + v - pad;
          drow[j] = (w < 0 || w >= W) ? pad_value : srow[w];
        }
      }
    }
  });
}

}  // namespace

void im2col_f32(const float* in, int C, int H, int W, int kernel, int stride,
                int pad, int out_h, int out_w, float* mat, int threads) {
  im2col_impl(in, C, H, W, kernel, stride, pad, out_h, out_w, mat, 0.0f,
              threads);
}

void im2col_i16(const std::int16_t* in, int C, int H, int W, int kernel,
                int stride, int pad, int out_h, int out_w, std::int16_t* mat,
                int threads) {
  im2col_impl(in, C, H, W, kernel, stride, pad, out_h, out_w, mat,
              std::int16_t{0}, threads);
}

void im2col_i8(const std::int8_t* in, int C, int H, int W, int kernel,
               int stride, int pad, int out_h, int out_w, std::int8_t* mat,
               std::int8_t pad_value, int threads) {
  im2col_impl(in, C, H, W, kernel, stride, pad, out_h, out_w, mat, pad_value,
              threads);
}

}  // namespace hetacc::kernels
