#include "kernels/arena.h"

#include <algorithm>
#include <new>
#include <stdexcept>

namespace hetacc::kernels {

namespace {

std::size_t round_up(std::size_t v, std::size_t a) {
  return (v + a - 1) / a * a;
}

}  // namespace

ScratchArena& ScratchArena::tls() {
  thread_local ScratchArena arena;
  return arena;
}

ScratchArena::~ScratchArena() {
  release(block_);
  for (std::size_t i = 0; i < parked_count_; ++i) release(parked_[i]);
}

std::size_t ScratchArena::capacity() const {
  std::size_t total = block_.size;
  for (std::size_t i = 0; i < parked_count_; ++i) total += parked_[i].size;
  return total;
}

void ScratchArena::release(Block& b) {
  if (b.data) ::operator delete[](b.data, std::align_val_t(kAlign));
  b = Block{};
}

void ScratchArena::open_block(std::size_t at_least) {
  if (block_.data) {
    if (parked_count_ >= kMaxParked) {
      // Pathological nesting depth: fall back to a hard error rather than
      // silently leaking — no kernel stacks anywhere near this many
      // simultaneously-live overflow blocks.
      throw std::bad_alloc();
    }
    parked_[parked_count_++] = block_;
    block_ = Block{};
  }
  // Grow geometrically over the arena's whole footprint so repeated slight
  // overflows converge instead of opening a block per call.
  const std::size_t want =
      std::max({at_least, capacity() * 2, std::size_t(1) << 16});
  block_.data = static_cast<unsigned char*>(
      ::operator new[](want, std::align_val_t(kAlign)));
  block_.size = want;
  block_used_ = 0;
  ++sys_allocs_;
}

void* ScratchArena::alloc_bytes(std::size_t bytes) {
  bytes = round_up(std::max<std::size_t>(bytes, 1), kAlign);
  if (block_used_ + bytes > block_.size) open_block(bytes);
  void* p = block_.data + block_used_;
  block_used_ += bytes;
  used_ += bytes;
  high_water_ = std::max(high_water_, used_);
  return p;
}

void ScratchArena::close_scope(std::size_t used, std::size_t block_used,
                               std::size_t parked) {
  --depth_;
  used_ = used;
  if (parked_count_ == parked) {
    // No overflow inside this scope: plain watermark restore.
    block_used_ = block_used;
  } else if (depth_ == 0) {
    // Overflow happened and no pointers remain live: coalesce to a single
    // block sized for everything seen so far, so the next pass fits without
    // allocating again.
    const std::size_t target =
        std::max(round_up(std::max<std::size_t>(high_water_, 1), kAlign),
                 block_.size);
    for (std::size_t i = 0; i < parked_count_; ++i) release(parked_[i]);
    parked_count_ = 0;
    if (block_.size < target) {
      release(block_);
      block_.data = static_cast<unsigned char*>(
          ::operator new[](target, std::align_val_t(kAlign)));
      block_.size = target;
      ++sys_allocs_;
    }
    block_used_ = 0;
  }
  // else: nested scope closing across an overflow boundary — leave the
  // current block as-is (outer-scope pointers may live in parked blocks);
  // the outermost close coalesces.
}

}  // namespace hetacc::kernels
