#include "kernels/wino_gemm.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <string>

#include "fixed/fixed16.h"
#include "kernels/arena.h"
#include "kernels/gemm.h"
#include "kernels/parallel.h"

// gather_tile writes every d[u*n + v] for u, v < n — exactly the prefix the
// transforms read — but GCC cannot prove coverage with a runtime n and warns
// -Wmaybe-uninitialized on the kWinogradMaxN-sized stack arrays.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace hetacc::kernels {

namespace {

// Both helpers mirror algo::Matrix::operator* — left-element zero skip,
// k-ascending accumulation, identical expression shape — so the seed's
// double transform results are reproduced bit-for-bit (the skip can only
// flip signed zeros, which the downstream quantization erases).

/// C (ra x cb) = A (ra x ca) * B (ca x cb), all row-major.
void matmul_nn(const double* A, int ra, int ca, const double* B, int cb,
               double* C) {
  std::fill(C, C + static_cast<std::size_t>(ra) * cb, 0.0);
  for (int r = 0; r < ra; ++r) {
    for (int k = 0; k < ca; ++k) {
      const double a = A[static_cast<std::size_t>(r) * ca + k];
      if (a == 0.0) continue;
      for (int c = 0; c < cb; ++c) {
        C[static_cast<std::size_t>(r) * cb + c] +=
            a * B[static_cast<std::size_t>(k) * cb + c];
      }
    }
  }
}

/// C (ra x rb) = A (ra x ca) * B^T where B is stored (rb x ca) row-major.
void matmul_nt(const double* A, int ra, int ca, const double* B, int rb,
               double* C) {
  std::fill(C, C + static_cast<std::size_t>(ra) * rb, 0.0);
  for (int r = 0; r < ra; ++r) {
    for (int k = 0; k < ca; ++k) {
      const double a = A[static_cast<std::size_t>(r) * ca + k];
      if (a == 0.0) continue;
      for (int c = 0; c < rb; ++c) {
        C[static_cast<std::size_t>(r) * rb + c] +=
            a * B[static_cast<std::size_t>(c) * ca + k];
      }
    }
  }
}

void check_tile_size(int n) {
  if (n < 1 || n > kWinogradMaxN) {
    throw std::logic_error("winograd kernel: unsupported tile size n=" +
                           std::to_string(n));
  }
}

/// Gather one tile's n x n window from the pre-padded strip.
inline void gather_tile(const float* cplane, int strip_w, int tj, int m, int n,
                        double* d) {
  for (int u = 0; u < n; ++u) {
    const float* src = cplane + static_cast<std::size_t>(u) * strip_w + tj * m;
    for (int v = 0; v < n; ++v) d[u * n + v] = src[v];
  }
}

inline float finish_output(float val, bool relu, int out_frac) {
  if (relu) val = std::max(val, 0.0f);
  return out_frac >= 0 ? fixed::quantize_to_float(val, out_frac) : val;
}

/// Inverse-transform one (oc, tile) result and scatter it to the output
/// rows, clipping the bottom/right edge tiles.
inline void scatter_tile(const double* macc, const double* at, int m, int n,
                         float* const* out_rows, int out_c, int oc, int tj,
                         int rows_out, int out_w, float bias, bool relu,
                         int out_frac) {
  double p[kWinogradMaxN * kWinogradMaxN];
  double y[kWinogradMaxN * kWinogradMaxN];
  matmul_nn(at, m, n, macc, n, p);
  matmul_nt(p, m, n, at, m, y);
  for (int a = 0; a < rows_out; ++a) {
    float* orow = out_rows[static_cast<std::size_t>(a) * out_c + oc];
    for (int b = 0; b < m; ++b) {
      const int col = tj * m + b;
      if (col >= out_w) break;
      const float val = static_cast<float>(y[a * m + b]) + bias;
      orow[col] = finish_output(val, relu, out_frac);
    }
  }
}

/// Chunk size for the (channel x tile) transform grids: a few tiles per
/// cursor claim keeps per-channel locality without starving wide machines on
/// narrow strips.
inline std::size_t tile_grain(int tiles_w) {
  return std::clamp<std::size_t>(static_cast<std::size_t>(tiles_w), 1, 8);
}

}  // namespace

void winograd_strip(const WinogradPlan& plan, const float* strip, int strip_w,
                    int tiles_w, float* const* out_rows, int rows_out,
                    int out_w, const float* bias, bool relu, int out_frac,
                    int threads) {
  const int n = plan.n, m = plan.m, T = tiles_w;
  check_tile_size(n);
  const std::size_t vplane = static_cast<std::size_t>(plan.in_c) * T;
  const std::size_t mplane = static_cast<std::size_t>(plan.out_c) * T;
  ScratchArena& arena = ScratchArena::tls();
  ScratchArena::Scope scope(arena);
  double* v = arena.alloc<double>(static_cast<std::size_t>(n) * n * vplane);
  double* mm = arena.alloc<double>(static_cast<std::size_t>(n) * n * mplane);

  // Forward transform over the (in_c x tile) grid: each task owns one tile
  // column of one channel and writes a disjoint V slot per plane.
  parallel_for(static_cast<std::size_t>(plan.in_c) * T, tile_grain(T), threads,
               [&](std::size_t g) {
                 const std::size_t c = g / T;
                 const int tj = static_cast<int>(g % T);
                 const float* cplane =
                     strip + c * static_cast<std::size_t>(n) * strip_w;
                 double d[kWinogradMaxN * kWinogradMaxN];
                 double tmp[kWinogradMaxN * kWinogradMaxN];
                 double vt[kWinogradMaxN * kWinogradMaxN];
                 gather_tile(cplane, strip_w, tj, m, n, d);
                 matmul_nn(plan.bt.data(), n, n, d, n, tmp);
                 matmul_nt(tmp, n, n, plan.bt.data(), n, vt);
                 for (int ab = 0; ab < n * n; ++ab) {
                   v[static_cast<std::size_t>(ab) * vplane + c * T + tj] =
                       vt[ab];
                 }
               });

  parallel_for(static_cast<std::size_t>(n) * n, threads, [&](std::size_t ab) {
    gemm_f64(plan.out_c, T, plan.in_c, plan.plane(static_cast<int>(ab)),
             plan.in_c, v + ab * vplane, T, mm + ab * mplane, T,
             /*threads=*/1);
  });

  // Inverse transform + scatter over the (out_c x tile) grid: tile tj of
  // channel oc touches only columns [tj*m, tj*m + m) of oc's output rows.
  parallel_for(static_cast<std::size_t>(plan.out_c) * T, tile_grain(T),
               threads, [&](std::size_t g) {
                 const std::size_t oc = g / T;
                 const int tj = static_cast<int>(g % T);
                 double macc[kWinogradMaxN * kWinogradMaxN];
                 const float b = bias ? bias[oc] : 0.0f;
                 for (int ab = 0; ab < n * n; ++ab) {
                   macc[ab] =
                       mm[static_cast<std::size_t>(ab) * mplane + oc * T + tj];
                 }
                 scatter_tile(macc, plan.at.data(), m, n, out_rows, plan.out_c,
                              static_cast<int>(oc), tj, rows_out, out_w, b,
                              relu, out_frac);
               });
}

void winograd_strip_fixed(const WinogradPlanFixed& plan, const float* strip,
                          int strip_w, int tiles_w, float* const* out_rows,
                          int rows_out, int out_w, const float* bias,
                          bool relu, int v_frac, int out_frac, int threads) {
  const int n = plan.n, m = plan.m, T = tiles_w;
  check_tile_size(n);
  const std::size_t vplane = static_cast<std::size_t>(plan.in_c) * T;
  const std::size_t mplane = static_cast<std::size_t>(plan.out_c) * T;
  ScratchArena& arena = ScratchArena::tls();
  ScratchArena::Scope scope(arena);
  std::int16_t* vq =
      arena.alloc<std::int16_t>(static_cast<std::size_t>(n) * n * vplane);
  std::int64_t* mi =
      arena.alloc<std::int64_t>(static_cast<std::size_t>(n) * n * mplane);

  parallel_for(static_cast<std::size_t>(plan.in_c) * T, tile_grain(T), threads,
               [&](std::size_t g) {
                 const std::size_t c = g / T;
                 const int tj = static_cast<int>(g % T);
                 const float* cplane =
                     strip + c * static_cast<std::size_t>(n) * strip_w;
                 double d[kWinogradMaxN * kWinogradMaxN];
                 double tmp[kWinogradMaxN * kWinogradMaxN];
                 double vt[kWinogradMaxN * kWinogradMaxN];
                 gather_tile(cplane, strip_w, tj, m, n, d);
                 matmul_nn(plan.bt.data(), n, n, d, n, tmp);
                 matmul_nt(tmp, n, n, plan.bt.data(), n, vt);
                 for (int ab = 0; ab < n * n; ++ab) {
                   // 16-bit multiplier inputs, exactly as the seed quantized
                   // per tile.
                   vq[static_cast<std::size_t>(ab) * vplane + c * T + tj] =
                       fixed::Fixed16::quantize(static_cast<float>(vt[ab]),
                                                v_frac);
                 }
               });

  parallel_for(static_cast<std::size_t>(n) * n, threads, [&](std::size_t ab) {
    gemm_i16(plan.out_c, T, plan.in_c, plan.plane(static_cast<int>(ab)),
             plan.in_c, vq + ab * vplane, T, mi + ab * mplane, T,
             /*threads=*/1);
  });

  const double scale = std::ldexp(1.0, -(plan.u_frac + v_frac));
  parallel_for(
      static_cast<std::size_t>(plan.out_c) * T, tile_grain(T), threads,
      [&](std::size_t g) {
        const std::size_t oc = g / T;
        const int tj = static_cast<int>(g % T);
        double macc[kWinogradMaxN * kWinogradMaxN];
        double p[kWinogradMaxN * kWinogradMaxN];
        double y[kWinogradMaxN * kWinogradMaxN];
        const float bia = bias ? bias[oc] : 0.0f;
        for (int ab = 0; ab < n * n; ++ab) {
          macc[ab] = static_cast<double>(
                         mi[static_cast<std::size_t>(ab) * mplane + oc * T +
                            tj]) *
                     scale;
        }
        matmul_nn(plan.at.data(), m, n, macc, n, p);
        matmul_nt(p, m, n, plan.at.data(), m, y);
        for (int a = 0; a < rows_out; ++a) {
          float* orow = out_rows[static_cast<std::size_t>(a) * plan.out_c + oc];
          for (int b = 0; b < m; ++b) {
            const int col = tj * m + b;
            if (col >= out_w) break;
            float val = static_cast<float>(y[a * m + b]) + bia;
            if (relu) val = std::max(val, 0.0f);
            orow[col] = fixed::quantize_to_float(val, out_frac);
          }
        }
      });
}

namespace {

/// Copies the padded window of tile row `ti` into `strip`
/// ([C][n][strip_w], zero outside the real image).
void fill_strip(const float* in, int C, int H, int W, int pad, int ti, int m,
                int n, int strip_w, float* strip, int threads) {
  parallel_for(static_cast<std::size_t>(C), threads, [&](std::size_t c) {
    float* cdst = strip + c * static_cast<std::size_t>(n) * strip_w;
    const float* csrc = in + c * static_cast<std::size_t>(H) * W;
    for (int u = 0; u < n; ++u) {
      float* dst = cdst + static_cast<std::size_t>(u) * strip_w;
      const int h = ti * m + u - pad;
      if (h < 0 || h >= H) {
        std::fill(dst, dst + strip_w, 0.0f);
        continue;
      }
      const int x0 = pad;  // strip col x maps to input col x - pad
      const int x1 = std::min(strip_w, W + pad);
      if (x0 > 0) std::fill(dst, dst + std::min(x0, strip_w), 0.0f);
      if (x1 > x0) {
        std::memcpy(dst + x0, csrc + static_cast<std::size_t>(h) * W,
                    static_cast<std::size_t>(x1 - x0) * sizeof(float));
      }
      if (x1 < strip_w) std::fill(dst + std::max(x1, 0), dst + strip_w, 0.0f);
    }
  });
}

}  // namespace

void winograd_conv_f32(const WinogradPlan& plan, const float* in, int H, int W,
                       int pad, const float* bias, bool relu, float* out,
                       int out_h, int out_w, int threads) {
  const int m = plan.m, n = plan.n;
  const int tiles_h = (out_h + m - 1) / m;
  const int tiles_w = (out_w + m - 1) / m;
  const int strip_w = (tiles_w - 1) * m + n;
  ScratchArena& arena = ScratchArena::tls();
  ScratchArena::Scope scope(arena);
  float* strip =
      arena.alloc<float>(static_cast<std::size_t>(plan.in_c) * n * strip_w);
  float** out_rows =
      arena.alloc<float*>(static_cast<std::size_t>(m) * plan.out_c);
  for (int ti = 0; ti < tiles_h; ++ti) {
    fill_strip(in, plan.in_c, H, W, pad, ti, m, n, strip_w, strip, threads);
    const int rows_out = std::min(m, out_h - ti * m);
    for (int a = 0; a < rows_out; ++a) {
      for (int oc = 0; oc < plan.out_c; ++oc) {
        out_rows[static_cast<std::size_t>(a) * plan.out_c + oc] =
            out + (static_cast<std::size_t>(oc) * out_h + ti * m + a) * out_w;
      }
    }
    winograd_strip(plan, strip, strip_w, tiles_w, out_rows, rows_out, out_w,
                   bias, relu, /*out_frac=*/-1, threads);
  }
}

void winograd_conv_i16(const WinogradPlanFixed& plan, const float* in, int H,
                       int W, int pad, const float* bias, bool relu,
                       int data_frac, int v_frac, int out_frac, float* out,
                       int out_h, int out_w, int threads) {
  const int m = plan.m, n = plan.n;
  const int tiles_h = (out_h + m - 1) / m;
  const int tiles_w = (out_w + m - 1) / m;
  const int strip_w = (tiles_w - 1) * m + n;
  ScratchArena& arena = ScratchArena::tls();
  ScratchArena::Scope scope(arena);

  // Samples enter the datapath already quantized; hoisting the per-tile
  // quantization of the seed is value-identical (zero padding quantizes to
  // zero and real samples quantize the same wherever they are read).
  float* qin = arena.alloc<float>(static_cast<std::size_t>(plan.in_c) * H * W);
  parallel_for(static_cast<std::size_t>(plan.in_c), threads,
               [&](std::size_t c) {
                 const std::size_t base = c * static_cast<std::size_t>(H) * W;
                 for (std::size_t i = 0;
                      i < static_cast<std::size_t>(H) * W; ++i) {
                   qin[base + i] =
                       fixed::quantize_to_float(in[base + i], data_frac);
                 }
               });

  float* strip =
      arena.alloc<float>(static_cast<std::size_t>(plan.in_c) * n * strip_w);
  float** out_rows =
      arena.alloc<float*>(static_cast<std::size_t>(m) * plan.out_c);
  for (int ti = 0; ti < tiles_h; ++ti) {
    fill_strip(qin, plan.in_c, H, W, pad, ti, m, n, strip_w, strip, threads);
    const int rows_out = std::min(m, out_h - ti * m);
    for (int a = 0; a < rows_out; ++a) {
      for (int oc = 0; oc < plan.out_c; ++oc) {
        out_rows[static_cast<std::size_t>(a) * plan.out_c + oc] =
            out + (static_cast<std::size_t>(oc) * out_h + ti * m + a) * out_w;
      }
    }
    winograd_strip_fixed(plan, strip, strip_w, tiles_w, out_rows, rows_out,
                         out_w, bias, relu, v_frac, out_frac, threads);
  }
}

}  // namespace hetacc::kernels
