#pragma once
// Cache-blocked, register-tiled packed GEMM — the shared compute core of the
// functional simulation paths (im2col convolution, transform-domain Winograd,
// fixed-point datapaths). Operands are packed into MR/NR-interleaved panels
// (BLIS-style) so the micro-kernel streams contiguously; K is blocked into
// fixed KC panels that accumulate into C.
//
// The micro-kernel is register-blocked SIMD built on the portable GCC/Clang
// vector extensions, with runtime dispatch to an AVX2+FMA stamp on x86-64 and
// a scalar fallback on other compilers (see gemm_micro.inc and DESIGN.md
// §10). Parallelism is 2D cooperative: the (MC-block, NR-panel) tile grid of
// each KC step is distributed over the shared worker pool, with the packed B
// panel built once per KC step and shared read-only by every worker.
//
// Determinism contract: every C element is produced by exactly one thread and
// its accumulation order depends only on (K, KC) and the selected micro-
// kernel — never on the thread count or the tile-grid split — so results are
// byte-identical for any `threads` value. A single accumulation chain is
// never split; per output element it is strictly ascending in k.
//
// Blocking (MC/KC/NC/grain) comes from the per-datapath BlockingParams in
// blocking.h — tuned entries from the persistent autotuner cache when
// loaded, the shipped defaults otherwise. KC is pinned on float datapaths
// (accumulation grouping) and tunable on integer ones (exact accumulation),
// so a cache hit can only change speed, never bytes.
//
// Scratch (packed panels, im2col matrices) comes from the calling thread's
// ScratchArena, so steady-state calls perform zero heap allocations.

#include <cmath>
#include <cstdint>
#include <vector>

#include "kernels/blocking.h"

namespace hetacc::kernels {

/// Left operand pre-packed into micro-panels (weights reused across many
/// GEMM calls: conv engines pack once per layer, not once per image/row).
/// The pack bakes the (MC, KC) blocking it was built with; gemm_run reads it
/// back from the pack so pre-packed dispatch stays consistent even when the
/// tuned blocking changes between pack time and call time.
template <typename T>
class PackedLhsT {
 public:
  PackedLhsT() = default;
  /// Packs row-major A (M x K, leading dimension lda) with the datapath's
  /// current blocking (f32 for float, i8 for int8 element types).
  PackedLhsT(const T* A, int M, int K, int lda);
  /// Packs with an explicit blocking (autotuner / tests).
  PackedLhsT(const T* A, int M, int K, int lda, const BlockingParams& bp);

  [[nodiscard]] int rows() const { return m_; }
  [[nodiscard]] int depth() const { return k_; }
  [[nodiscard]] int mc() const { return mc_; }
  [[nodiscard]] int kc() const { return kc_; }
  /// Panel block for K-block pb and M-block ib (kernel-layer internal).
  [[nodiscard]] const std::vector<T>& block(int pb, int ib) const {
    return blocks_[static_cast<std::size_t>(pb) * iblocks_ + ib];
  }
  /// Block-grid extents, so integrity scans (the prepack bundle CRC) can
  /// walk every resident panel via block(pb, ib).
  [[nodiscard]] int pblocks() const { return pblocks_; }
  [[nodiscard]] int iblocks() const { return iblocks_; }

  /// Bytes resident in the packed panel blocks — the dominant per-pipeline
  /// memory cost a serving fleet's shared prepack cache deduplicates across
  /// replicas (see serve/prepack_cache.h).
  [[nodiscard]] long long footprint_bytes() const {
    long long total = 0;
    for (const auto& blk : blocks_) {
      total += static_cast<long long>(blk.size() * sizeof(T));
    }
    return total;
  }

 private:
  int m_ = 0, k_ = 0, pblocks_ = 0, iblocks_ = 0;
  int mc_ = 96, kc_ = 256;
  std::vector<std::vector<T>> blocks_;
};

using PackedLhsF32 = PackedLhsT<float>;
using PackedLhsI8 = PackedLhsT<std::int8_t>;

/// C (M x N, ldc) = A (M x K, lda) * B (K x N, ldb), float accumulation.
/// If `bias` is non-null, row i is offset by bias[i]; `relu` clamps at 0.
/// `threads`: 0 = kernel-layer default (num_threads()), 1 = serial, n = n.
void gemm_f32(int M, int N, int K, const float* A, int lda, const float* B,
              int ldb, float* C, int ldc, const float* bias, bool relu,
              int threads);
void gemm_f32(const PackedLhsF32& A, int N, const float* B, int ldb, float* C,
              int ldc, const float* bias, bool relu, int threads);

/// Float operands, double accumulation, double C — the conv-engine datapath
/// (the streaming engines accumulate MACs in double; see arch/engines.cpp).
void gemm_f32d(int M, int N, int K, const float* A, int lda, const float* B,
               int ldb, double* C, int ldc, const float* bias, bool relu,
               int threads);
void gemm_f32d(const PackedLhsF32& A, int N, const float* B, int ldb,
               double* C, int ldc, const float* bias, bool relu, int threads);

/// Double GEMM for transform-domain Winograd planes. C is overwritten.
void gemm_f64(int M, int N, int K, const double* A, int lda, const double* B,
              int ldb, double* C, int ldc, int threads);

/// int16 x int16 -> exact int64 accumulation (DSP MAC-tree model; integer
/// addition commutes, so any restructuring is bit-exact). C is overwritten.
void gemm_i16(int M, int N, int K, const std::int16_t* A, int lda,
              const std::int16_t* B, int ldb, std::int64_t* C, int ldc,
              int threads);

/// Requantize-on-writeback parameters of the int8 datapath. The i32
/// accumulator of output row i is offset by bias[i] (a per-channel i32 bias
/// with the input zero-point correction pre-folded), scaled by scales[i] (or
/// scales[0] when !per_channel), rounded to nearest-even, offset by the
/// output zero-point, optionally ReLU-clamped at that zero-point, and
/// saturated to [-128, 127].
struct QuantParams {
  const float* scales = nullptr;      ///< per-channel (len M) or single scale
  bool per_channel = true;
  const std::int32_t* bias = nullptr; ///< per-row i32 bias; null = 0
  std::int32_t zero_point = 0;        ///< output zero-point
  bool relu = false;                  ///< clamp at the output zero-point
};

/// The one requantization formula, shared by every i8 path (SIMD stamps,
/// scalar fallback, golden references, streaming engines) so they are
/// bit-identical: round-to-nearest-even via llrint under the default
/// FE_TONEAREST mode, then saturate. The product is exact in double (the
/// i32 accumulator has < 53 significant bits), so the result is a function
/// of (acc, scale) alone — never of the ISA stamp that produced acc.
inline std::int8_t requantize_i32(std::int32_t acc, float scale,
                                  std::int32_t zero_point, bool relu) {
  long long r = std::llrint(static_cast<double>(acc) *
                            static_cast<double>(scale)) +
                zero_point;
  if (relu && r < zero_point) r = zero_point;
  if (r < -128) r = -128;
  if (r > 127) r = 127;
  return static_cast<std::int8_t>(r);
}

/// int8 x int8 GEMM with i32 accumulation and the requantize epilogue folded
/// into the last-KC writeback: C (i8) = requantize(A * B + bias). Multi-KC
/// runs stage partial i32 sums in the scratch arena; results are bit-exact
/// for any thread count, blocking, and ISA stamp.
void gemm_i8(int M, int N, int K, const std::int8_t* A, int lda,
             const std::int8_t* B, int ldb, std::int8_t* C, int ldc,
             const QuantParams& q, int threads);
void gemm_i8(const PackedLhsI8& A, int N, const std::int8_t* B, int ldb,
             std::int8_t* C, int ldc, const QuantParams& q, int threads);

/// Raw-accumulator variant: exact i32 output, no requantization (tests and
/// callers that fold their own epilogue). C is overwritten.
void gemm_i8_i32(int M, int N, int K, const std::int8_t* A, int lda,
                 const std::int8_t* B, int ldb, std::int32_t* C, int ldc,
                 int threads);

/// im2col lowering of a CHW image into the patch matrix: one row per
/// (channel, ku, kv) tap, one column per output pixel, zero outside the
/// padded extent. `mat` must hold (C*kernel*kernel) * (out_h*out_w) elements.
/// Rows are independent, so the row space is distributed over `threads`
/// workers (same knob semantics as the GEMMs; default 1 = serial).
void im2col_f32(const float* in, int C, int H, int W, int kernel, int stride,
                int pad, int out_h, int out_w, float* mat, int threads = 1);
void im2col_i16(const std::int16_t* in, int C, int H, int W, int kernel,
                int stride, int pad, int out_h, int out_w, std::int16_t* mat,
                int threads = 1);
/// int8 im2col with an explicit padding value: asymmetric activation
/// quantization maps real 0.0 to the zero-point, not to byte 0, so the
/// padded extent must be filled with `pad_value` (= the input zero-point).
void im2col_i8(const std::int8_t* in, int C, int H, int W, int kernel,
               int stride, int pad, int out_h, int out_w, std::int8_t* mat,
               std::int8_t pad_value = 0, int threads = 1);

/// Scalar-micro-kernel reference builds of the GEMM entry points. Same
/// blocking, packing, and accumulation order as the SIMD paths, but the
/// micro-kernel is the plain scalar loop regardless of what the CPU
/// supports. Used by the differential tests (SIMD vs fallback equivalence:
/// bit-exact for integer datapaths, ULP-bounded for float) and available as
/// an escape hatch when debugging vectorized codegen.
namespace fallback {
void gemm_f32(int M, int N, int K, const float* A, int lda, const float* B,
              int ldb, float* C, int ldc, const float* bias, bool relu,
              int threads);
void gemm_f32d(int M, int N, int K, const float* A, int lda, const float* B,
               int ldb, double* C, int ldc, const float* bias, bool relu,
               int threads);
void gemm_f64(int M, int N, int K, const double* A, int lda, const double* B,
              int ldb, double* C, int ldc, int threads);
void gemm_i16(int M, int N, int K, const std::int16_t* A, int lda,
              const std::int16_t* B, int ldb, std::int64_t* C, int ldc,
              int threads);
void gemm_i8(int M, int N, int K, const std::int8_t* A, int lda,
             const std::int8_t* B, int ldb, std::int8_t* C, int ldc,
             const QuantParams& q, int threads);
void gemm_i8_i32(int M, int N, int K, const std::int8_t* A, int lda,
                 const std::int8_t* B, int ldb, std::int32_t* C, int ldc,
                 int threads);
}  // namespace fallback

/// True when the runtime dispatcher selected a SIMD micro-kernel (either the
/// baseline 128-bit stamp or the AVX2+FMA stamp); false when the scalar
/// fallback is in use (non-GCC/Clang builds). Informational — benches report
/// it so recorded numbers are attributable.
[[nodiscard]] bool simd_enabled();

}  // namespace hetacc::kernels
