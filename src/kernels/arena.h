#pragma once
// Thread-local scratch arena for the kernel layer: bump allocation with
// reset-don't-free semantics, so steady-state inference performs zero heap
// allocations in the hot loop (packing buffers, im2col matrices, Winograd
// transform planes all live here).
//
// Ownership rules (see DESIGN.md §10):
//  * Every kernel that needs temporaries opens a `ScratchArena::Scope` on the
//    CALLING thread's arena and allocates through it. The scope restores the
//    watermark on exit, so nested kernels (conv -> gemm -> pack) stack their
//    temporaries without interfering.
//  * Buffers handed to `parallel_for` workers are allocated by the caller
//    BEFORE the parallel region and outlive it (the region is a barrier);
//    workers never allocate from another thread's arena.
//  * Arena memory is uninitialized on allocation — kernels must write before
//    reading (packing routines zero-fill their padding explicitly).
//  * Pointers become invalid when the owning scope closes; nothing that
//    escapes a kernel call may live in the arena.
//
// Growth policy: an allocation that does not fit opens a fresh, larger block
// (old blocks stay parked until the outermost scope closes, keeping
// outstanding pointers alive); when the outermost scope closes the arena
// coalesces back to one block sized to the observed high-water mark. After
// the first pass over a workload the footprint is stable and
// `system_allocations()` stops moving — the property the arena-reuse tests
// pin.

#include <cstddef>

namespace hetacc::kernels {

class ScratchArena {
 public:
  ScratchArena() = default;
  ~ScratchArena();
  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

  /// The calling thread's arena (workers of the shared pool each get their
  /// own; they live as long as the thread, so capacity is paid once).
  static ScratchArena& tls();

  /// Uninitialized storage for n elements of T, 64-byte aligned.
  template <typename T>
  T* alloc(std::size_t n) {
    return static_cast<T*>(alloc_bytes(n * sizeof(T)));
  }

  /// RAII watermark: restores the arena to its entry state on destruction.
  class Scope {
   public:
    explicit Scope(ScratchArena& a)
        : arena_(a),
          used_(a.used_),
          block_used_(a.block_used_),
          parked_(a.parked_count_) {
      ++arena_.depth_;
    }
    ~Scope() { arena_.close_scope(used_, block_used_, parked_); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    ScratchArena& arena_;
    std::size_t used_, block_used_, parked_;
  };

  /// Bytes currently reserved across all live blocks.
  [[nodiscard]] std::size_t capacity() const;
  /// Bytes handed out by open scopes.
  [[nodiscard]] std::size_t used() const { return used_; }
  /// Largest `used()` ever observed (sizing target for coalescing).
  [[nodiscard]] std::size_t high_water() const { return high_water_; }
  /// Count of underlying heap allocations ever made — stable once warm.
  [[nodiscard]] std::size_t system_allocations() const { return sys_allocs_; }

 private:
  struct Block {
    unsigned char* data = nullptr;
    std::size_t size = 0;
  };
  static constexpr std::size_t kAlign = 64;
  static constexpr std::size_t kMaxParked = 16;

  void* alloc_bytes(std::size_t bytes);
  void close_scope(std::size_t used, std::size_t block_used,
                   std::size_t parked);
  void open_block(std::size_t at_least);
  static void release(Block& b);

  Block block_;                     ///< current bump block
  Block parked_[kMaxParked];        ///< blocks displaced by overflow growth
  std::size_t parked_count_ = 0;
  std::size_t block_used_ = 0;      ///< bump offset inside block_
  std::size_t used_ = 0;            ///< logical bytes out (all blocks)
  std::size_t high_water_ = 0;
  std::size_t sys_allocs_ = 0;
  int depth_ = 0;                   ///< open scope count
};

}  // namespace hetacc::kernels
