#include "kernels/blocking.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <mutex>
#include <optional>
#include <sstream>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace hetacc::kernels {

namespace {

struct Registry {
  std::mutex mu;
  std::array<std::optional<BlockingParams>, kNumDatapaths> tuned;
};

Registry& registry() {
  static Registry r;
  return r;
}

constexpr const char* kNames[kNumDatapaths] = {"f32", "f32d", "f64", "i16",
                                               "i8"};

/// Clamp a candidate into the ranges the driver's packing logic supports.
/// MC stays a multiple of MR (4) so packed A blocks hold whole panels.
BlockingParams sanitize(Datapath dp, BlockingParams bp) {
  bp.mc = std::clamp(bp.mc, 8, 8192);
  bp.mc -= bp.mc % 4;
  bp.kc = std::clamp(bp.kc, 16, 16384);
  if (!kc_tunable(dp)) bp.kc = default_blocking(dp).kc;
  if (bp.nc != 0) bp.nc = std::clamp(bp.nc, 32, 1 << 20);
  bp.grain = std::clamp(bp.grain, 0, 4096);
  return bp;
}

long long sysconf_or_zero(int name) {
#if defined(__unix__) || defined(__APPLE__)
  const long v = ::sysconf(name);
  return v > 0 ? static_cast<long long>(v) : 0;
#else
  (void)name;
  return 0;
#endif
}

/// Scans `obj` (one flat JSON object) for `"key": <int>`; returns fallback
/// when absent or malformed.
int field_int(const std::string& obj, const char* key, int fallback) {
  const std::string needle = std::string("\"") + key + "\":";
  const std::size_t at = obj.find(needle);
  if (at == std::string::npos) return fallback;
  int v = fallback;
  if (std::sscanf(obj.c_str() + at + needle.size(), " %d", &v) != 1) {
    return fallback;
  }
  return v;
}

/// Scans `obj` for `"key": "<string>"`.
std::string field_str(const std::string& obj, const char* key) {
  const std::string needle = std::string("\"") + key + "\": \"";
  std::size_t at = obj.find(needle);
  std::size_t skip = needle.size();
  if (at == std::string::npos) {
    const std::string tight = std::string("\"") + key + "\":\"";
    at = obj.find(tight);
    if (at == std::string::npos) return {};
    skip = tight.size();
  }
  const std::size_t end = obj.find('"', at + skip);
  if (end == std::string::npos) return {};
  return obj.substr(at + skip, end - (at + skip));
}

}  // namespace

const char* datapath_name(Datapath dp) {
  const int i = static_cast<int>(dp);
  return (i >= 0 && i < kNumDatapaths) ? kNames[i] : "?";
}

bool datapath_from_name(const std::string& name, Datapath& out) {
  for (int i = 0; i < kNumDatapaths; ++i) {
    if (name == kNames[i]) {
      out = static_cast<Datapath>(i);
      return true;
    }
  }
  return false;
}

BlockingParams default_blocking(Datapath dp) {
  (void)dp;
  return BlockingParams{};  // MC=96 KC=256 NC=off grain=auto for every path
}

bool kc_tunable(Datapath dp) {
  return dp == Datapath::kI16 || dp == Datapath::kI8;
}

BlockingParams blocking_for(Datapath dp) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  const auto& slot = r.tuned[static_cast<std::size_t>(dp)];
  return slot ? *slot : default_blocking(dp);
}

void set_blocking(Datapath dp, const BlockingParams& bp) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.tuned[static_cast<std::size_t>(dp)] = sanitize(dp, bp);
}

void clear_tuned_blocking() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (auto& slot : r.tuned) slot.reset();
}

std::string machine_topology_key() {
  long long l1d = 0, l2 = 0, l3 = 0;
#if defined(_SC_LEVEL1_DCACHE_SIZE)
  l1d = sysconf_or_zero(_SC_LEVEL1_DCACHE_SIZE);
#endif
#if defined(_SC_LEVEL2_CACHE_SIZE)
  l2 = sysconf_or_zero(_SC_LEVEL2_CACHE_SIZE);
#endif
#if defined(_SC_LEVEL3_CACHE_SIZE)
  l3 = sysconf_or_zero(_SC_LEVEL3_CACHE_SIZE);
#endif
  long long cores = 0;
#if defined(_SC_NPROCESSORS_ONLN)
  cores = sysconf_or_zero(_SC_NPROCESSORS_ONLN);
#endif
  std::ostringstream os;
  os << "l1d" << l1d << "-l2" << l2 << "-l3" << l3 << "-c" << cores;
  return os.str();
}

std::string tuning_cache_to_json() {
  const std::string machine = machine_topology_key();
  std::ostringstream os;
  os << "{\n  \"version\": " << kTuningCacheVersion << ",\n  \"machine\": \""
     << machine << "\",\n  \"entries\": [\n";
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  bool first = true;
  for (int i = 0; i < kNumDatapaths; ++i) {
    const auto& slot = r.tuned[static_cast<std::size_t>(i)];
    if (!slot) continue;
    if (!first) os << ",\n";
    first = false;
    os << "    {\"datapath\": \"" << kNames[i] << "\", \"machine\": \""
       << machine << "\", \"mc\": " << slot->mc << ", \"kc\": " << slot->kc
       << ", \"nc\": " << slot->nc << ", \"grain\": " << slot->grain << "}";
  }
  os << "\n  ]\n}\n";
  return os.str();
}

int load_tuning_cache_json(const std::string& text) {
  if (field_int(text, "version", -1) != kTuningCacheVersion) return 0;
  const std::string machine = machine_topology_key();
  // Walk the flat entry objects after the "entries" key.
  const std::size_t entries_at = text.find("\"entries\"");
  if (entries_at == std::string::npos) return 0;
  int applied = 0;
  std::size_t pos = entries_at;
  while (true) {
    const std::size_t open = text.find('{', pos);
    if (open == std::string::npos) break;
    const std::size_t close = text.find('}', open);
    if (close == std::string::npos) break;
    const std::string obj = text.substr(open, close - open + 1);
    pos = close + 1;
    Datapath dp;
    if (!datapath_from_name(field_str(obj, "datapath"), dp)) continue;
    if (field_str(obj, "machine") != machine) continue;
    const BlockingParams def = default_blocking(dp);
    BlockingParams bp;
    bp.mc = field_int(obj, "mc", def.mc);
    bp.kc = field_int(obj, "kc", def.kc);
    bp.nc = field_int(obj, "nc", def.nc);
    bp.grain = field_int(obj, "grain", def.grain);
    set_blocking(dp, bp);
    ++applied;
  }
  return applied;
}

int load_tuning_cache_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return -1;
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  return load_tuning_cache_json(text);
}

bool save_tuning_cache_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const std::string text = tuning_cache_to_json();
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  std::fclose(f);
  return ok;
}

}  // namespace hetacc::kernels
