#pragma once
// Shared worker pool for the high-performance kernel layer. Every functional
// path (reference executor, algo kernels, fusion-pipeline engines) draws its
// workers from one process-wide pool so thread creation is paid once, not per
// convolution call.
//
// Determinism contract: parallel_for distributes *whole output items* (an
// output channel block, a tile row, an image) across workers. Kernels built
// on it never split a single accumulation chain across threads, so results
// are byte-identical for every thread count — the same rule the DSE layer
// follows (see DESIGN.md §6 and §8).

#include <cstddef>
#include <functional>

namespace hetacc::kernels {

/// Worker threads the kernel layer uses when a call site passes threads = 0.
/// Semantics match OptimizerOptions::threads: 1 = serial (the default, so
/// plain library use stays single-threaded), 0 = all hardware cores, n = n.
[[nodiscard]] int num_threads();
void set_num_threads(int threads);

/// Resolves a threads knob (<= 0 means "all cores") to a concrete count.
/// The result is capped at the hardware thread count — the pool never
/// oversubscribes, and an explicit request larger than the machine silently
/// runs with every core instead of a fraction of them (see Pool).
[[nodiscard]] int resolve_threads(int threads);

/// Worker threads currently parked in the process-wide pool (the caller of a
/// parallel region is not counted). Observability hook for the serving
/// fleet's one-shared-pool invariant: constructing N pipelines or replicas
/// must never grow this past the hardware clamp (at most cores - 1).
[[nodiscard]] std::size_t pool_thread_count();

/// Runs fn(i) for every i in [0, n), distributing indices over up to
/// `threads` workers (0 = kernel-layer default via num_threads(); 1 or n <= 1
/// runs inline). The calling thread participates, so `threads = k` uses the
/// caller plus at most k - 1 pool workers. Indices are claimed from an atomic
/// cursor; fn must therefore be safe to invoke concurrently for distinct i.
/// Every index is invoked exactly once even when some invocations throw:
/// exceptions are captured per index and the first one is rethrown after the
/// whole index space has been processed.
void parallel_for(std::size_t n, int threads,
                  const std::function<void(std::size_t)>& fn);

/// parallel_for with the kernel-layer default thread count.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

/// Chunked parallel_for: workers claim `grain` consecutive indices per
/// atomic fetch instead of one, amortizing the cursor traffic and the
/// std::function indirection for fine-grained loops (micro-tile grids, panel
/// packing). Semantics otherwise identical to the per-index overload,
/// including the exactly-once-under-exceptions guarantee. grain = 0 behaves
/// as grain = 1.
void parallel_for(std::size_t n, std::size_t grain, int threads,
                  const std::function<void(std::size_t)>& fn);

/// Range flavor: fn(lo, hi) is invoked on disjoint half-open ranges that
/// exactly cover [0, n), each at most `grain` long. Use when per-range setup
/// (a per-worker engine set, a local accumulator) matters; if fn throws, the
/// remainder of that one range is skipped (the exception is rethrown after
/// the barrier), so prefer the per-index overload when the exactly-once
/// guarantee matters.
void parallel_for_ranges(
    std::size_t n, std::size_t grain, int threads,
    const std::function<void(std::size_t, std::size_t)>& fn);

}  // namespace hetacc::kernels
