#pragma once
// Shared worker pool for the high-performance kernel layer. Every functional
// path (reference executor, algo kernels, fusion-pipeline engines) draws its
// workers from one process-wide pool so thread creation is paid once, not per
// convolution call.
//
// Determinism contract: parallel_for distributes *whole output items* (an
// output channel block, a tile row, an image) across workers. Kernels built
// on it never split a single accumulation chain across threads, so results
// are byte-identical for every thread count — the same rule the DSE layer
// follows (see DESIGN.md §6 and §8).

#include <cstddef>
#include <functional>

namespace hetacc::kernels {

/// Worker threads the kernel layer uses when a call site passes threads = 0.
/// Semantics match OptimizerOptions::threads: 1 = serial (the default, so
/// plain library use stays single-threaded), 0 = all hardware cores, n = n.
[[nodiscard]] int num_threads();
void set_num_threads(int threads);

/// Resolves a threads knob (<= 0 means "all cores") to a concrete count.
[[nodiscard]] int resolve_threads(int threads);

/// Runs fn(i) for every i in [0, n), distributing indices over up to
/// `threads` workers (0 = kernel-layer default via num_threads(); 1 or n <= 1
/// runs inline). The calling thread participates, so `threads = k` uses the
/// caller plus at most k - 1 pool workers. Indices are claimed from an atomic
/// cursor; fn must therefore be safe to invoke concurrently for distinct i.
/// Exceptions thrown by fn are captured and the first one is rethrown after
/// every index has been processed.
void parallel_for(std::size_t n, int threads,
                  const std::function<void(std::size_t)>& fn);

/// parallel_for with the kernel-layer default thread count.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

}  // namespace hetacc::kernels
