#include "kernels/parallel.h"

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace hetacc::kernels {

namespace {

std::atomic<int> g_default_threads{1};

unsigned hardware_threads() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc ? hc : 1u;
}

/// One parallel_for invocation. Kept alive by shared_ptr so a worker that
/// wakes late (after the job completed and a new one started) only touches
/// the dead job's atomics, never the new job's cursor.
struct Job {
  const std::function<void(std::size_t)>* fn = nullptr;
  std::size_t n = 0;
  std::atomic<std::size_t> cursor{0};
  std::atomic<std::size_t> completed{0};
  std::mutex err_mutex;
  std::exception_ptr error;

  void run_share() {
    for (std::size_t i = cursor.fetch_add(1); i < n; i = cursor.fetch_add(1)) {
      try {
        (*fn)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lk(err_mutex);
        if (!error) error = std::current_exception();
      }
      completed.fetch_add(1);
    }
  }

  [[nodiscard]] bool done() const { return completed.load() >= n; }
};

/// Lazily grown pool of parked workers. One job runs at a time (jobs from
/// nested parallel_for calls fall back to inline execution via the job
/// mutex try-lock, so nesting cannot deadlock).
class Pool {
 public:
  static Pool& instance() {
    static Pool p;
    return p;
  }

  void run(std::size_t n, std::size_t want,
           const std::function<void(std::size_t)>& fn) {
    std::unique_lock<std::mutex> job_lock(job_mutex_, std::try_to_lock);
    if (!job_lock.owns_lock()) {
      // A parallel region is already active (nested call): run inline.
      for (std::size_t i = 0; i < n; ++i) fn(i);
      return;
    }
    auto job = std::make_shared<Job>();
    job->fn = &fn;
    job->n = n;
    {
      std::lock_guard<std::mutex> lk(mutex_);
      ensure_workers(want - 1);
      current_ = job;
      ++generation_;
    }
    cv_work_.notify_all();
    job->run_share();  // the caller is a full participant
    {
      std::unique_lock<std::mutex> lk(mutex_);
      cv_done_.wait(lk, [&] { return job->done(); });
      current_.reset();
    }
    if (job->error) std::rethrow_exception(job->error);
  }

 private:
  Pool() = default;
  ~Pool() {
    {
      std::lock_guard<std::mutex> lk(mutex_);
      stop_ = true;
    }
    cv_work_.notify_all();
    for (auto& t : workers_) t.join();
  }

  void ensure_workers(std::size_t want) {  // callers hold mutex_
    const std::size_t cap = hardware_threads() > 1 ? hardware_threads() - 1
                                                   : 1u;
    want = std::min(want, cap);
    while (workers_.size() < want) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  void worker_loop() {
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lk(mutex_);
    while (true) {
      cv_work_.wait(lk, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      std::shared_ptr<Job> job = current_;
      if (!job) continue;
      lk.unlock();
      job->run_share();
      lk.lock();
      if (job->done()) cv_done_.notify_all();
    }
  }

  std::mutex job_mutex_;  ///< serializes whole jobs
  std::mutex mutex_;      ///< guards pool state below
  std::condition_variable cv_work_, cv_done_;
  std::vector<std::thread> workers_;
  std::shared_ptr<Job> current_;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
};

}  // namespace

int num_threads() { return g_default_threads.load(std::memory_order_relaxed); }

void set_num_threads(int threads) {
  g_default_threads.store(threads, std::memory_order_relaxed);
}

int resolve_threads(int threads) {
  if (threads > 0) return threads;
  return static_cast<int>(hardware_threads());
}

void parallel_for(std::size_t n, int threads,
                  const std::function<void(std::size_t)>& fn) {
  if (threads == 0) threads = num_threads();
  std::size_t want = static_cast<std::size_t>(resolve_threads(threads));
  want = std::min(want, n);
  if (want <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  Pool::instance().run(n, want, fn);
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  parallel_for(n, 0, fn);
}

}  // namespace hetacc::kernels
