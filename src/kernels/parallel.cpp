#include "kernels/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace hetacc::kernels {

namespace {

std::atomic<int> g_default_threads{1};

unsigned hardware_threads() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc ? hc : 1u;
}

/// One parallel_for invocation. Kept alive by shared_ptr so a worker that
/// wakes late (after the job completed and a new one started) only touches
/// the dead job's atomics, never the new job's cursor.
///
/// Exactly one of `fn` (per-index) / `range_fn` (per-range) is set. Workers
/// claim `grain` consecutive indices per cursor fetch; with the per-index
/// fn, each index runs under its own try/catch so every index is invoked
/// exactly once even when some throw.
struct Job {
  const std::function<void(std::size_t)>* fn = nullptr;
  const std::function<void(std::size_t, std::size_t)>* range_fn = nullptr;
  std::size_t n = 0;
  std::size_t grain = 1;
  std::atomic<std::size_t> cursor{0};
  std::atomic<std::size_t> completed{0};
  std::mutex err_mutex;
  std::exception_ptr error;

  void record(std::exception_ptr e) {
    std::lock_guard<std::mutex> lk(err_mutex);
    if (!error) error = std::move(e);
  }

  void run_share() {
    for (std::size_t lo = cursor.fetch_add(grain); lo < n;
         lo = cursor.fetch_add(grain)) {
      const std::size_t hi = std::min(n, lo + grain);
      if (fn) {
        for (std::size_t i = lo; i < hi; ++i) {
          try {
            (*fn)(i);
          } catch (...) {
            record(std::current_exception());
          }
        }
      } else {
        try {
          (*range_fn)(lo, hi);
        } catch (...) {
          record(std::current_exception());
        }
      }
      completed.fetch_add(hi - lo);
    }
  }

  [[nodiscard]] bool done() const { return completed.load() >= n; }
};

/// Lazily grown pool of parked workers. One job runs at a time (jobs from
/// nested parallel_for calls fall back to inline execution via the job
/// mutex try-lock, so nesting cannot deadlock).
class Pool {
 public:
  static Pool& instance() {
    static Pool p;
    return p;
  }

  /// `participants` counts the caller: k participants = the calling thread
  /// plus k - 1 pool workers. resolve_threads() caps requests at the
  /// hardware thread count before they reach here, so ensure_workers never
  /// silently under-provisions a capped request — the historical bug where
  /// the worker clamp was applied before accounting for the caller.
  bool run(std::size_t participants, const std::shared_ptr<Job>& job) {
    std::unique_lock<std::mutex> job_lock(job_mutex_, std::try_to_lock);
    if (!job_lock.owns_lock()) return false;  // nested: caller runs inline
    {
      std::lock_guard<std::mutex> lk(mutex_);
      ensure_workers(participants - 1);
      current_ = job;
      ++generation_;
    }
    cv_work_.notify_all();
    job->run_share();  // the caller is a full participant
    {
      std::unique_lock<std::mutex> lk(mutex_);
      cv_done_.wait(lk, [&] { return job->done(); });
      current_.reset();
    }
    return true;
  }

 private:
  Pool() = default;
  ~Pool() {
    {
      std::lock_guard<std::mutex> lk(mutex_);
      stop_ = true;
    }
    cv_work_.notify_all();
    for (auto& t : workers_) t.join();
  }

  void ensure_workers(std::size_t want) {  // callers hold mutex_
    // The pool itself holds at most H - 1 threads (the caller is the H-th
    // participant); on a single-core machine it holds none and every region
    // runs inline.
    const unsigned hc = hardware_threads();
    const std::size_t cap = hc > 1 ? hc - 1 : 0;
    want = std::min(want, cap);
    while (workers_.size() < want) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  void worker_loop() {
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lk(mutex_);
    while (true) {
      cv_work_.wait(lk, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      std::shared_ptr<Job> job = current_;
      if (!job) continue;
      lk.unlock();
      job->run_share();
      lk.lock();
      if (job->done()) cv_done_.notify_all();
    }
  }

  std::mutex job_mutex_;  ///< serializes whole jobs
  std::mutex mutex_;      ///< guards pool state below
  std::condition_variable cv_work_, cv_done_;
  std::vector<std::thread> workers_;
  std::shared_ptr<Job> current_;
  std::uint64_t generation_ = 0;
  bool stop_ = false;

 public:
  [[nodiscard]] std::size_t worker_count() {
    std::lock_guard<std::mutex> lk(mutex_);
    return workers_.size();
  }
};

void dispatch(std::size_t n, std::size_t grain,
              const std::function<void(std::size_t)>* fn,
              const std::function<void(std::size_t, std::size_t)>* range_fn,
              int threads) {
  if (n == 0) return;
  grain = std::max<std::size_t>(grain, 1);
  if (threads == 0) threads = num_threads();
  const std::size_t chunks = (n + grain - 1) / grain;
  std::size_t want = static_cast<std::size_t>(resolve_threads(threads));
  want = std::min(want, chunks);
  if (want > 1) {
    // Heap-allocated so a worker that wakes after this call returned only
    // ever touches the (kept-alive) dead job, never the caller's frame.
    auto job = std::make_shared<Job>();
    job->fn = fn;
    job->range_fn = range_fn;
    job->n = n;
    job->grain = grain;
    if (Pool::instance().run(want, job)) {
      if (job->error) std::rethrow_exception(job->error);
      return;
    }
    // A parallel region was already active (nested call): fall through to
    // the inline path.
  }
  // Serial execution with the same exception semantics as the pool path:
  // per-index capture, first error rethrown after full coverage.
  std::exception_ptr error;
  if (fn) {
    for (std::size_t i = 0; i < n; ++i) {
      try {
        (*fn)(i);
      } catch (...) {
        if (!error) error = std::current_exception();
      }
    }
  } else {
    for (std::size_t lo = 0; lo < n; lo += grain) {
      const std::size_t hi = std::min(n, lo + grain);
      try {
        (*range_fn)(lo, hi);
      } catch (...) {
        if (!error) error = std::current_exception();
      }
    }
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace

int num_threads() { return g_default_threads.load(std::memory_order_relaxed); }

void set_num_threads(int threads) {
  g_default_threads.store(threads, std::memory_order_relaxed);
}

int resolve_threads(int threads) {
  const int hc = static_cast<int>(hardware_threads());
  if (threads <= 0) return hc;
  return std::min(threads, hc);
}

std::size_t pool_thread_count() { return Pool::instance().worker_count(); }

void parallel_for(std::size_t n, int threads,
                  const std::function<void(std::size_t)>& fn) {
  dispatch(n, 1, &fn, nullptr, threads);
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  parallel_for(n, 0, fn);
}

void parallel_for(std::size_t n, std::size_t grain, int threads,
                  const std::function<void(std::size_t)>& fn) {
  dispatch(n, grain, &fn, nullptr, threads);
}

void parallel_for_ranges(
    std::size_t n, std::size_t grain, int threads,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  dispatch(n, grain, nullptr, &fn, threads);
}

}  // namespace hetacc::kernels
