#include "kernels/autotune.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <sstream>
#include <vector>

#include "kernels/gemm.h"

namespace hetacc::kernels {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// Deterministic operand fill (no libc rand; reproducible across runs).
template <typename T>
void fill_pattern(std::vector<T>& v) {
  std::uint32_t s = 0x9e3779b9u;
  for (auto& x : v) {
    s = s * 1664525u + 1013904223u;
    if constexpr (std::is_floating_point_v<T>) {
      x = static_cast<T>(static_cast<int>(s >> 24) - 128) / T(128);
    } else {
      x = static_cast<T>(static_cast<int>(s >> 24) - 128);
    }
  }
}

/// The measurement workload: one im2col-shaped GEMM per datapath, sized like
/// the mid-network VGG convolutions the benches track (M = out channels,
/// K = in_c * 3 * 3, N = out pixels). Operands are allocated once per tune.
struct Workload {
  int M = 64, N = 56 * 56, K = 64 * 9;
  std::vector<float> af, bf;
  std::vector<double> cf64ab;  // f64 path reuses double operands
  std::vector<std::int16_t> a16, b16;
  std::vector<std::int8_t> a8, b8;
  std::vector<float> cf;
  std::vector<double> cd;
  std::vector<std::int64_t> c64;
  std::vector<std::int32_t> c32;
  std::vector<std::int8_t> c8;
  std::vector<float> scales;

  explicit Workload(Datapath dp) {
    const std::size_t mk = static_cast<std::size_t>(M) * K;
    const std::size_t kn = static_cast<std::size_t>(K) * N;
    const std::size_t mn = static_cast<std::size_t>(M) * N;
    switch (dp) {
      case Datapath::kF32:
      case Datapath::kF32d:
        af.resize(mk);
        bf.resize(kn);
        fill_pattern(af);
        fill_pattern(bf);
        if (dp == Datapath::kF32) {
          cf.resize(mn);
        } else {
          cd.resize(mn);
        }
        break;
      case Datapath::kF64:
        cf64ab.resize(mk + kn);
        fill_pattern(cf64ab);
        cd.resize(mn);
        break;
      case Datapath::kI16:
        a16.resize(mk);
        b16.resize(kn);
        fill_pattern(a16);
        fill_pattern(b16);
        c64.resize(mn);
        break;
      case Datapath::kI8:
        a8.resize(mk);
        b8.resize(kn);
        fill_pattern(a8);
        fill_pattern(b8);
        c8.resize(mn);
        scales.assign(static_cast<std::size_t>(M), 0.0002f);
        break;
    }
  }

  void run(Datapath dp, int threads) {
    switch (dp) {
      case Datapath::kF32:
        gemm_f32(M, N, K, af.data(), K, bf.data(), N, cf.data(), N, nullptr,
                 false, threads);
        break;
      case Datapath::kF32d:
        gemm_f32d(M, N, K, af.data(), K, bf.data(), N, cd.data(), N, nullptr,
                  false, threads);
        break;
      case Datapath::kF64:
        gemm_f64(M, N, K, cf64ab.data(), K,
                 cf64ab.data() + static_cast<std::size_t>(M) * K, N,
                 cd.data(), N, threads);
        break;
      case Datapath::kI16:
        gemm_i16(M, N, K, a16.data(), K, b16.data(), N, c64.data(), N,
                 threads);
        break;
      case Datapath::kI8: {
        QuantParams q;
        q.scales = scales.data();
        q.per_channel = true;
        gemm_i8(M, N, K, a8.data(), K, b8.data(), N, c8.data(), N, q,
                threads);
        break;
      }
    }
  }
};

/// Measures `bp` on the workload: installs it, runs once warm-up-free (the
/// caller warmed the operands), takes the min of `reps` timed runs.
double measure(Datapath dp, const BlockingParams& bp, Workload& w,
               const AutotuneOptions& opts) {
  set_blocking(dp, bp);
  double best = 1e30;
  for (int r = 0; r < std::max(1, opts.reps); ++r) {
    const auto t0 = Clock::now();
    w.run(dp, opts.threads);
    best = std::min(best, ms_since(t0));
  }
  return best;
}

}  // namespace

AutotuneResult autotune_datapath(Datapath dp, const AutotuneOptions& opts) {
  AutotuneResult res;
  res.dp = dp;

  Workload w(dp);
  const auto t0 = Clock::now();

  // Warm-up + defaults baseline.
  const BlockingParams def = default_blocking(dp);
  w.run(dp, opts.threads);
  res.default_ms = measure(dp, def, w, opts);
  res.best = def;
  res.best_ms = res.default_ms;
  res.trials = 1;

  // Candidate axes. KC only moves on the integer datapaths (elsewhere the
  // sanitizer would pin every candidate back to the default anyway).
  const std::vector<int> mcs = {48, 64, 96, 128, 192, 256};
  const std::vector<int> kcs = kc_tunable(dp)
                                   ? std::vector<int>{128, 256, 384, 512}
                                   : std::vector<int>{def.kc};
  const std::vector<int> ncs = {0, 256, 512, 1024};
  const std::vector<int> grains = {0, 4, 8, 32};

  // Coordinate descent from the defaults: sweep one axis at a time, keep the
  // winner, repeat until a full pass improves nothing or the budget is gone.
  bool improved = true;
  while (improved && ms_since(t0) < opts.budget_ms) {
    improved = false;
    for (int axis = 0; axis < 4 && ms_since(t0) < opts.budget_ms; ++axis) {
      const std::vector<int>& vals =
          axis == 0 ? mcs : axis == 1 ? kcs : axis == 2 ? ncs : grains;
      for (int v : vals) {
        if (ms_since(t0) >= opts.budget_ms) break;
        BlockingParams cand = res.best;
        (axis == 0 ? cand.mc
                   : axis == 1 ? cand.kc : axis == 2 ? cand.nc : cand.grain) =
            v;
        if (cand == res.best) continue;
        const double ms = measure(dp, cand, w, opts);
        ++res.trials;
        if (ms < res.best_ms) {
          res.best_ms = ms;
          res.best = cand;
          improved = true;
        }
      }
    }
  }

  set_blocking(dp, res.best);
  return res;
}

std::vector<AutotuneResult> autotune_all(const AutotuneOptions& opts) {
  std::vector<AutotuneResult> out;
  out.reserve(kNumDatapaths);
  for (int i = 0; i < kNumDatapaths; ++i) {
    out.push_back(autotune_datapath(static_cast<Datapath>(i), opts));
  }
  return out;
}

std::string autotune_summary(const AutotuneResult& r) {
  std::ostringstream os;
  os << datapath_name(r.dp) << ": mc=" << r.best.mc << " kc=" << r.best.kc
     << " nc=" << r.best.nc << " grain=" << r.best.grain << "  " << r.best_ms
     << "ms (default " << r.default_ms << "ms, " << r.trials << " trials)";
  return os.str();
}

}  // namespace hetacc::kernels
