#pragma once
// Cache-blocking parameters for the packed GEMM driver, plus the persistent
// per-(datapath, machine) tuning cache the autotuner writes and gemm_run
// consults at dispatch.
//
// Determinism contract (the reason KC is special): integer datapaths (i16,
// i8) accumulate exactly, so any KC regrouping is bit-identical and KC is
// freely tunable. Float datapaths accumulate C += per-KC partials, so the
// per-element addition order depends on KC; for them KC is pinned to the
// default and only MC / NC / grain — which never change any element's
// accumulation chain — may be tuned. set_blocking() and the cache loader
// enforce this, so a tuning-cache hit can only change speed, never results.

#include <string>

namespace hetacc::kernels {

/// The GEMM datapaths that dispatch through blocking_for().
enum class Datapath : int { kF32 = 0, kF32d, kF64, kI16, kI8 };
inline constexpr int kNumDatapaths = 5;

[[nodiscard]] const char* datapath_name(Datapath dp);
/// Inverse of datapath_name; returns false on unknown names.
[[nodiscard]] bool datapath_from_name(const std::string& name, Datapath& out);

/// Cache-level blocking of one GEMM dispatch. The defaults reproduce the
/// constants the driver shipped with (the no-cache fallback).
struct BlockingParams {
  int mc = 96;    ///< rows of A per packed block (multiple of MR)
  int kc = 256;   ///< K-panel depth (pinned to the default on float paths)
  int nc = 0;     ///< columns of B per packed block; 0 = all of N at once
  int grain = 0;  ///< tile-grid chunk cap; 0 = derived from tasks/threads
  bool operator==(const BlockingParams&) const = default;
};

/// The shipped constants for a datapath (identical for all of them today;
/// kept per-datapath so tuned entries stay independent).
[[nodiscard]] BlockingParams default_blocking(Datapath dp);

/// Blocking the next dispatch of `dp` will use: the tuned entry if one was
/// loaded or set, otherwise default_blocking(dp). Thread-safe.
[[nodiscard]] BlockingParams blocking_for(Datapath dp);

/// Installs a tuned entry (clamped to sane ranges; KC forced back to the
/// default on float datapaths — see the determinism contract above).
void set_blocking(Datapath dp, const BlockingParams& bp);

/// Drops every tuned entry; dispatch reverts to the defaults.
void clear_tuned_blocking();

/// True when KC may differ from the default for this datapath (integer
/// accumulation commutes; float accumulation order depends on KC).
[[nodiscard]] bool kc_tunable(Datapath dp);

/// Identity of this machine's cache topology (L1d/L2/L3 sizes + core
/// count); tuned entries are only valid on the machine they were measured
/// on, so cache entries are keyed by this string.
[[nodiscard]] std::string machine_topology_key();

inline constexpr int kTuningCacheVersion = 1;

/// Serializes the currently tuned entries as a versioned JSON document
/// keyed by datapath + machine_topology_key().
[[nodiscard]] std::string tuning_cache_to_json();

/// Applies the entries of a tuning-cache document that match this machine's
/// topology key and the current version. Returns the number of entries
/// applied (0 for a different machine, an unreadable document, or a version
/// mismatch — dispatch then stays on the defaults).
int load_tuning_cache_json(const std::string& text);

/// File variants. load returns the number of entries applied, -1 when the
/// file cannot be read; save returns false on I/O failure.
int load_tuning_cache_file(const std::string& path);
bool save_tuning_cache_file(const std::string& path);

}  // namespace hetacc::kernels
