#pragma once
// Blocking autotuner: bounded coordinate-descent search over the
// BlockingParams of each GEMM datapath (MC / KC / NC / grain; KC only where
// tunable — see blocking.h), measuring a representative im2col-shaped GEMM
// on this machine. Winners are installed into the dispatch registry via
// set_blocking() and can be persisted with save_tuning_cache_file() for the
// next process to load.
//
// The search can only change speed, never results: every candidate goes
// through set_blocking()'s sanitizer, which pins KC on float datapaths, and
// MC/NC/grain never alter any element's accumulation chain.

#include <string>
#include <vector>

#include "kernels/blocking.h"

namespace hetacc::kernels {

struct AutotuneOptions {
  double budget_ms = 1000.0;  ///< measurement budget per datapath
  int threads = 0;            ///< worker knob passed to the GEMMs (0 = default)
  int reps = 2;               ///< timed repetitions per candidate (min taken)
};

struct AutotuneResult {
  Datapath dp = Datapath::kF32;
  BlockingParams best;     ///< winner (== default when nothing beat it)
  double best_ms = 0.0;    ///< best candidate time
  double default_ms = 0.0; ///< shipped-defaults time on the same workload
  int trials = 0;          ///< candidates measured before the budget ran out
};

/// Tunes one datapath within `budget_ms` and installs the winner via
/// set_blocking(). The previously installed blocking is replaced.
AutotuneResult autotune_datapath(Datapath dp, const AutotuneOptions& opts);

/// Tunes every datapath (budget applies per datapath) and installs the
/// winners. Returns one result per datapath in enum order.
std::vector<AutotuneResult> autotune_all(const AutotuneOptions& opts);

/// One-line human summary ("i8: mc=128 kc=512 nc=0 grain=0  1.23ms
/// (default 1.51ms, 14 trials)").
std::string autotune_summary(const AutotuneResult& r);

}  // namespace hetacc::kernels
