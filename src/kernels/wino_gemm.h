#pragma once
// Winograd F(m x m, r x r) restructured as batched transform-domain GEMMs.
//
// Instead of the seed's per-tile elementwise channel loop, all tiles of a
// tile-row strip are gathered, input-transformed, and laid out as n^2 planes
// V[ab] of shape (in_c x tiles). One GEMM per tile position ab then computes
// M[ab] (out_c x tiles) = U[ab] (out_c x in_c) * V[ab], and the inverse
// transform scatters each (oc, tile) back to output rows. The filters are
// packed into the plane layout exactly once per layer (WinogradPlan).
//
// Determinism: parallelism is across the (input channel x tile) grid
// (gather + forward transform), tile positions (GEMM batch), and the
// (output channel x tile) grid (inverse transform + scatter) — independent
// outputs only. Each output element's accumulation chain depends only on
// (in_c, KC), never on the thread count or the grid chunking.
//
// Scratch (transform planes, strip windows, quantized copies) comes from the
// calling thread's ScratchArena, so repeated strips/images run with zero
// steady-state heap allocations.
//
// The fixed-point strip reproduces algo::winograd_conv_fixed bit-for-bit:
// int16 x int16 -> int64 transform-domain accumulation commutes exactly, and
// the float/double pre- and post-transforms mirror the accumulation order of
// algo::Matrix::operator*.

#include <cstdint>
#include <vector>

namespace hetacc::kernels {

/// Largest supported transform size n = m + r - 1 (per-tile temporaries are
/// stack-allocated in the strip kernels).
inline constexpr int kWinogradMaxN = 16;

/// A Winograd layer packed for batched transform-domain GEMM: the transform
/// matrices as flat doubles plus the pre-transformed filters re-laid-out as
/// n^2 planes of (out_c x in_c). Built once per layer (see
/// algo::pack_winograd_plan) and shared across images/engine instances.
struct WinogradPlan {
  int m = 0, r = 0, n = 0;
  int out_c = 0, in_c = 0;
  std::vector<double> bt;  ///< n x n, row-major
  std::vector<double> at;  ///< m x n, row-major
  std::vector<double> u;   ///< [n*n][out_c][in_c]

  [[nodiscard]] const double* plane(int ab) const {
    return u.data() + static_cast<std::size_t>(ab) * out_c * in_c;
  }
};

/// Fixed-point variant: filters quantized to Q(u_frac) int16 once (the seed
/// re-quantized the same values per tile; quantization is deterministic, so
/// hoisting it is value-identical).
struct WinogradPlanFixed {
  int m = 0, r = 0, n = 0;
  int out_c = 0, in_c = 0;
  std::vector<double> bt;      ///< n x n, row-major
  std::vector<double> at;      ///< m x n, row-major
  std::vector<std::int16_t> u; ///< [n*n][out_c][in_c], Q(u_frac)
  int u_frac = 0;

  [[nodiscard]] const std::int16_t* plane(int ab) const {
    return u.data() + static_cast<std::size_t>(ab) * out_c * in_c;
  }
};

/// Computes one tile-row strip (all tile columns of one tile row).
///
/// `strip` is the pre-padded input window, [in_c][n][strip_w] row-major with
/// strip_w >= (tiles_w - 1) * m + n; anything outside the real (padded) image
/// must already be zero-filled. Output goes through `out_rows`: one pointer
/// per (row, output channel) — out_rows[row * out_c + oc] — each addressing
/// at least out_w floats; rows_out (<= m) bottom-clips the strip, out_w
/// right-clips the tiles. `out_frac < 0` leaves outputs in float; otherwise
/// each output is quantized to Q(out_frac) (streaming-engine fixed mode).
/// Transform planes live in the calling thread's ScratchArena for the
/// duration of the call.
void winograd_strip(const WinogradPlan& plan, const float* strip, int strip_w,
                    int tiles_w, float* const* out_rows, int rows_out,
                    int out_w, const float* bias, bool relu, int out_frac,
                    int threads);

/// Fixed-datapath strip: `strip` must hold Q(data_frac)-quantized samples,
/// V is quantized to Q(v_frac) int16 before the transform-domain multiply,
/// accumulation is exact int64, outputs re-quantized to Q(out_frac). Bit
/// -exact with the seed per-tile implementation for any thread count.
void winograd_strip_fixed(const WinogradPlanFixed& plan, const float* strip,
                          int strip_w, int tiles_w, float* const* out_rows,
                          int rows_out, int out_w, const float* bias,
                          bool relu, int v_frac, int out_frac, int threads);

/// Whole-tensor float Winograd conv over a CHW image (stride 1). `out` is
/// (out_c, out_h, out_w) CHW with out_h = H + 2*pad - r + 1.
void winograd_conv_f32(const WinogradPlan& plan, const float* in, int H, int W,
                       int pad, const float* bias, bool relu, float* out,
                       int out_h, int out_w, int threads);

/// Whole-tensor fixed Winograd conv: input quantized to Q(data_frac) once up
/// front (value-identical to the seed's per-tile quantization).
void winograd_conv_i16(const WinogradPlanFixed& plan, const float* in, int H,
                       int W, int pad, const float* bias, bool relu,
                       int data_frac, int v_frac, int out_frac, float* out,
                       int out_h, int out_w, int threads);

}  // namespace hetacc::kernels
