#pragma once
// Power and energy model. The paper reports board power, energy efficiency
// (GOPS/W), transfer-energy savings from fusion, and compute-energy savings
// from heterogeneity (§7.2); this model produces all four.

#include "fpga/device.h"

namespace hetacc::fpga {

struct PowerBreakdown {
  double static_w = 0.0;
  double dsp_w = 0.0;
  double bram_w = 0.0;
  double logic_w = 0.0;  ///< LUT + FF
  double board_w = 0.0;  ///< regulators / ARM subsystem / clocking

  [[nodiscard]] double total() const {
    return static_w + dsp_w + bram_w + logic_w + board_w;
  }
};

/// Chip+board power for a design occupying `used` resources.
/// `compute_utilization` scales the dynamic part: a DSP that is idle half
/// the cycles burns roughly half the dynamic power.
[[nodiscard]] PowerBreakdown estimate_power(const Device& dev,
                                            const ResourceVector& used,
                                            double compute_utilization);

struct EnergyReport {
  double compute_j = 0.0;   ///< chip dynamic+static energy over the run
  double transfer_j = 0.0;  ///< DDR feature-map + weight traffic energy
  [[nodiscard]] double total() const { return compute_j + transfer_j; }
};

/// Energy of a run taking `seconds` with the given power and moving
/// `ddr_bytes` through external memory.
[[nodiscard]] EnergyReport estimate_energy(const Device& dev,
                                           const PowerBreakdown& power,
                                           double seconds, double ddr_bytes);

/// GOPS per watt given total ops, runtime and power.
[[nodiscard]] double energy_efficiency_gops_per_w(double total_ops,
                                                  double seconds,
                                                  double watts);

}  // namespace hetacc::fpga
