#include "fpga/engine_model.h"

#include <algorithm>
#include <limits>
#include <map>
#include <mutex>
#include <sstream>
#include <stdexcept>

#include "cost/cost_model.h"

namespace hetacc::fpga {

/// Memoized candidate ladders, keyed by layer structure. Lives behind a
/// shared_ptr so model copies (cheap, common in the baselines) share it.
struct EngineModel::ImplCache {
  std::mutex mu;
  std::map<std::string, std::shared_ptr<const std::vector<Implementation>>>
      entries;
};

EngineModel::EngineModel(Device dev, EngineModelParams p)
    : dev_(std::move(dev)), p_(p), memo_(std::make_shared<ImplCache>()) {}

std::string_view to_string(ConvAlgo a) {
  switch (a) {
    case ConvAlgo::kConventional: return "conventional";
    case ConvAlgo::kWinograd: return "winograd";
    case ConvAlgo::kWinogradStride2: return "winograd-s2";
    case ConvAlgo::kNone: return "-";
  }
  return "?";
}

bool algo_from_string(std::string_view s, ConvAlgo& out) {
  if (s == "conventional") {
    out = ConvAlgo::kConventional;
  } else if (s == "winograd") {
    out = ConvAlgo::kWinograd;
  } else if (s == "winograd-s2") {
    out = ConvAlgo::kWinogradStride2;
  } else if (s == "-") {
    out = ConvAlgo::kNone;
  } else {
    return false;
  }
  return true;
}

std::string algo_label(const EngineConfig& cfg) {
  std::string s{to_string(cfg.algo)};
  if (cfg.int8) s += "-i8";
  return s;
}

bool algo_from_label(std::string_view s, EngineConfig& cfg) {
  cfg.int8 = false;
  if (s == "conventional-i8") {
    cfg.algo = ConvAlgo::kConventional;
    cfg.int8 = true;
    return true;
  }
  return algo_from_string(s, cfg.algo);
}

std::vector<int> divisors_up_to(int x, int cap) {
  std::vector<int> out;
  for (int d = 1; d <= x && d <= cap; ++d) {
    if (x % d == 0) out.push_back(d);
  }
  if (out.empty()) out.push_back(1);
  return out;
}

bool EngineModel::winograd_ok(const nn::Layer& layer) {
  if (layer.kind != nn::LayerKind::kConv) return false;
  const auto& p = layer.conv();
  return p.stride == 1 && p.kernel >= 2 && p.kernel <= 7;
}

long long EngineModel::algo_mults(const nn::Layer& layer,
                                  const EngineConfig& cfg) {
  switch (cfg.algo) {
    case ConvAlgo::kConventional:
      return layer.mults();
    case ConvAlgo::kWinograd: {
      const auto& p = layer.conv();
      const int n = cfg.wino_m + p.kernel - 1;
      const long long tiles =
          cost::winograd_tile_count(layer.out.h, layer.out.w, cfg.wino_m);
      return cost::winograd_mults(tiles, n, layer.conv_fan_in(), layer.out.c);
    }
    case ConvAlgo::kWinogradStride2: {
      const auto& p = layer.conv();
      const int r = (p.kernel + 1) / 2;
      const int n = cfg.wino_m + r - 1;
      const long long tiles =
          cost::winograd_tile_count(layer.out.h, layer.out.w, cfg.wino_m);
      // four polyphase components
      return 4 * cost::winograd_mults(tiles, n, layer.conv_fan_in(),
                                      layer.out.c);
    }
    case ConvAlgo::kNone: {
      if (layer.kind == nn::LayerKind::kLrn) {
        // square + scale per element of the cross-channel window
        return layer.out.elems() * (layer.lrn().local_size + 2);
      }
      return 0;  // pooling / ReLU are multiplier-free
    }
  }
  return 0;
}

Implementation EngineModel::implement(const nn::Layer& layer,
                                      EngineConfig cfg) const {
  if (layer.kind == nn::LayerKind::kConv) {
    if (cfg.algo == ConvAlgo::kNone) {
      throw std::invalid_argument("conv layer needs a conv algorithm");
    }
    return implement_conv(layer, cfg);
  }
  if (cfg.algo != ConvAlgo::kNone) {
    throw std::invalid_argument("non-conv layer cannot use a conv algorithm");
  }
  return implement_simple(layer, cfg);
}

Implementation EngineModel::implement_conv(const nn::Layer& layer,
                                           EngineConfig cfg) const {
  const auto& cp = layer.conv();
  const int K = cp.kernel;
  // Compute/weight fan-in may be annotated (coarsened modules); the physical
  // feature map streamed through the line buffer is always layer.in.
  const int M = layer.conv_fan_in();
  const int Mc = layer.in.c;
  const int N = layer.out.c;
  cfg.tn = std::clamp(cfg.tn, 1, M);
  cfg.tm = std::clamp(cfg.tm, 1, N);
  cfg.tk = std::clamp(cfg.tk, 1, K * K);
  if (cfg.int8 && cfg.algo != ConvAlgo::kConventional) {
    throw std::invalid_argument(
        "int8 engines are conventional-only (layer '" + layer.name + "')");
  }

  Implementation ipl;
  ipl.cfg = cfg;
  ipl.mults_performed = algo_mults(layer, cfg);
  // Weight footprint in 16-bit device words. int8 packs two weights per
  // word (ceil for odd counts); every downstream consumer — DDR weight
  // traffic, CRC check cycles, report bytes — multiplies by
  // dev.data_bytes, so the halving propagates without special cases there.
  const long long weight_count = static_cast<long long>(N) * M * K * K;
  ipl.weight_words =
      cfg.int8 ? cost::ceil_div(weight_count, 2) : weight_count;

  long long line_rows = 0;
  long long cycles = 0;
  if (cfg.algo == ConvAlgo::kWinogradStride2) {
    if (cp.stride != 2 || K < 2 || K > 7) {
      throw std::invalid_argument(
          "stride-2 winograd requires stride 2 and kernel in [2,7] (layer '" +
          layer.name + "')");
    }
    const int m = cfg.wino_m;
    const int r = (K + 1) / 2;
    const int n = m + r - 1;
    // One phase engine of n^2 multipliers, iterated over the four phases:
    // 4 cycles per (tile, tn-, tm-) pass.
    const long long tiles = cost::winograd_tile_count(layer.out.h, layer.out.w, m);
    cycles = cost::conv_cycles_winograd_stride2(M, N, cfg.tn, cfg.tm, tiles);
    // An output block of m rows touches 2(m-1)+K input rows; double for the
    // rows streaming in behind it.
    line_rows = 2ll * (2 * (m - 1) + K);
    ipl.res.dsp = static_cast<long long>(n) * n * cfg.tn * cfg.tm;
    ipl.res.lut = static_cast<long long>(
        p_.base_lut + p_.lut_per_mult_wino * ipl.res.dsp);
    ipl.res.ff = static_cast<long long>(
        p_.base_ff + p_.ff_per_mult_wino * ipl.res.dsp);
  } else if (cfg.algo == ConvAlgo::kWinograd) {
    if (!winograd_ok(layer)) {
      throw std::invalid_argument(
          "winograd requires stride 1 and kernel in [2,7] (layer '" +
          layer.name + "')");
    }
    const int m = cfg.wino_m;
    const int n = m + K - 1;
    // One (m+r-1)^2 multiplier array per (tn, tm) channel pair: each cycle
    // retires one input-tile x output-channel partial product.
    const long long tiles = cost::winograd_tile_count(layer.out.h, layer.out.w, m);
    cycles = cost::conv_cycles_winograd(M, N, cfg.tn, cfg.tm, tiles);
    // n rows active in transform + m rows streaming in (circular buffer).
    line_rows = n + m;
    ipl.res.dsp = static_cast<long long>(n) * n * cfg.tn * cfg.tm;
    ipl.res.lut = static_cast<long long>(
        p_.base_lut + p_.lut_per_mult_wino * ipl.res.dsp);
    ipl.res.ff = static_cast<long long>(
        p_.base_ff + p_.ff_per_mult_wino * ipl.res.dsp);
  } else {
    // Conventional: tn x tm x tk MACs per cycle over the six-deep loop nest.
    cycles = cost::conv_cycles_conventional(
        M, N, K, cfg.tn, cfg.tm, cfg.tk,
        static_cast<long long>(layer.out.h) * layer.out.w);
    line_rows = K + cp.stride;
    // LUT/FF scale with multiplier lanes; DSPs pack int8_mults_per_dsp
    // int8 lanes each (DSP48E port chaining), so the int8 DSP demand is
    // ceil(lanes / pack) while the cycle schedule is unchanged.
    const long long lanes =
        static_cast<long long>(cfg.tn) * cfg.tm * cfg.tk;
    ipl.res.dsp =
        cfg.int8
            ? cost::ceil_div(lanes, std::max(1, p_.int8_mults_per_dsp))
            : lanes;
    ipl.res.lut = static_cast<long long>(
        p_.base_lut + p_.lut_per_mult_conv * static_cast<double>(lanes));
    ipl.res.ff = static_cast<long long>(
        p_.base_ff + p_.ff_per_mult_conv * static_cast<double>(lanes));
  }
  ipl.compute_cycles = cost::apply_efficiency(cycles, p_.compute_efficiency);

  // Circular line buffer (paper §4.2): line_rows rows x W columns x M
  // channels, partitioned into one bank per (row, tn-slice) for port
  // bandwidth.
  const long long lb_words =
      static_cast<long long>(Mc) * line_rows * layer.in.w;
  const int lb_banks = static_cast<int>(std::min<long long>(
      line_rows * cfg.tn, p_.max_line_buffer_banks));
  const int w_banks = static_cast<int>(std::min<long long>(
      static_cast<long long>(cfg.tn) * cfg.tm, p_.max_weight_banks));

  // Two buffering regimes, as in real accelerators:
  //  (a) weight-stationary: the line buffer streams the feature map and the
  //      full kernel set is resident (early layers: big maps, small kernels);
  //  (b) input-stationary: the whole (small) input map is resident and
  //      kernels stream from DDR through a double buffer of tm output
  //      channels (late layers: small maps, massive kernel sets — e.g.
  //      AlexNet conv4's 1.3M weight words exceed the ZC706's BRAM).
  // Either way the kernels cross DDR once per image (paper §5 excludes that
  // traffic from T). The engine takes whichever regime is cheaper.
  // int8 engines buffer 8-bit activations on chip; the weight footprint is
  // already expressed in 16-bit word equivalents (two int8 codes per word),
  // so the weight stores stay at 16-bit word width.
  const int act_bits = cfg.int8 ? 8 : 16;
  const long long lb_bram =
      p_.include_line_buffer ? bram18k_for(lb_words, act_bits, lb_banks) : 0;
  const long long bram_weight_stationary =
      lb_bram + bram18k_for(ipl.weight_words, 16, w_banks);
  const long long fmap_words = layer.in.elems();
  long long wbuf_words =
      2ll * cfg.tm * M * K * K;  // double-buffered output-channel block
  if (cfg.int8) wbuf_words = cost::ceil_div(wbuf_words, 2);
  const long long bram_input_stationary =
      (p_.include_line_buffer ? bram18k_for(fmap_words, act_bits, lb_banks)
                              : 0) +
      bram18k_for(std::min(wbuf_words, ipl.weight_words), 16, w_banks);
  ipl.res.bram18k = std::min(bram_weight_stationary, bram_input_stationary);

  // Priming: the first K (or tile-reach) input rows must arrive before
  // output row 0.
  int prime_rows = K;
  if (cfg.algo == ConvAlgo::kWinograd) {
    prime_rows = cfg.wino_m + K - 1;
  } else if (cfg.algo == ConvAlgo::kWinogradStride2) {
    prime_rows = 2 * (cfg.wino_m - 1) + K;
  }
  ipl.fill_cycles = cost::line_fill_cycles(prime_rows, layer.in.w, Mc,
                                           p_.fifo_words_per_cycle);

  if (p_.protect) {
    // Hardened engine: CRC-32 on the weight-load path, transform checksum
    // (Winograd), watchdog counter. Logic is per engine; the weight panels
    // additionally pay the per-burst check tail once, during priming.
    ipl.res.lut += static_cast<long long>(p_.protect_lut_per_engine);
    ipl.res.ff += static_cast<long long>(p_.protect_ff_per_engine);
    ipl.res.bram18k += p_.protect_bram_per_engine;
    if (cfg.algo == ConvAlgo::kWinograd ||
        cfg.algo == ConvAlgo::kWinogradStride2) {
      ipl.res.lut += static_cast<long long>(p_.protect_lut_per_wino_lane *
                                            static_cast<double>(ipl.res.dsp));
    }
    const TransferProtection tp =
        dev_.protection.enabled ? dev_.protection : TransferProtection{};
    ipl.fill_cycles += cost::crc_check_cycles(
        ipl.weight_words * dev_.data_bytes, tp.burst_bytes,
        tp.check_cycles_per_burst);
  }
  return ipl;
}

Implementation EngineModel::implement_simple(const nn::Layer& layer,
                                             EngineConfig cfg) const {
  cfg.tn = std::clamp(cfg.tn, 1, std::max(1, layer.in.c));
  Implementation ipl;
  ipl.cfg = cfg;
  ipl.mults_performed = algo_mults(layer, cfg);

  long long work = 0;       // inner operations to schedule
  long long line_rows = 1;  // buffered input rows
  long long dsp = 0;
  switch (layer.kind) {
    case nn::LayerKind::kPool: {
      const auto& pp = layer.pool();
      work = layer.out.elems() * pp.kernel * pp.kernel;
      line_rows = pp.kernel + pp.stride;
      dsp = 0;  // max/accumulate trees live in LUTs
      break;
    }
    case nn::LayerKind::kLrn: {
      work = layer.out.elems() * layer.lrn().local_size;
      line_rows = 2;  // current + incoming row (window is cross-channel)
      dsp = static_cast<long long>(p_.lrn_dsp_per_lane) * cfg.tn;
      break;
    }
    case nn::LayerKind::kRelu: {
      work = layer.out.elems();
      line_rows = 1;
      dsp = 0;
      break;
    }
    case nn::LayerKind::kEltwiseAdd: {
      // (arms - 1) adds per output element; adder lanes live in LUTs.
      const long long arms =
          std::max<long long>(2, static_cast<long long>(layer.inputs.size()));
      work = layer.out.elems() * (arms - 1);
      line_rows = 1;
      dsp = 0;
      break;
    }
    case nn::LayerKind::kConcat: {
      // Pure stream interleave: one output element forwarded per lane-cycle.
      work = layer.out.elems();
      line_rows = 1;
      dsp = 0;
      break;
    }
    default:
      throw std::invalid_argument("implement_simple: unsupported layer kind '" +
                                  std::string(nn::to_string(layer.kind)) +
                                  "'");
  }
  ipl.compute_cycles = cost::lane_cycles(work, cfg.tn, p_.compute_efficiency);
  ipl.res.dsp = dsp;
  ipl.res.lut = static_cast<long long>(p_.base_lut_simple + 40.0 * cfg.tn);
  ipl.res.ff = static_cast<long long>(p_.base_ff_simple + 55.0 * cfg.tn);
  const long long lb_words =
      static_cast<long long>(layer.in.c) * line_rows * layer.in.w;
  const int banks = static_cast<int>(
      std::min<long long>(line_rows * cfg.tn, p_.max_line_buffer_banks));
  ipl.res.bram18k =
      p_.include_line_buffer ? bram18k_for(lb_words, 16, banks) : 0;
  ipl.fill_cycles = cost::line_fill_cycles(layer.window(), layer.in.w,
                                           layer.in.c,
                                           p_.fifo_words_per_cycle);
  if (p_.protect) {
    // Weight-free engines still carry the stage watchdog + stream parity.
    ipl.res.lut += static_cast<long long>(p_.protect_lut_per_engine * 0.25);
    ipl.res.ff += static_cast<long long>(p_.protect_ff_per_engine * 0.25);
  }
  return ipl;
}

namespace {

struct RatedConfig {
  EngineConfig cfg;
  long long cycles = 0;  ///< steady-state estimate (pre-efficiency)
  long long dsp = 0;
};

/// Keeps the Pareto frontier over (cycles, dsp) — a config is useless if
/// another is at least as fast with no more DSPs (ceil-division waste makes
/// many nominal-parallelism tiers strictly dominated) — then thins the
/// frontier to a geometric ladder in cycles. Ties prefer smaller tn (input
/// unroll multiplies line-buffer banks) and smaller tk.
std::vector<EngineConfig> pareto_ladder(std::vector<RatedConfig> all,
                                        double ratio) {
  std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
    if (a.dsp != b.dsp) return a.dsp < b.dsp;
    if (a.cycles != b.cycles) return a.cycles < b.cycles;
    if (a.cfg.tn != b.cfg.tn) return a.cfg.tn < b.cfg.tn;
    return a.cfg.tk < b.cfg.tk;
  });
  std::vector<RatedConfig> front;
  long long best_cycles = std::numeric_limits<long long>::max();
  for (const auto& rc : all) {
    if (rc.cycles < best_cycles) {
      best_cycles = rc.cycles;
      front.push_back(rc);
    }
  }
  // front is ascending in dsp, descending in cycles-from-the-back; thin by
  // cycle ratio starting from the fastest (Alg. 2 iterates max -> min
  // parallelism).
  std::vector<EngineConfig> out;
  double last = 0.0;
  for (auto it = front.rbegin(); it != front.rend(); ++it) {
    if (out.empty() || static_cast<double>(it->cycles) >= last * ratio) {
      out.push_back(it->cfg);
      last = static_cast<double>(it->cycles);
    }
  }
  return out;
}

}  // namespace

std::vector<EngineConfig> EngineModel::candidates(
    const nn::Layer& layer) const {
  const long long dsp_cap = dev_.capacity.dsp;
  std::vector<EngineConfig> out;

  // Unroll factors need not divide the channel counts: the loop nest uses
  // ceil-division (partially filled last iteration), which the cycle model
  // reflects. A dense factor range gives the fine DSP granularity behind the
  // paper's non-power-of-two parallelisms (Table 2).
  auto unrolls = [](int dim) {
    std::vector<int> v;
    for (int i = 1; i <= std::min(dim, 64); ++i) v.push_back(i);
    return v;
  };

  if (layer.kind == nn::LayerKind::kConv) {
    const auto& cp = layer.conv();
    const int K = cp.kernel;
    const int M = layer.conv_fan_in();
    const int N = layer.out.c;
    const auto tns = unrolls(M);
    const auto tms = unrolls(N);
    const long long hw = static_cast<long long>(layer.out.h) * layer.out.w;

    std::vector<RatedConfig> conv;
    for (int tn : tns) {
      for (int tm : tms) {
        for (int tk : {1, K, K * K}) {
          EngineConfig c{ConvAlgo::kConventional, tn, tm, tk, 4};
          if (c.parallelism(K) > dsp_cap) continue;
          const long long cycles =
              cost::conv_cycles_conventional(M, N, K, tn, tm, tk, hw);
          conv.push_back({c, cycles, c.parallelism(K)});
        }
      }
    }
    auto ladder = pareto_ladder(std::move(conv), p_.ladder_ratio);
    out.insert(out.end(), ladder.begin(), ladder.end());

    if (p_.enable_int8) {
      // int8 twins of the conventional ladder. The DSP demand is the packed
      // count, so lane tiers beyond the 16-bit DSP ceiling become reachable;
      // a separate Pareto pass keeps both precisions on offer and lets the
      // fusion DP trade accuracy for resources per layer.
      const int pack = std::max(1, p_.int8_mults_per_dsp);
      std::vector<RatedConfig> conv8;
      for (int tn : tns) {
        for (int tm : tms) {
          for (int tk : {1, K, K * K}) {
            EngineConfig c{ConvAlgo::kConventional, tn, tm, tk, 4, true};
            const long long dsp =
                cost::ceil_div(c.parallelism(K), pack);
            if (dsp > dsp_cap) continue;
            const long long cycles =
                cost::conv_cycles_conventional(M, N, K, tn, tm, tk, hw);
            conv8.push_back({c, cycles, dsp});
          }
        }
      }
      auto l8 = pareto_ladder(std::move(conv8), p_.ladder_ratio);
      out.insert(out.end(), l8.begin(), l8.end());
    }

    if (p_.enable_stride2_winograd && p_.enable_winograd && cp.stride == 2 &&
        K >= 2 && K <= 7) {
      const int m = p_.wino_tile_m;
      const int r2 = (K + 1) / 2;
      const int n2 = m + r2 - 1;
      const long long tiles =
          cost::winograd_tile_count(layer.out.h, layer.out.w, m);
      std::vector<RatedConfig> s2;
      for (int tn : tns) {
        for (int tm : tms) {
          EngineConfig c{ConvAlgo::kWinogradStride2, tn, tm, 1, m};
          if (static_cast<long long>(n2) * n2 * tn * tm > dsp_cap) continue;
          const long long cycles =
              cost::conv_cycles_winograd_stride2(M, N, tn, tm, tiles);
          s2.push_back({c, cycles, c.parallelism(K)});
        }
      }
      auto sl = pareto_ladder(std::move(s2), p_.ladder_ratio);
      out.insert(out.end(), sl.begin(), sl.end());
    }

    if (p_.enable_winograd && winograd_ok(layer)) {
      std::vector<int> tile_sizes{p_.wino_tile_m};
      if (p_.explore_wino_tiles) tile_sizes = {2, 4, 6};
      for (int m : tile_sizes) {
        const long long tiles =
            cost::winograd_tile_count(layer.out.h, layer.out.w, m);
        std::vector<RatedConfig> wino;
        for (int tn : tns) {
          for (int tm : tms) {
            EngineConfig c{ConvAlgo::kWinograd, tn, tm, 1, m};
            if (c.parallelism(K) > dsp_cap) continue;
            const long long cycles =
                cost::conv_cycles_winograd(M, N, tn, tm, tiles);
            wino.push_back({c, cycles, c.parallelism(K)});
          }
        }
        auto wl = pareto_ladder(std::move(wino), p_.ladder_ratio);
        out.insert(out.end(), wl.begin(), wl.end());
      }
    }
  } else if (layer.is_windowed() || layer.kind == nn::LayerKind::kRelu ||
             layer.is_merge()) {
    std::vector<RatedConfig> simple;
    for (int tn : unrolls(layer.in.c)) {
      // Lane count is the throughput for these engines; rate by 1/tn.
      simple.push_back({EngineConfig{ConvAlgo::kNone, tn, 1, 1, 4},
                        cost::ceil_div(layer.in.elems(), tn), tn});
    }
    auto ladder = pareto_ladder(std::move(simple), p_.ladder_ratio);
    out.insert(out.end(), ladder.begin(), ladder.end());
  }
  return out;
}

namespace {

/// Structural identity of a layer for memoization: everything the candidate
/// ladder and the cycle/resource model read. Names are deliberately
/// excluded — identically shaped layers (e.g. VGG's repeated 3x3 convs)
/// share one cache entry.
std::string structural_key(const nn::Layer& l) {
  std::ostringstream os;
  os << static_cast<int>(l.kind) << ':' << l.in.c << 'x' << l.in.h << 'x'
     << l.in.w << ':' << l.out.c << 'x' << l.out.h << 'x' << l.out.w;
  switch (l.kind) {
    case nn::LayerKind::kConv: {
      const auto& p = l.conv();
      os << ":c" << p.kernel << ',' << p.stride << ',' << p.pad;
      if (p.fan_in > 0) os << ",f" << p.fan_in;
      break;
    }
    case nn::LayerKind::kEltwiseAdd:
    case nn::LayerKind::kConcat:
      os << ":m" << l.inputs.size();
      break;
    case nn::LayerKind::kPool: {
      const auto& p = l.pool();
      os << ":p" << static_cast<int>(p.method) << ',' << p.kernel << ','
         << p.stride << ',' << p.pad;
      break;
    }
    case nn::LayerKind::kLrn:
      os << ":l" << l.lrn().local_size;
      break;
    default:
      break;
  }
  return os.str();
}

}  // namespace

std::shared_ptr<const std::vector<Implementation>> EngineModel::implementations(
    const nn::Layer& layer) const {
  const std::string key = structural_key(layer);
  {
    std::lock_guard<std::mutex> lock(memo_->mu);
    auto it = memo_->entries.find(key);
    if (it != memo_->entries.end()) return it->second;
  }
  // Evaluate outside the lock so concurrent workers on distinct layers don't
  // serialize. Two workers racing on the same layer compute identical
  // ladders (implement() is pure in (layer, cfg)); first insert wins.
  auto impls = std::make_shared<std::vector<Implementation>>();
  for (const auto& cfg : candidates(layer)) {
    impls->push_back(implement(layer, cfg));
  }
  std::shared_ptr<const std::vector<Implementation>> result = std::move(impls);
  std::lock_guard<std::mutex> lock(memo_->mu);
  return memo_->entries.emplace(key, std::move(result)).first->second;
}

}  // namespace hetacc::fpga
