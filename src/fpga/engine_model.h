#pragma once
// Resource and latency estimation for per-layer hardware engines: the
// `implement(cnt, algo, p)` evaluator of the paper's Algorithm 2. Given a
// layer, an algorithm and a hardware parallelism, it predicts the engine's
// resource vector and its steady-state compute cycles.
//
// Calibration targets the paper's setting: 16-bit fixed datapath at 100 MHz,
// one DSP48E per 16-bit multiplier, line-buffer BRAM with HLS-style
// partitioning, LUT/FF linear in parallelism plus a per-engine base.

#include <memory>
#include <vector>

#include "fpga/device.h"
#include "nn/layer.h"

namespace hetacc::fpga {

enum class ConvAlgo : std::uint8_t {
  kConventional,     ///< direct convolution (paper Eq. 1)
  kWinograd,         ///< minimal filtering F(m x m, r x r) (paper Eq. 3)
  kWinogradStride2,  ///< polyphase decomposition + F(m, ceil(K/2)) phases
                     ///< (extension beyond the paper's stride-1 rule)
  kNone,             ///< non-conv layers (pool / LRN / ReLU)
};

[[nodiscard]] std::string_view to_string(ConvAlgo a);

/// Inverse of to_string: recognizes "conventional", "winograd",
/// "winograd-s2" and "-". Returns false for anything else (the strategy-CSV
/// parser reports its own typed error with line context).
[[nodiscard]] bool algo_from_string(std::string_view s, ConvAlgo& out);

struct EngineConfig;

/// Algorithm + datapath label for reports and the strategy CSV:
/// to_string(algo), with "-i8" appended for the int8 datapath
/// ("conventional-i8"). 16-bit configs keep the legacy tokens so existing
/// strategy CSVs stay byte-identical.
[[nodiscard]] std::string algo_label(const EngineConfig& cfg);

/// Inverse of algo_label: sets cfg.algo and cfg.int8, leaves the unroll
/// fields untouched. Returns false for unknown tokens.
[[nodiscard]] bool algo_from_label(std::string_view s, EngineConfig& cfg);

/// One point in the per-layer design space explored by Algorithm 2
/// lines 10-11. Parallelism is structured as unroll factors, the product of
/// which is the single "parallelism" number the paper reports (Table 2).
struct EngineConfig {
  ConvAlgo algo = ConvAlgo::kNone;
  int tn = 1;      ///< input-channel unroll
  int tm = 1;      ///< output-channel unroll (conv only)
  int tk = 1;      ///< kernel-tap unroll (conventional conv only)
  int wino_m = 4;  ///< Winograd output tile size (paper fixes F(4x4,3x3))
  /// int8 datapath (conventional conv only): two 8-bit multiplies pack into
  /// one DSP48E and the weight footprint halves; same lane count, same
  /// cycle schedule. Serialized as the "conventional-i8" algorithm name.
  bool int8 = false;

  /// Multiplier lanes issued per cycle; equals the DSP demand for conv
  /// engines. Winograd engines hold an (m+r-1)^2 multiplier array per
  /// (tn, tm) channel pair; the stride-2 variant shares one phase engine
  /// sized for the ceil(K/2)-tap phase kernels across the four phases.
  [[nodiscard]] int parallelism(int kernel = 3) const {
    if (algo == ConvAlgo::kWinograd) {
      const int n = wino_m + kernel - 1;
      return n * n * tn * tm;
    }
    if (algo == ConvAlgo::kWinogradStride2) {
      const int n = wino_m + (kernel + 1) / 2 - 1;
      return n * n * tn * tm;
    }
    if (algo == ConvAlgo::kConventional) return tn * tm * tk;
    return tn;
  }

  bool operator==(const EngineConfig&) const = default;
};

/// The paper's "ipl": resources and latency of one engine choice.
struct Implementation {
  EngineConfig cfg;
  ResourceVector res;
  long long compute_cycles = 0;  ///< steady-state cycles to produce the layer
  long long fill_cycles = 0;     ///< line-buffer priming before first output
  long long weight_words = 0;    ///< on-chip weight footprint (16-bit words)
  long long mults_performed = 0; ///< scalar multiplies (drives DSP energy)
};

/// Knobs of the calibrated model. Defaults land in the paper-scale resource
/// envelope (Table 1 / Table 2); tests pin invariants, not exact values.
struct EngineModelParams {
  // LUT/FF per DSP-mapped multiplier lane (control, operand muxing).
  double lut_per_mult_conv = 55.0;
  double ff_per_mult_conv = 75.0;
  // Winograd lanes additionally carry the B^T/A^T/on-the-fly G add networks.
  double lut_per_mult_wino = 110.0;
  double ff_per_mult_wino = 130.0;
  // Fixed per-engine control/FSM/AXI cost.
  double base_lut = 5200.0;
  double base_ff = 6800.0;
  double base_lut_simple = 1400.0;  ///< pool/LRN/ReLU engines
  double base_ff_simple = 1800.0;
  // Fraction of peak issue lost to tile edges / loop prologues.
  double compute_efficiency = 0.90;
  // On-chip FIFO words per cycle between fused layers (DATAPACK width).
  int fifo_words_per_cycle = 16;
  // Bank-count caps (BRAM shattering limits an HLS design tolerates).
  int max_line_buffer_banks = 128;
  int max_weight_banks = 64;
  // Candidate-ladder thinning: keep points whose parallelism differs by at
  // least this geometric ratio.
  double ladder_ratio = 1.12;
  // DSPs a LRN lane needs (square, scale, reciprocal-table interpolation).
  int lrn_dsp_per_lane = 3;
  // Offer Winograd candidates at all (disabled for the conventional-only
  // baseline of Alwani et al., which the paper compares against).
  bool enable_winograd = true;
  // Account line-buffer BRAM inside each engine. The tile-based baseline
  // provides inter-layer storage externally (tile buffers), so it turns
  // this off and adds its own buffer cost instead.
  bool include_line_buffer = true;
  // Uniform Winograd output-tile size for generated candidates (paper §2.1
  // fixes F(4x4, r x r); the ablation bench sweeps it).
  int wino_tile_m = 4;
  // Extension beyond the paper: let Algorithm 2 choose the tile size per
  // layer from {2, 4, 6} instead of the uniform wino_tile_m.
  bool explore_wino_tiles = false;
  // Extension beyond the paper: offer the polyphase stride-2 Winograd
  // decomposition for stride-2 convolutions (ResNet-style layers).
  bool enable_stride2_winograd = false;
  // Extension beyond the paper: offer int8 twins of every conventional conv
  // candidate. Two int8 multiplies pack into one DSP48E (port chaining), the
  // on-chip weight footprint and the weight DDR traffic halve, and the line
  // buffer stores 8-bit words; feature-map streaming stays on the 16-bit
  // interconnect. Off by default — the paper's datapath is 16-bit fixed.
  bool enable_int8 = false;
  int int8_mults_per_dsp = 2;

  // --- Hardening overheads (the --protect toolflow mode) ---
  // When true every engine carries its fault detectors: a CRC-32 checker on
  // the weight-load path (conv engines), the Winograd filter-transform
  // checksum, and a stage watchdog counter. The optimizer then re-trades
  // choices with the protected resource vectors and latencies.
  bool protect = false;
  // CRC datapath + golden-checksum compare + watchdog FSM, per engine.
  double protect_lut_per_engine = 900.0;
  double protect_ff_per_engine = 600.0;
  // Staging/golden-CRC storage per engine (retry buffer for one burst).
  long long protect_bram_per_engine = 1;
  // Extra transform-checksum add network per Winograd multiplier lane.
  double protect_lut_per_wino_lane = 4.0;
};

class EngineModel {
 public:
  explicit EngineModel(Device dev, EngineModelParams p = {});

  [[nodiscard]] const Device& device() const { return dev_; }
  [[nodiscard]] const EngineModelParams& params() const { return p_; }

  /// Evaluates one (layer, algo, parallelism) choice. Throws if the
  /// combination is structurally invalid (e.g. Winograd on stride 2).
  [[nodiscard]] Implementation implement(const nn::Layer& layer,
                                         EngineConfig cfg) const;

  /// The candidate configurations Algorithm 2 iterates for a layer: every
  /// applicable algorithm x a descending parallelism ladder derived from the
  /// layer's channel/kernel structure, capped by the device's DSP budget.
  [[nodiscard]] std::vector<EngineConfig> candidates(
      const nn::Layer& layer) const;

  /// The fully evaluated candidate ladder — implement() applied to every
  /// candidates() entry, in order — memoized per layer structure. The DP
  /// optimizer prices the same layer in every [i, j] range containing it;
  /// the memo makes that O(1) after the first evaluation. Thread-safe, and
  /// copies of a model share one cache (the device and params are immutable
  /// after construction, so entries never go stale).
  [[nodiscard]] std::shared_ptr<const std::vector<Implementation>>
  implementations(const nn::Layer& layer) const;

  /// True if the Winograd algorithm can implement this layer (paper §2.1:
  /// small kernel, stride 1).
  [[nodiscard]] static bool winograd_ok(const nn::Layer& layer);

  /// Scalar multiplications the given algorithm spends on the layer.
  [[nodiscard]] static long long algo_mults(const nn::Layer& layer,
                                            const EngineConfig& cfg);

 private:
  struct ImplCache;

  [[nodiscard]] Implementation implement_conv(const nn::Layer& layer,
                                              EngineConfig cfg) const;
  [[nodiscard]] Implementation implement_simple(const nn::Layer& layer,
                                                EngineConfig cfg) const;

  Device dev_;
  EngineModelParams p_;
  std::shared_ptr<ImplCache> memo_;  ///< shared across copies
};

/// All divisors of x that are <= cap, ascending. Exposed for tests.
[[nodiscard]] std::vector<int> divisors_up_to(int x, int cap);

}  // namespace hetacc::fpga
