#include "fpga/device.h"

#include <algorithm>
#include <stdexcept>

namespace hetacc::fpga {

std::string ResourceVector::str() const {
  return "{BRAM18K=" + std::to_string(bram18k) + ", DSP=" + std::to_string(dsp) +
         ", FF=" + std::to_string(ff) + ", LUT=" + std::to_string(lut) + "}";
}

Device zc706() {
  Device d;
  d.name = "ZC706";
  d.chip = "XC7Z045";
  d.capacity = ResourceVector{1090, 900, 437200, 218600};
  d.bandwidth_bytes_per_s = 4.2e9;  // paper §7.1: 4.2 GB/s peak
  d.frequency_hz = 100e6;
  d.data_bytes = 2;
  return d;
}

Device vc707() {
  Device d;
  d.name = "VC707";
  d.chip = "XC7VX485T";
  d.capacity = ResourceVector{2060, 2800, 607200, 303600};
  d.bandwidth_bytes_per_s = 4.5e9;  // Fig. 1 bandwidth roof slope
  d.frequency_hz = 100e6;
  d.data_bytes = 2;
  return d;
}

Device vx690t() {
  Device d;
  d.name = "VX690T";
  d.chip = "XC7VX690T";
  d.capacity = ResourceVector{2940, 3600, 866400, 433200};
  d.bandwidth_bytes_per_s = 12.8e9;  // dual-channel DDR3 board
  d.frequency_hz = 100e6;
  d.data_bytes = 2;
  return d;
}

Device toy_device() {
  Device d;
  d.name = "toy";
  d.chip = "toy";
  d.capacity = ResourceVector{64, 64, 32768, 16384};
  d.bandwidth_bytes_per_s = 0.4e9;
  d.frequency_hz = 100e6;
  d.data_bytes = 2;
  return d;
}

long long bram18k_for(long long words, int bits, int banks) {
  if (words < 0 || bits <= 0 || banks <= 0) {
    throw std::invalid_argument("bram18k_for: bad arguments");
  }
  if (words == 0) return 0;
  // An 18Kb block provides 18432 bits but with quantized aspect ratios:
  // width w in {1,2,4,9,18,36(two blocks)} and depth 18432/w. For 16-bit
  // words the natural mapping is width 18, depth 1024.
  const long long per_bank_words = (words + banks - 1) / banks;
  long long depth_per_block;
  if (bits <= 1) depth_per_block = 16384;
  else if (bits <= 2) depth_per_block = 8192;
  else if (bits <= 4) depth_per_block = 4096;
  else if (bits <= 9) depth_per_block = 2048;
  else if (bits <= 18) depth_per_block = 1024;
  else depth_per_block = 512;  // width 36 costs a block pair; modeled below
  long long blocks_per_bank =
      (per_bank_words + depth_per_block - 1) / depth_per_block;
  if (bits > 18) blocks_per_bank *= 2;
  return std::max(1ll, blocks_per_bank) * banks;
}

}  // namespace hetacc::fpga
