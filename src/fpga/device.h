#pragma once
// FPGA device model: the multi-dimensional resource vector R of Problem 1
// (BRAM18K, DSP48E, FF, LUT), off-chip bandwidth, and clocking. Catalog
// entries for the boards in the paper: ZC706 (XC7Z045, §7.1) and the
// Virtex-7 485T used for the Fig. 1 motivation.

#include <cstdint>
#include <string>

namespace hetacc::fpga {

/// Usage/capacity along the four resource dimensions the paper tracks.
struct ResourceVector {
  long long bram18k = 0;
  long long dsp = 0;
  long long ff = 0;
  long long lut = 0;

  ResourceVector& operator+=(const ResourceVector& o) {
    bram18k += o.bram18k;
    dsp += o.dsp;
    ff += o.ff;
    lut += o.lut;
    return *this;
  }
  [[nodiscard]] ResourceVector operator+(const ResourceVector& o) const {
    ResourceVector r = *this;
    r += o;
    return r;
  }
  [[nodiscard]] ResourceVector operator-(const ResourceVector& o) const {
    return ResourceVector{bram18k - o.bram18k, dsp - o.dsp, ff - o.ff,
                          lut - o.lut};
  }
  [[nodiscard]] ResourceVector scaled(double s) const {
    return ResourceVector{static_cast<long long>(bram18k * s),
                          static_cast<long long>(dsp * s),
                          static_cast<long long>(ff * s),
                          static_cast<long long>(lut * s)};
  }
  /// Componentwise "fits inside" (the meet_constraints test of Alg. 2).
  [[nodiscard]] bool fits_in(const ResourceVector& cap) const {
    return bram18k <= cap.bram18k && dsp <= cap.dsp && ff <= cap.ff &&
           lut <= cap.lut;
  }
  [[nodiscard]] bool any_negative() const {
    return bram18k < 0 || dsp < 0 || ff < 0 || lut < 0;
  }
  bool operator==(const ResourceVector&) const = default;
  [[nodiscard]] std::string str() const;
};

/// Per-resource-class dynamic power coefficients (watts per busy unit at the
/// design clock) plus DDR transfer energy. Calibrated against the ~9-10 W
/// envelope reported for ZC706 CNN accelerators in the cited literature.
struct PowerSpec {
  double static_w = 0.25;          ///< device static power
  double per_dsp_w = 2.0e-3;       ///< DSP48E busy at 100 MHz
  double per_bram_w = 1.2e-3;      ///< BRAM18K active
  double per_klut_w = 1.5e-3;      ///< per 1000 LUTs of active logic
  double per_kff_w = 0.4e-3;       ///< per 1000 FFs
  double ddr_pj_per_byte = 300.0;  ///< DDR3 access energy (pJ/byte, incl PHY)
  double base_board_w = 1.0;       ///< regulators, clocking, ARM subsystem idle
};

/// DDR-path hardening the device is configured with. When enabled, every
/// subsystem that prices transfers — group_timing, the DDR trace, the
/// optimizer through both — charges the per-burst CRC check tail, so the
/// hardened design is re-traded with its true latency.
struct TransferProtection {
  bool enabled = false;
  long long burst_bytes = 4096;         ///< CRC granularity (AXI burst)
  long long check_cycles_per_burst = 8; ///< pipeline tail before data release
};

struct Device {
  std::string name;
  std::string chip;
  ResourceVector capacity;
  double bandwidth_bytes_per_s = 0.0;  ///< peak off-chip memory bandwidth
  double frequency_hz = 100e6;         ///< design clock (paper: 100 MHz)
  int data_bytes = 2;                  ///< 16-bit fixed data type
  PowerSpec power;
  TransferProtection protection;       ///< off by default (unhardened)

  /// DSP-limited computational roof in ops/s for an algorithm that performs
  /// `ops_per_dsp_cycle` effective operations per DSP per cycle.
  /// Conventional: 2 (one MAC). Winograd F(4x4,3x3): 8 (4x fewer
  /// multiplications for the same convolution work, paper §2.2).
  [[nodiscard]] double computational_roof_ops(double ops_per_dsp_cycle) const {
    return static_cast<double>(capacity.dsp) * ops_per_dsp_cycle *
           frequency_hz;
  }

  /// Bytes transferable per design clock cycle at peak bandwidth.
  [[nodiscard]] double bytes_per_cycle() const {
    return bandwidth_bytes_per_s / frequency_hz;
  }
};

/// Xilinx Zynq ZC706 board (XC7Z045), the paper's experiment platform:
/// 900 DSP48E, 1090 BRAM18K, 437k FF, 218k LUT, 4.2 GB/s peak DDR3.
[[nodiscard]] Device zc706();

/// Virtex-7 VC707 (XC7VX485T), the chip behind the Fig. 1 roofline study.
[[nodiscard]] Device vc707();

/// Virtex-7 VX690T, the (much larger) part the baseline's authors evaluated
/// on — useful for cross-device exploration.
[[nodiscard]] Device vx690t();

/// A deliberately tiny device for optimizer stress tests.
[[nodiscard]] Device toy_device();

/// BRAM18K blocks needed for a buffer of `words` elements of `bits` each,
/// given Xilinx 18Kb block geometry (1024x18, 2048x9, ...). `banks`
/// independent partitions each round up to at least one block.
[[nodiscard]] long long bram18k_for(long long words, int bits, int banks = 1);

}  // namespace hetacc::fpga
