#include "fpga/power.h"

#include <algorithm>
#include <stdexcept>

namespace hetacc::fpga {

PowerBreakdown estimate_power(const Device& dev, const ResourceVector& used,
                              double compute_utilization) {
  if (compute_utilization < 0.0 || compute_utilization > 1.0) {
    throw std::invalid_argument("compute_utilization must be in [0,1]");
  }
  const PowerSpec& ps = dev.power;
  PowerBreakdown pb;
  pb.static_w = ps.static_w;
  pb.board_w = ps.base_board_w;
  const double freq_scale = dev.frequency_hz / 100e6;
  pb.dsp_w = ps.per_dsp_w * static_cast<double>(used.dsp) *
             compute_utilization * freq_scale;
  pb.bram_w = ps.per_bram_w * static_cast<double>(used.bram18k) *
              std::max(0.3, compute_utilization) * freq_scale;
  pb.logic_w = (ps.per_klut_w * static_cast<double>(used.lut) / 1000.0 +
                ps.per_kff_w * static_cast<double>(used.ff) / 1000.0) *
               std::max(0.3, compute_utilization) * freq_scale;
  return pb;
}

EnergyReport estimate_energy(const Device& dev, const PowerBreakdown& power,
                             double seconds, double ddr_bytes) {
  if (seconds < 0.0 || ddr_bytes < 0.0) {
    throw std::invalid_argument("estimate_energy: negative inputs");
  }
  EnergyReport er;
  er.compute_j = power.total() * seconds;
  er.transfer_j = ddr_bytes * dev.power.ddr_pj_per_byte * 1e-12;
  return er;
}

double energy_efficiency_gops_per_w(double total_ops, double seconds,
                                    double watts) {
  if (seconds <= 0.0 || watts <= 0.0) return 0.0;
  return (total_ops / seconds) / 1e9 / watts;
}

}  // namespace hetacc::fpga
