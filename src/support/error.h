#pragma once
// Structured error hierarchy for the whole toolflow (header-only; every
// subsystem already has src/ on its include path). Replaces the bare
// std::runtime_error throws that used to escape the front end, the optimizer
// and the simulators, so callers — the hetacc CLI above all — can map a
// failure to a category (and a distinct process exit code) instead of
// printing an uncategorized what().
//
// Categories and CLI exit codes:
//   kParse      (2)  malformed input text: prototxt, strategy CSV
//   kValidate   (2)  structurally invalid network/config (degenerate shapes)
//   kInfeasible (3)  the optimizer proved no strategy fits the constraints
//   kFault      (4)  a fault-injection campaign detected an unrecovered
//                    hardware fault (wedged FIFO, uncorrectable burst, ...)
//   kServe      (5)  the serving runtime refused or abandoned a request
//                    (queue full, deadline blown, run cancelled, breaker
//                    stuck open) — the request-lifecycle analogue of kFault
//   kInternal   (1)  invariant violation inside the toolflow itself

#include <stdexcept>
#include <string>

namespace hetacc {

enum class ErrorCategory : std::uint8_t {
  kParse,
  kValidate,
  kInfeasible,
  kFault,
  kServe,
  kInternal,
};

[[nodiscard]] constexpr std::string_view to_string(ErrorCategory c) {
  switch (c) {
    case ErrorCategory::kParse: return "parse";
    case ErrorCategory::kValidate: return "validate";
    case ErrorCategory::kInfeasible: return "infeasible";
    case ErrorCategory::kFault: return "fault";
    case ErrorCategory::kServe: return "serve";
    case ErrorCategory::kInternal: return "internal";
  }
  return "?";
}

/// Process exit code the CLI maps a category to.
[[nodiscard]] constexpr int exit_code(ErrorCategory c) {
  switch (c) {
    case ErrorCategory::kParse:
    case ErrorCategory::kValidate: return 2;
    case ErrorCategory::kInfeasible: return 3;
    case ErrorCategory::kFault: return 4;
    case ErrorCategory::kServe: return 5;
    case ErrorCategory::kInternal: return 1;
  }
  return 1;
}

class Error : public std::runtime_error {
 public:
  Error(ErrorCategory category, const std::string& message,
        std::string context = "")
      : std::runtime_error(context.empty() ? message
                                           : context + ": " + message),
        category_(category),
        context_(std::move(context)) {}

  [[nodiscard]] ErrorCategory category() const { return category_; }
  /// Where the error arose (file/line for parses, layer/stage for faults).
  [[nodiscard]] const std::string& context() const { return context_; }
  [[nodiscard]] int exit_code() const { return hetacc::exit_code(category_); }

 private:
  ErrorCategory category_;
  std::string context_;
};

/// Malformed input text. `line` is 1-based when known, 0 otherwise.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& message, int line = 0)
      : Error(ErrorCategory::kParse, message,
              line > 0 ? "line " + std::to_string(line) : ""),
        line_(line) {}

  [[nodiscard]] int line() const { return line_; }

 private:
  int line_;
};

/// Structurally invalid network or configuration (degenerate shapes,
/// out-of-range parameters) caught before the cost model can divide by zero.
class ValidationError : public Error {
 public:
  explicit ValidationError(const std::string& message, std::string where = "")
      : Error(ErrorCategory::kValidate, message, std::move(where)) {}
};

/// The optimizer proved no strategy satisfies the constraints; `reason`
/// carries the diagnosable cause (budget below minimum, no fusible range...).
class InfeasibleError : public Error {
 public:
  explicit InfeasibleError(const std::string& reason)
      : Error(ErrorCategory::kInfeasible, reason) {}
};

/// A modeled hardware fault that the protection layer could not absorb.
/// `stage` names the engine/FIFO/transaction where it surfaced; `unit` is
/// the numeric identity within that stage (FIFO channel, burst index,
/// weight panel) and `attempts` how many recovery attempts were spent
/// before escalating. The serving layer keys its retry/downgrade decisions
/// on this payload, so throw sites should always fill it in.
class FaultError : public Error {
 public:
  explicit FaultError(const std::string& message, std::string stage = "",
                      long long unit = -1, int attempts = 0)
      : Error(ErrorCategory::kFault, message, std::move(stage)),
        unit_(unit),
        attempts_(attempts) {}

  [[nodiscard]] const std::string& stage() const { return context(); }
  /// Channel / burst / panel index inside the stage; -1 when not applicable.
  [[nodiscard]] long long unit() const { return unit_; }
  /// Recovery attempts consumed before the fault escalated (0 = none made).
  [[nodiscard]] int attempts() const { return attempts_; }

 private:
  long long unit_;
  int attempts_;
};

/// The serving runtime refused, shed, or abandoned a request. `reason`
/// distinguishes admission rejection (bounded queue full) from deadline
/// load-shedding from mid-run cancellation, so clients can decide whether
/// to back off, re-submit, or give up.
class ServeError : public Error {
 public:
  enum class Reason : std::uint8_t {
    kQueueFull,   ///< admission control: bounded queue at capacity
    kDeadline,    ///< request was already past its deadline (shed)
    kCancelled,   ///< in-flight run cancelled via the pipeline cancel hook
    kShutdown,    ///< server is draining; no new work accepted
    kConfig,      ///< invalid serving configuration / trace
  };

  ServeError(Reason reason, const std::string& message,
             std::string context = "")
      : Error(ErrorCategory::kServe, message, std::move(context)),
        reason_(reason) {}

  [[nodiscard]] Reason reason() const { return reason_; }

 private:
  Reason reason_;
};

[[nodiscard]] constexpr std::string_view to_string(ServeError::Reason r) {
  switch (r) {
    case ServeError::Reason::kQueueFull: return "queue_full";
    case ServeError::Reason::kDeadline: return "deadline";
    case ServeError::Reason::kCancelled: return "cancelled";
    case ServeError::Reason::kShutdown: return "shutdown";
    case ServeError::Reason::kConfig: return "config";
  }
  return "?";
}

}  // namespace hetacc
