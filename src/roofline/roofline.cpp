#include "roofline/roofline.h"

#include <algorithm>
#include <stdexcept>

namespace hetacc::roofline {

double attainable(double ctc_ops_per_byte, double compute_roof_ops,
                  double bandwidth_bytes_per_s) {
  if (ctc_ops_per_byte < 0.0 || compute_roof_ops < 0.0 ||
      bandwidth_bytes_per_s < 0.0) {
    throw std::invalid_argument("attainable: negative inputs");
  }
  return std::min(compute_roof_ops, ctc_ops_per_byte * bandwidth_bytes_per_s);
}

double layer_ctc_input_only(const nn::Layer& layer, int bytes_per_elem) {
  const double bytes =
      static_cast<double>(layer.in.bytes(bytes_per_elem));
  if (bytes <= 0.0) return 0.0;
  return static_cast<double>(layer.ops()) / bytes;
}

double group_ctc(double total_ops, double transfer_bytes) {
  if (transfer_bytes <= 0.0) {
    throw std::invalid_argument("group_ctc: non-positive transfer");
  }
  return total_ops / transfer_bytes;
}

double conventional_roof_ops(const fpga::Device& dev) {
  return dev.computational_roof_ops(2.0);
}

double winograd_roof_ops(const fpga::Device& dev, int m, int r) {
  const double n = m + r - 1;
  const double reduction = (static_cast<double>(m) * m * r * r) / (n * n);
  return dev.computational_roof_ops(2.0 * reduction);
}

Point make_point(std::string label, double ctc, double compute_roof_ops,
                 const fpga::Device& dev) {
  Point p;
  p.label = std::move(label);
  p.ctc_ops_per_byte = ctc;
  p.compute_roof_ops = compute_roof_ops;
  p.attainable_ops = attainable(ctc, compute_roof_ops,
                                dev.bandwidth_bytes_per_s);
  p.bandwidth_limited = p.attainable_ops < compute_roof_ops;
  return p;
}

}  // namespace hetacc::roofline
