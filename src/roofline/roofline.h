#pragma once
// Roofline model (Williams et al., CACM'09) as used in the paper's Fig. 1
// motivation: attainable performance = min(computational roof,
// CTC ratio x bandwidth).

#include "fpga/device.h"
#include "nn/layer.h"

namespace hetacc::roofline {

/// A design point in roofline space.
struct Point {
  std::string label;
  double ctc_ops_per_byte = 0.0;   ///< computation-to-communication ratio
  double attainable_ops = 0.0;     ///< after clipping to both roofs
  double compute_roof_ops = 0.0;   ///< roof of the algorithm used
  bool bandwidth_limited = false;  ///< true if the bandwidth roof clipped it
};

/// Attainable performance (ops/s) under both roofs.
[[nodiscard]] double attainable(double ctc_ops_per_byte,
                                double compute_roof_ops,
                                double bandwidth_bytes_per_s);

/// CTC ratio of a conv layer counting only input-feature-map traffic, the
/// simplification the paper states for Fig. 1.
[[nodiscard]] double layer_ctc_input_only(const nn::Layer& layer,
                                          int bytes_per_elem);

/// CTC ratio counting input + output feature maps (used for fused groups,
/// where intermediate maps never leave the chip).
[[nodiscard]] double group_ctc(double total_ops, double transfer_bytes);

/// Computational roof of the conventional algorithm: 1 MAC (2 ops) per DSP
/// per cycle.
[[nodiscard]] double conventional_roof_ops(const fpga::Device& dev);

/// Computational roof of Winograd F(m x m, r x r): the multiplication
/// reduction factor scales effective ops per DSP per cycle (4x for F(4,3)).
[[nodiscard]] double winograd_roof_ops(const fpga::Device& dev, int m, int r);

/// Builds a labeled point clipped to the roofs.
[[nodiscard]] Point make_point(std::string label, double ctc,
                               double compute_roof_ops,
                               const fpga::Device& dev);

}  // namespace hetacc::roofline
