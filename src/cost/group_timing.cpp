#include "cost/group_timing.h"

#include <stdexcept>

namespace hetacc::cost {

long long min_transfer_bytes(const nn::Network& net, std::size_t first,
                             std::size_t last, int bytes_per_elem) {
  if (first > last || last >= net.size()) {
    throw std::invalid_argument("min_transfer_bytes: bad range");
  }
  // The optimizer only fuses single-entry/single-exit ranges (see
  // nn::is_sese_range), so the group loads exactly one external feature map
  // — the sole producer's output, which equals the first layer's input and
  // is broadcast to every branch arm — and stores the exit layer's output.
  // That makes the paper's chain formula DAG-correct as-is.
  return net[first].in.bytes(bytes_per_elem) +
         net[last].out.bytes(bytes_per_elem);
}

long long weight_words(const std::vector<fpga::Implementation>& impls) {
  long long words = 0;
  for (const auto& ipl : impls) words += ipl.weight_words;
  return words;
}

fpga::ResourceVector aggregate_resources(
    const std::vector<fpga::Implementation>& impls) {
  fpga::ResourceVector sum;
  for (const auto& ipl : impls) sum += ipl.res;
  return sum;
}

long long engine_latency_cycles(const fpga::Implementation& ipl) {
  return ipl.compute_cycles + ipl.fill_cycles;
}

GroupTiming evaluate_group_timing(
    const nn::Network& net, std::size_t first, std::size_t last,
    const std::vector<fpga::Implementation>& impls, const fpga::Device& dev) {
  if (first > last || last >= net.size() || impls.size() != last - first + 1) {
    throw std::invalid_argument("evaluate_group_timing: bad range");
  }
  GroupTiming t;
  t.transfer_bytes = min_transfer_bytes(net, first, last, dev.data_bytes);
  // Kernel weights stream from DDR once per image regardless of fusion
  // (paper §5: "fusion design does not help to save the kernel weight
  // transfer"); they cost DDR time but are excluded from the T budget.
  const long long wt_bytes = weight_words(impls) * dev.data_bytes;
  if (dev.protection.enabled) {
    // Hardened DDR path: every burst pays the CRC check tail before its data
    // is released (same accounting the DDR trace replay uses).
    t.transfer_cycles = protected_transfer_cycles(
        t.transfer_bytes + wt_bytes, dev.bytes_per_cycle(),
        dev.protection.burst_bytes, dev.protection.check_cycles_per_burst);
  } else {
    t.transfer_cycles =
        transfer_cycles(t.transfer_bytes + wt_bytes, dev.bytes_per_cycle());
  }
  // Compute: member engines stream concurrently, so the slowest stage
  // bounds the group (branch arms of a parallel composition co-execute).
  // Fill: pipeline priming accumulates along the deepest producer chain
  // inside the group; on a chain that is the plain sum.
  std::vector<long long> depth(impls.size(), 0);
  for (std::size_t k = 0; k < impls.size(); ++k) {
    const std::size_t v = first + k;
    long long base = 0;
    for (std::size_t u : net[v].inputs) {
      if (u >= first) base = std::max(base, depth[u - first]);
    }
    depth[k] = base + impls[k].fill_cycles;
    t.compute_cycles = std::max(t.compute_cycles, impls[k].compute_cycles);
    t.fill_cycles = std::max(t.fill_cycles, depth[k]);
  }
  t.latency_cycles =
      group_latency(t.compute_cycles, t.transfer_cycles, t.fill_cycles);
  return t;
}

void StrategyTotals::add(const GroupTiming& t) {
  latency_cycles += t.latency_cycles;
  compute_fill_cycles += t.compute_cycles + t.fill_cycles;
  transfer_cycles += t.transfer_cycles;
  transfer_bytes += t.transfer_bytes;
}

}  // namespace hetacc::cost
