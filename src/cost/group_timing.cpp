#include "cost/group_timing.h"

#include <stdexcept>

namespace hetacc::cost {

long long min_transfer_bytes(const nn::Network& net, std::size_t first,
                             std::size_t last, int bytes_per_elem) {
  if (first > last || last >= net.size()) {
    throw std::invalid_argument("min_transfer_bytes: bad range");
  }
  return net[first].in.bytes(bytes_per_elem) +
         net[last].out.bytes(bytes_per_elem);
}

long long weight_words(const std::vector<fpga::Implementation>& impls) {
  long long words = 0;
  for (const auto& ipl : impls) words += ipl.weight_words;
  return words;
}

fpga::ResourceVector aggregate_resources(
    const std::vector<fpga::Implementation>& impls) {
  fpga::ResourceVector sum;
  for (const auto& ipl : impls) sum += ipl.res;
  return sum;
}

long long engine_latency_cycles(const fpga::Implementation& ipl) {
  return ipl.compute_cycles + ipl.fill_cycles;
}

GroupTiming evaluate_group_timing(
    const nn::Network& net, std::size_t first, std::size_t last,
    const std::vector<fpga::Implementation>& impls, const fpga::Device& dev) {
  if (first > last || last >= net.size() || impls.size() != last - first + 1) {
    throw std::invalid_argument("evaluate_group_timing: bad range");
  }
  GroupTiming t;
  t.transfer_bytes = min_transfer_bytes(net, first, last, dev.data_bytes);
  // Kernel weights stream from DDR once per image regardless of fusion
  // (paper §5: "fusion design does not help to save the kernel weight
  // transfer"); they cost DDR time but are excluded from the T budget.
  const long long wt_bytes = weight_words(impls) * dev.data_bytes;
  if (dev.protection.enabled) {
    // Hardened DDR path: every burst pays the CRC check tail before its data
    // is released (same accounting the DDR trace replay uses).
    t.transfer_cycles = protected_transfer_cycles(
        t.transfer_bytes + wt_bytes, dev.bytes_per_cycle(),
        dev.protection.burst_bytes, dev.protection.check_cycles_per_burst);
  } else {
    t.transfer_cycles =
        transfer_cycles(t.transfer_bytes + wt_bytes, dev.bytes_per_cycle());
  }
  for (const auto& ipl : impls) {
    t.compute_cycles = std::max(t.compute_cycles, ipl.compute_cycles);
    t.fill_cycles += ipl.fill_cycles;
  }
  t.latency_cycles =
      group_latency(t.compute_cycles, t.transfer_cycles, t.fill_cycles);
  return t;
}

void StrategyTotals::add(const GroupTiming& t) {
  latency_cycles += t.latency_cycles;
  compute_fill_cycles += t.compute_cycles + t.fill_cycles;
  transfer_cycles += t.transfer_cycles;
  transfer_bytes += t.transfer_bytes;
}

}  // namespace hetacc::cost
