#pragma once
// Group- and strategy-level accounting built on the pure arithmetic of
// cost_model.h: fusion-group timing (compute / transfer / fill / latency
// cycles), minimal feature-map transfer, resource aggregation, and the
// whole-strategy accumulators. This is the only translation unit that
// combines per-engine implementations into group and strategy costs; the
// optimizer, the baselines, the simulators and the HLS report all consume
// it.

#include <cstddef>
#include <vector>

#include "cost/cost_model.h"
#include "fpga/engine_model.h"
#include "nn/network.h"

namespace hetacc::cost {

/// Timing of one fusion group executing on the device.
struct GroupTiming {
  long long compute_cycles = 0;   ///< slowest member layer (pipeline stage)
  long long transfer_cycles = 0;  ///< group input load + output store at DDR
  long long fill_cycles = 0;      ///< priming along the group's critical path
                                  ///< (= the plain sum on a chain group)
  long long latency_cycles = 0;   ///< max(compute, transfer) + fill

  /// Feature-map bytes this group moves through DDR (the paper's T metric).
  long long transfer_bytes = 0;

  bool operator==(const GroupTiming&) const = default;
};

/// Minimal feature-map transfer of fusing layers [first, last]: input of the
/// first layer + output of the last (the paper's min_t[i][j]). Valid for any
/// single-entry/single-exit range — branch arms share (broadcast) the one
/// external input, which is the co-scheduling win of fusing a module.
[[nodiscard]] long long min_transfer_bytes(const nn::Network& net,
                                           std::size_t first,
                                           std::size_t last,
                                           int bytes_per_elem);

/// Total on-chip weight footprint (16-bit words) of a group's engines.
[[nodiscard]] long long weight_words(
    const std::vector<fpga::Implementation>& impls);

/// Sum of the member engines' resource vectors.
[[nodiscard]] fpga::ResourceVector aggregate_resources(
    const std::vector<fpga::Implementation>& impls);

/// Standalone latency of one engine (compute + line-buffer priming) — the
/// per-module view an HLS csynth report would show.
[[nodiscard]] long long engine_latency_cycles(const fpga::Implementation& ipl);

/// Group latency under the paper's execution model: member layers stream
/// concurrently (inter-layer pipeline), DDR carries the group's first input,
/// last output and the kernel weights, groups run back to back.
[[nodiscard]] GroupTiming evaluate_group_timing(
    const nn::Network& net, std::size_t first, std::size_t last,
    const std::vector<fpga::Implementation>& impls, const fpga::Device& dev);

/// Accumulates per-group timings into whole-strategy latencies. Groups
/// execute sequentially, so the conservative strategy latency is the sum of
/// group latencies; when consecutive groups double-buffer their DDR traffic
/// the strategy is instead bound by max(total compute+fill, total DDR time).
/// Both views read the same per-group numbers, so they cannot diverge.
struct StrategyTotals {
  long long latency_cycles = 0;       ///< sum of group latencies
  long long compute_fill_cycles = 0;  ///< sum of compute + fill
  long long transfer_cycles = 0;      ///< sum of DDR time
  long long transfer_bytes = 0;       ///< the paper's T metric

  void add(const GroupTiming& t);

  /// Latency when consecutive groups overlap their DDR traffic with compute.
  [[nodiscard]] long long pipelined_latency_cycles() const {
    return std::max(compute_fill_cycles, transfer_cycles);
  }
};

}  // namespace hetacc::cost
