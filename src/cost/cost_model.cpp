#include "cost/cost_model.h"

namespace hetacc::cost {

double latency_seconds(long long cycles, double frequency_hz) {
  return static_cast<double>(cycles) / frequency_hz;
}

double effective_gops(long long total_ops, long long latency_cycles,
                      double frequency_hz) {
  const double secs = latency_seconds(latency_cycles, frequency_hz);
  if (secs <= 0.0) return 0.0;
  return static_cast<double>(total_ops) / secs / 1e9;
}

double throughput_fps(long long slowest_group_cycles, double frequency_hz) {
  if (slowest_group_cycles <= 0) return 0.0;
  return frequency_hz / static_cast<double>(slowest_group_cycles);
}

}  // namespace hetacc::cost
