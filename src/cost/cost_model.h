#pragma once
// The single source of truth for the analytic cost arithmetic of the paper's
// Algorithm 1/2 pipeline: engine steady-state cycles per algorithm, DDR
// transfer cycles, pipeline-fill cycles, and the group latency combination
// rule. Every subsystem that prices a design point — the optimizer
// (core/), the baselines (baseline/), the simulators (arch/), the HLS
// report (codegen/) and the engine estimator (fpga/engine_model) — must
// call these functions instead of re-deriving the formulas, so that the
// optimizer's predictions and the simulator's counts cannot silently
// disagree.
//
// The functions here are pure integer/double arithmetic with no dependency
// on the layer, device or implementation types (group_timing.h builds the
// typed layer on top). They are inline/constexpr so that hetacc_fpga can
// use them without a library-level dependency cycle.

#include <algorithm>
#include <cmath>

namespace hetacc::cost {

/// ceil(a / b) for non-negative a and positive b.
[[nodiscard]] constexpr long long ceil_div(long long a, long long b) {
  return (a + b - 1) / b;
}

/// Steady-state cycles of a conventional (direct) convolution engine with
/// (tn, tm, tk) unroll over the six-deep loop nest (paper Eq. 1). Unrolls
/// need not divide the dimensions: the last iteration is partially filled
/// (ceil semantics). `out_positions` = out_h * out_w.
[[nodiscard]] constexpr long long conv_cycles_conventional(
    int in_c, int out_c, int kernel, int tn, int tm, int tk,
    long long out_positions) {
  return ceil_div(in_c, tn) * ceil_div(out_c, tm) *
         ceil_div(static_cast<long long>(kernel) * kernel, tk) * out_positions;
}

/// Number of m x m output tiles covering an out_h x out_w feature map
/// (Winograd tiling; edge tiles are padded, not skipped).
[[nodiscard]] constexpr long long winograd_tile_count(int out_h, int out_w,
                                                      int m) {
  return ceil_div(out_h, m) * ceil_div(out_w, m);
}

/// Steady-state cycles of a Winograd engine: one (m+r-1)^2 multiplier array
/// per (tn, tm) channel pair retires one input-tile x output-channel partial
/// product per cycle (paper Eq. 3).
[[nodiscard]] constexpr long long conv_cycles_winograd(int in_c, int out_c,
                                                       int tn, int tm,
                                                       long long tiles) {
  return tiles * ceil_div(in_c, tn) * ceil_div(out_c, tm);
}

/// Steady-state cycles of the polyphase stride-2 Winograd decomposition:
/// one phase engine shared across the four polyphase components.
[[nodiscard]] constexpr long long conv_cycles_winograd_stride2(
    int in_c, int out_c, int tn, int tm, long long tiles) {
  return 4 * conv_cycles_winograd(in_c, out_c, tn, tm, tiles);
}

/// Scalar multiplications a Winograd evaluation spends: every tile
/// element-wise multiplies an n x n transformed patch per channel pair.
[[nodiscard]] constexpr long long winograd_mults(long long tiles, int n,
                                                 int in_c, int out_c) {
  return tiles * n * n * in_c * out_c;
}

/// Fraction of peak issue lost to tile edges / loop prologues:
/// ceil(cycles / efficiency).
[[nodiscard]] inline long long apply_efficiency(long long cycles,
                                                double efficiency) {
  return static_cast<long long>(
      std::ceil(static_cast<double>(cycles) / efficiency));
}

/// Cycles of a lane-parallel engine (pool / LRN / ReLU, and the uniform
/// baseline's non-conv passes): `work` inner operations over `lanes` lanes
/// at the given issue efficiency.
[[nodiscard]] inline long long lane_cycles(long long work, int lanes,
                                           double efficiency) {
  return static_cast<long long>(std::ceil(
      static_cast<double>(work) / (lanes * efficiency)));
}

/// DDR cycles to move `bytes` at `bytes_per_cycle` peak bandwidth.
[[nodiscard]] inline long long transfer_cycles(long long bytes,
                                               double bytes_per_cycle) {
  return static_cast<long long>(
      std::ceil(static_cast<double>(bytes) / bytes_per_cycle));
}

/// DDR cycles (fractional) to move one feature-map row of
/// `width` x `channels` elements — the row granularity of the schedule
/// recurrence and the event simulator.
[[nodiscard]] inline double row_transfer_cycles(int width, int channels,
                                                int data_bytes,
                                                double bytes_per_cycle) {
  return static_cast<double>(width) * channels * data_bytes / bytes_per_cycle;
}

/// Line-buffer priming cycles: `rows` input rows of `width` x `channels`
/// elements arriving `words_per_cycle` words per cycle.
[[nodiscard]] constexpr long long line_fill_cycles(long long rows, int width,
                                                   int channels,
                                                   int words_per_cycle) {
  return rows * width * ceil_div(channels, words_per_cycle);
}

/// Cycles scaled by a fractional overhead factor (e.g. the tile-based
/// baseline's recompute factor), rounded up.
[[nodiscard]] inline long long scale_cycles(long long cycles, double factor) {
  return static_cast<long long>(
      std::ceil(static_cast<double>(cycles) * factor));
}

/// Number of CRC-protected AXI bursts covering `bytes` (hardened design).
[[nodiscard]] constexpr long long crc_burst_count(long long bytes,
                                                  long long burst_bytes) {
  return bytes > 0 ? ceil_div(bytes, burst_bytes) : 0;
}

/// Extra DDR-path cycles added by per-burst CRC verification: the checker
/// runs at wire speed, so the only cost is the fixed pipeline tail each
/// burst pays before its data is released to the consumer.
[[nodiscard]] constexpr long long crc_check_cycles(
    long long bytes, long long burst_bytes, long long check_cycles_per_burst) {
  return crc_burst_count(bytes, burst_bytes) * check_cycles_per_burst;
}

/// DDR cycles to move `bytes` through the CRC-checked path.
[[nodiscard]] inline long long protected_transfer_cycles(
    long long bytes, double bytes_per_cycle, long long burst_bytes,
    long long check_cycles_per_burst) {
  return transfer_cycles(bytes, bytes_per_cycle) +
         crc_check_cycles(bytes, burst_bytes, check_cycles_per_burst);
}

/// The group latency combination rule (paper Fig. 2(d)): intra-layer
/// pipelining overlaps DDR traffic with computation, so the steady state is
/// bound by the slower of the two, plus the pipeline fill.
[[nodiscard]] constexpr long long group_latency(long long compute_cycles,
                                                long long transfer_cycles,
                                                long long fill_cycles) {
  return std::max(compute_cycles, transfer_cycles) + fill_cycles;
}

/// Wall-clock seconds of `cycles` at the design clock.
[[nodiscard]] double latency_seconds(long long cycles, double frequency_hz);

/// Effective performance = total network ops / end-to-end latency
/// (footnote of paper §7.2). Returns 0 for non-positive latency.
[[nodiscard]] double effective_gops(long long total_ops,
                                    long long latency_cycles,
                                    double frequency_hz);

/// Steady-state images/second when groups pipeline across a batch: bound by
/// the slowest group. Returns 0 for non-positive cycle counts.
[[nodiscard]] double throughput_fps(long long slowest_group_cycles,
                                    double frequency_hz);

}  // namespace hetacc::cost
