#include "serve/breaker.h"

namespace hetacc::serve {

std::string_view to_string(BreakerState s) {
  switch (s) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half-open";
  }
  return "?";
}

void CircuitBreaker::transition(long long now, BreakerState to) {
  if (to == state_) return;
  log_.push_back({now, state_, to});
  if (to == BreakerState::kOpen) ++opens_;
  if (to == BreakerState::kClosed) ++closes_;
  state_ = to;
}

BreakerState CircuitBreaker::state(long long now) {
  if (state_ == BreakerState::kOpen && now >= open_until_) {
    transition(now, BreakerState::kHalfOpen);
    probe_wins_ = 0;
    probe_in_flight_ = false;
  }
  return state_;
}

bool CircuitBreaker::try_acquire_probe(long long now) {
  if (state(now) != BreakerState::kHalfOpen || probe_in_flight_) return false;
  probe_in_flight_ = true;
  return true;
}

void CircuitBreaker::force_open(long long now, long long cooldown_cycles) {
  consecutive_failures_ = 0;
  consecutive_misses_ = 0;
  probe_in_flight_ = false;
  probe_wins_ = 0;
  transition(now, BreakerState::kOpen);
  open_until_ = now + cooldown_cycles;
}

void CircuitBreaker::record_success(long long now) {
  consecutive_failures_ = 0;
  consecutive_misses_ = 0;
  if (state(now) == BreakerState::kHalfOpen) {
    probe_in_flight_ = false;
    if (++probe_wins_ >= cfg_.probe_successes) {
      transition(now, BreakerState::kClosed);
    }
  }
}

void CircuitBreaker::record_failure(long long now) {
  consecutive_misses_ = 0;
  if (state(now) == BreakerState::kHalfOpen) {
    // The probe found the primary still sick: re-open for a fresh cooldown.
    probe_in_flight_ = false;
    probe_wins_ = 0;
    transition(now, BreakerState::kOpen);
    open_until_ = now + cfg_.cooldown_cycles;
    return;
  }
  if (state_ == BreakerState::kClosed &&
      ++consecutive_failures_ >= cfg_.failure_threshold) {
    consecutive_failures_ = 0;
    transition(now, BreakerState::kOpen);
    open_until_ = now + cfg_.cooldown_cycles;
  }
}

void CircuitBreaker::record_deadline_miss(long long now) {
  consecutive_failures_ = 0;
  if (state(now) == BreakerState::kHalfOpen) {
    // A late probe is a failed probe — the primary still cannot meet the
    // deadline — and must release the probe slot, or half-open wedges.
    probe_in_flight_ = false;
    probe_wins_ = 0;
    transition(now, BreakerState::kOpen);
    open_until_ = now + cfg_.cooldown_cycles;
    return;
  }
  if (state_ != BreakerState::kClosed) return;
  if (++consecutive_misses_ >= cfg_.deadline_miss_threshold) {
    consecutive_misses_ = 0;
    transition(now, BreakerState::kOpen);
    open_until_ = now + cfg_.cooldown_cycles;
  }
}

}  // namespace hetacc::serve
