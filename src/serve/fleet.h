#pragma once
// Multi-tenant fleet simulator over the single-dispatcher virtual-time loop
// (DESIGN.md §15). One FleetServer owns M models, each with its own
// degradation ladder and a pool of replicas, serving T tenants whose
// arrival traces interleave on one virtual clock:
//
//  * shared prepack cache — replicas of the same (model, rung) alias one
//    refcounted PrepackBundle (serve/prepack_cache.h) instead of each
//    packing its own panels; cold spin-ups build the bundle, warm spin-ups
//    adopt it, and both the bytes saved and the spin-up cycles saved are
//    reported.
//  * dynamic batching — the dispatcher coalesces queued same-(model, rung)
//    requests into one batch per free replica, closed by a deterministic
//    rule: pending >= the tenants' batch cap, OR virtual-time age (the
//    oldest pending request's arrival + its tenant's batch-age budget has
//    passed). Batch service time follows svc(b) = setup + b*(service -
//    setup) with setup = service * batch_setup_frac, so svc(1) == service
//    exactly and batching amortizes the setup fraction.
//  * weighted-fair admission — per-tenant bounded queues drained by deficit
//    round-robin (quantum = tenant weight, cost 1 per request), so a bursty
//    tenant saturates its own queue, not its neighbors' service share.
//  * degradation ladders per (model, replica) — each replica runs its own
//    RegimeController on the model's ladder, descending under queue and
//    deadline pressure with the existing dwell-gated hysteresis.
//  * autoscale — streaks of pressure (queue above the up-watermark at
//    arrivals) add replicas, streaks of idleness retire them, both gated by
//    a per-model dwell so an oscillating trace cannot thrash the pool.
//
// Determinism contract (same as serve/server.h): every stats-bearing
// decision — admission, DRR order, batch composition and close cycle,
// rung moves, scale moves, cache hits — is made by the dispatcher thread in
// virtual time, so FleetStats (histograms, hash, timelines included) is
// byte-identical for any worker-thread count. Worker threads only grind the
// functional pipeline work that yields each response's CRC.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "serve/prepack_cache.h"
#include "serve/server.h"
#include "serve/stats.h"
#include "serve/trace.h"

namespace hetacc::serve {

/// One model the fleet serves: a functional testbed network + weights (the
/// request payload work) and its degradation ladder (service pricing +
/// per-rung choices). toolflow::build_testbed_ladder emits this shape.
struct FleetModel {
  std::string name;
  nn::Network net;
  nn::WeightStore ws;
  ServingLadder ladder;
  int replicas = 1;  ///< initial replica count (autoscale moves it later)
};

/// One tenant: a stream of requests against a single model, with its own
/// admission queue, SLO, fair-share weight, and batching budget.
struct TenantConfig {
  std::string name;
  std::size_t model = 0;  ///< index into the fleet's model list
  int weight = 1;         ///< DRR quantum: requests per round-robin round
  std::size_t queue_capacity = 64;
  long long deadline_cycles = 0;  ///< SLO; 0 disables deadline accounting
  /// Batching budget: a batch closes when `batch_cap` requests are pending
  /// (across the model's tenants; the effective cap is the min over tenants
  /// with queued work) or when this tenant's oldest queued request has
  /// waited `batch_age_cycles`. age = 0 dispatches immediately (batch=1
  /// unless a backlog already queued up).
  std::size_t batch_cap = 8;
  long long batch_age_cycles = 0;
};

struct AutoscaleConfig {
  bool enabled = false;
  int min_replicas = 1;
  int max_replicas = 4;
  /// Arrival-time queue depth >= up_queue_frac * (model's total tenant
  /// capacity) is a pressure observation; depth <= down_queue_frac * cap
  /// (and a drained queue at completions) is an idle observation.
  double up_queue_frac = 0.75;
  double down_queue_frac = 0.05;
  int up_streak = 6;     ///< consecutive pressure observations to scale up
  int down_streak = 24;  ///< consecutive idle observations to scale down
  long long dwell_cycles = 8192;  ///< min cycles between moves per model
  /// Virtual spin-up cost of a new replica: cold pays the full prepack
  /// derivation, warm adopts the shared bundle.
  long long spinup_cold_cycles = 4096;
  long long spinup_warm_cycles = 512;
};

struct FleetConfig {
  int threads = 0;  ///< real worker threads; never affects FleetStats
  /// Share prepack bundles across replicas (false = per-replica-copy
  /// baseline for the bench comparison).
  bool share_prepack = true;
  /// Fraction of a rung's service time that is per-batch setup (weight
  /// streaming, pipeline fill) rather than per-request work. svc(1) is
  /// exactly the rung's service_cycles for any value.
  double batch_setup_frac = 0.35;
  RegimeConfig regime;
  AutoscaleConfig autoscale;
};

struct TenantStats {
  std::string name;
  long long submitted = 0;
  long long rejected_queue_full = 0;
  long long shed_deadline = 0;
  long long completed = 0;
  long long failed = 0;
  long long deadline_misses = 0;
  long long completed_degraded = 0;  ///< served off the model's home rung
  long long queue_peak = 0;
  LatencyHistogram latency;

  [[nodiscard]] bool accounted() const {
    return submitted ==
           rejected_queue_full + shed_deadline + completed + failed;
  }
  bool operator==(const TenantStats& o) const;
};

struct ModelStats {
  std::string name;
  long long batches = 0;
  /// batch_size_counts[b] = batches that carried exactly b requests.
  std::vector<long long> batch_size_counts;
  std::vector<long long> rung_completions;  ///< summed over replicas
  long long rung_transitions = 0;           ///< summed over replicas
  long long scale_ups = 0;
  long long scale_downs = 0;
  int replica_peak = 0;
  long long cold_spinups = 0;
  long long warm_spinups = 0;
  long long spinup_cycles = 0;  ///< virtual cycles paid spinning up

  [[nodiscard]] double mean_batch() const;
  bool operator==(const ModelStats& o) const;
};

struct FleetStats {
  std::vector<TenantStats> tenants;  ///< index-aligned with the tenant list
  std::vector<ModelStats> models;    ///< index-aligned with the model list
  PrepackCacheStats cache;
  long long makespan_cycles = 0;  ///< last completion's virtual cycle
  /// Order-independent digest: every response CRC keyed by (tenant, id),
  /// every rung transition of every replica, and every scale event. Two
  /// runs that agree here answered, degraded, and scaled identically.
  std::uint64_t response_hash = 0;

  [[nodiscard]] bool accounted() const;
  [[nodiscard]] long long completed_total() const;
  bool operator==(const FleetStats& o) const;
  [[nodiscard]] std::string summary() const;
  [[nodiscard]] std::string to_json() const;
};

/// A replica-pool change, for the CLI timeline and the CI soak greps.
struct ScaleEvent {
  long long cycle = 0;
  std::size_t model = 0;
  bool up = false;
  int replicas_after = 0;
};

class FleetServer {
 public:
  /// Validates every model's ladder (Server rules: non-empty, home in
  /// range, deeper rungs strictly faster) and every tenant (live model
  /// index, weight >= 1, cap >= 1). Throws ServeError(kConfig) otherwise.
  FleetServer(std::vector<FleetModel> models,
              std::vector<TenantConfig> tenants, FleetConfig cfg);
  ~FleetServer();

  FleetServer(const FleetServer&) = delete;
  FleetServer& operator=(const FleetServer&) = delete;

  /// Serves the tenants' traces (index-aligned with the tenant list; ids
  /// dense from 0 within each trace; fault bursts are not supported in the
  /// fleet loop). Deterministic for a given (traces, config) regardless of
  /// cfg.threads.
  [[nodiscard]] FleetStats run(const std::vector<ArrivalTrace>& traces);

  /// Rung timelines of the last run: one log per replica ever spun up,
  /// indexed [model][replica id] (retired replicas keep their log).
  [[nodiscard]] const std::vector<std::vector<std::vector<RungTransition>>>&
  rung_logs() const {
    return rung_logs_;
  }
  [[nodiscard]] const std::vector<ScaleEvent>& scale_log() const {
    return scale_log_;
  }

  [[nodiscard]] const FleetConfig& config() const { return cfg_; }
  [[nodiscard]] const std::vector<FleetModel>& models() const {
    return models_;
  }
  [[nodiscard]] const std::vector<TenantConfig>& tenants() const {
    return tenants_;
  }

 private:
  std::vector<FleetModel> models_;
  std::vector<TenantConfig> tenants_;
  FleetConfig cfg_;
  std::vector<std::vector<std::vector<RungTransition>>> rung_logs_;
  std::vector<ScaleEvent> scale_log_;
};

}  // namespace hetacc::serve
