#pragma once
// Multi-tenant fleet simulator over the single-dispatcher virtual-time loop
// (DESIGN.md §15). One FleetServer owns M models, each with its own
// degradation ladder and a pool of replicas, serving T tenants whose
// arrival traces interleave on one virtual clock:
//
//  * shared prepack cache — replicas of the same (model, rung) alias one
//    refcounted PrepackBundle (serve/prepack_cache.h) instead of each
//    packing its own panels; cold spin-ups build the bundle, warm spin-ups
//    adopt it, and both the bytes saved and the spin-up cycles saved are
//    reported.
//  * dynamic batching — the dispatcher coalesces queued same-(model, rung)
//    requests into one batch per free replica, closed by a deterministic
//    rule: pending >= the tenants' batch cap, OR virtual-time age (the
//    oldest pending request's arrival + its tenant's batch-age budget has
//    passed). Batch service time follows svc(b) = setup + b*(service -
//    setup) with setup = service * batch_setup_frac, so svc(1) == service
//    exactly and batching amortizes the setup fraction.
//  * weighted-fair admission — per-tenant bounded queues drained by deficit
//    round-robin (quantum = tenant weight, cost 1 per request), so a bursty
//    tenant saturates its own queue, not its neighbors' service share.
//  * degradation ladders per (model, replica) — each replica runs its own
//    RegimeController on the model's ladder, descending under queue and
//    deadline pressure with the existing dwell-gated hysteresis.
//  * autoscale — streaks of pressure (queue above the up-watermark at
//    arrivals) add replicas, streaks of idleness retire them, both gated by
//    a per-model dwell so an oscillating trace cannot thrash the pool.
//
// Determinism contract (same as serve/server.h): every stats-bearing
// decision — admission, DRR order, batch composition and close cycle,
// rung moves, scale moves, cache hits — is made by the dispatcher thread in
// virtual time, so FleetStats (histograms, hash, timelines included) is
// byte-identical for any worker-thread count. Worker threads only grind the
// functional pipeline work that yields each response's CRC.

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "fault/fleet_fault.h"
#include "serve/prepack_cache.h"
#include "serve/server.h"
#include "serve/stats.h"
#include "serve/trace.h"

namespace hetacc::serve {

/// One model the fleet serves: a functional testbed network + weights (the
/// request payload work) and its degradation ladder (service pricing +
/// per-rung choices). toolflow::build_testbed_ladder emits this shape.
struct FleetModel {
  std::string name;
  nn::Network net;
  nn::WeightStore ws;
  ServingLadder ladder;
  int replicas = 1;  ///< initial replica count (autoscale moves it later)
};

/// One tenant: a stream of requests against a single model, with its own
/// admission queue, SLO, fair-share weight, and batching budget.
struct TenantConfig {
  std::string name;
  std::size_t model = 0;  ///< index into the fleet's model list
  int weight = 1;         ///< DRR quantum: requests per round-robin round
  std::size_t queue_capacity = 64;
  long long deadline_cycles = 0;  ///< SLO; 0 disables deadline accounting
  /// Batching budget: a batch closes when `batch_cap` requests are pending
  /// (across the model's tenants; the effective cap is the min over tenants
  /// with queued work) or when this tenant's oldest queued request has
  /// waited `batch_age_cycles`. age = 0 dispatches immediately (batch=1
  /// unless a backlog already queued up).
  std::size_t batch_cap = 8;
  long long batch_age_cycles = 0;
};

struct AutoscaleConfig {
  bool enabled = false;
  int min_replicas = 1;
  int max_replicas = 4;
  /// Arrival-time queue depth >= up_queue_frac * (model's total tenant
  /// capacity) is a pressure observation; depth <= down_queue_frac * cap
  /// (and a drained queue at completions) is an idle observation.
  double up_queue_frac = 0.75;
  double down_queue_frac = 0.05;
  int up_streak = 6;     ///< consecutive pressure observations to scale up
  int down_streak = 24;  ///< consecutive idle observations to scale down
  long long dwell_cycles = 8192;  ///< min cycles between moves per model
  /// Virtual spin-up cost of a new replica: cold pays the full prepack
  /// derivation, warm adopts the shared bundle.
  long long spinup_cold_cycles = 4096;
  long long spinup_warm_cycles = 512;
};

/// Per-replica health scoring + the quarantine state machine (DESIGN.md
/// §16). The miss signal is *replica-attributable*: a batch whose actual
/// service time overran its nominal svc(b). Queue-wait lateness never
/// implicates the replica, so an honest fleet under pure overload scores
/// zero — only sick replicas (kSlow, kWedge) accumulate. Quarantine cancels
/// and requeues the in-flight batch, releases the replica's bundle leases,
/// respawns through the autoscale cold/warm spin-up ledger, and re-admits
/// via a breaker-style single-probe probation (CircuitBreaker::force_open
/// with the spin-up as the cooldown, then the ordinary open -> half-open ->
/// closed walk). With `enabled = false` nothing detects or recovers faults:
/// a wedge loses its requests — the failure mode this PR exists to close.
struct HealthConfig {
  bool enabled = true;
  int miss_window = 8;        ///< rolling batch-completion window length
  int miss_threshold = 3;     ///< overruns in window that quarantine
  int failure_threshold = 2;  ///< consecutive execution failures likewise
  /// A batch still unfinished at dispatch + watchdog_factor x nominal
  /// svc(b) is a wedge; the watchdog quarantines the replica instead of
  /// waiting for a completion that will never come. Must clear the worst
  /// honest service time (any slow multiplier below it is caught by the
  /// miss window, not the watchdog).
  double watchdog_factor = 6.0;
};

/// Deterministic request hedging: once a batch is `delay_cycles` past its
/// *nominal* completion, its unfinished requests are duplicated onto the
/// next free replica; the first virtual-time completion wins and the losing
/// copy's real work is cancelled through the pipeline cancel token. Dedup
/// accounting keeps accounted() exact — each request lands in exactly one
/// stats bin no matter how many copies raced — and the response digest
/// folds the winner's CRC only.
struct HedgeConfig {
  bool enabled = false;
  long long delay_cycles = 0;  ///< grace past nominal completion; >= 0
};

struct FleetConfig {
  int threads = 0;  ///< real worker threads; never affects FleetStats
  /// Share prepack bundles across replicas (false = per-replica-copy
  /// baseline for the bench comparison).
  bool share_prepack = true;
  /// Fraction of a rung's service time that is per-batch setup (weight
  /// streaming, pipeline fill) rather than per-request work. svc(1) is
  /// exactly the rung's service_cycles for any value.
  double batch_setup_frac = 0.35;
  RegimeConfig regime;
  AutoscaleConfig autoscale;
  HealthConfig health;
  HedgeConfig hedge;
};

struct TenantStats {
  std::string name;
  long long submitted = 0;
  long long rejected_queue_full = 0;
  long long shed_deadline = 0;
  long long completed = 0;
  long long failed = 0;
  long long deadline_misses = 0;
  long long completed_degraded = 0;  ///< served off the model's home rung
  long long queue_peak = 0;
  LatencyHistogram latency;

  [[nodiscard]] bool accounted() const {
    return submitted ==
           rejected_queue_full + shed_deadline + completed + failed;
  }
  bool operator==(const TenantStats& o) const;
};

struct ModelStats {
  std::string name;
  long long batches = 0;
  /// batch_size_counts[b] = batches that carried exactly b requests.
  std::vector<long long> batch_size_counts;
  std::vector<long long> rung_completions;  ///< summed over replicas
  long long rung_transitions = 0;           ///< summed over replicas
  long long scale_ups = 0;
  long long scale_downs = 0;
  int replica_peak = 0;
  long long cold_spinups = 0;
  long long warm_spinups = 0;
  long long spinup_cycles = 0;  ///< virtual cycles paid spinning up

  [[nodiscard]] double mean_batch() const;
  bool operator==(const ModelStats& o) const;
};

struct FleetStats {
  std::vector<TenantStats> tenants;  ///< index-aligned with the tenant list
  std::vector<ModelStats> models;    ///< index-aligned with the model list
  PrepackCacheStats cache;
  long long makespan_cycles = 0;  ///< last completion's virtual cycle

  // Fault-domain accounting (all zero without a chaos plan or sick replica).
  long long hedges_fired = 0;  ///< duplicate request copies dispatched
  long long hedge_wins = 0;    ///< requests whose hedge copy finished first
  long long quarantines = 0;   ///< replica isolations (wedge/crash/sick)
  long long probes = 0;        ///< probation probe batches dispatched
  long long readmits = 0;      ///< probations that closed healthy again
  long long requeued = 0;      ///< in-flight requests rescued at quarantine
  long long bundles_scrubbed = 0;  ///< corrupted residents caught by CRC
  long long unrecovered_replicas = 0;  ///< not healthy when the run ended

  /// Order-independent digest: every response CRC keyed by (tenant, id),
  /// every rung transition of every replica, every scale event, and the
  /// whole fault-domain timeline + counters. Two runs that agree here
  /// answered, degraded, scaled, and recovered identically.
  std::uint64_t response_hash = 0;

  [[nodiscard]] bool accounted() const;
  [[nodiscard]] long long completed_total() const;
  bool operator==(const FleetStats& o) const;
  [[nodiscard]] std::string summary() const;
  [[nodiscard]] std::string to_json() const;
};

/// A replica-pool change, for the CLI timeline and the CI soak greps.
struct ScaleEvent {
  long long cycle = 0;
  std::size_t model = 0;
  bool up = false;
  int replicas_after = 0;
};

/// One entry in the fault-domain timeline: plan strikes as the dispatcher
/// applied them, detections, and every quarantine -> respawn -> probe ->
/// readmit step. Drives the CLI timeline and the CI soak greps.
struct HealthEvent {
  enum class Kind : std::uint8_t {
    kWedged,       ///< plan strike: replica stopped completing work
    kCrashed,      ///< plan strike: replica died (detection immediate)
    kSlowed,       ///< plan strike: service multiplier applied
    kCorrupted,    ///< plan strike: resident bundle flipped (replica = -1)
    kQuarantine,   ///< replica isolated; in-flight batch cancelled/requeued
    kRespawn,      ///< spin-up finished; probation begins
    kProbe,        ///< single probation probe batch dispatched
    kReadmit,      ///< probe succeeded; replica healthy again
    kProbeFail,    ///< probe failed; back to quarantine
    kScrub,        ///< corrupted bundle caught on lease and re-derived
  };
  long long cycle = 0;
  Kind kind = Kind::kQuarantine;
  std::size_t model = 0;
  int replica = 0;  ///< dense per-model replica id; -1 for cache events
};

[[nodiscard]] std::string_view to_string(HealthEvent::Kind k);

class FleetServer {
 public:
  /// Validates every model's ladder (Server rules: non-empty, home in
  /// range, deeper rungs strictly faster) and every tenant (live model
  /// index, weight >= 1, cap >= 1). Throws ServeError(kConfig) otherwise.
  FleetServer(std::vector<FleetModel> models,
              std::vector<TenantConfig> tenants, FleetConfig cfg);
  ~FleetServer();

  FleetServer(const FleetServer&) = delete;
  FleetServer& operator=(const FleetServer&) = delete;

  /// Serves the tenants' traces (index-aligned with the tenant list; ids
  /// dense from 0 within each trace; fault bursts are not supported in the
  /// fleet loop). Deterministic for a given (traces, config) regardless of
  /// cfg.threads.
  [[nodiscard]] FleetStats run(const std::vector<ArrivalTrace>& traces);

  /// Chaos run: the same loop with `plan` merged in as the
  /// highest-precedence event source (fault strikes resolve before
  /// completions at the same cycle). Plan events later than the last live
  /// fleet event never strike — the campaign out-ran the trace. Corruption
  /// events require share_prepack (the per-copy baseline has no shared
  /// resident to flip). Deterministic for any cfg.threads, plan included.
  [[nodiscard]] FleetStats run(const std::vector<ArrivalTrace>& traces,
                               const fault::FleetFaultPlan& plan);

  /// Rung timelines of the last run: one log per replica ever spun up,
  /// indexed [model][replica id] (retired replicas keep their log).
  [[nodiscard]] const std::vector<std::vector<std::vector<RungTransition>>>&
  rung_logs() const {
    return rung_logs_;
  }
  [[nodiscard]] const std::vector<ScaleEvent>& scale_log() const {
    return scale_log_;
  }
  /// Fault-domain timeline of the last run (strikes + recovery walk).
  [[nodiscard]] const std::vector<HealthEvent>& health_log() const {
    return health_log_;
  }

  [[nodiscard]] const FleetConfig& config() const { return cfg_; }
  [[nodiscard]] const std::vector<FleetModel>& models() const {
    return models_;
  }
  [[nodiscard]] const std::vector<TenantConfig>& tenants() const {
    return tenants_;
  }

 private:
  std::vector<FleetModel> models_;
  std::vector<TenantConfig> tenants_;
  FleetConfig cfg_;
  std::vector<std::vector<std::vector<RungTransition>>> rung_logs_;
  std::vector<ScaleEvent> scale_log_;
  std::vector<HealthEvent> health_log_;
};

}  // namespace hetacc::serve
