#pragma once
// Load-regime controller: walks the degradation ladder deliberately instead
// of the PR 5 binary primary/fallback flip. The ladder is an ordered vector
// of ServingModes, rung 0 the most conservative (slowest, most hardened) and
// the deepest rung the cheapest (int8 / conventional-i8 — maximum
// throughput, degraded accuracy). `home` is the preferred operating point:
// the 16-bit latency-optimal strategy the optimizer would pick offline.
//
// Two independent axes move the current rung:
//
//  * load  — queue-depth watermarks and a rolling deadline-miss window
//            descend to deeper (strictly faster) rungs under pressure and
//            climb back toward home when calm. Hysteresis is asymmetric:
//            descent is fast (small dwell), ascent requires both a long
//            dwell at the current rung and a sustained calm streak, so an
//            oscillating arrival process cannot make the server flap.
//  * fault — the circuit breaker's open/half-open transitions move the
//            effective rung off `home` onto the conservative rung (the
//            --protect re-optimization sitting just above home), restoring
//            it when the breaker closes. This is exactly the PR 5 behavior
//            when the ladder is [fallback, primary].
//
// Every input is a virtual-time signal observed by the single dispatcher
// thread, so the transition log and time-in-rung accounting are
// byte-identical for any worker-thread count.

#include <cstdint>
#include <string_view>
#include <vector>

namespace hetacc::serve {

enum class RungMove : std::uint8_t {
  kLoadDescend,     ///< pressure: one rung deeper (faster, more degraded)
  kLoadAscend,      ///< calm + dwell: one rung back toward home
  kBreakerDegrade,  ///< breaker opened: off the home rung
  kBreakerRestore,  ///< breaker closed: back onto the load rung
};

[[nodiscard]] std::string_view to_string(RungMove m);

struct RungTransition {
  long long cycle = 0;
  int from = 0;
  int to = 0;
  RungMove reason = RungMove::kLoadDescend;
};

struct RegimeConfig {
  /// Queue-depth watermarks as fractions of the admission-queue capacity:
  /// depth >= descend watermark is pressure, depth <= ascend watermark is
  /// calm. The gap between them is the hysteresis band.
  double descend_queue_frac = 0.75;
  double ascend_queue_frac = 0.25;
  /// Rolling window (completions) the deadline-miss signal is computed over.
  int miss_window = 16;
  /// Misses within the window that count as pressure / as calm.
  int descend_miss_count = 8;
  int ascend_miss_count = 2;
  /// Minimum virtual cycles between rung moves: descent is fast, ascent is
  /// dwell-gated so recovery never races the load it is recovering from.
  long long descend_dwell_cycles = 512;
  long long ascend_dwell_cycles = 16384;
  /// Consecutive calm observations required before an ascent step.
  int ascend_calm_streak = 8;
};

/// Deterministic rung selector driven by the dispatcher. All state changes
/// happen in observe_queue / observe_completion / on_breaker, each stamped
/// with the dispatcher's virtual cycle.
class RegimeController {
 public:
  /// `service_cycles` is the per-rung modeled service time (index-aligned
  /// with the ladder); rungs deeper than `home` must be strictly faster —
  /// the Server validates this before constructing the controller.
  RegimeController(std::vector<long long> service_cycles, std::size_t home,
                   std::size_t queue_capacity, RegimeConfig cfg);

  /// Effective rung for the next non-probe dispatch.
  [[nodiscard]] int rung() const { return effective_; }
  [[nodiscard]] int home() const { return home_; }
  /// Rung for requests forced off the primary after the retry budget, and
  /// the breaker's degrade target: the rung just above home when one exists
  /// (the --protect re-optimization), else the first rung below home.
  [[nodiscard]] int conservative_rung() const { return conservative_; }

  /// Admission-queue depth observed at an arrival or dispatch event.
  void observe_queue(long long now, std::size_t depth);
  /// A completion (any rung) and whether it blew its deadline.
  void observe_completion(long long now, bool missed_deadline);
  /// Breaker state after the dispatcher consulted it: `degraded` is true
  /// while the breaker is open or half-open (non-probe traffic must leave
  /// the home rung).
  void on_breaker(long long now, bool degraded);

  /// Closes the time-in-rung accounting at the end of the run.
  void finish(long long now);

  [[nodiscard]] const std::vector<RungTransition>& log() const {
    return log_;
  }
  /// Virtual cycles spent at each rung (index-aligned with the ladder).
  [[nodiscard]] const std::vector<long long>& cycles_in_rung() const {
    return cycles_;
  }

 private:
  void step(long long now);
  void refresh_effective(long long now, RungMove reason);
  void set_effective(long long now, int to, RungMove reason);

  std::vector<long long> service_cycles_;
  int home_ = 0;
  int deepest_ = 0;
  int conservative_ = 0;
  std::size_t descend_depth_ = 0;  ///< queue watermark, absolute
  std::size_t ascend_depth_ = 0;
  RegimeConfig cfg_;

  int load_rung_ = 0;          ///< load axis: in [home, deepest]
  bool breaker_degraded_ = false;
  int effective_ = 0;
  long long last_move_cycle_ = 0;
  int calm_streak_ = 0;
  std::size_t last_depth_ = 0;
  std::vector<bool> miss_ring_;  ///< rolling deadline-miss window
  std::size_t miss_next_ = 0;
  std::size_t miss_filled_ = 0;
  int misses_in_window_ = 0;

  std::vector<RungTransition> log_;
  std::vector<long long> cycles_;
  long long integrated_until_ = 0;
};

}  // namespace hetacc::serve
