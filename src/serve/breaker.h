#pragma once
// Circuit breaker guarding the primary strategy. Classic three-state
// machine, driven entirely by the dispatcher in virtual time (single
// threaded, so no locking):
//
//   closed ──(K consecutive failures, or M consecutive deadline misses)──▶
//   open   ──(cooldown_cycles elapse)──▶ half-open
//   half-open ──(probe_successes probes succeed)──▶ closed
//             ──(any probe fails)──▶ open (fresh cooldown)
//
// While open or half-open (probe slot taken), requests are served from the
// fallback strategy — the pre-optimized, tighter-budget design the
// optimizer computed offline — instead of failing. Every transition is
// logged with its virtual cycle so tests can assert the exact recovery
// sequence.

#include <cstdint>
#include <string_view>
#include <vector>

namespace hetacc::serve {

enum class BreakerState : std::uint8_t { kClosed, kOpen, kHalfOpen };

[[nodiscard]] std::string_view to_string(BreakerState s);

struct BreakerConfig {
  /// Consecutive primary failures that open the breaker.
  int failure_threshold = 3;
  /// Consecutive deadline misses that open it (sustained-lateness signal).
  int deadline_miss_threshold = 8;
  /// Cycles the breaker stays open before probing half-open recovery.
  long long cooldown_cycles = 50'000;
  /// Successful half-open probes required to close again.
  int probe_successes = 2;
};

struct BreakerTransition {
  long long cycle = 0;
  BreakerState from = BreakerState::kClosed;
  BreakerState to = BreakerState::kClosed;
};

class CircuitBreaker {
 public:
  explicit CircuitBreaker(BreakerConfig cfg = {}) : cfg_(cfg) {}

  /// Current state at virtual cycle `now`. Reading the state performs the
  /// open -> half-open transition once the cooldown has elapsed.
  [[nodiscard]] BreakerState state(long long now);

  /// Last committed state, with NO cooldown side effect — for observers
  /// (the regime controller) that must not perturb the transition log.
  [[nodiscard]] BreakerState current() const { return state_; }

  /// Half-open probe admission: true grants the (single) probe slot, and
  /// the caller must report the probe's outcome via record_success /
  /// record_failure. While a probe is in flight further requests are served
  /// from the fallback.
  [[nodiscard]] bool try_acquire_probe(long long now);

  /// Trips the breaker immediately with an explicit cooldown, bypassing the
  /// consecutive-failure counters. For callers that score health themselves
  /// and know the repair time up front — the fleet's quarantine machine uses
  /// this with the replica's respawn spin-up as the cooldown, then walks the
  /// ordinary open -> half-open -> closed probation sequence.
  void force_open(long long now, long long cooldown_cycles);

  /// Outcome of a request served on the *primary* strategy.
  void record_success(long long now);
  void record_failure(long long now);
  /// A primary request completed but blew its deadline. Sustained misses
  /// open the breaker just like hard failures do.
  void record_deadline_miss(long long now);

  [[nodiscard]] const std::vector<BreakerTransition>& transitions() const {
    return log_;
  }
  [[nodiscard]] long long opens() const { return opens_; }
  [[nodiscard]] long long closes() const { return closes_; }

 private:
  void transition(long long now, BreakerState to);

  BreakerConfig cfg_;
  BreakerState state_ = BreakerState::kClosed;
  long long open_until_ = 0;
  int consecutive_failures_ = 0;
  int consecutive_misses_ = 0;
  int probe_wins_ = 0;
  bool probe_in_flight_ = false;
  long long opens_ = 0;
  long long closes_ = 0;
  std::vector<BreakerTransition> log_;
};

}  // namespace hetacc::serve
