#include "serve/fleet.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <deque>
#include <future>
#include <limits>
#include <map>
#include <sstream>
#include <thread>

#include "fault/crc32.h"
#include "kernels/parallel.h"
#include "serve/breaker.h"
#include "serve/queue.h"
#include "support/error.h"

namespace hetacc::serve {

namespace {

constexpr long long kInf = std::numeric_limits<long long>::max();

/// Same digest primitive as serve/server.cpp (shared via stats.h), so the
/// fleet hash has the same order-independence properties.
constexpr std::uint64_t mix64(std::uint64_t x) { return digest_mix64(x); }

/// Globally unique request key for the response digest and the live-copy
/// ledger hedging dedups through.
constexpr std::uint64_t request_key(std::size_t tenant, std::uint64_t id) {
  return ((static_cast<std::uint64_t>(tenant) + 1) << 32) ^ (id + 1);
}

/// One coalesced dispatch: a batch of same-(model, rung) requests ground
/// through a warm pipeline by whichever worker picks it up. The response
/// CRCs come back index-aligned with `seeds`; an empty vector signals an
/// execution error (cannot happen without a fault plan, but accounted as
/// `failed` rather than lost). `cancel` is the pipeline cancel token the
/// dispatcher flips when the batch's virtual outcome no longer needs the
/// real work (hedge loser, quarantine drain) — the only dispatcher->worker
/// signal besides the queue itself, and it never carries stats.
struct FleetJob {
  std::size_t model = 0;
  int rung = 0;
  std::shared_ptr<const arch::PrepackBundle> bundle;
  std::vector<std::uint32_t> seeds;
  std::atomic<bool> cancel{false};
  std::promise<std::vector<std::uint32_t>> done;
};

}  // namespace

std::string_view to_string(HealthEvent::Kind k) {
  switch (k) {
    case HealthEvent::Kind::kWedged: return "wedge-struck";
    case HealthEvent::Kind::kCrashed: return "crash-struck";
    case HealthEvent::Kind::kSlowed: return "slow-struck";
    case HealthEvent::Kind::kCorrupted: return "bundle-corrupted";
    case HealthEvent::Kind::kQuarantine: return "quarantine";
    case HealthEvent::Kind::kRespawn: return "respawn";
    case HealthEvent::Kind::kProbe: return "probe";
    case HealthEvent::Kind::kReadmit: return "readmit";
    case HealthEvent::Kind::kProbeFail: return "probe-fail";
    case HealthEvent::Kind::kScrub: return "bundle-scrub";
  }
  return "?";
}

bool TenantStats::operator==(const TenantStats& o) const {
  return name == o.name && submitted == o.submitted &&
         rejected_queue_full == o.rejected_queue_full &&
         shed_deadline == o.shed_deadline && completed == o.completed &&
         failed == o.failed && deadline_misses == o.deadline_misses &&
         completed_degraded == o.completed_degraded &&
         queue_peak == o.queue_peak && latency == o.latency;
}

double ModelStats::mean_batch() const {
  if (batches == 0) return 0.0;
  long long requests = 0;
  for (std::size_t b = 0; b < batch_size_counts.size(); ++b) {
    requests += batch_size_counts[b] * static_cast<long long>(b);
  }
  return static_cast<double>(requests) / static_cast<double>(batches);
}

bool ModelStats::operator==(const ModelStats& o) const {
  return name == o.name && batches == o.batches &&
         batch_size_counts == o.batch_size_counts &&
         rung_completions == o.rung_completions &&
         rung_transitions == o.rung_transitions && scale_ups == o.scale_ups &&
         scale_downs == o.scale_downs && replica_peak == o.replica_peak &&
         cold_spinups == o.cold_spinups && warm_spinups == o.warm_spinups &&
         spinup_cycles == o.spinup_cycles;
}

bool FleetStats::accounted() const {
  for (const TenantStats& t : tenants) {
    if (!t.accounted()) return false;
  }
  return true;
}

long long FleetStats::completed_total() const {
  long long total = 0;
  for (const TenantStats& t : tenants) total += t.completed;
  return total;
}

bool FleetStats::operator==(const FleetStats& o) const {
  return tenants == o.tenants && models == o.models && cache == o.cache &&
         makespan_cycles == o.makespan_cycles &&
         hedges_fired == o.hedges_fired && hedge_wins == o.hedge_wins &&
         quarantines == o.quarantines && probes == o.probes &&
         readmits == o.readmits && requeued == o.requeued &&
         bundles_scrubbed == o.bundles_scrubbed &&
         unrecovered_replicas == o.unrecovered_replicas &&
         response_hash == o.response_hash;
}

std::string FleetStats::summary() const {
  std::ostringstream os;
  os << "  tenant                       sub   rej  shed  done  miss   "
        "p50        p99\n";
  for (const TenantStats& t : tenants) {
    char line[160];
    std::snprintf(line, sizeof(line),
                  "  %-24s %7lld %5lld %5lld %5lld %5lld  %8lld  %9lld\n",
                  t.name.c_str(), t.submitted, t.rejected_queue_full,
                  t.shed_deadline, t.completed, t.deadline_misses,
                  t.latency.p50(), t.latency.p99());
    os << line;
  }
  for (const ModelStats& m : models) {
    char line[200];
    std::snprintf(line, sizeof(line),
                  "  model %-16s %6lld batches (mean %.2f)  replicas peak %d  "
                  "scale +%lld/-%lld  spinup %lldc/%lldw (%lld cycles)  "
                  "rung moves %lld\n",
                  m.name.c_str(), m.batches, m.mean_batch(), m.replica_peak,
                  m.scale_ups, m.scale_downs, m.cold_spinups, m.warm_spinups,
                  m.spinup_cycles, m.rung_transitions);
    os << line;
  }
  os << "  cache       " << cache.hits << " hits, " << cache.misses
     << " misses, " << cache.resident_bytes << " bytes resident (peak "
     << cache.peak_resident_bytes << "), " << cache.bytes_saved
     << " bytes saved\n"
     << "  faults      " << quarantines << " quarantines, " << probes
     << " probes, " << readmits << " readmits, " << requeued << " requeued, "
     << hedges_fired << " hedges (" << hedge_wins << " wins), "
     << bundles_scrubbed << " bundles scrubbed, " << unrecovered_replicas
     << " unrecovered\n"
     << "  makespan    " << makespan_cycles << " cycles\n"
     << "  accounted   " << (accounted() ? "yes" : "NO — REQUESTS LOST")
     << "\n";
  return os.str();
}

std::string FleetStats::to_json() const {
  std::ostringstream os;
  os << "{\"tenants\": [";
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    const TenantStats& t = tenants[i];
    if (i) os << ", ";
    os << "{\"name\": \"" << t.name << "\", \"submitted\": " << t.submitted
       << ", \"rejected_queue_full\": " << t.rejected_queue_full
       << ", \"shed_deadline\": " << t.shed_deadline
       << ", \"completed\": " << t.completed << ", \"failed\": " << t.failed
       << ", \"deadline_misses\": " << t.deadline_misses
       << ", \"completed_degraded\": " << t.completed_degraded
       << ", \"queue_peak\": " << t.queue_peak
       << ", \"latency_p50\": " << t.latency.p50()
       << ", \"latency_p99\": " << t.latency.p99() << "}";
  }
  os << "], \"models\": [";
  for (std::size_t i = 0; i < models.size(); ++i) {
    const ModelStats& m = models[i];
    if (i) os << ", ";
    os << "{\"name\": \"" << m.name << "\", \"batches\": " << m.batches
       << ", \"batch_size_counts\": [";
    for (std::size_t b = 0; b < m.batch_size_counts.size(); ++b) {
      if (b) os << ", ";
      os << m.batch_size_counts[b];
    }
    os << "], \"rung_completions\": [";
    for (std::size_t r = 0; r < m.rung_completions.size(); ++r) {
      if (r) os << ", ";
      os << m.rung_completions[r];
    }
    os << "], \"rung_transitions\": " << m.rung_transitions
       << ", \"scale_ups\": " << m.scale_ups
       << ", \"scale_downs\": " << m.scale_downs
       << ", \"replica_peak\": " << m.replica_peak
       << ", \"cold_spinups\": " << m.cold_spinups
       << ", \"warm_spinups\": " << m.warm_spinups
       << ", \"spinup_cycles\": " << m.spinup_cycles << "}";
  }
  os << "], \"cache\": {\"hits\": " << cache.hits
     << ", \"misses\": " << cache.misses
     << ", \"evictions\": " << cache.evictions
     << ", \"resident_bytes\": " << cache.resident_bytes
     << ", \"peak_resident_bytes\": " << cache.peak_resident_bytes
     << ", \"bytes_saved\": " << cache.bytes_saved
     << ", \"scrubs\": " << cache.scrubs
     << "}, \"hedges_fired\": " << hedges_fired
     << ", \"hedge_wins\": " << hedge_wins
     << ", \"quarantines\": " << quarantines << ", \"probes\": " << probes
     << ", \"readmits\": " << readmits << ", \"requeued\": " << requeued
     << ", \"bundles_scrubbed\": " << bundles_scrubbed
     << ", \"unrecovered_replicas\": " << unrecovered_replicas
     << ", \"makespan_cycles\": " << makespan_cycles
     << ", \"response_hash\": " << response_hash << "}";
  return os.str();
}

FleetServer::FleetServer(std::vector<FleetModel> models,
                         std::vector<TenantConfig> tenants, FleetConfig cfg)
    : models_(std::move(models)), tenants_(std::move(tenants)), cfg_(cfg) {
  if (models_.empty()) {
    throw ServeError(ServeError::Reason::kConfig,
                     "fleet needs at least one model");
  }
  if (tenants_.empty()) {
    throw ServeError(ServeError::Reason::kConfig,
                     "fleet needs at least one tenant");
  }
  if (cfg_.batch_setup_frac < 0.0 || cfg_.batch_setup_frac >= 1.0) {
    throw ServeError(ServeError::Reason::kConfig,
                     "batch_setup_frac must be in [0, 1)");
  }
  const AutoscaleConfig& as = cfg_.autoscale;
  if (as.enabled &&
      (as.min_replicas < 1 || as.max_replicas < as.min_replicas ||
       as.up_streak < 1 || as.down_streak < 1 ||
       as.spinup_cold_cycles < 0 || as.spinup_warm_cycles < 0)) {
    throw ServeError(ServeError::Reason::kConfig,
                     "invalid autoscale configuration");
  }
  const HealthConfig& hc = cfg_.health;
  if (hc.enabled && (hc.miss_window < 1 || hc.miss_threshold < 1 ||
                     hc.failure_threshold < 1 || hc.watchdog_factor <= 1.0)) {
    throw ServeError(ServeError::Reason::kConfig,
                     "invalid health configuration (window/thresholds >= 1, "
                     "watchdog_factor > 1)");
  }
  if (cfg_.hedge.enabled && cfg_.hedge.delay_cycles < 0) {
    throw ServeError(ServeError::Reason::kConfig,
                     "hedge delay must be >= 0 cycles");
  }
  for (std::size_t mi = 0; mi < models_.size(); ++mi) {
    const FleetModel& m = models_[mi];
    if (m.replicas < 1) {
      throw ServeError(ServeError::Reason::kConfig,
                       "model '" + m.name + "' needs >= 1 initial replica");
    }
    if (m.ladder.rungs.empty() || m.ladder.home >= m.ladder.rungs.size()) {
      throw ServeError(ServeError::Reason::kConfig,
                       "model '" + m.name + "' has an unusable ladder");
    }
    if (m.net.empty() || m.net[0].kind != nn::LayerKind::kInput) {
      throw ServeError(ServeError::Reason::kConfig,
                       "model '" + m.name + "' net must start with input");
    }
    const std::size_t layer_count = m.net.size() - 1;
    for (std::size_t i = 0; i < m.ladder.rungs.size(); ++i) {
      const ServingMode& r = m.ladder.rungs[i];
      if (r.service_cycles <= 0 ||
          (!r.choices.empty() && r.choices.size() != layer_count)) {
        throw ServeError(ServeError::Reason::kConfig,
                         "model '" + m.name + "' rung " + std::to_string(i) +
                             " is malformed");
      }
      if (i > m.ladder.home &&
          r.service_cycles >= m.ladder.rungs[i - 1].service_cycles) {
        throw ServeError(ServeError::Reason::kConfig,
                         "model '" + m.name +
                             "': rungs deeper than home must be strictly "
                             "faster (rung " + std::to_string(i) + " is not)");
      }
    }
  }
  for (const TenantConfig& t : tenants_) {
    if (t.model >= models_.size()) {
      throw ServeError(ServeError::Reason::kConfig,
                       "tenant '" + t.name + "' references model " +
                           std::to_string(t.model) + " of " +
                           std::to_string(models_.size()));
    }
    if (t.weight < 1 || t.queue_capacity < 1 || t.batch_cap < 1 ||
        t.batch_age_cycles < 0 || t.deadline_cycles < 0) {
      throw ServeError(ServeError::Reason::kConfig,
                       "tenant '" + t.name + "' has an invalid config");
    }
  }
}

FleetServer::~FleetServer() = default;

FleetStats FleetServer::run(const std::vector<ArrivalTrace>& traces) {
  return run(traces, fault::FleetFaultPlan{});
}

FleetStats FleetServer::run(const std::vector<ArrivalTrace>& traces,
                            const fault::FleetFaultPlan& plan) {
  if (traces.size() != tenants_.size()) {
    throw ServeError(ServeError::Reason::kConfig,
                     "fleet run wants one trace per tenant (" +
                         std::to_string(tenants_.size()) + "), got " +
                         std::to_string(traces.size()));
  }
  for (std::size_t t = 0; t < traces.size(); ++t) {
    if (traces[t].burst.active()) {
      throw ServeError(ServeError::Reason::kConfig,
                       "fleet traces do not support fault bursts");
    }
    for (std::size_t i = 0; i < traces[t].requests.size(); ++i) {
      if (traces[t].requests[i].id != i) {
        throw ServeError(ServeError::Reason::kConfig,
                         "trace ids must be dense from 0 (tenant '" +
                             tenants_[t].name + "')");
      }
    }
  }
  fault::FleetFaultPlan chaos = plan;
  chaos.normalize();
  for (const fault::FleetFaultEvent& e : chaos.events) {
    if (e.kind == fault::FleetFaultKind::kCorruptBundle &&
        !cfg_.share_prepack) {
      throw ServeError(ServeError::Reason::kConfig,
                       "bundle-corruption faults need share_prepack (the "
                       "per-copy baseline has no shared resident to flip)");
    }
    if (e.kind == fault::FleetFaultKind::kSlow && e.slow_factor <= 1.0) {
      throw ServeError(ServeError::Reason::kConfig,
                       "slow-replica faults need slow_factor > 1");
    }
  }

  rung_logs_.assign(models_.size(), {});
  scale_log_.clear();
  health_log_.clear();

  FleetStats stats;
  stats.tenants.resize(tenants_.size());
  for (std::size_t t = 0; t < tenants_.size(); ++t) {
    stats.tenants[t].name = tenants_[t].name;
  }
  stats.models.resize(models_.size());
  for (std::size_t m = 0; m < models_.size(); ++m) {
    stats.models[m].name = models_[m].name;
    stats.models[m].rung_completions.assign(models_[m].ladder.rungs.size(),
                                            0);
  }

  // Merged arrival stream, ordered (cycle, tenant, id) — the global event
  // order every run sees regardless of threads.
  struct Arrival {
    long long cycle = 0;
    std::size_t tenant = 0;
    std::uint64_t id = 0;
  };
  std::vector<Arrival> arrivals;
  for (std::size_t t = 0; t < traces.size(); ++t) {
    for (const TraceRequest& r : traces[t].requests) {
      arrivals.push_back({r.arrival_cycle, t, r.id});
    }
  }
  std::sort(arrivals.begin(), arrivals.end(),
            [](const Arrival& a, const Arrival& b) {
              if (a.cycle != b.cycle) return a.cycle < b.cycle;
              if (a.tenant != b.tenant) return a.tenant < b.tenant;
              return a.id < b.id;
            });

  // ---- Dispatcher state (virtual time; workers never touch any of it). --
  PrepackCache cache(cfg_.share_prepack);

  struct BatchItem {
    std::size_t tenant = 0;
    std::uint64_t id = 0;
    long long arrival = 0;
  };
  struct Replica {
    enum class Health : std::uint8_t { kHealthy, kQuarantined, kProbation };
    int id = 0;
    long long busy_until = -1;  ///< -1 = free
    long long ready_at = 0;
    bool spinning = false;  ///< between spawn and its replica-ready event
    bool retired = false;
    // Fault-domain state. The dispatcher *applies* wedge/crash/slow strikes
    // but never reads them for scheduling decisions (it cannot know a
    // replica is sick until the health layer detects it) — except that a
    // wedged/crashed replica's batches simply never complete.
    Health health = Health::kHealthy;
    bool wedged = false;
    bool crashed = false;
    double slow_factor = 1.0;
    long long slow_until = 0;  ///< kInf = until quarantine replaces it
    std::unique_ptr<CircuitBreaker> gate;  ///< quarantine state machine
    bool probe_pending = false;  ///< mirror of the gate's probe slot
    std::deque<char> miss_ring;  ///< rolling service-overrun window
    int window_misses = 0;
    int consec_failures = 0;
    std::unique_ptr<RegimeController> regime;
    std::vector<std::unique_ptr<PrepackCache::Lease>> leases;  ///< per rung
  };
  struct ModelState {
    std::vector<Replica> replicas;
    int next_replica_id = 0;
    std::vector<std::size_t> tenant_ids;
    std::vector<long long> deficit;  ///< DRR, aligned with tenant_ids
    std::size_t drr_next = 0;        ///< next tenant_ids slot to visit
    long long batch_timer = kInf;    ///< armed virtual-age close cycle
    std::size_t cap_total = 0;       ///< sum of tenant queue capacities
    std::size_t up_depth = 0, down_depth = 0;  ///< autoscale watermarks
    int up_streak = 0, idle_streak = 0;
    long long last_scale = 0;
    std::vector<long long> service;  ///< per-rung service cycles
    std::deque<BatchItem> rescue;    ///< requeued at quarantine; served first
    std::deque<BatchItem> hedge_q;   ///< hedge copies awaiting a replica
  };
  std::vector<ModelState> mstate(models_.size());
  std::vector<std::deque<std::uint64_t>> tq(tenants_.size());
  for (std::size_t t = 0; t < tenants_.size(); ++t) {
    ModelState& ms = mstate[tenants_[t].model];
    ms.tenant_ids.push_back(t);
    ms.cap_total += tenants_[t].queue_capacity;
  }
  for (std::size_t m = 0; m < models_.size(); ++m) {
    ModelState& ms = mstate[m];
    if (ms.tenant_ids.empty()) {
      throw ServeError(ServeError::Reason::kConfig,
                       "model '" + models_[m].name + "' has no tenants");
    }
    ms.deficit.assign(ms.tenant_ids.size(), 0);
    ms.up_depth = static_cast<std::size_t>(
        cfg_.autoscale.up_queue_frac *
        static_cast<double>(ms.cap_total));
    ms.down_depth = static_cast<std::size_t>(
        cfg_.autoscale.down_queue_frac *
        static_cast<double>(ms.cap_total));
    for (const ServingMode& r : models_[m].ladder.rungs) {
      ms.service.push_back(r.service_cycles);
    }
  }

  struct InFlight {
    long long completion = 0;  ///< kInf while the replica is wedged/crashed
    long long dispatched = 0;
    long long nominal = 0;      ///< svc(b) at the dispatcher's price list
    long long watchdog_at = kInf;
    long long hedge_at = kInf;
    std::size_t model = 0;
    std::size_t replica = 0;  ///< index into mstate[model].replicas
    int rung = 0;
    bool hedged = false;    ///< hedge copies were cloned off this batch
    bool is_hedge = false;  ///< this batch carries hedge copies
    bool is_probe = false;  ///< probation probe batch
    std::vector<BatchItem> items;
    std::unique_ptr<FleetJob> job;
    std::future<std::vector<std::uint32_t>> fut;
  };
  std::vector<InFlight> inflight;
  // Cancelled batches whose real job may still be in the worker pipeline;
  // their promises resolve before the workers join, after which these are
  // safe to destroy. Futures are never read — the virtual outcome already
  // settled without them.
  std::vector<InFlight> zombies;
  // Live-copy ledger for hedging dedup: copies = dispatched duplicates plus
  // queued hedge clones; done = the request's single completion happened.
  // Entries exist only between first dispatch and last copy's resolution,
  // so the map stays O(in-flight), not O(trace).
  struct ReqState {
    int copies = 0;
    bool done = false;
  };
  std::map<std::uint64_t, ReqState> req_state;
  std::size_t next_arrival = 0;
  long long last_completion = 0;

  const auto bundle_key = [&](std::size_t m, int rung) {
    // (model, strategy/rung, datapath): the rung label carries the strategy
    // identity and the datapath mode is a function of the rung's choices.
    return models_[m].name + "/r" + std::to_string(rung);
  };
  const auto acquire_rung = [&](std::size_t m, Replica& rep, int rung,
                                long long now) {
    auto& slot = rep.leases[static_cast<std::size_t>(rung)];
    if (slot) return false;  // already leased; not a cache event
    auto lease = cache.acquire(bundle_key(m, rung), [&] {
      arch::FusionPipeline p(
          models_[m].net, models_[m].ws,
          models_[m].ladder.rungs[static_cast<std::size_t>(rung)].choices);
      return p.shared_prepack();
    });
    const bool hit = lease.hit;
    if (lease.scrubbed) {
      health_log_.push_back({now, HealthEvent::Kind::kScrub, m, rep.id});
    }
    slot = std::make_unique<PrepackCache::Lease>(std::move(lease));
    return hit;
  };
  const auto live_count = [&](const ModelState& ms) {
    int live = 0;
    for (const Replica& r : ms.replicas) {
      if (!r.retired) ++live;
    }
    return live;
  };
  const auto pending_total = [&](const ModelState& ms) {
    std::size_t total = 0;
    for (std::size_t t : ms.tenant_ids) total += tq[t].size();
    return total;
  };
  const auto model_cap = [&](std::size_t m) {
    std::size_t cap = 0;
    for (const std::size_t t : mstate[m].tenant_ids) {
      cap = cap == 0 ? tenants_[t].batch_cap
                     : std::min(cap, tenants_[t].batch_cap);
    }
    return std::max<std::size_t>(cap, 1);
  };

  const auto spawn_replica = [&](std::size_t m, long long now, bool initial) {
    ModelState& ms = mstate[m];
    Replica rep;
    rep.id = ms.next_replica_id++;
    rep.regime = std::make_unique<RegimeController>(
        ms.service, models_[m].ladder.home, ms.cap_total, cfg_.regime);
    rep.leases.resize(models_[m].ladder.rungs.size());
    BreakerConfig gate_cfg;
    gate_cfg.probe_successes = 1;  // single-probe probation
    rep.gate = std::make_unique<CircuitBreaker>(gate_cfg);
    // The home-rung bundle decides cold vs warm: a cold spin-up derives the
    // constants, a warm one adopts the resident copy a peer already built.
    const bool hit = acquire_rung(
        m, rep, static_cast<int>(models_[m].ladder.home), now);
    const long long spinup = hit ? cfg_.autoscale.spinup_warm_cycles
                                 : cfg_.autoscale.spinup_cold_cycles;
    if (hit) {
      ++stats.models[m].warm_spinups;
    } else {
      ++stats.models[m].cold_spinups;
    }
    if (initial) {
      // Initial replicas are pre-warmed before traffic: ready at cycle 0,
      // their (modeled) spin-up happened offline and is not charged.
      rep.ready_at = 0;
    } else {
      rep.ready_at = now + spinup;
      rep.spinning = true;
      stats.models[m].spinup_cycles += spinup;
    }
    ms.replicas.push_back(std::move(rep));
    stats.models[m].replica_peak =
        std::max(stats.models[m].replica_peak, live_count(ms));
  };

  for (std::size_t m = 0; m < models_.size(); ++m) {
    for (int k = 0; k < models_[m].replicas; ++k) {
      spawn_replica(m, 0, /*initial=*/true);
    }
  }

  // ---- Real execution machinery: ONE shared job queue + worker set for
  // the whole fleet. Replicas are virtual-time capacity, not threads — a
  // 32-replica fleet on a 4-core box still runs at most resolve_threads()
  // workers, all drawing kernel parallelism from the one process pool.
  int max_replicas_total = 0;
  for (std::size_t m = 0; m < models_.size(); ++m) {
    max_replicas_total += cfg_.autoscale.enabled
                              ? std::max(cfg_.autoscale.max_replicas,
                                         models_[m].replicas)
                              : models_[m].replicas;
  }
  // Headroom beyond one-batch-per-replica: cancelled (zombie) jobs linger
  // in the queue until a worker pops them, and quarantine bursts can stack
  // a few; the bound only back-pressures the dispatcher, never drops.
  BoundedQueue<FleetJob*> exec_q(
      static_cast<std::size_t>(max_replicas_total) * 2 + 4);
  const int worker_count =
      std::max(1, std::min(kernels::resolve_threads(cfg_.threads),
                           max_replicas_total));
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(worker_count));
  for (int w = 0; w < worker_count; ++w) {
    workers.emplace_back([this, &exec_q] {
      // Worker-owned warm pipelines, one per (model, rung) this worker
      // actually serves — every one adopts the dispatcher's shared bundle,
      // so construction skips the pack/transform work entirely.
      std::map<std::pair<std::size_t, int>,
               std::unique_ptr<arch::FusionPipeline>>
          pipes;
      FleetJob* job = nullptr;
      while (exec_q.pop(job)) {
        std::vector<std::uint32_t> crcs;
        arch::FusionPipeline* pipe = nullptr;
        try {
          auto& slot = pipes[{job->model, job->rung}];
          if (!slot) {
            slot = std::make_unique<arch::FusionPipeline>(
                models_[job->model].net, models_[job->model].ws,
                models_[job->model]
                    .ladder.rungs[static_cast<std::size_t>(job->rung)]
                    .choices,
                job->bundle);
          }
          pipe = slot.get();
          pipe->set_cancel_token(&job->cancel);
          crcs.reserve(job->seeds.size());
          for (const std::uint32_t seed : job->seeds) {
            nn::Tensor in(models_[job->model].net[0].out);
            nn::fill_deterministic(in, seed);
            const nn::Tensor out = pipe->run(in);
            crcs.push_back(fault::crc32_f32(out.data(), out.vec().size()));
          }
        } catch (const std::exception&) {
          // Execution failure OR cooperative cancellation — either way the
          // batch carries no usable CRCs. The dispatcher distinguishes the
          // two by whether it cancelled the job itself.
          crcs.clear();
        }
        if (pipe) pipe->set_cancel_token(nullptr);
        job->done.set_value(std::move(crcs));
      }
    });
  }

  // ---- The discrete-event loop. Event ties resolve fault strikes <
  // completions < replica-ready < watchdog < hedge fire < batch-close
  // timers < arrivals: faults land before anything else observes the cycle,
  // capacity frees and comes online before sickness is judged, detection
  // beats duplication, and both beat new admission.
  // Deterministic batch close rule: dispatch when pending >= the effective
  // cap (min over tenants with queued work) OR the oldest pending request
  // of some tenant has aged past that tenant's budget. Otherwise arm the
  // model's close timer at the earliest such age-out cycle.
  const auto form_batch = [&](std::size_t m,
                              long long now) -> std::vector<BatchItem> {
    ModelState& ms = mstate[m];
    std::size_t avail = 0;
    std::size_t cap = 0;
    long long close_at = kInf;
    for (const std::size_t t : ms.tenant_ids) {
      if (tq[t].empty()) continue;
      avail += tq[t].size();
      cap = cap == 0 ? tenants_[t].batch_cap
                     : std::min(cap, tenants_[t].batch_cap);
      const TraceRequest& front = traces[t].requests[tq[t].front()];
      close_at = std::min(close_at, front.arrival_cycle +
                                        tenants_[t].batch_age_cycles);
    }
    if (avail == 0) return {};
    if (avail < cap && now < close_at) {
      ms.batch_timer = std::min(
          ms.batch_timer == kInf ? close_at : ms.batch_timer, close_at);
      return {};
    }
    // Deficit round-robin over the model's tenants: quantum = weight, cost
    // 1 per request. A drained queue forfeits its deficit (standard DRR),
    // so an idle tenant cannot bank service.
    std::vector<BatchItem> batch;
    const std::size_t T = ms.tenant_ids.size();
    while (batch.size() < cap) {
      bool any = false;
      for (const std::size_t t : ms.tenant_ids) {
        if (!tq[t].empty()) {
          any = true;
          break;
        }
      }
      if (!any) break;
      const std::size_t ti = ms.drr_next;
      const std::size_t t = ms.tenant_ids[ti];
      if (tq[t].empty()) {
        ms.deficit[ti] = 0;
        ms.drr_next = (ti + 1) % T;
        continue;
      }
      ms.deficit[ti] += tenants_[t].weight;
      while (ms.deficit[ti] >= 1 && !tq[t].empty() && batch.size() < cap) {
        const std::uint64_t id = tq[t].front();
        tq[t].pop_front();
        const TraceRequest& req = traces[t].requests[id];
        if (tenants_[t].deadline_cycles > 0 &&
            now > req.arrival_cycle + tenants_[t].deadline_cycles) {
          // Load-shedding: already late at dispatch — free to drop, so it
          // does not consume the tenant's deficit.
          ++stats.tenants[t].shed_deadline;
          continue;
        }
        batch.push_back({t, id, req.arrival_cycle});
        --ms.deficit[ti];
      }
      if (tq[t].empty()) ms.deficit[ti] = 0;
      if (batch.size() >= cap) {
        // Mid-round stop: the pointer stays on a tenant with live deficit
        // and queued work (it resumes first), advances otherwise.
        if (tq[t].empty() || ms.deficit[ti] < 1) ms.drr_next = (ti + 1) % T;
        break;
      }
      ms.drr_next = (ti + 1) % T;
    }
    return batch;
  };

  const auto try_dispatch = [&](std::size_t m, long long now) {
    ModelState& ms = mstate[m];
    while (true) {
      // Free-replica scan: healthy first, then a probation replica whose
      // single probe slot is open (index order == id order, so the pick is
      // a pure function of the virtual schedule).
      int k = -1;
      bool probe = false;
      for (std::size_t i = 0; i < ms.replicas.size(); ++i) {
        const Replica& r = ms.replicas[i];
        if (r.retired || r.spinning || r.busy_until >= 0) continue;
        if (r.health == Replica::Health::kHealthy) {
          k = static_cast<int>(i);
          break;
        }
      }
      if (k < 0) {
        for (std::size_t i = 0; i < ms.replicas.size(); ++i) {
          const Replica& r = ms.replicas[i];
          if (r.retired || r.spinning || r.busy_until >= 0) continue;
          if (r.health == Replica::Health::kProbation && !r.probe_pending) {
            k = static_cast<int>(i);
            probe = true;
            break;
          }
        }
      }
      if (k < 0) return;
      // Batch class priority: quarantine rescues, then hedge copies, then
      // fresh DRR work. Rescue/hedge batches bypass the close rule — their
      // requests were already admitted and are already late.
      const std::size_t cap = model_cap(m);
      std::vector<BatchItem> batch;
      bool is_hedge = false;
      while (!ms.rescue.empty() && batch.size() < cap) {
        const BatchItem it = ms.rescue.front();
        ms.rescue.pop_front();
        const TenantConfig& tc = tenants_[it.tenant];
        if (tc.deadline_cycles > 0 &&
            now > it.arrival + tc.deadline_cycles) {
          ++stats.tenants[it.tenant].shed_deadline;
          req_state.erase(request_key(it.tenant, it.id));
          continue;
        }
        batch.push_back(it);
      }
      if (batch.empty()) {
        while (!ms.hedge_q.empty() && batch.size() < cap) {
          const BatchItem it = ms.hedge_q.front();
          ms.hedge_q.pop_front();
          auto st = req_state.find(request_key(it.tenant, it.id));
          if (st == req_state.end() || st->second.done) {
            // The original finished while this copy queued — drop it.
            if (st != req_state.end() && --st->second.copies == 0) {
              req_state.erase(st);
            }
            continue;
          }
          batch.push_back(it);
          is_hedge = true;
        }
      }
      if (batch.empty()) batch = form_batch(m, now);
      if (batch.empty()) return;
      Replica& rep = ms.replicas[static_cast<std::size_t>(k)];
      const int rung = rep.regime->rung();
      acquire_rung(m, rep, rung, now);  // deterministic cache event
      const long long service =
          ms.service[static_cast<std::size_t>(rung)];
      const long long setup =
          static_cast<long long>(static_cast<double>(service) *
                                 cfg_.batch_setup_frac);
      const long long nominal =
          setup + static_cast<long long>(batch.size()) * (service - setup);
      // The dispatcher prices the batch at the *nominal* rate — it cannot
      // know the replica is sick. The fault only shows in when (whether)
      // the completion event actually fires.
      long long actual = nominal;
      if (rep.slow_factor > 1.0 && now < rep.slow_until) {
        actual = static_cast<long long>(static_cast<double>(nominal) *
                                        rep.slow_factor);
      }
      InFlight f;
      f.completion =
          (rep.wedged || rep.crashed) ? kInf : now + actual;
      f.dispatched = now;
      f.nominal = nominal;
      f.model = m;
      f.replica = static_cast<std::size_t>(k);
      f.rung = rung;
      f.is_hedge = is_hedge;
      f.items = std::move(batch);
      if (cfg_.health.enabled) {
        f.watchdog_at =
            now + static_cast<long long>(cfg_.health.watchdog_factor *
                                         static_cast<double>(nominal));
      }
      if (cfg_.hedge.enabled && !is_hedge && !probe) {
        f.hedge_at = now + nominal + cfg_.hedge.delay_cycles;
      }
      if (probe) {
        (void)rep.gate->try_acquire_probe(now);  // scan guaranteed the slot
        rep.probe_pending = true;
        f.is_probe = true;
        ++stats.probes;
        health_log_.push_back({now, HealthEvent::Kind::kProbe, m, rep.id});
      }
      // Live-copy ledger: hedge copies were already counted at clone time.
      if (!is_hedge) {
        for (const BatchItem& it : f.items) {
          ++req_state[request_key(it.tenant, it.id)].copies;
        }
      }
      f.job = std::make_unique<FleetJob>();
      f.job->model = m;
      f.job->rung = rung;
      f.job->bundle =
          rep.leases[static_cast<std::size_t>(rung)]->bundle;
      for (const BatchItem& it : f.items) {
        f.job->seeds.push_back(
            traces[it.tenant].requests[it.id].input_seed);
      }
      f.fut = f.job->done.get_future();
      rep.busy_until = f.completion;
      ++stats.models[m].batches;
      auto& hist = stats.models[m].batch_size_counts;
      if (hist.size() <= f.items.size()) hist.resize(f.items.size() + 1, 0);
      ++hist[f.items.size()];
      exec_q.push(f.job.get());
      inflight.push_back(std::move(f));
    }
  };

  const auto maybe_scale = [&](std::size_t m, long long now) {
    const AutoscaleConfig& as = cfg_.autoscale;
    if (!as.enabled) return;
    ModelState& ms = mstate[m];
    const int live = live_count(ms);
    if (ms.up_streak >= as.up_streak && live < as.max_replicas &&
        now - ms.last_scale >= as.dwell_cycles) {
      spawn_replica(m, now, /*initial=*/false);
      ++stats.models[m].scale_ups;
      scale_log_.push_back({now, m, true, live + 1});
      ms.up_streak = 0;
      ms.last_scale = now;
      return;
    }
    if (ms.idle_streak >= as.down_streak && live > as.min_replicas &&
        now - ms.last_scale >= as.dwell_cycles) {
      // Retire the youngest free, ready, *healthy* replica; quarantined or
      // probing replicas are mid-recovery and keep their slot.
      for (std::size_t i = ms.replicas.size(); i-- > 0;) {
        Replica& r = ms.replicas[i];
        if (r.retired || r.spinning || r.busy_until >= 0 ||
            r.health != Replica::Health::kHealthy) {
          continue;
        }
        r.retired = true;
        r.regime->finish(now);
        for (auto& lease : r.leases) {
          if (lease) cache.release(*lease);
          lease.reset();
        }
        ++stats.models[m].scale_downs;
        scale_log_.push_back({now, m, false, live - 1});
        ms.idle_streak = 0;
        ms.last_scale = now;
        return;
      }
    }
  };

  // Quarantine: isolate the replica, cancel + rescue its in-flight batch,
  // and respawn it in place through the cold/warm spin-up ledger. The gate
  // breaker opens with the spin-up as cooldown, so the replica-ready event
  // lands exactly when half-open probation can begin.
  const auto quarantine = [&](std::size_t m, std::size_t ki, long long now) {
    ModelState& ms = mstate[m];
    Replica& rep = ms.replicas[ki];
    if (rep.health == Replica::Health::kQuarantined) return;
    ++stats.quarantines;
    health_log_.push_back(
        {now, HealthEvent::Kind::kQuarantine, m, rep.id});
    for (std::size_t i = 0; i < inflight.size();) {
      InFlight& f = inflight[i];
      if (f.model != m || f.replica != ki) {
        ++i;
        continue;
      }
      f.job->cancel.store(true, std::memory_order_relaxed);
      for (const BatchItem& it : f.items) {
        auto st = req_state.find(request_key(it.tenant, it.id));
        if (--st->second.copies == 0) {
          if (st->second.done) {
            req_state.erase(st);
          } else {
            // No other copy will complete this request: rescue it. It goes
            // back through dispatch (and its deadline check) — never lost.
            ms.rescue.push_back(it);
            ++stats.requeued;
          }
        }
      }
      zombies.push_back(std::move(f));
      inflight.erase(inflight.begin() + static_cast<long>(i));
    }
    // Fresh incarnation: the fault dies with the old one.
    rep.wedged = false;
    rep.crashed = false;
    rep.slow_factor = 1.0;
    rep.slow_until = 0;
    rep.busy_until = -1;
    rep.probe_pending = false;
    rep.miss_ring.clear();
    rep.window_misses = 0;
    rep.consec_failures = 0;
    rep.health = Replica::Health::kQuarantined;
    for (auto& lease : rep.leases) {
      if (lease) cache.release(*lease);
      lease.reset();
    }
    const bool hit = acquire_rung(
        m, rep, static_cast<int>(models_[m].ladder.home), now);
    const long long spinup = hit ? cfg_.autoscale.spinup_warm_cycles
                                 : cfg_.autoscale.spinup_cold_cycles;
    if (hit) {
      ++stats.models[m].warm_spinups;
    } else {
      ++stats.models[m].cold_spinups;
    }
    stats.models[m].spinup_cycles += spinup;
    rep.ready_at = now + spinup;
    rep.spinning = true;
    rep.gate->force_open(now, spinup);
  };

  const auto handle_completion = [&](InFlight f) {
    const long long now = f.completion;
    last_completion = std::max(last_completion, now);
    std::vector<std::uint32_t> crcs = f.fut.get();  // may still be running
    ModelState& ms = mstate[f.model];
    Replica& rep = ms.replicas[f.replica];
    rep.busy_until = -1;
    const bool ok = crcs.size() == f.items.size();
    const int home = static_cast<int>(models_[f.model].ladder.home);
    long long delivered = 0;
    for (std::size_t i = 0; i < f.items.size(); ++i) {
      const BatchItem& it = f.items[i];
      TenantStats& ts = stats.tenants[it.tenant];
      auto st_it = req_state.find(request_key(it.tenant, it.id));
      ReqState& st = st_it->second;
      --st.copies;
      if (!ok) {
        // Failed execution: terminal only when this was the last copy.
        if (st.copies == 0) {
          if (!st.done) ++ts.failed;
          req_state.erase(st_it);
        }
        continue;
      }
      if (st.done) {
        // Hedge race loser: the request already completed elsewhere. Dedup
        // keeps accounted() exact and the digest single-voiced.
        if (st.copies == 0) req_state.erase(st_it);
        continue;
      }
      st.done = true;
      ++delivered;
      const long long lat = now - it.arrival;
      ++ts.completed;
      ts.latency.record(lat);
      if (f.rung != home) ++ts.completed_degraded;
      if (f.is_hedge) ++stats.hedge_wins;
      stats.response_hash += mix64(
          request_key(it.tenant, it.id) * 0x9E3779B97F4A7C15ull ^ crcs[i]);
      const bool late = tenants_[it.tenant].deadline_cycles > 0 &&
                        lat > tenants_[it.tenant].deadline_cycles;
      if (late) ++ts.deadline_misses;
      rep.regime->observe_completion(now, late);
      if (st.copies == 0) req_state.erase(st_it);
    }
    if (ok) {
      stats.models[f.model]
          .rung_completions[static_cast<std::size_t>(f.rung)] += delivered;
    }

    if (f.is_probe) {
      rep.probe_pending = false;
      const bool overran = now - f.dispatched > f.nominal;
      if (ok && !overran) {
        rep.gate->record_success(now);  // half-open -> closed (1 probe)
        rep.health = Replica::Health::kHealthy;
        rep.miss_ring.clear();
        rep.window_misses = 0;
        rep.consec_failures = 0;
        ++stats.readmits;
        health_log_.push_back(
            {now, HealthEvent::Kind::kReadmit, f.model, rep.id});
      } else {
        health_log_.push_back(
            {now, HealthEvent::Kind::kProbeFail, f.model, rep.id});
        quarantine(f.model, f.replica, now);
      }
    } else if (cfg_.health.enabled &&
               rep.health == Replica::Health::kHealthy) {
      if (!ok) {
        if (++rep.consec_failures >= cfg_.health.failure_threshold) {
          quarantine(f.model, f.replica, now);
        }
      } else {
        rep.consec_failures = 0;
        // Replica-attributable miss: the batch overran its nominal svc(b).
        // Honest replicas complete exactly on time in virtual time, so the
        // window only ever fills on a sick one.
        const bool overran = now - f.dispatched > f.nominal;
        rep.miss_ring.push_back(overran ? 1 : 0);
        if (overran) ++rep.window_misses;
        if (static_cast<int>(rep.miss_ring.size()) >
            cfg_.health.miss_window) {
          if (rep.miss_ring.front()) --rep.window_misses;
          rep.miss_ring.pop_front();
        }
        if (rep.window_misses >= cfg_.health.miss_threshold) {
          quarantine(f.model, f.replica, now);
        }
      }
    }

    if (cfg_.autoscale.enabled && pending_total(ms) == 0) {
      ++ms.idle_streak;
      ms.up_streak = 0;
    }
    maybe_scale(f.model, now);
  };

  // A batch whose every request already completed elsewhere (its hedges all
  // won) is pure waste: cancel the real work and free the replica now.
  // Wedged/crashed replicas stay busy — there is nothing to free — and
  // probes run to completion (probation needs their verdict).
  const auto reap_deduped = [&](long long now) {
    for (std::size_t i = 0; i < inflight.size();) {
      InFlight& f = inflight[i];
      const Replica& rep = mstate[f.model].replicas[f.replica];
      if (f.is_probe || rep.wedged || rep.crashed) {
        ++i;
        continue;
      }
      bool all_done = !f.items.empty();
      for (const BatchItem& it : f.items) {
        auto st = req_state.find(request_key(it.tenant, it.id));
        if (st == req_state.end() || !st->second.done) {
          all_done = false;
          break;
        }
      }
      if (!all_done) {
        ++i;
        continue;
      }
      f.job->cancel.store(true, std::memory_order_relaxed);
      for (const BatchItem& it : f.items) {
        auto st = req_state.find(request_key(it.tenant, it.id));
        if (st != req_state.end() && --st->second.copies == 0) {
          req_state.erase(st);
        }
      }
      const std::size_t m = f.model;
      mstate[m].replicas[f.replica].busy_until = -1;
      zombies.push_back(std::move(f));
      inflight.erase(inflight.begin() + static_cast<long>(i));
      try_dispatch(m, now);
    }
  };

  const auto find_replica = [&](std::size_t m, int id) -> int {
    const ModelState& ms = mstate[m];
    for (std::size_t i = 0; i < ms.replicas.size(); ++i) {
      if (ms.replicas[i].id == id) return static_cast<int>(i);
    }
    return -1;
  };
  const auto apply_fault = [&](const fault::FleetFaultEvent& e) {
    const long long now = e.cycle;
    if (e.model >= models_.size()) return;
    if (e.kind == fault::FleetFaultKind::kCorruptBundle) {
      const int rung = e.rung < 0
                           ? static_cast<int>(models_[e.model].ladder.home)
                           : e.rung;
      if (rung >= static_cast<int>(models_[e.model].ladder.rungs.size())) {
        return;
      }
      if (cache.corrupt_resident(bundle_key(e.model, rung))) {
        health_log_.push_back(
            {now, HealthEvent::Kind::kCorrupted, e.model, -1});
      }
      return;
    }
    const int ki = find_replica(e.model, e.replica);
    if (ki < 0) return;
    Replica& rep = mstate[e.model].replicas[static_cast<std::size_t>(ki)];
    if (rep.retired || rep.spinning ||
        rep.health != Replica::Health::kHealthy) {
      return;  // already out of service — the strike is a no-op
    }
    switch (e.kind) {
      case fault::FleetFaultKind::kWedge:
        rep.wedged = true;
        health_log_.push_back(
            {now, HealthEvent::Kind::kWedged, e.model, rep.id});
        // The in-flight batch will never virtually complete; only the
        // watchdog (or a hedge) can save its requests now.
        for (InFlight& f : inflight) {
          if (f.model == e.model &&
              f.replica == static_cast<std::size_t>(ki)) {
            f.completion = kInf;
          }
        }
        if (rep.busy_until >= 0) rep.busy_until = kInf;
        break;
      case fault::FleetFaultKind::kSlow:
        rep.slow_factor = e.slow_factor;
        rep.slow_until =
            e.slow_duration > 0 ? now + e.slow_duration : kInf;
        health_log_.push_back(
            {now, HealthEvent::Kind::kSlowed, e.model, rep.id});
        break;
      case fault::FleetFaultKind::kCrash:
        rep.crashed = true;
        health_log_.push_back(
            {now, HealthEvent::Kind::kCrashed, e.model, rep.id});
        if (cfg_.health.enabled) {
          // The virtual machine-check: detection is immediate.
          quarantine(e.model, static_cast<std::size_t>(ki), now);
          try_dispatch(e.model, now);
        } else {
          for (InFlight& f : inflight) {
            if (f.model == e.model &&
                f.replica == static_cast<std::size_t>(ki)) {
              f.completion = kInf;
            }
          }
          if (rep.busy_until >= 0) rep.busy_until = kInf;
        }
        break;
      case fault::FleetFaultKind::kCorruptBundle:
        break;  // handled above
    }
  };

  const std::size_t n_arrivals = arrivals.size();
  std::size_t next_fault = 0;
  const auto queues_empty = [&] {
    for (const auto& q : tq) {
      if (!q.empty()) return false;
    }
    for (const ModelState& ms : mstate) {
      if (!ms.rescue.empty() || !ms.hedge_q.empty()) return false;
    }
    return true;
  };
  const auto any_spinning = [&] {
    for (const ModelState& ms : mstate) {
      for (const Replica& r : ms.replicas) {
        if (r.spinning) return true;
      }
    }
    return false;
  };

  try {
    while (next_arrival < n_arrivals || !inflight.empty() ||
           !queues_empty() || any_spinning()) {
      const long long t_fault = next_fault < chaos.events.size()
                                    ? chaos.events[next_fault].cycle
                                    : kInf;
      const long long t_arr = next_arrival < n_arrivals
                                  ? arrivals[next_arrival].cycle
                                  : kInf;
      long long t_comp = kInf;
      long long t_watch = kInf;
      long long t_hedge = kInf;
      for (const InFlight& f : inflight) {
        t_comp = std::min(t_comp, f.completion);
        t_watch = std::min(t_watch, f.watchdog_at);
        if (!f.hedged) t_hedge = std::min(t_hedge, f.hedge_at);
      }
      long long t_ready = kInf;
      for (const ModelState& ms : mstate) {
        for (const Replica& r : ms.replicas) {
          if (r.spinning) t_ready = std::min(t_ready, r.ready_at);
        }
      }
      long long t_timer = kInf;
      for (const ModelState& ms : mstate) {
        t_timer = std::min(t_timer, ms.batch_timer);
      }

      if (t_fault < kInf && t_fault <= t_comp && t_fault <= t_ready &&
          t_fault <= t_watch && t_fault <= t_hedge && t_fault <= t_timer &&
          t_fault <= t_arr) {
        apply_fault(chaos.events[next_fault]);
        ++next_fault;
      } else if (t_comp < kInf && t_comp <= t_ready && t_comp <= t_watch &&
                 t_comp <= t_hedge && t_comp <= t_timer && t_comp <= t_arr) {
        // Earliest completion; ties broken by (model, replica, first item)
        // so the pick order is a pure function of the virtual schedule.
        std::size_t best = 0;
        for (std::size_t i = 1; i < inflight.size(); ++i) {
          const InFlight& a = inflight[i];
          const InFlight& b = inflight[best];
          if (a.completion < b.completion ||
              (a.completion == b.completion &&
               (a.model < b.model ||
                (a.model == b.model && a.replica < b.replica)))) {
            best = i;
          }
        }
        InFlight f = std::move(inflight[best]);
        inflight.erase(inflight.begin() + static_cast<long>(best));
        const std::size_t m = f.model;
        handle_completion(std::move(f));
        reap_deduped(t_comp);
        try_dispatch(m, t_comp);
      } else if (t_ready < kInf && t_ready <= t_watch &&
                 t_ready <= t_hedge && t_ready <= t_timer &&
                 t_ready <= t_arr) {
        std::size_t best_m = 0;
        int best_r = -1;
        for (std::size_t m = 0; m < mstate.size() && best_r < 0; ++m) {
          for (const Replica& r : mstate[m].replicas) {
            if (r.spinning && r.ready_at == t_ready) {
              best_m = m;
              best_r = r.id;
              break;
            }
          }
        }
        for (Replica& r : mstate[best_m].replicas) {
          if (r.id != best_r) continue;
          r.spinning = false;
          if (r.health == Replica::Health::kQuarantined) {
            // Respawn finished; the gate's cooldown == spin-up, so reading
            // the state commits open -> half-open and probation begins.
            (void)r.gate->state(t_ready);
            r.health = Replica::Health::kProbation;
            health_log_.push_back(
                {t_ready, HealthEvent::Kind::kRespawn, best_m, r.id});
          }
        }
        try_dispatch(best_m, t_ready);
      } else if (t_watch < kInf && t_watch <= t_hedge &&
                 t_watch <= t_timer && t_watch <= t_arr) {
        // Watchdog: a batch overdue past watchdog_factor x nominal means
        // its replica wedged. Quarantine cancels + rescues the batch.
        std::size_t best = inflight.size();
        for (std::size_t i = 0; i < inflight.size(); ++i) {
          const InFlight& f = inflight[i];
          if (f.watchdog_at != t_watch) continue;
          if (best == inflight.size() ||
              f.model < inflight[best].model ||
              (f.model == inflight[best].model &&
               f.replica < inflight[best].replica)) {
            best = i;
          }
        }
        const std::size_t m = inflight[best].model;
        const std::size_t ki = inflight[best].replica;
        quarantine(m, ki, t_watch);
        try_dispatch(m, t_watch);
      } else if (t_hedge < kInf && t_hedge <= t_timer && t_hedge <= t_arr) {
        // Hedge fire: clone the straggling batch's unfinished requests onto
        // the model's hedge queue; the next free replica picks them up.
        std::size_t best = inflight.size();
        for (std::size_t i = 0; i < inflight.size(); ++i) {
          const InFlight& f = inflight[i];
          if (f.hedged || f.hedge_at != t_hedge) continue;
          if (best == inflight.size() ||
              f.model < inflight[best].model ||
              (f.model == inflight[best].model &&
               f.replica < inflight[best].replica)) {
            best = i;
          }
        }
        InFlight& f = inflight[best];
        f.hedged = true;
        ModelState& ms = mstate[f.model];
        for (const BatchItem& it : f.items) {
          auto st = req_state.find(request_key(it.tenant, it.id));
          if (st == req_state.end() || st->second.done) continue;
          ++st->second.copies;
          ms.hedge_q.push_back(it);
          ++stats.hedges_fired;
        }
        try_dispatch(f.model, t_hedge);
      } else if (t_timer < kInf && t_timer <= t_arr) {
        for (std::size_t m = 0; m < mstate.size(); ++m) {
          if (mstate[m].batch_timer == t_timer) {
            mstate[m].batch_timer = kInf;
            try_dispatch(m, t_timer);
            break;  // one timer event per loop turn keeps ordering simple
          }
        }
      } else if (t_arr < kInf) {
        const Arrival& a = arrivals[next_arrival];
        ++next_arrival;
        const std::size_t t = a.tenant;
        const std::size_t m = tenants_[t].model;
        ModelState& ms = mstate[m];
        TenantStats& ts = stats.tenants[t];
        ++ts.submitted;
        if (tq[t].size() >= tenants_[t].queue_capacity) {
          ++ts.rejected_queue_full;
        } else {
          tq[t].push_back(a.id);
          ts.queue_peak = std::max(ts.queue_peak,
                                   static_cast<long long>(tq[t].size()));
        }
        const std::size_t depth = pending_total(ms);
        for (Replica& r : ms.replicas) {
          if (!r.retired) r.regime->observe_queue(a.cycle, depth);
        }
        if (cfg_.autoscale.enabled) {
          if (depth >= std::max<std::size_t>(ms.up_depth, 1)) {
            ++ms.up_streak;
            ms.idle_streak = 0;
          } else if (depth <= ms.down_depth) {
            ++ms.idle_streak;
            ms.up_streak = 0;
          } else {
            ms.up_streak = 0;
            ms.idle_streak = 0;
          }
          maybe_scale(m, a.cycle);
        }
        try_dispatch(m, a.cycle);
      } else {
        // No event can fire: only wedged batches (health + hedging both
        // off) remain. Their requests are lost — the accounting surfaces
        // it — but the real jobs must still resolve before the join.
        break;
      }
    }
  } catch (...) {
    for (InFlight& f : inflight) {
      f.job->cancel.store(true, std::memory_order_relaxed);
    }
    exec_q.close();
    for (auto& w : workers) w.join();
    throw;
  }

  for (InFlight& f : inflight) {
    f.job->cancel.store(true, std::memory_order_relaxed);
    zombies.push_back(std::move(f));
  }
  inflight.clear();

  exec_q.close();
  for (auto& w : workers) w.join();
  // Workers have drained the queue: every zombie promise is resolved, so
  // the zombie jobs (and their unread futures) are safe to destroy now.
  zombies.clear();

  for (std::size_t m = 0; m < models_.size(); ++m) {
    for (const Replica& r : mstate[m].replicas) {
      if (!r.retired && (r.health != Replica::Health::kHealthy ||
                         r.wedged || r.crashed)) {
        ++stats.unrecovered_replicas;
      }
    }
  }

  // Close the rung timelines and fold them — plus the scale and
  // fault-domain timelines — into the digest, exactly as Server does for
  // its single ladder walk.
  for (std::size_t m = 0; m < models_.size(); ++m) {
    ModelState& ms = mstate[m];
    rung_logs_[m].resize(static_cast<std::size_t>(ms.next_replica_id));
    for (Replica& r : ms.replicas) {
      if (!r.retired) r.regime->finish(last_completion);
      rung_logs_[m][static_cast<std::size_t>(r.id)] = r.regime->log();
      stats.models[m].rung_transitions +=
          static_cast<long long>(r.regime->log().size());
      for (const RungTransition& t : r.regime->log()) {
        stats.response_hash += mix64(
            static_cast<std::uint64_t>(t.cycle) * 0x2545F4914F6CDD1Dull ^
            (static_cast<std::uint64_t>(m + 1) << 40) ^
            (static_cast<std::uint64_t>(static_cast<unsigned>(r.id)) << 32) ^
            (static_cast<std::uint64_t>(static_cast<unsigned>(t.from))
             << 24) ^
            (static_cast<std::uint64_t>(static_cast<unsigned>(t.to))
             << 16) ^
            static_cast<std::uint64_t>(static_cast<unsigned>(t.reason)));
      }
    }
  }
  for (const ScaleEvent& e : scale_log_) {
    stats.response_hash += mix64(
        static_cast<std::uint64_t>(e.cycle) * 0xD1B54A32D192ED03ull ^
        (static_cast<std::uint64_t>(e.model + 1) << 8) ^
        (e.up ? 0x100u : 0u) ^
        static_cast<std::uint64_t>(static_cast<unsigned>(e.replicas_after)));
  }
  for (const HealthEvent& e : health_log_) {
    stats.response_hash += mix64(
        static_cast<std::uint64_t>(e.cycle) * 0x9FB21C651E98DF25ull ^
        (static_cast<std::uint64_t>(e.model + 1) << 20) ^
        (static_cast<std::uint64_t>(static_cast<unsigned>(e.replica + 2))
         << 8) ^
        static_cast<std::uint64_t>(static_cast<unsigned>(e.kind)));
  }

  stats.makespan_cycles = last_completion;
  stats.cache = cache.stats();  // snapshot with live leases still resident
  stats.bundles_scrubbed = stats.cache.scrubs;
  stats.response_hash += mix64(
      static_cast<std::uint64_t>(stats.hedges_fired) * 0xD6E8FEB86659FD93ull ^
      (static_cast<std::uint64_t>(stats.hedge_wins) << 40) ^
      (static_cast<std::uint64_t>(stats.quarantines) << 24) ^
      (static_cast<std::uint64_t>(stats.probes) << 12) ^
      static_cast<std::uint64_t>(stats.readmits));
  stats.response_hash += mix64(
      static_cast<std::uint64_t>(stats.requeued) * 0xA0761D6478BD642Full ^
      (static_cast<std::uint64_t>(stats.bundles_scrubbed) << 8) ^
      static_cast<std::uint64_t>(stats.unrecovered_replicas));
  return stats;
}

}  // namespace hetacc::serve
