#include "serve/fleet.h"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <future>
#include <limits>
#include <map>
#include <sstream>
#include <thread>

#include "fault/crc32.h"
#include "kernels/parallel.h"
#include "serve/queue.h"
#include "support/error.h"

namespace hetacc::serve {

namespace {

constexpr long long kInf = std::numeric_limits<long long>::max();

/// splitmix64 finalizer — same digest primitive as serve/server.cpp, so the
/// fleet hash has the same order-independence properties.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Globally unique request key for the response digest.
constexpr std::uint64_t request_key(std::size_t tenant, std::uint64_t id) {
  return ((static_cast<std::uint64_t>(tenant) + 1) << 32) ^ (id + 1);
}

/// One coalesced dispatch: a batch of same-(model, rung) requests ground
/// through a warm pipeline by whichever worker picks it up. The response
/// CRCs come back index-aligned with `seeds`; an empty vector signals an
/// execution error (cannot happen without a fault plan, but accounted as
/// `failed` rather than lost).
struct FleetJob {
  std::size_t model = 0;
  int rung = 0;
  std::shared_ptr<const arch::PrepackBundle> bundle;
  std::vector<std::uint32_t> seeds;
  std::promise<std::vector<std::uint32_t>> done;
};

}  // namespace

bool TenantStats::operator==(const TenantStats& o) const {
  return name == o.name && submitted == o.submitted &&
         rejected_queue_full == o.rejected_queue_full &&
         shed_deadline == o.shed_deadline && completed == o.completed &&
         failed == o.failed && deadline_misses == o.deadline_misses &&
         completed_degraded == o.completed_degraded &&
         queue_peak == o.queue_peak && latency == o.latency;
}

double ModelStats::mean_batch() const {
  if (batches == 0) return 0.0;
  long long requests = 0;
  for (std::size_t b = 0; b < batch_size_counts.size(); ++b) {
    requests += batch_size_counts[b] * static_cast<long long>(b);
  }
  return static_cast<double>(requests) / static_cast<double>(batches);
}

bool ModelStats::operator==(const ModelStats& o) const {
  return name == o.name && batches == o.batches &&
         batch_size_counts == o.batch_size_counts &&
         rung_completions == o.rung_completions &&
         rung_transitions == o.rung_transitions && scale_ups == o.scale_ups &&
         scale_downs == o.scale_downs && replica_peak == o.replica_peak &&
         cold_spinups == o.cold_spinups && warm_spinups == o.warm_spinups &&
         spinup_cycles == o.spinup_cycles;
}

bool FleetStats::accounted() const {
  for (const TenantStats& t : tenants) {
    if (!t.accounted()) return false;
  }
  return true;
}

long long FleetStats::completed_total() const {
  long long total = 0;
  for (const TenantStats& t : tenants) total += t.completed;
  return total;
}

bool FleetStats::operator==(const FleetStats& o) const {
  return tenants == o.tenants && models == o.models && cache == o.cache &&
         makespan_cycles == o.makespan_cycles &&
         response_hash == o.response_hash;
}

std::string FleetStats::summary() const {
  std::ostringstream os;
  os << "  tenant                       sub   rej  shed  done  miss   "
        "p50        p99\n";
  for (const TenantStats& t : tenants) {
    char line[160];
    std::snprintf(line, sizeof(line),
                  "  %-24s %7lld %5lld %5lld %5lld %5lld  %8lld  %9lld\n",
                  t.name.c_str(), t.submitted, t.rejected_queue_full,
                  t.shed_deadline, t.completed, t.deadline_misses,
                  t.latency.p50(), t.latency.p99());
    os << line;
  }
  for (const ModelStats& m : models) {
    char line[200];
    std::snprintf(line, sizeof(line),
                  "  model %-16s %6lld batches (mean %.2f)  replicas peak %d  "
                  "scale +%lld/-%lld  spinup %lldc/%lldw (%lld cycles)  "
                  "rung moves %lld\n",
                  m.name.c_str(), m.batches, m.mean_batch(), m.replica_peak,
                  m.scale_ups, m.scale_downs, m.cold_spinups, m.warm_spinups,
                  m.spinup_cycles, m.rung_transitions);
    os << line;
  }
  os << "  cache       " << cache.hits << " hits, " << cache.misses
     << " misses, " << cache.resident_bytes << " bytes resident (peak "
     << cache.peak_resident_bytes << "), " << cache.bytes_saved
     << " bytes saved\n"
     << "  makespan    " << makespan_cycles << " cycles\n"
     << "  accounted   " << (accounted() ? "yes" : "NO — REQUESTS LOST")
     << "\n";
  return os.str();
}

std::string FleetStats::to_json() const {
  std::ostringstream os;
  os << "{\"tenants\": [";
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    const TenantStats& t = tenants[i];
    if (i) os << ", ";
    os << "{\"name\": \"" << t.name << "\", \"submitted\": " << t.submitted
       << ", \"rejected_queue_full\": " << t.rejected_queue_full
       << ", \"shed_deadline\": " << t.shed_deadline
       << ", \"completed\": " << t.completed << ", \"failed\": " << t.failed
       << ", \"deadline_misses\": " << t.deadline_misses
       << ", \"completed_degraded\": " << t.completed_degraded
       << ", \"queue_peak\": " << t.queue_peak
       << ", \"latency_p50\": " << t.latency.p50()
       << ", \"latency_p99\": " << t.latency.p99() << "}";
  }
  os << "], \"models\": [";
  for (std::size_t i = 0; i < models.size(); ++i) {
    const ModelStats& m = models[i];
    if (i) os << ", ";
    os << "{\"name\": \"" << m.name << "\", \"batches\": " << m.batches
       << ", \"batch_size_counts\": [";
    for (std::size_t b = 0; b < m.batch_size_counts.size(); ++b) {
      if (b) os << ", ";
      os << m.batch_size_counts[b];
    }
    os << "], \"rung_completions\": [";
    for (std::size_t r = 0; r < m.rung_completions.size(); ++r) {
      if (r) os << ", ";
      os << m.rung_completions[r];
    }
    os << "], \"rung_transitions\": " << m.rung_transitions
       << ", \"scale_ups\": " << m.scale_ups
       << ", \"scale_downs\": " << m.scale_downs
       << ", \"replica_peak\": " << m.replica_peak
       << ", \"cold_spinups\": " << m.cold_spinups
       << ", \"warm_spinups\": " << m.warm_spinups
       << ", \"spinup_cycles\": " << m.spinup_cycles << "}";
  }
  os << "], \"cache\": {\"hits\": " << cache.hits
     << ", \"misses\": " << cache.misses
     << ", \"evictions\": " << cache.evictions
     << ", \"resident_bytes\": " << cache.resident_bytes
     << ", \"peak_resident_bytes\": " << cache.peak_resident_bytes
     << ", \"bytes_saved\": " << cache.bytes_saved
     << "}, \"makespan_cycles\": " << makespan_cycles
     << ", \"response_hash\": " << response_hash << "}";
  return os.str();
}

FleetServer::FleetServer(std::vector<FleetModel> models,
                         std::vector<TenantConfig> tenants, FleetConfig cfg)
    : models_(std::move(models)), tenants_(std::move(tenants)), cfg_(cfg) {
  if (models_.empty()) {
    throw ServeError(ServeError::Reason::kConfig,
                     "fleet needs at least one model");
  }
  if (tenants_.empty()) {
    throw ServeError(ServeError::Reason::kConfig,
                     "fleet needs at least one tenant");
  }
  if (cfg_.batch_setup_frac < 0.0 || cfg_.batch_setup_frac >= 1.0) {
    throw ServeError(ServeError::Reason::kConfig,
                     "batch_setup_frac must be in [0, 1)");
  }
  const AutoscaleConfig& as = cfg_.autoscale;
  if (as.enabled &&
      (as.min_replicas < 1 || as.max_replicas < as.min_replicas ||
       as.up_streak < 1 || as.down_streak < 1 ||
       as.spinup_cold_cycles < 0 || as.spinup_warm_cycles < 0)) {
    throw ServeError(ServeError::Reason::kConfig,
                     "invalid autoscale configuration");
  }
  for (std::size_t mi = 0; mi < models_.size(); ++mi) {
    const FleetModel& m = models_[mi];
    if (m.replicas < 1) {
      throw ServeError(ServeError::Reason::kConfig,
                       "model '" + m.name + "' needs >= 1 initial replica");
    }
    if (m.ladder.rungs.empty() || m.ladder.home >= m.ladder.rungs.size()) {
      throw ServeError(ServeError::Reason::kConfig,
                       "model '" + m.name + "' has an unusable ladder");
    }
    if (m.net.empty() || m.net[0].kind != nn::LayerKind::kInput) {
      throw ServeError(ServeError::Reason::kConfig,
                       "model '" + m.name + "' net must start with input");
    }
    const std::size_t layer_count = m.net.size() - 1;
    for (std::size_t i = 0; i < m.ladder.rungs.size(); ++i) {
      const ServingMode& r = m.ladder.rungs[i];
      if (r.service_cycles <= 0 ||
          (!r.choices.empty() && r.choices.size() != layer_count)) {
        throw ServeError(ServeError::Reason::kConfig,
                         "model '" + m.name + "' rung " + std::to_string(i) +
                             " is malformed");
      }
      if (i > m.ladder.home &&
          r.service_cycles >= m.ladder.rungs[i - 1].service_cycles) {
        throw ServeError(ServeError::Reason::kConfig,
                         "model '" + m.name +
                             "': rungs deeper than home must be strictly "
                             "faster (rung " + std::to_string(i) + " is not)");
      }
    }
  }
  for (const TenantConfig& t : tenants_) {
    if (t.model >= models_.size()) {
      throw ServeError(ServeError::Reason::kConfig,
                       "tenant '" + t.name + "' references model " +
                           std::to_string(t.model) + " of " +
                           std::to_string(models_.size()));
    }
    if (t.weight < 1 || t.queue_capacity < 1 || t.batch_cap < 1 ||
        t.batch_age_cycles < 0 || t.deadline_cycles < 0) {
      throw ServeError(ServeError::Reason::kConfig,
                       "tenant '" + t.name + "' has an invalid config");
    }
  }
}

FleetServer::~FleetServer() = default;

FleetStats FleetServer::run(const std::vector<ArrivalTrace>& traces) {
  if (traces.size() != tenants_.size()) {
    throw ServeError(ServeError::Reason::kConfig,
                     "fleet run wants one trace per tenant (" +
                         std::to_string(tenants_.size()) + "), got " +
                         std::to_string(traces.size()));
  }
  for (std::size_t t = 0; t < traces.size(); ++t) {
    if (traces[t].burst.active()) {
      throw ServeError(ServeError::Reason::kConfig,
                       "fleet traces do not support fault bursts");
    }
    for (std::size_t i = 0; i < traces[t].requests.size(); ++i) {
      if (traces[t].requests[i].id != i) {
        throw ServeError(ServeError::Reason::kConfig,
                         "trace ids must be dense from 0 (tenant '" +
                             tenants_[t].name + "')");
      }
    }
  }

  rung_logs_.assign(models_.size(), {});
  scale_log_.clear();

  FleetStats stats;
  stats.tenants.resize(tenants_.size());
  for (std::size_t t = 0; t < tenants_.size(); ++t) {
    stats.tenants[t].name = tenants_[t].name;
  }
  stats.models.resize(models_.size());
  for (std::size_t m = 0; m < models_.size(); ++m) {
    stats.models[m].name = models_[m].name;
    stats.models[m].rung_completions.assign(models_[m].ladder.rungs.size(),
                                            0);
  }

  // Merged arrival stream, ordered (cycle, tenant, id) — the global event
  // order every run sees regardless of threads.
  struct Arrival {
    long long cycle = 0;
    std::size_t tenant = 0;
    std::uint64_t id = 0;
  };
  std::vector<Arrival> arrivals;
  for (std::size_t t = 0; t < traces.size(); ++t) {
    for (const TraceRequest& r : traces[t].requests) {
      arrivals.push_back({r.arrival_cycle, t, r.id});
    }
  }
  std::sort(arrivals.begin(), arrivals.end(),
            [](const Arrival& a, const Arrival& b) {
              if (a.cycle != b.cycle) return a.cycle < b.cycle;
              if (a.tenant != b.tenant) return a.tenant < b.tenant;
              return a.id < b.id;
            });

  // ---- Dispatcher state (virtual time; workers never touch any of it). --
  PrepackCache cache(cfg_.share_prepack);

  struct Replica {
    int id = 0;
    long long busy_until = -1;  ///< -1 = free
    long long ready_at = 0;
    bool spinning = false;  ///< between spawn and its replica-ready event
    bool retired = false;
    std::unique_ptr<RegimeController> regime;
    std::vector<std::unique_ptr<PrepackCache::Lease>> leases;  ///< per rung
  };
  struct ModelState {
    std::vector<Replica> replicas;
    int next_replica_id = 0;
    std::vector<std::size_t> tenant_ids;
    std::vector<long long> deficit;  ///< DRR, aligned with tenant_ids
    std::size_t drr_next = 0;        ///< next tenant_ids slot to visit
    long long batch_timer = kInf;    ///< armed virtual-age close cycle
    std::size_t cap_total = 0;       ///< sum of tenant queue capacities
    std::size_t up_depth = 0, down_depth = 0;  ///< autoscale watermarks
    int up_streak = 0, idle_streak = 0;
    long long last_scale = 0;
    std::vector<long long> service;  ///< per-rung service cycles
  };
  std::vector<ModelState> mstate(models_.size());
  std::vector<std::deque<std::uint64_t>> tq(tenants_.size());
  for (std::size_t t = 0; t < tenants_.size(); ++t) {
    ModelState& ms = mstate[tenants_[t].model];
    ms.tenant_ids.push_back(t);
    ms.cap_total += tenants_[t].queue_capacity;
  }
  for (std::size_t m = 0; m < models_.size(); ++m) {
    ModelState& ms = mstate[m];
    if (ms.tenant_ids.empty()) {
      throw ServeError(ServeError::Reason::kConfig,
                       "model '" + models_[m].name + "' has no tenants");
    }
    ms.deficit.assign(ms.tenant_ids.size(), 0);
    ms.up_depth = static_cast<std::size_t>(
        cfg_.autoscale.up_queue_frac *
        static_cast<double>(ms.cap_total));
    ms.down_depth = static_cast<std::size_t>(
        cfg_.autoscale.down_queue_frac *
        static_cast<double>(ms.cap_total));
    for (const ServingMode& r : models_[m].ladder.rungs) {
      ms.service.push_back(r.service_cycles);
    }
  }

  const auto bundle_key = [&](std::size_t m, int rung) {
    // (model, strategy/rung, datapath): the rung label carries the strategy
    // identity and the datapath mode is a function of the rung's choices.
    return models_[m].name + "/r" + std::to_string(rung);
  };
  const auto acquire_rung = [&](std::size_t m, Replica& rep, int rung) {
    auto& slot = rep.leases[static_cast<std::size_t>(rung)];
    if (slot) return false;  // already leased; not a cache event
    auto lease = cache.acquire(bundle_key(m, rung), [&] {
      arch::FusionPipeline p(
          models_[m].net, models_[m].ws,
          models_[m].ladder.rungs[static_cast<std::size_t>(rung)].choices);
      return p.shared_prepack();
    });
    const bool hit = lease.hit;
    slot = std::make_unique<PrepackCache::Lease>(std::move(lease));
    return hit;
  };
  const auto live_count = [&](const ModelState& ms) {
    int live = 0;
    for (const Replica& r : ms.replicas) {
      if (!r.retired) ++live;
    }
    return live;
  };
  const auto pending_total = [&](const ModelState& ms) {
    std::size_t total = 0;
    for (std::size_t t : ms.tenant_ids) total += tq[t].size();
    return total;
  };

  const auto spawn_replica = [&](std::size_t m, long long now, bool initial) {
    ModelState& ms = mstate[m];
    Replica rep;
    rep.id = ms.next_replica_id++;
    rep.regime = std::make_unique<RegimeController>(
        ms.service, models_[m].ladder.home, ms.cap_total, cfg_.regime);
    rep.leases.resize(models_[m].ladder.rungs.size());
    // The home-rung bundle decides cold vs warm: a cold spin-up derives the
    // constants, a warm one adopts the resident copy a peer already built.
    const bool hit =
        acquire_rung(m, rep, static_cast<int>(models_[m].ladder.home));
    const long long spinup = hit ? cfg_.autoscale.spinup_warm_cycles
                                 : cfg_.autoscale.spinup_cold_cycles;
    if (hit) {
      ++stats.models[m].warm_spinups;
    } else {
      ++stats.models[m].cold_spinups;
    }
    if (initial) {
      // Initial replicas are pre-warmed before traffic: ready at cycle 0,
      // their (modeled) spin-up happened offline and is not charged.
      rep.ready_at = 0;
    } else {
      rep.ready_at = now + spinup;
      rep.spinning = true;
      stats.models[m].spinup_cycles += spinup;
    }
    ms.replicas.push_back(std::move(rep));
    stats.models[m].replica_peak =
        std::max(stats.models[m].replica_peak, live_count(ms));
  };

  for (std::size_t m = 0; m < models_.size(); ++m) {
    for (int k = 0; k < models_[m].replicas; ++k) {
      spawn_replica(m, 0, /*initial=*/true);
    }
  }

  // ---- Real execution machinery: ONE shared job queue + worker set for
  // the whole fleet. Replicas are virtual-time capacity, not threads — a
  // 32-replica fleet on a 4-core box still runs at most resolve_threads()
  // workers, all drawing kernel parallelism from the one process pool.
  int max_replicas_total = 0;
  for (std::size_t m = 0; m < models_.size(); ++m) {
    max_replicas_total += cfg_.autoscale.enabled
                              ? std::max(cfg_.autoscale.max_replicas,
                                         models_[m].replicas)
                              : models_[m].replicas;
  }
  BoundedQueue<FleetJob*> exec_q(
      static_cast<std::size_t>(max_replicas_total) + 2);
  const int worker_count =
      std::max(1, std::min(kernels::resolve_threads(cfg_.threads),
                           max_replicas_total));
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(worker_count));
  for (int w = 0; w < worker_count; ++w) {
    workers.emplace_back([this, &exec_q] {
      // Worker-owned warm pipelines, one per (model, rung) this worker
      // actually serves — every one adopts the dispatcher's shared bundle,
      // so construction skips the pack/transform work entirely.
      std::map<std::pair<std::size_t, int>,
               std::unique_ptr<arch::FusionPipeline>>
          pipes;
      FleetJob* job = nullptr;
      while (exec_q.pop(job)) {
        std::vector<std::uint32_t> crcs;
        try {
          auto& slot = pipes[{job->model, job->rung}];
          if (!slot) {
            slot = std::make_unique<arch::FusionPipeline>(
                models_[job->model].net, models_[job->model].ws,
                models_[job->model]
                    .ladder.rungs[static_cast<std::size_t>(job->rung)]
                    .choices,
                job->bundle);
          }
          crcs.reserve(job->seeds.size());
          for (const std::uint32_t seed : job->seeds) {
            nn::Tensor in(models_[job->model].net[0].out);
            nn::fill_deterministic(in, seed);
            const nn::Tensor out = slot->run(in);
            crcs.push_back(fault::crc32_f32(out.data(), out.vec().size()));
          }
        } catch (const std::exception&) {
          crcs.clear();  // signals execution failure for the whole batch
        }
        job->done.set_value(std::move(crcs));
      }
    });
  }

  // ---- The discrete-event loop. Event ties resolve completions <
  // replica-ready < batch-close timers < arrivals, so capacity frees up and
  // comes online before batches close and before new work is admitted.
  struct BatchItem {
    std::size_t tenant = 0;
    std::uint64_t id = 0;
    long long arrival = 0;
  };
  struct InFlight {
    long long completion = 0;
    std::size_t model = 0;
    std::size_t replica = 0;  ///< index into mstate[model].replicas
    int rung = 0;
    std::vector<BatchItem> items;
    std::unique_ptr<FleetJob> job;
    std::future<std::vector<std::uint32_t>> fut;
  };
  std::vector<InFlight> inflight;
  std::size_t next_arrival = 0;
  long long last_completion = 0;

  // Deterministic batch close rule: dispatch when pending >= the effective
  // cap (min over tenants with queued work) OR the oldest pending request
  // of some tenant has aged past that tenant's budget. Otherwise arm the
  // model's close timer at the earliest such age-out cycle.
  const auto form_batch = [&](std::size_t m,
                              long long now) -> std::vector<BatchItem> {
    ModelState& ms = mstate[m];
    std::size_t avail = 0;
    std::size_t cap = 0;
    long long close_at = kInf;
    for (const std::size_t t : ms.tenant_ids) {
      if (tq[t].empty()) continue;
      avail += tq[t].size();
      cap = cap == 0 ? tenants_[t].batch_cap
                     : std::min(cap, tenants_[t].batch_cap);
      const TraceRequest& front = traces[t].requests[tq[t].front()];
      close_at = std::min(close_at, front.arrival_cycle +
                                        tenants_[t].batch_age_cycles);
    }
    if (avail == 0) return {};
    if (avail < cap && now < close_at) {
      ms.batch_timer = std::min(
          ms.batch_timer == kInf ? close_at : ms.batch_timer, close_at);
      return {};
    }
    // Deficit round-robin over the model's tenants: quantum = weight, cost
    // 1 per request. A drained queue forfeits its deficit (standard DRR),
    // so an idle tenant cannot bank service.
    std::vector<BatchItem> batch;
    const std::size_t T = ms.tenant_ids.size();
    while (batch.size() < cap) {
      bool any = false;
      for (const std::size_t t : ms.tenant_ids) {
        if (!tq[t].empty()) {
          any = true;
          break;
        }
      }
      if (!any) break;
      const std::size_t ti = ms.drr_next;
      const std::size_t t = ms.tenant_ids[ti];
      if (tq[t].empty()) {
        ms.deficit[ti] = 0;
        ms.drr_next = (ti + 1) % T;
        continue;
      }
      ms.deficit[ti] += tenants_[t].weight;
      while (ms.deficit[ti] >= 1 && !tq[t].empty() && batch.size() < cap) {
        const std::uint64_t id = tq[t].front();
        tq[t].pop_front();
        const TraceRequest& req = traces[t].requests[id];
        if (tenants_[t].deadline_cycles > 0 &&
            now > req.arrival_cycle + tenants_[t].deadline_cycles) {
          // Load-shedding: already late at dispatch — free to drop, so it
          // does not consume the tenant's deficit.
          ++stats.tenants[t].shed_deadline;
          continue;
        }
        batch.push_back({t, id, req.arrival_cycle});
        --ms.deficit[ti];
      }
      if (tq[t].empty()) ms.deficit[ti] = 0;
      if (batch.size() >= cap) {
        // Mid-round stop: the pointer stays on a tenant with live deficit
        // and queued work (it resumes first), advances otherwise.
        if (tq[t].empty() || ms.deficit[ti] < 1) ms.drr_next = (ti + 1) % T;
        break;
      }
      ms.drr_next = (ti + 1) % T;
    }
    return batch;
  };

  const auto try_dispatch = [&](std::size_t m, long long now) {
    ModelState& ms = mstate[m];
    while (true) {
      int k = -1;
      for (std::size_t i = 0; i < ms.replicas.size(); ++i) {
        const Replica& r = ms.replicas[i];
        if (!r.retired && !r.spinning && r.busy_until < 0) {
          k = static_cast<int>(i);
          break;
        }
      }
      if (k < 0) return;
      std::vector<BatchItem> batch = form_batch(m, now);
      if (batch.empty()) return;
      Replica& rep = ms.replicas[static_cast<std::size_t>(k)];
      const int rung = rep.regime->rung();
      acquire_rung(m, rep, rung);  // deterministic cache event if first use
      const long long service =
          ms.service[static_cast<std::size_t>(rung)];
      const long long setup =
          static_cast<long long>(static_cast<double>(service) *
                                 cfg_.batch_setup_frac);
      const long long svc =
          setup + static_cast<long long>(batch.size()) * (service - setup);
      InFlight f;
      f.completion = now + svc;
      f.model = m;
      f.replica = static_cast<std::size_t>(k);
      f.rung = rung;
      f.items = std::move(batch);
      f.job = std::make_unique<FleetJob>();
      f.job->model = m;
      f.job->rung = rung;
      f.job->bundle =
          rep.leases[static_cast<std::size_t>(rung)]->bundle;
      for (const BatchItem& it : f.items) {
        f.job->seeds.push_back(
            traces[it.tenant].requests[it.id].input_seed);
      }
      f.fut = f.job->done.get_future();
      rep.busy_until = f.completion;
      ++stats.models[m].batches;
      auto& hist = stats.models[m].batch_size_counts;
      if (hist.size() <= f.items.size()) hist.resize(f.items.size() + 1, 0);
      ++hist[f.items.size()];
      exec_q.push(f.job.get());
      inflight.push_back(std::move(f));
    }
  };

  const auto maybe_scale = [&](std::size_t m, long long now) {
    const AutoscaleConfig& as = cfg_.autoscale;
    if (!as.enabled) return;
    ModelState& ms = mstate[m];
    const int live = live_count(ms);
    if (ms.up_streak >= as.up_streak && live < as.max_replicas &&
        now - ms.last_scale >= as.dwell_cycles) {
      spawn_replica(m, now, /*initial=*/false);
      ++stats.models[m].scale_ups;
      scale_log_.push_back({now, m, true, live + 1});
      ms.up_streak = 0;
      ms.last_scale = now;
      return;
    }
    if (ms.idle_streak >= as.down_streak && live > as.min_replicas &&
        now - ms.last_scale >= as.dwell_cycles) {
      // Retire the youngest free, ready replica; a fully busy pool keeps
      // the streak and retries at the next observation.
      for (std::size_t i = ms.replicas.size(); i-- > 0;) {
        Replica& r = ms.replicas[i];
        if (r.retired || r.spinning || r.busy_until >= 0) continue;
        r.retired = true;
        r.regime->finish(now);
        for (auto& lease : r.leases) {
          if (lease) cache.release(*lease);
          lease.reset();
        }
        ++stats.models[m].scale_downs;
        scale_log_.push_back({now, m, false, live - 1});
        ms.idle_streak = 0;
        ms.last_scale = now;
        return;
      }
    }
  };

  const auto handle_completion = [&](InFlight f) {
    const long long now = f.completion;
    last_completion = std::max(last_completion, now);
    std::vector<std::uint32_t> crcs = f.fut.get();  // may still be running
    ModelState& ms = mstate[f.model];
    Replica& rep = ms.replicas[f.replica];
    rep.busy_until = -1;
    const bool ok = crcs.size() == f.items.size();
    const int home = static_cast<int>(models_[f.model].ladder.home);
    for (std::size_t i = 0; i < f.items.size(); ++i) {
      const BatchItem& it = f.items[i];
      TenantStats& ts = stats.tenants[it.tenant];
      if (!ok) {
        ++ts.failed;
        continue;
      }
      const long long lat = now - it.arrival;
      ++ts.completed;
      ts.latency.record(lat);
      if (f.rung != home) ++ts.completed_degraded;
      stats.response_hash += mix64(
          request_key(it.tenant, it.id) * 0x9E3779B97F4A7C15ull ^ crcs[i]);
      const bool late = tenants_[it.tenant].deadline_cycles > 0 &&
                        lat > tenants_[it.tenant].deadline_cycles;
      if (late) ++ts.deadline_misses;
      rep.regime->observe_completion(now, late);
    }
    if (ok) {
      stats.models[f.model]
          .rung_completions[static_cast<std::size_t>(f.rung)] +=
          static_cast<long long>(f.items.size());
    }
    if (cfg_.autoscale.enabled && pending_total(ms) == 0) {
      ++ms.idle_streak;
      ms.up_streak = 0;
    }
    maybe_scale(f.model, now);
  };

  const std::size_t n_arrivals = arrivals.size();
  const auto queues_empty = [&] {
    for (const auto& q : tq) {
      if (!q.empty()) return false;
    }
    return true;
  };
  const auto any_spinning = [&] {
    for (const ModelState& ms : mstate) {
      for (const Replica& r : ms.replicas) {
        if (r.spinning) return true;
      }
    }
    return false;
  };

  try {
    while (next_arrival < n_arrivals || !inflight.empty() ||
           !queues_empty() || any_spinning()) {
      const long long t_arr = next_arrival < n_arrivals
                                  ? arrivals[next_arrival].cycle
                                  : kInf;
      long long t_comp = kInf;
      for (const InFlight& f : inflight) {
        t_comp = std::min(t_comp, f.completion);
      }
      long long t_ready = kInf;
      for (const ModelState& ms : mstate) {
        for (const Replica& r : ms.replicas) {
          if (r.spinning) t_ready = std::min(t_ready, r.ready_at);
        }
      }
      long long t_timer = kInf;
      for (const ModelState& ms : mstate) {
        t_timer = std::min(t_timer, ms.batch_timer);
      }

      if (t_comp <= t_ready && t_comp <= t_timer && t_comp <= t_arr) {
        // Earliest completion; ties broken by (model, replica, first item)
        // so the pick order is a pure function of the virtual schedule.
        std::size_t best = 0;
        for (std::size_t i = 1; i < inflight.size(); ++i) {
          const InFlight& a = inflight[i];
          const InFlight& b = inflight[best];
          if (a.completion < b.completion ||
              (a.completion == b.completion &&
               (a.model < b.model ||
                (a.model == b.model && a.replica < b.replica)))) {
            best = i;
          }
        }
        InFlight f = std::move(inflight[best]);
        inflight.erase(inflight.begin() + static_cast<long>(best));
        const std::size_t m = f.model;
        handle_completion(std::move(f));
        try_dispatch(m, t_comp);
      } else if (t_ready <= t_timer && t_ready <= t_arr && t_ready < kInf) {
        std::size_t best_m = 0;
        int best_r = -1;
        for (std::size_t m = 0; m < mstate.size() && best_r < 0; ++m) {
          for (const Replica& r : mstate[m].replicas) {
            if (r.spinning && r.ready_at == t_ready) {
              best_m = m;
              best_r = r.id;
              break;
            }
          }
        }
        for (Replica& r : mstate[best_m].replicas) {
          if (r.id == best_r) r.spinning = false;
        }
        try_dispatch(best_m, t_ready);
      } else if (t_timer <= t_arr && t_timer < kInf) {
        for (std::size_t m = 0; m < mstate.size(); ++m) {
          if (mstate[m].batch_timer == t_timer) {
            mstate[m].batch_timer = kInf;
            try_dispatch(m, t_timer);
            break;  // one timer event per loop turn keeps ordering simple
          }
        }
      } else if (t_arr < kInf) {
        const Arrival& a = arrivals[next_arrival];
        ++next_arrival;
        const std::size_t t = a.tenant;
        const std::size_t m = tenants_[t].model;
        ModelState& ms = mstate[m];
        TenantStats& ts = stats.tenants[t];
        ++ts.submitted;
        if (tq[t].size() >= tenants_[t].queue_capacity) {
          ++ts.rejected_queue_full;
        } else {
          tq[t].push_back(a.id);
          ts.queue_peak = std::max(ts.queue_peak,
                                   static_cast<long long>(tq[t].size()));
        }
        const std::size_t depth = pending_total(ms);
        for (Replica& r : ms.replicas) {
          if (!r.retired) r.regime->observe_queue(a.cycle, depth);
        }
        if (cfg_.autoscale.enabled) {
          if (depth >= std::max<std::size_t>(ms.up_depth, 1)) {
            ++ms.up_streak;
            ms.idle_streak = 0;
          } else if (depth <= ms.down_depth) {
            ++ms.idle_streak;
            ms.up_streak = 0;
          } else {
            ms.up_streak = 0;
            ms.idle_streak = 0;
          }
          maybe_scale(m, a.cycle);
        }
        try_dispatch(m, a.cycle);
      } else {
        break;  // defensive: cannot happen (pending work implies an event)
      }
    }
  } catch (...) {
    exec_q.close();
    for (auto& w : workers) w.join();
    throw;
  }

  exec_q.close();
  for (auto& w : workers) w.join();

  // Close the rung timelines and fold them — plus the scale timeline — into
  // the digest, exactly as Server does for its single ladder walk.
  for (std::size_t m = 0; m < models_.size(); ++m) {
    ModelState& ms = mstate[m];
    rung_logs_[m].resize(static_cast<std::size_t>(ms.next_replica_id));
    for (Replica& r : ms.replicas) {
      if (!r.retired) r.regime->finish(last_completion);
      rung_logs_[m][static_cast<std::size_t>(r.id)] = r.regime->log();
      stats.models[m].rung_transitions +=
          static_cast<long long>(r.regime->log().size());
      for (const RungTransition& t : r.regime->log()) {
        stats.response_hash += mix64(
            static_cast<std::uint64_t>(t.cycle) * 0x2545F4914F6CDD1Dull ^
            (static_cast<std::uint64_t>(m + 1) << 40) ^
            (static_cast<std::uint64_t>(static_cast<unsigned>(r.id)) << 32) ^
            (static_cast<std::uint64_t>(static_cast<unsigned>(t.from))
             << 24) ^
            (static_cast<std::uint64_t>(static_cast<unsigned>(t.to))
             << 16) ^
            static_cast<std::uint64_t>(static_cast<unsigned>(t.reason)));
      }
    }
  }
  for (const ScaleEvent& e : scale_log_) {
    stats.response_hash += mix64(
        static_cast<std::uint64_t>(e.cycle) * 0xD1B54A32D192ED03ull ^
        (static_cast<std::uint64_t>(e.model + 1) << 8) ^
        (e.up ? 0x100u : 0u) ^
        static_cast<std::uint64_t>(static_cast<unsigned>(e.replicas_after)));
  }

  stats.makespan_cycles = last_completion;
  stats.cache = cache.stats();  // snapshot with live leases still resident
  return stats;
}

}  // namespace hetacc::serve
