#pragma once
// The resilient serving runtime over arch::FusionPipeline. One Server owns
// a network, its weights, and an ordered **degradation ladder** of serving
// modes (PR 5's primary/fallback pair is the two-rung special case):
//
//   rung 0        — most conservative (slowest; typically the `--protect`
//                   re-optimization an operator pre-computes and ships)
//   rung `home`   — the optimizer's latency-optimal primary strategy
//   deeper rungs  — strictly faster Pareto points (int8 / conventional-i8):
//                   degraded accuracy traded for throughput, deliberately
//
// run(trace) drives an arrival trace through the full request lifecycle:
// bounded-queue admission (reject when full — the queue can never grow
// without bound), deadline enforcement with load-shedding of already-late
// requests, capped-exponential-backoff retries that re-dispatch faulted
// requests to a freshly reset() pipeline, a circuit breaker whose
// open/half-open transitions move the served rung off `home` instead of
// flipping a boolean, and a load-regime controller (serve/regime.h) that
// descends to faster rungs under queue/deadline pressure and climbs back
// with dwell-gated hysteresis.
//
// Determinism contract (DESIGN.md §11/§14): every stats-bearing decision is
// made by the single dispatcher thread in *virtual* time — arrival cycles
// come from the trace, service cycles from the cost layer's strategy
// latencies, fault outcomes from the counter-hash FaultInjector, rung moves
// from virtual-time signals — so the same trace + seed + config produces a
// byte-identical ServerStats and rung-transition log for any `threads`
// value. Real worker threads only decide how fast the functional pipeline
// work is ground through, never what the answer is.

#include <memory>
#include <string>
#include <vector>

#include "arch/pipeline.h"
#include "serve/breaker.h"
#include "serve/clock.h"
#include "serve/regime.h"
#include "serve/stats.h"
#include "serve/trace.h"

namespace hetacc::serve {

/// One strategy the server can serve from: per-layer algorithm choices for
/// the functional pipeline plus the modeled per-request service time (the
/// strategy's end-to-end latency as priced by the cost layer).
struct ServingMode {
  std::vector<arch::LayerChoice> choices;
  long long service_cycles = 0;
  /// Hardening installed when this mode's pipeline runs inside a fault
  /// burst (home rung only) — the detectors that absorb recoverable SEUs.
  fault::ProtectionConfig protect = fault::ProtectionConfig::all_on();
  /// Display label for rung tables and the transition timeline.
  std::string label;
};

/// The degradation ladder: rungs ordered most-conservative first, `home`
/// the preferred operating point. Rungs deeper than home must be strictly
/// faster (service_cycles strictly decreasing) — that is what makes load
/// descent meaningful. toolflow::build_serving_ladder emits this shape;
/// hand-built ladders are validated by the Server constructor.
struct ServingLadder {
  std::vector<ServingMode> rungs;
  std::size_t home = 0;
};

struct ServerConfig {
  /// Admission queue bound: arrivals beyond this wait-room depth are
  /// rejected with ServeError::Reason::kQueueFull semantics.
  std::size_t queue_capacity = 64;
  /// Modeled accelerator replicas requests are dispatched onto. Part of the
  /// modeled hardware, so it *does* change stats — unlike `threads`.
  int replicas = 2;
  /// Per-request deadline in cycles from arrival; 0 disables deadlines.
  long long deadline_cycles = 0;
  /// Fault-retry budget on the home rung before downgrading the request to
  /// the conservative rung.
  int max_retries = 2;
  /// Capped exponential backoff (jitter-free, deterministic):
  /// backoff(attempt) = min(base << (attempt-1), cap).
  long long backoff_base_cycles = 1024;
  long long backoff_cap_cycles = 16384;
  BreakerConfig breaker;
  /// Load-regime hysteresis (watermarks, miss window, dwell gates).
  RegimeConfig regime;
  /// Real execution worker threads (OptimizerOptions convention: 1 = serial,
  /// 0 = all cores, n = n). Never affects ServerStats.
  int threads = 0;
  /// Virtual clock driving deadline checks; null = an internal SimClock.
  /// Pass a SteadyClock to observe wall-clock behavior (not reproducible).
  Clock* clock = nullptr;
};

class Server {
 public:
  /// `net` must start with an input layer (FusionPipeline contract); every
  /// rung's choices must match its layer count. Throws ServeError(kConfig)
  /// on an unusable configuration (empty ladder, home out of range, deeper
  /// rungs not strictly faster, non-positive service times).
  Server(nn::Network net, nn::WeightStore ws, ServingLadder ladder,
         ServerConfig cfg);

  /// PR 5 compatibility: the binary primary/fallback pair, expressed as the
  /// two-rung ladder [fallback, primary] with home = 1. Behavior (and every
  /// stat) is byte-identical to the PR 5 server.
  Server(nn::Network net, nn::WeightStore ws, ServingMode primary,
         ServingMode fallback, ServerConfig cfg);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Serves the whole trace; returns the stats snapshot. Deterministic for
  /// a given (trace, config) regardless of cfg.threads.
  [[nodiscard]] ServerStats run(const ArrivalTrace& trace);

  /// Breaker transitions of the last run() (cycle-stamped), for tests and
  /// the CLI report.
  [[nodiscard]] const std::vector<BreakerTransition>& breaker_log() const {
    return breaker_log_;
  }
  /// Rung transitions of the last run() — the timeline the CLI prints and
  /// the CI soak greps. Folded into ServerStats::response_hash, so two runs
  /// that agree on the hash walked the ladder identically.
  [[nodiscard]] const std::vector<RungTransition>& rung_log() const {
    return rung_log_;
  }

  [[nodiscard]] const ServerConfig& config() const { return cfg_; }
  [[nodiscard]] const ServingLadder& ladder() const { return ladder_; }

 private:
  nn::Network net_;
  nn::WeightStore ws_;
  ServingLadder ladder_;
  ServerConfig cfg_;
  std::vector<BreakerTransition> breaker_log_;
  std::vector<RungTransition> rung_log_;
};

}  // namespace hetacc::serve
