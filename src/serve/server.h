#pragma once
// The resilient serving runtime over arch::FusionPipeline. One Server owns
// a network, its weights, and two ways of serving it:
//
//   primary  — the optimizer's latency-optimal strategy
//   fallback — a pre-optimized degraded strategy (tighter resource /
//              protection budget; typically `--protect`-priced and slower)
//
// run(trace) drives an arrival trace through the full request lifecycle:
// bounded-queue admission (reject when full — the queue can never grow
// without bound), deadline enforcement with load-shedding of already-late
// requests, capped-exponential-backoff retries that re-dispatch faulted
// requests to a freshly reset() pipeline, and a circuit breaker that
// downgrades to the fallback strategy after sustained failures and probes
// half-open recovery back to the primary.
//
// Determinism contract (DESIGN.md §11): every stats-bearing decision is
// made by the single dispatcher thread in *virtual* time — arrival cycles
// come from the trace, service cycles from the cost layer's strategy
// latencies, fault outcomes from the counter-hash FaultInjector — so the
// same trace + seed + config produces a byte-identical ServerStats for any
// `threads` value. Real worker threads only decide how fast the functional
// pipeline work is ground through, never what the answer is.

#include <memory>
#include <vector>

#include "arch/pipeline.h"
#include "serve/breaker.h"
#include "serve/clock.h"
#include "serve/stats.h"
#include "serve/trace.h"

namespace hetacc::serve {

/// One strategy the server can serve from: per-layer algorithm choices for
/// the functional pipeline plus the modeled per-request service time (the
/// strategy's end-to-end latency as priced by the cost layer).
struct ServingMode {
  std::vector<arch::LayerChoice> choices;
  long long service_cycles = 0;
  /// Hardening installed when this mode's pipeline runs inside a fault
  /// burst (primary) — the detectors that absorb recoverable SEUs.
  fault::ProtectionConfig protect = fault::ProtectionConfig::all_on();
};

struct ServerConfig {
  /// Admission queue bound: arrivals beyond this wait-room depth are
  /// rejected with ServeError::Reason::kQueueFull semantics.
  std::size_t queue_capacity = 64;
  /// Modeled accelerator replicas requests are dispatched onto. Part of the
  /// modeled hardware, so it *does* change stats — unlike `threads`.
  int replicas = 2;
  /// Per-request deadline in cycles from arrival; 0 disables deadlines.
  long long deadline_cycles = 0;
  /// Fault-retry budget on the primary before downgrading the request to
  /// the fallback strategy.
  int max_retries = 2;
  /// Capped exponential backoff (jitter-free, deterministic):
  /// backoff(attempt) = min(base << (attempt-1), cap).
  long long backoff_base_cycles = 1024;
  long long backoff_cap_cycles = 16384;
  BreakerConfig breaker;
  /// Real execution worker threads (OptimizerOptions convention: 1 = serial,
  /// 0 = all cores, n = n). Never affects ServerStats.
  int threads = 0;
  /// Virtual clock driving deadline checks; null = an internal SimClock.
  /// Pass a SteadyClock to observe wall-clock behavior (not reproducible).
  Clock* clock = nullptr;
};

class Server {
 public:
  /// `net` must start with an input layer (FusionPipeline contract); both
  /// modes' choices must match its layer count. Throws
  /// ServeError(kConfig) on an unusable configuration.
  Server(nn::Network net, nn::WeightStore ws, ServingMode primary,
         ServingMode fallback, ServerConfig cfg);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Serves the whole trace; returns the stats snapshot. Deterministic for
  /// a given (trace, config) regardless of cfg.threads.
  [[nodiscard]] ServerStats run(const ArrivalTrace& trace);

  /// Breaker transitions of the last run() (cycle-stamped), for tests and
  /// the CLI report.
  [[nodiscard]] const std::vector<BreakerTransition>& breaker_log() const {
    return breaker_log_;
  }

  [[nodiscard]] const ServerConfig& config() const { return cfg_; }

 private:
  nn::Network net_;
  nn::WeightStore ws_;
  ServingMode primary_;
  ServingMode fallback_;
  ServerConfig cfg_;
  std::vector<BreakerTransition> breaker_log_;
};

}  // namespace hetacc::serve
