#pragma once
// Shared prepack cache for the serving fleet: one refcounted PrepackBundle
// per (model, strategy/rung, datapath) key, so every replica serving the
// same rung aliases one copy of the packed GEMM panels, transformed
// Winograd filter planes, and int8 constants instead of duplicating the
// dominant per-replica memory cost.
//
// Determinism contract: the cache is driven exclusively by the fleet's
// single dispatcher thread, in virtual-time event order, so the hit/miss
// counters and the resident-bytes trajectory are a pure function of
// (traces, fleet config) — byte-identical for any worker-thread count. It
// is deliberately NOT thread-safe; workers only ever see the immutable
// bundles the dispatcher hands them inside jobs.
//
// `share = false` turns the cache into a measurement foil: every acquire
// builds a private copy under a synthesized unique key, so resident bytes
// grow linearly with replicas. bench_fleet runs both and asserts the shared
// mode stays strictly below 2x the per-replica cost.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "arch/pipeline.h"

namespace hetacc::serve {

struct PrepackCacheStats {
  long long hits = 0;        ///< acquires satisfied by a resident bundle
  long long misses = 0;      ///< acquires that had to build
  long long evictions = 0;   ///< bundles dropped when their last lease ended
  long long resident_bytes = 0;       ///< bytes currently held
  long long peak_resident_bytes = 0;  ///< high-water mark of the above
  long long bytes_saved = 0;  ///< bytes a hit avoided duplicating (sum)
  long long scrubs = 0;  ///< corrupted residents caught by CRC and re-derived

  bool operator==(const PrepackCacheStats& o) const {
    return hits == o.hits && misses == o.misses && evictions == o.evictions &&
           resident_bytes == o.resident_bytes &&
           peak_resident_bytes == o.peak_resident_bytes &&
           bytes_saved == o.bytes_saved && scrubs == o.scrubs;
  }
};

class PrepackCache {
 public:
  /// `share = false` disables deduplication (the per-replica-copy baseline).
  /// `verify = false` drops the CRC re-check on lease (measurement baseline;
  /// the integrity guard is on by default).
  explicit PrepackCache(bool share = true, bool verify = true)
      : share_(share), verify_(verify) {}

  /// Builds a bundle on a cache miss. Must be deterministic for a given key
  /// (the fleet derives from golden weights, so it is).
  using Builder =
      std::function<std::shared_ptr<const arch::PrepackBundle>()>;

  /// One acquire's receipt: the bundle plus the internal key release() needs
  /// (== the logical key in shared mode, a synthesized unique key in the
  /// per-copy baseline) and whether the acquire was a hit.
  struct Lease {
    std::shared_ptr<const arch::PrepackBundle> bundle;
    std::string key;
    bool hit = false;
    bool scrubbed = false;  ///< the resident copy failed its CRC re-check
  };

  /// Returns the resident bundle for `key` (hit: refcount bumped, bytes
  /// saved credited) or builds, inserts, and leases a new one (miss). When
  /// the resident copy fails its CRC re-check, the lease is a *scrub*: the
  /// bundle is re-derived and the clean copy replaces the resident one.
  /// Peers that adopted the old pointer keep it alive and untouched — the
  /// cache only stops handing the corrupted copy out. A scrub counts as a
  /// miss (the lease paid a full re-derivation).
  [[nodiscard]] Lease acquire(const std::string& key, const Builder& build);

  /// Simulates a bit flip in the resident master copy of `key` (dispatcher
  /// only, like everything here). The flip is *virtual* — a flag, not a real
  /// mutation — because workers may be streaming through the shared bytes;
  /// the next acquire detects it exactly as a real CRC mismatch would.
  /// Returns false (no-op) when the key is not resident.
  bool corrupt_resident(const std::string& key);

  /// Ends a lease. The bundle is evicted when its last lease ends; a peer
  /// still holding the shared_ptr keeps its (immutable) bundle alive — the
  /// cache only stops handing it out.
  void release(const Lease& lease);

  [[nodiscard]] const PrepackCacheStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t entries() const { return entries_.size(); }
  /// Live leases on `key` (0 when not resident). Shared-mode key space.
  [[nodiscard]] long long refcount(const std::string& key) const;

 private:
  struct Entry {
    std::shared_ptr<const arch::PrepackBundle> bundle;
    long long refs = 0;
    long long bytes = 0;
    std::uint32_t crc = 0;  ///< content CRC recorded at insert
    bool corrupt = false;   ///< virtual flip pending detection on next lease
  };
  bool share_;
  bool verify_;
  long long serial_ = 0;  ///< synthesized-key counter for the baseline mode
  std::map<std::string, Entry> entries_;
  PrepackCacheStats stats_;
};

}  // namespace hetacc::serve
