#pragma once
// Arrival traces for the serving runtime: a deterministic request stream
// (id, arrival cycle, input seed) plus an optional mid-trace fault burst —
// a window of virtual time during which the primary accelerator is struck
// by an installed FaultPlan. Traces are value types: generate one
// synthetically from a seed, or load/save the CSV form (`hetacc --serve
// trace.csv`). Same trace + same server config ⇒ same ServerStats, always.

#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault.h"

namespace hetacc::serve {

struct TraceRequest {
  std::uint64_t id = 0;
  long long arrival_cycle = 0;
  /// Seed for the request's deterministic input tensor (what the "user"
  /// sent). Distinct seeds make the response digest sensitive to request
  /// identity, not just request count.
  std::uint32_t input_seed = 0;
};

/// A transient-degradation window: requests dispatched to the primary
/// strategy inside [from_cycle, until_cycle) run against a pipeline with
/// `plan` installed. Outside the window the primary is healthy.
struct FaultBurst {
  long long from_cycle = -1;
  long long until_cycle = -1;
  fault::FaultPlan plan;

  [[nodiscard]] bool active() const {
    return from_cycle >= 0 && until_cycle > from_cycle;
  }
  [[nodiscard]] bool covers(long long cycle) const {
    return active() && cycle >= from_cycle && cycle < until_cycle;
  }
};

struct ArrivalTrace {
  std::vector<TraceRequest> requests;
  FaultBurst burst;

  /// Deterministic synthetic trace: `n` requests with hash-jittered
  /// inter-arrival gaps around `mean_interarrival_cycles` (uniform in
  /// [mean/2, 3*mean/2)), input seeds derived from `seed`. A `surge_factor`
  /// > 1 compresses the gaps by that factor over the middle third of the
  /// trace, producing the overload segment the admission-control and
  /// load-shedding paths need.
  [[nodiscard]] static ArrivalTrace synthetic(std::size_t n,
                                              long long mean_interarrival_cycles,
                                              std::uint64_t seed,
                                              double surge_factor = 1.0);

  /// Deterministic square-wave load: `periods` alternating burst/lull
  /// phases of `per_phase` requests each. Burst phases use hash-jittered
  /// gaps around `burst_interarrival_cycles`, lull phases around
  /// `lull_interarrival_cycles` (lull should be the larger). This is the
  /// oscillating-overload stimulus the degradation-ladder hysteresis tests
  /// and the CI soak drive: sustained pressure, then sustained calm,
  /// repeated — a controller without dwell gating flaps on it.
  [[nodiscard]] static ArrivalTrace oscillating(
      std::size_t periods, std::size_t per_phase,
      long long burst_interarrival_cycles,
      long long lull_interarrival_cycles, std::uint64_t seed);

  /// CSV form: header `id,arrival_cycle,input_seed`, one row per request.
  [[nodiscard]] std::string to_csv() const;
  /// Inverse of to_csv. Throws hetacc::ParseError with a 1-based line
  /// number on malformed rows, non-monotonic arrivals, or duplicate ids.
  [[nodiscard]] static ArrivalTrace from_csv(const std::string& csv);

  [[nodiscard]] long long last_arrival() const {
    return requests.empty() ? 0 : requests.back().arrival_cycle;
  }
};

}  // namespace hetacc::serve
