#include "serve/regime.h"

#include <algorithm>
#include <cmath>

namespace hetacc::serve {

std::string_view to_string(RungMove m) {
  switch (m) {
    case RungMove::kLoadDescend: return "load";
    case RungMove::kLoadAscend: return "load-recover";
    case RungMove::kBreakerDegrade: return "breaker";
    case RungMove::kBreakerRestore: return "breaker-recover";
  }
  return "?";
}

RegimeController::RegimeController(std::vector<long long> service_cycles,
                                   std::size_t home,
                                   std::size_t queue_capacity,
                                   RegimeConfig cfg)
    : service_cycles_(std::move(service_cycles)),
      home_(static_cast<int>(home)),
      deepest_(static_cast<int>(service_cycles_.size()) - 1),
      cfg_(cfg),
      load_rung_(static_cast<int>(home)),
      effective_(static_cast<int>(home)),
      miss_ring_(static_cast<std::size_t>(std::max(cfg.miss_window, 1)),
                 false),
      cycles_(service_cycles_.size(), 0) {
  // PR 5 semantics: the breaker degrades onto the rung just above home (the
  // --protect re-optimization). A home-rung-0 ladder has no conservative
  // rung above it, so the first deeper rung stands in; a ladder of one rung
  // degrades onto itself (shed-only operation).
  if (home_ > 0) {
    conservative_ = home_ - 1;
  } else {
    conservative_ = std::min(home_ + 1, deepest_);
  }
  const double cap = static_cast<double>(queue_capacity);
  descend_depth_ = static_cast<std::size_t>(
      std::max(1.0, std::ceil(cap * cfg_.descend_queue_frac)));
  ascend_depth_ = static_cast<std::size_t>(
      std::max(0.0, std::floor(cap * cfg_.ascend_queue_frac)));
}

void RegimeController::set_effective(long long now, int to, RungMove reason) {
  if (to == effective_) return;
  cycles_[static_cast<std::size_t>(effective_)] +=
      std::max<long long>(now - integrated_until_, 0);
  integrated_until_ = std::max(integrated_until_, now);
  log_.push_back({now, effective_, to, reason});
  effective_ = to;
}

void RegimeController::refresh_effective(long long now, RungMove reason) {
  // The breaker only needs to push traffic off the home rung; a
  // load-descended rung is already off the primary (and never struck by the
  // trace's fault burst), so the deeper rung wins while overloaded.
  const int want = breaker_degraded_ && load_rung_ == home_ ? conservative_
                                                            : load_rung_;
  set_effective(now, want, reason);
}

void RegimeController::on_breaker(long long now, bool degraded) {
  if (degraded == breaker_degraded_) return;
  breaker_degraded_ = degraded;
  refresh_effective(now, degraded ? RungMove::kBreakerDegrade
                                  : RungMove::kBreakerRestore);
}

void RegimeController::observe_queue(long long now, std::size_t depth) {
  last_depth_ = depth;
  step(now);
}

void RegimeController::observe_completion(long long now,
                                          bool missed_deadline) {
  if (miss_filled_ == miss_ring_.size()) {
    if (miss_ring_[miss_next_]) --misses_in_window_;
  } else {
    ++miss_filled_;
  }
  miss_ring_[miss_next_] = missed_deadline;
  if (missed_deadline) ++misses_in_window_;
  miss_next_ = (miss_next_ + 1) % miss_ring_.size();
  step(now);
}

void RegimeController::step(long long now) {
  const bool pressure = last_depth_ >= descend_depth_ ||
                        misses_in_window_ >= cfg_.descend_miss_count;
  const bool calm = last_depth_ <= ascend_depth_ &&
                    misses_in_window_ <= cfg_.ascend_miss_count;
  if (pressure) {
    calm_streak_ = 0;
    // Fast descent — but only onto rungs that actually buy throughput
    // (deeper-than-home rungs are strictly faster by construction). On a
    // PR 5 pair [fallback, primary] home is the deepest rung, so load
    // pressure never moves anything and the behavior is exactly PR 5.
    if (load_rung_ < deepest_ &&
        now - last_move_cycle_ >= cfg_.descend_dwell_cycles) {
      ++load_rung_;
      last_move_cycle_ = now;
      refresh_effective(now, RungMove::kLoadDescend);
    }
    return;
  }
  if (!calm) {
    calm_streak_ = 0;
    return;
  }
  // Slow, dwell-gated ascent: one rung at a time toward home, each step
  // requiring a fresh calm streak, so recovery cannot flap against a load
  // oscillation shorter than the ascend dwell.
  ++calm_streak_;
  if (load_rung_ > home_ && calm_streak_ >= cfg_.ascend_calm_streak &&
      now - last_move_cycle_ >= cfg_.ascend_dwell_cycles) {
    --load_rung_;
    last_move_cycle_ = now;
    calm_streak_ = 0;
    refresh_effective(now, RungMove::kLoadAscend);
  }
}

void RegimeController::finish(long long now) {
  cycles_[static_cast<std::size_t>(effective_)] +=
      std::max<long long>(now - integrated_until_, 0);
  integrated_until_ = std::max(integrated_until_, now);
}

}  // namespace hetacc::serve
