#include "serve/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace hetacc::serve {

void LatencyHistogram::record(long long cycles) {
  samples_.push_back(cycles < 0 ? 0 : cycles);
  sorted_ = samples_.size() <= 1;
}

void LatencyHistogram::sort() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

long long LatencyHistogram::percentile(double p) const {
  if (samples_.empty()) return 0;
  sort();
  const double clamped = std::min(std::max(p, 0.0), 100.0);
  // Nearest-rank: smallest sample with at least p% of the mass at or below.
  const std::size_t rank = static_cast<std::size_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(samples_.size())));
  return samples_[rank == 0 ? 0 : rank - 1];
}

long long LatencyHistogram::max() const {
  if (samples_.empty()) return 0;
  sort();
  return samples_.back();
}

double LatencyHistogram::mean() const {
  if (samples_.empty()) return 0.0;
  long double sum = 0.0;
  for (const long long s : samples_) sum += static_cast<long double>(s);
  return static_cast<double>(sum / static_cast<long double>(samples_.size()));
}

std::string LatencyHistogram::summary() const {
  sort();
  std::ostringstream os;
  std::size_t i = 0;
  while (i < samples_.size()) {
    // Bucket [2^k, 2^(k+1)) holding samples_[i].
    long long lo = 1;
    while (lo * 2 <= std::max<long long>(samples_[i], 1)) lo *= 2;
    if (samples_[i] == 0) lo = 0;
    const long long hi = lo == 0 ? 1 : lo * 2;
    std::size_t n = 0;
    while (i < samples_.size() && samples_[i] >= lo && samples_[i] < hi) {
      ++n;
      ++i;
    }
    os << "    [" << lo << ", " << hi << "): " << n << "\n";
  }
  return os.str();
}

bool LatencyHistogram::operator==(const LatencyHistogram& o) const {
  sort();
  o.sort();
  return samples_ == o.samples_;
}

bool ServerStats::operator==(const ServerStats& o) const {
  return submitted == o.submitted &&
         rejected_queue_full == o.rejected_queue_full &&
         shed_deadline == o.shed_deadline && completed == o.completed &&
         failed == o.failed && completed_degraded == o.completed_degraded &&
         deadline_misses == o.deadline_misses && retries == o.retries &&
         faults_absorbed == o.faults_absorbed &&
         breaker_opens == o.breaker_opens &&
         breaker_closes == o.breaker_closes && queue_peak == o.queue_peak &&
         rung_completions == o.rung_completions &&
         rung_cycles == o.rung_cycles &&
         rung_transitions == o.rung_transitions &&
         response_hash == o.response_hash && latency == o.latency;
}

std::string ServerStats::summary() const {
  std::ostringstream os;
  os << "  submitted   " << submitted << "\n"
     << "  completed   " << completed << " (" << completed_degraded
     << " degraded, " << deadline_misses << " past deadline)\n"
     << "  rejected    " << rejected_queue_full << " (queue full)\n"
     << "  shed        " << shed_deadline << " (already late)\n"
     << "  failed      " << failed << "\n"
     << "  retries     " << retries << ", faults absorbed "
     << faults_absorbed << "\n"
     << "  breaker     " << breaker_opens << " opens, " << breaker_closes
     << " closes\n"
     << "  queue peak  " << queue_peak << "\n";
  if (!rung_completions.empty()) {
    os << "  rungs       ";
    for (std::size_t i = 0; i < rung_completions.size(); ++i) {
      if (i) os << " / ";
      os << "r" << i << ":" << rung_completions[i];
    }
    os << " completions, " << rung_transitions << " transitions\n";
  }
  os << "  latency     p50 " << latency.p50() << "  p99 " << latency.p99()
     << "  max " << latency.max() << " cycles\n"
     << "  accounted   " << (accounted() ? "yes" : "NO — REQUESTS LOST")
     << "\n";
  return os.str();
}

std::string ServerStats::to_json() const {
  std::ostringstream os;
  os << "{\"submitted\": " << submitted
     << ", \"completed\": " << completed
     << ", \"completed_degraded\": " << completed_degraded
     << ", \"rejected_queue_full\": " << rejected_queue_full
     << ", \"shed_deadline\": " << shed_deadline
     << ", \"failed\": " << failed << ", \"retries\": " << retries
     << ", \"faults_absorbed\": " << faults_absorbed
     << ", \"deadline_misses\": " << deadline_misses
     << ", \"breaker_opens\": " << breaker_opens
     << ", \"breaker_closes\": " << breaker_closes
     << ", \"queue_peak\": " << queue_peak
     << ", \"rung_completions\": [";
  for (std::size_t i = 0; i < rung_completions.size(); ++i) {
    if (i) os << ", ";
    os << rung_completions[i];
  }
  os << "], \"rung_cycles\": [";
  for (std::size_t i = 0; i < rung_cycles.size(); ++i) {
    if (i) os << ", ";
    os << rung_cycles[i];
  }
  os << "], \"rung_transitions\": " << rung_transitions
     << ", \"latency_p50\": " << latency.p50()
     << ", \"latency_p99\": " << latency.p99()
     << ", \"latency_max\": " << latency.max()
     << ", \"response_hash\": " << response_hash << "}";
  return os.str();
}

}  // namespace hetacc::serve
