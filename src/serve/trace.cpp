#include "serve/trace.h"

#include <sstream>

#include "support/error.h"

namespace hetacc::serve {

namespace {

/// splitmix64 finalizer (same mixing discipline as the fault layer: pure
/// function of the coordinates, so traces never depend on call order).
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

ArrivalTrace ArrivalTrace::synthetic(std::size_t n,
                                     long long mean_interarrival_cycles,
                                     std::uint64_t seed,
                                     double surge_factor) {
  ArrivalTrace t;
  t.requests.reserve(n);
  long long clock = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t h = mix64(seed ^ mix64(static_cast<std::uint64_t>(i)));
    // Uniform gap in [mean/2, 3*mean/2).
    const long long mean = std::max<long long>(mean_interarrival_cycles, 1);
    long long gap = mean / 2 + static_cast<long long>(
                                   h % static_cast<std::uint64_t>(mean));
    const bool in_surge = i >= n / 3 && i < 2 * n / 3;
    if (in_surge && surge_factor > 1.0) {
      gap = std::max<long long>(
          1, static_cast<long long>(static_cast<double>(gap) / surge_factor));
    }
    clock += gap;
    TraceRequest r;
    r.id = static_cast<std::uint64_t>(i);
    r.arrival_cycle = clock;
    r.input_seed = static_cast<std::uint32_t>(h >> 32);
    t.requests.push_back(r);
  }
  return t;
}

ArrivalTrace ArrivalTrace::oscillating(std::size_t periods,
                                       std::size_t per_phase,
                                       long long burst_interarrival_cycles,
                                       long long lull_interarrival_cycles,
                                       std::uint64_t seed) {
  ArrivalTrace t;
  t.requests.reserve(periods * per_phase * 2);
  long long clock = 0;
  std::uint64_t i = 0;
  for (std::size_t p = 0; p < periods; ++p) {
    for (int phase = 0; phase < 2; ++phase) {
      const long long mean = std::max<long long>(
          phase == 0 ? burst_interarrival_cycles : lull_interarrival_cycles,
          1);
      for (std::size_t k = 0; k < per_phase; ++k, ++i) {
        const std::uint64_t h = mix64(seed ^ mix64(i));
        // Same jitter discipline as synthetic(): uniform in [mean/2, 3mean/2).
        clock += mean / 2 + static_cast<long long>(
                                h % static_cast<std::uint64_t>(mean));
        TraceRequest r;
        r.id = i;
        r.arrival_cycle = clock;
        r.input_seed = static_cast<std::uint32_t>(h >> 32);
        t.requests.push_back(r);
      }
    }
  }
  return t;
}

std::string ArrivalTrace::to_csv() const {
  std::ostringstream os;
  os << "id,arrival_cycle,input_seed\n";
  for (const auto& r : requests) {
    os << r.id << ',' << r.arrival_cycle << ',' << r.input_seed << '\n';
  }
  return os.str();
}

ArrivalTrace ArrivalTrace::from_csv(const std::string& csv) {
  std::istringstream is(csv);
  std::string line;
  int lineno = 0;
  if (!std::getline(is, line)) {
    throw ParseError("arrival trace: empty input", 1);
  }
  ++lineno;
  if (line != "id,arrival_cycle,input_seed") {
    throw ParseError("arrival trace: bad header '" + line + "'", lineno);
  }
  ArrivalTrace t;
  long long prev_arrival = -1;
  std::uint64_t expect_id = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::istringstream row(line);
    std::string f0, f1, f2;
    if (!std::getline(row, f0, ',') || !std::getline(row, f1, ',') ||
        !std::getline(row, f2)) {
      throw ParseError("arrival trace: expected 3 fields, got '" + line + "'",
                       lineno);
    }
    TraceRequest r;
    try {
      std::size_t pos = 0;
      r.id = std::stoull(f0, &pos);
      if (pos != f0.size()) throw std::invalid_argument(f0);
      r.arrival_cycle = std::stoll(f1, &pos);
      if (pos != f1.size()) throw std::invalid_argument(f1);
      const unsigned long seed = std::stoul(f2, &pos);
      if (pos != f2.size()) throw std::invalid_argument(f2);
      r.input_seed = static_cast<std::uint32_t>(seed);
    } catch (const std::exception&) {
      throw ParseError("arrival trace: non-numeric field in '" + line + "'",
                       lineno);
    }
    if (r.id != expect_id) {
      throw ParseError("arrival trace: ids must be dense from 0 (got " +
                           f0 + ", expected " + std::to_string(expect_id) +
                           ")",
                       lineno);
    }
    if (r.arrival_cycle < 0 || r.arrival_cycle < prev_arrival) {
      throw ParseError(
          "arrival trace: arrival cycles must be non-negative and "
          "non-decreasing",
          lineno);
    }
    prev_arrival = r.arrival_cycle;
    ++expect_id;
    t.requests.push_back(r);
  }
  return t;
}

}  // namespace hetacc::serve
