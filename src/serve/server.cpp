#include "serve/server.h"

#include <algorithm>
#include <deque>
#include <future>
#include <limits>
#include <thread>

#include "fault/crc32.h"
#include "kernels/parallel.h"
#include "serve/queue.h"
#include "support/error.h"

namespace hetacc::serve {

namespace {

constexpr long long kInf = std::numeric_limits<long long>::max();

/// Folds (request id, response CRC) and the rung transition log into the
/// order-independent response digest via the shared mixer in stats.h.
constexpr std::uint64_t mix64(std::uint64_t x) { return digest_mix64(x); }

/// What a worker reports back to the dispatcher. Fault identity comes from
/// the structured FaultError payload, so the stats and the CLI can say what
/// failed, not just that something did.
struct JobResult {
  bool ok = false;
  std::string fault_stage;
  long long fault_unit = -1;
  std::uint32_t crc = 0;
};

/// One execution unit: (request, attempt) pinned to a ladder rung. The
/// dispatcher owns the Job; workers only borrow the pointer long enough to
/// fulfill the promise.
struct Job {
  std::uint64_t request_id = 0;
  int attempt = 1;
  int rung = 0;
  bool faulted = false;      ///< run against the fault-burst pipeline
  bool reset_first = false;  ///< retry path: reset() the pipeline first
  std::uint32_t input_seed = 0;
  std::promise<JobResult> done;
};

}  // namespace

Server::Server(nn::Network net, nn::WeightStore ws, ServingLadder ladder,
               ServerConfig cfg)
    : net_(std::move(net)),
      ws_(std::move(ws)),
      ladder_(std::move(ladder)),
      cfg_(cfg) {
  if (cfg_.replicas < 1) {
    throw ServeError(ServeError::Reason::kConfig,
                     "replicas must be >= 1, got " +
                         std::to_string(cfg_.replicas));
  }
  if (cfg_.queue_capacity < 1) {
    throw ServeError(ServeError::Reason::kConfig,
                     "queue capacity must be >= 1");
  }
  if (cfg_.max_retries < 0 || cfg_.backoff_base_cycles < 0 ||
      cfg_.backoff_cap_cycles < cfg_.backoff_base_cycles) {
    throw ServeError(ServeError::Reason::kConfig,
                     "invalid retry/backoff configuration");
  }
  if (ladder_.rungs.empty()) {
    throw ServeError(ServeError::Reason::kConfig,
                     "serving ladder must have at least one rung");
  }
  if (ladder_.home >= ladder_.rungs.size()) {
    throw ServeError(ServeError::Reason::kConfig,
                     "ladder home rung " + std::to_string(ladder_.home) +
                         " out of range (ladder has " +
                         std::to_string(ladder_.rungs.size()) + " rungs)");
  }
  const std::size_t layer_count = net_.empty() ? 0 : net_.size() - 1;
  const bool net_ok = !net_.empty() && net_[0].kind == nn::LayerKind::kInput;
  for (std::size_t i = 0; i < ladder_.rungs.size(); ++i) {
    const ServingMode& m = ladder_.rungs[i];
    if (m.service_cycles <= 0) {
      throw ServeError(ServeError::Reason::kConfig,
                       "service_cycles must be positive for every rung "
                       "(rung " + std::to_string(i) + ")");
    }
    if (!net_ok ||
        (!m.choices.empty() && m.choices.size() != layer_count)) {
      throw ServeError(
          ServeError::Reason::kConfig,
          "network/choices mismatch (net must start with an input "
          "layer; choices must cover every following layer)");
    }
    // Descending below home must buy throughput, or the load controller
    // would degrade accuracy for nothing. Rungs above home are merely "no
    // faster than their neighbor below" by convention and not enforced —
    // the PR 5 pair may price both modes identically.
    if (i > ladder_.home &&
        m.service_cycles >= ladder_.rungs[i - 1].service_cycles) {
      throw ServeError(ServeError::Reason::kConfig,
                       "rungs deeper than home must be strictly faster: "
                       "rung " + std::to_string(i) + " is not");
    }
  }
}

Server::Server(nn::Network net, nn::WeightStore ws, ServingMode primary,
               ServingMode fallback, ServerConfig cfg)
    : Server(std::move(net), std::move(ws),
             [&] {
               ServingLadder l;
               if (fallback.label.empty()) fallback.label = "fallback";
               if (primary.label.empty()) primary.label = "primary";
               l.rungs.push_back(std::move(fallback));
               l.rungs.push_back(std::move(primary));
               l.home = 1;  // home == deepest: the load axis is inert, so
                            // behavior is byte-identical to the PR 5 pair
               return l;
             }(),
             cfg) {}

Server::~Server() = default;

ServerStats Server::run(const ArrivalTrace& trace) {
  breaker_log_.clear();
  rung_log_.clear();
  for (std::size_t i = 0; i < trace.requests.size(); ++i) {
    if (trace.requests[i].id != i) {
      throw ServeError(ServeError::Reason::kConfig,
                       "trace ids must be dense from 0");
    }
  }

  ServerStats stats;
  stats.rung_completions.assign(ladder_.rungs.size(), 0);
  SimClock internal_clock;
  Clock* const clock = cfg_.clock ? cfg_.clock : &internal_clock;
  CircuitBreaker breaker(cfg_.breaker);
  std::vector<long long> rung_cycles(ladder_.rungs.size());
  for (std::size_t i = 0; i < ladder_.rungs.size(); ++i) {
    rung_cycles[i] = ladder_.rungs[i].service_cycles;
  }
  RegimeController regime(std::move(rung_cycles), ladder_.home,
                          cfg_.queue_capacity, cfg_.regime);
  const int home = regime.home();

  const std::size_t n = trace.requests.size();
  const int replicas = cfg_.replicas;
  std::vector<long long> busy_until(static_cast<std::size_t>(replicas), -1);

  // ---- Real execution machinery: bounded job queue + worker threads. ----
  // The dispatcher never has more than `replicas` jobs outstanding, so the
  // extra slack keeps push() from blocking in normal operation while still
  // bounding the queue (back-pressure if anything ever misbehaves).
  BoundedQueue<Job*> exec_q(static_cast<std::size_t>(replicas) + 2);
  const int worker_count = std::max(
      1, std::min(kernels::resolve_threads(cfg_.threads), replicas));
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(worker_count));
  for (int w = 0; w < worker_count; ++w) {
    workers.emplace_back([this, &exec_q, &trace, home] {
      // Worker-owned pipeline instances, built on first use: at most one
      // per rung this worker actually serves, plus the home rung with the
      // trace's fault burst installed. Owning them per worker keeps every
      // run() data-race-free without locking the pipelines.
      std::vector<std::unique_ptr<arch::FusionPipeline>> rung_pipes(
          ladder_.rungs.size());
      std::unique_ptr<arch::FusionPipeline> faulted;
      Job* job = nullptr;
      while (exec_q.pop(job)) {
        JobResult r;
        try {
          arch::FusionPipeline* p = nullptr;
          if (job->faulted) {
            if (!faulted) {
              faulted = std::make_unique<arch::FusionPipeline>(
                  net_, ws_,
                  ladder_.rungs[static_cast<std::size_t>(home)].choices);
              faulted->install_fault_plan(
                  trace.burst.plan,
                  ladder_.rungs[static_cast<std::size_t>(home)].protect);
            }
            p = faulted.get();
          } else {
            auto& slot = rung_pipes[static_cast<std::size_t>(job->rung)];
            if (!slot) {
              slot = std::make_unique<arch::FusionPipeline>(
                  net_, ws_,
                  ladder_.rungs[static_cast<std::size_t>(job->rung)]
                      .choices);
            }
            p = slot.get();
          }
          if (job->reset_first) p->reset();
          nn::Tensor in(net_[0].out);
          nn::fill_deterministic(in, job->input_seed);
          const nn::Tensor out = p->run(in);
          r.ok = true;
          r.crc = fault::crc32_f32(out.data(), out.vec().size());
        } catch (const FaultError& e) {
          r.ok = false;
          r.fault_stage = e.stage();
          r.fault_unit = e.unit();
        } catch (const std::exception& e) {
          r.ok = false;
          r.fault_stage = std::string("internal: ") + e.what();
        }
        job->done.set_value(std::move(r));
      }
    });
  }

  // ---- Deterministic dispatcher: a discrete-event loop in virtual time.
  struct InFlight {
    long long completion = 0;
    std::uint64_t id = 0;
    int attempt = 1;
    int rung = 0;
    bool probe = false;
    int replica = 0;
    std::unique_ptr<Job> job;
    std::future<JobResult> fut;
  };
  struct Retry {
    long long eligible = 0;
    std::uint64_t id = 0;
    int attempt = 1;
    bool force_fallback = false;
  };
  std::vector<InFlight> inflight;
  std::vector<Retry> retries;
  std::deque<std::uint64_t> waitq;
  std::size_t next_arrival = 0;
  long long last_event = 0;  ///< latest virtual cycle any event carried

  const auto backoff = [&](int attempt) {
    long long b = std::max<long long>(cfg_.backoff_base_cycles, 1);
    for (int i = 1; i < attempt && b < cfg_.backoff_cap_cycles; ++i) b <<= 1;
    return std::min(b, std::max(cfg_.backoff_cap_cycles, b));
  };
  const auto free_replica = [&]() -> int {
    for (int k = 0; k < replicas; ++k) {
      if (busy_until[static_cast<std::size_t>(k)] < 0) return k;
    }
    return -1;
  };
  const auto pick_retry = [&](long long now) -> int {
    int best = -1;
    for (std::size_t i = 0; i < retries.size(); ++i) {
      if (retries[i].eligible > now) continue;
      if (best < 0 || retries[i].eligible < retries[static_cast<std::size_t>(
                                                        best)].eligible ||
          (retries[i].eligible ==
               retries[static_cast<std::size_t>(best)].eligible &&
           retries[i].id < retries[static_cast<std::size_t>(best)].id)) {
        best = static_cast<int>(i);
      }
    }
    return best;
  };

  const auto try_dispatch = [&](long long now) {
    while (true) {
      const int k = free_replica();
      if (k < 0) return;
      std::uint64_t id = 0;
      int attempt = 1;
      bool force_fb = false;
      const int ri = pick_retry(now);
      if (ri >= 0) {
        id = retries[static_cast<std::size_t>(ri)].id;
        attempt = retries[static_cast<std::size_t>(ri)].attempt;
        force_fb = retries[static_cast<std::size_t>(ri)].force_fallback;
        retries.erase(retries.begin() + ri);
      } else if (!waitq.empty()) {
        id = waitq.front();
        waitq.pop_front();
      } else {
        return;
      }
      // Load-shedding: a request that is already past its deadline is
      // dropped here instead of wasting a replica on an answer nobody
      // will take. The Clock is what enforces the deadline — virtual in
      // deterministic runs, wall-clock with a SteadyClock.
      const long long observed = std::max(now, clock->now());
      if (cfg_.deadline_cycles > 0 &&
          observed > trace.requests[id].arrival_cycle +
                         cfg_.deadline_cycles) {
        ++stats.shed_deadline;
        continue;
      }
      int rung = home;
      bool probe = false;
      if (force_fb) {
        // Retry budget exhausted on the home rung: downgrade onto the
        // conservative rung (the PR 5 "once to the fallback" path).
        rung = regime.conservative_rung();
      } else {
        const BreakerState st = breaker.state(now);
        regime.on_breaker(now, st != BreakerState::kClosed);
        if (st == BreakerState::kHalfOpen &&
            breaker.try_acquire_probe(now)) {
          rung = home;  // probes always test the primary rung
          probe = true;
        } else {
          rung = regime.rung();
        }
      }
      const ServingMode& m = ladder_.rungs[static_cast<std::size_t>(rung)];
      InFlight f;
      f.completion = now + m.service_cycles;
      f.id = id;
      f.attempt = attempt;
      f.rung = rung;
      f.probe = probe;
      f.replica = k;
      f.job = std::make_unique<Job>();
      f.job->request_id = id;
      f.job->attempt = attempt;
      f.job->rung = rung;
      // The trace's fault burst strikes the primary design; any rung off
      // home — the pre-hardened conservative strategy or a load-descended
      // deep rung — runs on a pipeline the burst does not cover.
      f.job->faulted = rung == home && trace.burst.covers(now);
      f.job->reset_first = attempt > 1;
      f.job->input_seed = trace.requests[id].input_seed;
      f.fut = f.job->done.get_future();
      busy_until[static_cast<std::size_t>(k)] = f.completion;
      exec_q.push(f.job.get());
      inflight.push_back(std::move(f));
    }
  };

  const auto handle_completion = [&](InFlight f) {
    const long long now = f.completion;
    clock->advance_to(now);
    JobResult r = f.fut.get();  // real execution may still be running
    busy_until[static_cast<std::size_t>(f.replica)] = -1;
    if (r.ok) {
      const long long lat = now - trace.requests[f.id].arrival_cycle;
      ++stats.completed;
      ++stats.rung_completions[static_cast<std::size_t>(f.rung)];
      if (f.rung != home) ++stats.completed_degraded;
      if (f.attempt > 1) ++stats.faults_absorbed;
      stats.latency.record(lat);
      stats.response_hash +=
          mix64((f.id + 1) * 0x9E3779B97F4A7C15ull ^ r.crc);
      const bool late =
          cfg_.deadline_cycles > 0 && lat > cfg_.deadline_cycles;
      if (late) ++stats.deadline_misses;
      if (f.rung == home) {
        if (late) {
          breaker.record_deadline_miss(now);
        } else {
          breaker.record_success(now);
        }
      }
      regime.observe_completion(now, late);
    } else {
      if (f.rung == home) breaker.record_failure(now);
      if (f.rung != home) {
        // An off-home strategy faulted too: nothing left to downgrade to.
        ++stats.failed;
      } else {
        // Transient primary fault: re-dispatch after deterministic capped
        // exponential backoff — to a reset() primary while the retry
        // budget lasts, then once to the conservative rung.
        ++stats.retries;
        retries.push_back({now + backoff(f.attempt), f.id, f.attempt + 1,
                           f.attempt > cfg_.max_retries});
      }
    }
    // Breaker moves caused by this completion (open on failures, close on
    // probe success) move the rung pointer at the same virtual cycle.
    regime.on_breaker(now, breaker.current() != BreakerState::kClosed);
  };

  // Event loop. Ties resolve completions < retries < arrivals so resources
  // free up before new work claims them; every rule is fixed, so the
  // trajectory is a pure function of (trace, config).
  try {
    while (next_arrival < n || !waitq.empty() || !retries.empty() ||
           !inflight.empty()) {
      const long long t_arr =
          next_arrival < n ? trace.requests[next_arrival].arrival_cycle
                           : kInf;
      long long t_comp = kInf;
      for (const auto& f : inflight) t_comp = std::min(t_comp, f.completion);
      long long t_ret = kInf;
      if (free_replica() >= 0) {
        for (const auto& r : retries) t_ret = std::min(t_ret, r.eligible);
      }
      if (t_comp <= t_arr && t_comp <= t_ret) {
        std::size_t best = 0;
        for (std::size_t i = 1; i < inflight.size(); ++i) {
          const auto& a = inflight[i];
          const auto& b = inflight[best];
          if (a.completion < b.completion ||
              (a.completion == b.completion &&
               (a.id < b.id || (a.id == b.id && a.attempt < b.attempt)))) {
            best = i;
          }
        }
        InFlight f = std::move(inflight[best]);
        inflight.erase(inflight.begin() + static_cast<long>(best));
        const long long now = f.completion;
        last_event = std::max(last_event, now);
        handle_completion(std::move(f));
        try_dispatch(now);
      } else if (t_ret <= t_arr && t_ret < kInf) {
        clock->advance_to(t_ret);
        last_event = std::max(last_event, t_ret);
        try_dispatch(t_ret);
      } else if (t_arr < kInf) {
        clock->advance_to(t_arr);
        last_event = std::max(last_event, t_arr);
        const std::uint64_t id = trace.requests[next_arrival].id;
        ++next_arrival;
        ++stats.submitted;
        if (waitq.size() >= cfg_.queue_capacity) {
          // Admission control: the bounded queue is full. A client API
          // surfaces this as ServeError(kQueueFull); the trace runner
          // records it and moves on.
          ++stats.rejected_queue_full;
        } else {
          waitq.push_back(id);
          stats.queue_peak = std::max(
              stats.queue_peak, static_cast<long long>(waitq.size()));
        }
        // The load axis watches the admission queue at its high-water
        // moments — arrivals — and the miss window at completions.
        regime.observe_queue(t_arr, waitq.size());
        try_dispatch(t_arr);
      } else {
        break;  // defensive: cannot happen (waitq implies busy replicas)
      }
    }
  } catch (...) {
    exec_q.close();
    for (auto& w : workers) w.join();
    throw;
  }

  exec_q.close();
  for (auto& w : workers) w.join();

  regime.finish(last_event);
  rung_log_ = regime.log();
  stats.rung_cycles = regime.cycles_in_rung();
  stats.rung_transitions = static_cast<long long>(rung_log_.size());
  // Fold the walk itself into the digest: runs only match if they moved
  // between the same rungs, for the same reasons, at the same cycles.
  for (const RungTransition& t : rung_log_) {
    stats.response_hash += mix64(
        static_cast<std::uint64_t>(t.cycle) * 0x2545F4914F6CDD1Dull ^
        (static_cast<std::uint64_t>(static_cast<unsigned>(t.from)) << 24) ^
        (static_cast<std::uint64_t>(static_cast<unsigned>(t.to)) << 16) ^
        static_cast<std::uint64_t>(static_cast<unsigned>(t.reason)));
  }

  stats.breaker_opens = breaker.opens();
  stats.breaker_closes = breaker.closes();
  breaker_log_ = breaker.transitions();
  return stats;
}

}  // namespace hetacc::serve
