#pragma once
// Virtual-clock abstraction for the serving runtime. All request-lifecycle
// accounting (arrivals, deadlines, backoff, breaker cooldowns, latency
// histograms) is expressed in accelerator cycles read off a Clock, never in
// wall time, so the same trace + seed produces byte-identical ServerStats
// for any worker-thread count:
//
//  * SimClock — a plain cycle counter the dispatcher advances from trace
//    events. The default everywhere determinism matters (tests, the CI soak,
//    `hetacc --serve`).
//  * SteadyClock — maps std::chrono::steady_clock onto cycles at a
//    configured frequency, for driving the runtime against real traffic.
//    Stats taken from it are real measurements, not reproducible ones.

#include <chrono>
#include <cstdint>

namespace hetacc::serve {

class Clock {
 public:
  virtual ~Clock() = default;
  /// Current time in cycles (monotonic, starts near 0).
  [[nodiscard]] virtual long long now() const = 0;
  /// Moves the clock forward to `cycle` if that is in the future. Virtual
  /// clocks jump; real clocks ignore this (time advances by itself).
  virtual void advance_to(long long cycle) = 0;
};

/// Deterministic simulated clock: a counter advanced by the dispatcher.
class SimClock final : public Clock {
 public:
  [[nodiscard]] long long now() const override { return cycle_; }
  void advance_to(long long cycle) override {
    if (cycle > cycle_) cycle_ = cycle;
  }

 private:
  long long cycle_ = 0;
};

/// Wall-clock adapter: cycles = elapsed seconds * frequency_hz.
class SteadyClock final : public Clock {
 public:
  explicit SteadyClock(double frequency_hz = 100e6)
      : frequency_hz_(frequency_hz),
        start_(std::chrono::steady_clock::now()) {}

  [[nodiscard]] long long now() const override {
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - start_;
    return static_cast<long long>(dt.count() * frequency_hz_);
  }
  void advance_to(long long) override {}  // real time advances on its own

 private:
  double frequency_hz_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace hetacc::serve
