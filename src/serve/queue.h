#pragma once
// Bounded MPMC queue — the serving runtime's only hand-off point between
// the dispatcher and the execution workers. Two disciplines on a full
// queue, matching the two roles it plays:
//
//  * try_push() — admission control: refuses immediately (the caller turns
//    that into a typed ServeError(kQueueFull) / a rejected-request stat).
//    The queue can therefore never grow beyond its capacity, no matter how
//    hard the arrival process overshoots the service rate.
//  * push() — back-pressure: blocks the producer until a consumer drains a
//    slot (used for the dispatcher -> worker job stream, where the
//    dispatcher *wants* to be throttled to the execution rate).
//
// Plain mutex + two condition variables; nothing lock-free. The stress test
// in tests/test_serve.cpp runs producers and consumers against it under
// TSan, and the determinism argument of DESIGN.md §11 never depends on
// pop ordering across consumers.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

namespace hetacc::serve {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  [[nodiscard]] std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return q_.size();
  }

  /// Non-blocking admission: false when the queue is full or closed.
  [[nodiscard]] bool try_push(T item) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || q_.size() >= capacity_) return false;
      q_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocking producer: waits for a free slot (back-pressure). Returns
  /// false only if the queue was closed while waiting.
  bool push(T item) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_full_.wait(lock,
                     [&] { return closed_ || q_.size() < capacity_; });
      if (closed_) return false;
      q_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocking consumer: waits for an item. Returns false once the queue is
  /// closed *and* drained — the worker-loop termination condition.
  bool pop(T& out) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_empty_.wait(lock, [&] { return closed_ || !q_.empty(); });
      if (q_.empty()) return false;  // closed and drained
      out = std::move(q_.front());
      q_.pop_front();
    }
    not_full_.notify_one();
    return true;
  }

  /// Marks the queue closed: producers fail, consumers drain then exit.
  void close() {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> q_;
  bool closed_ = false;
};

}  // namespace hetacc::serve
