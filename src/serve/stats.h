#pragma once
// Serving-runtime statistics snapshot. Every number here is derived from
// virtual-clock events, so for a given trace + seed + server config the
// whole struct — histogram included — is byte-identical for any worker
// thread count (the determinism contract test_serve pins). The invariant
// `accounted()` is the zero-lost-requests guarantee the CI soak asserts:
// every submitted request ends in exactly one of completed / rejected /
// shed / failed.

#include <cstdint>
#include <string>
#include <vector>

namespace hetacc::serve {

/// splitmix64 finalizer — the shared counter-hash primitive every serving
/// response digest folds with (single server, fleet, and the fault layer's
/// identity hashes all use the same mixer, so digests compose). Pure and
/// constexpr: a digest is a function of virtual-time event order only.
[[nodiscard]] constexpr std::uint64_t digest_mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Latency distribution in cycles. Samples are kept exactly (a serving
/// trace is bounded), so percentiles are exact order statistics and
/// equality is multiset equality — the strongest determinism check.
/// summary() renders the conventional log2-bucketed histogram view.
class LatencyHistogram {
 public:
  void record(long long cycles);

  [[nodiscard]] long long count() const {
    return static_cast<long long>(samples_.size());
  }
  /// Exact p-th percentile (nearest-rank), 0 when empty. p in [0, 100].
  [[nodiscard]] long long percentile(double p) const;
  [[nodiscard]] long long p50() const { return percentile(50.0); }
  [[nodiscard]] long long p99() const { return percentile(99.0); }
  [[nodiscard]] long long max() const;
  [[nodiscard]] double mean() const;

  /// "bucket_lo..bucket_hi: count" lines, log2 buckets, for reports.
  [[nodiscard]] std::string summary() const;

  bool operator==(const LatencyHistogram& o) const;

 private:
  /// Sorted on demand by the accessors; recorded order is irrelevant by
  /// construction (completion events are applied in virtual-time order).
  mutable std::vector<long long> samples_;
  mutable bool sorted_ = true;
  void sort() const;
};

struct ServerStats {
  // Request accounting (each submitted request lands in exactly one bin).
  long long submitted = 0;
  long long rejected_queue_full = 0;  ///< admission control said no
  long long shed_deadline = 0;        ///< dropped: already late at dispatch
  long long completed = 0;            ///< response delivered
  long long failed = 0;               ///< every attempt + fallback faulted

  // Lifecycle detail.
  long long completed_degraded = 0;   ///< served from the fallback strategy
  long long deadline_misses = 0;      ///< completed, but after the deadline
  long long retries = 0;              ///< re-dispatches after a fault
  long long faults_absorbed = 0;      ///< faulted attempts that a retry or
                                      ///< the fallback strategy hid
  long long breaker_opens = 0;
  long long breaker_closes = 0;
  long long queue_peak = 0;           ///< max virtual queue occupancy

  // Degradation-ladder accounting (index-aligned with the ladder rungs;
  // sized by Server::run). A two-rung PR 5 pair reports here too:
  // rung_completions = {fallback, primary} completions.
  std::vector<long long> rung_completions;
  /// Virtual cycles the effective rung pointer spent at each rung.
  std::vector<long long> rung_cycles;
  long long rung_transitions = 0;     ///< moves in the rung-transition log

  LatencyHistogram latency;           ///< completed requests, cycles

  /// Order-independent digest of every delivered response payload (CRC-32
  /// of the output tensor folded with the request id), plus the full rung
  /// transition log folded in at the end of the run. Two runs that agree
  /// here delivered bitwise-identical answers to every request *and*
  /// walked the degradation ladder identically.
  std::uint64_t response_hash = 0;

  /// Zero-lost-requests invariant.
  [[nodiscard]] bool accounted() const {
    return submitted ==
           rejected_queue_full + shed_deadline + completed + failed;
  }

  bool operator==(const ServerStats& o) const;

  [[nodiscard]] std::string summary() const;
  [[nodiscard]] std::string to_json() const;
};

}  // namespace hetacc::serve
