#include "serve/prepack_cache.h"

#include <algorithm>
#include <stdexcept>

namespace hetacc::serve {

PrepackCache::Lease PrepackCache::acquire(const std::string& key,
                                          const Builder& build) {
  if (share_) {
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++it->second.refs;
      ++stats_.hits;
      stats_.bytes_saved += it->second.bytes;
      return {it->second.bundle, key, true};
    }
  }
  Lease lease;
  lease.bundle = build();
  if (!lease.bundle) {
    throw std::logic_error("PrepackCache: builder returned null bundle");
  }
  lease.key = share_ ? key : key + "#" + std::to_string(serial_++);
  lease.hit = false;
  Entry e;
  e.bundle = lease.bundle;
  e.refs = 1;
  e.bytes = lease.bundle->resident_bytes();
  stats_.resident_bytes += e.bytes;
  stats_.peak_resident_bytes =
      std::max(stats_.peak_resident_bytes, stats_.resident_bytes);
  ++stats_.misses;
  entries_.emplace(lease.key, std::move(e));
  return lease;
}

void PrepackCache::release(const Lease& lease) {
  auto it = entries_.find(lease.key);
  if (it == entries_.end() || it->second.refs <= 0) {
    throw std::logic_error("PrepackCache: release without a live lease on '" +
                           lease.key + "'");
  }
  if (--it->second.refs == 0) {
    stats_.resident_bytes -= it->second.bytes;
    ++stats_.evictions;
    entries_.erase(it);
  }
}

long long PrepackCache::refcount(const std::string& key) const {
  auto it = entries_.find(key);
  return it == entries_.end() ? 0 : it->second.refs;
}

}  // namespace hetacc::serve
