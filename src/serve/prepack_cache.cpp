#include "serve/prepack_cache.h"

#include <algorithm>
#include <stdexcept>

namespace hetacc::serve {

PrepackCache::Lease PrepackCache::acquire(const std::string& key,
                                          const Builder& build) {
  if (share_) {
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      Entry& e = it->second;
      const bool dirty =
          verify_ && (e.corrupt || e.bundle->content_crc() != e.crc);
      if (!dirty) {
        ++e.refs;
        ++stats_.hits;
        stats_.bytes_saved += e.bytes;
        return {e.bundle, key, true, false};
      }
      // Scrub: the resident master copy is corrupted. Re-derive a clean
      // bundle and swap it in for this and future leases; peers that already
      // adopted the old pointer keep their (on-chip) copies alive — only the
      // cache's hand-out changes. Counts as a miss: the lease paid a build.
      auto fresh = build();
      if (!fresh) {
        throw std::logic_error("PrepackCache: builder returned null bundle");
      }
      const long long fresh_bytes = fresh->resident_bytes();
      stats_.resident_bytes += fresh_bytes - e.bytes;
      stats_.peak_resident_bytes =
          std::max(stats_.peak_resident_bytes, stats_.resident_bytes);
      e.bundle = std::move(fresh);
      e.bytes = fresh_bytes;
      e.crc = verify_ ? e.bundle->content_crc() : 0u;
      e.corrupt = false;
      ++e.refs;
      ++stats_.misses;
      ++stats_.scrubs;
      return {e.bundle, key, false, true};
    }
  }
  Lease lease;
  lease.bundle = build();
  if (!lease.bundle) {
    throw std::logic_error("PrepackCache: builder returned null bundle");
  }
  lease.key = share_ ? key : key + "#" + std::to_string(serial_++);
  lease.hit = false;
  Entry e;
  e.bundle = lease.bundle;
  e.refs = 1;
  e.bytes = lease.bundle->resident_bytes();
  e.crc = verify_ ? e.bundle->content_crc() : 0u;
  stats_.resident_bytes += e.bytes;
  stats_.peak_resident_bytes =
      std::max(stats_.peak_resident_bytes, stats_.resident_bytes);
  ++stats_.misses;
  entries_.emplace(lease.key, std::move(e));
  return lease;
}

void PrepackCache::release(const Lease& lease) {
  auto it = entries_.find(lease.key);
  if (it == entries_.end() || it->second.refs <= 0) {
    throw std::logic_error("PrepackCache: release without a live lease on '" +
                           lease.key + "'");
  }
  if (--it->second.refs == 0) {
    stats_.resident_bytes -= it->second.bytes;
    ++stats_.evictions;
    entries_.erase(it);
  }
}

bool PrepackCache::corrupt_resident(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  it->second.corrupt = true;
  return true;
}

long long PrepackCache::refcount(const std::string& key) const {
  auto it = entries_.find(key);
  return it == entries_.end() ? 0 : it->second.refs;
}

}  // namespace hetacc::serve
