#pragma once
// The automatic tool-flow of paper Fig. 3: Caffe configuration file + FPGA
// specification in, optimized strategy + generated HLS project + report out.
// (The final Vivado bitstream compilation is the one step that requires the
// vendor toolchain; everything up to and including validated HLS source is
// produced here.)

#include "caffe/importer.h"
#include "codegen/generator.h"
#include "core/dp_optimizer.h"
#include "core/report.h"

namespace hetacc::toolflow {

struct ToolflowOptions {
  /// Feature-map transfer budget T. 0 = use the network's minimal possible
  /// transfer (fully fused if feasible).
  long long transfer_budget_bytes = 0;
  core::OptimizerOptions optimizer;
  codegen::CodegenOptions codegen;
  /// Generate HLS source (requires weights; deterministic weights are
  /// synthesized when none are supplied).
  bool generate_code = true;
  std::uint32_t weight_seed = 42;
  /// Worker threads for the fusion-table DSE *and* the kernel layer used by
  /// functional simulation (kernels::set_num_threads is called with the
  /// resolved value). 0 = inherit optimizer.threads; any other value
  /// overrides it (see OptimizerOptions::threads). Neither the strategy nor
  /// any simulated tensor depends on this knob — parallelism only splits
  /// independent outputs.
  int threads = 0;
  /// Harden the design against transient faults: per-engine CRC/watchdog
  /// logic (EngineModelParams::protect) and CRC-checked DDR bursts
  /// (Device::protection). The optimizer then re-trades the whole strategy
  /// under the protected resource vectors and transfer latencies.
  bool protect = false;
};

struct ToolflowResult {
  nn::Network full_net;    ///< as imported
  nn::Network accel_net;   ///< the FPGA-mapped portion (FC stack dropped)
  core::OptimizeResult optimization;
  core::StrategyReport report;
  codegen::GeneratedDesign design;  ///< empty strings if generate_code=false

  [[nodiscard]] std::string summary() const;
};

/// Runs the flow on prototxt text.
[[nodiscard]] ToolflowResult run_toolflow(std::string_view prototxt,
                                          const fpga::Device& device,
                                          const ToolflowOptions& opt = {});

/// Runs the flow on an already-built network.
[[nodiscard]] ToolflowResult run_toolflow(const nn::Network& net,
                                          const fpga::Device& device,
                                          const ToolflowOptions& opt = {});

}  // namespace hetacc::toolflow
