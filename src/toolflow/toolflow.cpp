#include "toolflow/toolflow.h"

#include <sstream>

#include "kernels/parallel.h"
#include "support/error.h"

namespace hetacc::toolflow {

ToolflowResult run_toolflow(std::string_view prototxt,
                            const fpga::Device& device,
                            const ToolflowOptions& opt) {
  return run_toolflow(caffe::import_prototxt(prototxt), device, opt);
}

ToolflowResult run_toolflow(const nn::Network& net,
                            const fpga::Device& device,
                            const ToolflowOptions& opt) {
  ToolflowResult r;
  r.full_net = net;
  r.accel_net = net.accelerated_portion();

  // --protect hardens both accounting layers at once: per-engine CRC /
  // watchdog resources in the engine model and CRC-checked burst tails on
  // every DDR transfer priced by the cost layer. The optimizer re-trades the
  // whole strategy under these costs rather than patching one up post hoc.
  fpga::Device dev = device;
  fpga::EngineModelParams mp;
  if (opt.protect) {
    mp.protect = true;
    dev.protection.enabled = true;
  }
  const fpga::EngineModel model(dev, mp);
  core::OptimizerOptions oo = opt.optimizer;
  if (opt.threads != 0) oo.threads = opt.threads;
  // One knob governs every worker pool: the fusion-table DSE and the
  // functional-simulation kernel layer share the same thread count.
  kernels::set_num_threads(oo.threads);
  if (opt.transfer_budget_bytes > 0) {
    oo.transfer_budget_bytes = opt.transfer_budget_bytes;
  } else if (oo.transfer_budget_bytes <= 0) {
    // Minimal budget that still admits a solution: every partition's
    // transfer is at most the unfused total. One discretization unit of
    // slack per layer covers the per-group round-up in the DP.
    oo.transfer_budget_bytes =
        r.accel_net.unfused_feature_transfer_bytes(device.data_bytes) +
        static_cast<long long>(r.accel_net.size()) * oo.transfer_unit_bytes;
  }
  r.optimization = core::optimize(r.accel_net, model, oo);
  if (!r.optimization.feasible) {
    throw InfeasibleError("toolflow: " + r.optimization.infeasible_reason);
  }
  r.report = core::make_report(r.optimization.strategy, r.accel_net, dev);

  // HLS code generation still emits the chained-DATAFLOW template only;
  // branchy nets are optimized and simulated but not yet emitted.
  if (opt.generate_code && r.accel_net.is_chain()) {
    const auto ws =
        nn::WeightStore::deterministic(r.accel_net, opt.weight_seed);
    r.design = codegen::generate_design(r.accel_net, r.optimization.strategy,
                                        ws, opt.codegen);
  }
  return r;
}

std::string ToolflowResult::summary() const {
  std::ostringstream os;
  os << "tool-flow summary for '" << full_net.name() << "'\n";
  os << "  accelerated layers: " << accel_net.size() - 1 << " ("
     << accel_net.total_ops() / 1e9 << " GOP)\n";
  os << "  fusion groups: " << optimization.strategy.groups.size() << "\n";
  os << "  latency: " << report.latency_ms << " ms  ("
     << report.effective_gops << " effective GOPS)\n";
  os << "  feature-map transfer: "
     << static_cast<double>(report.feature_transfer_bytes) / (1024.0 * 1024.0)
     << " MB\n";
  os << "  peak resources: " << report.peak_resources.str() << "\n";
  os << "  power: " << report.power.total() << " W, energy efficiency "
     << report.energy_efficiency_gops_per_w << " GOPS/W\n";
  os << "  optimizer wall time: " << optimization.wall_seconds << " s\n";
  return os.str();
}

}  // namespace hetacc::toolflow
