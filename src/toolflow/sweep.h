#pragma once
// Design-space sweep driver: runs the optimizer over a grid of transfer
// budgets (and optionally devices / engine-model variants) and collects the
// frontier rows the exploration examples and benches print. The paper's
// Fig. 5 is one instance of this sweep.

#include <string>
#include <vector>

#include "core/dp_optimizer.h"
#include "core/report.h"

namespace hetacc::toolflow {

struct SweepPoint {
  std::string device;
  long long budget_bytes = 0;
  bool feasible = false;
  std::size_t groups = 0;
  core::StrategyReport report;
  /// The winning strategy itself (empty when infeasible) — the ladder
  /// builder turns frontier points into serving rungs.
  core::Strategy strategy;
};

struct SweepOptions {
  std::vector<long long> budgets_bytes;  ///< grid of T values
  core::OptimizerOptions optimizer;      ///< budget field is overwritten
};

/// Sweeps one device over the budget grid.
[[nodiscard]] std::vector<SweepPoint> sweep_budgets(
    const nn::Network& net, const fpga::EngineModel& model,
    const SweepOptions& opt);

/// Sweeps several devices over the same grid (same engine-model params).
[[nodiscard]] std::vector<SweepPoint> sweep_devices(
    const nn::Network& net, const std::vector<fpga::Device>& devices,
    const SweepOptions& opt);

/// CSV: device,budget_mb,feasible,groups,latency_ms,gops,dsp,bram,power_w,
/// gops_per_w,transfer_mb,fps
[[nodiscard]] std::string sweep_to_csv(const std::vector<SweepPoint>& points);

}  // namespace hetacc::toolflow
