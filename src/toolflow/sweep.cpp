#include "toolflow/sweep.h"

#include <sstream>

namespace hetacc::toolflow {

std::vector<SweepPoint> sweep_budgets(const nn::Network& net,
                                      const fpga::EngineModel& model,
                                      const SweepOptions& opt) {
  std::vector<SweepPoint> out;
  for (long long budget : opt.budgets_bytes) {
    SweepPoint p;
    p.device = model.device().name;
    p.budget_bytes = budget;
    core::OptimizerOptions oo = opt.optimizer;
    oo.transfer_budget_bytes = budget;
    const auto r = core::optimize(net, model, oo);
    p.feasible = r.feasible;
    if (r.feasible) {
      p.groups = r.strategy.groups.size();
      p.report = core::make_report(r.strategy, net, model.device());
      p.strategy = r.strategy;
    }
    out.push_back(std::move(p));
  }
  return out;
}

std::vector<SweepPoint> sweep_devices(const nn::Network& net,
                                      const std::vector<fpga::Device>& devices,
                                      const SweepOptions& opt) {
  std::vector<SweepPoint> out;
  for (const auto& dev : devices) {
    const fpga::EngineModel model(dev);
    auto rows = sweep_budgets(net, model, opt);
    out.insert(out.end(), rows.begin(), rows.end());
  }
  return out;
}

std::string sweep_to_csv(const std::vector<SweepPoint>& points) {
  std::ostringstream os;
  os << "device,budget_mb,feasible,groups,latency_ms,gops,dsp,bram,"
        "power_w,gops_per_w,transfer_mb,fps\n";
  for (const auto& p : points) {
    os << p.device << ',' << static_cast<double>(p.budget_bytes) / 1048576.0
       << ',' << (p.feasible ? 1 : 0) << ',' << p.groups << ',';
    if (p.feasible) {
      os << p.report.latency_ms << ',' << p.report.effective_gops << ','
         << p.report.peak_resources.dsp << ','
         << p.report.peak_resources.bram18k << ',' << p.report.power.total()
         << ',' << p.report.energy_efficiency_gops_per_w << ','
         << static_cast<double>(p.report.feature_transfer_bytes) / 1048576.0
         << ',' << p.report.throughput_fps;
    } else {
      os << ",,,,,,,";
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace hetacc::toolflow
