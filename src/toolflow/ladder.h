#pragma once
// Degradation-ladder builder: turns one (network, device) pair into the
// ordered vector of Pareto serving modes the resilient runtime hot-swaps
// between under load (serve/regime.h). The ladder reuses the pieces the
// toolflow already has, instead of inventing new design points:
//
//   rung 0       the --protect re-optimization (hardened engines, CRC DDR
//                bursts — slowest, survives fault bursts without retries)
//   rung `home`  the 16-bit latency-optimal primary strategy
//   deeper       strictly faster points: relaxed-transfer-budget sweeps
//                (sweep_budgets over a geometric grid above the minimal
//                fusion budget), the int8-mixed DSE, and the
//                conventional-i8 twin (every conv on the packed int8
//                datapath — maximum throughput, quantized accuracy)
//
// Candidates are deduplicated by modeled service time and sorted strictly
// decreasing, so descending the ladder always buys throughput. The result
// round-trips through the multi-strategy CSV form (core::ladder_to_csv) the
// way an operator would pre-compute and ship it.

#include <cstdint>
#include <string>
#include <vector>

#include "arch/pipeline.h"
#include "core/dp_optimizer.h"
#include "core/report.h"
#include "core/strategy_io.h"
#include "serve/server.h"

namespace hetacc::toolflow {

struct LadderRung {
  std::string label;       ///< "protected", "primary", "budget-2x", ...
  core::Strategy strategy;
  long long service_cycles = 0;  ///< strategy latency under its own pricing
  bool protect = false;    ///< priced/hardened under --protect
  bool int8 = false;       ///< any layer on the int8 datapath
  core::StrategyReport report;
};

struct LadderOptions {
  /// Rung-count cap (>= 2). Trimming keeps the conservative rung, home and
  /// the deepest rung, dropping the least-distinct intermediates first.
  std::size_t max_rungs = 4;
  /// Offer the int8-mixed DSE and the conventional-i8 twin as deep rungs.
  bool include_int8 = true;
  /// Relaxed-transfer-budget multipliers swept for intermediate rungs
  /// (relative to the minimal full-fusion budget the primary uses).
  std::vector<int> budget_multipliers = {2, 4};
  core::OptimizerOptions optimizer;
  int threads = 0;  ///< 0 = inherit optimizer.threads
};

struct ServingLadderPlan {
  std::vector<LadderRung> rungs;  ///< strictly decreasing service_cycles
  std::size_t home = 0;           ///< index of the primary rung
  nn::Network accel_net;          ///< the FPGA-mapped portion all rungs map

  /// Fixed-width rung table for the CLI report (one line per rung).
  [[nodiscard]] std::string table() const;

  /// The ladder in the serving runtime's shape. `layer_count` is the
  /// functional-testbed depth (choices are truncated to it); `modes16` and
  /// `modes_i8` are the calibration's per-layer numeric modes, index-aligned
  /// with testbed layers — each layer serves in the int8 grid exactly when
  /// its chosen engine runs the int8 datapath.
  [[nodiscard]] serve::ServingLadder to_serving_modes(
      std::size_t layer_count,
      const std::vector<arch::NumericMode>& modes16,
      const std::vector<arch::NumericMode>& modes_i8) const;

  /// Round-trip bridges to the multi-strategy CSV form.
  [[nodiscard]] std::vector<core::LadderRungCsv> to_csv_rungs() const;
  [[nodiscard]] static ServingLadderPlan from_csv_rungs(
      std::vector<core::LadderRungCsv> rungs, nn::Network accel_net);
};

/// Builds the ladder for `net` (the full network; the accelerated portion is
/// extracted the way run_toolflow does) on `dev`. Throws InfeasibleError if
/// even the primary strategy does not fit.
[[nodiscard]] ServingLadderPlan build_serving_ladder(
    const nn::Network& net, const fpga::Device& dev,
    const LadderOptions& opt = {});

/// Process-wide memo of build_serving_ladder keyed on (network name + size,
/// device name, options): repeated CLI runs and test fixtures pay the DSE
/// once. The reference stays valid for the process lifetime.
[[nodiscard]] const ServingLadderPlan& cached_serving_ladder(
    const nn::Network& net, const fpga::Device& dev,
    const LadderOptions& opt = {});

/// One model's functional serving testbed: the accelerated portion's leading
/// layers on a capped input (so 10k-request soaks stay fast), deterministic
/// weights, and the cached degradation ladder in the serving runtime's shape
/// — per-rung numeric modes from the testbed calibration, service cycles
/// from the full-strategy pricing. The per-model unit `hetacc --serve`,
/// `--fleet`, and the fleet benches all build; the DSE is paid once per
/// (model, device) through cached_serving_ladder.
struct TestbedLadder {
  nn::Network net;
  nn::WeightStore ws;
  serve::ServingLadder ladder;
};

[[nodiscard]] TestbedLadder build_testbed_ladder(
    const nn::Network& net, const fpga::Device& dev,
    const LadderOptions& opt = {}, std::size_t max_layers = 3,
    int max_hw = 32, std::uint32_t weight_seed = 42);

}  // namespace hetacc::toolflow
