#include "toolflow/ladder.h"

#include <algorithm>
#include <map>
#include <mutex>
#include <sstream>

#include "quant/calibration.h"
#include "support/error.h"
#include "toolflow/sweep.h"
#include "toolflow/toolflow.h"

namespace hetacc::toolflow {

namespace {

bool any_int8(const core::Strategy& s) {
  for (const auto& g : s.groups) {
    for (const auto& ipl : g.impls) {
      if (ipl.cfg.int8) return true;
    }
  }
  return false;
}

LadderRung make_rung(std::string label, core::Strategy strategy,
                     const nn::Network& accel_net, const fpga::Device& dev,
                     bool protect) {
  LadderRung r;
  r.label = std::move(label);
  r.service_cycles = strategy.latency_cycles();
  r.protect = protect;
  r.int8 = any_int8(strategy);
  r.report = core::make_report(strategy, accel_net, dev);
  r.strategy = std::move(strategy);
  return r;
}

}  // namespace

ServingLadderPlan build_serving_ladder(const nn::Network& net,
                                       const fpga::Device& dev,
                                       const LadderOptions& opt) {
  ServingLadderPlan plan;

  // Primary and protected rungs come straight from the toolflow the CLI
  // already runs (--protect re-trades the whole strategy under hardened
  // pricing; see toolflow.cpp). Infeasible primary is fatal — there is no
  // ladder without a home rung; an infeasible variant just drops its rung.
  ToolflowOptions topt;
  topt.generate_code = false;
  topt.optimizer = opt.optimizer;
  topt.threads = opt.threads;
  const ToolflowResult primary = run_toolflow(net, dev, topt);
  plan.accel_net = primary.accel_net;

  std::vector<LadderRung> cand;
  cand.push_back(make_rung("primary", primary.optimization.strategy,
                           plan.accel_net, dev, /*protect=*/false));

  ToolflowOptions popt = topt;
  popt.protect = true;
  try {
    const ToolflowResult prot = run_toolflow(net, dev, popt);
    fpga::Device pdev = dev;
    pdev.protection.enabled = true;
    cand.push_back(make_rung("protected", prot.optimization.strategy,
                             plan.accel_net, pdev, /*protect=*/true));
  } catch (const InfeasibleError&) {
    // Hardening overhead can push a near-full device over the edge; the
    // ladder then simply has no pre-hardened rung above home.
  }

  // Intermediate throughput rungs: relax the feature-map transfer budget
  // over a geometric grid above the minimal full-fusion budget the primary
  // uses. Looser budgets admit strategies the fused-transfer constraint
  // excluded, so the frontier descends in latency.
  const long long min_budget =
      plan.accel_net.unfused_feature_transfer_bytes(dev.data_bytes) +
      static_cast<long long>(plan.accel_net.size()) *
          opt.optimizer.transfer_unit_bytes;
  SweepOptions sopt;
  sopt.optimizer = opt.optimizer;
  if (opt.threads != 0) sopt.optimizer.threads = opt.threads;
  std::vector<int> mults;
  for (const int mult : opt.budget_multipliers) {
    if (mult > 1) {
      mults.push_back(mult);
      sopt.budgets_bytes.push_back(min_budget * mult);
    }
  }
  if (!sopt.budgets_bytes.empty()) {
    const fpga::EngineModel model(dev);
    const auto points = sweep_budgets(plan.accel_net, model, sopt);
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (!points[i].feasible) continue;
      cand.push_back(make_rung("budget-" + std::to_string(mults[i]) + "x",
                               points[i].strategy, plan.accel_net, dev,
                               /*protect=*/false));
    }
  }

  // Deep throughput rungs: the int8-mixed DSE (free to pick the packed
  // datapath per layer) and the conventional-i8 twin (Winograd withheld, so
  // every conv lands on the int8 conventional engine — the deepest,
  // maximum-throughput, quantized-accuracy rung).
  if (opt.include_int8) {
    core::OptimizerOptions oo = opt.optimizer;
    if (opt.threads != 0) oo.threads = opt.threads;
    if (oo.transfer_budget_bytes <= 0) oo.transfer_budget_bytes = min_budget;
    for (const bool wino : {true, false}) {
      fpga::EngineModelParams mp;
      mp.enable_int8 = true;
      mp.enable_winograd = wino;
      const fpga::EngineModel model(dev, mp);
      const auto r = core::optimize(plan.accel_net, model, oo);
      if (!r.feasible) continue;
      cand.push_back(make_rung(wino ? "int8-mixed" : "conventional-i8",
                               r.strategy, plan.accel_net, dev,
                               /*protect=*/false));
    }
  }

  // Dedup by modeled service time (primary was inserted first, so it always
  // survives a tie), then order slowest-first: the ladder must be strictly
  // monotone so every descent buys throughput.
  std::vector<LadderRung> rungs;
  for (auto& c : cand) {
    bool dup = false;
    for (const auto& kept : rungs) {
      if (kept.service_cycles == c.service_cycles) dup = true;
    }
    if (!dup) rungs.push_back(std::move(c));
  }
  std::stable_sort(rungs.begin(), rungs.end(),
                   [](const LadderRung& a, const LadderRung& b) {
                     return a.service_cycles > b.service_cycles;
                   });

  const auto find_home = [&rungs] {
    for (std::size_t i = 0; i < rungs.size(); ++i) {
      if (rungs[i].label == "primary") return i;
    }
    return std::size_t{0};
  };

  // Trim to the rung cap: the conservative top, home and the deepest rung
  // are load-bearing; drop the least-distinct intermediate first.
  const std::size_t cap = std::max<std::size_t>(opt.max_rungs, 2);
  while (rungs.size() > cap) {
    const std::size_t home = find_home();
    std::size_t victim = rungs.size();
    long long victim_gap = 0;
    for (std::size_t i = 1; i + 1 < rungs.size(); ++i) {
      if (i == home) continue;
      const long long gap =
          rungs[i - 1].service_cycles - rungs[i + 1].service_cycles;
      if (victim == rungs.size() || gap < victim_gap) {
        victim = i;
        victim_gap = gap;
      }
    }
    if (victim == rungs.size()) break;
    rungs.erase(rungs.begin() + static_cast<long>(victim));
  }

  plan.home = find_home();
  plan.rungs = std::move(rungs);
  return plan;
}

const ServingLadderPlan& cached_serving_ladder(const nn::Network& net,
                                               const fpga::Device& dev,
                                               const LadderOptions& opt) {
  static std::mutex mu;
  static std::map<std::string, ServingLadderPlan> cache;
  std::ostringstream key;
  key << net.name() << '|' << net.size() << '|' << net.total_ops() << '|'
      << dev.name << '|' << opt.max_rungs << '|' << opt.include_int8 << '|'
      << opt.optimizer.transfer_budget_bytes;
  for (const int m : opt.budget_multipliers) key << '|' << m;
  {
    std::lock_guard<std::mutex> lock(mu);
    const auto it = cache.find(key.str());
    if (it != cache.end()) return it->second;
  }
  ServingLadderPlan plan = build_serving_ladder(net, dev, opt);
  std::lock_guard<std::mutex> lock(mu);
  return cache.emplace(key.str(), std::move(plan)).first->second;
}

std::string ServingLadderPlan::table() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < rungs.size(); ++i) {
    const LadderRung& r = rungs[i];
    os << "  rung " << i << "  ";
    os.width(16);
    os.setf(std::ios::left, std::ios::adjustfield);
    os << r.label;
    os.width(0);
    os << r.service_cycles << " cycles/request  " << r.report.latency_ms
       << " ms  " << r.report.throughput_fps << " fps";
    if (i == home) os << "  [home]";
    if (r.protect) os << "  [protect]";
    if (r.int8) os << "  [int8]";
    os << '\n';
  }
  return os.str();
}

serve::ServingLadder ServingLadderPlan::to_serving_modes(
    std::size_t layer_count, const std::vector<arch::NumericMode>& modes16,
    const std::vector<arch::NumericMode>& modes_i8) const {
  serve::ServingLadder l;
  l.home = home;
  for (const LadderRung& r : rungs) {
    serve::ServingMode m;
    m.label = r.label;
    m.service_cycles = r.service_cycles;
    std::size_t k = 0;
    for (const auto& g : r.strategy.groups) {
      for (const auto& ipl : g.impls) {
        arch::LayerChoice ch{ipl.cfg.algo, ipl.cfg.wino_m, {}};
        if (ipl.cfg.int8 && k < modes_i8.size()) {
          ch.mode = modes_i8[k];
        } else if (k < modes16.size()) {
          ch.mode = modes16[k];
        }
        m.choices.push_back(ch);
        ++k;
      }
    }
    m.choices.resize(layer_count);
    l.rungs.push_back(std::move(m));
  }
  return l;
}

std::vector<core::LadderRungCsv> ServingLadderPlan::to_csv_rungs() const {
  std::vector<core::LadderRungCsv> out;
  for (std::size_t i = 0; i < rungs.size(); ++i) {
    core::LadderRungCsv c;
    c.strategy = rungs[i].strategy;
    c.service_cycles = rungs[i].service_cycles;
    c.label = rungs[i].label;
    c.home = i == home;
    c.protect = rungs[i].protect;
    c.int8 = rungs[i].int8;
    out.push_back(std::move(c));
  }
  return out;
}

TestbedLadder build_testbed_ladder(const nn::Network& net,
                                   const fpga::Device& dev,
                                   const LadderOptions& opt,
                                   std::size_t max_layers, int max_hw,
                                   std::uint32_t weight_seed) {
  const ServingLadderPlan& plan = cached_serving_ladder(net, dev, opt);

  TestbedLadder tb;
  tb.net = nn::Network(net.name() + "-testbed");
  const nn::Shape in0 = plan.accel_net[0].out;
  tb.net.input({in0.c, std::min(in0.h, max_hw), std::min(in0.w, max_hw)});
  const std::size_t klast =
      std::min<std::size_t>(max_layers, plan.accel_net.size() - 1);
  for (std::size_t i = 1; i <= klast; ++i) tb.net.add(plan.accel_net[i]);
  tb.ws = nn::WeightStore::deterministic(tb.net, weight_seed);

  // Per-rung numeric modes come from a one-probe testbed calibration, so
  // int8 rungs serve in the same asymmetric activation grids --serve uses.
  nn::Tensor cal_in(tb.net[0].out);
  nn::fill_deterministic(cal_in, 7);
  const auto cal = quant::calibrate(tb.net, tb.ws, {cal_in});
  tb.ladder = plan.to_serving_modes(klast, cal.modes(), cal.modes_int8());
  return tb;
}

ServingLadderPlan ServingLadderPlan::from_csv_rungs(
    std::vector<core::LadderRungCsv> rungs, nn::Network accel_net) {
  ServingLadderPlan plan;
  plan.accel_net = std::move(accel_net);
  // Round-tripped plans keep strategies and cycles; the per-rung reports
  // stay empty (the CSV does not carry them and serving never reads them).
  for (std::size_t i = 0; i < rungs.size(); ++i) {
    LadderRung r;
    r.label = std::move(rungs[i].label);
    r.service_cycles = rungs[i].service_cycles;
    r.protect = rungs[i].protect;
    r.int8 = rungs[i].int8;
    r.strategy = std::move(rungs[i].strategy);
    if (rungs[i].home) plan.home = i;
    plan.rungs.push_back(std::move(r));
  }
  return plan;
}

}  // namespace hetacc::toolflow
