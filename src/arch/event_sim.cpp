#include "arch/event_sim.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <stdexcept>

#include "cost/cost_model.h"

namespace hetacc::arch {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// One bounded row channel: entries are the times their rows became
/// available; space frees when the consumer pops.
struct Channel {
  std::size_t capacity = SIZE_MAX;
  std::deque<double> rows;  ///< availability time of each queued row
  std::size_t max_occupancy = 0;
  long long pushed = 0;

  [[nodiscard]] bool full() const { return rows.size() >= capacity; }
  void push(double t) {
    rows.push_back(t);
    ++pushed;
    max_occupancy = std::max(max_occupancy, rows.size());
  }
};

/// A streaming engine in the event simulation: alternates between pulling
/// rows into its line buffer and emitting output rows (blocks of `block`
/// rows for Winograd).
struct Node {
  // Geometry (real input-row coordinates; padding rows are free).
  long long in_rows = 0, out_rows = 0;
  int stride = 1, pad = 0, reach = 1, block = 1, lines = 2;
  double produce_cycles = 1.0;  ///< per output row

  long long pulled = 0;   ///< input rows taken from the upstream channel
  long long emitted = 0;  ///< output rows pushed downstream
  double busy_until = 0.0;
  double stall = 0.0;

  /// Deepest real input row the next output block needs.
  [[nodiscard]] long long dep() const {
    const long long base = (emitted / block) * block * stride;
    return std::clamp<long long>(base + reach - 1 - pad, 0, in_rows - 1);
  }
  /// Oldest input row the next output block still reads (line-buffer floor).
  [[nodiscard]] long long oldest_needed() const {
    const long long base = (emitted / block) * block * stride;
    return std::clamp<long long>(base - pad, 0, in_rows - 1);
  }
  [[nodiscard]] bool done() const { return emitted >= out_rows; }
  [[nodiscard]] bool inputs_ready() const { return pulled > dep(); }
  [[nodiscard]] bool can_prefetch() const {
    return pulled < in_rows && pulled - oldest_needed() < lines;
  }
};

}  // namespace

EventSimResult simulate_dataflow(const nn::Network& net, std::size_t first,
                                 std::size_t last,
                                 const std::vector<fpga::Implementation>& impls,
                                 const fpga::Device& dev,
                                 std::size_t fifo_capacity_rows,
                                 const fault::FaultInjector* inj) {
  if (first > last || last >= net.size() ||
      impls.size() != last - first + 1) {
    throw std::invalid_argument("simulate_dataflow: bad range");
  }
  if (fifo_capacity_rows == 0) {
    throw std::invalid_argument("simulate_dataflow: capacity must be >= 1");
  }
  const std::size_t n = impls.size();

  std::vector<Node> nodes(n);
  for (std::size_t k = 0; k < n; ++k) {
    const nn::Layer& l = net[first + k];
    const auto& ipl = impls[k];
    Node& nd = nodes[k];
    nd.in_rows = l.in.h;
    nd.out_rows = l.out.h;
    nd.stride = l.stride();
    nd.pad = l.padding();
    const bool wino = ipl.cfg.algo == fpga::ConvAlgo::kWinograd;
    nd.block = wino ? ipl.cfg.wino_m : 1;
    nd.reach = wino ? ipl.cfg.wino_m + l.window() - 1 : l.window();
    nd.lines = wino ? 2 * ipl.cfg.wino_m + l.window() - 1
                    : l.window() + l.stride();
    nd.produce_cycles = static_cast<double>(ipl.compute_cycles) /
                        std::max<long long>(1, nd.out_rows);
  }

  // Channels: [0] DDR -> first engine, [k] engine k-1 -> k, [n] -> DDR sink.
  std::vector<Channel> ch(n + 1);
  for (std::size_t k = 1; k < n; ++k) ch[k].capacity = fifo_capacity_rows;

  // DDR source fills channel 0 at the memory bandwidth.
  const nn::Shape in_shape = net[first].in;
  const double in_row_cycles = cost::row_transfer_cycles(
      in_shape.w, in_shape.c, dev.data_bytes, dev.bytes_per_cycle());
  for (int r = 0; r < in_shape.h; ++r) {
    ch[0].push((r + 1) * in_row_cycles);
  }
  ch[0].max_occupancy = 0;  // DDR side isn't a real FIFO

  // DDR sink drains channel n at the memory bandwidth.
  const nn::Shape out_shape = net[last].out;
  const double out_row_cycles = cost::row_transfer_cycles(
      out_shape.w, out_shape.c, dev.data_bytes, dev.bytes_per_cycle());
  long long stored = 0;
  double sink_busy = 0.0;
  double makespan = 0.0;
  long long injected_delay = 0;

  // Event loop: repeatedly perform the enabled action with the earliest
  // feasible time. Actions: engine pull, engine emit-block, sink store.
  while (stored < out_shape.h) {
    double best_t = kInf;
    int best_engine = -1;
    bool best_is_pull = false;

    for (std::size_t k = 0; k < n; ++k) {
      Node& nd = nodes[k];
      if (!nd.done() && nd.can_prefetch() && !ch[k].rows.empty()) {
        // Pull is instantaneous once the row is available (the ingest time
        // is folded into produce_cycles like the analytic model does).
        const double t = std::max(nd.busy_until, ch[k].rows.front());
        if (t < best_t) {
          best_t = t;
          best_engine = static_cast<int>(k);
          best_is_pull = true;
        }
      }
      if (!nd.done() && nd.inputs_ready()) {
        // A whole output block must fit: an engine that computes m rows per
        // tile pass cannot retire them through a FIFO shallower than m —
        // the structural reason generated designs size STREAM depth by the
        // largest tile height.
        const long long burst =
            std::min<long long>(nd.block, nd.out_rows - nd.emitted);
        if (ch[k + 1].rows.size() + static_cast<std::size_t>(burst) <=
            ch[k + 1].capacity) {
          const double t = nd.busy_until;
          if (t < best_t) {
            best_t = t;
            best_engine = static_cast<int>(k);
            best_is_pull = false;
          }
        }
      }
    }
    // Sink action.
    if (!ch[n].rows.empty()) {
      const double t = std::max(sink_busy, ch[n].rows.front());
      if (t < best_t) {
        best_t = t;
        best_engine = static_cast<int>(n);
        best_is_pull = false;
      }
    }

    if (best_engine < 0) {
      return EventSimResult{};  // deadlock (impossible for capacity >= 1)
    }

    if (best_engine == static_cast<int>(n)) {
      ch[n].rows.pop_front();
      sink_busy = best_t + out_row_cycles;
      ++stored;
      makespan = std::max(makespan, sink_busy);
      continue;
    }
    Node& nd = nodes[static_cast<std::size_t>(best_engine)];
    if (best_is_pull) {
      ch[static_cast<std::size_t>(best_engine)].rows.pop_front();
      ++nd.pulled;
      nd.busy_until = std::max(nd.busy_until, best_t);
      continue;
    }
    // Emit one block of rows (bursts model the Winograd tile row groups).
    const long long rows_left = nd.out_rows - nd.emitted;
    const long long burst = std::min<long long>(nd.block, rows_left);
    nd.stall += best_t - nd.busy_until;
    double t = best_t;
    if (inj && inj->decide(fault::FaultSite::kEngineStall,
                           static_cast<std::uint64_t>(best_engine),
                           static_cast<std::uint64_t>(nd.emitted))) {
      // A transient engine hang (e.g. a retried DSP column): the burst
      // starts late by the planned stall.
      const auto stall =
          static_cast<double>(inj->plan().engine_stall_cycles);
      t += stall;
      injected_delay += stall;
      inj->count_injected(fault::FaultSite::kEngineStall);
    }
    for (long long i = 0; i < burst; ++i) {
      t += nd.produce_cycles;
      // The whole block computes together; rows stream out back to back.
      double avail = t;
      Channel& out = ch[static_cast<std::size_t>(best_engine) + 1];
      if (inj && inj->decide(fault::FaultSite::kFifoDelay,
                             static_cast<std::uint64_t>(best_engine) + 1,
                             static_cast<std::uint64_t>(out.pushed))) {
        // Handshake glitch on the stream: the row lands late.
        avail += inj->plan().fifo_delay_cycles;
        injected_delay +=
            static_cast<long long>(inj->plan().fifo_delay_cycles);
        inj->count_injected(fault::FaultSite::kFifoDelay);
      }
      out.push(avail);
    }
    nd.emitted += burst;
    nd.busy_until = t;
  }

  EventSimResult res;
  res.completed = true;
  res.injected_delay_cycles = injected_delay;
  res.makespan_cycles = static_cast<long long>(std::ceil(makespan));
  for (const auto& c : ch) res.fifo_max_occupancy.push_back(c.max_occupancy);
  for (const auto& nd : nodes) {
    res.producer_stall_cycles += static_cast<long long>(nd.stall);
  }
  return res;
}

std::size_t minimal_fifo_depth_rows(
    const nn::Network& net, std::size_t first, std::size_t last,
    const std::vector<fpga::Implementation>& impls, const fpga::Device& dev,
    double tolerance) {
  const auto unbounded =
      simulate_dataflow(net, first, last, impls, dev, SIZE_MAX / 2);
  if (!unbounded.completed) {
    throw std::runtime_error("minimal_fifo_depth_rows: baseline failed");
  }
  const double limit =
      static_cast<double>(unbounded.makespan_cycles) * (1.0 + tolerance);
  std::size_t lo = 1, hi = 64;
  // Ensure hi is sufficient.
  while (hi < 4096) {
    const auto r = simulate_dataflow(net, first, last, impls, dev, hi);
    if (r.completed && static_cast<double>(r.makespan_cycles) <= limit) break;
    hi *= 2;
  }
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    const auto r = simulate_dataflow(net, first, last, impls, dev, mid);
    if (r.completed && static_cast<double>(r.makespan_cycles) <= limit) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

}  // namespace hetacc::arch
