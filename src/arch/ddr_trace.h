#pragma once
// DDR traffic timeline for a strategy: per-group load/store/weight
// transactions with byte counts and modeled time windows. Used to audit the
// optimizer's transfer accounting, to drive the energy model with an
// explicit transaction list, and to visualize where the bandwidth goes.

#include <string>
#include <vector>

#include "core/strategy.h"
#include "fault/fault.h"
#include "fault/protect.h"
#include "support/error.h"

namespace hetacc::arch {

enum class DdrOp : std::uint8_t { kLoadFeature, kStoreFeature, kLoadWeights };

[[nodiscard]] std::string_view to_string(DdrOp op);

struct DdrTransaction {
  DdrOp op = DdrOp::kLoadFeature;
  std::size_t group = 0;
  std::string what;        ///< layer / buffer description
  long long bytes = 0;
  long long start_cycle = 0;
  long long end_cycle = 0;
};

struct DdrTrace {
  std::vector<DdrTransaction> transactions;
  long long total_cycles = 0;

  [[nodiscard]] long long feature_bytes() const;
  [[nodiscard]] long long weight_bytes() const;
  [[nodiscard]] long long total_bytes() const;
  /// Mean fraction of the peak bandwidth in use over the run.
  [[nodiscard]] double bandwidth_utilization(const fpga::Device& dev) const;
  [[nodiscard]] std::string to_csv() const;
};

/// Builds the timeline for sequentially executed groups: each group loads
/// its weights, then streams its input while computing and storing its
/// output (overlapped, per the intra-layer pipeline of paper Fig. 2(d)).
[[nodiscard]] DdrTrace trace_strategy(const core::Strategy& s,
                                      const nn::Network& net,
                                      const fpga::Device& dev);

/// Outcome of replaying a DDR timeline under fault injection.
struct DdrFaultReport {
  /// One retry_limit-exhausted burst: enough identity for the serving layer
  /// and the campaign report to say which transfer of which group died, not
  /// just that one did.
  struct Failure {
    std::size_t transaction = 0;  ///< index into DdrTrace::transactions
    DdrOp op = DdrOp::kLoadFeature;
    std::size_t group = 0;
    std::string what;             ///< the transaction's layer/buffer label
    long long burst = 0;          ///< burst index within the transaction
    int attempts = 0;             ///< re-reads spent before giving up

    /// A FaultError carrying the full identity, ready to escalate.
    [[nodiscard]] FaultError to_error() const;
  };

  long long bursts = 0;        ///< AXI bursts replayed
  long long injected = 0;      ///< bursts that took a bit flip
  long long detected = 0;      ///< flips caught by the per-burst CRC
  long long recovered = 0;     ///< detected flips fixed within the retry budget
  long long unrecovered = 0;   ///< detected flips that exhausted retries
  long long silent = 0;        ///< flips delivered undetected (no protection)
  long long retry_bytes = 0;   ///< extra traffic spent on re-reads
  long long retry_cycles = 0;  ///< extra cycles spent on re-reads
  std::vector<Failure> failures;  ///< one entry per unrecovered burst

  /// Fraction of injected faults the detectors caught.
  [[nodiscard]] double coverage() const {
    return injected > 0 ? static_cast<double>(detected) /
                              static_cast<double>(injected)
                        : 1.0;
  }
};

/// Replays a DDR timeline burst by burst under `inj`, corrupting real byte
/// buffers and running the real CRC-32 over them — detection is computed,
/// not assumed. With protection enabled, corrupted bursts are re-read up to
/// `protect.retry_limit` times (re-reads can themselves be hit again);
/// without it, corrupted bursts are delivered silently.
[[nodiscard]] DdrFaultReport replay_trace_with_faults(
    const DdrTrace& trace, const fpga::Device& dev,
    const fault::FaultInjector& inj, const fault::ProtectionConfig& protect);

}  // namespace hetacc::arch
