#pragma once
// DDR traffic timeline for a strategy: per-group load/store/weight
// transactions with byte counts and modeled time windows. Used to audit the
// optimizer's transfer accounting, to drive the energy model with an
// explicit transaction list, and to visualize where the bandwidth goes.

#include <string>
#include <vector>

#include "core/strategy.h"

namespace hetacc::arch {

enum class DdrOp : std::uint8_t { kLoadFeature, kStoreFeature, kLoadWeights };

[[nodiscard]] std::string_view to_string(DdrOp op);

struct DdrTransaction {
  DdrOp op = DdrOp::kLoadFeature;
  std::size_t group = 0;
  std::string what;        ///< layer / buffer description
  long long bytes = 0;
  long long start_cycle = 0;
  long long end_cycle = 0;
};

struct DdrTrace {
  std::vector<DdrTransaction> transactions;
  long long total_cycles = 0;

  [[nodiscard]] long long feature_bytes() const;
  [[nodiscard]] long long weight_bytes() const;
  [[nodiscard]] long long total_bytes() const;
  /// Mean fraction of the peak bandwidth in use over the run.
  [[nodiscard]] double bandwidth_utilization(const fpga::Device& dev) const;
  [[nodiscard]] std::string to_csv() const;
};

/// Builds the timeline for sequentially executed groups: each group loads
/// its weights, then streams its input while computing and storing its
/// output (overlapped, per the intra-layer pipeline of paper Fig. 2(d)).
[[nodiscard]] DdrTrace trace_strategy(const core::Strategy& s,
                                      const nn::Network& net,
                                      const fpga::Device& dev);

}  // namespace hetacc::arch
