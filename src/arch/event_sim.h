#pragma once
// Discrete-event simulation of a fusion group's DATAFLOW region with
// finite inter-layer FIFOs and backpressure. The row-level schedule
// recurrence (pipeline.h) assumes unbounded channels; this simulator
// models the STREAM depth pragma the code generator emits (§6) and
// answers how deep the FIFOs must be before backpressure stops costing
// cycles — e.g. Winograd engines emit m rows per tile burst, so shallow
// FIFOs stall them.

#include <vector>

#include "core/strategy.h"
#include "fault/fault.h"

namespace hetacc::arch {

struct EventSimResult {
  bool completed = false;       ///< false = deadlock (cannot happen for cap>=1)
  long long makespan_cycles = 0;
  std::vector<std::size_t> fifo_max_occupancy;  ///< per channel (incl. DDR ends)
  long long producer_stall_cycles = 0;  ///< time engines waited on full FIFOs
  long long injected_delay_cycles = 0;  ///< cycles added by timing faults
};

/// Simulates layers [first, last] of `net` with the given implementations.
/// `fifo_capacity_rows` bounds every inter-layer channel (the DDR-facing
/// source and sink are not bounded). Row granularity: one token = one
/// feature-map row.
///
/// `inj` (optional) injects timing faults: kEngineStall freezes an engine
/// for plan.engine_stall_cycles before an emit burst; kFifoDelay delays a
/// pushed row's availability by plan.fifo_delay_cycles. Null = identical to
/// the fault-free simulation.
[[nodiscard]] EventSimResult simulate_dataflow(
    const nn::Network& net, std::size_t first, std::size_t last,
    const std::vector<fpga::Implementation>& impls, const fpga::Device& dev,
    std::size_t fifo_capacity_rows,
    const fault::FaultInjector* inj = nullptr);

/// Smallest uniform FIFO capacity whose makespan is within `tolerance`
/// (fractional) of the unbounded-channel makespan.
[[nodiscard]] std::size_t minimal_fifo_depth_rows(
    const nn::Network& net, std::size_t first, std::size_t last,
    const std::vector<fpga::Implementation>& impls, const fpga::Device& dev,
    double tolerance = 0.02);

}  // namespace hetacc::arch
