#include "arch/ddr_trace.h"

#include <sstream>

#include "cost/cost_model.h"
#include "fault/crc32.h"

namespace hetacc::arch {

FaultError DdrFaultReport::Failure::to_error() const {
  return FaultError(
      "DDR burst " + std::to_string(burst) + " of " +
          std::string(to_string(op)) + " '" + what + "' (group " +
          std::to_string(group) + ") unrecovered after " +
          std::to_string(attempts) + " re-reads",
      what, burst, attempts);
}

std::string_view to_string(DdrOp op) {
  switch (op) {
    case DdrOp::kLoadFeature: return "load_feature";
    case DdrOp::kStoreFeature: return "store_feature";
    case DdrOp::kLoadWeights: return "load_weights";
  }
  return "?";
}

long long DdrTrace::feature_bytes() const {
  long long n = 0;
  for (const auto& t : transactions) {
    if (t.op != DdrOp::kLoadWeights) n += t.bytes;
  }
  return n;
}

long long DdrTrace::weight_bytes() const {
  long long n = 0;
  for (const auto& t : transactions) {
    if (t.op == DdrOp::kLoadWeights) n += t.bytes;
  }
  return n;
}

long long DdrTrace::total_bytes() const {
  return feature_bytes() + weight_bytes();
}

double DdrTrace::bandwidth_utilization(const fpga::Device& dev) const {
  if (total_cycles <= 0) return 0.0;
  const double capacity = dev.bytes_per_cycle() *
                          static_cast<double>(total_cycles);
  return capacity > 0.0 ? static_cast<double>(total_bytes()) / capacity : 0.0;
}

std::string DdrTrace::to_csv() const {
  std::ostringstream os;
  os << "group,op,what,bytes,start_cycle,end_cycle\n";
  for (const auto& t : transactions) {
    os << t.group << ',' << to_string(t.op) << ',' << t.what << ','
       << t.bytes << ',' << t.start_cycle << ',' << t.end_cycle << '\n';
  }
  return os.str();
}

DdrTrace trace_strategy(const core::Strategy& s, const nn::Network& net,
                        const fpga::Device& dev) {
  DdrTrace trace;
  long long clock = 0;
  const double bpc = dev.bytes_per_cycle();
  auto cycles_for = [&](long long bytes) {
    // Same accounting rule as cost::evaluate_group_timing: a hardened DDR
    // path charges the per-burst CRC tail on every transfer.
    return dev.protection.enabled
               ? cost::protected_transfer_cycles(
                     bytes, bpc, dev.protection.burst_bytes,
                     dev.protection.check_cycles_per_burst)
               : cost::transfer_cycles(bytes, bpc);
  };

  for (std::size_t gi = 0; gi < s.groups.size(); ++gi) {
    const auto& g = s.groups[gi];
    const long long group_start = clock;

    // Weights stream in up front (resident for the group's execution).
    long long t = group_start;
    for (std::size_t k = 0; k < g.impls.size(); ++k) {
      const long long bytes = g.impls[k].weight_words * dev.data_bytes;
      if (bytes == 0) continue;
      DdrTransaction tx;
      tx.op = DdrOp::kLoadWeights;
      tx.group = gi;
      tx.what = net[g.first + k].name;
      tx.bytes = bytes;
      tx.start_cycle = t;
      tx.end_cycle = t + cycles_for(bytes);
      t = tx.end_cycle;
      trace.transactions.push_back(std::move(tx));
    }

    // Input load and output store stretch over the group's execution
    // (streamed row by row, overlapped with compute — Fig. 2(d)).
    const long long exec_start = t;
    const long long exec_end = group_start + g.timing.latency_cycles;
    {
      DdrTransaction tx;
      tx.op = DdrOp::kLoadFeature;
      tx.group = gi;
      tx.what = net[g.first].name + ".in";
      tx.bytes = net[g.first].in.bytes(dev.data_bytes);
      tx.start_cycle = exec_start;
      tx.end_cycle = std::max(exec_start + cycles_for(tx.bytes), exec_start);
      trace.transactions.push_back(std::move(tx));
    }
    {
      DdrTransaction tx;
      tx.op = DdrOp::kStoreFeature;
      tx.group = gi;
      tx.what = net[g.last].name + ".out";
      tx.bytes = net[g.last].out.bytes(dev.data_bytes);
      tx.end_cycle = std::max(exec_end, exec_start + 1);
      tx.start_cycle = std::max(exec_start,
                                tx.end_cycle - cycles_for(tx.bytes));
      trace.transactions.push_back(std::move(tx));
    }
    clock = std::max(exec_end, exec_start + 1);
  }
  trace.total_cycles = clock;
  return trace;
}

DdrFaultReport replay_trace_with_faults(const DdrTrace& trace,
                                        const fpga::Device& dev,
                                        const fault::FaultInjector& inj,
                                        const fault::ProtectionConfig& protect) {
  DdrFaultReport rep;
  const long long burst_bytes =
      protect.burst_bytes > 0 ? protect.burst_bytes : 4096;
  const bool crc_on = protect.enabled && protect.crc_ddr;

  // The burst payload is a deterministic pattern; its load-time CRC plays
  // the role of the checksum the DMA engine stores alongside each burst.
  std::vector<unsigned char> golden(static_cast<std::size_t>(burst_bytes));
  for (std::size_t i = 0; i < golden.size(); ++i) {
    golden[i] = static_cast<unsigned char>((i * 31 + 7) & 0xFF);
  }
  std::vector<unsigned char> buf;

  for (std::size_t ti = 0; ti < trace.transactions.size(); ++ti) {
    const auto& tx = trace.transactions[ti];
    const long long bursts = cost::ceil_div(tx.bytes, burst_bytes);
    for (long long b = 0; b < bursts; ++b) {
      ++rep.bursts;
      const long long len =
          std::min<long long>(burst_bytes, tx.bytes - b * burst_bytes);
      buf.assign(golden.begin(), golden.begin() + len);
      const std::uint32_t want = fault::crc32(buf.data(), buf.size());
      bool hit = inj.maybe_corrupt_bytes(
          fault::FaultSite::kDdrBurst, static_cast<std::uint64_t>(ti),
          static_cast<std::uint64_t>(b), buf.data(), buf.size());
      if (!hit) continue;
      ++rep.injected;
      if (!crc_on) {
        ++rep.silent;
        continue;
      }
      if (fault::crc32(buf.data(), buf.size()) == want) {
        // The real CRC failed to notice (cannot happen for single-bit
        // flips); the burst is delivered corrupted.
        ++rep.silent;
        continue;
      }
      ++rep.detected;
      inj.count_detected();
      // Bounded retry-with-reload: each re-read costs a burst transfer and
      // can itself be struck (a distinct event via the retry salt).
      bool fixed = false;
      for (int r = 1; r <= protect.retry_limit && !fixed; ++r) {
        rep.retry_bytes += len;
        rep.retry_cycles += cost::transfer_cycles(len, dev.bytes_per_cycle());
        buf.assign(golden.begin(), golden.begin() + len);
        const std::uint64_t retry_event =
            (static_cast<std::uint64_t>(b) << 8) |
            static_cast<std::uint64_t>(r);
        inj.maybe_corrupt_bytes(fault::FaultSite::kDdrBurst,
                                static_cast<std::uint64_t>(ti) | (1ull << 48),
                                retry_event, buf.data(), buf.size());
        fixed = fault::crc32(buf.data(), buf.size()) == want;
      }
      if (fixed) {
        ++rep.recovered;
        inj.count_recovered();
      } else {
        ++rep.unrecovered;
        inj.count_unrecovered(fault::FaultSite::kDdrBurst,
                              static_cast<std::uint64_t>(ti),
                              static_cast<std::uint64_t>(b),
                              protect.retry_limit);
        DdrFaultReport::Failure f;
        f.transaction = ti;
        f.op = tx.op;
        f.group = tx.group;
        f.what = tx.what;
        f.burst = b;
        f.attempts = protect.retry_limit;
        rep.failures.push_back(std::move(f));
      }
    }
  }
  return rep;
}

}  // namespace hetacc::arch
