#include "arch/ddr_trace.h"

#include <sstream>

#include "cost/cost_model.h"

namespace hetacc::arch {

std::string_view to_string(DdrOp op) {
  switch (op) {
    case DdrOp::kLoadFeature: return "load_feature";
    case DdrOp::kStoreFeature: return "store_feature";
    case DdrOp::kLoadWeights: return "load_weights";
  }
  return "?";
}

long long DdrTrace::feature_bytes() const {
  long long n = 0;
  for (const auto& t : transactions) {
    if (t.op != DdrOp::kLoadWeights) n += t.bytes;
  }
  return n;
}

long long DdrTrace::weight_bytes() const {
  long long n = 0;
  for (const auto& t : transactions) {
    if (t.op == DdrOp::kLoadWeights) n += t.bytes;
  }
  return n;
}

long long DdrTrace::total_bytes() const {
  return feature_bytes() + weight_bytes();
}

double DdrTrace::bandwidth_utilization(const fpga::Device& dev) const {
  if (total_cycles <= 0) return 0.0;
  const double capacity = dev.bytes_per_cycle() *
                          static_cast<double>(total_cycles);
  return capacity > 0.0 ? static_cast<double>(total_bytes()) / capacity : 0.0;
}

std::string DdrTrace::to_csv() const {
  std::ostringstream os;
  os << "group,op,what,bytes,start_cycle,end_cycle\n";
  for (const auto& t : transactions) {
    os << t.group << ',' << to_string(t.op) << ',' << t.what << ','
       << t.bytes << ',' << t.start_cycle << ',' << t.end_cycle << '\n';
  }
  return os.str();
}

DdrTrace trace_strategy(const core::Strategy& s, const nn::Network& net,
                        const fpga::Device& dev) {
  DdrTrace trace;
  long long clock = 0;
  const double bpc = dev.bytes_per_cycle();
  auto cycles_for = [&](long long bytes) {
    return cost::transfer_cycles(bytes, bpc);
  };

  for (std::size_t gi = 0; gi < s.groups.size(); ++gi) {
    const auto& g = s.groups[gi];
    const long long group_start = clock;

    // Weights stream in up front (resident for the group's execution).
    long long t = group_start;
    for (std::size_t k = 0; k < g.impls.size(); ++k) {
      const long long bytes = g.impls[k].weight_words * dev.data_bytes;
      if (bytes == 0) continue;
      DdrTransaction tx;
      tx.op = DdrOp::kLoadWeights;
      tx.group = gi;
      tx.what = net[g.first + k].name;
      tx.bytes = bytes;
      tx.start_cycle = t;
      tx.end_cycle = t + cycles_for(bytes);
      t = tx.end_cycle;
      trace.transactions.push_back(std::move(tx));
    }

    // Input load and output store stretch over the group's execution
    // (streamed row by row, overlapped with compute — Fig. 2(d)).
    const long long exec_start = t;
    const long long exec_end = group_start + g.timing.latency_cycles;
    {
      DdrTransaction tx;
      tx.op = DdrOp::kLoadFeature;
      tx.group = gi;
      tx.what = net[g.first].name + ".in";
      tx.bytes = net[g.first].in.bytes(dev.data_bytes);
      tx.start_cycle = exec_start;
      tx.end_cycle = std::max(exec_start + cycles_for(tx.bytes), exec_start);
      trace.transactions.push_back(std::move(tx));
    }
    {
      DdrTransaction tx;
      tx.op = DdrOp::kStoreFeature;
      tx.group = gi;
      tx.what = net[g.last].name + ".out";
      tx.bytes = net[g.last].out.bytes(dev.data_bytes);
      tx.end_cycle = std::max(exec_end, exec_start + 1);
      tx.start_cycle = std::max(exec_start,
                                tx.end_cycle - cycles_for(tx.bytes));
      trace.transactions.push_back(std::move(tx));
    }
    clock = std::max(exec_end, exec_start + 1);
  }
  trace.total_cycles = clock;
  return trace;
}

}  // namespace hetacc::arch
