#pragma once
// Circular line buffer (paper §4.2, Fig. 2(b)): holds `lines` rows of an
// M-channel feature map. Rows are pushed in raster order and addressed by
// their absolute row index; the storage reuses lines modulo `lines`,
// exactly like the BRAM structure the generated HLS code infers.

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "fault/fault.h"

namespace hetacc::arch {

class CircularLineBuffer {
 public:
  CircularLineBuffer(int channels, int width, int lines)
      : channels_(channels), width_(width), lines_(lines),
        data_(static_cast<std::size_t>(channels) * width * lines, 0.0f) {
    if (channels <= 0 || width <= 0 || lines <= 0) {
      throw std::invalid_argument("CircularLineBuffer: bad geometry");
    }
  }

  [[nodiscard]] int channels() const { return channels_; }
  [[nodiscard]] int width() const { return width_; }
  [[nodiscard]] int lines() const { return lines_; }
  /// Absolute index of the next row to be pushed.
  [[nodiscard]] long long next_row() const { return next_row_; }
  /// Oldest absolute row still resident.
  [[nodiscard]] long long oldest_row() const {
    return next_row_ < lines_ ? 0 : next_row_ - lines_;
  }
  [[nodiscard]] bool contains(long long row) const {
    return row >= oldest_row() && row < next_row_;
  }

  /// Pushes one row: `row[c * width + w]`. Overwrites the line that has
  /// rotated out of the reuse window — the "load into line [1, S]" step of
  /// the paper's walk-through.
  void push_row(const std::vector<float>& row);

  /// Element access by absolute row index; throws if the row has already
  /// been overwritten (a correctness guard the hardware enforces by
  /// schedule construction).
  [[nodiscard]] float at(int channel, long long row, int col) const;

  /// Raw pointer to one channel's row (width() floats); residency and
  /// channel range checked once per row, not per element.
  [[nodiscard]] const float* row_ptr(int channel, long long row) const;

  /// Returns to the post-construction state (frame boundary): counters
  /// cleared and storage zeroed, matching the hardware's per-frame reset.
  void reset();

  /// Attaches a fault injector; `stream` identifies this buffer's engine as
  /// an injection stream. Null detaches; no injector means push_row is
  /// byte-identical to the unhooked design.
  void attach_fault(const fault::FaultInjector* inj, std::uint64_t stream) {
    fault_ = inj;
    fault_stream_ = stream;
  }

 private:
  int channels_, width_, lines_;
  long long next_row_ = 0;
  std::vector<float> data_;  ///< [line][channel][col]
  const fault::FaultInjector* fault_ = nullptr;
  std::uint64_t fault_stream_ = 0;
};

}  // namespace hetacc::arch
